# Local targets mirror .github/workflows/ci.yml so "it passed on my
# machine" and "it passed CI" mean the same commands.

GO ?= go

.PHONY: build test short race bench lint fmt ci

build:
	$(GO) build ./...

# The full grid: what the nightly CI job runs.
test:
	$(GO) test ./...

# The per-push subset: slow harness paths skip themselves.
short:
	$(GO) test -short ./...

# Race detector over the concurrent grid. Runs the same short test
# set as `short`, so CI only needs this one (the race step subsumes
# the plain short pass).
race:
	$(GO) test -race -short ./...

# One pass over every benchmark, no timing loops: proves the bench
# code still runs. Full timings: go test -bench=. -benchtime=3x .
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build race bench
