# Local targets mirror .github/workflows/ci.yml so "it passed on my
# machine" and "it passed CI" mean the same commands.

GO ?= go

.PHONY: build test short race bench batch-smoke replay-smoke gang-smoke compress-smoke scenario-smoke op-smoke store-smoke serve-smoke docs-check cover lint fmt golden profile profile-gang bench-json bench-compare ci

build:
	$(GO) build ./...

# The full grid, shuffled to catch test-order dependence: what the
# nightly CI job runs. Includes the golden-file suite and the
# batched-vs-unbatched equivalence pass.
test:
	$(GO) test -shuffle=on -count=1 ./...

# The per-push subset: slow harness paths skip themselves.
short:
	$(GO) test -shuffle=on -count=1 -short ./...

# Race detector over the concurrent grid, with per-package coverage
# published in the same pass. Runs the same short test set as `short`,
# so CI only needs this one step (it subsumes the plain short pass and
# the coverage run). The explicit -timeout exists because the harness
# short set under -race outgrew go test's 10m default once the grid
# reached 29 cells; it is headroom, not a target.
race:
	$(GO) test -race -cover -shuffle=on -count=1 -short -timeout=25m ./...

# Per-package coverage over the short set without the race detector,
# for a quick local read (CI gets coverage from `race`).
cover:
	$(GO) test -short -count=1 -cover ./...

# One pass over every benchmark, no timing loops: proves the bench
# code still runs. Full timings: go test -bench=. -benchtime=3x .
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# The batch-equivalence smoke: renders the experiment grid through the
# batched pipeline against the checked-in goldens, and cross-checks a
# cell against the unbatched reference counter by counter. Fails if
# the two pipelines disagree anywhere.
batch-smoke:
	$(GO) test -count=1 -run 'TestGoldenFiles|TestBatchedMatchesReferenceSubset' ./internal/harness

# The replay-equivalence smoke: renders the experiment grid with
# recording/replay force-enabled (the default; TestGoldenFiles) and
# force-disabled (every run re-executes the engine) and diffs both
# against the same goldens. Fails if replay changes any figure.
replay-smoke:
	$(GO) test -count=1 -run 'TestGoldenFiles|TestReplayDisabledMatchesGoldens' ./internal/harness

# The gang-equivalence smoke: a multi-platform grid measured through
# the gang drain and cell by cell must agree counter for counter, and
# the full golden grid rendered gang-off must stay byte-identical to
# the same files the ganged default renders.
gang-smoke:
	$(GO) test -count=1 -run 'TestGangMatchesSequential|TestGangUsesOneExecution|TestGangDisabledMatchesGoldens' ./internal/harness

# The compression-equivalence smoke: the full golden grid rendered
# with recorded traces in the columnar compressed arena (the default;
# TestGoldenFiles), with the raw []Event arena, plus the codec
# round-trip and fuzz-seed regression tests. Fails if the codec
# changes a single byte of any figure or loses an event anywhere.
compress-smoke:
	$(GO) test -count=1 -run 'TestCodec|FuzzCodecRoundTrip' ./internal/trace
	$(GO) test -count=1 -run 'TestGoldenFiles|TestCompressionDisabledMatchesGoldens' ./internal/harness

# The scenario smoke: the five scenario experiments (Grace hash join,
# sort-based aggregation, B-tree range scan, join-sort-aggregate,
# index-probe join) rendered against their goldens on their own small
# grid, plus the result cross-checks against their reference
# operators. Cheap enough for every push; the nightly full grid
# additionally diffs the scenario cells across the unbatched /
# replay-off / gang-off paths.
scenario-smoke:
	$(GO) test -count=1 -run 'TestScenarioGoldens|TestScenarioResultsConsistent|TestScenarioSystemASkipsBRS' ./internal/harness

# The operator-DAG regression set: the op package alone under the race
# detector (its operators are what every scenario now composes), the
# pinned per-scenario stream digests, and the plan-tree equivalence
# fuzz target over its committed seed corpus
# (testdata/fuzz/FuzzPlanTreeEquivalence — seeds only, no -fuzz;
# mirrors how compress-smoke runs FuzzCodecRoundTrip).
op-smoke:
	$(GO) test -race -count=1 ./internal/engine/op
	$(GO) test -count=1 -run 'TestStreamDigestsPinned|FuzzPlanTreeEquivalence' ./internal/engine

# The warm-start smoke: the tracestore package (corrupt-input and
# fuzz-seed regressions included), the snapshot/store equivalence
# tests, then the real CLI run twice against one store directory —
# stdout must be byte-identical cold vs warm, and the warm run's
# stderr stats line must report nonzero entry hits (proof the second
# run actually started from the store, not from zero).
STORE_SMOKE_DIR := /tmp/wheretime-store-smoke
store-smoke:
	$(GO) test -count=1 ./internal/tracestore
	$(GO) test -count=1 -run 'TestSnapshotRestoreMatchesDrain|TestStoreWarmHits|TestStoreDirOptionFlushes' ./internal/harness
	rm -rf $(STORE_SMOKE_DIR) && mkdir -p $(STORE_SMOKE_DIR)
	$(GO) run ./cmd/wheretime -experiment fig5.1 -scale 0.002 -store $(STORE_SMOKE_DIR)/store \
		> $(STORE_SMOKE_DIR)/cold.out 2> $(STORE_SMOKE_DIR)/cold.err
	$(GO) run ./cmd/wheretime -experiment fig5.1 -scale 0.002 -store $(STORE_SMOKE_DIR)/store \
		> $(STORE_SMOKE_DIR)/warm.out 2> $(STORE_SMOKE_DIR)/warm.err
	diff $(STORE_SMOKE_DIR)/cold.out $(STORE_SMOKE_DIR)/warm.out
	grep -E 'store: entry hits=[1-9][0-9]* ' $(STORE_SMOKE_DIR)/warm.err
	rm -rf $(STORE_SMOKE_DIR)

# The robustness smoke: the wheretimed service and fault-injection
# packages under the race detector (coalescing, gang batching on the
# fake clock, quarantine-and-recompute, timeouts, panic containment,
# read-only fallback, the harness cancellation contract and the
# exported gang entry point with its key-compat fuzz seeds), then the
# real daemon end to end — concurrent POSTs coalesced, a corrupted
# store quarantined and recomputed byte-identically, a multi-config
# burst batched into one gang and byte-compared against a
# -gangwindow=0 control server, SIGTERM drained to exit 0 (see
# cmd/servesmoke).
serve-smoke:
	$(GO) test -race -count=1 ./internal/server ./internal/faults
	$(GO) test -race -count=1 -run 'TestMeasureContext|TestMeasureGang|FuzzGangKeyCompat' ./internal/harness
	$(GO) run ./cmd/servesmoke

# The documentation contract: every relative link in docs/*.md and
# README.md resolves (files and #anchors), and every internal/ package
# carries a proper package comment.
docs-check:
	$(GO) run ./cmd/docscheck

# CPU profile of the full serial grid benchmark, written to grid.pprof
# (inspect with: go tool pprof grid.pprof).
profile:
	$(GO) test -bench='BenchmarkGridSerial$$' -benchtime=1x -run='^$$' -cpuprofile grid.pprof .

# CPU profile of the multi-platform gang drain (BenchmarkGangSweep),
# written to gang.pprof: where the K-config inner loops spend time.
profile-gang:
	$(GO) test -bench='BenchmarkGangSweep' -benchtime=1x -run='^$$' -cpuprofile gang.pprof .

# Machine-readable perf record: the grid benchmarks (serial, parallel
# at 1/2/max workers with the real counts reported, replay-disabled),
# the gang-vs-sequential platform sweep, the replay-vs-execute and
# compressed-vs-raw-replay comparisons (the latter carries the
# measured compression ratio), a raw TPC-D pass and the drain
# microbenchmarks, written to BENCH.json for trajectory tracking
# (committed as BENCH_PR<n>.json when a PR re-baselines). The grid
# benchmarks build with the committed default.pgo profile — the
# shipped configuration — so the record measures what a PGO build
# delivers. Each step is its own recipe line so a failing benchmark
# run fails the target instead of producing a silently incomplete
# record.
bench-json:
	$(GO) test -pgo=default.pgo -bench='BenchmarkGridSerial$$|BenchmarkGridSerialNoReplay$$|BenchmarkGridParallel$$|BenchmarkGridWarmStart$$|BenchmarkReplayVsExecute|BenchmarkCompressedReplay|BenchmarkGangSweep$$|BenchmarkTPCDPass$$' \
		-benchtime=1x -benchmem -run='^$$' . > bench-raw.txt
	$(GO) test -bench='BenchmarkProcessBatch$$|BenchmarkCompressedDrain$$' -benchtime=3x -benchmem -run='^$$' ./internal/xeon >> bench-raw.txt
	$(GO) run ./cmd/benchjson < bench-raw.txt > BENCH.json
	rm bench-raw.txt

# The benchmark regression gate the nightly CI runs after bench-json:
# fails if grid time in the fresh BENCH.json regressed >10% against
# the committed PR record.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR8.json BENCH.json

# Regenerate the golden files after an intentional output change.
# (The package path precedes -update: go test stops parsing at the
# first flag it does not know, and -update lives in the test binary.)
golden:
	$(GO) test ./internal/harness -count=1 -run TestGoldenFiles -update

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build race bench batch-smoke replay-smoke gang-smoke compress-smoke scenario-smoke op-smoke store-smoke serve-smoke docs-check
