// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5), plus ablations of the design choices
// DESIGN.md calls out. Each benchmark reports the figure's headline
// series as custom metrics so `go test -bench` output doubles as the
// reproduction record.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/harness"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// benchOptions returns the experiment configuration used by the
// benchmark run: a scale where all shapes have converged but a full
// figure regenerates in seconds.
func benchOptions() harness.Options {
	opts := harness.DefaultOptions()
	opts.Scale = 0.01
	return opts
}

// benchEnv is shared across benchmarks (the dataset build dominates
// otherwise).
var benchEnv *harness.Env

func getBenchEnv(b *testing.B) *harness.Env {
	b.Helper()
	if benchEnv == nil {
		env, err := harness.NewEnv(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = env
	}
	return benchEnv
}

// runFigure drives one experiment b.N times, reporting the given
// metrics from the last run.
func runFigure(b *testing.B, run func(*harness.Env) ([]harness.Table, error)) []harness.Table {
	env := getBenchEnv(b)
	var tables []harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = run(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// BenchmarkFig51 regenerates Figure 5.1 (execution time breakdown) and
// reports each system's stall share on the sequential selection.
func BenchmarkFig51(b *testing.B) {
	runFigure(b, harness.Fig51)
	env := getBenchEnv(b)
	for _, s := range engine.Systems() {
		cell, err := env.Run(s, harness.SRS)
		if err != nil {
			b.Fatal(err)
		}
		stall := 100 - cell.Breakdown.GroupPercent(core.GroupComputation)
		b.ReportMetric(stall, fmt.Sprintf("stall%%_%s_SRS", s))
	}
}

// BenchmarkFig52 regenerates Figure 5.2 (memory stall breakdown) and
// reports the L1I+L2D share of TM, the paper's 90% claim.
func BenchmarkFig52(b *testing.B) {
	runFigure(b, harness.Fig52)
	env := getBenchEnv(b)
	for _, s := range engine.Systems() {
		cell, err := env.Run(s, harness.SRS)
		if err != nil {
			b.Fatal(err)
		}
		share := cell.Breakdown.MemoryPercent(core.TL1I) + cell.Breakdown.MemoryPercent(core.TL2D)
		b.ReportMetric(share, fmt.Sprintf("L1I+L2D%%ofTM_%s", s))
	}
}

// BenchmarkFig53 regenerates Figure 5.3 (instructions per record).
func BenchmarkFig53(b *testing.B) {
	runFigure(b, harness.Fig53)
	env := getBenchEnv(b)
	for _, s := range engine.Systems() {
		cell, err := env.Run(s, harness.SRS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Breakdown.InstructionsPerRecord(), fmt.Sprintf("inst/rec_%s_SRS", s))
	}
}

// BenchmarkFig54 regenerates both graphs of Figure 5.4.
func BenchmarkFig54(b *testing.B) {
	runFigure(b, harness.Fig54a)
	runFigure(b, harness.Fig54b)
	env := getBenchEnv(b)
	for _, s := range engine.Systems() {
		cell, err := env.Run(s, harness.SRS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*cell.Breakdown.BranchMispredictionRate(), fmt.Sprintf("mispred%%_%s_SRS", s))
	}
}

// BenchmarkFig55 regenerates Figure 5.5 (TDEP/TFU contributions).
func BenchmarkFig55(b *testing.B) {
	runFigure(b, harness.Fig55)
	env := getBenchEnv(b)
	cell, err := env.Run(engine.SystemA, harness.SRS)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cell.Breakdown.ComponentPercent(core.TDEP), "TDEP%_A_SRS")
	b.ReportMetric(cell.Breakdown.ComponentPercent(core.TFU), "TFU%_A_SRS")
}

// BenchmarkFig56 regenerates Figure 5.6 (CPI, SRS vs TPC-D).
func BenchmarkFig56(b *testing.B) {
	runFigure(b, harness.Fig56)
	env := getBenchEnv(b)
	for _, s := range []engine.System{engine.SystemA, engine.SystemB, engine.SystemD} {
		srs, err := env.Run(s, harness.SRS)
		if err != nil {
			b.Fatal(err)
		}
		tpcd, err := env.RunTPCD(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(srs.Breakdown.CPI(), fmt.Sprintf("CPI_%s_SRS", s))
		b.ReportMetric(tpcd.Breakdown.CPI(), fmt.Sprintf("CPI_%s_TPCD", s))
	}
}

// BenchmarkFig57 regenerates Figure 5.7 (cache stalls, SRS vs TPC-D).
func BenchmarkFig57(b *testing.B) {
	runFigure(b, harness.Fig57)
	env := getBenchEnv(b)
	cell, err := env.RunTPCD(engine.SystemD)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cell.Breakdown.MemoryPercent(core.TL1I), "L1I%ofTM_D_TPCD")
}

// BenchmarkRecordSize regenerates the Section 5.2.1-5.2.2 record-size
// sweep and reports the 20B->200B growth factor.
func BenchmarkRecordSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := getBenchEnv(b)
		tables, err := harness.RecordSize(env)
		if err != nil {
			b.Fatal(err)
		}
		last := tables[0].Rows[len(tables[0].Rows)-1]
		b.ReportMetric(parseX(last[len(last)-1]), "growth_20B_to_200B_x")
	}
}

func parseX(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%fx", &v)
	return v
}

// BenchmarkTPCC regenerates the Section 5.5 TPC-C observations.
func BenchmarkTPCC(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		cell, _, err := env.RunTPCC(engine.SystemC, 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Breakdown.CPI(), "CPI_C_TPCC")
		b.ReportMetric(cell.Breakdown.GroupPercent(core.GroupMemory), "mem%_C_TPCC")
	}
}

// --- Grid scheduling -------------------------------------------------

// benchGrid regenerates every registered experiment through the grid
// scheduler at the given worker count. Serial vs parallel wall-clock
// is the speedup the concurrent harness buys; the outputs themselves
// are byte-identical (TestParallelMatchesSerial).
func benchGrid(b *testing.B, parallel int) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunExperiments(opts, harness.Experiments(), parallel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSerial runs the full experiment grid on one worker —
// the pre-concurrency baseline.
func BenchmarkGridSerial(b *testing.B) { benchGrid(b, 1) }

// BenchmarkGridParallel fans the same grid out across worker pools of
// 1, 2 and DefaultParallelism workers, each worker on an isolated
// simulator stack. Every variant reports the worker count it actually
// ran with and the GOMAXPROCS it ran under, so the committed bench
// record says what the parallel datapoint really measured.
func BenchmarkGridParallel(b *testing.B) {
	counts := []int{1, 2, harness.DefaultParallelism()}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue // DefaultParallelism may be 1 or 2 on small hosts
		}
		seen[workers] = true
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			benchGrid(b, workers)
		})
	}
}

// BenchmarkTPCDPass measures one live TPC-D suite pass on System D —
// emission plus drain of ~165M events, the dominant shape of the
// serial grid and the gang drain's per-config inner loop.
func BenchmarkTPCDPass(b *testing.B) {
	env := getBenchEnv(b)
	e := env.Engine(engine.SystemD)
	queries := env.Dims.TPCDQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe := xeon.New(env.Opts.Config)
		e.ResetState()
		for _, q := range queries {
			if _, err := e.Query(q, pipe); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// gangSweepGrid is the platform sweep the gang benchmark measures:
// the full microbenchmark grid and the TPC-D suites on three
// platforms (the paper's, a 2MB L2, a 16K-entry BTB).
func gangSweepGrid(opts harness.Options) []harness.CellSpec {
	big := opts.Config
	big.L2SizeKB = 2048
	btb := opts.Config
	btb.BTBEntries = 16384
	var specs []harness.CellSpec
	for _, cfg := range []xeon.Config{opts.Config, big, btb} {
		o := opts
		o.Config = cfg
		for _, e := range harness.Experiments()[:2] { // fig5.1/5.2 share the micro grid
			specs = append(specs, e.Cells(o)...)
		}
		specs = append(specs, harness.CellSpec{Kind: harness.CellTPCD, System: engine.SystemD, Config: cfg})
	}
	return specs
}

// BenchmarkGangSweep measures a three-platform sweep through the gang
// drain (each cell's workload runs once, all platforms drain the one
// stream) against the sequential path (each platform re-runs or
// re-reads the stream). The ratio is what the multi-config gang buys.
func BenchmarkGangSweep(b *testing.B) {
	for _, mode := range []struct {
		name string
		gang bool
	}{{"gang", true}, {"sequential", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			opts := benchOptions()
			opts.Gang = mode.gang
			specs := gangSweepGrid(opts)
			for i := 0; i < b.N; i++ {
				if _, err := harness.Measure(opts, specs, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGridSerialUnbatched runs the full grid through the
// one-call-per-event reference path: the pre-batching hot-path shape.
// Serial vs this is the speedup the batched trace pipeline buys; the
// outputs themselves are byte-identical (TestUnbatchedMatchesGoldens).
func BenchmarkGridSerialUnbatched(b *testing.B) {
	opts := benchOptions()
	opts.Unbatched = true
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunExperiments(opts, harness.Experiments(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSerialNoReplay runs the full grid with recording
// disabled, so every warm-up and measured run re-executes the engine:
// the replay-off reference. Serial vs this is the speedup the
// record-once/replay-many engine buys; the outputs are byte-identical
// (TestReplayDisabledMatchesGoldens).
func BenchmarkGridSerialNoReplay(b *testing.B) {
	opts := benchOptions()
	opts.MaxRecordedEvents = -1
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunExperiments(opts, harness.Experiments(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridWarmStart is the persistent warm-start record: the
// cold arm runs the full serial grid against a fresh store directory
// every iteration (measuring the populate cost on top of the
// simulation), the warm arm against a directory a priming run filled
// (stored tallies short-circuit every cell's simulation). warm vs
// cold is what the on-disk store buys a process restart; the outputs
// are byte-identical either way (TestStoreColdWarmMatchesGoldens).
func BenchmarkGridWarmStart(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := benchOptions()
			opts.StoreDir = b.TempDir()
			if _, err := harness.RunExperiments(opts, harness.Experiments(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := benchOptions()
		opts.StoreDir = b.TempDir()
		if _, err := harness.RunExperiments(opts, harness.Experiments(), 1); err != nil {
			b.Fatal(err) // prime the store
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunExperiments(opts, harness.Experiments(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplayVsExecute isolates what the record-once/replay-many
// engine buys on a cache revisit: the execute arm rebuilds and runs
// the TPC-C mix every iteration (recording disabled); the replay arm
// primes the per-worker trace cache once, then every iteration replays
// the captured warm-up and measured phases into a fresh pipeline —
// no database build, no engine execution, no event re-emission.
func BenchmarkReplayVsExecute(b *testing.B) {
	const txns = 300
	b.Run("execute", func(b *testing.B) {
		opts := benchOptions()
		opts.MaxRecordedEvents = -1
		env, err := harness.NewEnv(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := env.RunTPCC(engine.SystemC, txns); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		opts := benchOptions()
		// The TPC-C(300) capture is ~10M events; give the cache room.
		opts.MaxRecordedEvents = 16 << 20
		env, err := harness.NewEnv(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := env.RunTPCC(engine.SystemC, txns); err != nil {
			b.Fatal(err) // prime the capture
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := env.RunTPCC(engine.SystemC, txns); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompressedReplay is the compression-ratio record: it
// captures the full TPC-C measured mix once per arena layout —
// columnar-compressed and raw []Event chunks — and replays each into
// the simulator. The arena_mb/raw_mb/ratio metrics are the measured
// size trade on a real engine stream (the acceptance bar is >= 4x),
// and compressed-vs-raw ns/op is what the fused block decode costs on
// top of the same ProcessBatch hot loop. Together with
// BenchmarkReplayVsExecute (replay vs re-execution of the same mix)
// this locates the DRAM-vs-recompute crossover behind
// harness.DefaultMaxRecordedEvents; docs/PERF.md quotes both.
func BenchmarkCompressedReplay(b *testing.B) {
	const txns = 300
	for _, mode := range []struct {
		name string
		raw  bool
	}{{"compressed", false}, {"raw", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			db, err := workload.BuildTPCC(workload.DefaultTPCCDims())
			if err != nil {
				b.Fatal(err)
			}
			e := engine.New(engine.SystemC, db.Catalog)
			pipe := xeon.New(xeon.DefaultConfig())
			rec := trace.NewRecorder(pipe, 0)
			rec.SetRawArena(mode.raw)
			buf := trace.NewBuffer(rec, 0)
			if _, err := workload.RunTPCC(db, e, buf, txns); err != nil {
				b.Fatal(err)
			}
			buf.Flush()
			r := rec.Recording()
			if r == nil {
				b.Fatal("uncapped recorder overflowed")
			}
			defer r.Release()
			b.SetBytes(int64(r.Len()) * trace.EventBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Drain(pipe)
			}
			b.StopTimer()
			b.ReportMetric(float64(r.Bytes())/(1<<20), "arena_mb")
			b.ReportMetric(float64(r.RawBytes())/(1<<20), "raw_mb")
			b.ReportMetric(float64(r.RawBytes())/float64(r.Bytes()), "ratio")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(r.Len()), "ns/event")
		})
	}
}

// --- Ablations (DESIGN.md section 5) --------------------------------

// ablationCell runs System D SRS under a modified platform config.
func ablationCell(b *testing.B, mutate func(*xeon.Config)) harness.Cell {
	b.Helper()
	opts := benchOptions()
	mutate(&opts.Config)
	env, err := harness.NewEnv(opts)
	if err != nil {
		b.Fatal(err)
	}
	cell, err := env.Run(engine.SystemD, harness.SRS)
	if err != nil {
		b.Fatal(err)
	}
	return cell
}

// BenchmarkAblationBTB compares the 512-entry BTB against the 16K-entry
// design Section 5.3 cites [7] for OLTP workloads.
func BenchmarkAblationBTB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := ablationCell(b, func(c *xeon.Config) {})
		big := ablationCell(b, func(c *xeon.Config) { c.BTBEntries = 16384 })
		b.ReportMetric(100*small.Breakdown.BTBMissRate(), "BTBmiss%_512")
		b.ReportMetric(100*big.Breakdown.BTBMissRate(), "BTBmiss%_16K")
		b.ReportMetric(small.Breakdown.GroupPercent(core.GroupBranch), "TB%_512")
		b.ReportMetric(big.Breakdown.GroupPercent(core.GroupBranch), "TB%_16K")
	}
}

// BenchmarkAblationL2Size compares the 512KB L2 against the 2MB option
// the Xeon supported (Section 5.2.1).
func BenchmarkAblationL2Size(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := ablationCell(b, func(c *xeon.Config) {})
		big := ablationCell(b, func(c *xeon.Config) { c.L2SizeKB = 2048 })
		b.ReportMetric(small.Breakdown.ComponentPercent(core.TL2D), "TL2D%_512KB")
		b.ReportMetric(big.Breakdown.ComponentPercent(core.TL2D), "TL2D%_2MB")
	}
}

// BenchmarkAblationLayout compares NSM and PAX data placement on the
// same engine profile: the paper's data-placement recommendation.
func BenchmarkAblationLayout(b *testing.B) {
	dims := workload.PaperDims().Scaled(0.01)
	for i := 0; i < b.N; i++ {
		for _, layout := range []storage.Layout{storage.NSM, storage.PAX} {
			db, err := workload.Build(dims, layout)
			if err != nil {
				b.Fatal(err)
			}
			prof := engine.DefaultProfile(engine.SystemC)
			prof.DataLayout = layout
			eng := engine.NewWithProfile(prof, db.Catalog)
			pipe := xeon.New(xeon.DefaultConfig())
			plan, err := eng.Prepare(dims.QuerySRS(0.10))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(plan, pipe); err != nil {
				b.Fatal(err)
			}
			pipe.ResetStats()
			if _, err := eng.Run(plan, pipe); err != nil {
				b.Fatal(err)
			}
			bd := pipe.Breakdown()
			recs := float64(bd.Counts.Records)
			b.ReportMetric(bd.Cycles[core.TL2D]/recs, fmt.Sprintf("TL2Dcyc/rec_%s", layout))
		}
	}
}

// BenchmarkAblationOSInterrupts isolates the NT timer-interrupt
// hypothesis of Section 5.2.2: L1I pollution with and without the
// periodic kernel intrusion. The interval is tightened from the 10ms
// timer tick to the effective rate of a loaded NT system (timer plus
// device and IPC interrupts) so the effect is visible at bench scale.
func BenchmarkAblationOSInterrupts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationCell(b, func(c *xeon.Config) { c.InterruptCycles = 250_000 })
		without := ablationCell(b, func(c *xeon.Config) { c.InterruptCycles = 0 })
		recsW := float64(with.Breakdown.Counts.Records)
		recsWo := float64(without.Breakdown.Counts.Records)
		b.ReportMetric(float64(with.Breakdown.Counts.L1IMisses)/recsW, "L1Imiss/rec_interrupts")
		b.ReportMetric(float64(without.Breakdown.Counts.L1IMisses)/recsWo, "L1Imiss/rec_quiet")
	}
}
