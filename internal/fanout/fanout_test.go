package fanout_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"wheretime/internal/fanout"
)

func TestRunCoversEveryIndex(t *testing.T) {
	const n = 100
	done := make([]int32, n)
	fanout.Run(n, 7, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&done[i], 1)
			return true
		}
	})
	for i, c := range done {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestRunPerWorkerState(t *testing.T) {
	var mu sync.Mutex
	workers := 0
	fanout.Run(20, 4, func() func(int) bool {
		mu.Lock()
		workers++
		mu.Unlock()
		return func(int) bool { return true }
	})
	if workers < 1 || workers > 4 {
		t.Errorf("built %d workers, want 1..4", workers)
	}
}

func TestRunCancelsDispatchOnFailure(t *testing.T) {
	var ran int32
	// One worker, fail on the first job: no later index may start.
	fanout.Run(1000, 1, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&ran, 1)
			return false
		}
	})
	// The dispatcher may hand over at most a couple of jobs before it
	// observes the cancel; the point is it does not run all 1000.
	if got := atomic.LoadInt32(&ran); got > 3 {
		t.Errorf("%d jobs ran after first failure", got)
	}
}

// TestRunCancelStopsUndispatched pins the cancel path across several
// workers: once any job fails, the dispatcher hands out no further
// indexes, so with every job failing, the number of indexes that run
// is bounded by the jobs already accepted when the first failure
// landed — never the whole schedule.
func TestRunCancelStopsUndispatched(t *testing.T) {
	const n, workers = 1000, 4
	var ran int32
	var maxIndex int32 = -1
	fanout.Run(n, workers, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&ran, 1)
			for {
				cur := atomic.LoadInt32(&maxIndex)
				if int32(i) <= cur || atomic.CompareAndSwapInt32(&maxIndex, cur, int32(i)) {
					break
				}
			}
			return false
		}
	})
	// At most the in-flight jobs plus the handful the dispatcher
	// handed over before observing the cancel can run.
	if got := atomic.LoadInt32(&ran); got > 2*workers+1 {
		t.Errorf("%d jobs ran after first failure (workers=%d)", got, workers)
	}
	if got := atomic.LoadInt32(&maxIndex); got > 2*workers+1 {
		t.Errorf("index %d was dispatched after first failure", got)
	}
}

// TestRunContextBackgroundMatchesRun: with a background context the
// dispatch is exactly Run's — every index runs once, nil error.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	const n = 64
	done := make([]int32, n)
	err := fanout.RunContext(context.Background(), n, 5, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&done[i], 1)
			return true
		}
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	for i, c := range done {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

// TestRunContextCancelStopsDispatch: cancelling mid-dispatch stops
// new indexes and returns context.Canceled; jobs already running
// complete (the barrier is between cells).
func TestRunContextCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := fanout.RunContext(ctx, 1000, 2, func() func(int) bool {
		return func(i int) bool {
			if atomic.AddInt32(&ran, 1) == 1 {
				cancel()
			}
			return true
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got > 6 {
		t.Errorf("%d jobs ran after cancellation", got)
	}
}

// TestRunContextPreCancelled: a context cancelled before the call
// dispatches nothing.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := fanout.RunContext(ctx, 100, 4, func() func(int) bool {
		return func(int) bool { atomic.AddInt32(&ran, 1); return true }
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran)
	}
}

func TestRunClampsWorkers(t *testing.T) {
	// workers > n and workers < 1 must both still cover all indexes.
	for _, workers := range []int{50, 0, -1} {
		var ran int32
		fanout.Run(5, workers, func() func(int) bool {
			return func(int) bool { atomic.AddInt32(&ran, 1); return true }
		})
		if ran != 5 {
			t.Errorf("workers=%d: ran %d of 5", workers, ran)
		}
	}
}
