package fanout_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"wheretime/internal/fanout"
)

func TestRunCoversEveryIndex(t *testing.T) {
	const n = 100
	done := make([]int32, n)
	fanout.Run(n, 7, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&done[i], 1)
			return true
		}
	})
	for i, c := range done {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestRunPerWorkerState(t *testing.T) {
	var mu sync.Mutex
	workers := 0
	fanout.Run(20, 4, func() func(int) bool {
		mu.Lock()
		workers++
		mu.Unlock()
		return func(int) bool { return true }
	})
	if workers < 1 || workers > 4 {
		t.Errorf("built %d workers, want 1..4", workers)
	}
}

func TestRunCancelsDispatchOnFailure(t *testing.T) {
	var ran int32
	// One worker, fail on the first job: no later index may start.
	fanout.Run(1000, 1, func() func(int) bool {
		return func(i int) bool {
			atomic.AddInt32(&ran, 1)
			return false
		}
	})
	// The dispatcher may hand over at most a couple of jobs before it
	// observes the cancel; the point is it does not run all 1000.
	if got := atomic.LoadInt32(&ran); got > 3 {
		t.Errorf("%d jobs ran after first failure", got)
	}
}

func TestRunClampsWorkers(t *testing.T) {
	// workers > n and workers < 1 must both still cover all indexes.
	for _, workers := range []int{50, 0, -1} {
		var ran int32
		fanout.Run(5, workers, func() func(int) bool {
			return func(int) bool { atomic.AddInt32(&ran, 1); return true }
		})
		if ran != 5 {
			t.Errorf("workers=%d: ran %d of 5", workers, ran)
		}
	}
}
