// Package fanout provides the indexed worker-pool primitive shared by
// the concurrent experiment grid (internal/harness) and the parallel
// counter-pair session (internal/emon): n independent jobs fanned out
// across a bounded set of workers, each worker carrying its own
// isolated state, with dispatch cancelled on first failure or on
// context cancellation.
package fanout

import (
	"context"
	"sync"
)

// Run invokes a per-worker job function for every index in [0, n),
// across at most workers goroutines. newWorker is called once per
// goroutine to build the worker's job function, which is where
// per-worker state (a private simulator stack, a lazily built unit of
// work) lives. A job returning false cancels the dispatch of
// not-yet-started indexes — in-flight jobs complete — so a failing
// grid reports its error without simulating the rest of the schedule.
// Run returns once every dispatched job has finished. Indexes are
// dispatched in order but complete in any order; callers aggregate
// by index to stay deterministic.
func Run(n, workers int, newWorker func() func(i int) bool) {
	RunContext(context.Background(), n, workers, newWorker)
}

// RunContext is Run under a context: dispatch additionally stops when
// ctx is cancelled or its deadline passes, and each worker checks the
// context between jobs, so a job handed over just before cancellation
// is skipped rather than started. Jobs already running complete —
// cancellation is a barrier between cells, never a mid-cell interrupt
// — and RunContext still returns only once every started job has
// finished. The returned error is ctx.Err(): nil on a full dispatch,
// context.Canceled or context.DeadlineExceeded when the dispatch was
// cut short. With a background context the behaviour (and the set of
// indexes run) is identical to Run's.
func RunContext(ctx context.Context, n, workers int, newWorker func() func(i int) bool) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	cancel := make(chan struct{})
	done := ctx.Done() // nil for background contexts: the select cases never fire
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := newWorker()
			for i := range jobs {
				select {
				case <-done:
					// Cancelled after this index was handed over but
					// before it started: skip it (and any later ones
					// still in the channel), but keep draining so the
					// dispatcher's close is observed.
					continue
				default:
				}
				if !job(i) {
					once.Do(func() { close(cancel) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-cancel:
			break dispatch
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}
