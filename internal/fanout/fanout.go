// Package fanout provides the indexed worker-pool primitive shared by
// the concurrent experiment grid (internal/harness) and the parallel
// counter-pair session (internal/emon): n independent jobs fanned out
// across a bounded set of workers, each worker carrying its own
// isolated state, with dispatch cancelled on first failure.
package fanout

import "sync"

// Run invokes a per-worker job function for every index in [0, n),
// across at most workers goroutines. newWorker is called once per
// goroutine to build the worker's job function, which is where
// per-worker state (a private simulator stack, a lazily built unit of
// work) lives. A job returning false cancels the dispatch of
// not-yet-started indexes — in-flight jobs complete — so a failing
// grid reports its error without simulating the rest of the schedule.
// Run returns once every dispatched job has finished. Indexes are
// dispatched in order but complete in any order; callers aggregate
// by index to stay deterministic.
func Run(n, workers int, newWorker func() func(i int) bool) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	cancel := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := newWorker()
			for i := range jobs {
				if !job(i) {
					once.Do(func() { close(cancel) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-cancel:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
}
