package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

const testBase = trace.HeapBase + 1<<28

func ridFor(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i / 81), Slot: uint16(i % 81)}
}

func TestEmptyTree(t *testing.T) {
	tr := New(testBase, DefaultOrder)
	if tr.Len() != 0 || tr.Height() != 1 || tr.Nodes() != 1 {
		t.Errorf("empty tree: len=%d height=%d nodes=%d", tr.Len(), tr.Height(), tr.Nodes())
	}
	if got := tr.Search(5); len(got) != 0 {
		t.Errorf("search in empty tree returned %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
}

func TestNewRejectsTinyOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("order 2 should panic")
		}
	}()
	New(testBase, 2)
}

func TestInsertSearchSequential(t *testing.T) {
	tr := New(testBase, 8) // small order forces splits
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(int32(i), ridFor(i))
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid after sequential inserts: %v", err)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected >= 3 for order 8 with 1000 keys", tr.Height())
	}
	for _, k := range []int{0, 1, 499, 998, 999} {
		got := tr.Search(int32(k))
		if len(got) != 1 || got[0] != ridFor(k) {
			t.Errorf("search(%d) = %v, want [%v]", k, got, ridFor(k))
		}
	}
	if got := tr.Search(int32(n)); len(got) != 0 {
		t.Errorf("search of absent key returned %v", got)
	}
}

func TestInsertSearchRandom(t *testing.T) {
	tr := New(testBase, 16)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(5000)
	for i, k := range keys {
		tr.Insert(int32(k), ridFor(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid after random inserts: %v", err)
	}
	for i := 0; i < 100; i++ {
		k := keys[rng.Intn(len(keys))]
		if got := tr.Search(int32(k)); len(got) != 1 {
			t.Errorf("search(%d) found %d entries", k, len(got))
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(testBase, 8)
	// 30 duplicates of each of 40 keys, like R.a2's distribution.
	const dups, distinct = 30, 40
	idx := 0
	rng := rand.New(rand.NewSource(3))
	order := rng.Perm(dups * distinct)
	for _, o := range order {
		tr.Insert(int32(o%distinct), ridFor(idx))
		idx++
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid with duplicates: %v", err)
	}
	for k := 0; k < distinct; k++ {
		if got := tr.Search(int32(k)); len(got) != dups {
			t.Errorf("search(%d) found %d, want %d", k, len(got), dups)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := New(testBase, 8)
	for i := 0; i < 500; i++ {
		tr.Insert(int32(i*2), ridFor(i)) // even keys 0..998
	}
	var got []int32
	tr.Range(100, 200, func(k int32, rid storage.RID, _ LeafPos) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 50 {
		t.Fatalf("range [100,200) returned %d keys, want 50", len(got))
	}
	if got[0] != 100 || got[len(got)-1] != 198 {
		t.Errorf("range bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("range results unsorted")
	}
	// Empty and inverted ranges.
	count := 0
	tr.Range(999, 999, func(int32, storage.RID, LeafPos) bool { count++; return true })
	tr.Range(200, 100, func(int32, storage.RID, LeafPos) bool { count++; return true })
	if count != 0 {
		t.Errorf("degenerate ranges returned %d entries", count)
	}
	// Early stop.
	count = 0
	tr.Range(0, 1000, func(int32, storage.RID, LeafPos) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop after %d", count)
	}
}

func TestRangeTraceDescent(t *testing.T) {
	tr := New(testBase, 8)
	for i := 0; i < 2000; i++ {
		tr.Insert(int32(i), ridFor(i))
	}
	var steps []DescentStep
	tr.RangeTrace(1000, 1001, func(s DescentStep) { steps = append(steps, s) }, func(int32, storage.RID, LeafPos) bool { return true })
	if len(steps) != tr.Height() {
		t.Fatalf("descent visited %d nodes, height is %d", len(steps), tr.Height())
	}
	for i, s := range steps {
		if s.Level != i {
			t.Errorf("step %d at level %d", i, s.Level)
		}
		if s.Addr < testBase {
			t.Errorf("step %d addr %#x below base", i, s.Addr)
		}
		if s.KeysInspected < 1 {
			t.Errorf("step %d inspected %d keys", i, s.KeysInspected)
		}
	}
	// Node addresses are distinct pages.
	if steps[0].Addr == steps[1].Addr {
		t.Error("descent revisited the same node address")
	}
}

func TestLeafPosAddresses(t *testing.T) {
	tr := New(testBase, 8)
	for i := 0; i < 100; i++ {
		tr.Insert(int32(i), ridFor(i))
	}
	seen := map[uint64]bool{}
	tr.Range(0, 100, func(k int32, rid storage.RID, pos LeafPos) bool {
		if pos.Addr < testBase || pos.Index < 0 || pos.Index > tr.Order() {
			t.Fatalf("bad leaf pos %+v", pos)
		}
		seen[pos.Addr] = true
		return true
	})
	if len(seen) < 2 {
		t.Errorf("100 keys at order 8 should span several leaves, saw %d", len(seen))
	}
}

func TestNodeAddressesAreDistinctPages(t *testing.T) {
	tr := New(testBase, 8)
	for i := 0; i < 3000; i++ {
		tr.Insert(int32(i), ridFor(i))
	}
	if tr.Nodes() < 100 {
		t.Fatalf("expected many nodes, got %d", tr.Nodes())
	}
	// All node addresses are distinct and page-aligned by construction;
	// validate the invariant the trace relies on via a full descent of
	// every key's path staying in [base, base+nodes*PageSize).
	limit := testBase + uint64(tr.Nodes())*storage.PageSize
	tr.RangeTrace(0, 3000, func(s DescentStep) {
		if s.Addr >= limit {
			t.Fatalf("node addr %#x beyond allocation", s.Addr)
		}
	}, func(int32, storage.RID, LeafPos) bool { return true })
}

// Property: the tree agrees with a sorted reference slice for range
// queries after arbitrary insertions, and stays structurally valid.
func TestTreeMatchesReferenceProperty(t *testing.T) {
	f := func(keysRaw []uint16, loRaw, spanRaw uint16) bool {
		if len(keysRaw) > 400 {
			keysRaw = keysRaw[:400]
		}
		tr := New(testBase, 8)
		var ref []int32
		for i, kr := range keysRaw {
			k := int32(kr % 512)
			tr.Insert(k, ridFor(i))
			ref = append(ref, k)
		}
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		lo := int32(loRaw % 600)
		hi := lo + int32(spanRaw%100)
		var got []int32
		tr.Range(lo, hi, func(k int32, _ storage.RID, _ LeafPos) bool {
			got = append(got, k)
			return true
		})
		var want []int32
		for _, k := range ref {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(testBase, DefaultOrder)
	for i := 0; i < 300000; i++ {
		tr.Insert(int32(i%40000), ridFor(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("big tree invalid: %v", err)
	}
	if tr.Height() < 2 || tr.Height() > 4 {
		t.Errorf("height = %d for 300k entries at order %d, want 2..4", tr.Height(), DefaultOrder)
	}
}
