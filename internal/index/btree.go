// Package index implements the non-clustered B+-tree the paper builds
// on R.a2 for the indexed range selection. Keys are int32 field
// values; entries carry RIDs into the heap file, and duplicate keys
// are supported (each a2 value appears ~30 times in the paper's R).
//
// Every node occupies one simulated page so an index descent produces
// the address trace a real descent would: one page-sized random jump
// per level plus a key search within the node.
package index

import (
	"fmt"
	"sort"

	"wheretime/internal/storage"
)

// DefaultOrder is the maximum number of keys per node: sized so a node
// of 4-byte keys and 8-byte child pointers/RIDs fills most of an 8KB
// page, giving the 3-level trees typical for the paper's 1.2M-row R.
const DefaultOrder = 256

// Tree is a B+-tree mapping int32 keys to RIDs.
type Tree struct {
	order    int
	root     *node
	height   int
	len      int
	addrBase uint64
	nodes    int
}

type node struct {
	addr uint64
	leaf bool
	keys []int32
	kids []*node       // internal nodes: len(kids) == len(keys)+1
	rids []storage.RID // leaf nodes: parallel to keys
	next *node         // leaf chain
}

// New returns an empty tree whose nodes are addressed starting at
// addrBase (one storage.PageSize page per node).
func New(addrBase uint64, order int) *Tree {
	if order < 4 {
		panic(fmt.Sprintf("index: order %d too small (need >= 4)", order))
	}
	t := &Tree{order: order, addrBase: addrBase, height: 1}
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	n := &node{addr: t.addrBase + uint64(t.nodes)*storage.PageSize, leaf: leaf}
	t.nodes++
	return n
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.len }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of allocated nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Order returns the maximum keys per node.
func (t *Tree) Order() int { return t.order }

// Insert adds an entry. Duplicate keys are allowed.
func (t *Tree) Insert(key int32, rid storage.RID) {
	sep, right := t.insert(t.root, key, rid)
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.keys = append(newRoot.keys, sep)
		newRoot.kids = append(newRoot.kids, t.root, right)
		t.root = newRoot
		t.height++
	}
	t.len++
}

// insert descends into n; a non-nil return describes a split: sep is
// the smallest key reachable through the returned right sibling.
func (t *Tree) insert(n *node, key int32, rid storage.RID) (sep int32, right *node) {
	if n.leaf {
		// Upper bound: insert after existing duplicates.
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = key
		n.rids = append(n.rids, storage.RID{})
		copy(n.rids[pos+1:], n.rids[pos:])
		n.rids[pos] = rid
		if len(n.keys) <= t.order {
			return 0, nil
		}
		mid := len(n.keys) / 2
		r := t.newNode(true)
		r.keys = append(r.keys, n.keys[mid:]...)
		r.rids = append(r.rids, n.rids[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.rids = n.rids[:mid:mid]
		r.next = n.next
		n.next = r
		return r.keys[0], r
	}

	// Leftmost descent among equal separators keeps duplicate runs
	// reachable from the leaf chain.
	pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if pos < len(n.keys) && n.keys[pos] == key {
		// Equal separator: duplicates may continue in the right
		// subtree; standard B+-trees send equal keys right.
		pos++
	}
	s, r := t.insert(n.kids[pos], key, rid)
	if r == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[pos+1:], n.keys[pos:])
	n.keys[pos] = s
	n.kids = append(n.kids, nil)
	copy(n.kids[pos+2:], n.kids[pos+1:])
	n.kids[pos+1] = r
	if len(n.keys) <= t.order {
		return 0, nil
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	r2 := t.newNode(false)
	r2.keys = append(r2.keys, n.keys[mid+1:]...)
	r2.kids = append(r2.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	return sepUp, r2
}

// DescentStep describes one node visited while locating a key: the
// node's simulated address, its level (0 = root), and how many keys
// the binary search inspected.
type DescentStep struct {
	Addr          uint64
	Level         int
	KeysInspected int
}

// descend walks from the root to the leaf where keys >= lo begin,
// optionally reporting each step. It returns the leaf and the position
// of the first key >= lo within it (which may equal len(keys), in
// which case the caller advances along the chain).
func (t *Tree) descend(lo int32, visit func(DescentStep)) (*node, int) {
	n := t.root
	level := 0
	for !n.leaf {
		pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		if visit != nil {
			visit(DescentStep{Addr: n.addr, Level: level, KeysInspected: log2ceil(len(n.keys))})
		}
		n = n.kids[pos]
		level++
	}
	pos := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if visit != nil {
		visit(DescentStep{Addr: n.addr, Level: level, KeysInspected: log2ceil(len(n.keys))})
	}
	return n, pos
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Search returns the RIDs of every entry with the given key.
func (t *Tree) Search(key int32) []storage.RID {
	var out []storage.RID
	t.Range(key, key+1, func(k int32, rid storage.RID, _ LeafPos) bool {
		out = append(out, rid)
		return true
	})
	return out
}

// LeafPos locates an entry inside a leaf, for trace emission: the
// leaf's simulated address and the entry's index within it.
type LeafPos struct {
	Addr  uint64
	Index int
}

// Range calls fn for every entry with lo <= key < hi in key order,
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi int32, fn func(key int32, rid storage.RID, pos LeafPos) bool) {
	t.RangeTrace(lo, hi, nil, fn)
}

// RangeTrace is Range with descent reporting: visit (when non-nil)
// receives one step per node on the root-to-leaf path before fn runs.
func (t *Tree) RangeTrace(lo, hi int32, visit func(DescentStep), fn func(key int32, rid storage.RID, pos LeafPos) bool) {
	if lo >= hi {
		return
	}
	n, pos := t.descend(lo, visit)
	for n != nil {
		for ; pos < len(n.keys); pos++ {
			if n.keys[pos] >= hi {
				return
			}
			if !fn(n.keys[pos], n.rids[pos], LeafPos{Addr: n.addr, Index: pos}) {
				return
			}
		}
		n = n.next
		pos = 0
	}
}

// Validate checks the structural invariants of the tree and returns
// the first violation found: keys sorted within nodes, uniform leaf
// depth, child counts, separator ordering, and the leaf chain sorted
// and complete.
func (t *Tree) Validate() error {
	leafDepth := -1
	var walk func(n *node, depth int, lo, hi int64) error
	walk = func(n *node, depth int, lo, hi int64) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return fmt.Errorf("index: node %#x keys unsorted at %d", n.addr, i)
			}
		}
		for _, k := range n.keys {
			if int64(k) < lo || int64(k) >= hi {
				return fmt.Errorf("index: node %#x key %d outside separator range [%d,%d)", n.addr, k, lo, hi)
			}
		}
		if n.leaf {
			if len(n.rids) != len(n.keys) {
				return fmt.Errorf("index: leaf %#x has %d rids for %d keys", n.addr, len(n.rids), len(n.keys))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("index: leaf %#x at depth %d, expected %d", n.addr, depth, leafDepth)
			}
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("index: node %#x has %d kids for %d keys", n.addr, len(n.kids), len(n.keys))
		}
		childLo := lo
		for i, kid := range n.kids {
			childHi := hi
			if i < len(n.keys) {
				childHi = int64(n.keys[i])
			}
			// Duplicates may straddle a separator: keys equal to the
			// separator are legal in the left subtree, so widen by one.
			if err := walk(kid, depth+1, childLo, childHi+1); err != nil {
				return err
			}
			if i < len(n.keys) {
				childLo = int64(n.keys[i])
			}
		}
		return nil
	}
	if err := walk(t.root, 1, -1<<40, 1<<40); err != nil {
		return err
	}
	if leafDepth != t.height {
		return fmt.Errorf("index: height %d but leaves at depth %d", t.height, leafDepth)
	}
	// Leaf chain: sorted, and covering exactly len entries.
	n := t.leftmostLeaf()
	count := 0
	last := int32(-1 << 31)
	for n != nil {
		for _, k := range n.keys {
			if k < last {
				return fmt.Errorf("index: leaf chain unsorted (%d after %d)", k, last)
			}
			last = k
			count++
		}
		n = n.next
	}
	if count != t.len {
		return fmt.Errorf("index: chain has %d entries, tree has %d", count, t.len)
	}
	return nil
}

func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	return n
}
