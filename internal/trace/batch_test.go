package trace

import (
	"fmt"
	"testing"
)

// recorder logs every Processor call as a string, and optionally
// consumes batches (counting them) so tests can tell which drain path
// ran.
type recorder struct {
	calls   []string
	batches int
}

func (r *recorder) FetchBlock(addr uint64, size, instrs, uops uint32) {
	r.calls = append(r.calls, fmt.Sprintf("fetch %x %d %d %d", addr, size, instrs, uops))
}
func (r *recorder) Load(addr uint64, size uint32) {
	r.calls = append(r.calls, fmt.Sprintf("load %x %d", addr, size))
}
func (r *recorder) Store(addr uint64, size uint32) {
	r.calls = append(r.calls, fmt.Sprintf("store %x %d", addr, size))
}
func (r *recorder) Branch(pc, target uint64, taken bool) {
	r.calls = append(r.calls, fmt.Sprintf("branch %x %x %v", pc, target, taken))
}
func (r *recorder) DataBurst(base uint64, bytes, loads, stores uint32) {
	r.calls = append(r.calls, fmt.Sprintf("burst %x %d %d %d", base, bytes, loads, stores))
}
func (r *recorder) ResourceStall(dep, fu, ild float64) {
	r.calls = append(r.calls, fmt.Sprintf("stall %g %g %g", dep, fu, ild))
}
func (r *recorder) RecordProcessed() { r.calls = append(r.calls, "record") }

// batchRecorder is a recorder that also accepts batches.
type batchRecorder struct{ recorder }

func (r *batchRecorder) ProcessBatch(events []Event) {
	r.batches++
	Replay(&r.recorder, events)
}

// emitSample issues one of every event kind, twice, into p.
func emitSample(p Processor) {
	for i := uint64(0); i < 2; i++ {
		p.FetchBlock(0x1000+i, 64, 10, 12)
		p.Load(0x2000+i*32, 8)
		p.Store(0x3000+i*32, 4)
		p.Branch(0x1100+i, 0x1200, i == 0)
		p.DataBurst(0x4000, 128, 5, 1)
		p.ResourceStall(1.5, 0.25, 0.125)
		p.RecordProcessed()
	}
}

func sampleCalls() []string {
	var want recorder
	emitSample(&want)
	return want.calls
}

// TestBufferPreservesOrder pins the core contract: events emerge from
// a flush in exactly the order they were emitted, through either drain
// path.
func TestBufferPreservesOrder(t *testing.T) {
	want := sampleCalls()

	t.Run("replay sink", func(t *testing.T) {
		var got recorder
		buf := NewBuffer(&got, 4) // tiny capacity: forces mid-stream flushes
		emitSample(buf)
		buf.Flush()
		if fmt.Sprint(got.calls) != fmt.Sprint(want) {
			t.Errorf("replayed calls differ:\n got %v\nwant %v", got.calls, want)
		}
	})

	t.Run("batch sink", func(t *testing.T) {
		var got batchRecorder
		buf := NewBuffer(&got, 4)
		emitSample(buf)
		buf.Flush()
		if fmt.Sprint(got.calls) != fmt.Sprint(want) {
			t.Errorf("batched calls differ:\n got %v\nwant %v", got.calls, want)
		}
		if got.batches == 0 {
			t.Error("batch-capable sink was not drained via ProcessBatch")
		}
	})
}

// TestBufferAutoFlush verifies the buffer drains itself at capacity.
func TestBufferAutoFlush(t *testing.T) {
	var got batchRecorder
	buf := NewBuffer(&got, 3)
	for i := 0; i < 7; i++ {
		buf.RecordProcessed()
	}
	if len(got.calls) != 6 {
		t.Errorf("expected 6 auto-flushed events, got %d", len(got.calls))
	}
	if buf.Pending() != 1 {
		t.Errorf("expected 1 pending event, got %d", buf.Pending())
	}
	buf.Flush()
	if len(got.calls) != 7 || buf.Pending() != 0 {
		t.Errorf("after flush: %d delivered, %d pending", len(got.calls), buf.Pending())
	}
}

// TestUnbatchedHidesBatchCapability: wrapping a batch-capable sink in
// Unbatched must force the one-call-per-event reference path.
func TestUnbatchedHidesBatchCapability(t *testing.T) {
	var got batchRecorder
	if _, ok := interface{}(Unbatched{Processor: &got}).(BatchProcessor); ok {
		t.Fatal("Unbatched must not satisfy BatchProcessor")
	}
	buf := NewBuffer(Unbatched{Processor: &got}, 4)
	emitSample(buf)
	buf.Flush()
	if got.batches != 0 {
		t.Errorf("unbatched sink received %d batches, want 0", got.batches)
	}
	if fmt.Sprint(got.calls) != fmt.Sprint(sampleCalls()) {
		t.Error("unbatched replay altered the event stream")
	}
}

// TestResourceStallPacking: stall cycles must survive the float-bits
// packing into the 32-byte event exactly.
func TestResourceStallPacking(t *testing.T) {
	for _, c := range [][3]float64{
		{0, 0, 0},
		{1.5, 2.25, 3.125},
		{1e-300, 1e300, 0.1},
		{123.456, 7.89, 0.000321},
	} {
		ev := ResourceStallEvent(c[0], c[1], c[2])
		dep, fu, ild := ev.Stalls()
		if dep != c[0] || fu != c[1] || ild != c[2] {
			t.Errorf("round trip %v -> %v %v %v", c, dep, fu, ild)
		}
	}
}

// TestBindDrainsIntoPreviousSink: rebinding with pending events must
// deliver them to the old sink, not the new one.
func TestBindDrainsIntoPreviousSink(t *testing.T) {
	var first, second recorder
	buf := NewBuffer(&first, 16)
	buf.Load(0x10, 4)
	buf.Bind(&second)
	if len(first.calls) != 1 {
		t.Errorf("previous sink got %d calls, want 1", len(first.calls))
	}
	buf.Load(0x20, 4)
	buf.Flush()
	if len(second.calls) != 1 {
		t.Errorf("new sink got %d calls, want 1", len(second.calls))
	}
}

// TestCountingViaBufferMatchesDirect: the tallies of a Counting
// processor must not depend on whether events arrived buffered.
func TestCountingViaBufferMatchesDirect(t *testing.T) {
	var direct Counting
	emitSample(&direct)
	var buffered Counting
	buf := NewBuffer(&buffered, 4)
	emitSample(buf)
	buf.Flush()
	if direct != buffered {
		t.Errorf("buffered counts differ:\n got %+v\nwant %+v", buffered, direct)
	}
}

// TestRoutineInvokeMatchesInvokeBuf: the interface path (scratch
// buffer) and the explicit buffer path must produce identical event
// streams for identical routines.
func TestRoutineInvokeMatchesInvokeBuf(t *testing.T) {
	mk := func() *Routine {
		return NewLayout().Place(&Routine{
			Name: "r", CodeBytes: 4096, Instrs: 400, Uops: 520,
			Branches:     BranchMix{Loop: 4, Regular: 20, Irregular: 6},
			PrivateBytes: 512, PrivateLoads: 30, PrivateStores: 6,
			ILP: ILP{DepPerKuop: 10, FUPerKuop: 5, ILDPerKuop: 1},
		})
	}
	var viaIface, viaBuf recorder
	r1 := mk()
	for i := 0; i < 5; i++ {
		r1.Invoke(&viaIface)
		r1.InvokeFrac(&viaIface, 3, 2)
	}
	r2 := mk()
	buf := NewBuffer(&viaBuf, 0)
	for i := 0; i < 5; i++ {
		r2.InvokeBuf(buf)
		r2.InvokeFracBuf(buf, 3, 2)
	}
	buf.Flush()
	if fmt.Sprint(viaIface.calls) != fmt.Sprint(viaBuf.calls) {
		t.Error("Invoke(interface) and InvokeBuf event streams differ")
	}
}
