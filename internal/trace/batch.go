package trace

import (
	"math"
	"reflect"
)

// This file is the batched half of the event vocabulary. The Processor
// interface narrates one hardware event per dynamic call; on the full
// experiment grid that dispatch — one dynamic interface call per field
// touch — dominates wall-clock. The batch API keeps the exact same
// event stream but moves it through an event buffer: emitters append
// Events to a Buffer with direct (devirtualised, inlinable) method
// calls, and the simulator drains thousands of them in one
// ProcessBatch call, in program order, with no per-event dispatch.
//
// Equivalence contract: for any event sequence, draining it through
// ProcessBatch must leave a BatchProcessor in exactly the state the
// corresponding one-call-per-event Processor methods would — same
// counts, same stall cycles, same replacement state. Replay is the
// reference implementation of that contract (it literally makes the
// per-event calls), and the golden-file suite in internal/harness
// pins the equivalence end to end: every experiment table rendered
// via the batched pipeline is byte-identical to the unbatched one.

// EventKind discriminates the Processor call an Event stands for.
type EventKind uint8

// The event kinds, one per Processor method.
const (
	// EvFetchBlock is a FetchBlock(Addr, Size, A=instrs, B=uops) call.
	EvFetchBlock EventKind = iota
	// EvLoad is a Load(Addr, Size) call.
	EvLoad
	// EvStore is a Store(Addr, Size) call.
	EvStore
	// EvBranch is a Branch(Addr=pc, Aux=target, Taken) call.
	EvBranch
	// EvDataBurst is a DataBurst(Addr=base, Size=bytes, A=loads,
	// B=stores) call.
	EvDataBurst
	// EvResourceStall is a ResourceStall(Dep, FU, ILD) call.
	EvResourceStall
	// EvRecordProcessed is a RecordProcessed() call.
	EvRecordProcessed
)

// Event is one Processor call in value form. Field meaning depends on
// Kind (documented on the kind constants); unrelated fields are zero.
// The struct is packed to 32 bytes — half a host cache line — because
// the experiment grid moves hundreds of millions of events through
// buffers: resource-stall cycles travel as float bits in Addr/Aux/A/B
// (see the ResourceStall constructor and accessors) rather than as
// three more float64 fields.
type Event struct {
	Kind  EventKind
	Taken bool
	// Size is the byte count of a fetch/load/store/burst.
	Size uint32
	// Addr is the event address: fetch/load/store/burst address, or
	// the branch PC. For EvResourceStall it carries Dep's float bits.
	Addr uint64
	// Aux is the branch target. For EvResourceStall it carries FU's
	// float bits.
	Aux uint64
	// A and B carry the kind's secondary counts: instrs/uops for
	// fetches, loads/stores for bursts. For EvResourceStall they carry
	// the high and low halves of ILD's float bits.
	A, B uint32
}

// ResourceStallEvent packs a ResourceStall call into an Event.
func ResourceStallEvent(dep, fu, ild float64) Event {
	bits := math.Float64bits(ild)
	return Event{
		Kind: EvResourceStall,
		Addr: math.Float64bits(dep),
		Aux:  math.Float64bits(fu),
		A:    uint32(bits >> 32),
		B:    uint32(bits),
	}
}

// Stalls unpacks an EvResourceStall event's cycle triple.
func (ev *Event) Stalls() (dep, fu, ild float64) {
	return math.Float64frombits(ev.Addr),
		math.Float64frombits(ev.Aux),
		math.Float64frombits(uint64(ev.A)<<32 | uint64(ev.B))
}

// BatchProcessor is a Processor that can drain an ordered event buffer
// in one call. ProcessBatch(events) must be observationally identical
// to invoking the corresponding Processor methods one event at a time,
// in order.
type BatchProcessor interface {
	Processor
	ProcessBatch(events []Event)
}

// Replay applies events to p one Processor call at a time, in order —
// the reference semantics every ProcessBatch implementation must
// match, and the drain path for sinks that do not batch.
func Replay(p Processor, events []Event) {
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EvFetchBlock:
			p.FetchBlock(ev.Addr, ev.Size, ev.A, ev.B)
		case EvLoad:
			p.Load(ev.Addr, ev.Size)
		case EvStore:
			p.Store(ev.Addr, ev.Size)
		case EvBranch:
			p.Branch(ev.Addr, ev.Aux, ev.Taken)
		case EvDataBurst:
			p.DataBurst(ev.Addr, ev.Size, ev.A, ev.B)
		case EvResourceStall:
			p.ResourceStall(ev.Stalls())
		case EvRecordProcessed:
			p.RecordProcessed()
		}
	}
}

// DefaultBatchCap is the event capacity a Buffer flushes at. 4096
// events keep the buffer L2-resident on the host while amortising the
// drain call over thousands of events.
const DefaultBatchCap = 4096

// Buffer is a Processor that accumulates events and drains them to a
// sink when full (and on Flush). Emitters that hold a concrete *Buffer
// append with direct method calls — no interface dispatch on the hot
// path — and the sink consumes the batch in one ProcessBatch call when
// it supports batching, or via Replay when it does not.
//
// The backing array is kept at full length with a separate fill
// cursor, so the inlined push is one bounds-checked store and an
// increment rather than an append's slice-header rewrite — push is
// the single hottest engine-side instruction sequence on the grid.
//
// A Buffer belongs to one goroutine, like the Processor it feeds.
// Events are delivered strictly in append order; only the grouping
// changes, never the sequence.
type Buffer struct {
	events []Event // len == cap, filled up to n
	n      int
	sink   Processor
	batch  BatchProcessor // non-nil when sink implements BatchProcessor
	// sinkComparable records whether sink's dynamic type supports ==,
	// so BoundTo never trips the runtime panic on comparing
	// non-comparable values (e.g. two Tee slices).
	sinkComparable bool
}

var _ Processor = (*Buffer)(nil)

// NewBuffer returns a buffer draining into sink, flushing every
// capacity events (DefaultBatchCap when capacity <= 0).
func NewBuffer(sink Processor, capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	b := &Buffer{events: make([]Event, capacity)}
	b.Bind(sink)
	return b
}

// Bind points the buffer at a new sink, draining any pending events
// into the previous sink first so no event is ever re-ordered or lost.
func (b *Buffer) Bind(sink Processor) {
	if b.n > 0 {
		b.Flush()
	}
	b.sink = sink
	b.batch, _ = sink.(BatchProcessor)
	b.sinkComparable = sink != nil && reflect.TypeOf(sink).Comparable()
}

// BoundTo reports whether the buffer currently drains into sink.
// Sinks of non-comparable dynamic types (slices like Tee) are never
// considered bound, so callers rebind conservatively rather than
// risking a comparison panic.
func (b *Buffer) BoundTo(sink Processor) bool {
	if !b.sinkComparable || sink == nil || !reflect.TypeOf(sink).Comparable() {
		return false
	}
	return b.sink == sink
}

// Pending returns how many events are buffered but not yet drained.
func (b *Buffer) Pending() int { return b.n }

// Flush drains all pending events into the sink.
func (b *Buffer) Flush() {
	if b.n == 0 {
		return
	}
	pending := b.events[:b.n]
	if b.batch != nil {
		b.batch.ProcessBatch(pending)
	} else if b.sink != nil {
		Replay(b.sink, pending)
	}
	b.n = 0
}

// push appends one event, draining when the buffer reaches capacity.
func (b *Buffer) push(ev Event) {
	b.events[b.n] = ev
	b.n++
	if b.n == len(b.events) {
		b.Flush()
	}
}

// FetchBlock implements Processor.
func (b *Buffer) FetchBlock(addr uint64, size, instrs, uops uint32) {
	b.push(Event{Kind: EvFetchBlock, Addr: addr, Size: size, A: instrs, B: uops})
}

// Load implements Processor.
func (b *Buffer) Load(addr uint64, size uint32) {
	b.push(Event{Kind: EvLoad, Addr: addr, Size: size})
}

// Store implements Processor.
func (b *Buffer) Store(addr uint64, size uint32) {
	b.push(Event{Kind: EvStore, Addr: addr, Size: size})
}

// Branch implements Processor.
func (b *Buffer) Branch(pc, target uint64, taken bool) {
	b.push(Event{Kind: EvBranch, Addr: pc, Aux: target, Taken: taken})
}

// DataBurst implements Processor.
func (b *Buffer) DataBurst(base uint64, bytes, loads, stores uint32) {
	b.push(Event{Kind: EvDataBurst, Addr: base, Size: bytes, A: loads, B: stores})
}

// ResourceStall implements Processor.
func (b *Buffer) ResourceStall(dep, fu, ild float64) {
	b.push(ResourceStallEvent(dep, fu, ild))
}

// RecordProcessed implements Processor.
func (b *Buffer) RecordProcessed() {
	b.push(Event{Kind: EvRecordProcessed})
}

// Unbatched hides a processor's batch capability: its method set is
// exactly Processor's, so emitters that probe for BatchProcessor fall
// back to the one-call-per-event reference path. The regression suite
// uses it to measure the same cells through both paths and diff the
// rendered tables byte for byte.
type Unbatched struct {
	Processor
}

// Fanout is the BatchProcessor fan-in of the gang drain: each batch
// goes to every sink, in order, before the next batch — so every sink
// sees the exact emission order, and a batch read from memory once
// feeds all K consumers. The per-event methods fan out the same way
// for emitters that do not batch.
type Fanout []BatchProcessor

var _ BatchProcessor = Fanout(nil)

// ProcessBatch implements BatchProcessor.
func (f Fanout) ProcessBatch(events []Event) {
	for _, p := range f {
		p.ProcessBatch(events)
	}
}

// FetchBlock implements Processor.
func (f Fanout) FetchBlock(addr uint64, size, instrs, uops uint32) {
	for _, p := range f {
		p.FetchBlock(addr, size, instrs, uops)
	}
}

// Load implements Processor.
func (f Fanout) Load(addr uint64, size uint32) {
	for _, p := range f {
		p.Load(addr, size)
	}
}

// Store implements Processor.
func (f Fanout) Store(addr uint64, size uint32) {
	for _, p := range f {
		p.Store(addr, size)
	}
}

// Branch implements Processor.
func (f Fanout) Branch(pc, target uint64, taken bool) {
	for _, p := range f {
		p.Branch(pc, target, taken)
	}
}

// DataBurst implements Processor.
func (f Fanout) DataBurst(base uint64, bytes, loads, stores uint32) {
	for _, p := range f {
		p.DataBurst(base, bytes, loads, stores)
	}
}

// ResourceStall implements Processor.
func (f Fanout) ResourceStall(dep, fu, ild float64) {
	for _, p := range f {
		p.ResourceStall(dep, fu, ild)
	}
}

// RecordProcessed implements Processor.
func (f Fanout) RecordProcessed() {
	for _, p := range f {
		p.RecordProcessed()
	}
}
