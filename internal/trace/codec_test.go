package trace

import (
	"encoding/binary"
	"os"
	"testing"
)

// The codec contract: encode→decode is byte-identical for every
// canonical event stream (fields a kind does not use are zero, which
// is how the Buffer/Recorder constructors — the only emitters — build
// events), across chunk boundaries, both fill paths, and the overflow
// fallback.

// collectEvents decodes a recording back into a flat slice via the
// fused-decode drain path.
func collectEvents(r *Recording) []Event {
	var got []Event
	r.Drain(Unbatched2{&appendSink{out: &got}})
	return got
}

// TestCodecRoundTripChunkBoundaries round-trips streams whose lengths
// straddle the staging-chunk boundary: one short, one exactly one
// chunk, one just over, one spanning several chunks plus a tail.
func TestCodecRoundTripChunkBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 37, RecordChunkEvents - 1, RecordChunkEvents,
		RecordChunkEvents + 1, 2*RecordChunkEvents + 777} {
		events := synthEvents(n)
		var r Recording
		r.append(events)
		if r.Len() != n {
			t.Fatalf("n=%d: Len %d", n, r.Len())
		}
		got := collectEvents(&r)
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(got))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("n=%d: event %d altered: got %+v want %+v", n, i, got[i], events[i])
			}
		}
		r.Release()
	}
}

// TestCodecCompressesRedundantStreams pins the size win on an
// engine-shaped stream: strided loads, repeated branch sites, fixed
// fetch kernels. The real-workload ratio is measured and recorded by
// BenchmarkCompressedReplay; this is the floor that keeps the codec
// honest in unit tests.
func TestCodecCompressesRedundantStreams(t *testing.T) {
	var events []Event
	for i := 0; i < 4*RecordChunkEvents; i++ {
		base := uint64(0x4000_0000 + i*100)
		events = append(events,
			Event{Kind: EvFetchBlock, Addr: 0x0800_0040, Size: 28, A: 7, B: 11},
			Event{Kind: EvLoad, Addr: base, Size: 8},
			Event{Kind: EvLoad, Addr: base + 8, Size: 8},
			Event{Kind: EvBranch, Addr: 0x0800_0060, Aux: 0x0800_0040, Taken: i%3 != 0},
			Event{Kind: EvRecordProcessed},
		)
	}
	var r Recording
	r.append(events)
	defer r.Release()
	ratio := float64(r.RawBytes()) / float64(r.Bytes())
	if ratio < 4 {
		t.Errorf("engine-shaped stream compressed only %.1fx (raw %dB, compressed %dB); want >= 4x",
			ratio, r.RawBytes(), r.Bytes())
	}
}

// TestCodecOverflowReleasesImmediately pins the overflow fallback: the
// moment a capture exceeds its cap, the already-encoded chunks and the
// staging tail go back to the free lists — not at cache-eviction time.
func TestCodecOverflowReleasesImmediately(t *testing.T) {
	events := synthEvents(3 * RecordChunkEvents)
	var tally Counting
	rec := NewRecorder(&tally, 2*RecordChunkEvents+10)
	rec.ProcessBatch(events)
	if !rec.Overflowed() {
		t.Fatal("stream past the cap must overflow")
	}
	if rec.Recording() != nil {
		t.Fatal("overflowed recorder must not hand out a recording")
	}
	if got := rec.rec.Bytes(); got != 0 {
		t.Errorf("overflowed capture still retains %d arena bytes; must release immediately", got)
	}
	if rec.rec.tail != nil || len(rec.rec.enc) != 0 {
		t.Error("overflowed capture still holds staging or encoded chunks")
	}
}

// TestCodecBytesAccounting pins Bytes/RawBytes: raw mode reports the
// full arena, compressed mode the encoded chunks plus the raw tail.
func TestCodecBytesAccounting(t *testing.T) {
	events := synthEvents(RecordChunkEvents + 100)
	var comp, raw Recording
	raw.SetRaw(true)
	comp.append(events)
	raw.append(events)
	defer comp.Release()
	defer raw.Release()
	if raw.Bytes() != len(events)*EventBytes || raw.RawBytes() != raw.Bytes() {
		t.Errorf("raw arena bytes %d, want %d", raw.Bytes(), len(events)*EventBytes)
	}
	wantTail := 100 * EventBytes
	if comp.Bytes() <= wantTail || comp.Bytes() >= raw.Bytes() {
		t.Errorf("compressed bytes %d out of range (tail %d, raw %d)", comp.Bytes(), wantTail, raw.Bytes())
	}
	if comp.RawBytes() != raw.RawBytes() {
		t.Errorf("RawBytes %d differs from raw arena %d", comp.RawBytes(), raw.RawBytes())
	}
}

// fuzzEventBytes is the wire shape fuzz inputs and the committed seed
// corpus use: 32 little-endian bytes per event — kind, taken, Size,
// Addr, Aux, A, B — canonicalized so fields the kind does not carry
// are zero. examples/tracesize -corpus writes the same format from a
// real recorded TPC-C stream.
const fuzzEventBytes = 32

// eventsFromBytes decodes the fuzz wire format into canonical events.
func eventsFromBytes(data []byte) []Event {
	n := len(data) / fuzzEventBytes
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		rec := data[i*fuzzEventBytes:]
		kind := EventKind(rec[0] % 7)
		size := binary.LittleEndian.Uint32(rec[2:6])
		addr := binary.LittleEndian.Uint64(rec[6:14])
		aux := binary.LittleEndian.Uint64(rec[14:22])
		a := binary.LittleEndian.Uint32(rec[22:26])
		b := binary.LittleEndian.Uint32(rec[26:30])
		ev := Event{Kind: kind}
		switch kind {
		case EvFetchBlock, EvDataBurst:
			ev.Addr, ev.Size, ev.A, ev.B = addr, size, a, b
		case EvLoad, EvStore:
			ev.Addr, ev.Size = addr, size
		case EvBranch:
			ev.Addr, ev.Aux, ev.Taken = addr, aux, rec[1]&1 == 1
		case EvResourceStall:
			ev.Addr, ev.Aux, ev.A, ev.B = addr, aux, a, b
		case EvRecordProcessed:
		}
		evs = append(evs, ev)
	}
	return evs
}

// marshalEvents is the inverse of eventsFromBytes, for seeding.
func marshalEvents(events []Event) []byte {
	out := make([]byte, 0, len(events)*fuzzEventBytes)
	for _, ev := range events {
		var rec [fuzzEventBytes]byte
		rec[0] = byte(ev.Kind)
		if ev.Taken {
			rec[1] = 1
		}
		binary.LittleEndian.PutUint32(rec[2:6], ev.Size)
		binary.LittleEndian.PutUint64(rec[6:14], ev.Addr)
		binary.LittleEndian.PutUint64(rec[14:22], ev.Aux)
		binary.LittleEndian.PutUint32(rec[22:26], ev.A)
		binary.LittleEndian.PutUint32(rec[26:30], ev.B)
		out = append(out, rec[:]...)
	}
	return out
}

// FuzzCodecRoundTrip feeds arbitrary canonical event streams through
// the columnar codec and requires the decoded stream byte-identical
// to the input — including chunk-boundary crossings (the repeat knob
// multiplies short inputs past RecordChunkEvents) and the
// overflow-fallback path (a capped recorder over the same stream must
// release everything it buffered). Seeded from a recorded TPC-C
// stream (testdata/tpcc-stream-seed.bin, regenerated by
// examples/tracesize -corpus).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(1), marshalEvents(synthEvents(300)))
	// 1200 events at 8 reps crosses the RecordChunkEvents boundary.
	f.Add(uint8(7), marshalEvents(synthEvents(1200)))
	if seed, err := os.ReadFile("testdata/tpcc-stream-seed.bin"); err == nil {
		f.Add(uint8(1), seed)
		f.Add(uint8(3), seed)
	}
	f.Fuzz(func(t *testing.T, repeat uint8, data []byte) {
		base := eventsFromBytes(data)
		if len(base) == 0 {
			return
		}
		reps := int(repeat%8) + 1
		events := make([]Event, 0, len(base)*reps)
		for i := 0; i < reps; i++ {
			events = append(events, base...)
		}

		// Fill through both paths: bulk batches of varying size on one
		// recording, per-event appends on another.
		var bulk, single Recording
		stride := len(base)/3 + 1
		for off := 0; off < len(events); off += stride {
			end := off + stride
			if end > len(events) {
				end = len(events)
			}
			bulk.append(events[off:end])
		}
		for _, ev := range events {
			single.appendOne(ev)
		}
		defer bulk.Release()
		defer single.Release()

		got := collectEvents(&bulk)
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("event %d altered by codec: got %+v want %+v", i, got[i], events[i])
			}
		}
		if !bulk.Equal(&single) {
			t.Fatal("bulk and per-event fills of one stream compare unequal")
		}

		// Overflow fallback: a cap below the stream must abandon the
		// capture, release its arena, and leave the forwarded stream
		// untouched.
		var direct, during Counting
		Replay(&direct, events)
		rec := NewRecorder(&during, len(events)/2)
		rec.ProcessBatch(events)
		if len(events) >= 2 {
			if !rec.Overflowed() || rec.Recording() != nil {
				t.Fatal("stream past the cap must overflow and withhold the recording")
			}
			if rec.rec.Bytes() != 0 {
				t.Fatal("overflowed capture must release its arena immediately")
			}
		}
		if during != direct {
			t.Fatalf("recorder perturbed the forwarded stream:\n got %+v\nwant %+v", during, direct)
		}
	})
}
