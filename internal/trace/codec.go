package trace

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// This file is the columnar codec behind Recording: the struct-of-
// arrays chunk layout that breaks the raw-arena replay ceiling. A raw
// recorded event costs 32 bytes, and PR3 measured that past ~2Mi
// events the arena thrashes DRAM badly enough that replay loses to
// re-executing the engine — exactly the memory-hierarchy bottleneck
// the paper's stall taxonomy predicts, turned on the simulator itself.
// But the streams are extremely redundant (the PR4 drain measured
// same-site branch runs at 37% of events with average length 4, plus
// same-line load runs), so a full chunk compresses the way a column
// store compresses a sorted run:
//
//   - kinds and branch outcomes bit-pack to one nibble per event
//     (3 kind bits + the taken bit);
//   - addresses delta-encode against the previous event of the same
//     kind and the zigzagged delta varint-encodes, so a sequential
//     scan's strided loads, a loop branch's repeated site and a
//     routine's repeated entry point all cost one byte;
//   - sizes, branch targets and the secondary counts (instrs/uops,
//     loads/stores, stall-cycle float bits) delta-encode the same way
//     against per-kind predictors, so per-site constants cost one
//     byte after their first appearance.
//
// Every column keeps one predictor per event kind, reset at each
// chunk boundary, so chunks are self-contained and independently
// decodable. Decode never materializes the event array: Drain decodes
// one host-L1-resident block at a time (DecodeBlockEvents events)
// straight into ProcessBatch, so decompression rides the existing
// single-pass drain exactly the way the gang fan-out does. The codec
// is lossless for every event the emitters construct (fields unused
// by a kind are zero by construction — the Buffer and Recorder
// constructors are the only writers), which FuzzCodecRoundTrip pins
// on arbitrary canonical streams including the recorded TPC-C seed.

// EventBytes is the in-memory size of one raw Event (the struct is
// packed to half a host cache line); raw arena footprints and
// compression ratios are quoted against it.
const EventBytes = 32

// DecodeBlockEvents is the fused-decode block size: 512 events x 32
// bytes = 16 KiB, resident in the host L1D while ProcessBatch drains
// the block, and below the gang drain's 32 KiB sub-batch so a
// MultiPipeline never re-splits a decoded block.
const DecodeBlockEvents = 512

// codecFooterLen is the fixed-width chunk trailer: six little-endian
// uint32s — event count and the five column-stream lengths — parsed
// from the end of the chunk so streams are written in one forward
// pass with no length back-patching.
const codecFooterLen = 24

// Which kinds carry which columns. EvRecordProcessed is kind-only;
// EvResourceStall rides its three stall floats in Addr/Aux/A/B as
// bit patterns (see ResourceStallEvent), so it uses those columns.
// The decode hot loop reads the flags as one table lookup per event.
const (
	colAddr = 1 << iota
	colAux
	colSize
	colAB
)

var kindCols = [8]uint8{
	EvFetchBlock:      colAddr | colSize | colAB,
	EvLoad:            colAddr | colSize,
	EvStore:           colAddr | colSize,
	EvBranch:          colAddr | colAux,
	EvDataBurst:       colAddr | colSize | colAB,
	EvResourceStall:   colAddr | colAux | colAB,
	EvRecordProcessed: 0,
}

func kindHasAddr(k EventKind) bool { return kindCols[k&7]&colAddr != 0 }
func kindHasAux(k EventKind) bool  { return kindCols[k&7]&colAux != 0 }
func kindHasSize(k EventKind) bool { return kindCols[k&7]&colSize != 0 }
func kindHasAB(k EventKind) bool   { return kindCols[k&7]&colAB != 0 }

// zigzag folds a signed delta into an unsigned varint-friendly value:
// 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
func zigzag(d int64) uint64   { return uint64(d)<<1 ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeChunk appends the columnar encoding of events to dst and
// returns it. The layout is five back-to-back streams — packed
// kind+taken nibbles, then the addr, aux, size and A/B delta-varint
// columns — followed by the fixed footer. Encoding makes one pass per
// column over the (L2-resident) staging chunk.
func encodeChunk(dst []byte, events []Event) []byte {
	// Kind + taken nibbles, two events per byte, low nibble first.
	ktStart := len(dst)
	var half byte
	for i := range events {
		nib := byte(events[i].Kind) & 7
		if events[i].Taken {
			nib |= 8
		}
		if i&1 == 0 {
			half = nib
		} else {
			dst = append(dst, half|nib<<4)
		}
	}
	if len(events)&1 == 1 {
		dst = append(dst, half)
	}
	ktLen := len(dst) - ktStart

	// Address column: zigzag varint delta vs the previous event of the
	// same kind (per-kind predictors make interleaved streams — loads
	// walking a page while a loop branch retires — each self-similar).
	addrStart := len(dst)
	var lastAddr [8]uint64
	for i := range events {
		k := events[i].Kind
		if kindHasAddr(k) {
			dst = binary.AppendUvarint(dst, zigzag(int64(events[i].Addr-lastAddr[k])))
			lastAddr[k] = events[i].Addr
		}
	}
	addrLen := len(dst) - addrStart

	auxStart := len(dst)
	var lastAux [8]uint64
	for i := range events {
		k := events[i].Kind
		if kindHasAux(k) {
			dst = binary.AppendUvarint(dst, zigzag(int64(events[i].Aux-lastAux[k])))
			lastAux[k] = events[i].Aux
		}
	}
	auxLen := len(dst) - auxStart

	sizeStart := len(dst)
	var lastSize [8]uint32
	for i := range events {
		k := events[i].Kind
		if kindHasSize(k) {
			dst = binary.AppendUvarint(dst, zigzag(int64(int32(events[i].Size-lastSize[k]))))
			lastSize[k] = events[i].Size
		}
	}
	sizeLen := len(dst) - sizeStart

	abStart := len(dst)
	var lastA, lastB [8]uint32
	for i := range events {
		k := events[i].Kind
		if kindHasAB(k) {
			dst = binary.AppendUvarint(dst, zigzag(int64(int32(events[i].A-lastA[k]))))
			dst = binary.AppendUvarint(dst, zigzag(int64(int32(events[i].B-lastB[k]))))
			lastA[k], lastB[k] = events[i].A, events[i].B
		}
	}
	abLen := len(dst) - abStart

	var foot [codecFooterLen]byte
	binary.LittleEndian.PutUint32(foot[0:], uint32(len(events)))
	binary.LittleEndian.PutUint32(foot[4:], uint32(ktLen))
	binary.LittleEndian.PutUint32(foot[8:], uint32(addrLen))
	binary.LittleEndian.PutUint32(foot[12:], uint32(auxLen))
	binary.LittleEndian.PutUint32(foot[16:], uint32(sizeLen))
	binary.LittleEndian.PutUint32(foot[20:], uint32(abLen))
	return append(dst, foot[:]...)
}

// chunkDecoder streams events back out of one encoded chunk. It is a
// value type reset per chunk; next fills a caller block so the decode
// fuses into the drain without ever building the whole event array.
type chunkDecoder struct {
	n, i                int // events total / consumed
	kt, addr, aux, size []byte
	ab                  []byte
	lastAddr, lastAux   [8]uint64
	lastSize            [8]uint32
	lastA, lastB        [8]uint32
}

// init points the decoder at an encoded chunk.
func (d *chunkDecoder) init(c []byte) {
	if len(c) < codecFooterLen {
		panic(fmt.Sprintf("trace: corrupt encoded chunk (%d bytes)", len(c)))
	}
	foot := c[len(c)-codecFooterLen:]
	n := int(binary.LittleEndian.Uint32(foot[0:]))
	ktLen := int(binary.LittleEndian.Uint32(foot[4:]))
	addrLen := int(binary.LittleEndian.Uint32(foot[8:]))
	auxLen := int(binary.LittleEndian.Uint32(foot[12:]))
	sizeLen := int(binary.LittleEndian.Uint32(foot[16:]))
	abLen := int(binary.LittleEndian.Uint32(foot[20:]))
	if ktLen+addrLen+auxLen+sizeLen+abLen+codecFooterLen != len(c) || ktLen != (n+1)/2 {
		panic("trace: corrupt encoded chunk layout")
	}
	off := 0
	d.kt, off = c[off:off+ktLen], off+ktLen
	d.addr, off = c[off:off+addrLen], off+addrLen
	d.aux, off = c[off:off+auxLen], off+auxLen
	d.size, off = c[off:off+sizeLen], off+sizeLen
	d.ab = c[off : off+abLen]
	d.n, d.i = n, 0
	d.lastAddr = [8]uint64{}
	d.lastAux = [8]uint64{}
	d.lastSize = [8]uint32{}
	d.lastA = [8]uint32{}
	d.lastB = [8]uint32{}
}

// uvarint reads one varint off a column cursor. Deltas against the
// per-kind predictors are overwhelmingly single-byte (repeated sites,
// strided scans), so that case short-circuits the generic loop.
func uvarint(col *[]byte) uint64 {
	c := *col
	if len(c) > 0 && c[0] < 0x80 {
		*col = c[1:]
		return uint64(c[0])
	}
	v, n := binary.Uvarint(c)
	if n <= 0 {
		panic("trace: corrupt varint in encoded chunk")
	}
	*col = c[n:]
	return v
}

// next decodes up to len(dst) events into dst and returns how many it
// produced; zero means the chunk is exhausted. Each decoded field
// advances the matching per-kind predictor, mirroring encodeChunk.
func (d *chunkDecoder) next(dst []Event) int {
	m := len(dst)
	if rem := d.n - d.i; rem < m {
		m = rem
	}
	for j := 0; j < m; j++ {
		nib := d.kt[d.i>>1] >> ((d.i & 1) * 4) & 0xF
		d.i++
		k := EventKind(nib & 7)
		ev := Event{Kind: k, Taken: nib&8 != 0}
		cols := kindCols[k]
		if cols&colAddr != 0 {
			d.lastAddr[k] += uint64(unzigzag(uvarint(&d.addr)))
			ev.Addr = d.lastAddr[k]
		}
		if cols&colAux != 0 {
			d.lastAux[k] += uint64(unzigzag(uvarint(&d.aux)))
			ev.Aux = d.lastAux[k]
		}
		if cols&colSize != 0 {
			d.lastSize[k] += uint32(unzigzag(uvarint(&d.size)))
			ev.Size = d.lastSize[k]
		}
		if cols&colAB != 0 {
			d.lastA[k] += uint32(unzigzag(uvarint(&d.ab)))
			d.lastB[k] += uint32(unzigzag(uvarint(&d.ab)))
			ev.A, ev.B = d.lastA[k], d.lastB[k]
		}
		dst[j] = ev
	}
	return m
}

// encFree recycles encoded chunk buffers, for the same reason
// chunkFree recycles raw staging chunks: a sync.Pool is drained every
// GC cycle and re-faulting the arena in from the kernel costs more
// than the copy it saves. Compressed chunks are a few KiB to a few
// tens of KiB, so the steady-state footprint is the high-water mark
// of live recordings.
var encFree struct {
	mu   sync.Mutex
	bufs [][]byte
}

func getEncBuf() []byte {
	liveEncBufs.Add(1)
	encFree.mu.Lock()
	n := len(encFree.bufs)
	if n == 0 {
		encFree.mu.Unlock()
		return make([]byte, 0, RecordChunkEvents) // ~8x headroom at 4 B/event
	}
	b := encFree.bufs[n-1]
	encFree.bufs = encFree.bufs[:n-1]
	encFree.mu.Unlock()
	return b[:0]
}

func putEncBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	liveEncBufs.Add(-1)
	encFree.mu.Lock()
	encFree.bufs = append(encFree.bufs, b[:0])
	encFree.mu.Unlock()
}

// blockFree recycles the fused-decode blocks Drain and Replay borrow:
// one 16 KiB block per drain in flight, returned on exit.
var blockFree struct {
	mu     sync.Mutex
	blocks [][]Event
}

func getBlock() []Event {
	liveBlocks.Add(1)
	blockFree.mu.Lock()
	n := len(blockFree.blocks)
	if n == 0 {
		blockFree.mu.Unlock()
		return make([]Event, DecodeBlockEvents)
	}
	b := blockFree.blocks[n-1]
	blockFree.blocks = blockFree.blocks[:n-1]
	blockFree.mu.Unlock()
	return b
}

func putBlock(b []Event) {
	if cap(b) < DecodeBlockEvents {
		return
	}
	liveBlocks.Add(-1)
	blockFree.mu.Lock()
	blockFree.blocks = append(blockFree.blocks, b[:DecodeBlockEvents])
	blockFree.mu.Unlock()
}

// recCursor walks a recording event by event, decoding compressed
// chunks through a borrowed block; Equal uses a pair of them to
// compare recordings without materializing either stream. close
// returns the borrowed block to the free list.
type recCursor struct {
	r     *Recording
	chunk int // next chunk index (raw chunks, or encoded then tail)
	dec   chunkDecoder
	block []Event
	buf   []Event // current decoded or raw view
	pos   int
	inDec bool
}

func newRecCursor(r *Recording) *recCursor {
	return &recCursor{r: r}
}

func (c *recCursor) close() {
	if c.block != nil {
		putBlock(c.block)
		c.block = nil
	}
}

// next returns the next event and false at end of stream.
func (c *recCursor) next() (Event, bool) {
	for {
		if c.pos < len(c.buf) {
			ev := c.buf[c.pos]
			c.pos++
			return ev, true
		}
		if c.inDec {
			if c.block == nil {
				c.block = getBlock()
			}
			if n := c.dec.next(c.block); n > 0 {
				c.buf, c.pos = c.block[:n], 0
				continue
			}
			c.inDec = false
		}
		if c.r.raw {
			if c.chunk >= len(c.r.chunks) {
				return Event{}, false
			}
			c.buf, c.pos = c.r.chunks[c.chunk], 0
			c.chunk++
			continue
		}
		if c.chunk < len(c.r.enc) {
			c.dec.init(c.r.enc[c.chunk])
			c.chunk++
			c.inDec = true
			continue
		}
		if c.chunk == len(c.r.enc) {
			c.chunk++
			c.buf, c.pos = c.r.tail, 0
			continue
		}
		return Event{}, false
	}
}
