package trace

import (
	"encoding/binary"
	"fmt"
)

// This file is the serialization half of the record-once/replay-many
// arena: a Recording's event stream framed as the columnar codec's
// self-contained chunks, so the on-disk trace store (internal/
// tracestore) is mostly framing plus an index. The wire layout is
// canonical — chunk boundaries fall every RecordChunkEvents events
// and the encoder is deterministic — so the same event stream always
// marshals to the same bytes, which is what lets the store address
// traces by content digest.
//
// Unmarshal is the only codec entry point that consumes bytes from
// outside the process, so unlike the in-memory decoder (which panics
// on impossible states, since every chunk it sees was built by
// encodeChunk) it validates everything and returns errors: corrupt or
// truncated input must never panic and never strand a borrowed
// buffer, which FuzzStoreLoad pins through the store.

// wireMaxChunks bounds the chunk count a wire header may claim
// (2^20 chunks = 8 Gi events), and wireMaxChunkBytes bounds one
// encoded chunk (64 B/event is ~15x the measured encoding; the codec
// cannot legally exceed ~46 B/event). Both exist so a corrupt length
// cannot drive a huge allocation before validation catches it.
const (
	wireMaxChunks     = 1 << 20
	wireMaxChunkBytes = RecordChunkEvents * 64
)

// MarshalWire appends the recording's framed wire form to dst and
// returns it: uvarint event count, uvarint chunk count, then each
// chunk as uvarint length + encoded bytes. Raw-arena recordings and
// the staging tail are encoded on the fly, so the wire form is always
// the columnar layout regardless of how the recording is held in
// memory.
func (r *Recording) MarshalWire(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.n))
	appendEnc := func(dst []byte, c []byte) []byte {
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		return append(dst, c...)
	}
	if r.raw {
		dst = binary.AppendUvarint(dst, uint64(len(r.chunks)))
		buf := getEncBuf()
		for _, c := range r.chunks {
			buf = encodeChunk(buf[:0], c)
			dst = appendEnc(dst, buf)
		}
		putEncBuf(buf)
		return dst
	}
	nChunks := len(r.enc)
	if len(r.tail) > 0 {
		nChunks++
	}
	dst = binary.AppendUvarint(dst, uint64(nChunks))
	for _, c := range r.enc {
		dst = appendEnc(dst, c)
	}
	if len(r.tail) > 0 {
		buf := encodeChunk(getEncBuf(), r.tail)
		dst = appendEnc(dst, buf)
		putEncBuf(buf)
	}
	return dst
}

// wireUvarint reads one varint, erroring on truncation or overflow.
func wireUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("trace: truncated or invalid varint in wire header")
	}
	return v, data[n:], nil
}

// validateChunk fully decodes one encoded chunk through a borrowed
// block, converting the in-memory decoder's corruption panics into an
// error, and returns the event count. It also rejects chunks whose
// columns are not fully consumed: the wire form is canonical, so
// trailing slack means the bytes did not come from encodeChunk.
func validateChunk(c []byte) (n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			n, err = 0, fmt.Errorf("trace: corrupt encoded chunk: %v", p)
		}
	}()
	var d chunkDecoder
	d.init(c)
	if d.n > RecordChunkEvents {
		return 0, fmt.Errorf("trace: chunk claims %d events, max %d", d.n, RecordChunkEvents)
	}
	block := getBlock()
	defer putBlock(block)
	for {
		k := d.next(block)
		if k == 0 {
			break
		}
		n += k
	}
	if len(d.addr) != 0 || len(d.aux) != 0 || len(d.size) != 0 || len(d.ab) != 0 {
		return 0, fmt.Errorf("trace: encoded chunk has unconsumed column bytes")
	}
	return n, nil
}

// UnmarshalWire parses a MarshalWire payload into a fresh compressed
// Recording whose chunk buffers come from the shared free lists (the
// same arenas capture uses). Corrupt or truncated input returns an
// error with every borrowed buffer returned; the input must be
// canonical (full chunks except the last), so load/store round trips
// are byte-identical.
func UnmarshalWire(data []byte) (*Recording, error) {
	total64, data, err := wireUvarint(data)
	if err != nil {
		return nil, err
	}
	nChunks64, data, err := wireUvarint(data)
	if err != nil {
		return nil, err
	}
	if nChunks64 > wireMaxChunks {
		return nil, fmt.Errorf("trace: wire claims %d chunks, max %d", nChunks64, wireMaxChunks)
	}
	if total64 > nChunks64*RecordChunkEvents {
		return nil, fmt.Errorf("trace: wire claims %d events in %d chunks", total64, nChunks64)
	}
	nChunks := int(nChunks64)
	r := &Recording{}
	fail := func(err error) (*Recording, error) {
		r.Release()
		return nil, err
	}
	seen := 0
	for i := 0; i < nChunks; i++ {
		var clen uint64
		clen, data, err = wireUvarint(data)
		if err != nil {
			return fail(err)
		}
		if clen > wireMaxChunkBytes {
			return fail(fmt.Errorf("trace: chunk %d claims %d bytes, max %d", i, clen, wireMaxChunkBytes))
		}
		if uint64(len(data)) < clen {
			return fail(fmt.Errorf("trace: chunk %d truncated: %d of %d bytes", i, len(data), clen))
		}
		buf := append(getEncBuf(), data[:clen]...)
		data = data[clen:]
		n, err := validateChunk(buf)
		if err != nil {
			putEncBuf(buf)
			return fail(err)
		}
		if i < nChunks-1 && n != RecordChunkEvents {
			putEncBuf(buf)
			return fail(fmt.Errorf("trace: non-final chunk %d holds %d events, want %d", i, n, RecordChunkEvents))
		}
		if n == 0 {
			putEncBuf(buf)
			return fail(fmt.Errorf("trace: empty chunk %d", i))
		}
		r.enc = append(r.enc, buf)
		seen += n
	}
	if len(data) != 0 {
		return fail(fmt.Errorf("trace: %d trailing bytes after wire payload", len(data)))
	}
	if seen != int(total64) {
		return fail(fmt.Errorf("trace: wire header claims %d events, chunks hold %d", total64, seen))
	}
	r.n = seen
	return r, nil
}
