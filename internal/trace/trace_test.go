package trace

import (
	"testing"
	"testing/quick"
)

func TestCountingProcessor(t *testing.T) {
	var c Counting
	c.FetchBlock(CodeBase, 64, 16, 24)
	c.FetchBlock(CodeBase+64, 32, 8, 12)
	c.Load(HeapBase, 8)
	c.Store(PrivateBase, 4)
	c.Branch(CodeBase+10, CodeBase, true)
	c.Branch(CodeBase+20, CodeBase+100, false)
	c.ResourceStall(1.5, 0.5, 0.25)
	c.RecordProcessed()

	if c.Blocks != 2 || c.CodeBytes != 96 || c.Instructions != 24 || c.Uops != 36 {
		t.Errorf("fetch tallies wrong: %+v", c)
	}
	if c.Loads != 1 || c.LoadBytes != 8 || c.Stores != 1 || c.StoreBytes != 4 {
		t.Errorf("data tallies wrong: %+v", c)
	}
	if c.Branches != 2 || c.Taken != 1 {
		t.Errorf("branch tallies wrong: %+v", c)
	}
	if c.DepCycles != 1.5 || c.FUCycles != 0.5 || c.ILDCycles != 0.25 {
		t.Errorf("stall tallies wrong: %+v", c)
	}
	if c.Records != 1 {
		t.Errorf("records = %d, want 1", c.Records)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counting
	tee := Tee{&a, &b}
	tee.FetchBlock(CodeBase, 32, 8, 10)
	tee.Load(HeapBase, 8)
	tee.Store(HeapBase, 8)
	tee.Branch(CodeBase, CodeBase, true)
	tee.ResourceStall(1, 1, 1)
	tee.RecordProcessed()
	if a != b {
		t.Errorf("tee branches diverged: %+v vs %+v", a, b)
	}
	if a.Blocks != 1 || a.Records != 1 {
		t.Errorf("tee did not deliver: %+v", a)
	}
}

func newTestRoutine() *Routine {
	return &Routine{
		Name:          "scan_next",
		CodeBytes:     400,
		Instrs:        100,
		Uops:          150,
		Branches:      BranchMix{Loop: 4, Regular: 4, Irregular: 2},
		ILP:           ILP{DepPerKuop: 100, FUPerKuop: 50, ILDPerKuop: 10},
		PrivateBytes:  256,
		PrivateLoads:  4,
		PrivateStores: 2,
	}
}

func TestLayoutPlacement(t *testing.T) {
	l := NewLayout()
	r1 := l.Place(newTestRoutine())
	r2t := newTestRoutine()
	r2t.Name = "qual_eval"
	r2 := l.Place(r2t)

	if r1.Addr != CodeBase {
		t.Errorf("first routine at %#x, want %#x", r1.Addr, CodeBase)
	}
	if r2.Addr != CodeBase+400 {
		t.Errorf("second routine at %#x, want %#x", r2.Addr, CodeBase+400)
	}
	if r1.PrivateAddr() < PrivateBase || r2.PrivateAddr() <= r1.PrivateAddr() {
		t.Errorf("private regions misplaced: %#x, %#x", r1.PrivateAddr(), r2.PrivateAddr())
	}
	if got := l.CodeFootprint(); got != 800 {
		t.Errorf("footprint = %d, want 800", got)
	}
	if len(l.Routines()) != 2 {
		t.Errorf("routines = %d, want 2", len(l.Routines()))
	}
}

func TestLayoutGapAndAlign(t *testing.T) {
	l := NewLayout()
	l.Gap = 1024
	l.Align = 4096
	r1 := l.Place(newTestRoutine())
	r2t := newTestRoutine()
	r2t.Name = "other"
	r2 := l.Place(r2t)
	if r1.Addr%4096 != 0 || r2.Addr%4096 != 0 {
		t.Errorf("alignment violated: %#x %#x", r1.Addr, r2.Addr)
	}
	if r2.Addr <= r1.Addr+400 {
		t.Errorf("gap not applied: %#x after %#x", r2.Addr, r1.Addr)
	}
}

func TestInvokeEmitsProfile(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	var c Counting
	r.Invoke(&c)
	// Two fetch blocks per invocation: the fixed kernel plus the
	// variable tail.
	if c.Blocks != 2 || c.CodeBytes != 400 || c.Instructions != 100 || c.Uops != 150 {
		t.Errorf("fetch profile wrong: %+v", c)
	}
	// 4 loop sites x 4 iterations + 4 regular + 2 irregular = 22.
	if c.Branches != 22 {
		t.Errorf("branches = %d, want 22", c.Branches)
	}
	if got := r.BranchExecutions(); got != 22 {
		t.Errorf("BranchExecutions = %d, want 22", got)
	}
	if c.Loads != 4 || c.Stores != 2 {
		t.Errorf("private traffic wrong: loads=%d stores=%d", c.Loads, c.Stores)
	}
	if c.DepCycles <= 0 || c.FUCycles <= 0 || c.ILDCycles <= 0 {
		t.Errorf("resource stalls not emitted: %+v", c)
	}
	wantDep := 150.0 / 1000 * 100
	if diff := c.DepCycles - wantDep; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("dep cycles = %v, want %v", c.DepCycles, wantDep)
	}
}

func TestInvokeFracScales(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	var half Counting
	r.InvokeFrac(&half, 1, 2)
	if half.CodeBytes != 200 || half.Instructions != 50 {
		t.Errorf("half invocation wrong: %+v", half)
	}
	// 2 loop sites x 4 iterations + 2 regular + 1 irregular = 11.
	if half.Branches != 11 {
		t.Errorf("half branches = %d, want 11", half.Branches)
	}
	var zero Counting
	r.InvokeFrac(&zero, 0, 4)
	if zero.Blocks != 0 {
		t.Errorf("zero fraction should emit nothing: %+v", zero)
	}
}

func TestInvokeFracPanicsOnZeroDen(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	defer func() {
		if recover() == nil {
			t.Error("InvokeFrac(1,0) should panic")
		}
	}()
	r.InvokeFrac(Discard{}, 1, 0)
}

func TestInvokeFracAboveOneScalesUp(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	var c Counting
	r.InvokeFrac(&c, 3, 2)
	if c.Instructions != 150 {
		t.Errorf("3/2 invocation instructions = %d, want 150", c.Instructions)
	}
	// Fetched bytes never exceed the body.
	if c.CodeBytes > uint64(r.CodeBytes) {
		t.Errorf("fetched %d bytes from a %d-byte body", c.CodeBytes, r.CodeBytes)
	}
}

func TestUnplacedRoutinePanics(t *testing.T) {
	r := newTestRoutine()
	defer func() {
		if recover() == nil {
			t.Error("invoking an unplaced routine should panic")
		}
	}()
	r.Invoke(Discard{})
}

func TestBranchPCsWithinBody(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	ok := true
	probe := branchProbe{lo: r.Addr, hi: r.Addr + uint64(r.CodeBytes), ok: &ok}
	for i := 0; i < 50; i++ {
		r.Invoke(&probe)
	}
	if !ok {
		t.Error("branch PCs escaped the routine body")
	}
}

type branchProbe struct {
	Discard
	lo, hi uint64
	ok     *bool
}

func (b *branchProbe) Branch(pc, target uint64, taken bool) {
	if pc < b.lo || pc >= b.hi {
		*b.ok = false
	}
}

func TestResetRestartsPatterns(t *testing.T) {
	l := NewLayout()
	r := l.Place(newTestRoutine())
	run := func() Counting {
		r.Reset()
		var c Counting
		for i := 0; i < 100; i++ {
			r.Invoke(&c)
		}
		return c
	}
	a := run()
	b := run()
	if a != b {
		t.Errorf("runs after Reset differ: %+v vs %+v", a, b)
	}
	if r.Invoked() != 100 {
		t.Errorf("Invoked = %d, want 100", r.Invoked())
	}
}

func TestLoopBranchesMostlyTaken(t *testing.T) {
	l := NewLayout()
	r := l.Place(&Routine{
		Name:      "loop_only",
		CodeBytes: 200,
		Instrs:    50,
		Uops:      60,
		Branches:  BranchMix{Loop: 4},
	})
	var c Counting
	for i := 0; i < 256; i++ {
		r.Invoke(&c)
	}
	// Each loop branch takes iters-1 of its iters executions.
	frac := float64(c.Taken) / float64(c.Branches)
	want := float64(DefaultLoopIters-1) / float64(DefaultLoopIters)
	if frac < want-0.01 || frac > want+0.01 {
		t.Errorf("loop branches taken fraction = %v, want ~%v", frac, want)
	}
}

// Property: InvokeFrac with num=den equals Invoke exactly, and the
// scaled counts never exceed the full counts.
func TestInvokeFracProperty(t *testing.T) {
	f := func(numRaw, denRaw uint8) bool {
		den := uint32(denRaw%7) + 1
		num := uint32(numRaw) % (den + 1)
		l := NewLayout()
		r1 := l.Place(newTestRoutine())
		r2t := newTestRoutine()
		r2 := l.Place(r2t)
		var full, frac Counting
		r1.Invoke(&full)
		r2.InvokeFrac(&frac, num, den)
		if num == den {
			return frac.CodeBytes == full.CodeBytes && frac.Instructions == full.Instructions &&
				frac.Branches == full.Branches
		}
		return frac.CodeBytes <= full.CodeBytes && frac.Instructions <= full.Instructions &&
			frac.Branches <= full.Branches && frac.Uops <= full.Uops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
