// Package trace defines the hardware-event stream a query engine emits
// while it executes, and the machinery for laying out engine code in a
// synthetic text segment.
//
// The engines in internal/engine do real work (scan real pages,
// evaluate real predicates, build real hash tables) and, as they do it,
// narrate their hardware behaviour to a Processor: which code bytes the
// front end fetches, which data addresses the load/store units touch,
// which branches retire with which outcomes. internal/xeon implements
// Processor with a Pentium II Xeon model; this package only owns the
// vocabulary, so the engine does not depend on the simulator.
package trace

// Address-space layout for the simulated process. The regions are far
// apart so code, private data and buffer-pool heap never share cache
// lines, mirroring a real process image.
const (
	// CodeBase is the start of the text segment.
	CodeBase uint64 = 0x0800_0000
	// PrivateBase is the start of the engine's private data structures
	// (execution state, latches, descriptors): the small, hot working
	// set the paper observes keeping the L1 D-cache miss rate near 2%.
	PrivateBase uint64 = 0x1000_0000
	// StackBase is the start of the simulated thread stack region.
	StackBase uint64 = 0x2000_0000
	// HeapBase is the start of the buffer pool: all relation pages live
	// above this address.
	HeapBase uint64 = 0x4000_0000
)

// LineSize is the cache line size of the simulated platform in bytes
// (Table 4.1: 32 bytes at both cache levels).
const LineSize = 32

// PageSize is the virtual-memory page size used by the TLB model.
const PageSize = 4096

// Processor consumes the event stream of an executing query. All
// methods are called synchronously in program order.
type Processor interface {
	// FetchBlock reports that the front end fetched and retired a
	// straight-line block of code: size bytes starting at addr,
	// decoding to instrs x86 instructions and uops micro-operations.
	FetchBlock(addr uint64, size, instrs, uops uint32)
	// Load reports a data read of size bytes at addr.
	Load(addr uint64, size uint32)
	// Store reports a data write of size bytes at addr.
	Store(addr uint64, size uint32)
	// Branch reports a retired branch at pc jumping to target when
	// taken, with its architectural outcome.
	Branch(pc, target uint64, taken bool)
	// DataBurst reports loads+stores references to a small contiguous
	// region [base, base+bytes): the access pattern of a routine
	// working over its private structures. The simulator walks each
	// line of the region through the data hierarchy once and treats
	// the remaining references as hits within the burst, which is both
	// faithful (repeated references to a hot region hit by definition)
	// and far cheaper than one event per reference.
	DataBurst(base uint64, bytes, loads, stores uint32)
	// ResourceStall reports execution-resource stall cycles measured at
	// the issue stage: dependency-chain stalls, functional-unit
	// contention, and instruction-length-decoder stalls. These mirror
	// the Pentium II's "actual stall time" counters (Table 4.2).
	ResourceStall(depCycles, fuCycles, ildCycles float64)
	// RecordProcessed marks the completion of one logical record, the
	// denominator of the paper's per-record metrics.
	RecordProcessed()
}

// Counting is a Processor that tallies events without simulating any
// hardware. It is useful in tests and as a cheap first pass when only
// instruction counts are needed.
type Counting struct {
	Blocks       uint64
	CodeBytes    uint64
	Instructions uint64
	Uops         uint64
	Loads        uint64
	LoadBytes    uint64
	Stores       uint64
	StoreBytes   uint64
	Branches     uint64
	Taken        uint64
	DepCycles    float64
	FUCycles     float64
	ILDCycles    float64
	Records      uint64
}

var _ Processor = (*Counting)(nil)

// FetchBlock implements Processor.
func (c *Counting) FetchBlock(addr uint64, size, instrs, uops uint32) {
	c.Blocks++
	c.CodeBytes += uint64(size)
	c.Instructions += uint64(instrs)
	c.Uops += uint64(uops)
}

// Load implements Processor.
func (c *Counting) Load(addr uint64, size uint32) {
	c.Loads++
	c.LoadBytes += uint64(size)
}

// Store implements Processor.
func (c *Counting) Store(addr uint64, size uint32) {
	c.Stores++
	c.StoreBytes += uint64(size)
}

// Branch implements Processor.
func (c *Counting) Branch(pc, target uint64, taken bool) {
	c.Branches++
	if taken {
		c.Taken++
	}
}

// DataBurst implements Processor.
func (c *Counting) DataBurst(base uint64, bytes, loads, stores uint32) {
	c.Loads += uint64(loads)
	c.LoadBytes += uint64(loads) * 8
	c.Stores += uint64(stores)
	c.StoreBytes += uint64(stores) * 8
}

// ResourceStall implements Processor.
func (c *Counting) ResourceStall(dep, fu, ild float64) {
	c.DepCycles += dep
	c.FUCycles += fu
	c.ILDCycles += ild
}

// RecordProcessed implements Processor.
func (c *Counting) RecordProcessed() { c.Records++ }

// Discard is a Processor that ignores every event.
type Discard struct{}

var _ Processor = Discard{}

// FetchBlock implements Processor.
func (Discard) FetchBlock(addr uint64, size, instrs, uops uint32) {}

// Load implements Processor.
func (Discard) Load(addr uint64, size uint32) {}

// Store implements Processor.
func (Discard) Store(addr uint64, size uint32) {}

// Branch implements Processor.
func (Discard) Branch(pc, target uint64, taken bool) {}

// DataBurst implements Processor.
func (Discard) DataBurst(base uint64, bytes, loads, stores uint32) {}

// ResourceStall implements Processor.
func (Discard) ResourceStall(dep, fu, ild float64) {}

// RecordProcessed implements Processor.
func (Discard) RecordProcessed() {}

// Tee fans events out to several processors.
type Tee []Processor

var _ Processor = Tee(nil)

// FetchBlock implements Processor.
func (t Tee) FetchBlock(addr uint64, size, instrs, uops uint32) {
	for _, p := range t {
		p.FetchBlock(addr, size, instrs, uops)
	}
}

// Load implements Processor.
func (t Tee) Load(addr uint64, size uint32) {
	for _, p := range t {
		p.Load(addr, size)
	}
}

// Store implements Processor.
func (t Tee) Store(addr uint64, size uint32) {
	for _, p := range t {
		p.Store(addr, size)
	}
}

// Branch implements Processor.
func (t Tee) Branch(pc, target uint64, taken bool) {
	for _, p := range t {
		p.Branch(pc, target, taken)
	}
}

// DataBurst implements Processor.
func (t Tee) DataBurst(base uint64, bytes, loads, stores uint32) {
	for _, p := range t {
		p.DataBurst(base, bytes, loads, stores)
	}
}

// ResourceStall implements Processor.
func (t Tee) ResourceStall(dep, fu, ild float64) {
	for _, p := range t {
		p.ResourceStall(dep, fu, ild)
	}
}

// RecordProcessed implements Processor.
func (t Tee) RecordProcessed() {
	for _, p := range t {
		p.RecordProcessed()
	}
}
