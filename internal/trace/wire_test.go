package trace

import (
	"bytes"
	"testing"
)

// TestWireRoundTrip pins the serialization contract: marshal →
// unmarshal reproduces the exact event sequence for stream lengths
// straddling every chunk boundary, re-marshal is byte-identical
// (content addressing depends on it), and releasing the loaded
// recording returns every borrowed buffer.
func TestWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 37, RecordChunkEvents - 1, RecordChunkEvents,
		RecordChunkEvents + 1, 2*RecordChunkEvents + 777} {
		c0, e0, b0 := LiveBuffers()
		events := synthEvents(n)
		var r Recording
		r.append(events)
		wire := r.MarshalWire(nil)

		got, err := UnmarshalWire(wire)
		if err != nil {
			t.Fatalf("n=%d: UnmarshalWire: %v", n, err)
		}
		if got.Len() != n {
			t.Fatalf("n=%d: loaded Len %d", n, got.Len())
		}
		if !got.Equal(&r) {
			t.Fatalf("n=%d: loaded recording differs from original", n)
		}
		if again := got.MarshalWire(nil); !bytes.Equal(again, wire) {
			t.Fatalf("n=%d: re-marshal differs from original wire bytes", n)
		}
		got.Release()
		r.Release()
		if c1, e1, b1 := LiveBuffers(); c1 != c0 || e1 != e0 || b1 != b0 {
			t.Fatalf("n=%d: buffers leaked: chunks %d->%d encBufs %d->%d blocks %d->%d",
				n, c0, c1, e0, e1, b0, b1)
		}
	}
}

// TestWireRawArenaMatchesCompressed: the wire form is canonical — a
// raw-arena capture of the same stream marshals to the same bytes as
// the compressed capture.
func TestWireRawArenaMatchesCompressed(t *testing.T) {
	events := synthEvents(RecordChunkEvents + 513)
	var comp, raw Recording
	raw.SetRaw(true)
	comp.append(events)
	raw.append(events)
	w1 := comp.MarshalWire(nil)
	w2 := raw.MarshalWire(nil)
	if !bytes.Equal(w1, w2) {
		t.Fatal("raw-arena wire bytes differ from compressed wire bytes")
	}
	comp.Release()
	raw.Release()
}

// TestWireUnmarshalCorrupt feeds truncations and bit flips of a valid
// wire payload through UnmarshalWire: each must error or round-trip
// the identical stream, never panic, and never leak a buffer.
func TestWireUnmarshalCorrupt(t *testing.T) {
	var r Recording
	r.append(synthEvents(RecordChunkEvents + 100))
	wire := r.MarshalWire(nil)
	r.Release()

	c0, e0, b0 := LiveBuffers()
	check := func(label string, data []byte) {
		t.Helper()
		rec, err := UnmarshalWire(data)
		if err == nil {
			// A flip that survives validation must still be a canonical
			// stream (e.g. it landed in an address delta); drain it to
			// prove it is usable, then release.
			if rec.Len() == 0 {
				t.Errorf("%s: accepted an empty corrupt payload", label)
			}
			rec.Release()
		}
		if c1, e1, b1 := LiveBuffers(); c1 != c0 || e1 != e0 || b1 != b0 {
			t.Fatalf("%s: buffers leaked: chunks %d->%d encBufs %d->%d blocks %d->%d",
				label, c0, c1, e0, e1, b0, b1)
		}
	}

	for _, cut := range []int{0, 1, 2, 5, len(wire) / 2, len(wire) - 1} {
		check("truncate", wire[:cut])
	}
	for off := 0; off < len(wire); off += 101 {
		bad := append([]byte(nil), wire...)
		bad[off] ^= 0x55
		check("flip", bad)
	}
	check("trailing", append(append([]byte(nil), wire...), 0xFF))
}
