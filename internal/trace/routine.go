package trace

import (
	"fmt"
	"hash/fnv"
)

// ILP describes the instruction-level-parallelism character of a
// routine's micro-operation stream: how many execution-resource stall
// cycles it generates per thousand retired μops. Long dependency
// chains (pointer chasing, accumulator loops) raise Dep; bursts of
// same-class operations (multiplies, address generation) raise FU;
// long x86 encodings with prefixes raise ILD. The Pentium II exposed
// these as directly measured stall-time counters (Table 4.2), so the
// simulator charges them at issue time rather than deriving them from
// a full out-of-order model.
type ILP struct {
	// DepPerKuop is dependency-stall cycles per 1000 μops.
	DepPerKuop float64
	// FUPerKuop is functional-unit contention stall cycles per 1000 μops.
	FUPerKuop float64
	// ILDPerKuop is instruction-length-decoder stall cycles per 1000 μops.
	ILDPerKuop float64
}

// DefaultLoopIters is the loop trip count assumed for loop branches
// when a routine does not specify one.
const DefaultLoopIters = 4

// BranchMix describes the internal branches a routine retires per full
// invocation, split by predictability class.
type BranchMix struct {
	// Loop branches close tight loops: taken except on exit. A warmed
	// predictor gets nearly all of them right.
	Loop uint16
	// Regular branches follow short repeating patterns (alternating
	// paths, unrolled checks). Predictable by a two-level predictor.
	Regular uint16
	// Irregular branches depend on effectively random data (hash
	// buckets, byte comparisons); no predictor does much better than
	// chance on them.
	Irregular uint16
}

// Total returns the number of internal branch sites per invocation.
func (m BranchMix) Total() uint16 { return m.Loop + m.Regular + m.Irregular }

// Executions returns the number of branch instructions retired per
// full invocation given the loop trip count.
func (m BranchMix) Executions(loopIters uint16) uint64 {
	if loopIters == 0 {
		loopIters = DefaultLoopIters
	}
	return uint64(m.Loop)*uint64(loopIters) + uint64(m.Regular) + uint64(m.Irregular)
}

// BranchExecutions returns the branch instructions the routine retires
// per full invocation.
func (r *Routine) BranchExecutions() uint64 {
	return r.Branches.Executions(r.LoopIters)
}

// Routine is a unit of engine code with a fixed position in the text
// segment and a fixed per-invocation hardware cost profile. Invoking a
// routine emits its instruction fetches, internal branches, private
// data-structure accesses and resource stalls into a Processor. The
// relation-data accesses and data-dependent branches are emitted by
// the engine itself, because only the engine knows the record
// addresses and predicate outcomes.
//
// Invoke advances per-routine dynamic state (the invocation counter
// that phases branch patterns, the PRNG, the working-set cursors), so
// a Routine — and the Layout that places it — belongs to exactly one
// goroutine. The dynamic state is also what Reset rewinds to make
// measured runs repeatable.
type Routine struct {
	// Name identifies the routine in diagnostics.
	Name string
	// Addr is the routine's start address in the text segment,
	// assigned by a Layout.
	Addr uint64
	// CodeBytes is the routine's static body size: the address range
	// its code occupies. Large bodies model the many data-dependent
	// paths of layered engine code.
	CodeBytes uint32
	// ExecBytes is the number of instruction bytes fetched per full
	// invocation: a fixed kernel plus a variable tail selected from
	// the body. Zero (or anything above CodeBytes) means the whole
	// body executes each time.
	ExecBytes uint32
	// Instrs is the number of x86 instructions retired per full
	// invocation.
	Instrs uint32
	// Uops is the number of μops retired per full invocation
	// (1–3 per instruction on the Pentium II).
	Uops uint32
	// Branches is the internal branch mix per full invocation.
	// Branch instructions are included in (not additional to) Instrs.
	Branches BranchMix
	// LoopIters is how many times each loop branch executes per
	// invocation (its loop trip count). Zero means DefaultLoopIters.
	LoopIters uint16
	// ILP is the resource-stall profile.
	ILP ILP
	// PrivateBytes is the size of the routine's private data structures
	// (cursors, latches, scratch). Assigned a region by Layout.
	PrivateBytes uint32
	// PrivateLoads and PrivateStores are the per-invocation accesses to
	// the private region.
	PrivateLoads  uint16
	PrivateStores uint16
	// SharedBytes is the size of the routine's larger shared working
	// set (buffer descriptors, lock tables, metadata) — too big for the
	// L1 D-cache but L2-resident. SharedWindow bytes of it are walked
	// per invocation, rotating through the region, so these references
	// miss L1D and hit L2: the traffic that sets the L2 data miss
	// *rate* without adding memory-latency stalls.
	SharedBytes  uint32
	SharedWindow uint32

	privAddr   uint64 // base of private region, assigned by Layout
	sharedAddr uint64 // base of shared region, assigned by Layout
	invoked    uint64 // invocation counter, drives branch patterns
	rng        uint64 // per-routine PRNG state for irregular branches
	privPos    uint32 // rotating cursor within the private region
	sharedPos  uint32 // rotating cursor within the shared region

	// scratch carries events for callers that invoke with a plain
	// Processor: the single invoke implementation is monomorphic on
	// *Buffer (so its per-event appends inline), and the scratch
	// buffer bridges the interface path through it, flushing before
	// Invoke returns so event order is unchanged.
	scratch *Buffer
}

// PrivateAddr returns the base address of the routine's private data
// region (zero before the routine is placed by a Layout).
func (r *Routine) PrivateAddr() uint64 { return r.privAddr }

// Invoked returns how many times the routine has been invoked.
func (r *Routine) Invoked() uint64 { return r.invoked }

// Reset clears the routine's dynamic state (invocation counter, branch
// pattern phase, PRNG) without moving it in the address space.
func (r *Routine) Reset() {
	r.invoked = 0
	r.privPos = 0
	r.sharedPos = 0
	h := fnv.New64a()
	h.Write([]byte(r.Name))
	r.rng = h.Sum64() | 1
}

// nextRand advances the routine's xorshift PRNG and returns a
// pseudo-random 64-bit value. Deterministic per routine name.
func (r *Routine) nextRand() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Invoke emits one full execution of the routine into p.
func (r *Routine) Invoke(p Processor) {
	b, owned := r.emitter(p)
	invoke(r, b, 1, 1)
	if owned {
		b.Flush()
	}
}

// InvokeBuf is Invoke specialised to an event buffer: the concrete
// receiver lets the compiler devirtualise and inline the per-event
// appends, the hot path of a batched query run.
func (r *Routine) InvokeBuf(b *Buffer) { invoke(r, b, 1, 1) }

// InvokeFrac emits a scaled execution: num/den of the routine's
// per-invocation profile (instructions, μops, branches, private
// accesses). Fractions below one model early-exit paths; fractions
// above one model bodies whose internal loops run extra iterations
// (e.g. per-field deformatting of wider records). Fetched bytes are
// capped at the routine's body size. den must be positive.
func (r *Routine) InvokeFrac(p Processor, num, den uint32) {
	if den == 0 {
		panic(fmt.Sprintf("trace: routine %s: InvokeFrac with zero denominator", r.Name))
	}
	b, owned := r.emitter(p)
	invoke(r, b, num, den)
	if owned {
		b.Flush()
	}
}

// InvokeFracBuf is InvokeFrac specialised to an event buffer.
func (r *Routine) InvokeFracBuf(b *Buffer, num, den uint32) {
	if den == 0 {
		panic(fmt.Sprintf("trace: routine %s: InvokeFrac with zero denominator", r.Name))
	}
	invoke(r, b, num, den)
}

// emitter bridges an interface-typed destination into the monomorphic
// invoke body: a *Buffer passes through, anything else borrows the
// routine's scratch buffer (flushed before Invoke returns, so the
// processor sees the identical event order either way).
func (r *Routine) emitter(p Processor) (*Buffer, bool) {
	if b, ok := p.(*Buffer); ok {
		return b, false
	}
	if r.scratch == nil {
		r.scratch = NewBuffer(p, 256)
	} else {
		r.scratch.Bind(p)
	}
	return r.scratch, true
}

// invoke emits one scaled execution into the event buffer. It is
// deliberately monomorphic on *Buffer — the per-event appends inline
// into the body — and every execution path, batched or reference,
// funnels through it, so there is exactly one narration of a
// routine's hardware behaviour.
func invoke(r *Routine, p *Buffer, num, den uint32) {
	if r.Addr == 0 {
		panic(fmt.Sprintf("trace: routine %s invoked before being placed in a Layout", r.Name))
	}
	r.invoked++
	if num == 0 {
		return
	}
	scale := func(v uint32) uint32 {
		s := uint64(v) * uint64(num) / uint64(den)
		if s == 0 && v > 0 {
			s = 1
		}
		return uint32(s)
	}
	exec := r.ExecBytes
	if exec == 0 || exec > r.CodeBytes {
		exec = r.CodeBytes
	}
	exec = scale(exec)
	if exec > r.CodeBytes {
		exec = r.CodeBytes
	}
	instrs := scale(r.Instrs)
	uops := scale(r.Uops)
	if uops < instrs {
		uops = instrs
	}

	// The executed path splits into a fixed kernel (the straight-line
	// entry code every invocation runs) and a variable tail at a
	// pseudo-random offset in the body (the data-dependent paths large
	// engines take: different record states, error checks, layers).
	// When the body is much larger than the I-cache, consecutive
	// invocations fetch mostly-disjoint tails — the "large instruction
	// footprint" behaviour of commercial DBMS code.
	fixed := exec / 2
	varLen := exec - fixed
	varOff := uint64(fixed)
	if r.CodeBytes > exec {
		span := uint64(r.CodeBytes - fixed - varLen)
		varOff = uint64(fixed) + (r.nextRand()%(span/LineSize+1))*LineSize
	}
	p.FetchBlock(r.Addr, fixed, instrs/2, uops/2)
	p.FetchBlock(r.Addr+varOff, varLen, instrs-instrs/2, uops-uops/2)

	// Internal branches. Loop branches live in the fixed kernel (tight
	// loops re-execute the same PCs — BTB-resident); regular and
	// irregular branch sites split between the kernel and the variable
	// tail, whose PCs change between invocations and keep missing the
	// BTB, the mix behind the paper's ~50% BTB miss rate. Each loop
	// branch executes LoopIters times per invocation.
	nb := uint32(r.Branches.Total())
	if nb > 0 {
		emit := scale(nb)
		loopCut := uint32(r.Branches.Loop) * num / den
		regCut := loopCut + uint32(r.Branches.Regular)*num/den
		stride := exec / (emit + 1)
		if stride == 0 {
			stride = 4
		}
		iters := uint64(r.LoopIters)
		if iters == 0 {
			iters = DefaultLoopIters
		}
		for i := uint32(0); i < emit; i++ {
			// A quarter of the non-loop sites sit in the fixed kernel;
			// the rest live in the variable tail, whose PCs change
			// between invocations and keep pressuring the BTB (loop
			// branches always sit in the kernel).
			off := uint64((i + 1) * stride / 2)
			var pc uint64
			if i < loopCut || i%4 == 0 {
				pc = r.Addr + off%uint64(maxU32(fixed, 8))
			} else {
				pc = r.Addr + varOff + off%uint64(maxU32(varLen, 8))
			}
			switch {
			case i < loopCut:
				target := pc - uint64(stride) - 4
				// Loop branch: taken on every iteration except the
				// exit; a two-level predictor learns the period.
				for it := uint64(1); it < iters; it++ {
					p.Branch(pc, target, true)
				}
				p.Branch(pc, target, false)
			case i < regCut:
				// Regular branch: a rarely-taken forward check (error
				// paths, boundary cases) — static forward-not-taken is
				// usually right, and not-taken branches are never
				// allocated into the BTB.
				p.Branch(pc, pc+uint64(stride)+8, (r.invoked+uint64(7*i))%32 == 0)
			default:
				p.Branch(pc, pc+uint64(stride)+8, r.nextRand()&1 == 0)
			}
		}
	}

	// Private data-structure traffic: one burst over the routine's
	// private region.
	loads := uint32(r.PrivateLoads) * num / den
	stores := uint32(r.PrivateStores) * num / den
	if r.PrivateBytes > 0 && loads+stores > 0 {
		p.DataBurst(r.privAddr, r.PrivateBytes, loads, stores)
	}

	// Shared working-set traffic: walk a window of the large region,
	// rotating so revisits happen long after L1D eviction.
	if r.SharedBytes > 0 && r.SharedWindow > 0 {
		w := r.SharedWindow * num / den
		if w > r.SharedBytes {
			w = r.SharedBytes
		}
		if w > 0 {
			start := r.sharedPos
			if start+w <= r.SharedBytes {
				p.DataBurst(r.sharedAddr+uint64(start), w, w/LineSize+1, 0)
			} else {
				first := r.SharedBytes - start
				p.DataBurst(r.sharedAddr+uint64(start), first, first/LineSize+1, 0)
				p.DataBurst(r.sharedAddr, w-first, (w-first)/LineSize+1, 0)
			}
			r.sharedPos = (start + w) % r.SharedBytes
		}
	}

	if r.ILP != (ILP{}) && uops > 0 {
		k := float64(uops) / 1000
		p.ResourceStall(r.ILP.DepPerKuop*k, r.ILP.FUPerKuop*k, r.ILP.ILDPerKuop*k)
	}
}

// Layout assigns routines addresses in the synthetic text segment and
// private-data regions in the private segment. The placement strategy
// models how a build lays out its hot code:
//
//   - A compact layout packs routines back to back, the
//     instruction-placement optimisation the paper recommends.
//   - A scattered layout separates routines with cold-code gaps and
//     aligns them so their lines collide in the L1 I-cache's sets,
//     which is how large unoptimised binaries behave.
type Layout struct {
	nextCode uint64
	nextPriv uint64
	// Gap is the cold-code padding inserted between routines, in bytes.
	Gap uint32
	// Align, when nonzero, rounds each routine's start address up to a
	// multiple of Align. Aligning to a multiple of the I-cache way
	// size (4 KB on the Xeon) makes routine prefixes contend for the
	// same cache sets.
	Align uint32

	routines []*Routine
}

// NewLayout returns an empty layout starting at the canonical segment
// bases.
func NewLayout() *Layout {
	return &Layout{nextCode: CodeBase, nextPriv: PrivateBase}
}

// Place assigns r the next code address and a private-data region,
// resets its dynamic state, and returns r.
func (l *Layout) Place(r *Routine) *Routine {
	if r.CodeBytes == 0 {
		panic(fmt.Sprintf("trace: routine %s has no code", r.Name))
	}
	addr := l.nextCode
	if l.Align > 1 {
		a := uint64(l.Align)
		addr = (addr + a - 1) / a * a
	}
	r.Addr = addr
	l.nextCode = addr + uint64(r.CodeBytes) + uint64(l.Gap)

	if r.PrivateBytes > 0 {
		r.privAddr = l.nextPriv
		// Keep private regions line-aligned and non-adjacent.
		l.nextPriv += uint64((r.PrivateBytes/LineSize + 2) * LineSize)
	}
	if r.SharedBytes > 0 {
		r.sharedAddr = l.nextPriv
		l.nextPriv += uint64((r.SharedBytes/LineSize + 2) * LineSize)
	}
	r.Reset()
	l.routines = append(l.routines, r)
	return r
}

// Routines returns the routines placed so far, in placement order.
func (l *Layout) Routines() []*Routine { return l.routines }

// CodeFootprint returns the total text-segment bytes spanned by the
// placed routines, including gaps and alignment padding.
func (l *Layout) CodeFootprint() uint64 {
	if len(l.routines) == 0 {
		return 0
	}
	return l.nextCode - CodeBase
}

// ResetAll resets the dynamic state of every placed routine.
func (l *Layout) ResetAll() {
	for _, r := range l.routines {
		r.Reset()
	}
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
