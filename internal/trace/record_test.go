package trace

import (
	"testing"
)

// synthEvents builds a deterministic mixed-kind event stream.
func synthEvents(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			evs = append(evs, Event{Kind: EvFetchBlock, Addr: uint64(i) * 64, Size: 48, A: 12, B: 20})
		case 1:
			evs = append(evs, Event{Kind: EvLoad, Addr: uint64(i) * 8, Size: 8})
		case 2:
			evs = append(evs, Event{Kind: EvStore, Addr: uint64(i) * 8, Size: 4})
		case 3:
			evs = append(evs, Event{Kind: EvBranch, Addr: uint64(i), Aux: uint64(i + 100), Taken: i%2 == 0})
		default:
			evs = append(evs, Event{Kind: EvRecordProcessed})
		}
	}
	return evs
}

// TestRecorderCapturesAndDrainReplays records a stream through the
// batch path and checks the replayed stream produces the identical
// Counting tally, in both the Drain (batched) and Replay (reference)
// directions.
func TestRecorderCapturesAndDrainReplays(t *testing.T) {
	events := synthEvents(3 * RecordChunkEvents / 2)

	var direct Counting
	Replay(&direct, events)

	var during Counting
	rec := NewRecorder(&during, 0)
	buf := NewBuffer(rec, 100) // force several flushes through the recorder
	Replay(buf, events)
	buf.Flush()

	if during != direct {
		t.Fatalf("forwarding through the recorder changed the stream:\n got %+v\nwant %+v", during, direct)
	}
	r := rec.Recording()
	if r == nil {
		t.Fatal("recording missing without overflow")
	}
	if r.Len() != len(events) {
		t.Fatalf("recorded %d events, want %d", r.Len(), len(events))
	}

	var unbatched Counting
	r.Replay(&unbatched)
	if unbatched != direct {
		t.Errorf("Replay tally differs:\n got %+v\nwant %+v", unbatched, direct)
	}

	// Drain must deliver the identical sequence (order included):
	// capture it event by event and compare.
	var got []Event
	sink := &appendSink{out: &got}
	r.Drain(Unbatched2{sink})
	if len(got) != len(events) {
		t.Fatalf("drained %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d reordered or altered: got %+v want %+v", i, got[i], events[i])
		}
	}
}

// appendSink records every Processor call back into event form.
type appendSink struct{ out *[]Event }

func (a *appendSink) FetchBlock(addr uint64, size, instrs, uops uint32) {
	*a.out = append(*a.out, Event{Kind: EvFetchBlock, Addr: addr, Size: size, A: instrs, B: uops})
}
func (a *appendSink) Load(addr uint64, size uint32) {
	*a.out = append(*a.out, Event{Kind: EvLoad, Addr: addr, Size: size})
}
func (a *appendSink) Store(addr uint64, size uint32) {
	*a.out = append(*a.out, Event{Kind: EvStore, Addr: addr, Size: size})
}
func (a *appendSink) Branch(pc, target uint64, taken bool) {
	*a.out = append(*a.out, Event{Kind: EvBranch, Addr: pc, Aux: target, Taken: taken})
}
func (a *appendSink) DataBurst(base uint64, bytes, loads, stores uint32) {
	*a.out = append(*a.out, Event{Kind: EvDataBurst, Addr: base, Size: bytes, A: loads, B: stores})
}
func (a *appendSink) ResourceStall(dep, fu, ild float64) {
	*a.out = append(*a.out, ResourceStallEvent(dep, fu, ild))
}
func (a *appendSink) RecordProcessed() {
	*a.out = append(*a.out, Event{Kind: EvRecordProcessed})
}

// Unbatched2 adapts a Processor into a BatchProcessor via Replay, so
// Drain can feed a non-batching sink in tests.
type Unbatched2 struct{ Processor }

func (u Unbatched2) ProcessBatch(events []Event) { Replay(u.Processor, events) }

// TestRecorderPerEventPath drives the recorder through the plain
// Processor methods (a sink that does not batch) and checks the same
// capture falls out.
func TestRecorderPerEventPath(t *testing.T) {
	events := synthEvents(500)
	var tally Counting
	rec := NewRecorder(&tally, 0)
	Replay(rec, events) // one Processor call per event, no buffer
	r := rec.Recording()
	if r.Len() != len(events) {
		t.Fatalf("recorded %d events, want %d", r.Len(), len(events))
	}
	var replayed Counting
	r.Replay(&replayed)
	if replayed != tally {
		t.Errorf("per-event capture replays differently:\n got %+v\nwant %+v", replayed, tally)
	}
}

// TestRecorderOverflowFallsBack checks the memory cap: a stream beyond
// maxEvents abandons the capture (releasing its chunks) but keeps
// forwarding unchanged.
func TestRecorderOverflowFallsBack(t *testing.T) {
	events := synthEvents(1000)
	var direct Counting
	Replay(&direct, events)

	var during Counting
	rec := NewRecorder(&during, 600)
	buf := NewBuffer(rec, 128)
	Replay(buf, events)
	buf.Flush()

	if !rec.Overflowed() {
		t.Fatal("1000 events past a 600-event cap should overflow")
	}
	if rec.Recording() != nil {
		t.Error("overflowed recorder must not hand out a partial recording")
	}
	if during != direct {
		t.Errorf("overflow perturbed the forwarded stream:\n got %+v\nwant %+v", during, direct)
	}
}

// TestRecordingEqual pins Equal across different fill paths (bulk
// append vs per-event) and across the compressed and raw arena
// layouts.
func TestRecordingEqual(t *testing.T) {
	events := synthEvents(RecordChunkEvents + 100)
	var a, b Recording
	a.append(events)
	for _, ev := range events {
		b.appendOne(ev)
	}
	if !a.Equal(&b) || !b.Equal(&a) {
		t.Error("equal streams with different fill paths must compare equal")
	}
	var raw Recording
	raw.SetRaw(true)
	raw.append(events)
	if !a.Equal(&raw) || !raw.Equal(&a) {
		t.Error("compressed and raw layouts of one stream must compare equal")
	}
	b.appendOne(Event{Kind: EvRecordProcessed})
	if a.Equal(&b) || b.Equal(&a) {
		t.Error("length difference must compare unequal")
	}
	mutated := append([]Event(nil), events...)
	mutated[0].Addr ^= 1
	var c Recording
	c.append(mutated)
	if a.Equal(&c) {
		t.Error("content difference must compare unequal")
	}
	a.Release()
	b.Release()
	c.Release()
	raw.Release()
	if a.Len() != 0 {
		t.Error("Release must empty the recording")
	}
}

// TestRecordingReleaseReuse checks the free lists actually recycle
// staging-chunk and encoded-buffer capacity across captures.
func TestRecordingReleaseReuse(t *testing.T) {
	events := synthEvents(2 * RecordChunkEvents)
	var r Recording
	r.append(events)
	if len(r.enc) != 2 {
		t.Fatalf("2 encoded chunks expected, got %d", len(r.enc))
	}
	if r.Bytes() >= r.RawBytes() {
		t.Errorf("encoded chunks (%dB) should undercut the raw arena (%dB)", r.Bytes(), r.RawBytes())
	}
	r.Release()

	allocs := testing.AllocsPerRun(10, func() {
		var r2 Recording
		r2.append(events)
		r2.Release()
	})
	// The staging chunk and encoded buffers must come from the free
	// lists; only the small slice-header bookkeeping may allocate.
	if allocs > 8 {
		t.Errorf("recycled capture allocated %.0f objects per run; free lists not reused", allocs)
	}
}
