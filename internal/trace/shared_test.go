package trace

import "testing"

// sharedRoutine builds a routine with a large shared working set.
func sharedTestRoutine() *Routine {
	return &Routine{
		Name:         "shared",
		CodeBytes:    256,
		Instrs:       64,
		Uops:         100,
		SharedBytes:  4096,
		SharedWindow: 512,
	}
}

func TestSharedWindowRotates(t *testing.T) {
	l := NewLayout()
	r := l.Place(sharedTestRoutine())
	if r.sharedAddr == 0 {
		t.Fatal("shared region not placed")
	}
	// Track the distinct addresses the bursts cover.
	probe := &burstProbe{}
	// 8 invocations x 512B windows cover the whole 4KB region once.
	for i := 0; i < 8; i++ {
		r.Invoke(probe)
	}
	if probe.minAddr != r.sharedAddr {
		t.Errorf("window never hit region start: %#x vs %#x", probe.minAddr, r.sharedAddr)
	}
	span := probe.maxEnd - r.sharedAddr
	if span != 4096 {
		t.Errorf("rotation covered %d bytes, want 4096", span)
	}
	// Wrap: further invocations stay inside the region.
	for i := 0; i < 20; i++ {
		r.Invoke(probe)
	}
	if probe.maxEnd > r.sharedAddr+4096 {
		t.Errorf("burst escaped region: end %#x", probe.maxEnd)
	}
}

type burstProbe struct {
	Discard
	minAddr uint64
	maxEnd  uint64
}

func (b *burstProbe) DataBurst(base uint64, bytes, loads, stores uint32) {
	if b.minAddr == 0 || base < b.minAddr {
		b.minAddr = base
	}
	if end := base + uint64(bytes); end > b.maxEnd {
		b.maxEnd = end
	}
}

func TestSharedWindowLargerThanRegionClamps(t *testing.T) {
	l := NewLayout()
	r := l.Place(&Routine{
		Name: "clamp", CodeBytes: 64, Instrs: 8, Uops: 10,
		SharedBytes: 256, SharedWindow: 1 << 20,
	})
	var c Counting
	r.Invoke(&c)
	// Window is clamped to the region: at most 256/32+1 load refs.
	if c.Loads > 9 {
		t.Errorf("clamped window produced %d loads", c.Loads)
	}
}

func TestVariableTailStaysInBody(t *testing.T) {
	l := NewLayout()
	r := l.Place(&Routine{
		Name: "tail", CodeBytes: 64 * 1024, ExecBytes: 4096,
		Instrs: 1000, Uops: 1700,
	})
	probe := &fetchProbe{lo: r.Addr, hi: r.Addr + uint64(r.CodeBytes), ok: true}
	for i := 0; i < 200; i++ {
		r.Invoke(probe)
	}
	if !probe.ok {
		t.Error("fetch escaped the routine body")
	}
	if probe.distinct < 10 {
		t.Errorf("variable tail visited only %d distinct offsets; expected spread", probe.distinct)
	}
}

type fetchProbe struct {
	Discard
	lo, hi   uint64
	ok       bool
	seen     map[uint64]bool
	distinct int
}

func (f *fetchProbe) FetchBlock(addr uint64, size, instrs, uops uint32) {
	if addr < f.lo || addr+uint64(size) > f.hi {
		f.ok = false
	}
	if f.seen == nil {
		f.seen = map[uint64]bool{}
	}
	if !f.seen[addr] {
		f.seen[addr] = true
		f.distinct++
	}
}

func TestExecBytesZeroMeansWholeBody(t *testing.T) {
	l := NewLayout()
	r := l.Place(&Routine{Name: "whole", CodeBytes: 640, Instrs: 160, Uops: 200})
	var c Counting
	r.Invoke(&c)
	if c.CodeBytes != 640 {
		t.Errorf("fetched %d bytes, want the whole 640-byte body", c.CodeBytes)
	}
}

func TestLayoutPlacesSharedAfterPrivate(t *testing.T) {
	l := NewLayout()
	r := l.Place(&Routine{
		Name: "both", CodeBytes: 64, Instrs: 8, Uops: 10,
		PrivateBytes: 128, SharedBytes: 1024, SharedWindow: 64,
	})
	if r.privAddr == 0 || r.sharedAddr == 0 {
		t.Fatal("regions not placed")
	}
	if r.sharedAddr <= r.privAddr {
		t.Error("shared region should follow the private region")
	}
	if r.sharedAddr < PrivateBase || r.sharedAddr >= StackBase {
		t.Errorf("shared region outside private segment: %#x", r.sharedAddr)
	}
}
