package trace

import (
	"sync"
	"sync/atomic"
)

// This file is the record-once / replay-many half of the batch API.
// The measurement protocol of the paper (Section 4.3) feeds the same
// event stream through the simulator several times — warm-up runs,
// then a measured run — and the stream itself is a pure function of
// the experiment cell, so re-generating it per run is pure overhead.
// A Recorder captures the stream the first time it flows past (by
// interposing on the BatchProcessor flush path the emitters already
// drain through), and a Recording replays it any number of times by
// feeding the captured chunks straight back into ProcessBatch — zero
// re-emission, zero per-event dispatch, zero copying.
//
// Recordings store events in columnar compressed chunks (see
// codec.go): a single raw staging chunk fills to RecordChunkEvents
// events and is then encoded into a struct-of-arrays byte buffer —
// delta/varint addresses, bit-packed kinds and outcomes — typically
// 4-8x smaller than the raw 32-byte events, which is what lets large
// OLTP mixes replay from a DRAM-friendly arena instead of falling
// back to re-execution. Raw staging chunks and encoded buffers are
// both drawn from shared free lists, so a worker measuring cells one
// after another recycles the same arena instead of growing and
// abandoning multi-hundred-megabyte slices per cell. SetRaw keeps the
// PR3 uncompressed layout as a debugging/measurement reference; the
// two representations drain identically (compress-smoke pins the
// goldens across both).

// RecordChunkEvents is the event capacity of one recording chunk:
// 8192 events x 32 bytes = 256 KiB of staging, big enough to amortise
// the encode pass and the drain call, small enough to stay L2-hot
// while the columns are built.
const RecordChunkEvents = 8192

// chunkFree is the shared free list of retired chunks. It is a plain
// list rather than a sync.Pool on purpose: a sync.Pool is drained at
// every GC cycle, and with multi-gigabyte recordings cycling through
// a grid run that means re-faulting the whole arena in from the
// kernel over and over — measurably slower than the event copy
// itself. The explicit list keeps the arena's pages resident, so the
// steady-state footprint is the high-water recording (bounded by the
// recording cap) and a cell's capture re-uses warm memory.
var chunkFree struct {
	mu     sync.Mutex
	chunks [][]Event
}

// liveChunks / liveEncBufs / liveBlocks count buffers currently
// checked out of the free lists (borrowed minus returned). They exist
// for leak auditing: every capture path — including the overflow
// fallbacks that abandon a capture mid-stream — must return each
// borrowed buffer, or a grid run slowly strands its arena. The
// counters move once per chunk (8192 events), so they cost nothing on
// the per-event hot path. LiveBuffers exposes them to tests.
var liveChunks, liveEncBufs, liveBlocks atomic.Int64

// LiveBuffers reports how many pooled buffers are currently checked
// out of the shared free lists: raw staging chunks, encoded chunk
// buffers, and fused-decode blocks. A level that fails to return to
// its pre-capture value once every Recording is released indicates a
// leaked buffer; the harness overflow regression pins exactly that.
func LiveBuffers() (chunks, encBufs, blocks int64) {
	return liveChunks.Load(), liveEncBufs.Load(), liveBlocks.Load()
}

func getChunk() []Event {
	liveChunks.Add(1)
	chunkFree.mu.Lock()
	n := len(chunkFree.chunks)
	if n == 0 {
		chunkFree.mu.Unlock()
		return make([]Event, 0, RecordChunkEvents)
	}
	c := chunkFree.chunks[n-1]
	chunkFree.chunks = chunkFree.chunks[:n-1]
	chunkFree.mu.Unlock()
	return c[:0]
}

func putChunk(c []Event) {
	if cap(c) < RecordChunkEvents {
		return // never recycle undersized foreign slices
	}
	liveChunks.Add(-1)
	chunkFree.mu.Lock()
	chunkFree.chunks = append(chunkFree.chunks, c[:0])
	chunkFree.mu.Unlock()
}

// Recording is a captured event stream: an ordered sequence of events
// held as columnar compressed chunks plus one raw staging tail (or,
// with SetRaw, as the uncompressed fixed-size chunks of the PR3
// arena). It is filled by a Recorder; once capture is complete it is
// immutable and may be drained any number of times, including
// concurrently read-only sharing within the goroutine that owns it
// (drains mutate only the processor and a borrowed decode block,
// never the recording).
type Recording struct {
	raw    bool
	enc    [][]byte  // encoded full chunks, RecordChunkEvents events each
	tail   []Event   // staging chunk: the in-progress (or final partial) chunk
	chunks [][]Event // raw-mode arena (SetRaw(true))
	n      int
}

// SetRaw selects the uncompressed arena layout. It must be called
// before the first event is appended; the switch exists so the
// compressed and raw representations can be measured and diffed
// against each other (compress-smoke, BenchmarkCompressedReplay).
func (r *Recording) SetRaw(raw bool) {
	if r.n > 0 {
		panic("trace: SetRaw on a non-empty recording")
	}
	r.raw = raw
}

// Len returns how many events the recording holds.
func (r *Recording) Len() int { return r.n }

// Bytes returns the recording's retained arena footprint: the encoded
// chunk bytes plus the raw staging tail (or the whole raw arena in
// uncompressed mode). This is the quantity the harness trace cache
// budgets — compressed bytes, not event count.
func (r *Recording) Bytes() int {
	if r.raw {
		return r.n * EventBytes
	}
	b := len(r.tail) * EventBytes
	for _, c := range r.enc {
		b += len(c)
	}
	return b
}

// RawBytes returns what the stream would occupy as raw 32-byte
// events; Bytes/RawBytes is the compression ratio's inverse.
func (r *Recording) RawBytes() int { return r.n * EventBytes }

// encodeTail compresses the full staging chunk into a columnar buffer
// and resets the staging chunk for reuse — the same 256 KiB of raw
// staging serves the whole capture.
func (r *Recording) encodeTail() {
	r.enc = append(r.enc, encodeChunk(getEncBuf(), r.tail))
	r.tail = r.tail[:0]
}

// append copies events into the arena, encoding each staging chunk as
// it fills. Only the Recorder calls it; after capture the recording
// never changes.
func (r *Recording) append(events []Event) {
	if r.raw {
		r.appendRaw(events)
		return
	}
	for len(events) > 0 {
		if r.tail == nil {
			r.tail = getChunk()
		}
		n := copy(r.tail[len(r.tail):cap(r.tail)], events)
		r.tail = r.tail[:len(r.tail)+n]
		events = events[n:]
		r.n += n
		if len(r.tail) == cap(r.tail) {
			r.encodeTail()
		}
	}
}

// appendRaw is append for the uncompressed arena layout.
func (r *Recording) appendRaw(events []Event) {
	for len(events) > 0 {
		if len(r.chunks) == 0 {
			r.chunks = append(r.chunks, getChunk())
		}
		last := &r.chunks[len(r.chunks)-1]
		if len(*last) == cap(*last) {
			r.chunks = append(r.chunks, getChunk())
			last = &r.chunks[len(r.chunks)-1]
		}
		n := copy((*last)[len(*last):cap(*last)], events)
		*last = (*last)[:len(*last)+n]
		events = events[n:]
		r.n += n
	}
}

// appendOne records a single event (the per-event Processor path of a
// Recorder whose sink does not batch).
func (r *Recording) appendOne(ev Event) {
	if r.raw {
		if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1]) == cap(r.chunks[len(r.chunks)-1]) {
			r.chunks = append(r.chunks, getChunk())
		}
		last := &r.chunks[len(r.chunks)-1]
		*last = append(*last, ev)
		r.n++
		return
	}
	if r.tail == nil {
		r.tail = getChunk()
	}
	r.tail = append(r.tail, ev)
	r.n++
	if len(r.tail) == cap(r.tail) {
		r.encodeTail()
	}
}

// Drain feeds the recorded stream into p in the exact order it was
// captured: the replay path of a warm-up or measured run. Compressed
// chunks decode one host-L1-resident block at a time straight into
// ProcessBatch — the decode fuses into the single-pass drain, and the
// raw event array is never materialized. The raw staging tail (and
// the whole arena in uncompressed mode) goes straight in with zero
// copying.
func (r *Recording) Drain(p BatchProcessor) {
	if r.raw {
		for _, c := range r.chunks {
			p.ProcessBatch(c)
		}
		return
	}
	if len(r.enc) > 0 {
		block := getBlock()
		var d chunkDecoder
		for _, c := range r.enc {
			d.init(c)
			for {
				k := d.next(block)
				if k == 0 {
					break
				}
				p.ProcessBatch(block[:k])
			}
		}
		putBlock(block)
	}
	if len(r.tail) > 0 {
		p.ProcessBatch(r.tail)
	}
}

// Replay feeds the recorded stream into p one Processor call at a
// time — the reference path, for sinks that do not batch. Compressed
// chunks decode through the same fused block path as Drain.
func (r *Recording) Replay(p Processor) {
	if r.raw {
		for _, c := range r.chunks {
			Replay(p, c)
		}
		return
	}
	if len(r.enc) > 0 {
		block := getBlock()
		var d chunkDecoder
		for _, c := range r.enc {
			d.init(c)
			for {
				k := d.next(block)
				if k == 0 {
					break
				}
				Replay(p, block[:k])
			}
		}
		putBlock(block)
	}
	if len(r.tail) > 0 {
		Replay(p, r.tail)
	}
}

// DrainMulti feeds the recorded stream into every sink: the multi-
// sink half of the gang drain, Drain through a Fanout. Each chunk is
// read from the arena once and handed to all sinks before the next
// chunk, so K consumers cost one pass of memory traffic; every sink
// still sees the exact captured order. A gang of pipelines can
// equally drain through a single xeon.MultiPipeline via Drain;
// DrainMulti is the trace-level form for heterogeneous sinks.
func (r *Recording) DrainMulti(ps ...BatchProcessor) {
	r.Drain(Fanout(ps))
}

// Equal reports whether two recordings hold the same event sequence,
// independent of how the events landed in chunks and of whether
// either side is compressed.
func (r *Recording) Equal(o *Recording) bool {
	if r.n != o.n {
		return false
	}
	rc, oc := newRecCursor(r), newRecCursor(o)
	defer rc.close()
	defer oc.close()
	for {
		a, okA := rc.next()
		b, okB := oc.next()
		if okA != okB {
			return false
		}
		if !okA {
			return true
		}
		if a != b {
			return false
		}
	}
}

// Release returns every staging chunk and encoded buffer to the
// shared free lists and empties the recording. The recording must not
// be drained afterwards (it holds no events), but it may be refilled
// by a new capture. The Recorder calls it the moment a capture
// overflows its cap, so an abandoned capture's chunks recycle
// immediately instead of riding along until cache eviction.
func (r *Recording) Release() {
	for _, c := range r.chunks {
		putChunk(c)
	}
	r.chunks = r.chunks[:0]
	for _, b := range r.enc {
		putEncBuf(b)
	}
	r.enc = r.enc[:0]
	if r.tail != nil {
		putChunk(r.tail)
		r.tail = nil
	}
	r.n = 0
}

// Recorder captures an event stream in flight: it interposes on the
// path between an emitter's Buffer and the processor, forwarding
// every event unchanged (whole batches through ProcessBatch when the
// sink batches) while appending a copy to its Recording. A cap bounds
// the recording's memory: once the stream exceeds maxEvents the
// recorder releases what it captured and keeps forwarding, and the
// caller falls back to re-execution.
//
// A Recorder belongs to one goroutine, like the Buffer that feeds it.
type Recorder struct {
	rec      Recording
	sink     Processor
	batch    BatchProcessor // non-nil when sink batches
	limit    int            // max events to record; <= 0 means unlimited
	overflow bool
}

var _ BatchProcessor = (*Recorder)(nil)

// NewRecorder returns a recorder forwarding into sink, capturing at
// most maxEvents events (unlimited when maxEvents <= 0) into a
// columnar compressed recording.
func NewRecorder(sink Processor, maxEvents int) *Recorder {
	r := &Recorder{sink: sink, limit: maxEvents}
	r.batch, _ = sink.(BatchProcessor)
	return r
}

// SetRawArena switches the capture to the uncompressed arena layout
// (see Recording.SetRaw). Call before any event flows past.
func (r *Recorder) SetRawArena(raw bool) { r.rec.SetRaw(raw) }

// Recording returns the captured stream, or nil if the cap was
// exceeded and the capture abandoned. The recording is only complete
// once the emitter has flushed its final batch.
func (r *Recorder) Recording() *Recording {
	if r.overflow {
		return nil
	}
	return &r.rec
}

// Overflowed reports whether the stream exceeded the recording cap.
func (r *Recorder) Overflowed() bool { return r.overflow }

// record appends a captured batch, abandoning the capture when it
// would exceed the cap.
func (r *Recorder) record(events []Event) {
	if r.overflow {
		return
	}
	if r.limit > 0 && r.rec.n+len(events) > r.limit {
		r.overflow = true
		r.rec.Release()
		return
	}
	r.rec.append(events)
}

// ProcessBatch implements BatchProcessor: the batch goes to the sink
// first (exactly as it would without the recorder in the path), then
// into the recording.
func (r *Recorder) ProcessBatch(events []Event) {
	if r.batch != nil {
		r.batch.ProcessBatch(events)
	} else if r.sink != nil {
		Replay(r.sink, events)
	}
	r.record(events)
}

// recordOne appends one captured event, honouring the cap.
func (r *Recorder) recordOne(ev Event) {
	if r.overflow {
		return
	}
	if r.limit > 0 && r.rec.n+1 > r.limit {
		r.overflow = true
		r.rec.Release()
		return
	}
	r.rec.appendOne(ev)
}

// FetchBlock implements Processor.
func (r *Recorder) FetchBlock(addr uint64, size, instrs, uops uint32) {
	r.sink.FetchBlock(addr, size, instrs, uops)
	r.recordOne(Event{Kind: EvFetchBlock, Addr: addr, Size: size, A: instrs, B: uops})
}

// Load implements Processor.
func (r *Recorder) Load(addr uint64, size uint32) {
	r.sink.Load(addr, size)
	r.recordOne(Event{Kind: EvLoad, Addr: addr, Size: size})
}

// Store implements Processor.
func (r *Recorder) Store(addr uint64, size uint32) {
	r.sink.Store(addr, size)
	r.recordOne(Event{Kind: EvStore, Addr: addr, Size: size})
}

// Branch implements Processor.
func (r *Recorder) Branch(pc, target uint64, taken bool) {
	r.sink.Branch(pc, target, taken)
	r.recordOne(Event{Kind: EvBranch, Addr: pc, Aux: target, Taken: taken})
}

// DataBurst implements Processor.
func (r *Recorder) DataBurst(base uint64, bytes, loads, stores uint32) {
	r.sink.DataBurst(base, bytes, loads, stores)
	r.recordOne(Event{Kind: EvDataBurst, Addr: base, Size: bytes, A: loads, B: stores})
}

// ResourceStall implements Processor.
func (r *Recorder) ResourceStall(dep, fu, ild float64) {
	r.sink.ResourceStall(dep, fu, ild)
	r.recordOne(ResourceStallEvent(dep, fu, ild))
}

// RecordProcessed implements Processor.
func (r *Recorder) RecordProcessed() {
	r.sink.RecordProcessed()
	r.recordOne(Event{Kind: EvRecordProcessed})
}
