// Package catalog registers the relations of the simulated database:
// their heap files, column names, and secondary indexes. The SQL
// planner resolves names against it and the engines fetch storage
// handles from it.
package catalog

import (
	"fmt"
	"sort"

	"wheretime/internal/index"
	"wheretime/internal/storage"
)

// Table describes one relation.
type Table struct {
	// Name is the relation name (case-insensitive lookup, stored
	// lower-case).
	Name string
	// Columns are the column names in field order. Column i is field i
	// of every record.
	Columns []string
	// Heap is the backing heap file.
	Heap *storage.HeapFile
	// Indexes maps column ordinal to a secondary B+-tree on it.
	Indexes map[int]*index.Tree
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Index returns the index on the named column, if any.
func (t *Table) Index(col string) *index.Tree {
	i := t.ColumnIndex(col)
	if i < 0 {
		return nil
	}
	return t.Indexes[i]
}

// NumRecords returns the table cardinality.
func (t *Table) NumRecords() uint64 { return t.Heap.NumRecords() }

// Catalog is a named collection of tables sharing one buffer pool.
type Catalog struct {
	pool   *storage.BufferPool
	tables map[string]*Table
}

// New returns an empty catalog over the given pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{pool: pool, tables: make(map[string]*Table)}
}

// Pool returns the catalog's buffer pool.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// Create registers a new table with the given column names; every
// column is an int32 field. recSize is the record width in bytes and
// must accommodate the named columns (extra space is the paper's
// "<rest of fields>" filler).
func (c *Catalog) Create(name string, columns []string, layout storage.Layout, recSize int) (*Table, error) {
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if len(columns)*storage.FieldSize > recSize {
		return nil, fmt.Errorf("catalog: %d columns do not fit in %d-byte records", len(columns), recSize)
	}
	t := &Table{
		Name:    name,
		Columns: columns,
		Heap:    c.pool.CreateHeap(name, layout, recSize),
		Indexes: make(map[int]*index.Tree),
	}
	c.tables[name] = t
	return t, nil
}

// Get returns the named table, or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// MustGet returns the named table or panics; for workloads that built
// the schema themselves.
func (c *Catalog) MustGet(name string) *Table {
	t, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BuildIndex constructs a secondary B+-tree on the named column by
// scanning the heap, registers it, and returns it. Index node pages
// are addressed in a region after the pool's current pages.
func (c *Catalog) BuildIndex(table, col string) (*index.Tree, error) {
	t, err := c.Get(table)
	if err != nil {
		return nil, err
	}
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q", table, col)
	}
	if _, ok := t.Indexes[ci]; ok {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", table, col)
	}
	// Give index nodes their own address region well beyond data pages.
	base := storage.PageID(1<<20).Addr() + uint64(len(c.tables)+ci)*(1<<28)
	tr := index.New(base, index.DefaultOrder)
	t.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			tr.Insert(pg.Field(uint16(s), ci), storage.RID{Page: pg.ID(), Slot: uint16(s)})
		}
		return true
	})
	t.Indexes[ci] = tr
	return tr, nil
}
