package catalog

import (
	"testing"

	"wheretime/internal/storage"
)

func newCat() *Catalog { return New(storage.NewBufferPool()) }

func TestCreateAndGet(t *testing.T) {
	c := newCat()
	tab, err := c.Create("r", []string{"a1", "a2", "a3"}, storage.NSM, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "r" || len(tab.Columns) != 3 {
		t.Errorf("table malformed: %+v", tab)
	}
	got, err := c.Get("r")
	if err != nil || got != tab {
		t.Errorf("Get returned %v, %v", got, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("Get of missing table should fail")
	}
	if c.MustGet("r") != tab {
		t.Error("MustGet mismatch")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet of missing table should panic")
		}
	}()
	newCat().MustGet("zz")
}

func TestCreateDuplicateFails(t *testing.T) {
	c := newCat()
	if _, err := c.Create("r", []string{"a"}, storage.NSM, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("r", []string{"a"}, storage.NSM, 16); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestCreateTooManyColumnsFails(t *testing.T) {
	c := newCat()
	if _, err := c.Create("r", []string{"a", "b", "c", "d", "e"}, storage.NSM, 16); err == nil {
		t.Error("5 columns in 16 bytes should fail")
	}
}

func TestColumnIndexAndNames(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("r", []string{"a1", "a2", "a3"}, storage.NSM, 100)
	if tab.ColumnIndex("a2") != 1 || tab.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	c.Create("b", []string{"x"}, storage.NSM, 16)
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "r" {
		t.Errorf("Names = %v", names)
	}
}

func TestBuildIndex(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("r", []string{"a1", "a2", "a3"}, storage.NSM, 100)
	for i := 0; i < 200; i++ {
		tab.Heap.Append([]int32{int32(i), int32(i % 10), int32(i * 2)})
	}
	tr, err := c.BuildIndex("r", "a2")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 200 {
		t.Errorf("index entries = %d", tr.Len())
	}
	if got := len(tr.Search(3)); got != 20 {
		t.Errorf("search(3) = %d entries, want 20", got)
	}
	if tab.Index("a2") != tr {
		t.Error("index not registered")
	}
	if tab.Index("a1") != nil {
		t.Error("phantom index")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("built index invalid: %v", err)
	}
	// Errors.
	if _, err := c.BuildIndex("r", "a2"); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := c.BuildIndex("r", "zz"); err == nil {
		t.Error("index on unknown column should fail")
	}
	if _, err := c.BuildIndex("zz", "a2"); err == nil {
		t.Error("index on unknown table should fail")
	}
}

func TestNumRecordsDelegates(t *testing.T) {
	c := newCat()
	tab, _ := c.Create("r", []string{"a"}, storage.NSM, 16)
	tab.Heap.Append([]int32{1})
	if tab.NumRecords() != 1 {
		t.Error("NumRecords wrong")
	}
	if c.Pool() == nil {
		t.Error("Pool accessor nil")
	}
}
