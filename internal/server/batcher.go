package server

// The gang batcher: dynamic request batching between the singleflight
// layer and the worker pool. Incoming cell requests whose specs share
// a harness gang key — same workload, same protocol, any platform —
// accumulate in a short per-key window instead of dispatching
// immediately; when the window expires (or the batch hits its cap)
// the whole batch runs as ONE gang work unit through
// harness.MeasureGang, so K platform variants cost one workload
// execution instead of K. Each waiter receives exactly the response
// bytes it would have gotten solo (the gang equivalence suite pins
// cell-level bit-identity, and the batcher tests pin the marshaled
// bodies against a -gangwindow=0 control server).
//
// The batcher rides the PR 9 cancellation contract:
//
//   - a departing client never kills the gang — the flight (and its
//     member) keep running for the followers and the store;
//   - a member's deadline covers its hold time: the deadline timer
//     starts at submission, and a deadline that fires inside the
//     window answers 504 for that member alone without poisoning the
//     gang (the remaining members still run);
//   - drain flushes half-full windows immediately, so shutdown never
//     waits out an accumulation window.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wheretime/internal/faults"
	"wheretime/internal/harness"
)

// DefaultGangWindow is the accumulation window cmd/wheretimed
// defaults to: long enough for a burst of compatible requests to land
// in one gang, short against the tens-of-milliseconds cost of even
// the cheapest simulation. In Config, a zero window means batching is
// OFF (every request dispatches immediately, the pre-batching
// behavior); the daemon opts into the default via its flag.
const DefaultGangWindow = 5 * time.Millisecond

// DefaultGangMax caps how many requests one window may accumulate
// before it closes early. Eight matches the gang fan-in the
// MultiPipeline equivalence suite exercises; bigger gangs trade more
// amortization for a longer single work unit.
const DefaultGangMax = 8

// member states: a member resolves exactly once, either with the
// gang's response (resolved) or by its own deadline (abandoned).
const (
	memberPending int32 = iota
	memberResolved
	memberAbandoned
)

// member is one request waiting in (or dispatched from) a batch. Its
// flight goroutine blocks on done racing its own deadline timer; the
// gang runner fills status/body and closes done.
type member struct {
	// key is the request's tally key: the singleflight key and the
	// response's Key field.
	key  string
	spec harness.CellSpec
	// deadline is absolute, fixed at submission, so the time spent
	// held in the window counts against the request's budget.
	deadline time.Time

	state  atomic.Int32
	done   chan struct{}
	status int
	body   []byte
}

// resolve delivers the member's response, reporting whether the
// member was still pending (an abandoned member keeps its 504; the
// late result is simply dropped).
func (m *member) resolve(status int, body []byte) bool {
	if !m.state.CompareAndSwap(memberPending, memberResolved) {
		return false
	}
	m.status, m.body = status, body
	close(m.done)
	return true
}

// abandon marks a member whose deadline fired first, reporting
// whether it won the race against resolve.
func (m *member) abandon() bool {
	return m.state.CompareAndSwap(memberPending, memberAbandoned)
}

// batch is one accumulation window: the members collected under a
// single gang key between the window opening and closing.
type batch struct {
	gangKey  string
	members  []*member
	timer    timer
	closedCh chan struct{}
	closed   bool
}

// batcher accumulates compatible requests into batches. One per
// server when Config.GangWindow > 0.
type batcher struct {
	srv    *Server
	window time.Duration
	max    int

	mu      sync.Mutex
	open    map[string]*batch
	flushed bool
	wg      sync.WaitGroup

	// Counters for /healthz.
	batched      atomic.Int64 // members that entered a window
	gangs        atomic.Int64 // gang work units dispatched with >= 1 live member
	gangMembers  atomic.Int64 // live members across dispatched gangs
	windowCloses atomic.Int64 // batches closed by window expiry
	capCloses    atomic.Int64 // batches closed by hitting GangMax
	drainFlushes atomic.Int64 // batches closed early by drain
}

func newBatcher(srv *Server, window time.Duration, max int) *batcher {
	return &batcher{srv: srv, window: window, max: max, open: make(map[string]*batch)}
}

// submit files m into the accumulating batch for gangKey, opening a
// fresh window when none is accumulating. The batch closes when its
// window expires, when it reaches the cap, or immediately once drain
// has begun.
func (bt *batcher) submit(gangKey string, m *member) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	bt.batched.Add(1)
	b := bt.open[gangKey]
	if b == nil {
		b = &batch{gangKey: gangKey, closedCh: make(chan struct{})}
		b.timer = bt.srv.clk.NewTimer(bt.window)
		bt.open[gangKey] = b
		bt.wg.Add(1)
		go bt.watch(b)
	}
	b.members = append(b.members, m)
	switch {
	case bt.flushed:
		bt.closeLocked(b, &bt.drainFlushes)
	case len(b.members) >= bt.max:
		bt.closeLocked(b, &bt.capCloses)
	}
}

// watch closes the batch when its window expires; closedCh unblocks
// it when the batch closed some other way (cap, drain flush).
func (bt *batcher) watch(b *batch) {
	defer bt.wg.Done()
	select {
	case <-b.timer.C():
		bt.mu.Lock()
		bt.closeLocked(b, &bt.windowCloses)
		bt.mu.Unlock()
	case <-b.closedCh:
	}
}

// closeLocked seals a batch — no further members — and dispatches its
// gang run on its own goroutine. Idempotent; callers hold bt.mu.
func (bt *batcher) closeLocked(b *batch, cause *atomic.Int64) {
	if b.closed {
		return
	}
	b.closed = true
	b.timer.Stop()
	close(b.closedCh)
	delete(bt.open, b.gangKey)
	cause.Add(1)
	bt.wg.Add(1)
	go func() {
		defer bt.wg.Done()
		bt.srv.runGang(b)
	}()
}

// flush closes every accumulating window immediately and makes any
// window opened afterwards close on arrival. Called when drain
// begins: a SIGTERM with a half-full window must dispatch it, not
// wait it out.
func (bt *batcher) flush() {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	bt.flushed = true
	for _, b := range bt.open {
		bt.closeLocked(b, &bt.drainFlushes)
	}
}

// wait blocks until every dispatched gang (and window watcher) has
// finished.
func (bt *batcher) wait() { bt.wg.Wait() }

// runBatched is the flight body on the batching path: it submits the
// request as a gang member and waits for the batch result, racing the
// member's own deadline. The deadline timer starts before submission,
// so hold time spent in the accumulation window counts against it.
func (s *Server) runBatched(key string, spec harness.CellSpec, timeout time.Duration) (int, []byte) {
	m := &member{
		key:      key,
		spec:     spec,
		deadline: s.clk.Now().Add(timeout),
		done:     make(chan struct{}),
	}
	t := s.clk.NewTimer(timeout)
	defer t.Stop()
	s.batch.submit(harness.GangKey(s.opts, spec), m)
	select {
	case <-m.done:
		return m.status, m.body
	case <-t.C():
		if m.abandon() {
			s.failures.Add(1)
			return http.StatusGatewayTimeout, errBody("deadline exceeded: " + context.DeadlineExceeded.Error())
		}
		// The gang resolved concurrently with the deadline firing; the
		// delivered result stands.
		<-m.done
		return m.status, m.body
	}
}

// runGang dispatches one closed batch: the still-pending members run
// as a single gang work unit under the worker-pool semaphore, and
// each receives the response body it would have gotten solo. Members
// abandoned in the window are skipped — their flights already
// answered 504 — and a member whose deadline fires mid-run abandons
// itself without cutting the gang short for the others (the gang's
// own deadline is the furthest member deadline). Panics are contained
// exactly as on the solo path: every pending member answers 500 and
// the server keeps serving.
func (s *Server) runGang(b *batch) {
	now := s.clk.Now()
	var live []*member
	latest := now
	for _, m := range b.members {
		if m.state.Load() != memberPending {
			continue // abandoned in the window: already answered 504
		}
		live = append(live, m)
		if m.deadline.After(latest) {
			latest = m.deadline
		}
	}
	if len(live) == 0 {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			s.logf("wheretimed: gang worker panic: %v", p)
			s.resolveGang(live, http.StatusInternalServerError,
				fmt.Sprintf("internal: worker panic: %v", p))
		}
	}()
	s.batch.gangs.Add(1)
	s.batch.gangMembers.Add(int64(len(live)))

	ctx, cancel := s.clk.WithTimeout(s.base, latest.Sub(now))
	defer cancel()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.resolveGang(live, http.StatusGatewayTimeout, "deadline exceeded waiting for a worker")
		return
	}
	defer func() { <-s.sem }()
	if err := s.inj.Apply(faults.OpWorker, b.gangKey); err != nil {
		s.resolveGang(live, http.StatusInternalServerError, "internal: "+err.Error())
		return
	}
	s.simulations.Add(1)
	specs := make([]harness.CellSpec, 0, len(live))
	seen := make(map[harness.CellSpec]bool, len(live))
	for _, m := range live {
		if !seen[m.spec] {
			seen[m.spec] = true
			specs = append(specs, m.spec)
		}
	}
	res, err := harness.MeasureGangContext(ctx, s.opts, specs)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.resolveGang(live, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
			return
		}
		s.logf("wheretimed: measuring gang of %d x %s: %v", len(specs), specs[0], err)
		s.resolveGang(live, http.StatusInternalServerError, "internal: "+err.Error())
		return
	}
	for _, m := range live {
		m.resolve(s.cellBody(m.key, m.spec, res))
	}
}

// resolveGang answers every still-pending member of a failed gang
// with one shared error body.
func (s *Server) resolveGang(live []*member, status int, msg string) {
	body := errBody(msg)
	for _, m := range live {
		if m.resolve(status, body) {
			s.failures.Add(1)
		}
	}
}
