package server

// A fake clock for deterministic window and deadline tests: time only
// moves when a test calls Advance, so no test in this package ever
// sleeps on the real clock to "give the server time". Tests that need
// to know the server reached a particular point first synchronize on
// an explicit signal — a faults.BlockN gate, a batcher counter — and
// only then advance.

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fakeClock implements the clock interface with manually advanced
// time. Safe for concurrent use.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
	ctxs   []*fakeCtx
}

func newFakeClock() *fakeClock {
	// An arbitrary fixed origin; only differences matter.
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (fc *fakeClock) Now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.now
}

func (fc *fakeClock) NewTimer(d time.Duration) timer {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	t := &fakeTimer{deadline: fc.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- fc.now
	}
	fc.timers = append(fc.timers, t)
	return t
}

func (fc *fakeClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	fc.mu.Lock()
	c := &fakeCtx{parent: parent, deadline: fc.now.Add(d), done: make(chan struct{})}
	expired := d <= 0
	fc.ctxs = append(fc.ctxs, c)
	fc.mu.Unlock()
	if expired {
		c.expire(context.DeadlineExceeded)
	}
	// Propagate parent cancellation, as context.WithTimeout would.
	go func() {
		select {
		case <-parent.Done():
			c.expire(parent.Err())
		case <-c.done:
		}
	}()
	return c, func() { c.expire(context.Canceled) }
}

// Advance moves the clock forward, firing every timer and expiring
// every deadline context the move passes.
func (fc *fakeClock) Advance(d time.Duration) {
	fc.mu.Lock()
	fc.now = fc.now.Add(d)
	now := fc.now
	var fire []*fakeTimer
	live := fc.timers[:0]
	for _, t := range fc.timers {
		if !t.stopped() && !t.deadline.After(now) {
			fire = append(fire, t)
			continue
		}
		live = append(live, t)
	}
	fc.timers = live
	var expire []*fakeCtx
	liveCtx := fc.ctxs[:0]
	for _, c := range fc.ctxs {
		if !c.deadline.After(now) {
			expire = append(expire, c)
			continue
		}
		liveCtx = append(liveCtx, c)
	}
	fc.ctxs = liveCtx
	fc.mu.Unlock()
	for _, t := range fire {
		t.fire(now)
	}
	for _, c := range expire {
		c.expire(context.DeadlineExceeded)
	}
}

// fakeTimer fires when the fake clock passes its deadline.
type fakeTimer struct {
	deadline time.Time
	ch       chan time.Time

	mu     sync.Mutex
	fired  bool
	halted bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	was := !t.fired && !t.halted
	t.halted = true
	return was
}

func (t *fakeTimer) stopped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.halted || t.fired
}

func (t *fakeTimer) fire(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || t.halted {
		return
	}
	t.fired = true
	t.ch <- now
}

// fakeCtx is a context whose deadline the fake clock controls; its
// Err is context.DeadlineExceeded after expiry, matching what the
// harness cancellation contract maps to 504.
type fakeCtx struct {
	parent   context.Context
	deadline time.Time

	mu   sync.Mutex
	done chan struct{}
	err  error
}

func (c *fakeCtx) Deadline() (time.Time, bool) { return c.deadline, true }
func (c *fakeCtx) Done() <-chan struct{}       { return c.done }
func (c *fakeCtx) Value(key any) any           { return c.parent.Value(key) }

func (c *fakeCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *fakeCtx) expire(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
}

// spinUntil busy-waits (yielding, never sleeping) until cond holds,
// failing the test after a generous real-time bound. Tests use it to
// wait for concurrent requests to reach a known server state before
// advancing the fake clock.
func spinUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}
