// Package server implements wheretimed, the fault-tolerant experiment
// service: an HTTP front end over the harness grid that measures one
// cell per request, coalesces identical in-flight requests into a
// single simulation, memoizes results through the shared trace/tally
// store, and degrades — rather than dies — when the store or a worker
// misbehaves.
//
// The API surface is three routes:
//
//	POST /v1/cells  measure one cell. The body is a cell spec (see
//	                spec.go); the response is the costed tally: the
//	                execution-time breakdown in Table 3.1 component
//	                order, the query result, and the normalized spec
//	                the server actually measured.
//	GET  /healthz   liveness plus operational counters: request /
//	                simulation / coalesce / failure totals and the
//	                store's traffic and degraded-mode stats.
//	GET  /readyz    readiness: 503 once draining begins.
//
// Concurrent requests for the same cell coalesce on the harness tally
// key — the same key the warm-start store memoizes under — so N
// identical POSTs cost one simulation and N identical response bodies
// (the response is marshaled once per flight). Distinct cells that
// share a gang key — platform-only variants of one workload — can go
// further: with Config.GangWindow > 0 the gang batcher (batcher.go)
// holds such requests in a bounded accumulation window and runs the
// whole batch as one gang work unit, so K configs cost one workload
// execution. Remaining distinct cells run under a bounded worker
// pool. Per-request deadlines propagate into harness.MeasureContext,
// which stops the grid at the next cell/re-execution barrier; a
// request that times out — even while held in a batching window —
// returns 504 without leaking goroutines or trace buffers. A
// panicking worker answers 500 and the server keeps serving. Draining
// (SIGTERM in cmd/wheretimed) flushes half-full batching windows,
// lets in-flight measurements finish, then flushes the store.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"wheretime/internal/core"
	"wheretime/internal/faults"
	"wheretime/internal/harness"
	"wheretime/internal/tracestore"
)

// DefaultTimeout is the per-request simulation deadline when the
// config leaves it zero; it is also the ceiling a request's timeoutMs
// is clamped to.
const DefaultTimeout = 60 * time.Second

// DefaultMaxConcurrent bounds simultaneous simulations when the
// config leaves it zero. Each simulation is single-threaded and
// memory-hungry (databases plus trace arenas), so the pool stays
// small by default.
const DefaultMaxConcurrent = 2

// Config assembles a Server.
type Config struct {
	// Opts are the base harness options; request fields missing from a
	// cell spec default from here, so Opts fixes the dataset scale,
	// warm-up protocol and base platform for every request.
	Opts harness.Options
	// Store, when non-nil, memoizes tallies, traces and snapshots
	// across requests and restarts. The caller keeps ownership; Close
	// flushes it.
	Store *tracestore.Store
	// Timeout is the per-request deadline and ceiling (0 =
	// DefaultTimeout).
	Timeout time.Duration
	// MaxConcurrent bounds simultaneous simulations (0 =
	// DefaultMaxConcurrent).
	MaxConcurrent int
	// GangWindow, when positive, turns on the gang batcher: requests
	// whose specs share a gang key accumulate for up to this long (or
	// until GangMax of them arrive) and run as one gang work unit.
	// Zero disables batching — every request dispatches immediately.
	GangWindow time.Duration
	// GangMax caps how many requests one accumulation window may
	// collect before closing early (0 = DefaultGangMax). Only
	// meaningful when GangWindow > 0.
	GangMax int
	// Inj, when non-nil, injects faults into the worker pool
	// (faults.OpWorker). Test-only.
	Inj *faults.Injector
	// Logf, when non-nil, receives one line per server-side failure.
	Logf func(format string, args ...any)

	// clk, when non-nil, replaces the real clock. Test-only: the fake
	// clock drives window and deadline logic without sleeping.
	clk clock
}

// Server is the wheretimed HTTP service. Create with New, expose
// Handler, shut down with Close.
type Server struct {
	opts    harness.Options
	store   *tracestore.Store
	timeout time.Duration
	inj     *faults.Injector
	logf    func(format string, args ...any)

	base    context.Context
	stop    context.CancelFunc
	clk     clock
	sem     chan struct{}
	flights group
	batch   *batcher // nil when batching is off
	mux     *http.ServeMux

	draining    atomic.Bool
	requests    atomic.Int64
	simulations atomic.Int64
	coalesced   atomic.Int64
	failures    atomic.Int64
}

// New validates the configuration and assembles a server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if err := cfg.Opts.Config.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.Store != nil {
		cfg.Opts.Store = cfg.Store
		cfg.Opts.StoreDir = ""
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.GangWindow < 0 {
		return nil, fmt.Errorf("server: negative gang window %v", cfg.GangWindow)
	}
	if cfg.GangMax < 0 {
		return nil, fmt.Errorf("server: negative gang max %d", cfg.GangMax)
	}
	if cfg.GangMax == 0 {
		cfg.GangMax = DefaultGangMax
	}
	if cfg.clk == nil {
		cfg.clk = realClock{}
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:    cfg.Opts,
		store:   cfg.Store,
		timeout: cfg.Timeout,
		inj:     cfg.Inj,
		logf:    cfg.Logf,
		base:    base,
		stop:    stop,
		clk:     cfg.clk,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if cfg.GangWindow > 0 {
		s.batch = newBatcher(s, cfg.GangWindow, cfg.GangMax)
	}
	s.mux.HandleFunc("/v1/cells", s.handleCells)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain stops admitting new cell requests (503), flips /readyz
// unready, and flushes any half-full batching windows so shutdown
// never waits out an accumulation window; in-flight measurements keep
// running. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	if s.batch != nil {
		s.batch.flush()
	}
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains, waits for every open flight to land, and flushes the
// store. A read-only store flushes nothing and Close returns
// ErrReadOnly — the caller decides whether losing the staged entries
// is fatal (the daemon logs it and still exits cleanly).
func (s *Server) Close() error {
	s.BeginDrain()
	s.flights.wait()
	if s.batch != nil {
		s.batch.wait()
	}
	s.stop()
	if s.store != nil {
		if err := s.store.Flush(); err != nil {
			return fmt.Errorf("server: flushing store: %w", err)
		}
	}
	return nil
}

// errBody renders one error as the JSON error shape every non-200
// response uses.
func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

// writeBody writes one prepared JSON body.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// handleCells measures one cell, coalescing concurrent identical
// requests into a single flight.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errBody("method not allowed"))
		return
	}
	if s.draining.Load() {
		writeBody(w, http.StatusServiceUnavailable, errBody("server is draining"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	spec, timeout, err := decodeSpec(s.opts, s.timeout, body)
	if err != nil {
		writeBody(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	key := harness.TallyKey(s.opts, spec)
	f, leader := s.flights.do(key, func() (int, []byte) {
		if s.batch != nil {
			return s.runBatched(key, spec, timeout)
		}
		return s.runCell(key, spec, timeout)
	})
	if !leader {
		s.coalesced.Add(1)
	}
	select {
	case <-f.done:
		writeBody(w, f.status, f.body)
	case <-r.Context().Done():
		// The client went away. The flight keeps running — other
		// followers (and the tally store) still want the result.
	}
}

// runCell is the flight body: it runs one measurement under the
// worker-pool semaphore and the request deadline, and renders the one
// response body every coalesced request shares. Panics — whether from
// the fault injector or a real bug — are contained here: the flight
// answers 500 and the server keeps serving.
func (s *Server) runCell(key string, spec harness.CellSpec, timeout time.Duration) (status int, body []byte) {
	defer func() {
		if p := recover(); p != nil {
			s.failures.Add(1)
			s.logf("wheretimed: worker panic: %v", p)
			status, body = http.StatusInternalServerError,
				errBody(fmt.Sprintf("internal: worker panic: %v", p))
		}
	}()
	ctx, cancel := s.clk.WithTimeout(s.base, timeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.failures.Add(1)
		return http.StatusGatewayTimeout, errBody("deadline exceeded waiting for a worker")
	}
	defer func() { <-s.sem }()
	if err := s.inj.Apply(faults.OpWorker, key); err != nil {
		s.failures.Add(1)
		return http.StatusInternalServerError, errBody("internal: " + err.Error())
	}
	s.simulations.Add(1)
	res, err := harness.MeasureContext(ctx, s.opts, []harness.CellSpec{spec}, 1)
	if err != nil {
		s.failures.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout, errBody("deadline exceeded: " + err.Error())
		}
		s.logf("wheretimed: measuring %s: %v", spec, err)
		return http.StatusInternalServerError, errBody("internal: " + err.Error())
	}
	return s.cellBody(key, spec, res)
}

// cellBody renders one spec's response from a measured result set —
// the shared tail of the solo and gang paths, so a batched request's
// bytes are produced by exactly the code that produces solo bytes.
func (s *Server) cellBody(key string, spec harness.CellSpec, res *harness.Results) (int, []byte) {
	cell, err := res.Get(spec)
	if err != nil {
		s.failures.Add(1)
		return http.StatusInternalServerError, errBody("internal: " + err.Error())
	}
	b, err := json.Marshal(buildResponse(key, spec, cell))
	if err != nil {
		s.failures.Add(1)
		return http.StatusInternalServerError, errBody("internal: " + err.Error())
	}
	return http.StatusOK, append(b, '\n')
}

// componentJSON is one breakdown component, in Table 3.1 order.
type componentJSON struct {
	Component string  `json:"component"`
	Cycles    float64 `json:"cycles"`
}

// resultJSON carries the query result; Value is omitted when the
// aggregate is undefined (NaN over zero rows), since JSON has no NaN.
type resultJSON struct {
	Value *float64 `json:"value,omitempty"`
	Rows  uint64   `json:"rows"`
}

// cellResponse is the body of a successful POST /v1/cells: a pure
// function of (server options, normalized spec) — no timestamps, no
// identity — so coalesced and recomputed answers are byte-comparable.
type cellResponse struct {
	Key         string          `json:"key"`
	Spec        specJSON        `json:"spec"`
	TotalCycles float64         `json:"totalCycles"`
	Cycles      []componentJSON `json:"cycles"`
	Result      resultJSON      `json:"result"`
}

// buildResponse renders one measured cell.
func buildResponse(key string, spec harness.CellSpec, cell harness.Cell) cellResponse {
	resp := cellResponse{
		Key:         key,
		Spec:        specEcho(spec),
		TotalCycles: cell.Breakdown.Total(),
		Result:      resultJSON{Rows: cell.Result.Rows},
	}
	if v := cell.Result.Value; !math.IsNaN(v) && !math.IsInf(v, 0) {
		resp.Result.Value = &v
	}
	for _, c := range core.Components() {
		resp.Cycles = append(resp.Cycles, componentJSON{
			Component: c.String(),
			Cycles:    cell.Breakdown.Cycles[c],
		})
	}
	return resp
}

// storeJSON is the store section of /healthz.
type storeJSON struct {
	Dir           string `json:"dir"`
	EntryHits     int    `json:"entryHits"`
	EntryMisses   int    `json:"entryMisses"`
	TraceHits     int    `json:"traceHits"`
	TracesWritten int    `json:"tracesWritten"`
	EntriesAdded  int    `json:"entriesAdded"`
	Retries       int    `json:"retries"`
	Quarantined   int    `json:"quarantined"`
	WriteFailures int    `json:"writeFailures"`
	ReadOnly      bool   `json:"readOnly"`
}

// batchJSON is the gang-batcher section of /healthz, present only
// when batching is on.
type batchJSON struct {
	WindowMs        float64 `json:"windowMs"`
	GangMax         int     `json:"gangMax"`
	BatchedRequests int64   `json:"batchedRequests"`
	GangsFormed     int64   `json:"gangsFormed"`
	MeanK           float64 `json:"meanK"` // live members per dispatched gang
	WindowCloses    int64   `json:"windowCloses"`
	CapCloses       int64   `json:"capCloses"`
	DrainFlushes    int64   `json:"drainFlushes"`
}

// healthJSON is the body of /healthz.
type healthJSON struct {
	Status      string     `json:"status"` // "ok" or "degraded"
	Draining    bool       `json:"draining"`
	Requests    int64      `json:"requests"`
	Simulations int64      `json:"simulations"`
	Coalesced   int64      `json:"coalesced"`
	Failures    int64      `json:"failures"`
	Batch       *batchJSON `json:"batch,omitempty"`
	Store       *storeJSON `json:"store,omitempty"`
}

// handleHealthz reports liveness and the operational counters. Always
// 200: a degraded store is a reason to page, not to restart the
// process (Status says which).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthJSON{
		Status:      "ok",
		Draining:    s.draining.Load(),
		Requests:    s.requests.Load(),
		Simulations: s.simulations.Load(),
		Coalesced:   s.coalesced.Load(),
		Failures:    s.failures.Load(),
	}
	if bt := s.batch; bt != nil {
		bj := &batchJSON{
			WindowMs:        float64(bt.window) / float64(time.Millisecond),
			GangMax:         bt.max,
			BatchedRequests: bt.batched.Load(),
			GangsFormed:     bt.gangs.Load(),
			WindowCloses:    bt.windowCloses.Load(),
			CapCloses:       bt.capCloses.Load(),
			DrainFlushes:    bt.drainFlushes.Load(),
		}
		if bj.GangsFormed > 0 {
			bj.MeanK = float64(bt.gangMembers.Load()) / float64(bj.GangsFormed)
		}
		h.Batch = bj
	}
	if s.store != nil {
		st := s.store.Stats()
		h.Store = &storeJSON{
			Dir:           s.store.Dir(),
			EntryHits:     st.EntryHits,
			EntryMisses:   st.EntryMisses,
			TraceHits:     st.TraceHits,
			TracesWritten: st.TracesWritten,
			EntriesAdded:  st.EntriesAdded,
			Retries:       st.Retries,
			Quarantined:   st.Quarantined,
			WriteFailures: st.WriteFailures,
			ReadOnly:      st.ReadOnly,
		}
		if st.ReadOnly {
			h.Status = "degraded"
		}
	}
	b, _ := json.Marshal(h)
	writeBody(w, http.StatusOK, append(b, '\n'))
}

// handleReadyz is the load-balancer probe: 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
