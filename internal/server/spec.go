package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"wheretime/internal/engine"
	"wheretime/internal/harness"
	"wheretime/internal/storage"
)

// Request caps. They bound what one HTTP request can make the
// simulator do, not what the harness could express: a request past a
// cap is a 400, never a multi-minute simulation.
const (
	// maxBodyBytes caps the request body; cell specs are a few hundred
	// bytes.
	maxBodyBytes = 64 << 10
	// maxRecordSize caps the requested record width.
	maxRecordSize = 4096
	// maxTxns caps the requested TPC-C transaction count.
	maxTxns = 10_000
)

// cellRequest is the wire shape of POST /v1/cells. Unknown fields are
// rejected, so a typo in a field name is a 400, not a silently
// different cell.
type cellRequest struct {
	// Kind selects the workload family: "micro", "tpcd" or "tpcc".
	Kind string `json:"kind"`
	// System is the paper's system letter, "A" through "D".
	System string `json:"system"`
	// Query is the microbenchmark query abbreviation (micro only).
	Query string `json:"query,omitempty"`
	// Selectivity overrides the range-selection selectivity (micro
	// only; default is the server's base option).
	Selectivity *float64 `json:"selectivity,omitempty"`
	// RecordSize overrides the record width in bytes (micro only;
	// default is the server's base option).
	RecordSize int `json:"recordSize,omitempty"`
	// Txns is the TPC-C transaction count (tpcc only; required).
	Txns int `json:"txns,omitempty"`
	// L2KB overrides the platform's L2 size in KB.
	L2KB int `json:"l2kb,omitempty"`
	// BTB overrides the platform's BTB entry count.
	BTB int `json:"btb,omitempty"`
	// TimeoutMs bounds this request's simulation time; clamped to the
	// server's ceiling. Zero means the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// parseSystem maps the paper's system letter to the engine profile.
func parseSystem(s string) (engine.System, error) {
	for _, sys := range engine.Systems() {
		if s == sys.String() {
			return sys, nil
		}
	}
	return 0, fmt.Errorf("unknown system %q (want \"A\"..\"D\")", s)
}

// queryKinds lists every microbenchmark query the API accepts.
var queryKinds = []harness.QueryKind{
	harness.SRS, harness.IRS, harness.SJ, harness.GHJ,
	harness.SAG, harness.BRS, harness.JSA, harness.IXJ,
}

// parseQuery maps a query abbreviation to its kind.
func parseQuery(s string) (harness.QueryKind, error) {
	for _, q := range queryKinds {
		if s == q.String() {
			return q, nil
		}
	}
	return 0, fmt.Errorf("unknown query %q (want SRS, IRS, SJ, GHJ, SAG, BRS, JSA or IXJ)", s)
}

// decodeSpec parses and validates one cell request against the
// server's base options, returning the normalized spec and the
// request's effective deadline. Normalization fills omitted fields
// from the base options and resolves the platform config explicitly,
// so a request spelling out a default and a request omitting it land
// on the same tally key — and therefore the same coalesced flight and
// the same store entry the grid CLI would write. Every validation
// failure is an error for a 400; nothing here ever panics or touches
// the trace arenas.
func decodeSpec(opts harness.Options, maxTimeout time.Duration, body io.Reader) (harness.CellSpec, time.Duration, error) {
	var req cellRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return harness.CellSpec{}, 0, fmt.Errorf("invalid cell spec: %v", err)
	}
	if dec.More() {
		return harness.CellSpec{}, 0, errors.New("invalid cell spec: trailing data after JSON value")
	}
	sys, err := parseSystem(req.System)
	if err != nil {
		return harness.CellSpec{}, 0, err
	}

	spec := harness.CellSpec{System: sys}
	switch req.Kind {
	case "micro":
		spec.Kind = harness.CellMicro
		if req.Txns != 0 {
			return harness.CellSpec{}, 0, errors.New(`"txns" applies only to kind "tpcc"`)
		}
		q, err := parseQuery(req.Query)
		if err != nil {
			return harness.CellSpec{}, 0, err
		}
		spec.Query = q
		spec.Selectivity = opts.Selectivity
		if req.Selectivity != nil {
			if *req.Selectivity < 0 || *req.Selectivity > 1 {
				return harness.CellSpec{}, 0, fmt.Errorf("selectivity %v out of [0, 1]", *req.Selectivity)
			}
			spec.Selectivity = *req.Selectivity
		}
		spec.RecordSize = opts.RecordSize
		if req.RecordSize != 0 {
			if req.RecordSize < storage.MinRecordSize || req.RecordSize > maxRecordSize ||
				req.RecordSize%storage.FieldSize != 0 {
				return harness.CellSpec{}, 0, fmt.Errorf("recordSize %d must be a multiple of %d in [%d, %d]",
					req.RecordSize, storage.FieldSize, storage.MinRecordSize, maxRecordSize)
			}
			spec.RecordSize = req.RecordSize
		}
	case "tpcd":
		spec.Kind = harness.CellTPCD
		// The decision-support suite generates its own layouts; the
		// micro-only knobs would silently change the tally key without
		// changing the measurement, so they are rejected.
		if req.Query != "" || req.Selectivity != nil || req.Txns != 0 || req.RecordSize != 0 {
			return harness.CellSpec{}, 0, errors.New(`kind "tpcd" takes only "system" and platform fields`)
		}
	case "tpcc":
		spec.Kind = harness.CellTPCC
		if req.Query != "" || req.Selectivity != nil || req.RecordSize != 0 {
			return harness.CellSpec{}, 0, errors.New(`kind "tpcc" takes only "system", "txns" and platform fields`)
		}
		if req.Txns < 1 || req.Txns > maxTxns {
			return harness.CellSpec{}, 0, fmt.Errorf("txns %d out of [1, %d]", req.Txns, maxTxns)
		}
		spec.Txns = req.Txns
	default:
		return harness.CellSpec{}, 0, fmt.Errorf("unknown kind %q (want \"micro\", \"tpcd\" or \"tpcc\")", req.Kind)
	}

	cfg := opts.Config
	if req.L2KB != 0 {
		cfg.L2SizeKB = req.L2KB
	}
	if req.BTB != 0 {
		cfg.BTBEntries = req.BTB
	}
	if err := cfg.Validate(); err != nil {
		return harness.CellSpec{}, 0, fmt.Errorf("platform: %v", err)
	}
	spec.Config = cfg

	timeout := maxTimeout
	if req.TimeoutMs < 0 {
		return harness.CellSpec{}, 0, fmt.Errorf("timeoutMs %d negative", req.TimeoutMs)
	}
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return spec, timeout, nil
}

// specJSON is the normalized spec echoed back in responses: what the
// server actually measured, defaults resolved.
type specJSON struct {
	Kind        string  `json:"kind"`
	System      string  `json:"system"`
	Query       string  `json:"query,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`
	RecordSize  int     `json:"recordSize,omitempty"`
	Txns        int     `json:"txns,omitempty"`
	L2KB        int     `json:"l2kb"`
	BTB         int     `json:"btb"`
}

// specEcho renders the normalized spec for the response body.
func specEcho(spec harness.CellSpec) specJSON {
	j := specJSON{
		System: spec.System.String(),
		L2KB:   spec.Config.L2SizeKB,
		BTB:    spec.Config.BTBEntries,
	}
	switch spec.Kind {
	case harness.CellMicro:
		j.Kind = "micro"
		j.Query = spec.Query.String()
		j.Selectivity = spec.Selectivity
		j.RecordSize = spec.RecordSize
	case harness.CellTPCD:
		j.Kind = "tpcd"
	case harness.CellTPCC:
		j.Kind = "tpcc"
		j.Txns = spec.Txns
	}
	return j
}
