package server

import (
	"context"
	"time"
)

// clock abstracts time for the server — per-request deadlines and the
// batcher's accumulation windows — so every piece of window logic is
// unit-tested against a fake clock that only moves when the test says
// so (no real sleeps anywhere in this package's tests). Production
// code uses realClock; Config.clk injects a replacement.
type clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once, d from now.
	NewTimer(d time.Duration) timer
	// WithTimeout derives a context whose Err is
	// context.DeadlineExceeded once d has elapsed — the contract
	// harness.MeasureContext maps to a 504.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// timer is the subset of time.Timer the server uses.
type timer interface {
	// C returns the firing channel.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it prevented a firing.
	Stop() bool
}

// realClock is the production clock: plain time and context calls.
type realClock struct{}

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) timer { return realTimer{time.NewTimer(d)} }
func (realClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}
