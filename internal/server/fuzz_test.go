package server

import (
	"strings"
	"testing"
	"time"

	"wheretime/internal/trace"
)

// FuzzCellSpecJSON hammers the request decoder: whatever the bytes, a
// malformed spec must produce an error (for a 400), never a panic —
// and decoding must never touch the trace arenas, so a garbage
// request can't cost a recording allocation before it is rejected.
func FuzzCellSpecJSON(f *testing.F) {
	f.Add(`{"kind":"micro","system":"B","query":"SRS"}`)
	f.Add(`{"kind":"micro","system":"A","query":"IXJ","selectivity":0.02,"recordSize":200,"l2kb":1024,"timeoutMs":100}`)
	f.Add(`{"kind":"tpcd","system":"D","btb":64}`)
	f.Add(`{"kind":"tpcc","system":"C","txns":400}`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"kind":"micro","system":"B","query":"SRS"}{"kind":"micro"}`)
	f.Add(`{"kind":"micro","system":"B","query":"SRS","selectivity":1e308}`)
	f.Add(`{"kind":"tpcc","system":"C","txns":-1}`)
	f.Add(strings.Repeat(`{"kind":`, 1000))

	opts := testOpts()
	f.Fuzz(func(t *testing.T, body string) {
		c0, e0, b0 := trace.LiveBuffers()
		spec, timeout, err := decodeSpec(opts, time.Minute, strings.NewReader(body))
		if err == nil {
			// Accepted specs must be internally coherent: a resolvable
			// platform and a positive bounded deadline.
			if timeout <= 0 || timeout > time.Minute {
				t.Fatalf("accepted timeout %v out of (0, 1m]", timeout)
			}
			if verr := spec.Config.Validate(); verr != nil {
				t.Fatalf("accepted spec with invalid platform: %v", verr)
			}
		}
		if c, e, b := trace.LiveBuffers(); c != c0 || e != e0 || b != b0 {
			t.Fatalf("decode touched trace arenas: chunks %d->%d encBufs %d->%d blocks %d->%d",
				c0, c, e0, e, b0, b)
		}
	})
}
