package server

// The gang-batcher suite. Every test drives the accumulation window
// with the fake clock and synchronizes on server counters or fault
// gates — never a real-time sleep — so the batching, deadline and
// drain races are exercised deterministically under -race.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wheretime/internal/faults"
	"wheretime/internal/trace"
)

// Three platform-only variants of the SRS microbenchmark: same
// emission key, distinct tally keys — the shape the batcher exists
// for.
var srsVariants = []string{
	srsCell,
	`{"kind":"micro","system":"B","query":"SRS","l2kb":1024}`,
	`{"kind":"micro","system":"B","query":"SRS","l2kb":2048}`,
}

// newBatchedServer assembles a batching server on a fake clock.
func newBatchedServer(t *testing.T, fc *fakeClock, window time.Duration, max int, inj *faults.Injector) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Opts:       testOpts(),
		Inj:        inj,
		Logf:       t.Logf,
		GangWindow: window,
		GangMax:    max,
		clk:        fc,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

type postResult struct {
	status int
	body   []byte
}

// asyncPost posts one cell body on its own goroutine.
func asyncPost(t *testing.T, url, body string) <-chan postResult {
	t.Helper()
	ch := make(chan postResult, 1)
	go func() {
		status, b := postCell(t, url, body)
		ch <- postResult{status, b}
	}()
	return ch
}

// TestBatchedByteEquivalence is the tentpole acceptance test: N
// concurrent requests for K platform variants of one workload,
// batched behind the window, answer byte-identically to a
// gangwindow=0 control server — and cost ONE workload execution
// instead of K.
func TestBatchedByteEquivalence(t *testing.T) {
	fc := newFakeClock()
	srv, ts := newBatchedServer(t, fc, 50*time.Millisecond, 0, nil)

	// Two concurrent requests per variant: duplicates coalesce at the
	// singleflight layer, distinct variants meet in the batch window.
	const per = 2
	k := len(srsVariants)
	n := k * per
	results := make([][]postResult, k)
	var wg sync.WaitGroup
	for vi, body := range srsVariants {
		results[vi] = make([]postResult, per)
		for j := 0; j < per; j++ {
			wg.Add(1)
			go func(vi, j int, body string) {
				defer wg.Done()
				status, b := postCell(t, ts.URL, body)
				results[vi][j] = postResult{status, b}
			}(vi, j, body)
		}
	}
	// Wait until every flight leader is parked in the window and every
	// duplicate has attached to its flight, then release the window.
	spinUntil(t, "members to accumulate", func() bool {
		return srv.batch.batched.Load() == int64(k) && srv.coalesced.Load() == int64(n-k)
	})
	fc.Advance(50 * time.Millisecond)
	wg.Wait()

	if got := srv.simulations.Load(); got != 1 {
		t.Errorf("batched burst ran %d simulations, want 1", got)
	}
	h := health(t, ts.URL)
	if h.Batch == nil {
		t.Fatal("healthz has no batch section with batching on")
	}
	if h.Batch.GangsFormed != 1 || h.Batch.MeanK != float64(k) ||
		h.Batch.WindowCloses != 1 || h.Batch.CapCloses != 0 ||
		h.Batch.BatchedRequests != int64(k) {
		t.Errorf("batch counters = %+v, want 1 gang of K=%d closed by its window", h.Batch, k)
	}

	// Control: the same request set against a server with batching off.
	_, control := newTestServer(t, nil, nil)
	for vi, body := range srsVariants {
		status, want := postCell(t, control.URL, body)
		if status != http.StatusOK {
			t.Fatalf("control %d: status %d: %s", vi, status, want)
		}
		for j := 0; j < per; j++ {
			r := results[vi][j]
			if r.status != http.StatusOK {
				t.Errorf("batched %d/%d: status %d: %s", vi, j, r.status, r.body)
				continue
			}
			if !bytes.Equal(r.body, want) {
				t.Errorf("variant %d request %d: batched response differs from unbatched control:\n%s\nvs\n%s",
					vi, j, r.body, want)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestBatchCapCloses: a window that fills to GangMax dispatches
// immediately — no clock advance at all — and the counter says the
// cap closed it.
func TestBatchCapCloses(t *testing.T) {
	fc := newFakeClock()
	srv, ts := newBatchedServer(t, fc, time.Hour, 2, nil)

	r1 := asyncPost(t, ts.URL, srsVariants[0])
	r2 := asyncPost(t, ts.URL, srsVariants[1])
	for i, ch := range []<-chan postResult{r1, r2} {
		if r := <-ch; r.status != http.StatusOK {
			t.Errorf("request %d: status %d: %s", i, r.status, r.body)
		}
	}
	h := health(t, ts.URL)
	if h.Batch.CapCloses != 1 || h.Batch.WindowCloses != 0 || h.Batch.GangsFormed != 1 || h.Batch.MeanK != 2 {
		t.Errorf("batch counters = %+v, want 1 gang of 2 closed by the cap", h.Batch)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestBatchDeadlineInsideWindow: a request whose deadline expires
// while it is HELD IN the accumulation window answers 504 — hold time
// counts against the budget — without poisoning the gang: the other
// member still measures and answers 200. Buffers return to baseline.
func TestBatchDeadlineInsideWindow(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	fc := newFakeClock()
	srv, ts := newBatchedServer(t, fc, 100*time.Millisecond, 0, nil)

	impatient := `{"kind":"micro","system":"B","query":"SRS","timeoutMs":50}`
	rA := asyncPost(t, ts.URL, impatient)
	rB := asyncPost(t, ts.URL, srsVariants[1])
	spinUntil(t, "both members in the window", func() bool {
		return srv.batch.batched.Load() == 2
	})

	// Past A's deadline, still inside the window: A answers 504 now.
	fc.Advance(50 * time.Millisecond)
	a := <-rA
	if a.status != http.StatusGatewayTimeout || !bytes.Contains(a.body, []byte("deadline")) {
		t.Fatalf("impatient member: status %d body %s, want a 504 naming the deadline", a.status, a.body)
	}

	// The rest of the window elapses; the gang runs without A.
	fc.Advance(50 * time.Millisecond)
	b := <-rB
	if b.status != http.StatusOK {
		t.Fatalf("surviving member: status %d: %s", b.status, b.body)
	}
	_, control := newTestServer(t, nil, nil)
	if _, want := postCell(t, control.URL, srsVariants[1]); !bytes.Equal(b.body, want) {
		t.Errorf("surviving member differs from control:\n%s\nvs\n%s", b.body, want)
	}

	h := health(t, ts.URL)
	if h.Batch.GangsFormed != 1 || h.Batch.MeanK != 1 {
		t.Errorf("batch counters = %+v, want 1 gang of 1 (the abandoned member skipped)", h.Batch)
	}
	if h.Failures < 1 {
		t.Errorf("failures = %d, want >= 1 for the abandoned member", h.Failures)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if c, e, bl := trace.LiveBuffers(); c != c0 || e != e0 || bl != b0 {
		t.Errorf("leaked trace buffers: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c, e0, e, b0, bl)
	}
}

// TestBatchLeaderDisconnectMidWindow: the client that OPENED the
// window going away does not kill the gang — the member rides along,
// the simulation runs once, and the surviving member's response is
// untouched.
func TestBatchLeaderDisconnectMidWindow(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	fc := newFakeClock()
	srv, ts := newBatchedServer(t, fc, 100*time.Millisecond, 0, nil)

	// The window opener, on a cancelable request.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/cells",
			strings.NewReader(srsVariants[0]))
		if err != nil {
			errc <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	spinUntil(t, "the leader to open the window", func() bool {
		return srv.batch.batched.Load() == 1
	})
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request did not error")
	}

	rB := asyncPost(t, ts.URL, srsVariants[1])
	spinUntil(t, "the second member to join", func() bool {
		return srv.batch.batched.Load() == 2
	})
	fc.Advance(100 * time.Millisecond)
	b := <-rB
	if b.status != http.StatusOK {
		t.Fatalf("surviving member: status %d: %s", b.status, b.body)
	}

	h := health(t, ts.URL)
	if got := srv.simulations.Load(); got != 1 {
		t.Errorf("gang after leader disconnect ran %d simulations, want 1", got)
	}
	if h.Batch.GangsFormed != 1 || h.Batch.MeanK != 2 {
		t.Errorf("batch counters = %+v, want 1 gang of 2 (the departed leader's member included)", h.Batch)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if c, e, bl := trace.LiveBuffers(); c != c0 || e != e0 || bl != b0 {
		t.Errorf("leaked trace buffers: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c, e0, e, b0, bl)
	}
}

// TestBatchDrainFlushesHalfFullWindow: drain with a half-full window
// dispatches it immediately — members admitted before the drain get
// real answers, nothing waits out the window, and Close returns
// cleanly with buffers at baseline.
func TestBatchDrainFlushesHalfFullWindow(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	fc := newFakeClock()
	srv, ts := newBatchedServer(t, fc, time.Hour, 0, nil)

	rA := asyncPost(t, ts.URL, srsVariants[0])
	rB := asyncPost(t, ts.URL, srsVariants[1])
	spinUntil(t, "both members in the window", func() bool {
		return srv.batch.batched.Load() == 2
	})
	srv.BeginDrain() // never advances the clock: the flush must not wait

	for i, ch := range []<-chan postResult{rA, rB} {
		if r := <-ch; r.status != http.StatusOK {
			t.Errorf("drained member %d: status %d: %s", i, r.status, r.body)
		}
	}
	h := health(t, ts.URL)
	if h.Batch.DrainFlushes < 1 {
		t.Errorf("batch counters = %+v, want a drain flush", h.Batch)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if c, e, bl := trace.LiveBuffers(); c != c0 || e != e0 || bl != b0 {
		t.Errorf("leaked trace buffers: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c, e0, e, b0, bl)
	}
}

// TestBatchWorkerPanic: a panic inside the gang answers 500 to every
// member and the server keeps serving.
func TestBatchWorkerPanic(t *testing.T) {
	fc := newFakeClock()
	inj := faults.New()
	inj.PanicN(faults.OpWorker, 1, "blown gang fuse")
	srv, ts := newBatchedServer(t, fc, 50*time.Millisecond, 0, inj)

	rA := asyncPost(t, ts.URL, srsVariants[0])
	rB := asyncPost(t, ts.URL, srsVariants[1])
	spinUntil(t, "both members in the window", func() bool {
		return srv.batch.batched.Load() == 2
	})
	fc.Advance(50 * time.Millisecond)
	for i, ch := range []<-chan postResult{rA, rB} {
		r := <-ch
		if r.status != http.StatusInternalServerError || !bytes.Contains(r.body, []byte("panic")) {
			t.Errorf("member %d: status %d body %s, want a 500 naming the panic", i, r.status, r.body)
		}
	}

	// The next window is healthy.
	rc := asyncPost(t, ts.URL, srsVariants[0])
	spinUntil(t, "the retry to open a window", func() bool {
		return srv.batch.batched.Load() == 3
	})
	fc.Advance(50 * time.Millisecond)
	if r := <-rc; r.status != http.StatusOK {
		t.Errorf("request after gang panic: status %d: %s", r.status, r.body)
	}
	if h := health(t, ts.URL); h.Failures < 2 {
		t.Errorf("failures = %d, want >= 2 (both panicked members)", h.Failures)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestBatchConfigValidation: negative knobs are rejected; a zero
// window means no batcher and no /healthz batch section.
func TestBatchConfigValidation(t *testing.T) {
	if _, err := New(Config{Opts: testOpts(), GangWindow: -time.Millisecond}); err == nil {
		t.Error("New accepted a negative gang window")
	}
	if _, err := New(Config{Opts: testOpts(), GangWindow: time.Millisecond, GangMax: -1}); err == nil {
		t.Error("New accepted a negative gang max")
	}
	_, ts := newTestServer(t, nil, nil)
	if h := health(t, ts.URL); h.Batch != nil {
		t.Error("healthz has a batch section with batching off")
	}
}
