package server

import "sync"

// flight is one in-progress (or finished) cell measurement. Followers
// wait on done and then read the one marshaled response every
// coalesced request shares — byte-identical bodies by construction.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
}

// group coalesces concurrent calls by key: the first caller becomes
// the leader and run executes once in its own goroutine; callers
// arriving while the flight is open attach to it. The key is removed
// when the flight lands, so a later repeat starts fresh (and hits the
// tally store instead of re-simulating). A hand-rolled singleflight:
// the repo takes no dependencies, and the drain semantics (wait) are
// specific to the server.
type group struct {
	mu sync.Mutex
	m  map[string]*flight
	wg sync.WaitGroup
}

// do returns the flight for key, starting run on a fresh goroutine if
// no flight is open. The second result reports whether this caller
// started it.
func (g *group) do(key string, run func() (int, []byte)) (*flight, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.wg.Add(1)
	g.mu.Unlock()

	go func() {
		defer g.wg.Done()
		f.status, f.body = run()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	return f, true
}

// wait blocks until every open flight has landed.
func (g *group) wait() { g.wg.Wait() }
