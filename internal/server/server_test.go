package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wheretime/internal/faults"
	"wheretime/internal/harness"
	"wheretime/internal/trace"
	"wheretime/internal/tracestore"
)

// testOpts is the fast base option set every server test shares: the
// golden-suite scale, one warm-up run.
func testOpts() harness.Options {
	opts := harness.DefaultOptions()
	opts.Scale = 0.002
	return opts
}

// newTestServer assembles a server (optionally with a store and an
// injector) and its httptest front end; both are torn down with the
// test.
func newTestServer(t *testing.T, store *tracestore.Store, inj *faults.Injector) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Opts:  testOpts(),
		Store: store,
		Inj:   inj,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postCell POSTs one cell-spec body and returns status and body.
func postCell(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/cells", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

// health fetches and decodes /healthz.
func health(t *testing.T, url string) healthJSON {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return h
}

const srsCell = `{"kind":"micro","system":"B","query":"SRS"}`

// TestCoalescedRequests pins the singleflight contract: N concurrent
// identical POSTs cost one simulation, and every caller gets the same
// bytes. A worker gate holds the leader's flight open until every
// follower has provably attached — no guessed latency.
func TestCoalescedRequests(t *testing.T) {
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	inj := faults.New()
	entered, release := inj.BlockN(faults.OpWorker, 1)
	srv, ts := newTestServer(t, store, inj)

	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, b := postCell(t, ts.URL, srsCell)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, b)
			}
			bodies[i] = b
		}(i)
	}
	<-entered // the leader is inside the worker
	spinUntil(t, "followers to coalesce", func() bool { return srv.coalesced.Load() == n-1 })
	release()
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	h := health(t, ts.URL)
	if h.Simulations+h.Coalesced != n {
		t.Errorf("simulations %d + coalesced %d != %d requests", h.Simulations, h.Coalesced, n)
	}
	if h.Coalesced < 1 {
		t.Error("no request coalesced")
	}

	// A repeat after the flight landed starts a fresh flight but hits
	// the tally store instead of re-simulating the cell.
	status, b := postCell(t, ts.URL, srsCell)
	if status != http.StatusOK || !bytes.Equal(b, bodies[0]) {
		t.Errorf("repeat: status %d, body equal=%v", status, bytes.Equal(b, bodies[0]))
	}
	if h2 := health(t, ts.URL); h2.Store == nil || h2.Store.EntryHits < 1 {
		t.Errorf("repeat did not hit the tally store: %+v", h2.Store)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestCorruptStoreQuarantineAndRecompute is the acceptance scenario:
// corrupt every stored trace file, request a cell that warm-starts
// from them, and require (a) quarantine, (b) a correct cold
// recompute — byte-identical to what a fresh-store server answers.
func TestCorruptStoreQuarantineAndRecompute(t *testing.T) {
	dir := t.TempDir()
	store, err := tracestore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv, ts := newTestServer(t, store, nil)

	if status, b := postCell(t, ts.URL, srsCell); status != http.StatusOK {
		t.Fatalf("seed request: status %d: %s", status, b)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "tr-*.trace"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("no trace files written (%v)", err)
	}
	for _, p := range traces {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatalf("corrupt %s: %v", p, err)
		}
	}

	// A platform variant of the same cell shares the emission key, so
	// its measurement tries to warm-start from the now-corrupt traces.
	variant := `{"kind":"micro","system":"B","query":"SRS","l2kb":1024}`
	status, got := postCell(t, ts.URL, variant)
	if status != http.StatusOK {
		t.Fatalf("variant request: status %d: %s", status, got)
	}
	h := health(t, ts.URL)
	if h.Store == nil || h.Store.Quarantined < 1 {
		t.Fatalf("no quarantine recorded: %+v", h.Store)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "tr-*.trace.corrupt")); len(matches) == 0 {
		t.Error("no quarantined trace file on disk")
	}

	// The recompute is correct: a server over a fresh store answers
	// the identical bytes (the response carries no timestamps or
	// server identity).
	fresh, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	srv2, ts2 := newTestServer(t, fresh, nil)
	status2, want := postCell(t, ts2.URL, variant)
	if status2 != http.StatusOK {
		t.Fatalf("fresh request: status %d: %s", status2, want)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recompute after corruption differs from fresh compute:\n%s\nvs\n%s", got, want)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Errorf("Close fresh: %v", err)
	}
}

// TestRequestTimeout: a request whose deadline passes answers 504,
// the next request succeeds, and tearing the server down leaves no
// goroutines or trace buffers behind. The deadline is driven by the
// fake clock: the worker blocks at the fault gate, the clock advances
// past the request deadline, and only then is the worker released
// into the (now expired) measurement context.
func TestRequestTimeout(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	g0 := runtime.NumGoroutine()

	inj := faults.New()
	entered, release := inj.BlockN(faults.OpWorker, 1)
	fc := newFakeClock()
	srv, err := New(Config{Opts: testOpts(), Inj: inj, Logf: t.Logf, clk: fc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow := `{"kind":"micro","system":"B","query":"SRS","timeoutMs":50}`
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, b := postCell(t, ts.URL, slow)
		done <- result{status, b}
	}()
	<-entered // the worker holds the request's deadline context open
	fc.Advance(51 * time.Millisecond)
	release()
	r := <-done
	status, b := r.status, r.body
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, b)
	}
	if !bytes.Contains(b, []byte("deadline")) {
		t.Errorf("504 body does not mention the deadline: %s", b)
	}
	if status, b := postCell(t, ts.URL, srsCell); status != http.StatusOK {
		t.Fatalf("request after timeout: status %d: %s", status, b)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	if c, e, bl := trace.LiveBuffers(); c != c0 || e != e0 || bl != b0 {
		t.Errorf("leaked trace buffers: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c, e0, e, b0, bl)
	}
	// Goroutines take a moment to unwind after Close; yield, don't sleep.
	spinUntil(t, "goroutines to unwind", func() bool { return runtime.NumGoroutine() <= g0+2 })
}

// TestWorkerPanicRecovered: an injected worker panic answers 500 and
// the server keeps serving.
func TestWorkerPanicRecovered(t *testing.T) {
	inj := faults.New()
	inj.PanicN(faults.OpWorker, 1, "blown fuse")
	srv, ts := newTestServer(t, nil, inj)

	status, b := postCell(t, ts.URL, srsCell)
	if status != http.StatusInternalServerError || !bytes.Contains(b, []byte("panic")) {
		t.Fatalf("status %d, body %s; want a 500 naming the panic", status, b)
	}
	if status, b := postCell(t, ts.URL, srsCell); status != http.StatusOK {
		t.Fatalf("request after panic: status %d: %s", status, b)
	}
	if h := health(t, ts.URL); h.Failures < 1 {
		t.Errorf("failures = %d, want >= 1", h.Failures)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestDrainCompletesInFlight: draining flips /readyz and refuses new
// cells while a request already in flight runs to completion. The
// worker gate proves the flight is open before drain begins.
func TestDrainCompletesInFlight(t *testing.T) {
	inj := faults.New()
	entered, release := inj.BlockN(faults.OpWorker, 1)
	srv, ts := newTestServer(t, nil, inj)

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	}

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, b := postCell(t, ts.URL, srsCell)
		done <- result{status, b}
	}()
	<-entered // the flight is open and inside the worker
	srv.BeginDrain()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %v %v, want 503", resp, err)
	}
	if status, _ := postCell(t, ts.URL, srsCell); status != http.StatusServiceUnavailable {
		t.Errorf("new cell during drain: status %d, want 503", status)
	}
	release()
	r := <-done
	if r.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d: %s", r.status, r.body)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestReadOnlyStoreDegraded: when every store write fails, the
// measurement still answers, /healthz reports degraded, and Close
// surfaces ErrReadOnly for the staged entries it could not flush.
func TestReadOnlyStoreDegraded(t *testing.T) {
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	inj := faults.New()
	inj.FailN(faults.OpWrite, -1, errors.New("disk on fire"))
	store.SetFaults(inj)
	srv, ts := newTestServer(t, store, nil)

	if status, b := postCell(t, ts.URL, srsCell); status != http.StatusOK {
		t.Fatalf("status %d with a failing store: %s", status, b)
	}
	h := health(t, ts.URL)
	if h.Status != "degraded" || h.Store == nil || !h.Store.ReadOnly || h.Store.WriteFailures < 1 {
		t.Errorf("healthz = %+v store=%+v, want degraded/read-only", h, h.Store)
	}
	if err := srv.Close(); !errors.Is(err, tracestore.ErrReadOnly) {
		t.Errorf("Close = %v, want ErrReadOnly", err)
	}
}

// TestSpecValidation drives the request decoder through the 400
// surface and the normalization contract.
func TestSpecValidation(t *testing.T) {
	opts := testOpts()
	bad := []struct {
		name, body, wantErr string
	}{
		{"empty", ``, "invalid cell spec"},
		{"not json", `{"kind":`, "invalid cell spec"},
		{"trailing", `{"kind":"micro","system":"B","query":"SRS"} 1`, "trailing data"},
		{"unknown field", `{"kind":"micro","system":"B","query":"SRS","bogus":1}`, "bogus"},
		{"bad kind", `{"kind":"macro","system":"B"}`, "unknown kind"},
		{"bad system", `{"kind":"micro","system":"E","query":"SRS"}`, "unknown system"},
		{"lowercase system", `{"kind":"micro","system":"b","query":"SRS"}`, "unknown system"},
		{"bad query", `{"kind":"micro","system":"B","query":"DROP"}`, "unknown query"},
		{"selectivity high", `{"kind":"micro","system":"B","query":"SRS","selectivity":1.5}`, "selectivity"},
		{"recsize odd", `{"kind":"micro","system":"B","query":"SRS","recordSize":27}`, "recordSize"},
		{"recsize huge", `{"kind":"micro","system":"B","query":"SRS","recordSize":65536}`, "recordSize"},
		{"txns on micro", `{"kind":"micro","system":"B","query":"SRS","txns":5}`, "txns"},
		{"tpcd with query", `{"kind":"tpcd","system":"B","query":"SRS"}`, "tpcd"},
		{"tpcd with recsize", `{"kind":"tpcd","system":"B","recordSize":100}`, "tpcd"},
		{"tpcc without txns", `{"kind":"tpcc","system":"C"}`, "txns"},
		{"tpcc txns huge", `{"kind":"tpcc","system":"C","txns":1000000}`, "txns"},
		{"bad platform", `{"kind":"micro","system":"B","query":"SRS","l2kb":-1}`, "platform"},
		{"negative timeout", `{"kind":"micro","system":"B","query":"SRS","timeoutMs":-1}`, "timeoutMs"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodeSpec(opts, time.Minute, strings.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("decodeSpec(%s) = %v, want error containing %q", tc.body, err, tc.wantErr)
			}
		})
	}

	// Normalization: omitted fields fill from the base options, so an
	// explicit default and an omitted one produce the same tally key.
	implicit, dt, err := decodeSpec(opts, time.Minute, strings.NewReader(srsCell))
	if err != nil {
		t.Fatalf("decodeSpec: %v", err)
	}
	explicit, _, err := decodeSpec(opts, time.Minute, strings.NewReader(
		fmt.Sprintf(`{"kind":"micro","system":"B","query":"SRS","selectivity":%g,"recordSize":%d}`,
			opts.Selectivity, opts.RecordSize)))
	if err != nil {
		t.Fatalf("decodeSpec explicit: %v", err)
	}
	if implicit != explicit {
		t.Errorf("normalized specs differ:\n%+v\nvs\n%+v", implicit, explicit)
	}
	if harness.TallyKey(opts, implicit) != harness.TallyKey(opts, explicit) {
		t.Error("tally keys differ for equivalent requests")
	}
	if dt != time.Minute {
		t.Errorf("default timeout = %v, want the ceiling", dt)
	}
	// timeoutMs clamps to the ceiling; below it, it wins.
	if _, dt, _ := decodeSpec(opts, time.Minute, strings.NewReader(
		`{"kind":"micro","system":"B","query":"SRS","timeoutMs":50}`)); dt != 50*time.Millisecond {
		t.Errorf("timeoutMs 50 -> %v", dt)
	}
	if _, dt, _ := decodeSpec(opts, time.Second, strings.NewReader(
		`{"kind":"micro","system":"B","query":"SRS","timeoutMs":5000}`)); dt != time.Second {
		t.Errorf("timeoutMs above ceiling -> %v, want clamp to 1s", dt)
	}

	// An HTTP-level check that a 400 carries the JSON error shape.
	_, ts := newTestServer(t, nil, nil)
	status, b := postCell(t, ts.URL, `{"kind":"macro","system":"B"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
		t.Errorf("400 body %q is not the JSON error shape", b)
	}
}
