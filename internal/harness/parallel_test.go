package harness

import (
	"testing"

	"wheretime/internal/engine"
)

// renderAll measures and renders the given experiments at the given
// worker count, returning one concatenated string per experiment.
func renderAll(t *testing.T, opts Options, exps []Experiment, parallel int) []string {
	t.Helper()
	rendered, err := RunExperiments(opts, exps, parallel)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rendered))
	for i, tables := range rendered {
		for _, tb := range tables {
			out[i] += tb.Render()
		}
	}
	return out
}

// TestParallelMatchesSerialSubset pins the grid's core guarantee on a
// fast subset every run (including -short CI): the parallel grid's
// tables are byte-identical to the serial path's. The subset covers
// the three cell kinds of sub-environment use — base grid, selectivity
// overrides and record-size rebuilds.
func TestParallelMatchesSerialSubset(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.001
	var exps []Experiment
	for _, name := range []string{"fig5.1", "fig5.4b", "recsize"} {
		e, err := Find(name)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	serial := renderAll(t, opts, exps, 1)
	parallel := renderAll(t, opts, exps, 4)
	for i, e := range exps {
		if serial[i] != parallel[i] {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				e.Name, serial[i], parallel[i])
		}
	}
}

// TestParallelMatchesSerial asserts the full guarantee: every
// registered experiment renders byte-identical tables at -parallel=8
// and -parallel=1, and the claim verdicts agree.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid determinism check measures every cell twice")
	}
	opts := DefaultOptions()
	opts.Scale = 0.002
	exps := Experiments()
	serial := renderAll(t, opts, exps, 1)
	parallel := renderAll(t, opts, exps, 8)
	for i, e := range exps {
		if serial[i] != parallel[i] {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				e.Name, serial[i], parallel[i])
		}
	}

	// Claim verdicts, compared structurally as well as rendered.
	serialRes, err := Measure(opts, claimsCells(opts), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelRes, err := Measure(opts, claimsCells(opts), 8)
	if err != nil {
		t.Fatal(err)
	}
	serialClaims, err := checkClaims(opts, serialRes)
	if err != nil {
		t.Fatal(err)
	}
	parallelClaims, err := checkClaims(opts, parallelRes)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialClaims) != len(parallelClaims) {
		t.Fatalf("claim counts differ: %d vs %d", len(serialClaims), len(parallelClaims))
	}
	for i := range serialClaims {
		if serialClaims[i] != parallelClaims[i] {
			t.Errorf("claim %s differs:\nserial   %+v\nparallel %+v",
				serialClaims[i].ID, serialClaims[i], parallelClaims[i])
		}
	}
}

// TestMeasureDeduplicates verifies that equal cells emitted by several
// experiments are scheduled once.
func TestMeasureDeduplicates(t *testing.T) {
	opts := DefaultOptions()
	spec := microCell(opts, engine.SystemD, SRS)
	specs := dedupeSpecs([]CellSpec{spec, spec, spec})
	if len(specs) != 1 {
		t.Fatalf("dedupe kept %d of 3 equal specs", len(specs))
	}
	a := microCell(opts, engine.SystemD, SRS)
	a.Selectivity = 0.5
	specs = dedupeSpecs([]CellSpec{spec, a, spec})
	if len(specs) != 2 {
		t.Fatalf("dedupe kept %d of 2 distinct specs", len(specs))
	}
}

// TestResultsRejectUndeclaredCell verifies the aggregation refuses to
// serve a cell no experiment declared (the error that catches a
// Cells/Render mismatch).
func TestResultsRejectUndeclaredCell(t *testing.T) {
	res := &Results{cells: map[CellSpec]Cell{}}
	if _, err := res.Get(CellSpec{Kind: CellTPCD, System: engine.SystemA}); err == nil {
		t.Error("Results.Get of an unmeasured cell should fail without an env fallback")
	}
}

// TestExperimentCellsCoverRenders verifies, for every registered
// experiment, that Render consumes only cells Cells declared: a
// render against a result set holding exactly the declared cells (no
// env fallback) must succeed.
func TestExperimentCellsCoverRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("measures the full declared grid")
	}
	opts := DefaultOptions()
	opts.Scale = 0.002
	for _, e := range Experiments() {
		res, err := Measure(opts, e.Cells(opts), 2)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if _, err := e.Render(opts, res); err != nil {
			t.Errorf("%s: render needs a cell Cells did not declare: %v", e.Name, err)
		}
	}
}

// TestEnvFactoryIsolation verifies two factories at the same options
// build fully distinct simulator stacks — nothing shared that a
// worker could race on.
func TestEnvFactoryIsolation(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	a, err := NewEnvFactory(opts).Env()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnvFactory(opts).Env()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("factories shared an Env")
	}
	if a.nsm == b.nsm || a.pax == b.pax {
		t.Error("factories shared a database")
	}
	for _, s := range engine.Systems() {
		if a.Engine(s) == b.Engine(s) {
			t.Errorf("factories shared the %s engine", s)
		}
	}
}

// TestRunSpecKinds exercises each cell kind through RunSpec on one
// environment, including a record-size rebuild and a selectivity
// shift.
func TestRunSpecKinds(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	micro := microCell(opts, engine.SystemC, SRS)
	cell, err := env.RunSpec(micro)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Breakdown.Counts.Records == 0 {
		t.Error("micro cell processed no records")
	}

	shifted := micro
	shifted.Selectivity = 0.5
	if _, err := env.RunSpec(shifted); err != nil {
		t.Errorf("selectivity shift: %v", err)
	}

	resized := micro
	resized.RecordSize = 20
	if _, err := env.RunSpec(resized); err != nil {
		t.Errorf("record-size rebuild: %v", err)
	}
	if _, ok := env.subenvs[20]; !ok {
		t.Error("record-size sub-environment was not cached")
	}

	if _, err := env.RunSpec(CellSpec{Kind: CellTPCC, System: engine.SystemC, Txns: 50}); err != nil {
		t.Errorf("TPC-C cell: %v", err)
	}
	if _, err := env.RunSpec(CellSpec{Kind: CellKind(99)}); err == nil {
		t.Error("unknown cell kind should fail")
	}
}
