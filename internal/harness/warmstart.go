package harness

// This file is the warm-start layer: everything that lets a grid cell
// skip work a previous measurement already did, at three depths.
//
//  1. Snapshot memo (in-process). After a cell's warm-up drains, the
//     pipeline's complete simulated state (xeon.State) is memoized per
//     (emission key, platform config). A revisit restores the state
//     and runs only the measured drain — the warm-up passes become a
//     handful of memcpys. On top of that, consecutive warm-up drains
//     are compared for a fixed point: once the state stops changing,
//     further warm-up passes are provably no-ops and stop early.
//  2. Trace store (on disk). Captured streams persist as
//     content-addressed files (tracestore.PutTrace) with a small ref
//     entry carrying what replay cannot recompute; a fresh process
//     replays from disk instead of re-executing the engine.
//  3. Tally store (on disk). The finished breakdown of a cell —
//     counts, cycle components (as float bits, so the round trip is
//     exact), rates, result — persists keyed by (emission key, config,
//     warm-up count). A warm process skips the simulation entirely.
//
// Every shortcut reproduces the Section 4.3 protocol bit-for-bit: the
// golden suite renders the grid with snapshotting on and off, and with
// the store cold, warm and absent, against the same committed files.
// Store keys fold in engine.StreamSchema(), so a store populated by
// one emission schema is never consulted by another.

import (
	"encoding/json"
	"fmt"
	"math"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/trace"
	"wheretime/internal/tracestore"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// snapMemoCap bounds the per-worker snapshot memo. A State is ~150 KB
// at the default geometry, so the cap keeps the memo's footprint in
// the tens of megabytes, in line with the trace cache budget.
const snapMemoCap = 128

// snapKey identifies a post-warm-up pipeline state: the emission key
// names the stream that warmed the pipeline, the config names the
// platform it warmed. Gang members share the solo path's entries —
// a gang pipe's state after warm-up is identical to the solo pipe's.
type snapKey struct {
	spec CellSpec
	cfg  xeon.Config
}

// snapMemo holds memoized post-warm-up states with insertion-order
// eviction. Like the trace cache, it belongs to one worker goroutine.
type snapMemo struct {
	limit int
	order []snapKey
	m     map[snapKey]*xeon.State
}

func newSnapMemo(limit int) *snapMemo {
	return &snapMemo{limit: limit, m: make(map[snapKey]*xeon.State)}
}

func (sm *snapMemo) lookup(k snapKey) *xeon.State {
	if sm == nil {
		return nil
	}
	return sm.m[k]
}

func (sm *snapMemo) store(k snapKey, st *xeon.State) {
	if sm == nil || st == nil {
		return
	}
	if _, ok := sm.m[k]; ok {
		sm.m[k] = st
		return
	}
	for len(sm.order) >= sm.limit {
		oldest := sm.order[0]
		sm.order = sm.order[1:]
		delete(sm.m, oldest)
	}
	sm.m[k] = st
	sm.order = append(sm.order, k)
}

// snapshotOn reports whether the snapshot layer is active: it requires
// both the option and recording (a snapshot is only sound when every
// warm-up pass drains the identical recorded stream; the re-execution
// fallback paths never consult it).
func (env *Env) snapshotOn() bool { return env.snaps != nil }

// keyMaterial builds the index-key material for one stored artifact.
// Every key folds in the emission schema token, so a store written by
// one engine version is a clean miss for any other. Config-dependent
// artifacts (tallies, snapshots) also fold in the platform and the
// warm-up count; trace refs deliberately do not — the stream is a
// pure function of the emission key, which is the whole point of
// gangs.
//
// The emission-key fields are spelled out one by one — never through
// CellSpec.String, whose diagnostic rendering drops workload fields
// for some kinds and would collide distinct specs onto one key
// (FuzzGangKeyCompat hunts exactly this). Selectivity folds in as its
// IEEE-754 bits so the material is injective over distinct floats.
func keyMaterial(kind string, spec CellSpec, cfg *xeon.Config, warmup int) string {
	e := emissionKey(spec)
	mat := fmt.Sprintf("wheretime|%s|schema=%s|spec=kind=%d,sys=%d,q=%d,selbits=%x,rec=%d,txns=%d",
		kind, engine.StreamSchema(), e.Kind, e.System, e.Query,
		math.Float64bits(e.Selectivity), e.RecordSize, e.Txns)
	if cfg != nil {
		mat = fmt.Sprintf("%s|cfg=%+v|warmup=%d", mat, *cfg, warmup)
	}
	return mat
}

// storeKey derives the index key for one stored artifact under this
// environment's options.
func (env *Env) storeKey(kind string, spec CellSpec, cfg *xeon.Config) string {
	return tracestore.KeyHash(keyMaterial(kind, spec, cfg, env.Opts.Warmup))
}

// TallyKey returns the persistent-store index key under which the
// finished tally of spec lives when measured at opts — the same key
// the warm-start layer reads and writes, derived from the same
// material. It identifies one fully costed measurement: emission key,
// platform configuration (the spec's, or the options' when the spec
// leaves it zero), warm-up count and emission schema. The wheretimed
// service coalesces identical in-flight requests on it.
func TallyKey(opts Options, spec CellSpec) string {
	cfg := spec.Config
	if cfg == (xeon.Config{}) {
		cfg = opts.Config
	}
	return tracestore.KeyHash(keyMaterial("tally", spec, &cfg, opts.Warmup))
}

// GangKey returns the batching key under which distinct cells may
// share one gang work unit: the platform-free half of the tally key —
// emission key, warm-up count and emission schema, everything except
// the platform configuration. Two specs with equal gang keys emit the
// identical event stream under the identical protocol, so a
// multi-config drain may measure them together (MeasureGang); specs
// with different gang keys must never share a gang, which
// FuzzGangKeyCompat pins from random spec pairs. The wheretimed
// batcher accumulates compatible requests on this key.
func GangKey(opts Options, spec CellSpec) string {
	return tracestore.KeyHash(fmt.Sprintf("%s|warmup=%d", keyMaterial("gang", spec, nil, 0), opts.Warmup))
}

// snapLookup returns the memoized post-warm-up state for (spec, cfg),
// falling back to the store. Only called on the snapshot path.
func (env *Env) snapLookup(spec CellSpec, cfg xeon.Config) *xeon.State {
	k := snapKey{spec: emissionKey(spec), cfg: cfg}
	if st := env.snaps.lookup(k); st != nil {
		return st
	}
	if env.store == nil {
		return nil
	}
	blob, ok := env.store.GetEntry(env.storeKey("snap", spec, &cfg))
	if !ok {
		return nil
	}
	st := &xeon.State{}
	if err := st.UnmarshalBinary(blob); err != nil {
		return nil // corrupt snapshot blob: treat as a miss, recompute
	}
	env.snaps.store(k, st)
	return st
}

// snapStore memoizes a post-warm-up state and persists it when a
// store is attached. The state must not be mutated afterwards.
func (env *Env) snapStore(spec CellSpec, cfg xeon.Config, st *xeon.State) {
	if env.snaps == nil || st == nil {
		return
	}
	env.snaps.store(snapKey{spec: emissionKey(spec), cfg: cfg}, st)
	if env.store != nil {
		if blob, err := st.MarshalBinary(); err == nil {
			env.store.PutEntry(env.storeKey("snap", spec, &cfg), blob)
		}
	}
}

// drainWarmSolo applies the Section 4.3 protocol to a captured stream
// on one pipeline: runs-1 warm-up drains, ResetStats, one measured
// drain — with done passes already performed live by the caller (1 on
// the cold path, whose first execution was captured in flight; 0 on a
// cache hit). With the snapshot layer on, a memoized post-warm-up
// state replaces the remaining warm-up drains with one restore; and
// each warm-up drain's state is compared with the previous one, so a
// fixed point stops warm-up early — every further pass is provably a
// no-op because the next drain's outcome depends only on this state.
// Either shortcut leaves the pipeline exactly where the full protocol
// would; the golden suite pins this across every leg.
func (env *Env) drainWarmSolo(pipe *xeon.Pipeline, stream *trace.Recording, spec CellSpec, cfg xeon.Config, runs, done int) {
	if done >= runs {
		return
	}
	warm := runs - 1
	if env.snapshotOn() && warm > 0 {
		if st := env.snapLookup(spec, cfg); st != nil && pipe.Restore(st) == nil {
			pipe.ResetStats()
			stream.Drain(pipe)
			return
		}
		var prev, cur *xeon.State
		for i := done; i < warm; i++ {
			stream.Drain(pipe)
			cur = pipe.Snapshot(cur)
			if cur.Equal(prev) {
				break // fixed point: the remaining warm-up passes are no-ops
			}
			prev, cur = cur, prev
		}
		env.snapStore(spec, cfg, pipe.Snapshot(prev))
		pipe.ResetStats()
		stream.Drain(pipe)
		return
	}
	for i := done; i < runs; i++ {
		if i == runs-1 {
			pipe.ResetStats()
		}
		stream.Drain(pipe)
	}
}

// drainWarmGang is drainWarmSolo on a multi-config gang. Snapshots
// are looked up and stored per configuration under the same keys the
// solo path uses — a gang pipe's post-warm-up state is identical to
// the solo pipe's for the same (stream, config) — and a restore is
// all-or-nothing (RestoreStates geometry-checks the whole gang before
// touching any pipe), so a partial memo falls back to draining.
func (env *Env) drainWarmGang(multi *xeon.MultiPipeline, stream *trace.Recording, spec CellSpec, cfgs []xeon.Config, runs, done int) {
	if done >= runs {
		return
	}
	warm := runs - 1
	if env.snapshotOn() && warm > 0 {
		states := make([]*xeon.State, len(cfgs))
		all := true
		for i, cfg := range cfgs {
			if states[i] = env.snapLookup(spec, cfg); states[i] == nil {
				all = false
				break
			}
		}
		if all && multi.RestoreStates(states) == nil {
			multi.ResetStats()
			stream.Drain(multi)
			return
		}
		var prev, cur *xeon.MultiState
		for i := done; i < warm; i++ {
			stream.Drain(multi)
			cur = multi.Snapshot(cur)
			if cur.Equal(prev) {
				break
			}
			prev, cur = cur, prev
		}
		final := multi.Snapshot(prev)
		for i, cfg := range cfgs {
			env.snapStore(spec, cfg, final.At(i))
		}
		multi.ResetStats()
		stream.Drain(multi)
		return
	}
	for i := done; i < runs; i++ {
		if i == runs-1 {
			multi.ResetStats()
		}
		stream.Drain(multi)
	}
}

// warmOLTP brings a pipeline to the post-warm-up point of the TPC-C
// protocol from a cached capture: a snapshot restore when one is
// memoized, the captured warm slice otherwise. No fixed-point loop —
// the warm slice runs exactly once and is a different stream from the
// measured mix.
func (env *Env) warmOLTP(pipe *xeon.Pipeline, ct *cellTrace, spec CellSpec, cfg xeon.Config) {
	if env.snapshotOn() {
		if st := env.snapLookup(spec, cfg); st != nil && pipe.Restore(st) == nil {
			return
		}
		ct.warm.Drain(pipe)
		env.snapStore(spec, cfg, pipe.Snapshot(nil))
		return
	}
	ct.warm.Drain(pipe)
}

// warmOLTPGang is warmOLTP on a gang, per-config keys, all-or-nothing
// restore.
func (env *Env) warmOLTPGang(multi *xeon.MultiPipeline, ct *cellTrace, spec CellSpec, cfgs []xeon.Config) {
	if env.snapshotOn() {
		states := make([]*xeon.State, len(cfgs))
		all := true
		for i, cfg := range cfgs {
			if states[i] = env.snapLookup(spec, cfg); states[i] == nil {
				all = false
				break
			}
		}
		if all && multi.RestoreStates(states) == nil {
			return
		}
		ct.warm.Drain(multi)
		st := multi.Snapshot(nil)
		for i, cfg := range cfgs {
			env.snapStore(spec, cfg, st.At(i))
		}
		return
	}
	ct.warm.Drain(multi)
}

// tallyVersion tags the storedTally JSON layout; traceRefVersion the
// storedTraceRef layout. A version bump is a clean cache miss.
const (
	tallyVersion    = 1
	traceRefVersion = 1
)

// storedRates is xeon.HardwareRates with the float fields as IEEE-754
// bits, so the stored tally round-trips exactly.
type storedRates struct {
	FloatBits     [8]uint64 `json:"floatBits"`
	L2Writebacks  uint64    `json:"l2wb"`
	L1DWritebacks uint64    `json:"l1dwb"`
}

func packRates(r xeon.HardwareRates) storedRates {
	return storedRates{
		FloatBits: [8]uint64{
			math.Float64bits(r.L1IMissRate), math.Float64bits(r.L1DMissRate),
			math.Float64bits(r.L2MissRate), math.Float64bits(r.ITLBMissRate),
			math.Float64bits(r.DTLBMissRate), math.Float64bits(r.BTBMissRate),
			math.Float64bits(r.MispredictRate), math.Float64bits(r.TakenBranchFrac),
		},
		L2Writebacks:  r.L2Writebacks,
		L1DWritebacks: r.L1DWritebacks,
	}
}

func unpackRates(s storedRates) xeon.HardwareRates {
	return xeon.HardwareRates{
		L1IMissRate:     math.Float64frombits(s.FloatBits[0]),
		L1DMissRate:     math.Float64frombits(s.FloatBits[1]),
		L2MissRate:      math.Float64frombits(s.FloatBits[2]),
		ITLBMissRate:    math.Float64frombits(s.FloatBits[3]),
		DTLBMissRate:    math.Float64frombits(s.FloatBits[4]),
		BTBMissRate:     math.Float64frombits(s.FloatBits[5]),
		MispredictRate:  math.Float64frombits(s.FloatBits[6]),
		TakenBranchFrac: math.Float64frombits(s.FloatBits[7]),
		L2Writebacks:    s.L2Writebacks,
		L1DWritebacks:   s.L1DWritebacks,
	}
}

// storedTally is a finished cell: everything Run returns, floats as
// bits (Value can be NaN — aggregate over no rows — which plain JSON
// cannot carry).
type storedTally struct {
	Version   int                 `json:"v"`
	Counts    core.Counts         `json:"counts"`
	CycleBits []uint64            `json:"cycleBits"`
	Rates     storedRates         `json:"rates"`
	ValueBits uint64              `json:"valueBits"`
	Rows      uint64              `json:"rows"`
	Stats     *workload.TPCCStats `json:"stats,omitempty"`
}

// lookupTally reconstructs a finished cell from the store. Any decode
// problem — wrong version, wrong shape, a breakdown that fails
// Validate — is a miss, never an error: the cell is simply recomputed.
func (env *Env) lookupTally(spec CellSpec, cfg xeon.Config, s engine.System, q QueryKind) (Cell, *workload.TPCCStats, bool) {
	if env.store == nil {
		return Cell{}, nil, false
	}
	blob, ok := env.store.GetEntry(env.storeKey("tally", spec, &cfg))
	if !ok {
		return Cell{}, nil, false
	}
	var t storedTally
	if err := json.Unmarshal(blob, &t); err != nil || t.Version != tallyVersion ||
		len(t.CycleBits) != len(core.Breakdown{}.Cycles) {
		return Cell{}, nil, false
	}
	b := &core.Breakdown{Counts: t.Counts}
	for i, bits := range t.CycleBits {
		b.Cycles[i] = math.Float64frombits(bits)
	}
	if err := b.Validate(); err != nil {
		return Cell{}, nil, false
	}
	cell := Cell{System: s, Query: q, Breakdown: b, Rates: unpackRates(t.Rates),
		Result: engine.Result{Value: math.Float64frombits(t.ValueBits), Rows: t.Rows}}
	return cell, t.Stats, true
}

// putTally persists a finished cell.
func (env *Env) putTally(spec CellSpec, cfg xeon.Config, cell Cell, stats *workload.TPCCStats) {
	if env.store == nil {
		return
	}
	t := storedTally{
		Version:   tallyVersion,
		Counts:    cell.Breakdown.Counts,
		CycleBits: make([]uint64, len(cell.Breakdown.Cycles)),
		Rates:     packRates(cell.Rates),
		ValueBits: math.Float64bits(cell.Result.Value),
		Rows:      cell.Result.Rows,
		Stats:     stats,
	}
	for i, c := range cell.Breakdown.Cycles {
		t.CycleBits[i] = math.Float64bits(c)
	}
	blob, err := json.Marshal(t)
	if err != nil {
		return
	}
	env.store.PutEntry(env.storeKey("tally", spec, &cfg), blob)
}

// lookupGangTallies returns the whole gang's cells when every member's
// tally is stored — all-or-nothing, so a partial store still measures
// the gang in one pass rather than mixing loaded and simulated cells.
func (env *Env) lookupGangTallies(unit []CellSpec, cfgs []xeon.Config, s engine.System, q QueryKind) ([]Cell, bool) {
	if env.store == nil {
		return nil, false
	}
	cells := make([]Cell, len(unit))
	for i := range unit {
		c, _, ok := env.lookupTally(unit[i], cfgs[i], s, q)
		if !ok {
			return nil, false
		}
		cells[i] = c
	}
	return cells, true
}

// putGangTallies persists every gang member's cell.
func (env *Env) putGangTallies(unit []CellSpec, cfgs []xeon.Config, cells []Cell, stats *workload.TPCCStats) {
	for i := range unit {
		env.putTally(unit[i], cfgs[i], cells[i], stats)
	}
}

// storedTraceRef is the index entry binding a cell's emission key to
// its content-addressed stream(s), plus the execution results replay
// cannot recompute. TPC-C refs carry a second digest (the warm slice)
// and the transaction statistics.
type storedTraceRef struct {
	Version    int                 `json:"v"`
	Digest     string              `json:"digest"`
	WarmDigest string              `json:"warmDigest,omitempty"`
	ValueBits  uint64              `json:"valueBits"`
	Rows       uint64              `json:"rows"`
	Stats      *workload.TPCCStats `json:"stats,omitempty"`
}

// putStoredTrace persists a cell capture: stream (and warm slice) as
// trace files, plus the ref entry. Write errors are swallowed — the
// store is a cache; the measurement that produced the capture stands.
func (env *Env) putStoredTrace(spec CellSpec, ct *cellTrace) {
	if env.store == nil {
		return
	}
	digest, err := env.store.PutTrace(ct.stream)
	if err != nil {
		return
	}
	ref := storedTraceRef{Version: traceRefVersion, Digest: digest,
		ValueBits: math.Float64bits(ct.result.Value), Rows: ct.result.Rows}
	if ct.warm != nil {
		wd, err := env.store.PutTrace(ct.warm)
		if err != nil {
			return
		}
		ref.WarmDigest = wd
	}
	if spec.Kind == CellTPCC {
		stats := ct.stats
		ref.Stats = &stats
	}
	blob, err := json.Marshal(ref)
	if err != nil {
		return
	}
	env.store.PutEntry(env.storeKey("trace", spec, nil), blob)
}

// loadStoredTrace fetches a persisted capture. Like lookupTally, every
// decode problem is a miss; a ref whose trace files went missing or
// corrupt releases whatever loaded and recomputes.
func (env *Env) loadStoredTrace(spec CellSpec) (*cellTrace, bool) {
	if env.store == nil {
		return nil, false
	}
	blob, ok := env.store.GetEntry(env.storeKey("trace", spec, nil))
	if !ok {
		return nil, false
	}
	var ref storedTraceRef
	if err := json.Unmarshal(blob, &ref); err != nil || ref.Version != traceRefVersion {
		return nil, false
	}
	stream, err := env.store.GetTrace(ref.Digest)
	if err != nil || stream == nil {
		return nil, false
	}
	if stream.Len() > env.Opts.maxRecorded() {
		// Stored under a larger recording cap than this run allows.
		stream.Release()
		return nil, false
	}
	ct := &cellTrace{stream: stream,
		result: engine.Result{Value: math.Float64frombits(ref.ValueBits), Rows: ref.Rows}}
	if ref.WarmDigest != "" {
		warm, err := env.store.GetTrace(ref.WarmDigest)
		if err != nil || warm == nil {
			stream.Release()
			return nil, false
		}
		ct.warm = warm
	}
	if spec.Kind == CellTPCC {
		if ref.Stats == nil || ct.warm == nil {
			ct.release()
			return nil, false
		}
		ct.stats = *ref.Stats
	}
	return ct, true
}

// cellStream returns the capture for spec from the worker's in-memory
// cache, or loads it from the persistent store. fromStore tells the
// caller to file the capture into the in-memory cache once done
// draining it — insertion can evict-and-release immediately when the
// capture exceeds the budget, so it must happen after the last use.
func (env *Env) cellStream(spec CellSpec) (ct *cellTrace, fromStore bool) {
	if ct, ok := env.traces.lookup(spec); ok {
		return ct, false
	}
	if ct, ok := env.loadStoredTrace(spec); ok {
		return ct, true
	}
	return nil, false
}

// Close tears an environment down: the retained captures of the trace
// cache are released back to the shared free lists (sub-environments
// alias the same cache, so one drop covers them), and when the env
// owns its store (built from Options.StoreDir rather than handed an
// open handle), the staged index entries are flushed to disk. The env
// stays usable afterwards — recording is simply off, every run
// re-executes — but callers should treat Close as the end of its
// life. Safe on an env without a store, and safe to call twice.
func (env *Env) Close() error {
	if env.traces != nil {
		env.traces.drop()
		env.traces = nil
		for _, sub := range env.subenvs {
			sub.traces = nil
		}
	}
	if env.store != nil && env.ownStore {
		return env.store.Flush()
	}
	return nil
}
