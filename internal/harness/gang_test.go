package harness

import (
	"os"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/xeon"
)

// The gang-drain equivalence suite. The multi-config gang drain may
// change how cells are scheduled and how many times a stream is
// emitted or read — never a single counter of a single cell. These
// tests pin that: the same specs measured gang-on and gang-off (and
// through the grid at different worker counts) must agree on every
// counter, stall component and hardware rate, and the full golden
// grid rendered with the gang disabled must stay byte-identical to
// the checked-in files.

// gangSweepConfigs returns platforms that stress different simulator
// structures: the paper's platform, a 2MB L2, a big BTB, and halved
// L1 caches.
func gangSweepConfigs() []xeon.Config {
	base := xeon.DefaultConfig()
	bigL2 := base
	bigL2.L2SizeKB = 2048
	bigBTB := base
	bigBTB.BTBEntries = 4096
	smallL1 := base
	smallL1.L1ISizeKB = 8
	smallL1.L1DSizeKB = 8
	return []xeon.Config{base, bigL2, bigBTB, smallL1}
}

// gangSweepSpecs builds a small grid over every cell kind at each
// platform: micro cells, a TPC-D suite and a TPC-C mix.
func gangSweepSpecs(opts Options) []CellSpec {
	var specs []CellSpec
	for _, cfg := range gangSweepConfigs() {
		o := opts
		o.Config = cfg
		specs = append(specs,
			microCell(o, engine.SystemD, SRS),
			microCell(o, engine.SystemB, SJ),
			CellSpec{Kind: CellTPCD, System: engine.SystemA, Config: cfg},
			CellSpec{Kind: CellTPCC, System: engine.SystemC, Txns: 40, Config: cfg},
		)
	}
	return specs
}

func compareCells(t *testing.T, spec CellSpec, got, want Cell) {
	t.Helper()
	if got.Breakdown.Counts != want.Breakdown.Counts {
		t.Errorf("%s: gang counts differ:\n got %+v\nwant %+v", spec, got.Breakdown.Counts, want.Breakdown.Counts)
	}
	if got.Breakdown.Cycles != want.Breakdown.Cycles {
		t.Errorf("%s: gang stall cycles differ:\n got %v\nwant %v", spec, got.Breakdown.Cycles, want.Breakdown.Cycles)
	}
	if got.Rates != want.Rates {
		t.Errorf("%s: gang hardware rates differ", spec)
	}
	if got.Result != want.Result {
		t.Errorf("%s: gang results differ: %+v vs %+v", spec, got.Result, want.Result)
	}
}

// TestGangMatchesSequential measures a multi-platform grid twice —
// ganged (one pass per emission key feeding all platforms) and
// sequential (each cell drained alone) — and asserts every counter of
// every platform's cell is identical.
func TestGangMatchesSequential(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	specs := gangSweepSpecs(opts)

	// The sweep must actually form multi-config gangs.
	units := gangUnits(opts, dedupeSpecs(specs))
	if len(units) >= len(specs) {
		t.Fatalf("sweep formed no gangs: %d units for %d specs", len(units), len(specs))
	}

	gang, err := Measure(opts, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := opts
	seq.Gang = false
	solo, err := Measure(seq, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		g, err := gang.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solo.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		compareCells(t, spec, g, s)
	}
}

// TestGangParallelMatchesSerial pins scheduling-independence of the
// ganged grid: gang work units fanned across workers produce the same
// cells as the serial pass.
func TestGangParallelMatchesSerial(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	specs := gangSweepSpecs(opts)
	serial, err := Measure(opts, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Measure(opts, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		s, err := serial.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := parallel.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		compareCells(t, spec, p, s)
	}
}

// TestGangDisabledMatchesGoldens renders the full experiment grid
// with the gang drain disabled and diffs it against the same goldens
// the ganged default renders: the gang-off debugging path may not
// change a single byte of any figure.
func TestGangDisabledMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	opts := goldenOptions()
	opts.Gang = false
	got := renderGolden(t, opts)
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("gang-disabled output differs from golden for %s", e.Name)
			}
		})
	}
}

// TestGangUsesOneExecution pins the gang's reason to exist: a
// multi-config unit whose stream overflows the recording cap still
// executes the workload once per run for the whole gang, not once per
// config — observed through the engine's execution counter.
func TestGangUsesOneExecution(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	opts.MaxRecordedEvents = -1 // force the re-execution fallback
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	configs := gangSweepConfigs()
	unit := make([]CellSpec, len(configs))
	for i, cfg := range configs {
		o := opts
		o.Config = cfg
		unit[i] = microCell(o, engine.SystemD, SRS)
	}
	cells, err := env.RunGang(unit)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(configs) {
		t.Fatalf("gang returned %d cells for %d configs", len(cells), len(configs))
	}
	// Warmup+measured = 2 runs; with recording off each run executes
	// the engine once for the WHOLE gang. K executions per run would
	// mean the gang degenerated to sequential draining.
	wantExecs := uint64(opts.Warmup + 1)
	if got := env.Engine(engine.SystemD).Executions(); got != wantExecs {
		t.Errorf("gang of %d configs executed the engine %d times, want %d",
			len(configs), got, wantExecs)
	}
	// Every config processed the identical stream: reference counts
	// (a pure function of the stream) must agree across the gang.
	for i := 1; i < len(cells); i++ {
		if cells[i].Breakdown.Counts.InstructionsRetired != cells[0].Breakdown.Counts.InstructionsRetired ||
			cells[i].Breakdown.Counts.Records != cells[0].Breakdown.Counts.Records {
			t.Errorf("config %d saw a different stream than config 0", i)
		}
	}
	// And the configs genuinely differ where they should.
	if cells[1].Breakdown.Counts.L2DataMisses >= cells[0].Breakdown.Counts.L2DataMisses {
		t.Errorf("2MB L2 should miss less than 512KB: %d vs %d",
			cells[1].Breakdown.Counts.L2DataMisses, cells[0].Breakdown.Counts.L2DataMisses)
	}
}
