package harness

import (
	"os"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/trace"
	"wheretime/internal/xeon"
)

// The record-once/replay-many contract, pinned from three sides:
// executing a cell twice emits byte-identical event streams (the
// stream is a pure function of the cell spec), a replayed measurement
// equals a re-executed one on every counter, and the full golden
// suite renders identically with recording force-disabled.

// replayTestOptions is a reduced-scale setup whose streams fit the
// recording cap with room to spare.
func replayTestOptions() Options {
	opts := DefaultOptions()
	opts.Scale = 0.002
	return opts
}

// captureRun executes one (system, query) run from reset engine state
// into a recorder backed by a scratch pipeline, returning the capture.
func captureRun(t *testing.T, env *Env, s engine.System, q QueryKind) *trace.Recording {
	t.Helper()
	query, ok := env.queryFor(s, q)
	if !ok {
		t.Fatalf("%s does not run %s", s, q)
	}
	e := env.Engine(s)
	plan, err := env.planFor(s, q, query)
	if err != nil {
		t.Fatal(err)
	}
	pipe := xeon.New(env.Opts.Config)
	rec := trace.NewRecorder(pipe, 0)
	e.ResetState()
	if _, err := e.Run(plan, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Overflowed() {
		t.Fatal("uncapped recorder overflowed")
	}
	return rec.Recording()
}

// TestRecordedStreamsDeterministic executes every valid microbenchmark
// cell twice and asserts the two recorded event streams are
// byte-identical — the invariant that makes replaying the first
// execution for later runs exact rather than approximate.
func TestRecordedStreamsDeterministic(t *testing.T) {
	env, err := NewEnv(replayTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []QueryKind{SRS, IRS, SJ} {
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			first := captureRun(t, env, s, q)
			second := captureRun(t, env, s, q)
			if first.Len() == 0 {
				t.Fatalf("%s/%s: empty stream", s, q)
			}
			if !first.Equal(second) {
				t.Errorf("%s/%s: two executions emitted different streams (%d vs %d events)",
					s, q, first.Len(), second.Len())
			}
			first.Release()
			second.Release()
		}
	}
}

// TestReplayMatchesReexecution measures every QueryKind and an OLTP
// mix slice twice — once with replay enabled, once with recording
// disabled (every run re-executes the engine) — and asserts the
// measured breakdowns match on every counter, stall component and
// hardware rate.
func TestReplayMatchesReexecution(t *testing.T) {
	replayOpts := replayTestOptions()
	reexecOpts := replayTestOptions()
	reexecOpts.MaxRecordedEvents = -1

	replayEnv, err := NewEnv(replayOpts)
	if err != nil {
		t.Fatal(err)
	}
	if replayEnv.traces == nil {
		t.Fatal("replay env built without a trace cache")
	}
	reexecEnv, err := NewEnv(reexecOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reexecEnv.traces != nil {
		t.Fatal("recording-disabled env still built a trace cache")
	}

	diffCells := func(name string, a, b Cell) {
		t.Helper()
		if a.Breakdown.Counts != b.Breakdown.Counts {
			t.Errorf("%s: replayed counts differ from re-executed:\n got %+v\nwant %+v",
				name, a.Breakdown.Counts, b.Breakdown.Counts)
		}
		if a.Breakdown.Cycles != b.Breakdown.Cycles {
			t.Errorf("%s: replayed stall cycles differ from re-executed:\n got %v\nwant %v",
				name, a.Breakdown.Cycles, b.Breakdown.Cycles)
		}
		if a.Rates != b.Rates {
			t.Errorf("%s: replayed hardware rates differ from re-executed", name)
		}
		if a.Result != b.Result {
			t.Errorf("%s: replayed result %+v != re-executed %+v", name, a.Result, b.Result)
		}
	}

	for _, q := range []QueryKind{SRS, IRS, SJ} {
		a, err := replayEnv.Run(engine.SystemD, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reexecEnv.Run(engine.SystemD, q)
		if err != nil {
			t.Fatal(err)
		}
		diffCells("D/"+q.String(), a, b)
	}

	const txns = 60
	a, aStats, err := replayEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	b, bStats, err := reexecEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	diffCells("C/TPC-C", a, b)
	if aStats != bStats {
		t.Errorf("TPC-C stats differ: %+v vs %+v", aStats, bStats)
	}
}

// TestTraceCacheReplaysRevisits pins the cross-cell cache: revisiting
// a cell replays the capture (no engine execution) and must reproduce
// the first measurement exactly. TPC-C is not memoised, so a second
// RunTPCC exercises the cache-hit path directly; for the micro path
// the memo is cleared to force the cell back through run.
func TestTraceCacheReplaysRevisits(t *testing.T) {
	env, err := NewEnv(replayTestOptions())
	if err != nil {
		t.Fatal(err)
	}

	const txns = 60
	first, firstStats, err := env.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := env.traces.lookup(CellSpec{Kind: CellTPCC, System: engine.SystemC, Txns: txns}); !ok {
		t.Fatal("TPC-C capture was not cached")
	}
	second, secondStats, err := env.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	if first.Breakdown.Counts != second.Breakdown.Counts ||
		first.Breakdown.Cycles != second.Breakdown.Cycles {
		t.Error("cached TPC-C replay diverged from the executed measurement")
	}
	if firstStats != secondStats {
		t.Errorf("cached TPC-C stats differ: %+v vs %+v", firstStats, secondStats)
	}

	cell, err := env.Run(engine.SystemB, IRS)
	if err != nil {
		t.Fatal(err)
	}
	spec := microCell(env.Opts, engine.SystemB, IRS)
	if _, ok := env.traces.lookup(spec); !ok {
		t.Fatal("micro capture was not cached")
	}
	env.memo = map[memoKey]Cell{} // force the next Run back through run()
	again, err := env.Run(engine.SystemB, IRS)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Breakdown.Counts != again.Breakdown.Counts ||
		cell.Breakdown.Cycles != again.Breakdown.Cycles ||
		cell.Result != again.Result {
		t.Error("cached micro replay diverged from the executed measurement")
	}
}

// TestRecordingCapFallsBack forces a tiny cap and checks the harness
// falls back to re-execution with identical output (the MaxRecordedEvents
// safety valve for streams too big to hold).
func TestRecordingCapFallsBack(t *testing.T) {
	tiny := replayTestOptions()
	tiny.MaxRecordedEvents = 1000 // far below any cell's stream
	tinyEnv, err := NewEnv(tiny)
	if err != nil {
		t.Fatal(err)
	}
	ref := replayTestOptions()
	ref.MaxRecordedEvents = -1
	refEnv, err := NewEnv(ref)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tinyEnv.Run(engine.SystemD, SRS)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tinyEnv.traces.lookup(microCell(tiny, engine.SystemD, SRS)); ok {
		t.Error("overflowed capture must not be cached")
	}
	b, err := refEnv.Run(engine.SystemD, SRS)
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown.Counts != b.Breakdown.Counts || a.Breakdown.Cycles != b.Breakdown.Cycles {
		t.Error("capped fallback measurement differs from recording-disabled measurement")
	}
}

// TestTraceCacheBudgetEvicts pins the cache's memory bound: retained
// arena bytes never exceed the budget, and eviction releases the
// oldest capture. Short streams stage raw in the recording's tail
// (EventBytes per event), which makes the byte accounting exact here.
func TestTraceCacheBudgetEvicts(t *testing.T) {
	const eb = trace.EventBytes
	tc := newTraceCache(100 * eb)
	mk := func(n int) *cellTrace {
		ct := &cellTrace{stream: &trace.Recording{}}
		evs := make([]trace.Event, n)
		rec := trace.NewRecorder(trace.Discard{}, 0)
		rec.ProcessBatch(evs)
		ct.stream = rec.Recording()
		return ct
	}
	k1 := CellSpec{Kind: CellMicro, System: engine.SystemA, Query: SRS}
	k2 := CellSpec{Kind: CellMicro, System: engine.SystemB, Query: SRS}
	k3 := CellSpec{Kind: CellMicro, System: engine.SystemC, Query: SRS}
	tc.store(k1, mk(60))
	tc.store(k2, mk(30))
	if tc.total != 90*eb {
		t.Fatalf("total %d, want %d", tc.total, 90*eb)
	}
	tc.store(k3, mk(50)) // must evict k1 (oldest)
	if _, ok := tc.lookup(k1); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := tc.lookup(k2); !ok {
		t.Error("newer entry evicted too eagerly")
	}
	if tc.total != 80*eb {
		t.Errorf("total %d after eviction, want %d", tc.total, 80*eb)
	}
	tc.store(k1, mk(200)) // bigger than the whole budget: dropped
	if _, ok := tc.lookup(k1); ok {
		t.Error("over-budget capture must not be cached")
	}

	// A chunk-crossing capture is accounted at its compressed size: a
	// budget far below its raw footprint still admits it.
	big := mk(3 * trace.RecordChunkEvents)
	wantBytes := big.bytes()
	if wantBytes*4 > 3*trace.RecordChunkEvents*eb {
		t.Fatalf("chunk-crossing capture barely compressed: %d bytes", wantBytes)
	}
	tc2 := newTraceCache(wantBytes)
	tc2.store(k1, big)
	if _, ok := tc2.lookup(k1); !ok {
		t.Fatal("compressed capture should fit a compressed-byte budget")
	}
	if tc2.total != wantBytes {
		t.Errorf("total %d, want the stored capture's %d bytes", tc2.total, wantBytes)
	}

	// Nil cache (recording disabled) is inert.
	var nilCache *traceCache
	if _, ok := nilCache.lookup(k2); ok {
		t.Error("nil cache hit")
	}
	nilCache.store(k2, mk(10)) // must not panic
}

// TestReplayDisabledMatchesGoldens renders the full experiment grid
// with recording force-disabled and diffs it against the same goldens
// the replay-enabled default produced: the replay-smoke equivalence,
// end to end on every figure.
func TestReplayDisabledMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	opts := goldenOptions()
	opts.MaxRecordedEvents = -1
	got := renderGolden(t, opts)
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("replay-disabled output differs from replay-enabled golden for %s", e.Name)
			}
		})
	}
}

// TestCompressionDisabledMatchesGoldens renders the full experiment
// grid with captures kept in the raw []Event arena layout and diffs
// it against the goldens the compressed default produced: the
// compress-smoke equivalence — the columnar codec must be invisible
// to every figure.
func TestCompressionDisabledMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	opts := goldenOptions()
	opts.UncompressedArena = true
	got := renderGolden(t, opts)
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("raw-arena output differs from compressed-arena golden for %s", e.Name)
			}
		})
	}
}
