package harness

import (
	"context"
	"errors"
	"sync"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/trace"
)

// ctxSpecs is a small mixed grid for the cancellation tests.
func ctxSpecs(opts Options) []CellSpec {
	return []CellSpec{
		microCell(opts, engine.SystemB, SRS),
		microCell(opts, engine.SystemD, SRS),
		microCell(opts, engine.SystemB, SJ),
		{Kind: CellTPCC, System: engine.SystemC, Txns: 40, Config: opts.Config},
	}
}

// TestMeasureContextUncancelledMatchesMeasure pins the contract the
// golden matrix rests on: a context that never fires changes nothing —
// cell for cell, MeasureContext(Background) equals Measure.
func TestMeasureContextUncancelledMatchesMeasure(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	specs := ctxSpecs(opts)

	plain, err := Measure(opts, specs, 1)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	ctxed, err := MeasureContext(context.Background(), opts, specs, 2)
	if err != nil {
		t.Fatalf("MeasureContext: %v", err)
	}
	for _, spec := range specs {
		a, err := plain.Get(spec)
		if err != nil {
			t.Fatalf("plain Get(%s): %v", spec, err)
		}
		b, err := ctxed.Get(spec)
		if err != nil {
			t.Fatalf("ctxed Get(%s): %v", spec, err)
		}
		if *a.Breakdown != *b.Breakdown || a.Result != b.Result || a.Rates != b.Rates {
			t.Errorf("cell %s differs under an idle context", spec)
		}
	}
}

// TestMeasureContextPreCancelled: a context cancelled before the call
// measures nothing and reports a PartialError with zero progress.
func TestMeasureContextPreCancelled(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, parallel := range []int{1, 2} {
		res, err := MeasureContext(ctx, opts, ctxSpecs(opts), parallel)
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("parallel=%d: err = %v, want *PartialError", parallel, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%d: err %v does not wrap context.Canceled", parallel, err)
		}
		if pe.Done != 0 {
			t.Errorf("parallel=%d: Done = %d, want 0", parallel, pe.Done)
		}
		if res == nil {
			t.Errorf("parallel=%d: partial results are nil", parallel)
		}
	}
}

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of checks — a deterministic way to land a cancellation at a
// specific between-units barrier on the serial path (which polls Err
// rather than selecting on Done).
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	fired bool
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return context.Canceled
	}
	c.left--
	if c.left <= 0 {
		c.fired = true
		return context.Canceled
	}
	return nil
}

// Done returns nil: the serial grid never selects on it, and a nil
// channel keeps the dispatch path identical to Background.
func (c *countdownCtx) Done() <-chan struct{} { return nil }

// TestMeasureContextMidRunCancel cancels partway through a serial
// grid: the result is a PartialError whose progress is strictly
// between zero and the total, the cells measured before the barrier
// are present in the partial results, and no trace buffers leak on
// the cancelled path.
func TestMeasureContextMidRunCancel(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	opts := DefaultOptions()
	opts.Scale = 0.002
	specs := ctxSpecs(opts)
	ctx := &countdownCtx{Context: context.Background(), left: 8}

	res, err := MeasureContext(ctx, opts, specs, 1)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if pe.Done <= 0 || pe.Done >= pe.Total {
		t.Errorf("Done = %d of %d, want strictly partial progress", pe.Done, pe.Total)
	}
	got := 0
	for _, spec := range specs {
		if _, ok := res.cells[spec]; ok {
			got++
		}
	}
	if got == 0 {
		t.Error("no finished cells in the partial results")
	}
	if c, e, b := trace.LiveBuffers(); c != c0 || e != e0 || b != b0 {
		t.Errorf("cancelled run leaked buffers: chunks %d->%d encBufs %d->%d blocks %d->%d",
			c0, c, e0, e, b0, b)
	}
}

// TestMeasureContextDeadline: an expired deadline surfaces as a typed
// timeout — errors.Is(err, context.DeadlineExceeded) — through the
// PartialError wrapper.
func TestMeasureContextDeadline(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()

	_, err := MeasureContext(ctx, opts, ctxSpecs(opts), 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
}
