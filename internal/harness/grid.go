package harness

import (
	"fmt"
	"runtime"

	"wheretime/internal/engine"
	"wheretime/internal/fanout"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

// This file is the concurrent experiment grid. Every figure and table
// of the paper decomposes into independent measurement cells — one
// (system, query, parameter point) simulation each — declared up front
// as CellSpecs, measured by a worker pool over isolated per-worker
// simulator stacks, and aggregated deterministically so the rendered
// tables are byte-identical regardless of completion order or worker
// count.

// CellKind selects the measurement protocol of a grid cell.
type CellKind int

const (
	// CellMicro is one microbenchmark query (Section 3.3) under the
	// warm-cache protocol of Section 4.3.
	CellMicro CellKind = iota
	// CellTPCD is the summed 17-query decision-support suite.
	CellTPCD
	// CellTPCC is the OLTP transaction mix of Section 5.5.
	CellTPCC
)

// CellSpec is one independent cell of the experiment grid, fully
// resolved (no defaults left implicit) so that equal specs from
// different figures deduplicate to a single simulation. It is a
// comparable value and doubles as the aggregation key.
type CellSpec struct {
	Kind   CellKind
	System engine.System
	// Query is the microbenchmark query (CellMicro only).
	Query QueryKind
	// Selectivity applies to CellMicro range selections.
	Selectivity float64
	// RecordSize is the R/S record width; cells off the base width are
	// measured in a sub-environment built at that width.
	RecordSize int
	// Txns is the transaction count (CellTPCC only).
	Txns int
}

// String names the cell for diagnostics.
func (c CellSpec) String() string {
	switch c.Kind {
	case CellTPCD:
		return fmt.Sprintf("%s/TPC-D", c.System)
	case CellTPCC:
		return fmt.Sprintf("%s/TPC-C(%d)", c.System, c.Txns)
	default:
		return fmt.Sprintf("%s/%s(sel=%g,rec=%dB)", c.System, c.Query, c.Selectivity, c.RecordSize)
	}
}

// microCell returns the base-environment spec for (s, q) under opts.
func microCell(opts Options, s engine.System, q QueryKind) CellSpec {
	return CellSpec{
		Kind:        CellMicro,
		System:      s,
		Query:       q,
		Selectivity: opts.Selectivity,
		RecordSize:  opts.RecordSize,
	}
}

// RunSpec measures one grid cell against this environment, building
// and caching a sub-environment when the cell's record size differs
// from the base. Not safe for concurrent use — the concurrent grid
// gives each worker a private Env via EnvFactory.
func (env *Env) RunSpec(spec CellSpec) (Cell, error) {
	switch spec.Kind {
	case CellTPCD:
		return env.RunTPCD(spec.System)
	case CellTPCC:
		cell, _, err := env.RunTPCC(spec.System, spec.Txns)
		return cell, err
	case CellMicro:
		target := env
		if spec.RecordSize != env.Opts.RecordSize {
			sub, err := env.subEnv(spec.RecordSize)
			if err != nil {
				return Cell{}, err
			}
			target = sub
		}
		if spec.Selectivity != target.Opts.Selectivity {
			// A shallow copy shares the databases, engines and memo map
			// (the memo key includes selectivity); only the query text
			// changes.
			shifted := *target
			shifted.Opts.Selectivity = spec.Selectivity
			target = &shifted
		}
		return target.Run(spec.System, spec.Query)
	default:
		return Cell{}, fmt.Errorf("harness: unknown cell kind %d", spec.Kind)
	}
}

// subEnv returns the cached environment rebuilt at the given record
// size, constructing it on first use. Sub-environments share the
// parent's trace cache (the cache key includes the record size), so
// the worker's recording budget is accounted once.
func (env *Env) subEnv(recordSize int) (*Env, error) {
	if sub, ok := env.subenvs[recordSize]; ok {
		return sub, nil
	}
	opts := env.Opts
	opts.RecordSize = recordSize
	sub, err := NewEnv(opts)
	if err != nil {
		return nil, err
	}
	sub.traces = env.traces
	env.subenvs[recordSize] = sub
	return sub, nil
}

// cellTrace is one cached capture: the recorded stream of a cell
// (one run of a micro query, one suite pass for TPC-D, the measured
// mix for TPC-C, whose warm-up slice rides along in warm) plus the
// execution results replay cannot recompute. A cellTrace is immutable
// once stored; replays only read it.
type cellTrace struct {
	stream *trace.Recording
	warm   *trace.Recording
	result engine.Result
	stats  workload.TPCCStats
}

// events returns the capture's total retained event count.
func (ct *cellTrace) events() int {
	n := ct.stream.Len()
	if ct.warm != nil {
		n += ct.warm.Len()
	}
	return n
}

// release returns the capture's chunks to the shared free list.
func (ct *cellTrace) release() {
	ct.stream.Release()
	if ct.warm != nil {
		ct.warm.Release()
	}
}

// traceCache is a worker's record-once/replay-many store: captured
// event streams keyed by the emission-relevant cell spec — system,
// query, workload parameters; deliberately not the platform Config,
// which never influences the emitted stream. A revisit of the same
// cell replays the capture instead of re-running the engine. Note
// where the hits actually come from: the grid scheduler deduplicates
// specs and the breakdown memo absorbs repeated Run calls, so inside
// one RunExperiments pass the cache mostly feeds the within-cell
// warm-up replays; the cross-cell wins are direct Env revisits that
// bypass the memo — repeated RunTPCC calls (which also skip the
// database rebuild) and memo-cleared reruns. Retained events are
// bounded by the worker's recording budget; insertion-order eviction
// releases the oldest captures back to the chunk free list. Like
// everything under an Env, a traceCache belongs to one worker
// goroutine.
type traceCache struct {
	budget int
	total  int
	order  []CellSpec
	cells  map[CellSpec]*cellTrace
}

func newTraceCache(budget int) *traceCache {
	return &traceCache{budget: budget, cells: make(map[CellSpec]*cellTrace)}
}

// lookup returns the capture for key, if cached. Nil-safe: a nil
// cache (recording disabled) never hits.
func (tc *traceCache) lookup(key CellSpec) (*cellTrace, bool) {
	if tc == nil {
		return nil, false
	}
	ct, ok := tc.cells[key]
	return ct, ok
}

// store retains a capture, evicting the oldest entries when the
// worker's event budget would overflow. A capture bigger than the
// whole budget is released immediately.
func (tc *traceCache) store(key CellSpec, ct *cellTrace) {
	if tc == nil {
		ct.release()
		return
	}
	if old, ok := tc.cells[key]; ok {
		// Replacing an entry (same cell re-captured): drop the old one.
		tc.total -= old.events()
		old.release()
		delete(tc.cells, key)
		for i, k := range tc.order {
			if k == key {
				tc.order = append(tc.order[:i], tc.order[i+1:]...)
				break
			}
		}
	}
	n := ct.events()
	if n > tc.budget {
		ct.release()
		return
	}
	for tc.total+n > tc.budget && len(tc.order) > 0 {
		oldest := tc.order[0]
		tc.order = tc.order[1:]
		if old, ok := tc.cells[oldest]; ok {
			tc.total -= old.events()
			old.release()
			delete(tc.cells, oldest)
		}
	}
	tc.cells[key] = ct
	tc.order = append(tc.order, key)
	tc.total += n
}

// EnvFactory lazily builds one isolated simulator stack — databases,
// engines, caches, pipelines — for a single worker. Nothing under a
// factory is shared with any other factory, so workers never contend:
// the xeon pipeline, storage pool, engine routine state and result
// memo are all private to the worker that built them.
type EnvFactory struct {
	opts Options
	base *Env
}

// NewEnvFactory returns a factory for stacks at the given options.
func NewEnvFactory(opts Options) *EnvFactory {
	return &EnvFactory{opts: opts}
}

// Env returns the factory's environment, building it on first use so
// workers that never receive a cell never pay for data generation.
func (f *EnvFactory) Env() (*Env, error) {
	if f.base == nil {
		env, err := NewEnv(f.opts)
		if err != nil {
			return nil, err
		}
		f.base = env
	}
	return f.base, nil
}

// RunSpec measures one cell on the factory's private stack.
func (f *EnvFactory) RunSpec(spec CellSpec) (Cell, error) {
	env, err := f.Env()
	if err != nil {
		return Cell{}, err
	}
	return env.RunSpec(spec)
}

// Results holds measured cells keyed by spec. Renders read from it in
// their own canonical order, so the tables they produce do not depend
// on the order cells were measured in.
type Results struct {
	cells map[CellSpec]Cell
	// env, when set, measures missing cells on demand: the serial path
	// and the env-backed compatibility wrappers use it.
	env *Env
}

// envResults wraps an environment as a lazily-measuring result set.
func envResults(env *Env) *Results {
	return &Results{cells: make(map[CellSpec]Cell), env: env}
}

// Get returns the measured cell for spec.
func (r *Results) Get(spec CellSpec) (Cell, error) {
	if c, ok := r.cells[spec]; ok {
		return c, nil
	}
	if r.env == nil {
		return Cell{}, fmt.Errorf("harness: cell %s was not measured", spec)
	}
	c, err := r.env.RunSpec(spec)
	if err != nil {
		return Cell{}, err
	}
	r.cells[spec] = c
	return c, nil
}

// DefaultParallelism is the worker count the CLIs default to.
func DefaultParallelism() int { return runtime.NumCPU() }

// dedupeSpecs drops duplicate cells, preserving first-seen order.
func dedupeSpecs(specs []CellSpec) []CellSpec {
	seen := make(map[CellSpec]bool, len(specs))
	out := specs[:0:0]
	for _, s := range specs {
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// Measure simulates every cell of the grid, fanning the cells out
// across parallel workers (parallel <= 1 preserves the serial path:
// one environment, cells in declaration order). Each worker owns an
// isolated simulator stack built by its private EnvFactory, and the
// aggregated Results are independent of scheduling: a cell's
// measurement is a pure function of (opts, spec), which
// TestParallelMatchesSerial pins down.
func Measure(opts Options, specs []CellSpec, parallel int) (*Results, error) {
	specs = dedupeSpecs(specs)
	res := &Results{cells: make(map[CellSpec]Cell, len(specs))}

	if parallel <= 1 {
		env, err := NewEnv(opts)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			c, err := env.RunSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("harness: cell %s: %w", spec, err)
			}
			res.cells[spec] = c
		}
		return res, nil
	}

	type outcome struct {
		cell Cell
		err  error
	}
	outcomes := make([]outcome, len(specs))
	fanout.Run(len(specs), parallel, func() func(int) bool {
		factory := NewEnvFactory(opts)
		return func(i int) bool {
			cell, err := factory.RunSpec(specs[i])
			outcomes[i] = outcome{cell: cell, err: err}
			return err == nil
		}
	})

	for i, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("harness: cell %s: %w", specs[i], o.err)
		}
		res.cells[specs[i]] = o.cell
	}
	return res, nil
}

// RunExperiments measures the union of the experiments' grids with the
// given parallelism and renders each experiment in the order given.
// The union is deduplicated before scheduling, so running "all"
// simulates each distinct cell exactly once no matter how many figures
// share it.
func RunExperiments(opts Options, exps []Experiment, parallel int) ([][]Table, error) {
	var specs []CellSpec
	for _, e := range exps {
		specs = append(specs, e.Cells(opts)...)
	}
	res, err := Measure(opts, specs, parallel)
	if err != nil {
		return nil, err
	}
	out := make([][]Table, len(exps))
	for i, e := range exps {
		tables, err := e.Render(opts, res)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.Name, err)
		}
		out[i] = tables
	}
	return out, nil
}
