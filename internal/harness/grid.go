package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"wheretime/internal/engine"
	"wheretime/internal/fanout"
	"wheretime/internal/trace"
	"wheretime/internal/tracestore"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// This file is the concurrent experiment grid. Every figure and table
// of the paper decomposes into independent measurement cells — one
// (system, query, parameter point) simulation each — declared up front
// as CellSpecs, measured by a worker pool over isolated per-worker
// simulator stacks, and aggregated deterministically so the rendered
// tables are byte-identical regardless of completion order or worker
// count.

// CellKind selects the measurement protocol of a grid cell.
type CellKind int

const (
	// CellMicro is one microbenchmark query (Section 3.3) under the
	// warm-cache protocol of Section 4.3.
	CellMicro CellKind = iota
	// CellTPCD is the summed 17-query decision-support suite.
	CellTPCD
	// CellTPCC is the OLTP transaction mix of Section 5.5.
	CellTPCC
)

// CellSpec is one independent cell of the experiment grid, fully
// resolved (no defaults left implicit) so that equal specs from
// different figures deduplicate to a single simulation. It is a
// comparable value and doubles as the aggregation key.
type CellSpec struct {
	Kind   CellKind
	System engine.System
	// Query is the microbenchmark query (CellMicro only).
	Query QueryKind
	// Selectivity applies to CellMicro range selections.
	Selectivity float64
	// RecordSize is the R/S record width; cells off the base width are
	// measured in a sub-environment built at that width.
	RecordSize int
	// Txns is the transaction count (CellTPCC only).
	Txns int
	// Config is the simulated platform the cell is measured on. The
	// zero value means the run options' platform. Config never
	// influences the emitted event stream — only how the stream is
	// costed — so cells differing only here share one recording and
	// gang into a single multi-config drain (see Measure).
	Config xeon.Config
}

// emissionKey strips the platform configuration from a spec, leaving
// exactly the fields that determine the emitted event stream: the key
// the trace cache stores captures under, and the key the gang
// scheduler groups by.
func emissionKey(spec CellSpec) CellSpec {
	spec.Config = xeon.Config{}
	return spec
}

// configFor resolves a spec's platform: its explicit Config, or the
// environment's when the spec leaves it zero.
func (env *Env) configFor(spec CellSpec) xeon.Config {
	if spec.Config == (xeon.Config{}) {
		return env.Opts.Config
	}
	return spec.Config
}

// String names the cell for diagnostics, including the platform when
// the spec pins one (sweeps measure otherwise-identical cells on
// several platforms, and an error must say which).
func (c CellSpec) String() string {
	var name string
	switch c.Kind {
	case CellTPCD:
		name = fmt.Sprintf("%s/TPC-D", c.System)
	case CellTPCC:
		name = fmt.Sprintf("%s/TPC-C(%d)", c.System, c.Txns)
	default:
		name = fmt.Sprintf("%s/%s(sel=%g,rec=%dB)", c.System, c.Query, c.Selectivity, c.RecordSize)
	}
	if c.Config != (xeon.Config{}) {
		name += fmt.Sprintf("@[L1=%d/%dKB L2=%dKB BTB=%d]",
			c.Config.L1ISizeKB, c.Config.L1DSizeKB, c.Config.L2SizeKB, c.Config.BTBEntries)
	}
	return name
}

// microCell returns the base-environment spec for (s, q) under opts.
func microCell(opts Options, s engine.System, q QueryKind) CellSpec {
	return CellSpec{
		Kind:        CellMicro,
		System:      s,
		Query:       q,
		Selectivity: opts.Selectivity,
		RecordSize:  opts.RecordSize,
		Config:      opts.Config,
	}
}

// RunSpec measures one grid cell against this environment, building
// and caching a sub-environment when the cell's record size differs
// from the base. Not safe for concurrent use — the concurrent grid
// gives each worker a private Env via EnvFactory.
func (env *Env) RunSpec(spec CellSpec) (Cell, error) {
	cfg := env.configFor(spec)
	switch spec.Kind {
	case CellTPCD:
		return env.runTPCDMemo(spec.System, cfg)
	case CellTPCC:
		cell, _, err := env.runTPCCCfg(spec.System, spec.Txns, cfg)
		return cell, err
	case CellMicro:
		target, err := env.microTarget(spec)
		if err != nil {
			return Cell{}, err
		}
		return target.runMemo(spec.System, spec.Query, cfg)
	default:
		return Cell{}, fmt.Errorf("harness: unknown cell kind %d", spec.Kind)
	}
}

// microTarget routes a micro cell to the environment it measures in:
// the base env, the cached sub-environment at the cell's record size,
// and/or a shallow selectivity shift.
func (env *Env) microTarget(spec CellSpec) (*Env, error) {
	target := env
	if spec.RecordSize != env.Opts.RecordSize {
		sub, err := env.subEnv(spec.RecordSize)
		if err != nil {
			return nil, err
		}
		target = sub
	}
	if spec.Selectivity != target.Opts.Selectivity {
		// A shallow copy shares the databases, engines and memo map
		// (the memo key includes selectivity); only the query text
		// changes.
		shifted := *target
		shifted.Opts.Selectivity = spec.Selectivity
		target = &shifted
	}
	return target, nil
}

// RunGang measures one gang: cells that share an emission-relevant
// key (same system, query and workload parameters) and differ only in
// platform configuration. The whole gang is one work unit on one
// multi-config drain — the engine executes (or the recording is read)
// once for all K configurations. Each cell's counters are
// bit-identical to measuring it alone; the golden suite runs the grid
// both gang-on and gang-off against the same files.
func (env *Env) RunGang(unit []CellSpec) ([]Cell, error) {
	cfgs := make([]xeon.Config, len(unit))
	for i := range unit {
		cfgs[i] = env.configFor(unit[i])
	}
	spec := unit[0]
	switch spec.Kind {
	case CellTPCD:
		return env.runGangTPCD(unit, cfgs)
	case CellTPCC:
		return env.runGangTPCC(unit, cfgs)
	case CellMicro:
		target, err := env.microTarget(spec)
		if err != nil {
			return nil, err
		}
		return target.runGangMicro(unit, cfgs)
	default:
		return nil, fmt.Errorf("harness: unknown cell kind %d", spec.Kind)
	}
}

// subEnv returns the cached environment rebuilt at the given record
// size, constructing it on first use. Sub-environments share the
// parent's trace cache (the cache key includes the record size), so
// the worker's recording budget is accounted once.
func (env *Env) subEnv(recordSize int) (*Env, error) {
	if sub, ok := env.subenvs[recordSize]; ok {
		return sub, nil
	}
	opts := env.Opts
	opts.RecordSize = recordSize
	// The sub-environment shares the parent's warm-start machinery
	// rather than opening its own: clear the store options before
	// building, then alias the parent's cache, memo and store handle
	// (the keys all include the record size, so sharing is safe).
	opts.StoreDir = ""
	opts.Store = nil
	sub, err := NewEnv(opts)
	if err != nil {
		return nil, err
	}
	sub.traces = env.traces
	sub.snaps = env.snaps
	sub.store = env.store
	env.subenvs[recordSize] = sub
	return sub, nil
}

// cellTrace is one cached capture: the recorded stream of a cell
// (one run of a micro query, one suite pass for TPC-D, the measured
// mix for TPC-C, whose warm-up slice rides along in warm) plus the
// execution results replay cannot recompute. A cellTrace is immutable
// once stored; replays only read it.
type cellTrace struct {
	stream *trace.Recording
	warm   *trace.Recording
	result engine.Result
	stats  workload.TPCCStats
}

// bytes returns the capture's retained arena footprint — compressed
// bytes, the quantity the worker's cache budget is denominated in
// (raw bytes under Options.UncompressedArena).
func (ct *cellTrace) bytes() int {
	n := ct.stream.Bytes()
	if ct.warm != nil {
		n += ct.warm.Bytes()
	}
	return n
}

// release returns the capture's chunks to the shared free list.
func (ct *cellTrace) release() {
	ct.stream.Release()
	if ct.warm != nil {
		ct.warm.Release()
	}
}

// traceCache is a worker's record-once/replay-many store: captured
// event streams keyed by the emission-relevant cell spec — system,
// query, workload parameters; deliberately not the platform Config,
// which never influences the emitted stream. A revisit of the same
// cell replays the capture instead of re-running the engine. Note
// where the hits actually come from: the grid scheduler deduplicates
// specs and the breakdown memo absorbs repeated Run calls, so inside
// one RunExperiments pass the cache mostly feeds the within-cell
// warm-up replays; the cross-cell wins are direct Env revisits that
// bypass the memo — repeated RunTPCC calls (which also skip the
// database rebuild) and memo-cleared reruns. The retained footprint
// is budgeted in arena bytes — compressed bytes since the columnar
// codec, so one budget holds ~8x the events it held raw — and
// insertion-order eviction releases the oldest captures back to the
// free lists. Like everything under an Env, a traceCache belongs to
// one worker goroutine.
type traceCache struct {
	budget int // retained-arena budget, bytes
	total  int // retained arena across entries, bytes
	order  []CellSpec
	cells  map[CellSpec]*cellTrace
}

func newTraceCache(budget int) *traceCache {
	return &traceCache{budget: budget, cells: make(map[CellSpec]*cellTrace)}
}

// lookup returns the capture for key, if cached. Keys normalise
// through emissionKey, so a config-bearing spec finds the capture its
// stream shares with every other platform. Nil-safe: a nil cache
// (recording disabled) never hits.
func (tc *traceCache) lookup(key CellSpec) (*cellTrace, bool) {
	if tc == nil {
		return nil, false
	}
	ct, ok := tc.cells[emissionKey(key)]
	return ct, ok
}

// store retains a capture, evicting the oldest entries when the
// worker's byte budget would overflow. A capture bigger than the
// whole budget is released immediately. Keys normalise through
// emissionKey like lookup's.
func (tc *traceCache) store(key CellSpec, ct *cellTrace) {
	if tc == nil {
		ct.release()
		return
	}
	key = emissionKey(key)
	if old, ok := tc.cells[key]; ok {
		// Replacing an entry (same cell re-captured): drop the old one.
		tc.total -= old.bytes()
		old.release()
		delete(tc.cells, key)
		for i, k := range tc.order {
			if k == key {
				tc.order = append(tc.order[:i], tc.order[i+1:]...)
				break
			}
		}
	}
	n := ct.bytes()
	if n > tc.budget {
		ct.release()
		return
	}
	for tc.total+n > tc.budget && len(tc.order) > 0 {
		oldest := tc.order[0]
		tc.order = tc.order[1:]
		if old, ok := tc.cells[oldest]; ok {
			tc.total -= old.bytes()
			old.release()
			delete(tc.cells, oldest)
		}
	}
	tc.cells[key] = ct
	tc.order = append(tc.order, key)
	tc.total += n
}

// drop releases every retained capture back to the shared free lists
// and empties the cache. Called from Env.Close: a finished grid must
// hand its arenas back so a long-running process (the wheretimed
// service) does not accrete one cache of captures per request.
func (tc *traceCache) drop() {
	if tc == nil {
		return
	}
	for _, ct := range tc.cells {
		ct.release()
	}
	tc.cells = make(map[CellSpec]*cellTrace)
	tc.order = nil
	tc.total = 0
}

// EnvFactory lazily builds one isolated simulator stack — databases,
// engines, caches, pipelines — for a single worker. Nothing under a
// factory is shared with any other factory, so workers never contend:
// the xeon pipeline, storage pool, engine routine state and result
// memo are all private to the worker that built them.
type EnvFactory struct {
	opts Options
	base *Env
}

// NewEnvFactory returns a factory for stacks at the given options.
func NewEnvFactory(opts Options) *EnvFactory {
	return &EnvFactory{opts: opts}
}

// Env returns the factory's environment, building it on first use so
// workers that never receive a cell never pay for data generation.
func (f *EnvFactory) Env() (*Env, error) {
	if f.base == nil {
		env, err := NewEnv(f.opts)
		if err != nil {
			return nil, err
		}
		f.base = env
	}
	return f.base, nil
}

// RunSpec measures one cell on the factory's private stack.
func (f *EnvFactory) RunSpec(spec CellSpec) (Cell, error) {
	env, err := f.Env()
	if err != nil {
		return Cell{}, err
	}
	return env.RunSpec(spec)
}

// Results holds measured cells keyed by spec. Renders read from it in
// their own canonical order, so the tables they produce do not depend
// on the order cells were measured in.
type Results struct {
	cells map[CellSpec]Cell
	// env, when set, measures missing cells on demand: the serial path
	// and the env-backed compatibility wrappers use it.
	env *Env
}

// envResults wraps an environment as a lazily-measuring result set.
func envResults(env *Env) *Results {
	return &Results{cells: make(map[CellSpec]Cell), env: env}
}

// Get returns the measured cell for spec.
func (r *Results) Get(spec CellSpec) (Cell, error) {
	if c, ok := r.cells[spec]; ok {
		return c, nil
	}
	if r.env == nil {
		return Cell{}, fmt.Errorf("harness: cell %s was not measured", spec)
	}
	c, err := r.env.RunSpec(spec)
	if err != nil {
		return Cell{}, err
	}
	r.cells[spec] = c
	return c, nil
}

// DefaultParallelism is the worker count the CLIs default to.
func DefaultParallelism() int { return runtime.NumCPU() }

// dedupeSpecs drops duplicate cells, preserving first-seen order.
func dedupeSpecs(specs []CellSpec) []CellSpec {
	seen := make(map[CellSpec]bool, len(specs))
	out := specs[:0:0]
	for _, s := range specs {
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// gangUnits partitions deduplicated specs into scheduler work units.
// With the gang drain enabled, cells sharing an emission-relevant key
// — the same key the trace cache uses, everything but the platform
// Config — form one multi-config unit; order is first-seen, so the
// serial path remains deterministic. With it disabled (or on the
// unbatched reference path, which measures one event at a time), every
// cell is its own unit.
func gangUnits(opts Options, specs []CellSpec) [][]CellSpec {
	if !opts.Gang || opts.Unbatched {
		units := make([][]CellSpec, len(specs))
		for i, s := range specs {
			units[i] = []CellSpec{s}
		}
		return units
	}
	var order []CellSpec
	groups := make(map[CellSpec][]CellSpec, len(specs))
	for _, s := range specs {
		k := emissionKey(s)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	units := make([][]CellSpec, len(order))
	for i, k := range order {
		units[i] = groups[k]
	}
	return units
}

// measureUnit runs one work unit on an environment: the gang drain
// when enabled, the per-cell path otherwise.
func measureUnit(env *Env, unit []CellSpec, gang bool) ([]Cell, error) {
	if gang {
		cells, err := env.RunGang(unit)
		if err != nil {
			return nil, fmt.Errorf("gang of %d x %s: %w", len(unit), unit[0], err)
		}
		return cells, nil
	}
	cells := make([]Cell, len(unit))
	for i, spec := range unit {
		c, err := env.RunSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("cell %s: %w", spec, err)
		}
		cells[i] = c
	}
	return cells, nil
}

// PartialError reports a measurement cut short by context
// cancellation: Done of Total scheduler work units finished before the
// barrier fired. It wraps the context's error, so callers distinguish
// a deadline (errors.Is(err, context.DeadlineExceeded)) from an
// explicit cancel (context.Canceled). MeasureContext returns it
// together with the partial Results, which hold every cell the
// finished units measured.
type PartialError struct {
	// Done counts the work units whose cells were fully measured.
	Done int
	// Total is the number of work units the grid scheduled.
	Total int
	// Err is the context's error: Canceled or DeadlineExceeded.
	Err error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("harness: measurement cancelled after %d/%d units: %v", e.Done, e.Total, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// Measure simulates every cell of the grid, fanning the scheduler's
// work units out across parallel workers (parallel <= 1 preserves the
// serial path: one environment, units in declaration order). Cells
// that differ only in platform configuration gang into single units
// measured in one pass over their shared event stream (see RunGang);
// everything else is one cell per unit. Each worker owns an isolated
// simulator stack built by its private EnvFactory, and the aggregated
// Results are independent of scheduling: a cell's measurement is a
// pure function of (opts, spec), which TestParallelMatchesSerial and
// the gang equivalence suite pin down.
func Measure(opts Options, specs []CellSpec, parallel int) (*Results, error) {
	return MeasureContext(context.Background(), opts, specs, parallel)
}

// MeasureContext is Measure under a context: the grid checks for
// cancellation between work units (and, inside a cell, between
// re-execution runs) and stops at the first barrier after ctx is
// cancelled or its deadline passes, returning the partial Results
// measured so far together with a *PartialError wrapping ctx.Err().
// Cancellation never interrupts a cell mid-drain, so no recording is
// abandoned half-captured and no trace buffer leaks; a run that is
// never cancelled is byte-identical to Measure, which the golden
// matrix pins. A store opened from Options.StoreDir is flushed even on
// the cancelled path — the cells already measured warm the next run.
func MeasureContext(ctx context.Context, opts Options, specs []CellSpec, parallel int) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Context = ctx
	specs = dedupeSpecs(specs)
	gang := opts.Gang && !opts.Unbatched
	units := gangUnits(opts, specs)
	res := &Results{cells: make(map[CellSpec]Cell, len(specs))}

	// A StoreDir opens one persistent store for the whole run, shared
	// across every worker (the Store is mutex-guarded) and flushed at
	// the end. A run that was handed an open Store leaves flushing to
	// its owner.
	var flushStore *tracestore.Store
	if opts.Store == nil && opts.StoreDir != "" && opts.maxRecorded() >= 0 {
		store, err := tracestore.Open(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		opts.Store = store
		opts.StoreDir = ""
		flushStore = store
	}
	// finish flushes the run's store additions; on the cancelled path
	// the flush error (if any) rides along with the partial error.
	finish := func(retErr error) error {
		if flushStore == nil {
			return retErr
		}
		if err := flushStore.Flush(); err != nil {
			return errors.Join(retErr, err)
		}
		return retErr
	}

	if parallel <= 1 {
		env, err := NewEnv(opts)
		if err != nil {
			return nil, err
		}
		defer env.Close()
		for done, unit := range units {
			if cerr := ctx.Err(); cerr != nil {
				return res, finish(&PartialError{Done: done, Total: len(units), Err: cerr})
			}
			cells, err := measureUnit(env, unit, gang)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					// The unit stopped at an in-cell cancellation
					// barrier, not on a simulation failure.
					return res, finish(&PartialError{Done: done, Total: len(units), Err: cerr})
				}
				return nil, fmt.Errorf("harness: %w", err)
			}
			for i, spec := range unit {
				res.cells[spec] = cells[i]
			}
		}
		return res, finish(nil)
	}

	type outcome struct {
		cells []Cell
		err   error
	}
	outcomes := make([]outcome, len(units))
	// Worker environments are tracked so their retained captures are
	// released once the grid is done — a long-running caller (the
	// wheretimed service) measures many grids per process and must not
	// accrete trace arenas.
	var envMu sync.Mutex
	var envs []*Env
	fanout.RunContext(ctx, len(units), parallel, func() func(int) bool {
		factory := NewEnvFactory(opts)
		registered := false
		return func(i int) bool {
			env, err := factory.Env()
			if err == nil {
				if !registered {
					envMu.Lock()
					envs = append(envs, env)
					envMu.Unlock()
					registered = true
				}
				var cells []Cell
				cells, err = measureUnit(env, units[i], gang)
				outcomes[i] = outcome{cells: cells, err: err}
			} else {
				outcomes[i] = outcome{err: err}
			}
			return err == nil
		}
	})
	for _, env := range envs {
		env.Close()
	}

	done := 0
	var firstErr error
	for i, o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if o.cells == nil {
			continue // undispatched: the context fired first
		}
		for j, spec := range units[i] {
			res.cells[spec] = o.cells[j]
		}
		done++
	}
	if cerr := ctx.Err(); cerr != nil {
		return res, finish(&PartialError{Done: done, Total: len(units), Err: cerr})
	}
	if firstErr != nil {
		return nil, fmt.Errorf("harness: %w", firstErr)
	}
	return res, finish(nil)
}

// MeasureGang measures cells that share one emission key — platform
// variants of a single workload — as a single gang work unit: the
// engine executes (or the recording replays) once for every
// configuration in the set (see RunGang). It is the entry the
// wheretimed batcher dispatches an accumulated request window
// through. Specs are deduplicated, and every spec must share the
// first's emission key (equal GangKeys); a mixed set is refused
// rather than split, because silently batching incompatible cells is
// exactly the failure mode the gang key exists to prevent. Each
// cell's result is bit-identical to measuring it alone, which
// TestMeasureGangMatchesMeasure pins against the gang-off path.
func MeasureGang(opts Options, specs []CellSpec) (*Results, error) {
	return MeasureGangContext(context.Background(), opts, specs)
}

// MeasureGangContext is MeasureGang under a context, with the same
// cancellation contract as MeasureContext: the gang stops at the
// first barrier after cancellation and the *PartialError wraps
// ctx.Err().
func MeasureGangContext(ctx context.Context, opts Options, specs []CellSpec) (*Results, error) {
	if opts.Unbatched {
		return nil, errors.New("harness: MeasureGang requires the batched pipeline (Options.Unbatched is set)")
	}
	specs = dedupeSpecs(specs)
	if len(specs) == 0 {
		return &Results{cells: make(map[CellSpec]Cell)}, nil
	}
	key := emissionKey(specs[0])
	for _, s := range specs[1:] {
		if emissionKey(s) != key {
			return nil, fmt.Errorf("harness: MeasureGang: %s does not share an emission key with %s", s, specs[0])
		}
	}
	opts.Gang = true
	return MeasureContext(ctx, opts, specs, 1)
}

// RunExperiments measures the union of the experiments' grids with the
// given parallelism and renders each experiment in the order given.
// The union is deduplicated before scheduling, so running "all"
// simulates each distinct cell exactly once no matter how many figures
// share it.
func RunExperiments(opts Options, exps []Experiment, parallel int) ([][]Table, error) {
	return RunExperimentsContext(context.Background(), opts, exps, parallel)
}

// RunExperimentsContext is RunExperiments under a context: the grid
// stops at the first between-cells barrier after cancellation and the
// error (a *PartialError) reports how far it got. Nothing renders on
// the cancelled path — a figure over half a grid would be misleading —
// but a store configured via Options.StoreDir keeps the finished
// cells, so the interrupted run still warms the next one.
func RunExperimentsContext(ctx context.Context, opts Options, exps []Experiment, parallel int) ([][]Table, error) {
	var specs []CellSpec
	for _, e := range exps {
		specs = append(specs, e.Cells(opts)...)
	}
	res, err := MeasureContext(ctx, opts, specs, parallel)
	if err != nil {
		return nil, err
	}
	out := make([][]Table, len(exps))
	for i, e := range exps {
		tables, err := e.Render(opts, res)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.Name, err)
		}
		out[i] = tables
	}
	return out, nil
}
