package harness

import (
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/engine"
)

// ablation runs System D SRS under a mutated platform configuration at
// a small scale.
func ablation(t *testing.T, mutate func(*Options)) Cell {
	t.Helper()
	opts := DefaultOptions()
	opts.Scale = 0.005
	mutate(&opts)
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := env.Run(engine.SystemD, SRS)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

func TestAblationBiggerBTBReducesMisses(t *testing.T) {
	small := ablation(t, func(o *Options) {})
	big := ablation(t, func(o *Options) { o.Config.BTBEntries = 16384 })
	if big.Breakdown.BTBMissRate() >= small.Breakdown.BTBMissRate() {
		t.Errorf("16K BTB miss rate %v should be below 512-entry %v",
			big.Breakdown.BTBMissRate(), small.Breakdown.BTBMissRate())
	}
	if big.Breakdown.BranchMispredictionRate() > small.Breakdown.BranchMispredictionRate() {
		t.Errorf("bigger BTB should not mispredict more: %v vs %v",
			big.Breakdown.BranchMispredictionRate(), small.Breakdown.BranchMispredictionRate())
	}
}

func TestAblationBiggerL2ReducesDataStalls(t *testing.T) {
	small := ablation(t, func(o *Options) {})
	big := ablation(t, func(o *Options) { o.Config.L2SizeKB = 2048 })
	if big.Breakdown.Cycles[core.TL2D] >= small.Breakdown.Cycles[core.TL2D] {
		t.Errorf("2MB L2 TL2D %v should be below 512KB %v",
			big.Breakdown.Cycles[core.TL2D], small.Breakdown.Cycles[core.TL2D])
	}
}

func TestAblationInterruptsRaiseL1IMisses(t *testing.T) {
	quiet := ablation(t, func(o *Options) { o.Config.InterruptCycles = 0 })
	noisy := ablation(t, func(o *Options) { o.Config.InterruptCycles = 200_000 })
	qm := float64(quiet.Breakdown.Counts.L1IMisses) / float64(quiet.Breakdown.Counts.Records)
	nm := float64(noisy.Breakdown.Counts.L1IMisses) / float64(noisy.Breakdown.Counts.Records)
	if nm <= qm {
		t.Errorf("interrupt pollution should raise L1I misses/record: %v vs %v", nm, qm)
	}
}

func TestAblationPAXCutsL2DataTraffic(t *testing.T) {
	// System B (PAX) vs System C (NSM) on the same query: B's scan
	// touches ~1/8 of the data lines.
	opts := DefaultOptions()
	opts.Scale = 0.005
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Run(engine.SystemB, SRS)
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Run(engine.SystemC, SRS)
	if err != nil {
		t.Fatal(err)
	}
	recs := float64(b.Breakdown.Counts.Records)
	bl2 := float64(b.Breakdown.Counts.L2DataMisses) / recs
	cl2 := float64(c.Breakdown.Counts.L2DataMisses) / float64(c.Breakdown.Counts.Records)
	if bl2*2 >= cl2 {
		t.Errorf("PAX scan should miss L2 far less: B %v vs C %v misses/record", bl2, cl2)
	}
}

func TestSlowerMemoryRaisesMemoryShare(t *testing.T) {
	fast := ablation(t, func(o *Options) { o.Config.MemoryLatency = 30 })
	slow := ablation(t, func(o *Options) { o.Config.MemoryLatency = 130 })
	if slow.Breakdown.GroupPercent(core.GroupMemory) <= fast.Breakdown.GroupPercent(core.GroupMemory) {
		t.Error("doubling memory latency should raise the memory stall share")
	}
}
