package harness

// Tests for the exported gang entry point (MeasureGang) and the
// batching-key contract (GangKey): the wheretimed batcher groups
// requests by GangKey and hands each group to MeasureGang, so this
// file pins the two halves of that hand-off — equal gang keys mean
// MeasureGang accepts the group and returns cells identical to solo
// measurement, and unequal emission keys are rejected rather than
// silently cross-batched.

import (
	"math"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/xeon"
)

// TestMeasureGangMatchesMeasure: a gang of platform variants measured
// through the exported entry point is cell-for-cell identical to the
// same specs measured solo with the gang drain off.
func TestMeasureGangMatchesMeasure(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	configs := gangSweepConfigs()
	unit := make([]CellSpec, len(configs))
	for i, cfg := range configs {
		o := opts
		o.Config = cfg
		unit[i] = microCell(o, engine.SystemD, SRS)
	}

	gang, err := MeasureGang(opts, unit)
	if err != nil {
		t.Fatal(err)
	}
	seq := opts
	seq.Gang = false
	solo, err := Measure(seq, unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range unit {
		g, err := gang.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solo.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		compareCells(t, spec, g, s)
	}
}

// TestMeasureGangValidation: mismatched emission keys are rejected,
// the unbatched pipeline is rejected, duplicates dedupe, and an empty
// gang is a no-op.
func TestMeasureGangValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	a := microCell(opts, engine.SystemD, SRS)
	b := microCell(opts, engine.SystemD, SJ) // different workload
	if _, err := MeasureGang(opts, []CellSpec{a, b}); err == nil {
		t.Error("MeasureGang accepted specs with different emission keys")
	}

	bad := opts
	bad.Unbatched = true
	if _, err := MeasureGang(bad, []CellSpec{a}); err == nil {
		t.Error("MeasureGang accepted the unbatched pipeline")
	}

	res, err := MeasureGang(opts, nil)
	if err != nil {
		t.Fatalf("empty gang: %v", err)
	}
	if res == nil {
		t.Error("empty gang returned nil results")
	}
	if _, err := res.Get(a); err == nil {
		t.Error("empty gang claims to hold a cell")
	}

	dup := a
	dup.Config = opts.Config // identical spec, listed twice
	res, err = MeasureGang(opts, []CellSpec{a, dup, a})
	if err != nil {
		t.Fatalf("duplicated gang: %v", err)
	}
	if _, err := res.Get(a); err != nil {
		t.Errorf("duplicated gang lost its cell: %v", err)
	}
}

// FuzzGangKeyCompat pins the batching-key contract from random spec
// pairs: two specs share a gang key exactly when they share an
// emission key (under one option set). The forward direction is the
// soundness the wheretimed batcher relies on — it groups requests by
// GangKey and MeasureGang re-validates on emission keys, so a gang
// key collision across workloads would turn bursts into 500s (or,
// worse, silently cross-batch streams). The reverse direction is
// completeness: compatible platform variants must never miss the
// batch over key trivia.
func FuzzGangKeyCompat(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0), 0.10, 100, 0, uint16(512), uint16(512),
		uint8(0), uint8(1), uint8(0), 0.10, 100, 0, uint16(2048), uint16(512), uint8(1))
	f.Add(uint8(0), uint8(3), uint8(2), 0.05, 48, 0, uint16(512), uint16(512),
		uint8(0), uint8(3), uint8(3), 0.05, 48, 0, uint16(512), uint16(512), uint8(2))
	f.Add(uint8(1), uint8(0), uint8(0), 0.0, 0, 0, uint16(1024), uint16(4096),
		uint8(2), uint8(2), uint8(0), 0.0, 0, 40, uint16(1024), uint16(4096), uint8(0))
	// Regression shape: two TPC-D specs differing only in fields
	// CellSpec.String drops — the collision the injective keyMaterial
	// fixed.
	f.Add(uint8(1), uint8(1), uint8(1), 1.26, 100, 0, uint16(512), uint16(512),
		uint8(1), uint8(1), uint8(2), 0.259, 36, 81, uint16(512), uint16(512), uint8(1))
	f.Fuzz(func(t *testing.T,
		kindA, sysA, qA uint8, selA float64, recA, txnsA int, l2A, btbA uint16,
		kindB, sysB, qB uint8, selB float64, recB, txnsB int, l2B, btbB uint16,
		warmup uint8) {
		// The request decoder never admits a NaN selectivity, and NaN
		// breaks the struct-equality half of the property by design
		// (NaN != NaN); negative zero folds to zero the same way the
		// decoder's range check (> 0) forbids it.
		if math.IsNaN(selA) || math.IsNaN(selB) {
			t.Skip()
		}
		if selA == 0 {
			selA = 0
		}
		if selB == 0 {
			selB = 0
		}
		mk := func(kind, sys, q uint8, sel float64, rec, txns int, l2, btb uint16) CellSpec {
			systems := []engine.System{engine.SystemA, engine.SystemB, engine.SystemC, engine.SystemD}
			cfg := xeon.DefaultConfig()
			cfg.L2SizeKB = int(l2)
			cfg.BTBEntries = int(btb)
			return CellSpec{
				Kind:        CellKind(kind % 3),
				System:      systems[sys%4],
				Query:       QueryKind(q % 8),
				Selectivity: sel,
				RecordSize:  rec,
				Txns:        txns,
				Config:      cfg,
			}
		}
		a := mk(kindA, sysA, qA, selA, recA, txnsA, l2A, btbA)
		b := mk(kindB, sysB, qB, selB, recB, txnsB, l2B, btbB)
		opts := DefaultOptions()
		opts.Warmup = int(warmup % 4)

		sameGang := GangKey(opts, a) == GangKey(opts, b)
		sameEmission := emissionKey(a) == emissionKey(b)
		if sameGang && !sameEmission {
			t.Fatalf("gang key collision across emission keys:\n a=%+v\n b=%+v", a, b)
		}
		if sameEmission && !sameGang {
			t.Fatalf("compatible specs got different gang keys:\n a=%+v\n b=%+v", a, b)
		}
	})
}
