package harness

import (
	"os"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/tracestore"
)

// The warm-start contract, pinned from both ends: every shortcut —
// snapshot restore, fixed-point early stop, store-loaded replay,
// store-loaded tally — must reproduce the full Section 4.3 protocol
// exactly, and a warm store must actually be consulted.

// diffCellsExact fails unless two cells match on every counter, stall
// component, hardware rate and result bit.
func diffCellsExact(t *testing.T, name string, a, b Cell) {
	t.Helper()
	if a.Breakdown.Counts != b.Breakdown.Counts {
		t.Errorf("%s: counts differ:\n got %+v\nwant %+v", name, a.Breakdown.Counts, b.Breakdown.Counts)
	}
	if a.Breakdown.Cycles != b.Breakdown.Cycles {
		t.Errorf("%s: stall cycles differ:\n got %v\nwant %v", name, a.Breakdown.Cycles, b.Breakdown.Cycles)
	}
	if a.Rates != b.Rates {
		t.Errorf("%s: hardware rates differ", name)
	}
	if a.Result != b.Result {
		t.Errorf("%s: result %+v != %+v", name, a.Result, b.Result)
	}
}

// TestSnapshotRestoreMatchesDrain measures cells with the snapshot
// layer on and off — first visits (fixed-point early stop) and forced
// revisits (snapshot restore replacing the warm-up drains) — and
// asserts byte-identical breakdowns throughout. Warmup of 3 gives the
// fixed-point comparison real work on the first visit and the restore
// three drains to skip on the second.
func TestSnapshotRestoreMatchesDrain(t *testing.T) {
	snapOpts := replayTestOptions()
	snapOpts.Warmup = 3
	plainOpts := snapOpts
	plainOpts.Snapshot = false

	snapEnv, err := NewEnv(snapOpts)
	if err != nil {
		t.Fatal(err)
	}
	if snapEnv.snaps == nil {
		t.Fatal("snapshot env built without a snapshot memo")
	}
	plainEnv, err := NewEnv(plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if plainEnv.snaps != nil {
		t.Fatal("snapshot-disabled env still built a snapshot memo")
	}

	for _, q := range []QueryKind{SRS, IRS, SJ, GHJ} {
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			name := s.String() + "/" + q.String()
			a, err := snapEnv.Run(s, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := plainEnv.Run(s, q)
			if err != nil {
				t.Fatal(err)
			}
			diffCellsExact(t, name+" first", a, b)

			// Clear the memos so the revisit goes back through run():
			// the snapshot env restores its memoized post-warm-up state
			// and drains once, the plain env drains all Warmup+1 times.
			snapEnv.memo = map[memoKey]Cell{}
			plainEnv.memo = map[memoKey]Cell{}
			a2, err := snapEnv.Run(s, q)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := plainEnv.Run(s, q)
			if err != nil {
				t.Fatal(err)
			}
			diffCellsExact(t, name+" revisit", a2, b2)
			diffCellsExact(t, name+" revisit vs first", a2, a)
		}
	}
	if len(snapEnv.snaps.m) == 0 {
		t.Error("snapshot memo is empty — the restore path was never exercised")
	}

	// TPC-D: the fixed protocol (one warm pass, one measured pass).
	a, err := snapEnv.RunTPCD(engine.SystemD)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plainEnv.RunTPCD(engine.SystemD)
	if err != nil {
		t.Fatal(err)
	}
	diffCellsExact(t, "D/TPC-D", a, b)
	snapEnv.memo = map[memoKey]Cell{}
	plainEnv.memo = map[memoKey]Cell{}
	a2, err := snapEnv.RunTPCD(engine.SystemD)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := plainEnv.RunTPCD(engine.SystemD)
	if err != nil {
		t.Fatal(err)
	}
	diffCellsExact(t, "D/TPC-D revisit", a2, b2)

	// TPC-C: the revisit restores the post-warm-slice state instead of
	// draining the captured warm slice.
	const txns = 60
	ca, saStats, err := snapEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	cb, sbStats, err := plainEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	diffCellsExact(t, "C/TPC-C", ca, cb)
	if saStats != sbStats {
		t.Errorf("TPC-C stats differ: %+v vs %+v", saStats, sbStats)
	}
	ca2, _, err := snapEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	cb2, _, err := plainEnv.RunTPCC(engine.SystemC, txns)
	if err != nil {
		t.Fatal(err)
	}
	diffCellsExact(t, "C/TPC-C revisit", ca2, cb2)
	diffCellsExact(t, "C/TPC-C revisit vs first", ca2, ca)
}

// TestStoreWarmHits runs the same small grid twice against one store
// directory. The cold run populates it; the warm run must hit the
// entry index (tallies short-circuit the simulation entirely) and
// reproduce the cold run's cells exactly.
func TestStoreWarmHits(t *testing.T) {
	dir := t.TempDir()
	opts := replayTestOptions()
	specs := []CellSpec{
		microCell(opts, engine.SystemA, SRS),
		microCell(opts, engine.SystemB, IRS),
		microCell(opts, engine.SystemD, SJ),
	}

	cold, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = cold
	resCold, err := Measure(opts, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Flush(); err != nil {
		t.Fatal(err)
	}
	if cold.Stats().EntriesAdded == 0 {
		t.Fatal("cold run added no store entries")
	}

	warm, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = warm
	resWarm, err := Measure(opts, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.EntryHits == 0 {
		t.Errorf("warm run hit no store entries: %+v", st)
	}
	for _, spec := range specs {
		a, err := resCold.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := resWarm.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		diffCellsExact(t, spec.String(), b, a)
	}
}

// TestStoreDirOptionFlushes pins the Options.StoreDir path: Measure
// opens the store itself, and the entries survive to a reopened
// handle (the flush happened).
func TestStoreDirOptionFlushes(t *testing.T) {
	dir := t.TempDir()
	opts := replayTestOptions()
	opts.StoreDir = dir
	specs := []CellSpec{microCell(opts, engine.SystemA, SRS)}
	if _, err := Measure(opts, specs, 1); err != nil {
		t.Fatal(err)
	}
	s, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A second run through a fresh env must find the tally.
	env, err := NewEnv(replayTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	env.store = s
	cfg := env.Opts.Config
	if _, _, ok := env.lookupTally(specs[0], cfg, engine.SystemA, SRS); !ok {
		t.Error("flushed store has no tally for the measured cell")
	}
}

// TestSnapshotDisabledMatchesGoldens renders the full experiment grid
// with the snapshot layer force-disabled and diffs it against the
// goldens the snapshot-enabled default produced: the snapshot layer
// must be invisible to every figure.
func TestSnapshotDisabledMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	opts := goldenOptions()
	opts.Snapshot = false
	got := renderGolden(t, opts)
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("snapshot-disabled output differs from snapshot-enabled golden for %s", e.Name)
			}
		})
	}
}

// TestStoreColdWarmMatchesGoldens renders the full grid twice against
// one store directory — cold (populating) then warm (loading) — and
// diffs both against the committed goldens: persistence must be
// invisible to every figure, whichever temperature the store is at.
func TestStoreColdWarmMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	dir := t.TempDir()
	for _, leg := range []string{"cold", "warm"} {
		opts := goldenOptions()
		opts.StoreDir = dir
		got := renderGolden(t, opts)
		for _, e := range Experiments() {
			t.Run(leg+"/"+e.Name, func(t *testing.T) {
				want, err := os.ReadFile(goldenPath(e.Name))
				if err != nil {
					t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
				}
				if got[e.Name] != string(want) {
					t.Errorf("%s-store output differs from golden for %s", leg, e.Name)
				}
			})
		}
	}
}
