package harness

import (
	"strings"
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/engine"
)

// testEnv builds a small environment shared by the tests in this file.
// Scale 0.01 keeps a single cell under a second while staying past
// cache steady state.
var sharedEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		opts := DefaultOptions()
		if testing.Short() {
			// The shapes the tests assert converge well below the
			// default scale; keep the short path fast for per-push CI.
			opts.Scale = 0.004
		}
		env, err := NewEnv(opts)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestQueryKindStrings(t *testing.T) {
	if SRS.String() != "SRS" || IRS.String() != "IRS" || SJ.String() != "SJ" {
		t.Error("query kind names wrong")
	}
	if !strings.Contains(QueryKind(9).String(), "9") {
		t.Error("unknown kind should carry its number")
	}
}

func TestSystemASkipsIRS(t *testing.T) {
	env := getEnv(t)
	if _, err := env.Run(engine.SystemA, IRS); err == nil {
		t.Error("System A must not run IRS (Section 5.1)")
	}
	if _, ok := env.queryFor(engine.SystemA, IRS); ok {
		t.Error("queryFor should reject A/IRS")
	}
}

func TestRunProducesValidBreakdowns(t *testing.T) {
	env := getEnv(t)
	cells, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	// 4 systems x (SRS, SJ, GHJ, SAG, JSA) + 3 x (IRS, BRS, IXJ) = 29 cells.
	if len(cells) != 29 {
		t.Fatalf("got %d cells, want 29", len(cells))
	}
	for _, c := range cells {
		if err := c.Breakdown.Validate(); err != nil {
			t.Errorf("%s/%s: %v", c.System, c.Query, err)
		}
		if c.Breakdown.Counts.Records == 0 {
			t.Errorf("%s/%s processed no records", c.System, c.Query)
		}
		if c.Breakdown.GrossTotal() <= 0 {
			t.Errorf("%s/%s has no time", c.System, c.Query)
		}
	}
}

func TestRunMemoised(t *testing.T) {
	env := getEnv(t)
	a, err := env.Run(engine.SystemB, SRS)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Run(engine.SystemB, SRS)
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown != b.Breakdown {
		t.Error("memoised run should return the identical cell")
	}
}

func TestQueryResultsAgreeAcrossSystems(t *testing.T) {
	env := getEnv(t)
	// All four systems must compute the same SRS aggregate: different
	// builds, same semantics.
	var ref *Cell
	for _, s := range engine.Systems() {
		c, err := env.Run(s, SRS)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			cc := c
			ref = &cc
			continue
		}
		if c.Result.Rows != ref.Result.Rows {
			t.Errorf("system %s rows %d != %d", s, c.Result.Rows, ref.Result.Rows)
		}
		if c.Result.Value != ref.Result.Value {
			t.Errorf("system %s avg %v != %v", s, c.Result.Value, ref.Result.Value)
		}
	}
	// IRS must agree with SRS.
	srs, _ := env.Run(engine.SystemD, SRS)
	irs, err := env.Run(engine.SystemD, IRS)
	if err != nil {
		t.Fatal(err)
	}
	if srs.Result != irs.Result {
		t.Errorf("IRS result %+v != SRS %+v", irs.Result, srs.Result)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Errorf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Name == "" || e.Paper == "" || e.Cells == nil || e.Render == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %s", e.Name)
		}
		seen[e.Name] = true
	}
	if _, err := Find("fig5.1"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find of unknown experiment should fail")
	}
}

func TestFiguresRender(t *testing.T) {
	env := getEnv(t)
	for _, exp := range []struct {
		name string
		run  func(*Env) ([]Table, error)
		want []string
	}{
		{"fig5.1", Fig51, []string{"Computation", "Memory", "A", "D"}},
		{"fig5.2", Fig52, []string{"L1D", "L1I", "L2D", "ITLB"}},
		{"fig5.3", Fig53, []string{"SRS", "IRS", "SJ"}},
		{"fig5.4a", Fig54a, []string{"BTB"}},
		{"fig5.5", Fig55, []string{"TDEP", "TFU"}},
	} {
		tables, err := exp.run(env)
		if err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", exp.name)
		}
		all := ""
		for _, tb := range tables {
			all += tb.Render()
		}
		for _, w := range exp.want {
			if !strings.Contains(all, w) {
				t.Errorf("%s output missing %q:\n%s", exp.name, w, all)
			}
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"xxx", "y"}}}
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") || !strings.Contains(lines[1], "bb") {
		t.Errorf("render malformed:\n%s", out)
	}
}

// TestHeadlineClaims is the repository's central assertion: the
// simulated platform reproduces the paper's headline results (DESIGN.md
// section 3 maps each claim to the paper).
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims check runs the full experiment set")
	}
	env := getEnv(t)
	claims, err := CheckClaims(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 10 {
		t.Fatalf("expected 10 claims, got %d", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s does not hold: %s (measured: %s)", c.ID, c.Statement, c.Measured)
		} else {
			t.Logf("claim %s holds: %s", c.ID, c.Measured)
		}
	}
}

func TestFig54bSelectivityTrend(t *testing.T) {
	env := getEnv(t)
	tables, err := Fig54b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 6 {
		t.Fatalf("selectivity sweep rows = %d, want 6", len(tables[0].Rows))
	}
}

func TestBreakdownGroupsSumTo100(t *testing.T) {
	env := getEnv(t)
	c, err := env.Run(engine.SystemC, SJ)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for g := core.GroupComputation; g <= core.GroupResource; g++ {
		sum += c.Breakdown.GroupPercent(g)
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("group percentages sum to %v", sum)
	}
}
