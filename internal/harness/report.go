package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a figure or
// table of the paper reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table in aligned ASCII.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// pct formats a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// num formats a numeric cell.
func num(v float64) string { return fmt.Sprintf("%.0f", v) }

// rate formats a ratio cell.
func rate(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a two-decimal cell.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
