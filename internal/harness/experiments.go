package harness

import (
	"fmt"
	"sort"
	"strings"

	"wheretime/internal/core"
	"wheretime/internal/engine"
)

// Experiment regenerates one figure or table of the paper. Each
// experiment declares the independent grid cells it needs (Cells) and
// renders its tables from the measured results (Render); the two
// halves let the grid scheduler fan every cell out across workers and
// still render in canonical paper order.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig5.1").
	Name string
	// Paper locates the result in the paper.
	Paper string
	// Cells lists the grid cells the experiment consumes, fully
	// resolved against opts. Cells shared between experiments
	// deduplicate before scheduling.
	Cells func(opts Options) []CellSpec
	// Render produces the tables from measured cells. It must consume
	// only cells that Cells declared.
	Render func(opts Options, res *Results) ([]Table, error)
}

// Run measures and renders the experiment serially against an
// existing environment (the single-environment compatibility path;
// the CLIs go through RunExperiments instead).
func (e Experiment) Run(env *Env) ([]Table, error) {
	return e.Render(env.Opts, envResults(env))
}

// Experiments returns the registry of every reproducible figure and
// table, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "fig5.1", Paper: "Figure 5.1: execution time breakdown", Cells: microGridCells, Render: fig51Render},
		{Name: "fig5.2", Paper: "Figure 5.2: memory stall breakdown", Cells: microGridCells, Render: fig52Render},
		{Name: "fig5.3", Paper: "Figure 5.3: instructions retired per record", Cells: microGridCells, Render: fig53Render},
		{Name: "fig5.4a", Paper: "Figure 5.4 (left): branch misprediction rates", Cells: microGridCells, Render: fig54aRender},
		{Name: "fig5.4b", Paper: "Figure 5.4 (right): TB and TL1I vs selectivity (System D, SRS)", Cells: fig54bCells, Render: fig54bRender},
		{Name: "fig5.5", Paper: "Figure 5.5: TDEP and TFU contributions", Cells: microGridCells, Render: fig55Render},
		{Name: "fig5.6", Paper: "Figure 5.6: CPI breakdown, SRS vs TPC-D", Cells: tpcdGridCells, Render: fig56Render},
		{Name: "fig5.7", Paper: "Figure 5.7: cache stall breakdown, SRS vs TPC-D", Cells: tpcdGridCells, Render: fig57Render},
		{Name: "recsize", Paper: "Section 5.2.1-5.2.2: record size sweep", Cells: recordSizeCells, Render: recordSizeRender},
		{Name: "tpcc", Paper: "Section 5.5: TPC-C behaviour", Cells: tpccCells, Render: tpccRender},
		{Name: "ghj", Paper: "Scenario: Grace/hybrid hash join breakdown", Cells: scenarioCells(GHJ), Render: scenarioRender(GHJ)},
		{Name: "sortagg", Paper: "Scenario: sort-based aggregation breakdown", Cells: scenarioCells(SAG), Render: scenarioRender(SAG)},
		{Name: "btree", Paper: "Scenario: B-tree range scan breakdown", Cells: scenarioCells(BRS), Render: scenarioRender(BRS)},
		{Name: "joinsort", Paper: "Scenario: join-sort-aggregate pipeline breakdown", Cells: scenarioCells(JSA), Render: scenarioRender(JSA)},
		{Name: "idxjoin", Paper: "Scenario: index-probe join breakdown", Cells: scenarioCells(IXJ), Render: scenarioRender(IXJ)},
		{Name: "claims", Paper: "Section 1/5: headline claims check", Cells: claimsCells, Render: claimsRender},
	}
}

// Find returns the named experiment.
func Find(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", name, strings.Join(names, ", "))
}

// allQueries lists the paper's query kinds in paper order (the
// original figures render exactly these; the scenario kinds get their
// own experiments).
var allQueries = []QueryKind{SRS, IRS, SJ}

// scenarioQueries lists the scenario kinds added on top of the paper's
// set, in registry order.
var scenarioQueries = []QueryKind{GHJ, SAG, BRS, JSA, IXJ}

// validMicro reports whether (s, q) is a measurable combination:
// System A skips the index-based kinds (IRS, BRS, IXJ) because it does
// not use the index (Section 5.1).
func validMicro(s engine.System, q QueryKind) bool {
	if q == IRS || q == BRS || q == IXJ {
		return engine.DefaultProfile(s).UseIndex
	}
	return true
}

// microGridCells emits the full (query, system) microbenchmark grid at
// the base options — the cells Figures 5.1-5.5 share.
func microGridCells(opts Options) []CellSpec {
	var specs []CellSpec
	for _, q := range allQueries {
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			specs = append(specs, microCell(opts, s, q))
		}
	}
	return specs
}

// fig54bSelectivities is the sweep of Figure 5.4 (right).
var fig54bSelectivities = []float64{0, 0.01, 0.05, 0.10, 0.50, 1.00}

func fig54bCells(opts Options) []CellSpec {
	var specs []CellSpec
	for _, sel := range fig54bSelectivities {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.Selectivity = sel
		specs = append(specs, spec)
	}
	return specs
}

// tpcdSystems is the subset the paper ran TPC-D on (Section 5.5).
var tpcdSystems = []engine.System{engine.SystemA, engine.SystemB, engine.SystemD}

// tpcdGridCells emits the cells Figures 5.6-5.7 compare: the SRS
// microbenchmark and the TPC-D suite on the paper's TPC-D systems.
func tpcdGridCells(opts Options) []CellSpec {
	var specs []CellSpec
	for _, s := range tpcdSystems {
		specs = append(specs, microCell(opts, s, SRS))
		specs = append(specs, CellSpec{Kind: CellTPCD, System: s, Config: opts.Config})
	}
	return specs
}

// recordSizes is the sweep of Sections 5.2.1-5.2.2.
var recordSizes = []int{20, 48, 100, 152, 200}

func recordSizeCells(opts Options) []CellSpec {
	var specs []CellSpec
	for _, size := range recordSizes {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.RecordSize = size
		specs = append(specs, spec)
	}
	return specs
}

// tpccTxns is the measured transaction count of the Section 5.5 table.
const tpccTxns = 400

func tpccCells(opts Options) []CellSpec {
	var specs []CellSpec
	for _, s := range engine.Systems() {
		specs = append(specs, CellSpec{Kind: CellTPCC, System: s, Txns: tpccTxns, Config: opts.Config})
	}
	return specs
}

// scenarioLongName spells out a scenario kind for table titles.
func scenarioLongName(q QueryKind) string {
	switch q {
	case GHJ:
		return "Grace/hybrid hash join"
	case SAG:
		return "sort-based aggregation"
	case BRS:
		return "B-tree range scan"
	case JSA:
		return "join-sort-aggregate pipeline"
	case IXJ:
		return "index-probe join"
	default:
		return q.String()
	}
}

// scenarioCells emits one microbenchmark cell per valid system for a
// scenario query kind. Scenario cells are ordinary CellMicro specs, so
// they dedupe, gang, record/replay and parallelise exactly like the
// paper's cells.
func scenarioCells(q QueryKind) func(opts Options) []CellSpec {
	return func(opts Options) []CellSpec {
		var specs []CellSpec
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			specs = append(specs, microCell(opts, s, q))
		}
		return specs
	}
}

// scenarioRender renders a scenario's paper-style tables: the
// execution-time breakdown (with CPI and instructions per record) and
// the memory-stall breakdown, one row per system.
func scenarioRender(q QueryKind) func(opts Options, res *Results) ([]Table, error) {
	return func(opts Options, res *Results) ([]Table, error) {
		exec := Table{
			Title:  fmt.Sprintf("Scenario %s (%s): execution time breakdown (%%)", q, scenarioLongName(q)),
			Header: []string{"System", "CPI", "Computation", "Memory", "Branch mispred", "Resource", "Instr/rec"},
		}
		mem := Table{
			Title:  fmt.Sprintf("Scenario %s (%s): memory stall breakdown (%% of TM)", q, scenarioLongName(q)),
			Header: []string{"System", "L1D", "L1I", "L2D", "L2I", "ITLB"},
		}
		switch q {
		case GHJ:
			exec.Note = "Per record of R (the probe input), partition and join phases included."
		case SAG:
			exec.Note = "Per record of R; run generation, merge passes and final aggregation included."
		case BRS:
			exec.Note = "Per selected entry; index-only — no heap page is touched. System A omitted (no index, Section 5.1)."
		case JSA:
			exec.Note = "Per record of R; join matches routed through an external sort before aggregation."
		case IXJ:
			exec.Note = "Per selected entry of R; probe side driven from the a2 index. System A omitted (no index, Section 5.1)."
		}
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			b := cell.Breakdown
			exec.AddRow(s.String(), f2(b.CPI()),
				pct(b.GroupPercent(core.GroupComputation)),
				pct(b.GroupPercent(core.GroupMemory)),
				pct(b.GroupPercent(core.GroupBranch)),
				pct(b.GroupPercent(core.GroupResource)),
				num(b.InstructionsPerRecord()))
			mem.AddRow(s.String(),
				pct(b.MemoryPercent(core.TL1D)),
				pct(b.MemoryPercent(core.TL1I)),
				pct(b.MemoryPercent(core.TL2D)),
				pct(b.MemoryPercent(core.TL2I)),
				pct(b.MemoryPercent(core.TITLB)))
		}
		return []Table{exec, mem}, nil
	}
}

// Fig51 regenerates the execution time breakdown: one table per query,
// one row per system, columns TC/TM/TB/TR as percentages of execution
// time.
func Fig51(env *Env) ([]Table, error) { return fig51Render(env.Opts, envResults(env)) }

func fig51Render(opts Options, res *Results) ([]Table, error) {
	var tables []Table
	for _, q := range allQueries {
		t := Table{
			Title:  fmt.Sprintf("Figure 5.1 (%s): query execution time breakdown (%%)", q),
			Header: []string{"System", "Computation", "Memory", "Branch mispred", "Resource"},
		}
		if q == IRS {
			t.Note = "System A omitted: it does not use the index (Section 5.1)."
		}
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			b := cell.Breakdown
			t.AddRow(s.String(),
				pct(b.GroupPercent(core.GroupComputation)),
				pct(b.GroupPercent(core.GroupMemory)),
				pct(b.GroupPercent(core.GroupBranch)),
				pct(b.GroupPercent(core.GroupResource)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig52 regenerates the memory stall breakdown: the five components of
// TM as percentages of TM.
func Fig52(env *Env) ([]Table, error) { return fig52Render(env.Opts, envResults(env)) }

func fig52Render(opts Options, res *Results) ([]Table, error) {
	var tables []Table
	for _, q := range allQueries {
		t := Table{
			Title:  fmt.Sprintf("Figure 5.2 (%s): memory stall time breakdown (%% of TM)", q),
			Header: []string{"System", "L1D", "L1I", "L2D", "L2I", "ITLB"},
		}
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			b := cell.Breakdown
			t.AddRow(s.String(),
				pct(b.MemoryPercent(core.TL1D)),
				pct(b.MemoryPercent(core.TL1I)),
				pct(b.MemoryPercent(core.TL2D)),
				pct(b.MemoryPercent(core.TL2I)),
				pct(b.MemoryPercent(core.TITLB)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig53 regenerates instructions retired per record. Denominators
// follow the figure's caption: records of R for SRS and SJ, selected
// records for IRS.
func Fig53(env *Env) ([]Table, error) { return fig53Render(env.Opts, envResults(env)) }

func fig53Render(opts Options, res *Results) ([]Table, error) {
	t := Table{
		Title:  "Figure 5.3: instructions retired per record",
		Note:   "SRS/SJ: per record of R; IRS: per selected record.",
		Header: []string{"System", "SRS", "IRS", "SJ"},
	}
	for _, s := range engine.Systems() {
		row := []string{s.String()}
		for _, q := range allQueries {
			if !validMicro(s, q) {
				row = append(row, "-")
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			row = append(row, num(cell.Breakdown.InstructionsPerRecord()))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Fig54a regenerates the branch misprediction rates (left graph).
func Fig54a(env *Env) ([]Table, error) { return fig54aRender(env.Opts, envResults(env)) }

func fig54aRender(opts Options, res *Results) ([]Table, error) {
	t := Table{
		Title:  "Figure 5.4 (left): branch misprediction rates",
		Header: []string{"System", "SRS", "IRS", "SJ", "BTB miss (SRS)"},
	}
	for _, s := range engine.Systems() {
		row := []string{s.String()}
		var btb string
		for _, q := range allQueries {
			if !validMicro(s, q) {
				row = append(row, "-")
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			row = append(row, pct(100*cell.Breakdown.BranchMispredictionRate()))
			if q == SRS {
				btb = pct(100 * cell.Breakdown.BTBMissRate())
			}
		}
		row = append(row, btb)
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Fig54b regenerates the right graph: TB and TL1I as percentages of
// execution time for System D running SRS across selectivities.
func Fig54b(env *Env) ([]Table, error) { return fig54bRender(env.Opts, envResults(env)) }

func fig54bRender(opts Options, res *Results) ([]Table, error) {
	t := Table{
		Title:  "Figure 5.4 (right): System D sequential selection vs selectivity",
		Header: []string{"Selectivity", "Branch mispred stalls", "L1 I-cache stalls"},
	}
	for _, sel := range fig54bSelectivities {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.Selectivity = sel
		cell, err := res.Get(spec)
		if err != nil {
			return nil, err
		}
		b := cell.Breakdown
		t.AddRow(fmt.Sprintf("%.0f%%", sel*100),
			pct(b.GroupPercent(core.GroupBranch)),
			pct(b.ComponentPercent(core.TL1I)))
	}
	return []Table{t}, nil
}

// Fig55 regenerates the TDEP/TFU contributions to execution time.
func Fig55(env *Env) ([]Table, error) { return fig55Render(env.Opts, envResults(env)) }

func fig55Render(opts Options, res *Results) ([]Table, error) {
	dep := Table{
		Title:  "Figure 5.5 (TDEP): dependency stall contribution (% of execution time)",
		Header: []string{"System", "SRS", "IRS", "SJ"},
	}
	fu := Table{
		Title:  "Figure 5.5 (TFU): functional unit stall contribution (% of execution time)",
		Header: []string{"System", "SRS", "IRS", "SJ"},
	}
	for _, s := range engine.Systems() {
		depRow := []string{s.String()}
		fuRow := []string{s.String()}
		for _, q := range allQueries {
			if !validMicro(s, q) {
				depRow = append(depRow, "-")
				fuRow = append(fuRow, "-")
				continue
			}
			cell, err := res.Get(microCell(opts, s, q))
			if err != nil {
				return nil, err
			}
			depRow = append(depRow, pct(cell.Breakdown.ComponentPercent(core.TDEP)))
			fuRow = append(fuRow, pct(cell.Breakdown.ComponentPercent(core.TFU)))
		}
		dep.AddRow(depRow...)
		fu.AddRow(fuRow...)
	}
	return []Table{dep, fu}, nil
}

// Fig56 regenerates the clocks-per-instruction breakdown for the 10%
// SRS (left) and the TPC-D suite (right).
func Fig56(env *Env) ([]Table, error) { return fig56Render(env.Opts, envResults(env)) }

func fig56Render(opts Options, res *Results) ([]Table, error) {
	mk := func(title string, get func(engine.System) (*core.Breakdown, error)) (Table, error) {
		t := Table{
			Title:  title,
			Header: []string{"System", "CPI", "Computation", "Memory", "Branch", "Resource"},
		}
		for _, s := range tpcdSystems {
			b, err := get(s)
			if err != nil {
				return t, err
			}
			t.AddRow(s.String(), f2(b.CPI()),
				f2(b.CPIOf(core.GroupComputation)),
				f2(b.CPIOf(core.GroupMemory)),
				f2(b.CPIOf(core.GroupBranch)),
				f2(b.CPIOf(core.GroupResource)))
		}
		return t, nil
	}
	left, err := mk("Figure 5.6 (left): CPI breakdown, 10% sequential range selection",
		func(s engine.System) (*core.Breakdown, error) {
			cell, err := res.Get(microCell(opts, s, SRS))
			return cell.Breakdown, err
		})
	if err != nil {
		return nil, err
	}
	right, err := mk("Figure 5.6 (right): CPI breakdown, TPC-D queries",
		func(s engine.System) (*core.Breakdown, error) {
			cell, err := res.Get(CellSpec{Kind: CellTPCD, System: s, Config: opts.Config})
			return cell.Breakdown, err
		})
	if err != nil {
		return nil, err
	}
	return []Table{left, right}, nil
}

// Fig57 regenerates the cache-related stall breakdown for SRS vs the
// TPC-D suite.
func Fig57(env *Env) ([]Table, error) { return fig57Render(env.Opts, envResults(env)) }

func fig57Render(opts Options, res *Results) ([]Table, error) {
	mk := func(title string, get func(engine.System) (*core.Breakdown, error)) (Table, error) {
		t := Table{
			Title:  title,
			Header: []string{"System", "L1D", "L1I", "L2D", "L2I"},
		}
		for _, s := range tpcdSystems {
			b, err := get(s)
			if err != nil {
				return t, err
			}
			cache := b.Cycles[core.TL1D] + b.Cycles[core.TL1I] + b.Cycles[core.TL2D] + b.Cycles[core.TL2I]
			share := func(c core.Component) string {
				if cache == 0 {
					return pct(0)
				}
				return pct(100 * b.Cycles[c] / cache)
			}
			t.AddRow(s.String(), share(core.TL1D), share(core.TL1I), share(core.TL2D), share(core.TL2I))
		}
		return t, nil
	}
	left, err := mk("Figure 5.7 (left): cache-related stalls, 10% sequential range selection",
		func(s engine.System) (*core.Breakdown, error) {
			cell, err := res.Get(microCell(opts, s, SRS))
			return cell.Breakdown, err
		})
	if err != nil {
		return nil, err
	}
	right, err := mk("Figure 5.7 (right): cache-related stalls, TPC-D queries",
		func(s engine.System) (*core.Breakdown, error) {
			cell, err := res.Get(CellSpec{Kind: CellTPCD, System: s, Config: opts.Config})
			return cell.Breakdown, err
		})
	if err != nil {
		return nil, err
	}
	return []Table{left, right}, nil
}

// RecordSize regenerates the record-size discussion of Sections
// 5.2.1-5.2.2: TL2D grows with record size, and execution time per
// record grows by 2.5-4x from 20 to 200 bytes.
func RecordSize(env *Env) ([]Table, error) { return recordSizeRender(env.Opts, envResults(env)) }

func recordSizeRender(opts Options, res *Results) ([]Table, error) {
	t := Table{
		Title:  "Section 5.2.1-5.2.2: record size sweep (System D, 10% SRS)",
		Header: []string{"Record bytes", "TL2D cycles/rec", "L1I misses/rec", "Cycles/rec", "vs 20B"},
	}
	var base float64
	for _, size := range recordSizes {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.RecordSize = size
		cell, err := res.Get(spec)
		if err != nil {
			return nil, err
		}
		b := cell.Breakdown
		recs := float64(b.Counts.Records)
		perRec := b.GrossTotal() / recs
		if size == recordSizes[0] {
			base = perRec
		}
		t.AddRow(fmt.Sprintf("%d", size),
			f2(b.Cycles[core.TL2D]/recs),
			f2(float64(b.Counts.L1IMisses)/recs),
			num(perRec),
			fmt.Sprintf("%.2fx", perRec/base))
	}
	return []Table{t}, nil
}

// TPCC regenerates the Section 5.5 TPC-C observations: CPI 2.5-4.5,
// 60-80% memory stalls, dominated by L2, with elevated resource
// stalls.
func TPCC(env *Env) ([]Table, error) { return tpccRender(env.Opts, envResults(env)) }

func tpccRender(opts Options, res *Results) ([]Table, error) {
	t := Table{
		Title:  "Section 5.5: 10-user, 1-warehouse TPC-C mix",
		Header: []string{"System", "CPI", "Computation", "Memory", "Branch", "Resource", "L2(D+I) % of TM"},
	}
	for _, s := range engine.Systems() {
		cell, err := res.Get(CellSpec{Kind: CellTPCC, System: s, Txns: tpccTxns, Config: opts.Config})
		if err != nil {
			return nil, err
		}
		b := cell.Breakdown
		l2share := b.MemoryPercent(core.TL2D) + b.MemoryPercent(core.TL2I)
		t.AddRow(s.String(), f2(b.CPI()),
			pct(b.GroupPercent(core.GroupComputation)),
			pct(b.GroupPercent(core.GroupMemory)),
			pct(b.GroupPercent(core.GroupBranch)),
			pct(b.GroupPercent(core.GroupResource)),
			pct(l2share))
	}
	return []Table{t}, nil
}

// Claim is one verifiable headline claim of the paper.
type Claim struct {
	ID        string
	Statement string
	Measured  string
	Holds     bool
}

// claimSelectivities is the C7 co-variance sweep.
var claimSelectivities = []float64{0.01, 0.10, 0.50}

// claimRecordSizes bounds the C8 growth measurement.
var claimRecordSizes = []int{20, 200}

// claimTPCCTxns is the C10 transaction count.
const claimTPCCTxns = 300

// claimsCells emits every cell the headline-claims check consumes:
// the full microbenchmark grid, the C7 selectivity sweep, the C8
// record-size endpoints, the TPC-D suite on B and D, and a TPC-C run.
func claimsCells(opts Options) []CellSpec {
	specs := microGridCells(opts)
	for _, sel := range claimSelectivities {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.Selectivity = sel
		specs = append(specs, spec)
	}
	for _, size := range claimRecordSizes {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.RecordSize = size
		specs = append(specs, spec)
	}
	for _, s := range []engine.System{engine.SystemB, engine.SystemD} {
		specs = append(specs, CellSpec{Kind: CellTPCD, System: s, Config: opts.Config})
	}
	specs = append(specs, CellSpec{Kind: CellTPCC, System: engine.SystemC, Txns: claimTPCCTxns, Config: opts.Config})
	return specs
}

// CheckClaims evaluates the headline claims of Sections 1 and 5
// against a full run, returning structured results.
func CheckClaims(env *Env) ([]Claim, error) {
	return checkClaims(env.Opts, envResults(env))
}

func checkClaims(opts Options, res *Results) ([]Claim, error) {
	// The microbenchmark grid, from the one place that defines it.
	var cells []Cell
	for _, spec := range microGridCells(opts) {
		c, err := res.Get(spec)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	get := func(s engine.System, q QueryKind) *core.Breakdown {
		for _, c := range cells {
			if c.System == s && c.Query == q {
				return c.Breakdown
			}
		}
		return nil
	}

	var claims []Claim
	add := func(id, statement, measured string, holds bool) {
		claims = append(claims, Claim{ID: id, Statement: statement, Measured: measured, Holds: holds})
	}

	// C1: on average, computation is at most ~half the execution time.
	var compSum float64
	var n int
	for _, c := range cells {
		compSum += c.Breakdown.GroupPercent(core.GroupComputation)
		n++
	}
	avgComp := compSum / float64(n)
	add("C1", "computation is about half of execution time or less; stalls dominate",
		fmt.Sprintf("avg computation %.1f%%", avgComp), avgComp <= 55)

	// C2: TL1I + TL2D account for ~90% of TM in all cells.
	worst := 100.0
	var worstAt string
	for _, c := range cells {
		v := c.Breakdown.MemoryPercent(core.TL1I) + c.Breakdown.MemoryPercent(core.TL2D)
		if v < worst {
			worst = v
			worstAt = fmt.Sprintf("%s/%s", c.System, c.Query)
		}
	}
	add("C2", "~90% of memory stalls are L1 I-cache and L2 data misses",
		fmt.Sprintf("minimum TL1I+TL2D share %.1f%% (%s)", worst, worstAt), worst >= 80)

	// C3: System A has the fewest instructions/record on SRS, the
	// smallest TB, and the highest TR (20-40%).
	aSRS := get(engine.SystemA, SRS)
	aLowest := true
	aSmallestTB := true
	for _, s := range []engine.System{engine.SystemB, engine.SystemC, engine.SystemD} {
		b := get(s, SRS)
		if b.InstructionsPerRecord() <= aSRS.InstructionsPerRecord() {
			aLowest = false
		}
		if b.GroupPercent(core.GroupBranch) <= aSRS.GroupPercent(core.GroupBranch) {
			aSmallestTB = false
		}
	}
	aTR := aSRS.GroupPercent(core.GroupResource)
	add("C3", "System A: fewest instructions/record (SRS), smallest TB, highest TR (20-40%)",
		fmt.Sprintf("A inst/rec lowest=%v, TB smallest=%v, TR=%.1f%%", aLowest, aSmallestTB, aTR),
		aLowest && aSmallestTB && aTR >= 20 && aTR <= 42)

	// C4: System B's L2 data miss rate on SRS is far below the others'.
	bRate := get(engine.SystemB, SRS).L2DataMissRate()
	othersMin := 1.0
	for _, s := range []engine.System{engine.SystemA, engine.SystemC, engine.SystemD} {
		if r := get(s, SRS).L2DataMissRate(); r < othersMin {
			othersMin = r
		}
	}
	add("C4", "System B: ~2% L2 data miss rate on SRS vs 40-90% for the others",
		fmt.Sprintf("B %.1f%%, others' minimum %.1f%%", 100*bRate, 100*othersMin),
		bRate < 0.10 && othersMin >= 0.40)

	// C5: L1D miss rate ~2%, never exceeding ~4%.
	maxL1D := 0.0
	for _, c := range cells {
		if r := c.Breakdown.L1DMissRate(); r > maxL1D {
			maxL1D = r
		}
	}
	add("C5", "L1 D-cache miss rate around 2%, never above ~4%",
		fmt.Sprintf("maximum %.2f%%", 100*maxL1D), maxL1D <= 0.045)

	// C6: branches ~20% of instructions; BTB misses roughly half the
	// time for the large-footprint systems.
	var minBF, maxBF = 1.0, 0.0
	for _, c := range cells {
		bf := c.Breakdown.BranchFraction()
		if bf < minBF {
			minBF = bf
		}
		if bf > maxBF {
			maxBF = bf
		}
	}
	btbOK := true
	for _, s := range []engine.System{engine.SystemB, engine.SystemC, engine.SystemD} {
		r := get(s, SRS).BTBMissRate()
		if r < 0.25 || r > 0.70 {
			btbOK = false
		}
	}
	add("C6", "branches ~20% of instructions; BTB misses ~50% of the time",
		fmt.Sprintf("branch fraction %.1f-%.1f%%, B/C/D BTB in band=%v", 100*minBF, 100*maxBF, btbOK),
		minBF >= 0.15 && maxBF <= 0.25 && btbOK)

	// C7: TB and TL1I co-vary with selectivity for System D SRS.
	var tbs, l1is []float64
	for _, sel := range claimSelectivities {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.Selectivity = sel
		cell, err := res.Get(spec)
		if err != nil {
			return nil, err
		}
		tbs = append(tbs, cell.Breakdown.GroupPercent(core.GroupBranch))
		l1is = append(l1is, cell.Breakdown.ComponentPercent(core.TL1I))
	}
	mono := tbs[0] < tbs[2] && l1is[0] < l1is[2]
	add("C7", "TB and TL1I both increase with selectivity (System D, SRS)",
		fmt.Sprintf("TB %.1f->%.1f%%, TL1I %.1f->%.1f%% over 1%%->50%%", tbs[0], tbs[2], l1is[0], l1is[2]),
		mono)

	// C8: execution time per record grows ~2.5-4x from 20B to 200B
	// records, and TL2D grows with record size.
	perRec := make([]float64, len(claimRecordSizes))
	l2d := make([]float64, len(claimRecordSizes))
	for i, size := range claimRecordSizes {
		spec := microCell(opts, engine.SystemD, SRS)
		spec.RecordSize = size
		cell, err := res.Get(spec)
		if err != nil {
			return nil, err
		}
		recs := float64(cell.Breakdown.Counts.Records)
		perRec[i] = cell.Breakdown.GrossTotal() / recs
		l2d[i] = cell.Breakdown.Cycles[core.TL2D] / recs
	}
	growth := perRec[1] / perRec[0]
	l2dGrowth := l2d[1] / l2d[0]
	add("C8", "20B->200B records: time/record grows 2.5-4x; TL2D grows with record size",
		fmt.Sprintf("time/record x%.2f, TL2D x%.2f", growth, l2dGrowth),
		growth >= 2.0 && growth <= 5.0 && l2dGrowth > 1.5)

	// C9: SRS CPI in 1.2-1.8; TPC-D breakdown similar to SRS; TPC-D
	// memory stalls dominated by L1I.
	cpiOK := true
	for _, s := range engine.Systems() {
		cpi := get(s, SRS).CPI()
		if cpi < 1.1 || cpi > 1.9 {
			cpiOK = false
		}
	}
	tpcdSimilar := true
	tpcdL1I := true
	for _, s := range []engine.System{engine.SystemB, engine.SystemD} {
		cell, err := res.Get(CellSpec{Kind: CellTPCD, System: s, Config: opts.Config})
		if err != nil {
			return nil, err
		}
		srs := get(s, SRS)
		d := cell.Breakdown.GroupPercent(core.GroupMemory) - srs.GroupPercent(core.GroupMemory)
		if d < -15 || d > 15 {
			tpcdSimilar = false
		}
		if cell.Breakdown.MemoryPercent(core.TL1I) < 50 {
			tpcdL1I = false
		}
	}
	add("C9", "SRS CPI 1.2-1.8, similar to TPC-D; TPC-D memory stalls dominated by L1I",
		fmt.Sprintf("CPI band=%v, TPC-D similar=%v, TPC-D L1I-dominated=%v", cpiOK, tpcdSimilar, tpcdL1I),
		cpiOK && tpcdSimilar && tpcdL1I)

	// C10: TPC-C CPI 2.5-4.5, memory stalls >= ~55%, L2-heavy.
	cell, err := res.Get(CellSpec{Kind: CellTPCC, System: engine.SystemC, Txns: claimTPCCTxns, Config: opts.Config})
	if err != nil {
		return nil, err
	}
	b := cell.Breakdown
	cpi := b.CPI()
	mem := b.GroupPercent(core.GroupMemory)
	l2 := b.MemoryPercent(core.TL2D) + b.MemoryPercent(core.TL2I)
	add("C10", "TPC-C: CPI 2.5-4.5, 60-80% memory stalls, L2-dominated",
		fmt.Sprintf("CPI %.2f, memory %.1f%%, L2 share of TM %.1f%%", cpi, mem, l2),
		cpi >= 2.3 && cpi <= 4.6 && mem >= 48 && l2 >= 55)

	sort.Slice(claims, func(i, j int) bool { return claims[i].ID < claims[j].ID })
	return claims, nil
}

// Claims renders the headline-claims check as a table.
func Claims(env *Env) ([]Table, error) { return claimsRender(env.Opts, envResults(env)) }

func claimsRender(opts Options, res *Results) ([]Table, error) {
	claims, err := checkClaims(opts, res)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Headline claims (Sections 1 and 5) vs simulation",
		Header: []string{"Claim", "Statement", "Measured", "Holds"},
	}
	for _, c := range claims {
		holds := "yes"
		if !c.Holds {
			holds = "NO"
		}
		t.AddRow(c.ID, c.Statement, c.Measured, holds)
	}
	return []Table{t}, nil
}
