package harness

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/trace"
)

// Scenario coverage: the scenario experiments (ghj, sortagg, btree,
// joinsort, idxjoin) ride the same golden matrix as every other
// experiment —
// TestGoldenFiles, TestUnbatchedMatchesGoldens,
// TestReplayDisabledMatchesGoldens and TestGangDisabledMatchesGoldens
// all iterate the registry, so the new cells are diffed against the
// same files across all four drain paths. The tests here add the
// cheap, per-push checks: a goldens smoke that measures only the
// scenario grid, and result cross-checks between each scenario
// operator and its reference access path.

// scenarioExperiments returns the registered scenario experiments.
func scenarioExperiments(t *testing.T) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, name := range []string{"ghj", "sortagg", "btree", "joinsort", "idxjoin"} {
		e, err := Find(name)
		if err != nil {
			t.Fatalf("scenario experiment not registered: %v", err)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestScenarioGoldens renders only the scenario experiments against
// their goldens: the push-CI smoke for the new operators, cheap enough
// to run outside the nightly full grid.
func TestScenarioGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario grid in -short mode (make scenario-smoke runs it)")
	}
	opts := goldenOptions()
	exps := scenarioExperiments(t)
	rendered, err := RunExperiments(opts, exps, DefaultParallelism())
	if err != nil {
		t.Fatalf("measuring scenario grid: %v", err)
	}
	for i, e := range exps {
		var sb strings.Builder
		fmt.Fprintf(&sb, "== %s — %s ==\n\n", e.Name, e.Paper)
		for _, tab := range rendered[i] {
			sb.WriteString(tab.Render())
			sb.WriteString("\n")
		}
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if sb.String() != string(want) {
				t.Errorf("%s output drifted from golden\n--- got ---\n%s--- want ---\n%s",
					e.Name, sb.String(), want)
			}
		})
	}
}

// TestScenarioResultsConsistent cross-checks each scenario operator
// against its reference access path on the same environment: the
// Grace join must produce the in-memory join's aggregate, the
// sort-based aggregation the sequential scan's, and the index-only
// range count the indexed selection's row count.
func TestScenarioResultsConsistent(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(q QueryKind) Cell {
		c, err := env.Run(engine.SystemD, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return c
	}
	sj, ghj := get(SJ), get(GHJ)
	if sj.Result.Rows != ghj.Result.Rows || math.Abs(sj.Result.Value-ghj.Result.Value) > 1e-9 {
		t.Errorf("GHJ result %+v != SJ result %+v", ghj.Result, sj.Result)
	}
	srs, sag := get(SRS), get(SAG)
	if srs.Result.Rows != sag.Result.Rows || math.Abs(srs.Result.Value-sag.Result.Value) > 1e-9 {
		t.Errorf("SAG result %+v != SRS result %+v", sag.Result, srs.Result)
	}
	irs, brs := get(IRS), get(BRS)
	if irs.Result.Rows != brs.Result.Rows {
		t.Errorf("BRS selected %d rows, IRS %d", brs.Result.Rows, irs.Result.Rows)
	}
	jsa := get(JSA)
	if sj.Result.Rows != jsa.Result.Rows || math.Abs(sj.Result.Value-jsa.Result.Value) > 1e-9 {
		t.Errorf("JSA result %+v != SJ result %+v (sorting must not change the aggregate)", jsa.Result, sj.Result)
	}
	// IXJ's reference is the same filtered-join SQL through the default
	// heap-scan join.
	ixj := get(IXJ)
	e := env.Engine(engine.SystemD)
	refPlan, err := e.Prepare(env.Dims.QueryIXJ(opts.Selectivity))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(refPlan, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows != ixj.Result.Rows || math.Abs(ref.Value-ixj.Result.Value) > 1e-9 {
		t.Errorf("IXJ result %+v != default-join reference %+v", ixj.Result, ref)
	}
	if sj.Result.Rows == 0 || srs.Result.Rows == 0 || irs.Result.Rows == 0 || ixj.Result.Rows == 0 {
		t.Fatal("reference cells selected nothing")
	}
	// The scenarios must also be distinct access patterns, not relabels:
	// per-record instruction costs differ from their references.
	if ghj.Breakdown.InstructionsPerRecord() == sj.Breakdown.InstructionsPerRecord() {
		t.Error("GHJ emitted exactly SJ's instruction stream")
	}
	if sag.Breakdown.InstructionsPerRecord() == srs.Breakdown.InstructionsPerRecord() {
		t.Error("SAG emitted exactly SRS's instruction stream")
	}
	if brs.Breakdown.InstructionsPerRecord() == irs.Breakdown.InstructionsPerRecord() {
		t.Error("BRS emitted exactly IRS's instruction stream")
	}
	if jsa.Breakdown.InstructionsPerRecord() == sj.Breakdown.InstructionsPerRecord() {
		t.Error("JSA emitted exactly SJ's instruction stream")
	}
	if ixj.Breakdown.InstructionsPerRecord() == sj.Breakdown.InstructionsPerRecord() {
		t.Error("IXJ emitted exactly SJ's instruction stream")
	}
}

// TestScenarioSystemASkipsBRS mirrors the IRS rule: System A has no
// index, so the B-tree scenario must reject it.
func TestScenarioSystemASkipsBRS(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []QueryKind{BRS, IXJ} {
		if _, err := env.Run(engine.SystemA, q); err == nil {
			t.Errorf("System A must not run %s (no index, Section 5.1)", q)
		}
		if _, ok := env.queryFor(engine.SystemA, q); ok {
			t.Errorf("queryFor should reject A/%s", q)
		}
	}
	for _, e := range scenarioExperiments(t) {
		for _, spec := range e.Cells(opts) {
			if (spec.Query == BRS || spec.Query == IXJ) && spec.System == engine.SystemA {
				t.Errorf("%s experiment declared a System A cell", spec.Query)
			}
		}
	}
}
