// Package harness reproduces the paper's experiments: it wires
// workload, engine and simulator together, applies the measurement
// protocol of Section 4.3 (warm the caches with runs of the query,
// then measure), and renders each figure and table of Section 5.
package harness

import (
	"fmt"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// QueryKind names the three microbenchmark queries of Section 3.3.
type QueryKind int

// The workload queries, with the paper's abbreviations.
const (
	// SRS is the sequential range selection.
	SRS QueryKind = iota
	// IRS is the indexed range selection.
	IRS
	// SJ is the sequential join.
	SJ
)

// String returns the paper's abbreviation.
func (q QueryKind) String() string {
	switch q {
	case SRS:
		return "SRS"
	case IRS:
		return "IRS"
	case SJ:
		return "SJ"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(q))
	}
}

// Options configure an experiment run.
type Options struct {
	// Scale shrinks the paper's dataset (1.0 = the paper's 1.2M-row R).
	// Per-record behaviour converges within a few thousand records.
	Scale float64
	// RecordSize is the R/S record width in bytes.
	RecordSize int
	// Selectivity of the range selections (the paper's default is 10%).
	Selectivity float64
	// Config is the simulated platform.
	Config xeon.Config
	// Warmup is how many unmeasured runs warm the caches (Section 4.3).
	Warmup int
	// Unbatched routes every event through the one-call-per-event
	// reference path instead of the batched pipeline drain. The two
	// paths see the identical event sequence and must render
	// byte-identical tables; the golden-file suite measures both ways
	// and diffs them. Slower — for verification, not for experiments.
	Unbatched bool
}

// DefaultOptions returns the paper's experimental setup at a
// simulation-friendly scale.
func DefaultOptions() Options {
	return Options{
		Scale:       0.01,
		RecordSize:  100,
		Selectivity: 0.10,
		Config:      xeon.DefaultConfig(),
		Warmup:      1,
	}
}

// Cell is one measured (system, query) combination.
type Cell struct {
	System    engine.System
	Query     QueryKind
	Breakdown *core.Breakdown
	Rates     xeon.HardwareRates
	Result    engine.Result
}

// Env holds the built databases and engines for one option set, so
// multiple experiments can share the (expensive) data generation.
type Env struct {
	Opts    Options
	Dims    workload.Dims
	nsm     *workload.Database
	pax     *workload.Database
	engines [4]*engine.Engine

	// memo caches measured cells at the env's own options, so several
	// figures over the same cells don't re-simulate.
	memo map[memoKey]Cell

	// subenvs caches environments rebuilt at other record sizes (the
	// record-size sweeps), keyed by record size.
	subenvs map[int]*Env
}

type memoKey struct {
	s   engine.System
	q   QueryKind
	sel float64
}

// Dims returns the dataset dimensions these options build, without
// building the data.
func (o Options) Dims() workload.Dims {
	dims := workload.PaperDims()
	dims.RecordSize = o.RecordSize
	return dims.Scaled(o.Scale)
}

// NewEnv builds the two databases (row layout for systems A/C/D,
// PAX layout for the cache-conscious System B) and four engines.
func NewEnv(opts Options) (*Env, error) {
	dims := opts.Dims()

	nsm, err := workload.Build(dims, storage.NSM)
	if err != nil {
		return nil, err
	}
	if err := nsm.BuildIndexes(); err != nil {
		return nil, err
	}
	pax, err := workload.Build(dims, storage.PAX)
	if err != nil {
		return nil, err
	}
	if err := pax.BuildIndexes(); err != nil {
		return nil, err
	}
	env := &Env{Opts: opts, Dims: dims, nsm: nsm, pax: pax,
		memo: make(map[memoKey]Cell), subenvs: make(map[int]*Env)}
	for _, s := range engine.Systems() {
		env.engines[s] = engine.New(s, env.database(s).Catalog)
	}
	return env, nil
}

// database returns the database a system runs over (B gets PAX).
func (env *Env) database(s engine.System) *workload.Database {
	if engine.DefaultProfile(s).DataLayout == storage.PAX {
		return env.pax
	}
	return env.nsm
}

// Engine returns the engine for a system.
func (env *Env) Engine(s engine.System) *engine.Engine { return env.engines[s] }

// queryFor returns the SQL and plan for a (system, query) pair, and
// whether the pair is valid (System A skips IRS: it does not use the
// index, Section 5.1).
func (env *Env) queryFor(s engine.System, q QueryKind) (string, bool) {
	switch q {
	case SRS:
		return env.Dims.QuerySRS(env.Opts.Selectivity), true
	case IRS:
		if !engine.DefaultProfile(s).UseIndex {
			return "", false
		}
		return env.Dims.QueryIRS(env.Opts.Selectivity), true
	case SJ:
		return env.Dims.QuerySJ(), true
	default:
		return "", false
	}
}

// planFor builds the plan with the right physical choice for the
// query kind: SRS forces a sequential scan even on systems whose
// planner would pick the index, matching the paper's protocol of
// running query (1) before the index exists.
func (env *Env) planFor(s engine.System, q QueryKind, query string) (*sql.Plan, error) {
	opts := env.engines[s].PlanOptions()
	if q == SRS {
		opts.UseIndex = false
	}
	return sql.Prepare(env.database(s).Catalog, query, opts)
}

// Run measures one (system, query) cell: warm-up runs, counter reset,
// then one measured execution, exactly the warm-cache protocol of
// Section 4.3. Results are memoised per (system, query, selectivity).
func (env *Env) Run(s engine.System, q QueryKind) (Cell, error) {
	key := memoKey{s: s, q: q, sel: env.Opts.Selectivity}
	if env.memo != nil {
		if c, ok := env.memo[key]; ok {
			return c, nil
		}
	}
	c, err := env.run(s, q)
	if err == nil && env.memo != nil {
		env.memo[key] = c
	}
	return c, err
}

// processor returns the event sink a measurement feeds: the pipeline
// itself (batched drain), or its unbatched reference wrapper when the
// options ask for the per-event path.
func (env *Env) processor(pipe *xeon.Pipeline) trace.Processor {
	if env.Opts.Unbatched {
		return trace.Unbatched{Processor: pipe}
	}
	return pipe
}

func (env *Env) run(s engine.System, q QueryKind) (Cell, error) {
	query, ok := env.queryFor(s, q)
	if !ok {
		return Cell{}, fmt.Errorf("harness: system %s does not run %s", s, q)
	}
	e := env.engines[s]
	plan, err := env.planFor(s, q, query)
	if err != nil {
		return Cell{}, err
	}
	pipe := xeon.New(env.Opts.Config)
	proc := env.processor(pipe)
	e.ResetState()
	var res engine.Result
	for i := 0; i < env.Opts.Warmup; i++ {
		if res, err = e.Run(plan, proc); err != nil {
			return Cell{}, err
		}
	}
	pipe.ResetStats()
	if res, err = e.Run(plan, proc); err != nil {
		return Cell{}, err
	}
	b := pipe.Breakdown()
	if err := b.Validate(); err != nil {
		return Cell{}, fmt.Errorf("harness: %s/%s breakdown invalid: %w", s, q, err)
	}
	return Cell{System: s, Query: q, Breakdown: b, Rates: pipe.Rates(), Result: res}, nil
}

// RunAll measures every valid (system, query) cell.
func (env *Env) RunAll() ([]Cell, error) {
	var cells []Cell
	for _, q := range []QueryKind{SRS, IRS, SJ} {
		for _, s := range engine.Systems() {
			if _, ok := env.queryFor(s, q); !ok {
				continue
			}
			c, err := env.Run(s, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// RunTPCD runs the 17-query decision-support suite on one system and
// returns the summed breakdown (the paper reports TPC-D averages).
// Results are memoised.
func (env *Env) RunTPCD(s engine.System) (Cell, error) {
	key := memoKey{s: s, q: QueryKind(-1)}
	if env.memo != nil {
		if c, ok := env.memo[key]; ok {
			return c, nil
		}
	}
	c, err := env.runTPCD(s)
	if err == nil && env.memo != nil {
		env.memo[key] = c
	}
	return c, err
}

func (env *Env) runTPCD(s engine.System) (Cell, error) {
	e := env.engines[s]
	pipe := xeon.New(env.Opts.Config)
	proc := env.processor(pipe)
	e.ResetState()
	queries := env.Dims.TPCDQueries()
	// Warm-up pass over the suite.
	for _, q := range queries {
		if _, err := e.Query(q, proc); err != nil {
			return Cell{}, err
		}
	}
	pipe.ResetStats()
	for _, q := range queries {
		if _, err := e.Query(q, proc); err != nil {
			return Cell{}, err
		}
	}
	b := pipe.Breakdown()
	if err := b.Validate(); err != nil {
		return Cell{}, fmt.Errorf("harness: %s/TPC-D breakdown invalid: %w", s, err)
	}
	return Cell{System: s, Breakdown: b, Rates: pipe.Rates()}, nil
}

// RunTPCC runs the OLTP mix on one system.
func (env *Env) RunTPCC(s engine.System, txns int) (Cell, workload.TPCCStats, error) {
	dims := workload.DefaultTPCCDims()
	db, err := workload.BuildTPCC(dims)
	if err != nil {
		return Cell{}, workload.TPCCStats{}, err
	}
	e := engine.New(s, db.Catalog)
	pipe := xeon.New(env.Opts.Config)
	proc := env.processor(pipe)
	// Warm up with a slice of the mix.
	if _, err := workload.RunTPCC(db, e, proc, txns/4+1); err != nil {
		return Cell{}, workload.TPCCStats{}, err
	}
	pipe.ResetStats()
	stats, err := workload.RunTPCC(db, e, proc, txns)
	if err != nil {
		return Cell{}, stats, err
	}
	b := pipe.Breakdown()
	if err := b.Validate(); err != nil {
		return Cell{}, stats, fmt.Errorf("harness: %s/TPC-C breakdown invalid: %w", s, err)
	}
	return Cell{System: s, Breakdown: b, Rates: pipe.Rates()}, stats, nil
}

var _ trace.Processor = (*xeon.Pipeline)(nil)
