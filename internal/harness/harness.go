// Package harness reproduces the paper's experiments: it wires
// workload, engine and simulator together, applies the measurement
// protocol of Section 4.3 (warm the caches with runs of the query,
// then measure), and renders each figure and table of Section 5.
package harness

import (
	"context"
	"fmt"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/tracestore"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// QueryKind names the microbenchmark queries: the three of Section 3.3
// plus the scenario operators added on top of the paper's set, each a
// distinct access pattern through the same trace pipeline.
type QueryKind int

// The workload queries. The first three use the paper's
// abbreviations; the scenario kinds extend the set.
const (
	// SRS is the sequential range selection.
	SRS QueryKind = iota
	// IRS is the indexed range selection.
	IRS
	// SJ is the sequential join.
	SJ
	// GHJ is the Grace/hybrid hash join: both join inputs are
	// hash-partitioned to partition-sized working sets, then each
	// partition pair is joined through a reused in-memory table —
	// hash-bucket random access confined to partition-sized regions.
	GHJ
	// SAG is the sort-based aggregation: run generation over the
	// qualifying records, multi-way merge passes (sequential reads
	// strided across the merge fan-in), aggregation over the final
	// run.
	SAG
	// BRS is the B-tree range scan: root-to-leaf descent, then a
	// leaf-chain walk answering a COUNT(*) from the index alone — no
	// heap record is ever fetched.
	BRS
	// JSA is the join-sort-aggregate pipeline: the sequential join's
	// matches routed through an external sort before aggregation — two
	// composed operators (hash join feeding sort) no bespoke access
	// path ever covered; its result must equal SJ's.
	JSA
	// IXJ is the index-probe join: the equijoin restricted by a range
	// predicate on the join column, its probe side driven from the a2
	// index (descent plus leaf walk plus RID fetches) instead of a full
	// heap scan.
	IXJ
)

// String returns the query's abbreviation.
func (q QueryKind) String() string {
	switch q {
	case SRS:
		return "SRS"
	case IRS:
		return "IRS"
	case SJ:
		return "SJ"
	case GHJ:
		return "GHJ"
	case SAG:
		return "SAG"
	case BRS:
		return "BRS"
	case JSA:
		return "JSA"
	case IXJ:
		return "IXJ"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(q))
	}
}

// Options configure an experiment run.
type Options struct {
	// Scale shrinks the paper's dataset (1.0 = the paper's 1.2M-row R).
	// Per-record behaviour converges within a few thousand records.
	Scale float64
	// RecordSize is the R/S record width in bytes.
	RecordSize int
	// Selectivity of the range selections (the paper's default is 10%).
	Selectivity float64
	// Config is the simulated platform.
	Config xeon.Config
	// Warmup is how many unmeasured runs warm the caches (Section 4.3).
	Warmup int
	// Unbatched routes every event through the one-call-per-event
	// reference path instead of the batched pipeline drain, with
	// recording disabled (every run re-executes the engine). The
	// reference and batched paths see the identical event sequence and
	// must render byte-identical tables; the golden-file suite measures
	// both ways and diffs them. Slower — for verification, not for
	// experiments.
	Unbatched bool
	// Gang enables the multi-config gang drain: grid cells that differ
	// only in platform Config group into single work units measured in
	// one pass over their shared event stream through a
	// xeon.MultiPipeline (see Measure and RunGang). Off, every cell
	// drains its stream separately — the debugging reference; outputs
	// are byte-identical either way, which the golden suite checks.
	// DefaultOptions enables it.
	Gang bool
	// MaxRecordedEvents caps the event count of one record-once /
	// replay-many capture: a cell whose stream exceeds the cap falls
	// back to re-executing every run (so huge decision-support suites
	// cannot blow the heap). Zero means DefaultMaxRecordedEvents;
	// negative disables recording and replay entirely (the replay-smoke
	// CI step measures both settings and diffs the outputs, which must
	// be byte-identical). The retained footprint across captures is
	// bounded separately, in compressed bytes, by TraceCacheBytes.
	MaxRecordedEvents int
	// TraceCacheBytes budgets the per-worker trace cache in retained
	// arena bytes — compressed bytes, since that is what the arenas
	// occupy (raw bytes under UncompressedArena). Zero means
	// DefaultTraceCacheBytes; negative disables cross-cell retention
	// entirely (within-cell record/replay still works — captures just
	// release as soon as their cell finishes).
	TraceCacheBytes int
	// UncompressedArena keeps captures in the raw []Event chunk layout
	// instead of the columnar compressed arena. The decoded stream is
	// byte-identical either way — the compress-smoke CI step diffs the
	// rendered goldens across both settings — so this exists for that
	// diff and for measuring what the codec costs and saves
	// (BenchmarkCompressedReplay), not for experiments.
	UncompressedArena bool
	// Snapshot enables pipeline-state snapshotting (see warmstart.go):
	// post-warm-up machine states are memoized per (cell, platform) and
	// restored on revisits, and consecutive warm-up drains stop early at
	// a state fixed point. Outputs are byte-identical either way — the
	// golden suite renders both settings against the same files.
	// DefaultOptions enables it; it only engages when recording is on
	// (the re-execution fallback paths never snapshot).
	Snapshot bool
	// StoreDir, when non-empty, opens a persistent tracestore at that
	// directory: captured streams, cell tallies and post-warm-up
	// snapshots persist across processes, so a warm directory starts the
	// grid from disk instead of from zero. The env owns the store and
	// Close flushes it. Requires recording (MaxRecordedEvents >= 0).
	StoreDir string
	// Store hands the environment an already-open store instead of a
	// directory; the caller keeps ownership (and calls Flush). Measure
	// opens one store per run and shares it across workers this way.
	Store *tracestore.Store
	// Context, when non-nil, lets a long measurement be cancelled: the
	// grid checks it between cells and between re-execution runs inside
	// a cell, and stops with an error wrapping ctx.Err() at the first
	// check after cancellation. Cancellation is a barrier, never a
	// mid-drain interrupt — a run that is never cancelled produces
	// byte-identical output with or without a context, which the golden
	// matrix pins. Set by MeasureContext; leave nil for uncancellable
	// runs.
	Context context.Context
}

// DefaultMaxRecordedEvents is the default recording cap: 16Mi events.
// PR3 set it to 2Mi because a capture was a raw 32-byte-per-event
// arena and 2Mi (64 MiB) was the measured point where re-reading the
// arena cost more DRAM traffic and page-fault churn than regenerating
// the events cost in compute. The columnar codec moved that
// crossover: real engine streams encode to ~3.5 bytes/event (8.5-8.9x
// measured, docs/PERF.md), so 16Mi events is ~56 MiB compressed —
// the same memory footprint the old cap allowed, holding 8x the
// events. At the new cap the trade is measured at break-even on this
// host: the fused decode replays the 12M-event TPC-C capture within
// ~10% of full re-execution (BenchmarkCompressedReplay vs
// BenchmarkReplayVsExecute), while the capture now fits the worker's
// cache budget at all — so revisits skip the database rebuild and
// engine execution outright, and gang drains decode once for all K
// configurations. Streams past the cap — the sequential-scan sweeps
// and TPC-D suites — still fall back to re-execution, and the capped
// copy attempt before overflow detection stays bounded.
const DefaultMaxRecordedEvents = 16 << 20

// DefaultTraceCacheBytes is the default per-worker trace-cache
// budget: 64 MiB of retained compressed arena, the DRAM footprint the
// old 2Mi-raw-event cap allowed, now holding ~8x the events. Distinct
// from the per-capture event cap: the cap bounds one stream, the
// budget bounds what a worker retains across cells.
const DefaultTraceCacheBytes = 64 << 20

// maxRecorded resolves the recording cap: the explicit value, the
// default when zero, and -1 (recording disabled) when negative or when
// the unbatched reference path is selected.
func (o Options) maxRecorded() int {
	switch {
	case o.Unbatched || o.MaxRecordedEvents < 0:
		return -1
	case o.MaxRecordedEvents == 0:
		return DefaultMaxRecordedEvents
	default:
		return o.MaxRecordedEvents
	}
}

// traceCacheBytes resolves the cache budget: the explicit value, the
// default when zero, and 0 (retain nothing) when negative. A negative
// budget used to fall through as-is and underflow the cache's byte
// accounting; it now means "caching off", mirroring how a negative
// MaxRecordedEvents means "recording off".
func (o Options) traceCacheBytes() int {
	switch {
	case o.TraceCacheBytes < 0:
		return 0
	case o.TraceCacheBytes == 0:
		return DefaultTraceCacheBytes
	default:
		return o.TraceCacheBytes
	}
}

// Validate rejects option values the environment builders would panic
// on or silently misbehave with, so CLIs can fail with a usage error
// instead: scale outside (0, 1], selectivity outside [0, 1], a record
// size below the storage minimum.
func (o Options) Validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("harness: scale %v out of (0, 1]", o.Scale)
	}
	if o.Selectivity < 0 || o.Selectivity > 1 {
		return fmt.Errorf("harness: selectivity %v out of [0, 1]", o.Selectivity)
	}
	if o.RecordSize < storage.MinRecordSize {
		return fmt.Errorf("harness: record size %d below minimum %d", o.RecordSize, storage.MinRecordSize)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("harness: warmup %d negative", o.Warmup)
	}
	return nil
}

// DefaultOptions returns the paper's experimental setup at a
// simulation-friendly scale.
func DefaultOptions() Options {
	return Options{
		Scale:       0.01,
		RecordSize:  100,
		Selectivity: 0.10,
		Config:      xeon.DefaultConfig(),
		Warmup:      1,
		Gang:        true,
		Snapshot:    true,
	}
}

// Cell is one measured (system, query) combination.
type Cell struct {
	System    engine.System
	Query     QueryKind
	Breakdown *core.Breakdown
	Rates     xeon.HardwareRates
	Result    engine.Result
}

// Env holds the built databases and engines for one option set, so
// multiple experiments can share the (expensive) data generation.
//
// An Env is single-threaded, like the engines and pipelines under it:
// the concurrent grid gives each worker a private Env via EnvFactory.
type Env struct {
	Opts    Options
	Dims    workload.Dims
	nsm     *workload.Database
	pax     *workload.Database
	engines [4]*engine.Engine

	// memo caches measured cells at the env's own options, so several
	// figures over the same cells don't re-simulate.
	memo map[memoKey]Cell

	// subenvs caches environments rebuilt at other record sizes (the
	// record-size sweeps), keyed by record size.
	subenvs map[int]*Env

	// traces is the worker's record-once/replay-many cache: captured
	// event streams keyed by emission-relevant cell spec, shared with
	// the env's sub-environments and selectivity shifts. Nil when
	// recording is disabled.
	traces *traceCache

	// snaps memoizes post-warm-up pipeline states (see warmstart.go),
	// shared with sub-environments like traces. Nil when snapshotting
	// or recording is off.
	snaps *snapMemo

	// store is the persistent trace/tally store, nil when none is
	// configured. ownStore marks a store the env opened itself from
	// Options.StoreDir (Close flushes it); a store handed in through
	// Options.Store stays owned by the caller.
	store    *tracestore.Store
	ownStore bool

	// oltpBuf is the reusable emission buffer OLTP runs fill, re-bound
	// per run instead of reallocated per run.
	oltpBuf *trace.Buffer
}

type memoKey struct {
	s   engine.System
	q   QueryKind
	sel float64
	cfg xeon.Config
}

// Dims returns the dataset dimensions these options build, without
// building the data.
func (o Options) Dims() workload.Dims {
	dims := workload.PaperDims()
	dims.RecordSize = o.RecordSize
	return dims.Scaled(o.Scale)
}

// NewEnv builds the two databases (row layout for systems A/C/D,
// PAX layout for the cache-conscious System B) and four engines.
func NewEnv(opts Options) (*Env, error) {
	dims := opts.Dims()

	nsm, err := workload.Build(dims, storage.NSM)
	if err != nil {
		return nil, err
	}
	if err := nsm.BuildIndexes(); err != nil {
		return nil, err
	}
	pax, err := workload.Build(dims, storage.PAX)
	if err != nil {
		return nil, err
	}
	if err := pax.BuildIndexes(); err != nil {
		return nil, err
	}
	env := &Env{Opts: opts, Dims: dims, nsm: nsm, pax: pax,
		memo: make(map[memoKey]Cell), subenvs: make(map[int]*Env)}
	if opts.maxRecorded() >= 0 {
		env.traces = newTraceCache(opts.traceCacheBytes())
		if opts.Snapshot {
			env.snaps = newSnapMemo(snapMemoCap)
		}
		// The persistent store rides on recording: without captures there
		// is nothing sound to persist or replay.
		if opts.Store != nil {
			env.store = opts.Store
		} else if opts.StoreDir != "" {
			store, err := tracestore.Open(opts.StoreDir)
			if err != nil {
				return nil, err
			}
			env.store = store
			env.ownStore = true
		}
	}
	for _, s := range engine.Systems() {
		env.engines[s] = engine.New(s, env.database(s).Catalog)
	}
	return env, nil
}

// database returns the database a system runs over (B gets PAX).
func (env *Env) database(s engine.System) *workload.Database {
	if engine.DefaultProfile(s).DataLayout == storage.PAX {
		return env.pax
	}
	return env.nsm
}

// Engine returns the engine for a system.
func (env *Env) Engine(s engine.System) *engine.Engine { return env.engines[s] }

// queryFor returns the SQL and plan for a (system, query) pair, and
// whether the pair is valid (System A skips the index-based kinds IRS
// and BRS: it does not use the index, Section 5.1).
func (env *Env) queryFor(s engine.System, q QueryKind) (string, bool) {
	switch q {
	case SRS:
		return env.Dims.QuerySRS(env.Opts.Selectivity), true
	case IRS:
		if !engine.DefaultProfile(s).UseIndex {
			return "", false
		}
		return env.Dims.QueryIRS(env.Opts.Selectivity), true
	case SJ:
		return env.Dims.QuerySJ(), true
	case GHJ:
		return env.Dims.QueryGHJ(), true
	case SAG:
		return env.Dims.QuerySAG(env.Opts.Selectivity), true
	case BRS:
		if !engine.DefaultProfile(s).UseIndex {
			return "", false
		}
		return env.Dims.QueryBRS(env.Opts.Selectivity), true
	case JSA:
		return env.Dims.QueryJSA(), true
	case IXJ:
		if !engine.DefaultProfile(s).UseIndex {
			return "", false
		}
		return env.Dims.QueryIXJ(env.Opts.Selectivity), true
	default:
		return "", false
	}
}

// planFor builds the plan with the right physical choice for the
// query kind: SRS (and SAG, which sorts the scan's output) forces a
// sequential scan even on systems whose planner would pick the index,
// matching the paper's protocol of running query (1) before the index
// exists, and the scenario kinds pin their operator with a plan hint.
func (env *Env) planFor(s engine.System, q QueryKind, query string) (*sql.Plan, error) {
	opts := env.engines[s].PlanOptions()
	switch q {
	case SRS, SAG:
		opts.UseIndex = false
	case BRS, IXJ:
		opts.UseIndex = true
	}
	plan, err := sql.Prepare(env.database(s).Catalog, query, opts)
	if err != nil {
		return nil, err
	}
	switch q {
	case GHJ:
		plan.Hint = sql.HintGraceJoin
	case SAG:
		plan.Hint = sql.HintSortAgg
	case BRS:
		plan.Hint = sql.HintIndexOnly
	case JSA:
		plan.Hint = sql.HintJoinSortAgg
	case IXJ:
		plan.Hint = sql.HintIndexProbeJoin
	}
	return plan, nil
}

// Run measures one (system, query) cell: warm-up runs, counter reset,
// then one measured run, the warm-cache protocol of Section 4.3 —
// with the engine executing once and the recorded stream replayed for
// the repeat runs (see run). Results are memoised per (system, query,
// selectivity, platform).
func (env *Env) Run(s engine.System, q QueryKind) (Cell, error) {
	return env.runMemo(s, q, env.Opts.Config)
}

// ctxErr reports the environment's cancellation state: nil without a
// context (or before cancellation), an error wrapping ctx.Err() after.
// It is the check every between-cells and between-runs barrier makes;
// the wrapped error satisfies errors.Is(err, context.Canceled) or
// (err, context.DeadlineExceeded).
func (env *Env) ctxErr() error {
	if ctx := env.Opts.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("harness: cancelled: %w", err)
		}
	}
	return nil
}

// runMemo is Run on an explicit platform configuration.
func (env *Env) runMemo(s engine.System, q QueryKind, cfg xeon.Config) (Cell, error) {
	if err := env.ctxErr(); err != nil {
		return Cell{}, err
	}
	key := memoKey{s: s, q: q, sel: env.Opts.Selectivity, cfg: cfg}
	if env.memo != nil {
		if c, ok := env.memo[key]; ok {
			return c, nil
		}
	}
	c, err := env.run(s, q, cfg)
	if err == nil && env.memo != nil {
		env.memo[key] = c
	}
	return c, err
}

// processor returns the event sink a measurement feeds: the pipeline
// itself (batched drain), or its unbatched reference wrapper when the
// options ask for the per-event path.
func (env *Env) processor(p trace.Processor) trace.Processor {
	if env.Opts.Unbatched {
		return trace.Unbatched{Processor: p}
	}
	return p
}

// newRecorder returns a recorder capturing the sink's input into the
// worker's trace arena — columnar-compressed unless the options keep
// the raw layout — or nil when recording is disabled.
func (env *Env) newRecorder(sink trace.Processor) *trace.Recorder {
	if env.traces == nil {
		return nil
	}
	rec := trace.NewRecorder(sink, env.Opts.maxRecorded())
	rec.SetRawArena(env.Opts.UncompressedArena)
	return rec
}

// finishCell assembles and validates the measured breakdown.
func finishCell(s engine.System, q QueryKind, what string, pipe *xeon.Pipeline, res engine.Result) (Cell, error) {
	b := pipe.Breakdown()
	if err := b.Validate(); err != nil {
		return Cell{}, fmt.Errorf("harness: %s/%s breakdown invalid: %w", s, what, err)
	}
	return Cell{System: s, Query: q, Breakdown: b, Rates: pipe.Rates(), Result: res}, nil
}

// run measures one (system, query) cell under the record-once /
// replay-many protocol. Every run of the cell — warm-up or measured —
// starts from reset engine emission state, so every run emits the
// byte-identical event stream and the stream is a pure function of the
// cell spec. The first execution is captured by a Recorder interposed
// on the batch flush path; the remaining warm-up runs and the measured
// run drain the captured chunks straight back into the pipeline with
// zero re-emission. If recording is disabled (Unbatched, negative
// MaxRecordedEvents) or the stream overflows the cap, every run
// re-executes the engine instead — the slower path with the identical
// event sequence, which the replay-smoke CI step diffs against.
func (env *Env) run(s engine.System, q QueryKind, cfg xeon.Config) (Cell, error) {
	query, ok := env.queryFor(s, q)
	if !ok {
		return Cell{}, fmt.Errorf("harness: system %s does not run %s", s, q)
	}
	runs := env.Opts.Warmup + 1
	key := CellSpec{Kind: CellMicro, System: s, Query: q,
		Selectivity: env.Opts.Selectivity, RecordSize: env.Opts.RecordSize}

	// A stored tally is the deepest warm start: the finished breakdown
	// for this exact (cell, platform, warm-up count), written by a
	// previous process, with no simulation at all.
	if cell, _, ok := env.lookupTally(key, cfg, s, q); ok {
		return cell, nil
	}

	pipe := xeon.New(cfg)

	// A capture hit — in this worker's cache or loaded from the store —
	// skips the engine entirely: the recorded stream feeds every run of
	// the warm-cache protocol, with the snapshot layer skipping the
	// runs whose outcome is already known.
	if ct, fromStore := env.cellStream(key); ct != nil {
		env.drainWarmSolo(pipe, ct.stream, key, cfg, runs, 0)
		cell, err := finishCell(s, q, q.String(), pipe, ct.result)
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putTally(key, cfg, cell, nil)
		}
		return cell, err
	}

	e := env.engines[s]
	plan, err := env.planFor(s, q, query)
	if err != nil {
		return Cell{}, err
	}

	// First execution, captured in flight when recording is enabled.
	rec := env.newRecorder(pipe)
	var proc trace.Processor = env.processor(pipe)
	if rec != nil {
		proc = rec
	}
	if runs == 1 {
		pipe.ResetStats() // the first execution is the measured run
	}
	e.ResetState()
	res, err := e.Run(plan, proc)
	if err != nil {
		return Cell{}, err
	}

	// Remaining warm-up runs and the measured run: replay the capture,
	// or re-execute from reset state when no capture exists. The
	// re-execution loop is the slow leg, so it checks for cancellation
	// between runs; replay drains are pure in-memory passes and run to
	// completion (nothing to leak, nothing slow to interrupt).
	if rec != nil && !rec.Overflowed() {
		env.drainWarmSolo(pipe, rec.Recording(), key, cfg, runs, 1)
	} else {
		for i := 1; i < runs; i++ {
			if err := env.ctxErr(); err != nil {
				return Cell{}, err
			}
			if i == runs-1 {
				pipe.ResetStats()
			}
			e.ResetState()
			if res, err = e.Run(plan, env.processor(pipe)); err != nil {
				return Cell{}, err
			}
		}
	}
	if rec != nil && !rec.Overflowed() {
		ct := &cellTrace{stream: rec.Recording(), result: res}
		env.putStoredTrace(key, ct)
		env.traces.store(key, ct)
	}
	cell, err := finishCell(s, q, q.String(), pipe, res)
	if err == nil {
		env.putTally(key, cfg, cell, nil)
	}
	return cell, err
}

// RunAll measures every valid (system, query) cell, scenario kinds
// included.
func (env *Env) RunAll() ([]Cell, error) {
	var cells []Cell
	for _, q := range append(append([]QueryKind{}, allQueries...), scenarioQueries...) {
		for _, s := range engine.Systems() {
			if _, ok := env.queryFor(s, q); !ok {
				continue
			}
			c, err := env.Run(s, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// RunTPCD runs the 17-query decision-support suite on one system and
// returns the summed breakdown (the paper reports TPC-D averages).
// Results are memoised.
func (env *Env) RunTPCD(s engine.System) (Cell, error) {
	return env.runTPCDMemo(s, env.Opts.Config)
}

// runTPCDMemo is RunTPCD on an explicit platform configuration.
func (env *Env) runTPCDMemo(s engine.System, cfg xeon.Config) (Cell, error) {
	if err := env.ctxErr(); err != nil {
		return Cell{}, err
	}
	key := memoKey{s: s, q: QueryKind(-1), cfg: cfg}
	if env.memo != nil {
		if c, ok := env.memo[key]; ok {
			return c, nil
		}
	}
	c, err := env.runTPCD(s, cfg)
	if err == nil && env.memo != nil {
		env.memo[key] = c
	}
	return c, err
}

// runTPCD measures the decision-support suite under the same
// record-once protocol as run: one pass over the 17 queries is one
// "run" of the cell, every pass starts from reset engine state and so
// emits the identical stream, and the measured pass replays the
// captured warm-up pass (planning included — replay skips the SQL
// front end entirely).
func (env *Env) runTPCD(s engine.System, cfg xeon.Config) (Cell, error) {
	// The suite's stream depends on the dataset dimensions but not on
	// the selectivity knob (the 17 queries are fixed), so selectivity
	// shifts of the same environment share one capture.
	key := CellSpec{Kind: CellTPCD, System: s, RecordSize: env.Opts.RecordSize}

	if cell, _, ok := env.lookupTally(key, cfg, s, 0); ok {
		return cell, nil
	}

	pipe := xeon.New(cfg)
	// The TPC-D protocol is one warm-up pass plus the measured pass —
	// two runs, independent of Options.Warmup.
	const tpcdRuns = 2

	if ct, fromStore := env.cellStream(key); ct != nil {
		env.drainWarmSolo(pipe, ct.stream, key, cfg, tpcdRuns, 0)
		cell, err := finishCell(s, 0, "TPC-D", pipe, engine.Result{})
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putTally(key, cfg, cell, nil)
		}
		return cell, err
	}

	e := env.engines[s]
	queries := env.Dims.TPCDQueries()
	rec := env.newRecorder(pipe)
	var proc trace.Processor = env.processor(pipe)
	if rec != nil {
		proc = rec
	}
	// Warm-up pass over the suite, captured in flight.
	e.ResetState()
	for _, q := range queries {
		if _, err := e.Query(q, proc); err != nil {
			return Cell{}, err
		}
	}
	if rec != nil && !rec.Overflowed() {
		env.drainWarmSolo(pipe, rec.Recording(), key, cfg, tpcdRuns, 1)
		ct := &cellTrace{stream: rec.Recording()}
		env.putStoredTrace(key, ct)
		env.traces.store(key, ct)
	} else {
		pipe.ResetStats()
		e.ResetState()
		for _, q := range queries {
			if _, err := e.Query(q, env.processor(pipe)); err != nil {
				return Cell{}, err
			}
		}
	}
	cell, err := finishCell(s, 0, "TPC-D", pipe, engine.Result{})
	if err == nil {
		env.putTally(key, cfg, cell, nil)
	}
	return cell, err
}

// RunTPCC runs the OLTP mix on one system. Unlike the read-only
// cells, the mix mutates the database as it runs, so the warm-up slice
// and the measured mix emit different streams and a single call
// executes both for real; what the recorder buys here is the
// cross-cell cache: a revisit of the same (system, txns) cell replays
// both captured phases into a fresh pipeline without rebuilding the
// database or executing a single transaction.
func (env *Env) RunTPCC(s engine.System, txns int) (Cell, workload.TPCCStats, error) {
	return env.runTPCCCfg(s, txns, env.Opts.Config)
}

// runTPCCCfg is RunTPCC on an explicit platform configuration.
func (env *Env) runTPCCCfg(s engine.System, txns int, cfg xeon.Config) (Cell, workload.TPCCStats, error) {
	if err := env.ctxErr(); err != nil {
		return Cell{}, workload.TPCCStats{}, err
	}
	key := CellSpec{Kind: CellTPCC, System: s, Txns: txns}
	if cell, stats, ok := env.lookupTally(key, cfg, s, 0); ok && stats != nil {
		return cell, *stats, nil
	}

	pipe := xeon.New(cfg)
	if ct, fromStore := env.cellStream(key); ct != nil {
		env.warmOLTP(pipe, ct, key, cfg)
		pipe.ResetStats()
		ct.stream.Drain(pipe)
		cell, err := finishCell(s, 0, "TPC-C", pipe, engine.Result{})
		stats := ct.stats
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putTally(key, cfg, cell, &stats)
		}
		return cell, stats, err
	}

	stats, err := env.runOLTP(s, txns, pipe, key, func() {
		if env.snapshotOn() {
			env.snapStore(key, cfg, pipe.Snapshot(nil))
		}
	})
	if err != nil {
		return Cell{}, stats, err
	}
	cell, err := finishCell(s, 0, "TPC-C", pipe, engine.Result{})
	if err == nil {
		env.putTally(key, cfg, cell, &stats)
	}
	return cell, stats, err
}

// measureSink is the drain a measurement protocol feeds: a solo
// pipeline or a multi-config gang.
type measureSink interface {
	trace.BatchProcessor
	ResetStats()
}

// runOLTP executes the OLTP mix for real: warm-up slice, counter
// reset, measured mix, with both phases captured for cache revisits.
// The whole mix emits through the env's reusable buffer (re-bound per
// phase, never reallocated), preserving today's program order exactly.
// meas is the drain — a solo pipeline or a gang — whose counters the
// caller extracts afterwards. postWarm runs between the warm-up
// slice's flush and the counter reset: the caller's chance to
// snapshot the post-warm-up machine state for future revisits.
func (env *Env) runOLTP(s engine.System, txns int, meas measureSink, key CellSpec, postWarm func()) (workload.TPCCStats, error) {
	dims := workload.DefaultTPCCDims()
	db, err := workload.BuildTPCC(dims)
	if err != nil {
		return workload.TPCCStats{}, err
	}
	e := engine.New(s, db.Catalog)

	sink := func(rec *trace.Recorder) trace.Processor {
		if rec != nil {
			return rec
		}
		return env.processor(meas)
	}
	// Warm up with a slice of the mix.
	warmRec := env.newRecorder(meas)
	buf := env.emitBuffer(sink(warmRec))
	if _, err := workload.RunTPCC(db, e, buf, txns/4+1); err != nil {
		return workload.TPCCStats{}, err
	}
	buf.Flush()
	if postWarm != nil {
		postWarm()
	}
	meas.ResetStats()
	var measRec *trace.Recorder
	if warmRec != nil && !warmRec.Overflowed() {
		// Only worth capturing the measured mix if the warm-up slice
		// fit: a cache entry needs both phases.
		measRec = env.newRecorder(meas)
	}
	buf.Bind(sink(measRec))
	stats, err := workload.RunTPCC(db, e, buf, txns)
	if err != nil {
		return stats, err
	}
	buf.Flush()
	if warmRec != nil && !warmRec.Overflowed() {
		if measRec != nil && !measRec.Overflowed() {
			ct := &cellTrace{
				warm: warmRec.Recording(), stream: measRec.Recording(), stats: stats}
			env.putStoredTrace(key, ct)
			env.traces.store(key, ct)
		} else {
			// The measured mix overflowed its cap, so no cache entry forms
			// and the warm-slice capture is useless on its own: release its
			// arena back to the free lists now instead of holding it until
			// the env dies. (The overflowed recorder released its own.)
			warmRec.Recording().Release()
		}
	}
	return stats, nil
}

// emitBuffer returns the env's reusable emission buffer bound to sink
// (allocating it on first use), the fix for per-run flush-path churn:
// OLTP runs used to allocate a fresh buffer per phase per call.
func (env *Env) emitBuffer(sink trace.Processor) *trace.Buffer {
	if env.oltpBuf == nil {
		env.oltpBuf = trace.NewBuffer(sink, 0)
	} else {
		env.oltpBuf.Bind(sink)
	}
	return env.oltpBuf
}

// finishGang extracts one cell per ganged configuration from the
// multi-config drain, in unit order.
func finishGang(unit []CellSpec, what string, multi *xeon.MultiPipeline, res engine.Result) ([]Cell, error) {
	cells := make([]Cell, len(unit))
	for i := range unit {
		c, err := finishCell(unit[i].System, unit[i].Query, what, multi.Pipe(i), res)
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	return cells, nil
}

// runGangMicro measures one micro cell's gang: K platform
// configurations over the identical emitted stream, under exactly the
// protocol of run — every run starts from reset engine state, the
// first execution is captured in flight, and warm-up plus measured
// runs drain the capture. One pass over each stream feeds all K
// configurations, so the engine executes (or the arena is read) once
// instead of K times; if the stream overflows the recording cap, the
// fallback re-executes the engine per run, still emitting once for
// the whole gang.
func (env *Env) runGangMicro(unit []CellSpec, cfgs []xeon.Config) ([]Cell, error) {
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	s, q := unit[0].System, unit[0].Query
	query, ok := env.queryFor(s, q)
	if !ok {
		return nil, fmt.Errorf("harness: system %s does not run %s", s, q)
	}
	runs := env.Opts.Warmup + 1
	key := CellSpec{Kind: CellMicro, System: s, Query: q,
		Selectivity: env.Opts.Selectivity, RecordSize: env.Opts.RecordSize}

	if cells, ok := env.lookupGangTallies(unit, cfgs, s, q); ok {
		return cells, nil
	}

	multi := xeon.NewMulti(cfgs)

	if ct, fromStore := env.cellStream(key); ct != nil {
		env.drainWarmGang(multi, ct.stream, key, cfgs, runs, 0)
		cells, err := finishGang(unit, q.String(), multi, ct.result)
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putGangTallies(unit, cfgs, cells, nil)
		}
		return cells, err
	}

	e := env.engines[s]
	plan, err := env.planFor(s, q, query)
	if err != nil {
		return nil, err
	}

	rec := env.newRecorder(multi)
	var proc trace.Processor = multi
	if rec != nil {
		proc = rec
	}
	if runs == 1 {
		multi.ResetStats() // the first execution is the measured run
	}
	e.ResetState()
	res, err := e.Run(plan, proc)
	if err != nil {
		return nil, err
	}

	if rec != nil && !rec.Overflowed() {
		env.drainWarmGang(multi, rec.Recording(), key, cfgs, runs, 1)
	} else {
		for i := 1; i < runs; i++ {
			if err := env.ctxErr(); err != nil {
				return nil, err
			}
			if i == runs-1 {
				multi.ResetStats()
			}
			e.ResetState()
			if res, err = e.Run(plan, multi); err != nil {
				return nil, err
			}
		}
	}
	if rec != nil && !rec.Overflowed() {
		ct := &cellTrace{stream: rec.Recording(), result: res}
		env.putStoredTrace(key, ct)
		env.traces.store(key, ct)
	}
	cells, err := finishGang(unit, q.String(), multi, res)
	if err == nil {
		env.putGangTallies(unit, cfgs, cells, nil)
	}
	return cells, err
}

// runGangTPCD measures one system's TPC-D gang under the protocol of
// runTPCD: a captured warm-up pass replayed for the measured pass,
// re-execution when the suite's stream overflows the cap — either way
// one emission or arena pass for all K configurations.
func (env *Env) runGangTPCD(unit []CellSpec, cfgs []xeon.Config) ([]Cell, error) {
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	s := unit[0].System
	key := CellSpec{Kind: CellTPCD, System: s, RecordSize: env.Opts.RecordSize}

	if cells, ok := env.lookupGangTallies(unit, cfgs, s, 0); ok {
		return cells, nil
	}

	multi := xeon.NewMulti(cfgs)
	const tpcdRuns = 2

	if ct, fromStore := env.cellStream(key); ct != nil {
		env.drainWarmGang(multi, ct.stream, key, cfgs, tpcdRuns, 0)
		cells, err := finishGang(unit, "TPC-D", multi, engine.Result{})
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putGangTallies(unit, cfgs, cells, nil)
		}
		return cells, err
	}

	e := env.engines[s]
	queries := env.Dims.TPCDQueries()
	rec := env.newRecorder(multi)
	var proc trace.Processor = multi
	if rec != nil {
		proc = rec
	}
	e.ResetState()
	for _, q := range queries {
		if _, err := e.Query(q, proc); err != nil {
			return nil, err
		}
	}
	if rec != nil && !rec.Overflowed() {
		env.drainWarmGang(multi, rec.Recording(), key, cfgs, tpcdRuns, 1)
		ct := &cellTrace{stream: rec.Recording()}
		env.putStoredTrace(key, ct)
		env.traces.store(key, ct)
	} else {
		multi.ResetStats()
		e.ResetState()
		for _, q := range queries {
			if _, err := e.Query(q, multi); err != nil {
				return nil, err
			}
		}
	}
	cells, err := finishGang(unit, "TPC-D", multi, engine.Result{})
	if err == nil {
		env.putGangTallies(unit, cfgs, cells, nil)
	}
	return cells, err
}

// runGangTPCC measures one (system, txns) OLTP gang: the mix executes
// once (see runOLTP) with every configuration draining the emitted
// stream, or replays a cached capture's two phases into the whole
// gang.
func (env *Env) runGangTPCC(unit []CellSpec, cfgs []xeon.Config) ([]Cell, error) {
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	s, txns := unit[0].System, unit[0].Txns
	key := CellSpec{Kind: CellTPCC, System: s, Txns: txns}

	if cells, ok := env.lookupGangTallies(unit, cfgs, s, 0); ok {
		return cells, nil
	}

	multi := xeon.NewMulti(cfgs)

	if ct, fromStore := env.cellStream(key); ct != nil {
		env.warmOLTPGang(multi, ct, key, cfgs)
		multi.ResetStats()
		ct.stream.Drain(multi)
		cells, err := finishGang(unit, "TPC-C", multi, engine.Result{})
		stats := ct.stats
		if fromStore {
			env.traces.store(key, ct)
		}
		if err == nil {
			env.putGangTallies(unit, cfgs, cells, &stats)
		}
		return cells, err
	}

	stats, err := env.runOLTP(s, txns, multi, key, func() {
		if env.snapshotOn() {
			st := multi.Snapshot(nil)
			for i, cfg := range cfgs {
				env.snapStore(key, cfg, st.At(i))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	cells, err := finishGang(unit, "TPC-C", multi, engine.Result{})
	if err == nil {
		env.putGangTallies(unit, cfgs, cells, &stats)
	}
	return cells, err
}

var _ trace.Processor = (*xeon.Pipeline)(nil)
