package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wheretime/internal/engine"
)

// The golden-file regression suite: every experiment table the paper
// reproduction renders is pinned, byte for byte, under testdata/. Any
// refactor of the trace/engine/simulator stack that changes a single
// rendered figure fails here first — this is the safety net the
// batched pipeline was built behind.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/harness -run TestGoldenFiles -update
//
// and review the diff like any other code change.

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenOptions is the configuration the goldens are rendered at: the
// default paper setup at simulation scale.
func goldenOptions() Options { return DefaultOptions() }

// renderGolden measures the full grid once and renders every
// registered experiment, returning experiment name -> rendered output.
func renderGolden(t *testing.T, opts Options) map[string]string {
	t.Helper()
	exps := Experiments()
	rendered, err := RunExperiments(opts, exps, DefaultParallelism())
	if err != nil {
		t.Fatalf("measuring experiment grid: %v", err)
	}
	out := make(map[string]string, len(exps))
	for i, e := range exps {
		var sb strings.Builder
		fmt.Fprintf(&sb, "== %s — %s ==\n\n", e.Name, e.Paper)
		for _, tab := range rendered[i] {
			sb.WriteString(tab.Render())
			sb.WriteString("\n")
		}
		out[e.Name] = sb.String()
	}
	return out
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

// TestGoldenFiles renders every experiment through the batched
// pipeline and diffs the output against the checked-in goldens.
func TestGoldenFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	got := renderGolden(t, goldenOptions())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			path := goldenPath(e.Name)
			if *update {
				if err := os.WriteFile(path, []byte(got[e.Name]), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("%s output drifted from golden %s\n--- got ---\n%s--- want ---\n%s",
					e.Name, path, got[e.Name], want)
			}
		})
	}
}

// TestUnbatchedMatchesGoldens renders the same grid through the
// one-call-per-event reference path and diffs it against the same
// goldens: the tentpole equivalence — batched and unbatched pipelines
// must be byte-identical — asserted end to end on every figure.
func TestUnbatchedMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	opts := goldenOptions()
	opts.Unbatched = true
	got := renderGolden(t, opts)
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden (run TestGoldenFiles with -update first): %v", err)
			}
			if got[e.Name] != string(want) {
				t.Errorf("unbatched reference output differs from batched golden for %s", e.Name)
			}
		})
	}
}

// TestBatchedMatchesReferenceSubset is the -short safety net: one
// microbenchmark cell measured both ways must agree exactly on every
// counter and stall component, not just on rendered digits.
func TestBatchedMatchesReferenceSubset(t *testing.T) {
	opts := goldenOptions()
	opts.Scale = 0.002
	batched, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Unbatched = true
	reference, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []QueryKind{SRS, SJ} {
		b, err := batched.RunSpec(microCell(batched.Opts, engine.SystemD, q))
		if err != nil {
			t.Fatal(err)
		}
		r, err := reference.RunSpec(microCell(reference.Opts, engine.SystemD, q))
		if err != nil {
			t.Fatal(err)
		}
		if b.Breakdown.Counts != r.Breakdown.Counts {
			t.Errorf("%s: batched counts differ from reference:\n got %+v\nwant %+v",
				q, b.Breakdown.Counts, r.Breakdown.Counts)
		}
		if b.Breakdown.Cycles != r.Breakdown.Cycles {
			t.Errorf("%s: batched stall cycles differ from reference:\n got %v\nwant %v",
				q, b.Breakdown.Cycles, r.Breakdown.Cycles)
		}
		if b.Rates != r.Rates {
			t.Errorf("%s: batched hardware rates differ from reference", q)
		}
	}
}
