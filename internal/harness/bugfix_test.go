package harness

import (
	"strings"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/trace"
)

// Regression coverage for the options/CLI bugfix sweep: the negative
// trace-cache budget fall-through, Options.Validate, and the overflow
// paths' buffer accounting.

// TestTraceCacheBytesResolution pins the budget resolution table,
// including the previously-broken negative case (a negative value
// used to fall through to itself and underflow the cache arithmetic;
// it now means "retain nothing", mirroring MaxRecordedEvents < 0).
func TestTraceCacheBytesResolution(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 0}, {-1 << 30, 0}, {0, DefaultTraceCacheBytes}, {1 << 20, 1 << 20},
	} {
		o := DefaultOptions()
		o.TraceCacheBytes = tc.in
		if got := o.traceCacheBytes(); got != tc.want {
			t.Errorf("traceCacheBytes(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestTraceCacheDisabledRetainsNothing runs cells with a negative
// budget: recording (and within-cell replay) still work, results
// match a default environment, but nothing is retained across cells.
func TestTraceCacheDisabledRetainsNothing(t *testing.T) {
	opts := replayTestOptions()
	opts.TraceCacheBytes = -1
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if env.traces == nil {
		t.Fatal("negative budget must disable retention, not recording itself")
	}
	ref, err := NewEnv(replayTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []QueryKind{SRS, SJ, SAG} {
		got, err := env.Run(engine.SystemD, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := ref.Run(engine.SystemD, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Breakdown.Counts != want.Breakdown.Counts {
			t.Errorf("%s: counts under disabled cache differ from default env", q)
		}
		if len(env.traces.cells) != 0 {
			t.Errorf("%s: cache retained %d captures under a negative budget", q, len(env.traces.cells))
		}
	}
	if len(ref.traces.cells) == 0 {
		t.Error("reference env retained nothing — the comparison proves nothing")
	}
}

// TestOptionsValidate pins the parameter checks the CLIs rely on
// (before these, out-of-range -scale/-selectivity panicked deep in
// workload.Dims instead of returning a usage error).
func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []struct {
		mod  func(*Options)
		frag string
	}{
		{func(o *Options) { o.Scale = 0 }, "scale"},
		{func(o *Options) { o.Scale = 1.5 }, "scale"},
		{func(o *Options) { o.Scale = -0.1 }, "scale"},
		{func(o *Options) { o.Selectivity = -0.01 }, "selectivity"},
		{func(o *Options) { o.Selectivity = 1.01 }, "selectivity"},
		{func(o *Options) { o.RecordSize = 4 }, "record size"},
		{func(o *Options) { o.Warmup = -1 }, "warmup"},
	}
	for _, tc := range bad {
		o := DefaultOptions()
		tc.mod(&o)
		err := o.Validate()
		if err == nil {
			t.Errorf("options %+v validated", o)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("error %q does not name %q", err, tc.frag)
		}
	}
}

// TestOverflowReleasesAllBuffers pins the leak audit for the overflow
// fallback paths: with a cap small enough that every capture is
// abandoned mid-stream, each borrowed staging chunk, encoded buffer
// and decode block must return to its free list by the time the runs
// finish. A stranded buffer here is the slow arena leak the
// LiveBuffers counters exist to catch.
func TestOverflowReleasesAllBuffers(t *testing.T) {
	opts := replayTestOptions()
	opts.MaxRecordedEvents = 1000 // far below any cell's stream: every capture overflows
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	c0, e0, b0 := trace.LiveBuffers()
	for _, q := range []QueryKind{SRS, IRS, SJ, GHJ, SAG, BRS, JSA, IXJ} {
		for _, s := range engine.Systems() {
			if !validMicro(s, q) {
				continue
			}
			if _, err := env.Run(s, q); err != nil {
				t.Fatalf("%s/%s: %v", s, q, err)
			}
		}
	}
	if _, err := env.RunTPCD(engine.SystemD); err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.RunTPCC(engine.SystemD, 60); err != nil {
		t.Fatal(err)
	}
	if len(env.traces.cells) != 0 {
		t.Errorf("overflowed captures were retained: %d cache entries", len(env.traces.cells))
	}
	c1, e1, b1 := trace.LiveBuffers()
	if c1 != c0 || e1 != e0 || b1 != b0 {
		t.Errorf("buffers leaked across overflowed captures: chunks %d->%d, encBufs %d->%d, blocks %d->%d",
			c0, c1, e0, e1, b0, b1)
	}
}
