package sql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the lexer and parser with arbitrary byte strings.
// The contract under fuzzing is total: Parse must return a statement
// or an error for every input — no panics, no hangs — and on success
// the statement must satisfy the parser's own postconditions (the
// invariants the planner relies on without re-checking).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The paper's workload shapes.
		"select avg(a3) from r where a2 < 50",
		"SELECT avg(R.a3) FROM R, S WHERE R.a2 = S.a1 AND R.a2 < 50;",
		"select count(*) from r",
		"select sum(a1) from r where a1 >= 10 and a1 < 20",
		"create table r (a1 integer not null, a2 integer, a3 integer)",
		// Near-miss malformations.
		"select avg() from r",
		"select avg(a3 from r",
		"select avg(*) from r",
		"create table t ()",
		"create table t (c integer,)",
		"select count(*) from a, b, c",
		"select min(x.y.z) from t",
		"select max(a) from t where a <> ",
		"select sum(a) from t where 1 < a",
		"select avg(a) from t where a < 99999999999999999999",
		";;",
		"",
		"\x00",
		"select avg(\xff) from r",
		"select avg(a) from t where a < -1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			if stmt != nil {
				t.Fatalf("Parse(%q) returned both a statement and an error", src)
			}
			return
		}
		switch s := stmt.(type) {
		case *CreateStmt:
			if s.Table == "" {
				t.Fatalf("Parse(%q): CREATE with empty table name", src)
			}
			if len(s.Columns) == 0 {
				t.Fatalf("Parse(%q): CREATE with no columns", src)
			}
			for _, c := range s.Columns {
				if c.Name == "" {
					t.Fatalf("Parse(%q): CREATE with empty column name", src)
				}
			}
		case *SelectStmt:
			if len(s.Tables) == 0 || len(s.Tables) > 2 {
				t.Fatalf("Parse(%q): SELECT with %d tables", src, len(s.Tables))
			}
			if s.Star && s.Agg != AggCount {
				t.Fatalf("Parse(%q): star argument on non-count aggregate", src)
			}
			if !s.Star && s.AggCol.Column == "" {
				t.Fatalf("Parse(%q): aggregate over empty column ref", src)
			}
			for _, p := range s.Where {
				if p.Left.Column == "" {
					t.Fatalf("Parse(%q): predicate with empty left column", src)
				}
				if p.IsJoin && p.Right.Column == "" {
					t.Fatalf("Parse(%q): join predicate with empty right column", src)
				}
			}
		default:
			t.Fatalf("Parse(%q): unknown statement type %T", src, stmt)
		}
		// Accepted statements must be pure ASCII-or-valid-UTF8 survivors
		// of the lexer; regardless, re-parsing the same source must be
		// deterministic.
		if _, err := Parse(strings.Clone(src)); err != nil {
			t.Fatalf("Parse(%q) accepted once, rejected on re-parse: %v", src, err)
		}
		_ = utf8.ValidString(src)
	})
}
