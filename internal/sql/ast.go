package sql

import "fmt"

// Stmt is a parsed SQL statement: *CreateStmt or *SelectStmt.
type Stmt interface{ stmt() }

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name    string
	NotNull bool
}

// CreateStmt is CREATE TABLE name (col integer [not null], ...).
type CreateStmt struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateStmt) stmt() {}

// AggFunc is the aggregate of a SELECT.
type AggFunc int

// Supported aggregates.
const (
	AggNone AggFunc = iota
	AggAvg
	AggSum
	AggCount
	AggMin
	AggMax
)

// String names the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggNone:
		return "none"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// ColumnRef names a column, optionally qualified: R.a2 or a2.
type ColumnRef struct {
	Table  string // empty when unqualified
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// CompareOp is a predicate comparison operator.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Predicate is one conjunct of a WHERE clause: column op literal, or
// column op column (the join predicate).
type Predicate struct {
	Left  ColumnRef
	Op    CompareOp
	Right ColumnRef // valid when IsJoin
	Value int32     // valid when !IsJoin
	// IsJoin distinguishes column-column from column-literal.
	IsJoin bool
}

// String renders the predicate.
func (p Predicate) String() string {
	if p.IsJoin {
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	}
	return fmt.Sprintf("%s %s %d", p.Left, p.Op, p.Value)
}

// SelectStmt is SELECT agg(col) FROM tables [WHERE conjuncts].
type SelectStmt struct {
	Agg    AggFunc
	AggCol ColumnRef // zero for COUNT(*)
	Star   bool      // COUNT(*)
	Tables []string
	Where  []Predicate
}

func (*SelectStmt) stmt() {}
