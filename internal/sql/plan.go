package sql

import (
	"fmt"
	"math"

	"wheretime/internal/catalog"
)

// TableAccess describes how one relation is read: a full scan or an
// index range scan, with an optional range restriction [Lo, Hi) on one
// column.
type TableAccess struct {
	Table *catalog.Table
	// HasFilter indicates a range restriction on FilterCol.
	HasFilter bool
	FilterCol int
	// Lo (inclusive) and Hi (exclusive) bound the filter column.
	Lo, Hi int32
	// UseIndex selects an index range scan over the filter column.
	// Only meaningful when HasFilter and the table has such an index.
	UseIndex bool
}

// Selectivity estimates the fraction of records satisfying the filter,
// assuming FilterCol is uniform on [min, max] as the workload
// generates it. Used for reporting, not planning.
func (a *TableAccess) Selectivity(min, max int32) float64 {
	if !a.HasFilter {
		return 1
	}
	span := float64(max) - float64(min) + 1
	lo, hi := float64(a.Lo), float64(a.Hi)
	if lo < float64(min) {
		lo = float64(min)
	}
	if hi > float64(max)+1 {
		hi = float64(max) + 1
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / span
}

// Hint pins a physical operator the planner would not choose on its
// own. The harness uses hints to measure specific execution scenarios
// — a partitioned Grace/hybrid hash join, a sort-based aggregation, an
// index-only B-tree range scan — over the same SQL the default
// operators run, so operator choice is explicit in the plan rather
// than implicit in engine state.
type Hint int

// The physical-operator hints.
const (
	// HintNone lets the engine pick its default access path.
	HintNone Hint = iota
	// HintGraceJoin executes an equijoin as a Grace/hybrid hash join:
	// both inputs are hash-partitioned to partition-sized working sets,
	// then each partition pair is joined in memory.
	HintGraceJoin
	// HintSortAgg executes a single-table aggregate by external sort:
	// run generation over the qualifying records, merge passes, and
	// aggregation over the final sorted run.
	HintSortAgg
	// HintIndexOnly answers a range aggregate from the B-tree alone:
	// one root-to-leaf descent, then a leaf-chain walk, with no heap
	// record fetches.
	HintIndexOnly
	// HintJoinSortAgg pipes an equijoin's matches through an external
	// sort before aggregating — a join feeding a sort-group operator,
	// a two-operator pipeline no bespoke access path ever covered.
	HintJoinSortAgg
	// HintIndexProbeJoin drives an equijoin's probe side from an index
	// range scan instead of a heap scan: the index restricts the probe
	// input, each selected entry RID-fetches its record and probes the
	// build table.
	HintIndexProbeJoin
)

// String names the hint.
func (h Hint) String() string {
	switch h {
	case HintNone:
		return "none"
	case HintGraceJoin:
		return "grace-join"
	case HintSortAgg:
		return "sort-agg"
	case HintIndexOnly:
		return "index-only"
	case HintJoinSortAgg:
		return "join-sort-agg"
	case HintIndexProbeJoin:
		return "index-probe-join"
	default:
		return fmt.Sprintf("Hint(%d)", int(h))
	}
}

// Plan is an executable lowering of a SELECT: an aggregate over a
// single restricted table, or over an equijoin of two.
type Plan struct {
	// Hint pins the physical operator (HintNone = engine default).
	Hint     Hint
	Agg      AggFunc
	CountAll bool // COUNT(*)
	// AggTable/AggCol locate the aggregated column (unused for
	// COUNT(*)).
	AggTable *catalog.Table
	AggCol   int

	Outer *TableAccess
	// Inner is nil for single-table plans.
	Inner *TableAccess
	// OuterCol/InnerCol are the equijoin columns.
	OuterCol, InnerCol int

	// tree memoises Tree(): the physical plan is a pure function of
	// the plan's fields, so it is built once on first execution (after
	// any Hint assignment) and reused across the run/replay protocol.
	tree    *Node
	treeErr error
}

// IsJoin reports whether the plan joins two tables.
func (p *Plan) IsJoin() bool { return p.Inner != nil }

// PlanOptions steer physical choices the paper attributes to the
// DBMS: whether to use an available index (System A ignored it for
// the indexed range selection).
type PlanOptions struct {
	// UseIndex permits index range scans when an index matches.
	UseIndex bool
}

// PlanSelect lowers a parsed SELECT against the catalog.
func PlanSelect(cat *catalog.Catalog, stmt *SelectStmt, opts PlanOptions) (*Plan, error) {
	if stmt.Agg == AggNone {
		return nil, fmt.Errorf("sql: query must have an aggregate")
	}
	tables := make([]*catalog.Table, len(stmt.Tables))
	for i, name := range stmt.Tables {
		t, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	if len(tables) == 0 || len(tables) > 2 {
		return nil, fmt.Errorf("sql: need one or two tables, got %d", len(tables))
	}

	resolve := func(ref ColumnRef) (*catalog.Table, int, error) {
		var found *catalog.Table
		idx := -1
		for _, t := range tables {
			if ref.Table != "" && ref.Table != t.Name {
				continue
			}
			if ci := t.ColumnIndex(ref.Column); ci >= 0 {
				if found != nil {
					return nil, 0, fmt.Errorf("sql: column %s is ambiguous", ref)
				}
				found, idx = t, ci
			}
		}
		if found == nil {
			return nil, 0, fmt.Errorf("sql: unknown column %s", ref)
		}
		return found, idx, nil
	}

	p := &Plan{Agg: stmt.Agg, CountAll: stmt.Star}
	if !stmt.Star {
		t, ci, err := resolve(stmt.AggCol)
		if err != nil {
			return nil, err
		}
		p.AggTable, p.AggCol = t, ci
	}

	// Collect per-table range bounds and the join predicate.
	type bounds struct {
		lo, hi int64
		col    int
		has    bool
	}
	bnds := make(map[*catalog.Table]*bounds)
	var joinPred *Predicate
	for i := range stmt.Where {
		pred := &stmt.Where[i]
		if pred.IsJoin {
			lt, _, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			rt, _, err := resolve(pred.Right)
			if err != nil {
				return nil, err
			}
			if lt == rt {
				return nil, fmt.Errorf("sql: self-comparison %s is not supported", pred)
			}
			if pred.Op != OpEq {
				return nil, fmt.Errorf("sql: only equijoins are supported, got %s", pred)
			}
			if joinPred != nil {
				return nil, fmt.Errorf("sql: multiple join predicates are not supported")
			}
			joinPred = pred
			continue
		}
		t, ci, err := resolve(pred.Left)
		if err != nil {
			return nil, err
		}
		b := bnds[t]
		if b == nil {
			b = &bounds{lo: math.MinInt32, hi: math.MaxInt32 + int64(1), col: ci}
			bnds[t] = b
		}
		if b.has && b.col != ci {
			return nil, fmt.Errorf("sql: range predicates on multiple columns of %s are not supported", t.Name)
		}
		b.col = ci
		b.has = true
		v := int64(pred.Value)
		switch pred.Op {
		case OpLt: // col < v
			if v < b.hi {
				b.hi = v
			}
		case OpLe:
			if v+1 < b.hi {
				b.hi = v + 1
			}
		case OpGt: // col > v
			if v+1 > b.lo {
				b.lo = v + 1
			}
		case OpGe:
			if v > b.lo {
				b.lo = v
			}
		case OpEq:
			if v > b.lo {
				b.lo = v
			}
			if v+1 < b.hi {
				b.hi = v + 1
			}
		case OpNe:
			return nil, fmt.Errorf("sql: <> predicates are not supported")
		}
	}

	access := func(t *catalog.Table) *TableAccess {
		a := &TableAccess{Table: t}
		if b, ok := bnds[t]; ok && b.has {
			a.HasFilter = true
			a.FilterCol = b.col
			a.Lo = int32(clampI64(b.lo, math.MinInt32, math.MaxInt32))
			a.Hi = int32(clampI64(b.hi, math.MinInt32, math.MaxInt32))
			if opts.UseIndex && t.Indexes[b.col] != nil {
				a.UseIndex = true
			}
		}
		return a
	}

	if len(tables) == 1 {
		if joinPred != nil {
			return nil, fmt.Errorf("sql: join predicate with a single table")
		}
		p.Outer = access(tables[0])
		return p, nil
	}

	if joinPred == nil {
		return nil, fmt.Errorf("sql: two tables require a join predicate (cross products are not supported)")
	}
	lt, lc, err := resolve(joinPred.Left)
	if err != nil {
		return nil, err
	}
	_, rc, err := resolve(joinPred.Right)
	if err != nil {
		return nil, err
	}
	// Outer = first FROM table, by convention.
	p.Outer = access(tables[0])
	p.Inner = access(tables[1])
	if lt == tables[0] {
		p.OuterCol, p.InnerCol = lc, rc
	} else {
		p.OuterCol, p.InnerCol = rc, lc
	}
	return p, nil
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Prepare parses and plans a SELECT in one step.
func Prepare(cat *catalog.Catalog, query string, opts PlanOptions) (*Plan, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return PlanSelect(cat, sel, opts)
}
