// Package sql implements the SQL subset the paper's workload uses:
// CREATE TABLE with integer columns, and single-block SELECT queries
// with an aggregate, one or two tables, and a conjunctive WHERE clause
// of range and equality predicates — exactly queries (1) and (2) of
// Section 3.3. A small planner lowers the AST onto catalog handles.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // single punctuation: ( ) , * . ;
	tokOp     // < > <= >= = <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a statement into tokens. Keywords are returned as
// identifiers; the parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isWordByte(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case c == '<' || c == '>':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokOp, l.src[start:l.pos], start})
		case c == '=':
			l.toks = append(l.toks, token{tokOp, "=", l.pos})
			l.pos++
		case strings.IndexByte("(),*.;", c) >= 0:
			l.toks = append(l.toks, token{tokSymbol, string(c), l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' ||
		unicode.IsLetter(rune(c))
}
