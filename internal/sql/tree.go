package sql

import "fmt"

// The physical plan tree. A Plan's hint is no longer a dispatch tag
// the engine switches on — it is a tree constructor: Tree() lowers
// the plan into a composition of physical nodes (scans, joins, sort,
// aggregate) that the engine's streaming-operator compiler walks
// one-to-one. New access-path combinations are new tree shapes, not
// new engine routines.

// NodeKind names a physical operator.
type NodeKind int

// The physical node kinds.
const (
	// NodeHeapScan is a full heap scan with the access's optional
	// range predicate folded in.
	NodeHeapScan NodeKind = iota
	// NodeIndexScan selects the access's key range through a
	// non-clustered B-tree, RID-fetching each record.
	NodeIndexScan
	// NodeIndexOnlyScan answers the range from B-tree leaves alone.
	NodeIndexOnlyScan
	// NodeFilter applies a residual range predicate to an interior
	// stream (no current hint emits one; plan-tree fuzzing and future
	// planners do).
	NodeFilter
	// NodeHashJoin is the in-memory chained-hash equijoin; Left is
	// the probe input, Right the build input.
	NodeHashJoin
	// NodeGraceJoin is the Grace/hybrid partitioned equijoin; Left is
	// the probe input, Right the build input.
	NodeGraceJoin
	// NodeSort externally sorts its input.
	NodeSort
	// NodeAgg is the terminal streaming aggregate.
	NodeAgg
	// NodeHashAgg is the terminal hash-grouped aggregate.
	NodeHashAgg
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeHeapScan:
		return "heap-scan"
	case NodeIndexScan:
		return "index-scan"
	case NodeIndexOnlyScan:
		return "index-only-scan"
	case NodeFilter:
		return "filter"
	case NodeHashJoin:
		return "hash-join"
	case NodeGraceJoin:
		return "grace-join"
	case NodeSort:
		return "sort"
	case NodeAgg:
		return "agg"
	case NodeHashAgg:
		return "hash-agg"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one physical operator of a plan tree. Scans set Acc; joins
// set Left (probe) and Right (build) with their join columns; unary
// operators set Left.
type Node struct {
	Kind NodeKind
	// Acc is the table access of a scan node.
	Acc *TableAccess
	// Left is the probe input of a join, or the sole input of a unary
	// node.
	Left *Node
	// Right is the build input of a join.
	Right *Node
	// LeftCol/RightCol are the equijoin columns on Left/Right.
	LeftCol, RightCol int
	// Lo/Hi bound a NodeFilter's half-open key range.
	Lo, Hi int32
}

// Tree lowers the plan (including its hint) into its physical plan
// tree, memoised on first call: the shape is a pure function of the
// plan's fields, and the record/replay protocol re-executes plans
// many times. Hint/shape mismatches — a join hint on a single-table
// plan, an index hint with no index — surface here, once, before any
// event is emitted.
func (p *Plan) Tree() (*Node, error) {
	if p.tree == nil && p.treeErr == nil {
		p.tree, p.treeErr = p.buildTree()
	}
	return p.tree, p.treeErr
}

func (p *Plan) buildTree() (*Node, error) {
	agg := func(child *Node) *Node { return &Node{Kind: NodeAgg, Left: child} }
	scan := func(acc *TableAccess) *Node { return &Node{Kind: NodeHeapScan, Acc: acc} }
	needIndex := func(acc *TableAccess) error {
		if acc.Table.Indexes[acc.FilterCol] == nil {
			return fmt.Errorf("sql: plan wants an index on %s column %d but none exists",
				acc.Table.Name, acc.FilterCol)
		}
		return nil
	}
	hashJoin := func(probe, build *Node) *Node {
		return &Node{Kind: NodeHashJoin, Left: probe, Right: build,
			LeftCol: p.OuterCol, RightCol: p.InnerCol}
	}

	switch p.Hint {
	case HintGraceJoin:
		if !p.IsJoin() {
			return nil, fmt.Errorf("sql: %s hint on a single-table plan", p.Hint)
		}
		return agg(&Node{Kind: NodeGraceJoin, Left: scan(p.Outer), Right: scan(p.Inner),
			LeftCol: p.OuterCol, RightCol: p.InnerCol}), nil

	case HintSortAgg:
		if p.IsJoin() {
			return nil, fmt.Errorf("sql: %s hint on a join plan", p.Hint)
		}
		return agg(&Node{Kind: NodeSort, Left: scan(p.Outer)}), nil

	case HintIndexOnly:
		if p.IsJoin() {
			return nil, fmt.Errorf("sql: %s hint on a join plan", p.Hint)
		}
		if !p.Outer.HasFilter {
			return nil, fmt.Errorf("sql: %s scan needs a range predicate", p.Hint)
		}
		if err := needIndex(p.Outer); err != nil {
			return nil, err
		}
		if !p.CountAll && !(p.AggTable == p.Outer.Table && p.AggCol == p.Outer.FilterCol) {
			return nil, fmt.Errorf("sql: %s scan cannot compute an aggregate over a non-indexed column", p.Hint)
		}
		return agg(&Node{Kind: NodeIndexOnlyScan, Acc: p.Outer}), nil

	case HintJoinSortAgg:
		if !p.IsJoin() {
			return nil, fmt.Errorf("sql: %s hint on a single-table plan", p.Hint)
		}
		return agg(&Node{Kind: NodeSort, Left: hashJoin(scan(p.Outer), scan(p.Inner))}), nil

	case HintIndexProbeJoin:
		if !p.IsJoin() {
			return nil, fmt.Errorf("sql: %s hint on a single-table plan", p.Hint)
		}
		if !p.Outer.HasFilter {
			return nil, fmt.Errorf("sql: %s needs a range predicate on the probe table", p.Hint)
		}
		if err := needIndex(p.Outer); err != nil {
			return nil, err
		}
		return agg(hashJoin(&Node{Kind: NodeIndexScan, Acc: p.Outer}, scan(p.Inner))), nil
	}

	// Default paths (HintNone).
	switch {
	case p.IsJoin():
		return agg(hashJoin(scan(p.Outer), scan(p.Inner))), nil
	case p.Outer.UseIndex:
		if err := needIndex(p.Outer); err != nil {
			return nil, err
		}
		return agg(&Node{Kind: NodeIndexScan, Acc: p.Outer}), nil
	default:
		return agg(scan(p.Outer)), nil
	}
}
