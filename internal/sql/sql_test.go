package sql

import (
	"strings"
	"testing"

	"wheretime/internal/catalog"
	"wheretime/internal/storage"
)

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`create table R (a1 integer not null,
		a2 integer not null, a3 integer not null, f4 integer)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Table != "r" || len(ct.Columns) != 4 {
		t.Errorf("parsed %+v", ct)
	}
	if !ct.Columns[0].NotNull || ct.Columns[3].NotNull {
		t.Errorf("not-null flags wrong: %+v", ct.Columns)
	}
}

func TestParseRangeSelect(t *testing.T) {
	stmt, err := Parse("select avg(a3) from R where a2 < 2000 and a2 > 1000")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if sel.Agg != AggAvg || sel.AggCol.Column != "a3" {
		t.Errorf("aggregate wrong: %+v", sel)
	}
	if len(sel.Tables) != 1 || sel.Tables[0] != "r" {
		t.Errorf("tables wrong: %v", sel.Tables)
	}
	if len(sel.Where) != 2 {
		t.Fatalf("conjuncts = %d", len(sel.Where))
	}
	if sel.Where[0].Op != OpLt || sel.Where[0].Value != 2000 || sel.Where[0].IsJoin {
		t.Errorf("first predicate wrong: %+v", sel.Where[0])
	}
	if sel.Where[1].Op != OpGt || sel.Where[1].Value != 1000 {
		t.Errorf("second predicate wrong: %+v", sel.Where[1])
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse("select avg(R.a3) from R, S where R.a2 = S.a1;")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if sel.AggCol.Table != "r" || sel.AggCol.Column != "a3" {
		t.Errorf("qualified aggregate wrong: %+v", sel.AggCol)
	}
	if len(sel.Tables) != 2 {
		t.Fatalf("tables: %v", sel.Tables)
	}
	if len(sel.Where) != 1 || !sel.Where[0].IsJoin || sel.Where[0].Op != OpEq {
		t.Errorf("join predicate wrong: %+v", sel.Where)
	}
}

func TestParseCountStar(t *testing.T) {
	stmt, err := Parse("select count(*) from R")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if sel.Agg != AggCount || !sel.Star {
		t.Errorf("count(*) wrong: %+v", sel)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"drop table R",
		"create table R ()",
		"create table R (a1 text)",
		"select a3 from R",
		"select avg(*) from R",
		"select avg(a3) from",
		"select avg(a3) from R where",
		"select avg(a3) from R where a2 <",
		"select avg(a3) from R where a2 ! 5",
		"select avg(a3) from R, S, T where R.a = S.b",
		"select avg(a3) from R where a2 < 99999999999999999999",
		"select avg(a3) from R extra",
		"select avg(a3) from R where a2 < 5 @",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := lex("a <= 5 and b >= 6 and c <> 7")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokOp {
			ops = append(ops, tk.text)
		}
	}
	if strings.Join(ops, " ") != "<= >= <>" {
		t.Errorf("ops = %v", ops)
	}
}

// testCatalog builds R(a1,a2,a3) and S(a1,a2,a3) with a little data
// and an index on r.a2.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool())
	r, err := cat.Create("r", []string{"a1", "a2", "a3"}, storage.NSM, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Create("s", []string{"a1", "a2", "a3"}, storage.NSM, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		r.Heap.Append([]int32{int32(i), int32(i % 100), int32(i * 2)})
	}
	for i := 0; i < 50; i++ {
		s.Heap.Append([]int32{int32(i), int32(i % 10), int32(i)})
	}
	if _, err := cat.BuildIndex("r", "a2"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanRangeSelect(t *testing.T) {
	cat := testCatalog(t)
	p, err := Prepare(cat, "select avg(a3) from r where a2 < 80 and a2 > 40", PlanOptions{UseIndex: false})
	if err != nil {
		t.Fatal(err)
	}
	if p.IsJoin() {
		t.Fatal("single-table plan reported as join")
	}
	a := p.Outer
	if !a.HasFilter || a.FilterCol != 1 {
		t.Errorf("filter wrong: %+v", a)
	}
	// a2 > 40 and a2 < 80 -> [41, 80)
	if a.Lo != 41 || a.Hi != 80 {
		t.Errorf("bounds = [%d,%d), want [41,80)", a.Lo, a.Hi)
	}
	if a.UseIndex {
		t.Error("index should not be used when disabled")
	}
	if p.AggTable.Name != "r" || p.AggCol != 2 {
		t.Errorf("aggregate resolution wrong: %s col %d", p.AggTable.Name, p.AggCol)
	}
}

func TestPlanUsesIndexWhenAllowed(t *testing.T) {
	cat := testCatalog(t)
	p, err := Prepare(cat, "select avg(a3) from r where a2 < 80 and a2 > 40", PlanOptions{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Outer.UseIndex {
		t.Error("index should be used")
	}
	// No index on s.a2: plan must fall back to scan.
	p2, err := Prepare(cat, "select avg(a3) from s where a2 < 8", PlanOptions{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Outer.UseIndex {
		t.Error("cannot use a nonexistent index")
	}
}

func TestPlanBoundsNormalization(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		where  string
		lo, hi int32
	}{
		{"a2 >= 10 and a2 <= 20", 10, 21},
		{"a2 = 15", 15, 16},
		{"a2 > 10 and a2 > 12 and a2 < 50 and a2 < 40", 13, 40},
	}
	for _, tc := range cases {
		p, err := Prepare(cat, "select avg(a3) from r where "+tc.where, PlanOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.where, err)
		}
		if p.Outer.Lo != tc.lo || p.Outer.Hi != tc.hi {
			t.Errorf("%s: bounds [%d,%d), want [%d,%d)", tc.where, p.Outer.Lo, p.Outer.Hi, tc.lo, tc.hi)
		}
	}
}

func TestPlanJoin(t *testing.T) {
	cat := testCatalog(t)
	p, err := Prepare(cat, "select avg(r.a3) from r, s where r.a2 = s.a1", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsJoin() {
		t.Fatal("join not recognized")
	}
	if p.Outer.Table.Name != "r" || p.Inner.Table.Name != "s" {
		t.Errorf("join sides wrong: %s/%s", p.Outer.Table.Name, p.Inner.Table.Name)
	}
	if p.OuterCol != 1 || p.InnerCol != 0 {
		t.Errorf("join columns = %d/%d, want 1/0", p.OuterCol, p.InnerCol)
	}
}

func TestPlanJoinWithFilter(t *testing.T) {
	cat := testCatalog(t)
	p, err := Prepare(cat, "select avg(r.a3) from r, s where r.a2 = s.a1 and s.a2 < 5", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Inner.HasFilter || p.Inner.Hi != 5 {
		t.Errorf("inner filter wrong: %+v", p.Inner)
	}
	if p.Outer.HasFilter {
		t.Errorf("outer should have no filter: %+v", p.Outer)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"select avg(a3) from nosuch",
		"select avg(nosuch) from r",
		"select avg(a3) from r where zz < 5",
		"select avg(a3) from r, s",                                     // cross product
		"select avg(a3) from r, s where r.a2 < s.a1",                   // non-equi join
		"select avg(a1) from r, s",                                     // ambiguous column + cross product
		"select avg(a3) from r where a2 < 5 and a1 > 2",                // two filter columns
		"select avg(a3) from r where a2 <> 5",                          // <>
		"select avg(r.a3) from r, s where r.a2 = s.a1 and r.a1 = s.a2", // two join preds
	}
	for _, q := range bad {
		if _, err := Prepare(cat, q, PlanOptions{}); err == nil {
			t.Errorf("Prepare(%q) should fail", q)
		}
	}
}

func TestSelectivityEstimate(t *testing.T) {
	a := &TableAccess{HasFilter: true, Lo: 1, Hi: 4001}
	got := a.Selectivity(1, 40000)
	if got < 0.099 || got > 0.101 {
		t.Errorf("selectivity = %v, want ~0.10", got)
	}
	full := &TableAccess{}
	if full.Selectivity(1, 40000) != 1 {
		t.Error("no filter should mean selectivity 1")
	}
	empty := &TableAccess{HasFilter: true, Lo: 10, Hi: 10}
	if empty.Selectivity(1, 40000) != 0 {
		t.Error("empty range should mean selectivity 0")
	}
}

func TestPredicateAndOpStrings(t *testing.T) {
	p := Predicate{Left: ColumnRef{Table: "r", Column: "a2"}, Op: OpLt, Value: 7}
	if p.String() != "r.a2 < 7" {
		t.Errorf("predicate string = %q", p.String())
	}
	j := Predicate{Left: ColumnRef{Column: "a2"}, Op: OpEq, Right: ColumnRef{Column: "a1"}, IsJoin: true}
	if j.String() != "a2 = a1" {
		t.Errorf("join string = %q", j.String())
	}
	for op, s := range map[CompareOp]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="} {
		if op.String() != s {
			t.Errorf("op %d string = %q, want %q", op, op.String(), s)
		}
	}
	for f, s := range map[AggFunc]string{AggAvg: "avg", AggSum: "sum", AggCount: "count", AggMin: "min", AggMax: "max"} {
		if f.String() != s {
			t.Errorf("agg string = %q, want %q", f.String(), s)
		}
	}
}
