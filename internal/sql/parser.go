package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.acceptSymbol(";")
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %q, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	p.next()
	return strings.ToLower(t.text), nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.acceptKeyword("create"):
		return p.createTable()
	case p.acceptKeyword("select"):
		return p.selectStmt()
	default:
		return nil, p.errorf("expected CREATE or SELECT, found %q", p.peek().text)
	}
}

func (p *parser) createTable() (*CreateStmt, error) {
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("integer"); err != nil {
			return nil, err
		}
		def := ColumnDef{Name: col}
		if p.acceptKeyword("not") {
			if err := p.expectKeyword("null"); err != nil {
				return nil, err
			}
			def.NotNull = true
		}
		stmt.Columns = append(stmt.Columns, def)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(stmt.Columns) == 0 {
		return nil, p.errorf("table %q has no columns", name)
	}
	return stmt, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	// Aggregate: avg|sum|count|min|max ( colref | * )
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected aggregate function, found %q", t.text)
	}
	switch strings.ToLower(t.text) {
	case "avg":
		stmt.Agg = AggAvg
	case "sum":
		stmt.Agg = AggSum
	case "count":
		stmt.Agg = AggCount
	case "min":
		stmt.Agg = AggMin
	case "max":
		stmt.Agg = AggMax
	default:
		return nil, p.errorf("unsupported select list %q (the workload uses a single aggregate)", t.text)
	}
	p.next()
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		if stmt.Agg != AggCount {
			return nil, p.errorf("* argument is only valid for count")
		}
		stmt.Star = true
	} else {
		ref, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		stmt.AggCol = ref
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Tables = append(stmt.Tables, name)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if len(stmt.Tables) > 2 {
		return nil, p.errorf("at most two tables are supported")
	}
	if p.acceptKeyword("where") {
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.acceptKeyword("and") {
				break
			}
		}
	}
	return stmt, nil
}

func (p *parser) columnRef() (ColumnRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Column: col}, nil
	}
	return ColumnRef{Column: first}, nil
}

func (p *parser) predicate() (Predicate, error) {
	left, err := p.columnRef()
	if err != nil {
		return Predicate{}, err
	}
	opTok := p.peek()
	if opTok.kind != tokOp {
		return Predicate{}, p.errorf("expected comparison operator, found %q", opTok.text)
	}
	p.next()
	var op CompareOp
	switch opTok.text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return Predicate{}, p.errorf("bad integer literal %q", t.text)
		}
		return Predicate{Left: left, Op: op, Value: int32(v)}, nil
	case tokIdent:
		right, err := p.columnRef()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Left: left, Op: op, Right: right, IsJoin: true}, nil
	default:
		return Predicate{}, p.errorf("expected literal or column, found %q", t.text)
	}
}
