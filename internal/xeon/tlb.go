package xeon

// tlb is a set-associative translation lookaside buffer. It reuses the
// cache machinery with the page size as the "line" size: a TLB entry
// caches one virtual page's translation.
type tlb struct {
	c *cache
}

// newTLB builds a TLB with the given number of entries, associativity
// and page size.
func newTLB(name string, entries, assoc, pageSize int) *tlb {
	return &tlb{c: newCache(name, entries*pageSize, assoc, pageSize)}
}

// access looks up the page containing addr and reports whether the
// translation was cached. Misses fill the entry (the hardware page
// walker completes before the access retires).
func (t *tlb) access(addr uint64) bool {
	hit, _, _ := t.c.access(addr, false)
	return hit
}

// pageOf returns the page number of addr.
func (t *tlb) pageOf(addr uint64) uint64 { return t.c.lineAddr(addr) }

func (t *tlb) misses() uint64    { return t.c.misses }
func (t *tlb) refs() uint64      { return t.c.refs }
func (t *tlb) flush()            { t.c.flush() }
func (t *tlb) resetStats()       { t.c.resetStats() }
func (t *tlb) missRate() float64 { return t.c.missRate() }

// hitMRU is the inlinable MRU-way precheck (see cache.hitMRU).
func (t *tlb) hitMRU(addr uint64) bool { return t.c.hitMRU(addr, false) }

// lookupRest finishes a probe whose hitMRU precheck missed (see
// cache.lookupRest).
func (t *tlb) lookupRest(addr uint64) bool { return t.c.lookupRest(addr, false) }
