package xeon

import (
	"math/rand"
	"testing"
)

func newTestBTB() *btb { return newBTB(512, 4, 4) }

func TestBTBStaticFallback(t *testing.T) {
	b := newTestBTB()
	// Cold BTB: backward-taken prediction correct, so a backward taken
	// branch is predicted right even on a BTB miss.
	hit, correct := b.predict(0x1000, 0x0F00, true)
	if hit {
		t.Error("cold BTB should miss")
	}
	if !correct {
		t.Error("backward taken branch should be statically predicted correctly")
	}
	// Forward not-taken also correct statically (different PC).
	hit, correct = b.predict(0x2000, 0x2100, false)
	if hit || !correct {
		t.Errorf("forward not-taken static prediction: hit=%v correct=%v", hit, correct)
	}
	// Forward taken is statically mispredicted (different PC).
	_, correct = b.predict(0x3000, 0x3100, true)
	if correct {
		t.Error("forward taken branch should be statically mispredicted")
	}
}

func TestBTBAllocatesOnTakenOnly(t *testing.T) {
	b := newTestBTB()
	b.predict(0x1000, 0x1100, false) // not taken: no allocation
	if hit, _ := b.predict(0x1000, 0x1100, false); hit {
		t.Error("not-taken branch should not have been allocated")
	}
	b.predict(0x2000, 0x2100, true) // taken: allocated
	if hit, _ := b.predict(0x2000, 0x2100, false); !hit {
		t.Error("taken branch should have been allocated")
	}
}

func TestBTBLearnsAlwaysTaken(t *testing.T) {
	b := newTestBTB()
	wrong := 0
	for i := 0; i < 100; i++ {
		if _, correct := b.predict(0x1000, 0x1200, true); !correct {
			wrong++
		}
	}
	// Forward always-taken: first execution mispredicts statically,
	// after allocation the counters learn immediately.
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d/100 times", wrong)
	}
}

func TestBTBLearnsAlternating(t *testing.T) {
	b := newTestBTB()
	wrong := 0
	for i := 0; i < 200; i++ {
		taken := i%2 == 0
		if _, correct := b.predict(0x1000, 0x1200, taken); !correct {
			wrong++
		}
	}
	// A two-level predictor with 4 history bits learns period-2
	// perfectly after warm-up.
	if wrong > 20 {
		t.Errorf("alternating branch mispredicted %d/200 times", wrong)
	}
}

func TestBTBLearnsLoopPattern(t *testing.T) {
	b := newTestBTB()
	wrong := 0
	n := 0
	// T T T N loop pattern, 100 loops.
	for loop := 0; loop < 100; loop++ {
		for it := 0; it < 4; it++ {
			taken := it != 3
			if _, correct := b.predict(0x4000, 0x3F00, taken); !correct {
				wrong++
			}
			n++
		}
	}
	// Period 4 fits in 4 history bits: near-perfect after warm-up.
	if wrong > n/10 {
		t.Errorf("loop pattern mispredicted %d/%d", wrong, n)
	}
}

func TestBTBRandomBranchNearChance(t *testing.T) {
	b := newTestBTB()
	rng := rand.New(rand.NewSource(42))
	wrong := 0
	n := 4000
	for i := 0; i < n; i++ {
		if _, correct := b.predict(0x5000, 0x5100, rng.Intn(2) == 0); !correct {
			wrong++
		}
	}
	rate := float64(wrong) / float64(n)
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random branch misprediction rate = %v, want ~0.5", rate)
	}
}

func TestBTBCapacityThrash(t *testing.T) {
	b := newTestBTB() // 512 entries
	// 2048 distinct taken branches in a cyclic pattern: each revisit
	// misses the BTB.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 2048; i++ {
			pc := uint64(0x10000 + i*64)
			b.predict(pc, pc+32, true)
		}
	}
	if b.missRate() < 0.9 {
		t.Errorf("cyclic 4x-capacity branch set should thrash the BTB: %v", b.missRate())
	}
}

func TestBTBResidentSetHits(t *testing.T) {
	b := newTestBTB()
	// 128 branches fit comfortably in 512 entries.
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 128; i++ {
			pc := uint64(0x10000 + i*64)
			b.predict(pc, pc+32, true)
		}
	}
	if b.missRate() > 0.15 {
		t.Errorf("resident branch set should mostly hit the BTB: %v", b.missRate())
	}
}

func TestBTBFlushAndReset(t *testing.T) {
	b := newTestBTB()
	b.predict(0x1000, 0x1100, true)
	b.resetStats()
	if b.refs != 0 || b.missesBTB != 0 || b.mispredict != 0 {
		t.Error("resetStats should zero counters")
	}
	if hit, _ := b.predict(0x1000, 0x1100, true); !hit {
		t.Error("resetStats should keep learned entries")
	}
	b.flush()
	if hit, _ := b.predict(0x1000, 0x1100, true); hit {
		t.Error("flush should drop entries")
	}
}

func TestBTBMoveToFrontKeepsPatternTables(t *testing.T) {
	b := newBTB(8, 4, 4) // 2 sets x 4 ways
	// Train branch X (alternating) until learned, keeping three other
	// branches in the same set active so X moves around within it.
	same := func(i int) uint64 { return uint64(0x1000 + i*8) } // same set: pc>>2 even/odd sets
	// All PCs with (pc>>2)&1 == 0 land in set 0.
	pcs := []uint64{0x1000, 0x1008, 0x1010, 0x1018}
	_ = same
	for i := 0; i < 400; i++ {
		for _, pc := range pcs {
			b.predict(pc, pc+16, i%2 == 0)
		}
	}
	b.resetStats()
	wrong := 0
	for i := 0; i < 100; i++ {
		for _, pc := range pcs {
			if _, correct := b.predict(pc, pc+16, i%2 == 0); !correct {
				wrong++
			}
		}
	}
	if wrong > 40 {
		t.Errorf("pattern state lost in set shuffling: %d/400 wrong", wrong)
	}
}

func TestBTBMispredictRateAccounting(t *testing.T) {
	b := newTestBTB()
	if b.missRate() != 0 || b.mispredictRate() != 0 {
		t.Error("idle rates should be zero")
	}
	for i := 0; i < 10; i++ {
		b.predict(0x9000, 0x9100, true) // forward taken
	}
	if b.refs != 10 {
		t.Errorf("refs = %d, want 10", b.refs)
	}
	if b.mispredict == 0 {
		t.Error("first forward-taken execution should mispredict")
	}
}
