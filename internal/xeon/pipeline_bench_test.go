package xeon

import (
	"testing"

	"wheretime/internal/trace"
)

// synthBatch builds an event mix shaped like the grid's hot stream:
// mostly single-line loads and fetches, a quarter branches with
// engine-like (ir)regularity, occasional bursts, stores and stalls.
func synthBatch(n int) []trace.Event {
	evs := make([]trace.Event, 0, n)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; len(evs) < n; i++ {
		code := trace.CodeBase + (next() % (1 << 18))
		data := trace.HeapBase + (next() % (1 << 22))
		evs = append(evs,
			trace.Event{Kind: trace.EvFetchBlock, Addr: code &^ 31, Size: 28, A: 7, B: 11},
			trace.Event{Kind: trace.EvLoad, Addr: data, Size: 8},
			trace.Event{Kind: trace.EvLoad, Addr: data + 8, Size: 4},
			trace.Event{Kind: trace.EvBranch, Addr: code, Aux: code + 64, Taken: next()&1 == 0},
		)
		switch i % 8 {
		case 0:
			evs = append(evs, trace.Event{Kind: trace.EvStore, Addr: data + 16, Size: 8})
		case 1:
			evs = append(evs, trace.Event{Kind: trace.EvDataBurst,
				Addr: trace.PrivateBase + (next() % (1 << 14)), Size: 256, A: 6, B: 2})
		case 2:
			evs = append(evs, trace.ResourceStallEvent(1.5, 0.5, 0.25))
		case 3:
			evs = append(evs, trace.Event{Kind: trace.EvRecordProcessed})
		}
	}
	return evs[:n]
}

// BenchmarkProcessBatch measures the batched drain — the simulator's
// only hot loop once replay feeds it whole recorded chunks — over a
// realistic event mix. Allocations per op must stay zero.
func BenchmarkProcessBatch(b *testing.B) {
	events := synthBatch(1 << 20)
	p := New(DefaultConfig())
	p.ProcessBatch(events) // warm the simulated hierarchy
	b.SetBytes(int64(len(events)) * 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProcessBatch(events)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
}

// BenchmarkCompressedDrain measures the fused decode+simulate path
// against draining the same stream from a raw arena: the columnar
// codec's per-block decode rides in front of the same ProcessBatch
// hot loop, so the delta is pure decode overhead. The compressed_mb
// and raw_mb metrics record the arena footprints being traded.
func BenchmarkCompressedDrain(b *testing.B) {
	events := synthBatch(1 << 20)
	for _, mode := range []struct {
		name string
		raw  bool
	}{{"compressed", false}, {"raw", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rec := trace.NewRecorder(trace.Discard{}, 0)
			rec.SetRawArena(mode.raw)
			rec.ProcessBatch(events)
			r := rec.Recording()
			defer r.Release()
			p := New(DefaultConfig())
			r.Drain(p) // warm the simulated hierarchy
			b.SetBytes(int64(len(events)) * 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Drain(p)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
			b.ReportMetric(float64(r.Bytes())/(1<<20), "arena_mb")
		})
	}
}
