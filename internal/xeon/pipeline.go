package xeon

import (
	"math/bits"

	"wheretime/internal/core"
	"wheretime/internal/trace"
)

// kernelBase is where simulated NT kernel code lives; it shares the
// I-cache with DBMS code but belongs to a distinct address region.
const kernelBase uint64 = 0x8000_0000

// Pipeline consumes a query's event stream and produces the paper's
// execution-time breakdown. It implements trace.Processor.
//
// A Pipeline is not safe for concurrent use: every cache, TLB and BTB
// it owns is mutable simulation state. The concurrent experiment grid
// therefore never shares one — each worker's environment constructs a
// fresh Pipeline per measured cell (and the model has no other
// package-level mutable state, so distinct Pipelines never interfere).
//
// Stall accounting follows Table 4.2:
//
//	TC    = μops retired / retire width (estimated minimum)
//	TL1D  = L1D misses that hit L2 × 4
//	TL1I  = L1I misses that hit L2 × 4 (serial; not overlapped)
//	TL2D  = L2 data misses × memory latency (upper bound; the
//	        overlapped share accumulates in TOVL)
//	TL2I  = L2 instruction misses × memory latency
//	TITLB = ITLB misses × 32
//	TDTLB = DTLB misses × penalty, reported outside TM (the paper
//	        could not measure it)
//	TB    = mispredicted retired branches × 17
//	TDEP/TFU/TILD = stall cycles reported by the issue model
type Pipeline struct {
	cfg  Config
	l1i  *cache
	l1d  *cache
	l2   *cache
	itlb *tlb
	dtlb *tlb
	bp   *btb

	cycles [12]float64 // indexed by core.Component
	counts core.Counts

	// Interrupt machinery: grossCycles tracks accumulated gross time;
	// when it crosses the next interrupt deadline the kernel timer
	// handler runs and pollutes the instruction-side state.
	grossCycles   float64
	nextInterrupt float64
	inKernel      bool
	interrupts    uint64

	// Overlap bookkeeping: data references since the last L2 data
	// miss, and the number of misses currently treated as in flight.
	refsSinceL2DMiss int
	inFlight         int

	// lastIPage caches the last instruction page looked up so
	// straight-line fetch doesn't pay a TLB probe per line.
	lastIPage uint64
	haveIPage bool

	// ways4 records that every cache is 4-way (the experiments'
	// configurations all are), enabling the fused one-branch set
	// probes on the drain's hot paths.
	ways4 bool
}

var _ trace.Processor = (*Pipeline)(nil)
var _ trace.BatchProcessor = (*Pipeline)(nil)

// New builds a pipeline for the given configuration. It panics if the
// configuration is invalid; call cfg.Validate first when the values
// come from user input.
func New(cfg Config) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pipeline{
		cfg:  cfg,
		l1i:  newCache("L1I", cfg.L1ISizeKB*1024, cfg.CacheAssoc, cfg.LineSize),
		l1d:  newCache("L1D", cfg.L1DSizeKB*1024, cfg.CacheAssoc, cfg.LineSize),
		l2:   newCache("L2", cfg.L2SizeKB*1024, cfg.CacheAssoc, cfg.LineSize),
		itlb: newTLB("ITLB", cfg.ITLBEntries, cfg.TLBAssoc, cfg.PageSize),
		dtlb: newTLB("DTLB", cfg.DTLBEntries, cfg.TLBAssoc, cfg.PageSize),
		bp:   newBTB(cfg.BTBEntries, cfg.BTBAssoc, cfg.HistoryBits),
	}
	p.nextInterrupt = cfg.InterruptCycles
	// No miss is outstanding at start; keep the distance counter far
	// beyond any window so the first miss never counts as overlapped.
	p.refsSinceL2DMiss = 1 << 30
	p.ways4 = cfg.CacheAssoc == 4
	return p
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// charge adds cycles to a component and advances gross time.
func (p *Pipeline) charge(c core.Component, v float64) {
	p.cycles[c] += v
	p.grossCycles += v
}

// fetchLine runs one instruction line through ITLB, L1I and L2,
// charging the Table 4.2 stalls. Each structure is probed through the
// folded cache.lookup, so the common hit costs one bounds-checked
// probe of a packed way.
func (p *Pipeline) fetchLine(addr uint64) {
	page := p.itlb.pageOf(addr)
	if !p.haveIPage || page != p.lastIPage {
		p.lastIPage, p.haveIPage = page, true
		if !p.itlb.hitMRU(addr) && !p.itlb.lookupRest(addr) {
			p.counts.ITLBMisses++
			p.charge(core.TITLB, p.cfg.ITLBPenalty)
		}
	}
	p.counts.L1IReferences++
	if p.l1i.hitMRU(addr, false) || p.l1i.lookupRest(addr, false) {
		return
	}
	p.counts.L1IMisses++
	p.counts.L2InstReferences++
	if p.l2.hitMRU(addr, false) || p.l2.lookupRest(addr, false) {
		// L1I miss, L2 hit: the 4-cycle front-end stall. Instruction
		// stalls serialise the pipeline (Section 3.2), so no overlap
		// discount is applied.
		p.charge(core.TL1I, p.cfg.L1MissPenalty)
		return
	}
	p.counts.L2InstMisses++
	p.charge(core.TL2I, p.cfg.MemoryLatency)
}

// FetchBlock implements trace.Processor.
func (p *Pipeline) FetchBlock(addr uint64, size, instrs, uops uint32) {
	if size == 0 {
		return
	}
	if p.inKernel {
		p.counts.KernelInstructions += uint64(instrs)
	} else {
		p.counts.InstructionsRetired += uint64(instrs)
		p.counts.UopsRetired += uint64(uops)
		p.charge(core.TC, float64(uops)/p.cfg.RetireWidth)
	}
	line := uint64(p.cfg.LineSize)
	start := addr &^ (line - 1)
	end := addr + uint64(size)
	if end <= start+line {
		// Fast path: the whole block sits in one cache line (small
		// fetch kernels), the dominant shape in the batched drain.
		p.fetchLine(start)
	} else {
		for a := start; a < end; a += line {
			p.fetchLine(a)
		}
	}
	if p.grossCycles >= p.nextInterrupt {
		p.maybeInterrupt()
	}
}

// dataLine runs one data line through DTLB, L1D and L2. Each probe is
// the folded hitMRU-or-lookupRest pair: the common hit is one inlined
// bounds-checked probe, and the out-of-line tail never re-probes the
// MRU way.
func (p *Pipeline) dataLine(addr uint64, write bool) {
	if !p.dtlb.hitMRU(addr) && !p.dtlb.lookupRest(addr) {
		p.counts.DTLBMisses++
		p.charge(core.TDTLB, p.cfg.DTLBPenalty)
	}
	p.refsSinceL2DMiss++
	p.counts.L1DReferences++
	if p.l1d.hitMRU(addr, write) || p.l1d.lookupRest(addr, write) {
		return
	}
	p.counts.L1DMisses++
	p.counts.L2DataReferences++
	if p.l2.hitMRU(addr, write) || p.l2.lookupRest(addr, write) {
		p.charge(core.TL1D, p.cfg.L1MissPenalty)
		return
	}
	p.counts.L2DataMisses++
	p.charge(core.TL2D, p.cfg.MemoryLatency)
	// Non-blocking cache overlap: a miss issued while a recent miss is
	// still outstanding overlaps part of its latency. TL2D keeps the
	// full (upper-bound) figure, as in the paper; the overlapped share
	// accumulates in TOVL and is subtracted from wall-clock TQ.
	if p.refsSinceL2DMiss <= p.cfg.OverlapWindow && p.inFlight < p.cfg.MissesOutstanding {
		p.inFlight++
		ov := p.cfg.OverlapFraction * p.cfg.MemoryLatency
		p.cycles[core.TOVL] += ov
		p.grossCycles -= ov
	} else {
		p.inFlight = 1
	}
	p.refsSinceL2DMiss = 0
}

// Load implements trace.Processor.
func (p *Pipeline) Load(addr uint64, size uint32) {
	line := uint64(p.cfg.LineSize)
	start := addr &^ (line - 1)
	end := addr + uint64(size)
	for a := start; a < end; a += line {
		p.dataLine(a, false)
	}
}

// Store implements trace.Processor.
func (p *Pipeline) Store(addr uint64, size uint32) {
	line := uint64(p.cfg.LineSize)
	start := addr &^ (line - 1)
	end := addr + uint64(size)
	for a := start; a < end; a += line {
		p.dataLine(a, true)
	}
}

// DataBurst implements trace.Processor: each distinct line of the
// region passes through the hierarchy once; the remaining references
// are intra-burst re-references and count as L1D hits.
func (p *Pipeline) DataBurst(base uint64, bytes, loads, stores uint32) {
	if bytes == 0 || loads+stores == 0 {
		return
	}
	line := uint64(p.cfg.LineSize)
	start := base &^ (line - 1)
	end := base + uint64(bytes)
	lines := uint32(0)
	writeEvery := uint32(0)
	if stores > 0 {
		writeEvery = (loads + stores) / stores
	}
	// Down-counter instead of a per-line modulo: write on every
	// writeEvery-th line, starting with line writeEvery-1.
	countdown := writeEvery
	for a := start; a < end; a += line {
		countdown--
		write := writeEvery > 0 && countdown == 0
		if countdown == 0 {
			countdown = writeEvery
		}
		p.dataLine(a, write)
		lines++
	}
	total := loads + stores
	if total > lines {
		p.counts.L1DReferences += uint64(total - lines)
	}
}

// Branch implements trace.Processor.
func (p *Pipeline) Branch(pc, target uint64, taken bool) {
	if !p.inKernel {
		p.counts.BranchesRetired++
	}
	btbHit, correct := p.bp.predict(pc, target, taken)
	if p.inKernel {
		return
	}
	// The BTB hit flag is close to a coin flip by design (the paper's
	// ~50% miss rate), so the miss counter folds in branch-free rather
	// than feeding the host predictor an unlearnable branch.
	p.counts.BTBMisses += b2u(!btbHit)
	if !correct {
		p.counts.BranchMispredictions++
		p.charge(core.TB, p.cfg.MispredictPenalty)
		// Wrong-path fetch pollutes the I-cache without counting
		// references: the front end ran ahead down the wrong stream.
		line := uint64(p.cfg.LineSize)
		wrong := target
		if !taken {
			wrong = pc + line
		}
		for i := 0; i < p.cfg.WrongPathLines; i++ {
			p.l1i.touch(wrong + uint64(i)*line)
		}
	}
}

// ResourceStall implements trace.Processor.
func (p *Pipeline) ResourceStall(dep, fu, ild float64) {
	if p.inKernel {
		return
	}
	p.charge(core.TDEP, dep)
	p.charge(core.TFU, fu)
	p.charge(core.TILD, ild)
}

// RecordProcessed implements trace.Processor.
func (p *Pipeline) RecordProcessed() {
	if !p.inKernel {
		p.counts.Records++
	}
}

// ProcessBatch implements trace.BatchProcessor: it drains an ordered
// event buffer through the same per-event accounting as the Processor
// methods, in one tight loop with no interface dispatch. This is the
// only hot loop of a replayed experiment, so it is flattened: the line
// geometry is hoisted into locals, loads and stores whose span fits a
// single cache line — the dominant event shape: field reads, header
// probes, index key touches — go straight to dataLine without the
// general multi-line walk, and consecutive branches at the same site
// (loop branches emit their whole trip count back to back) drain
// through branchRun, which resolves the BTB set once and trains the
// rest from registers. The golden regression suite pins this path
// byte-identical to the unbatched reference (trace.Replay over the
// same events).
func (p *Pipeline) ProcessBatch(events []trace.Event) {
	line := uint64(p.cfg.LineSize)
	mask := line - 1
	n := len(events)
	for i := 0; i < n; i++ {
		ev := &events[i]
		switch ev.Kind {
		case trace.EvFetchBlock:
			p.FetchBlock(ev.Addr, ev.Size, ev.A, ev.B)
		case trace.EvLoad:
			if start := ev.Addr &^ mask; ev.Size != 0 && ev.Addr+uint64(ev.Size) <= start+line {
				p.dataLine(start, false)
				// Same-line run: field walks emit consecutive loads of
				// one record line. After dataLine the line is the L1D
				// MRU way and its page the DTLB MRU way, and nothing
				// between the events can displace either, so the rest
				// of the run is pure reference counting — no probes.
				j := i + 1
				for j < n {
					nx := &events[j]
					if nx.Kind != trace.EvLoad || nx.Addr&^mask != start ||
						nx.Size == 0 || nx.Addr+uint64(nx.Size) > start+line {
						break
					}
					j++
				}
				if k := uint64(j - i - 1); k > 0 {
					p.dtlb.c.refs += k
					p.l1d.refs += k
					p.refsSinceL2DMiss += int(k)
					p.counts.L1DReferences += k
					i = j - 1
				}
			} else {
				p.Load(ev.Addr, ev.Size)
			}
		case trace.EvStore:
			if start := ev.Addr &^ mask; ev.Size != 0 && ev.Addr+uint64(ev.Size) <= start+line {
				p.dataLine(start, true)
			} else {
				p.Store(ev.Addr, ev.Size)
			}
		case trace.EvBranch:
			// Run detection: a loop branch retires its whole trip count
			// as adjacent events with identical PC and target. With no
			// intervening event the BTB entry stays in the MRU way, so
			// the run needs one set resolution, not one per event.
			j := i + 1
			for j < n && events[j].Kind == trace.EvBranch &&
				events[j].Addr == ev.Addr && events[j].Aux == ev.Aux {
				j++
			}
			if j-i > 1 {
				p.branchRun(ev.Addr, ev.Aux, events[i:j])
				i = j - 1
			} else {
				p.Branch(ev.Addr, ev.Aux, ev.Taken)
			}
		case trace.EvDataBurst:
			p.DataBurst(ev.Addr, ev.Size, ev.A, ev.B)
		case trace.EvResourceStall:
			p.ResourceStall(ev.Stalls())
		case trace.EvRecordProcessed:
			p.RecordProcessed()
		}
	}
}

// branchRun retires a run of branches at one (pc, target) site —
// observationally identical to calling Branch once per event, in
// order. Because nothing between the events touches the predictor,
// the set is resolved once: after the first event the entry (if any)
// sits in the MRU way, so the remaining events train the pattern
// table and history from registers, and the per-event counters
// accumulate in locals. Mispredict charges stay one float add per
// event, preserving the exact accumulation order of the slow path.
func (p *Pipeline) branchRun(pc, target uint64, events []trace.Event) {
	b := p.bp
	if b.ways != 4 {
		for i := range events {
			p.Branch(pc, target, events[i].Taken)
		}
		return
	}
	key := btbKey(pc)
	base := int(key&b.setMask) * 8
	set := b.ents[base : base+8 : base+8]

	// Resolve the set once: on a hit anywhere, move the entry to the
	// front now (observationally the first event's reorder) and keep
	// its slot and history in registers until the final writeback.
	m0 := set[1]
	resident := set[0] == key && m0>>63 != 0
	if !resident {
		t1, m1 := set[2], set[3]
		t2, m2 := set[4], set[5]
		t3, m3 := set[6], set[7]
		rest := (b2u(t1 == key)&(m1>>63))<<1 |
			(b2u(t2 == key)&(m2>>63))<<2 |
			(b2u(t3 == key)&(m3>>63))<<3
		if rest != 0 {
			way := bits.TrailingZeros64(rest)
			em := set[2*way+1]
			c2 := b2u(uint64(way) >= 2)
			c3 := b2u(uint64(way) >= 3)
			set[2], set[3] = set[0], m0
			set[4], set[5] = sel(c2, t1, t2), sel(c2, m1, m2)
			set[6], set[7] = sel(c3, t2, t3), sel(c3, m2, m3)
			m0 = em
			resident = true
		}
	}
	slot := m0 >> btbSlotShift & btbSlotMask
	hist := m0 & b.histMask

	kernel := p.inKernel
	line := uint64(p.cfg.LineSize)
	statWrong := b2u(target <= pc)
	var refs, takenSum, misSum, missSum uint64
	for i := range events {
		t := b2u(events[i].Taken)
		refs++
		takenSum += t
		var wrong uint64
		if resident {
			pi := slot<<b.histBits | hist
			ctr := b.pattern[pi]
			wrong = uint64(ctr>>1) ^ t
			b.pattern[pi] = ctrNext[uint64(ctr)<<1|t]
			hist = (hist<<1 | t) & b.histMask
		} else {
			wrong = statWrong ^ t
			missSum++
			if t != 0 {
				// Allocate exactly as the slow path would: evict the
				// LRU way, recycle its slot, history starts at 1.
				vslot := set[7] >> btbSlotShift & btbSlotMask
				set[6], set[7] = set[4], set[5]
				set[4], set[5] = set[2], set[3]
				set[2], set[3] = set[0], set[1]
				copy(b.pattern[vslot<<b.histBits:(vslot+1)<<b.histBits], b.fresh)
				slot, hist = vslot, 1
				resident = true
			}
		}
		misSum += wrong
		if wrong != 0 && !kernel {
			p.counts.BranchMispredictions++
			p.charge(core.TB, p.cfg.MispredictPenalty)
			wrongPath := target
			if t == 0 {
				wrongPath = pc + line
			}
			for w := 0; w < p.cfg.WrongPathLines; w++ {
				p.l1i.touch(wrongPath + uint64(w)*line)
			}
		}
	}
	if resident {
		set[0] = key
		set[1] = btbValid | slot<<btbSlotShift | hist
	}
	b.refs += refs
	b.taken += takenSum
	b.mispredict += misSum
	b.missesBTB += missSum
	if !kernel {
		p.counts.BranchesRetired += refs
		p.counts.BTBMisses += missSum
	}
}

// maybeInterrupt fires the OS timer when gross time crosses the next
// deadline. The handler's code walks through the instruction cache
// hierarchy (displacing DBMS code, Section 5.2.2's hypothesis), its
// instructions are retired in kernel mode, and the handler touches a
// little kernel data.
func (p *Pipeline) maybeInterrupt() {
	if p.cfg.InterruptCycles <= 0 || p.inKernel || p.grossCycles < p.nextInterrupt {
		return
	}
	p.nextInterrupt = p.grossCycles + p.cfg.InterruptCycles
	p.interrupts++
	p.inKernel = true
	line := uint64(p.cfg.LineSize)
	end := kernelBase + uint64(p.cfg.InterruptCodeBytes)
	for a := kernelBase; a < end; a += line {
		// Kernel code displaces DBMS lines. The fetches don't count as
		// user references, so they pollute without perturbing the user
		// formulae, matching the paper's user-mode measurements.
		p.l1i.touch(a)
		p.l2.touch(a)
	}
	// Invalidate the fetch-page memo: the handler rewrote the ITLB's
	// recent history too.
	p.haveIPage = false
	p.counts.KernelInstructions += uint64(p.cfg.InterruptInstrs)
	p.inKernel = false
}

// Interrupts returns how many OS timer interrupts fired.
func (p *Pipeline) Interrupts() uint64 { return p.interrupts }

// Breakdown assembles the execution-time decomposition accumulated so
// far into a core.Breakdown.
func (p *Pipeline) Breakdown() *core.Breakdown {
	b := &core.Breakdown{Counts: p.counts}
	copy(b.Cycles[:], p.cycles[:])
	return b
}

// ResetStats zeroes all event counters and accumulated stall time but
// keeps cache, TLB and predictor contents — the paper's warm-up
// protocol: run the query several times, then measure.
func (p *Pipeline) ResetStats() {
	p.cycles = [12]float64{}
	p.counts = core.Counts{}
	p.l1i.resetStats()
	p.l1d.resetStats()
	p.l2.resetStats()
	p.itlb.resetStats()
	p.dtlb.resetStats()
	p.bp.resetStats()
	p.grossCycles = 0
	p.nextInterrupt = p.cfg.InterruptCycles
	p.refsSinceL2DMiss = 1 << 30
	p.inFlight = 0
	p.interrupts = 0
}

// FlushAll empties caches, TLBs and the predictor (cold start).
func (p *Pipeline) FlushAll() {
	p.l1i.flush()
	p.l1d.flush()
	p.l2.flush()
	p.itlb.flush()
	p.dtlb.flush()
	p.bp.flush()
	p.haveIPage = false
}

// Seconds converts a cycle count to seconds at the configured clock.
func (p *Pipeline) Seconds(cycles float64) float64 {
	return cycles / (float64(p.cfg.ClockMHz) * 1e6)
}

// HardwareRates reports simulator-level rates useful in diagnostics
// and ablation benches.
type HardwareRates struct {
	L1IMissRate     float64
	L1DMissRate     float64
	L2MissRate      float64
	ITLBMissRate    float64
	DTLBMissRate    float64
	BTBMissRate     float64
	MispredictRate  float64
	L2Writebacks    uint64
	L1DWritebacks   uint64
	TakenBranchFrac float64
}

// Rates returns the current hardware rates.
func (p *Pipeline) Rates() HardwareRates {
	r := HardwareRates{
		L1IMissRate:    p.l1i.missRate(),
		L1DMissRate:    p.l1d.missRate(),
		L2MissRate:     p.l2.missRate(),
		ITLBMissRate:   p.itlb.missRate(),
		DTLBMissRate:   p.dtlb.missRate(),
		BTBMissRate:    p.bp.missRate(),
		MispredictRate: p.bp.mispredictRate(),
		L2Writebacks:   p.l2.wbacks,
		L1DWritebacks:  p.l1d.wbacks,
	}
	if p.bp.refs > 0 {
		r.TakenBranchFrac = float64(p.bp.taken) / float64(p.bp.refs)
	}
	return r
}
