package xeon

import (
	"encoding/binary"
	"fmt"
	"math"
)

// State is a snapshot of a Pipeline's complete simulated machine
// state: the packed way words of every cache and TLB, the BTB's
// tag/metadata words and pattern tables, the fetch-page memo, the
// non-blocking-miss overlap window, and the interrupt phase. It is
// everything the next drained event can observe — capturing and
// restoring it is a handful of memcpys (~150 KB at the default
// geometry), orders of magnitude cheaper than re-draining a warm-up
// pass of a multi-million-event stream.
//
// A State deliberately excludes the measurement accumulators (stall
// cycles, event counts, per-structure hit/miss counters): those are
// what ResetStats zeroes between the warm-up passes and the measured
// run, so a snapshot taken after warm-up plus Restore plus ResetStats
// reproduces the paper's Section 4.3 protocol exactly.
type State struct {
	l1i, l1d, l2 []uint64
	itlb, dtlb   []uint64
	btbEnts      []uint64
	btbPattern   []uint8

	lastIPage        uint64
	haveIPage        bool
	refsSinceL2DMiss int
	inFlight         int

	// interruptPhase is nextInterrupt - grossCycles: the gross-cycle
	// distance to the next OS timer interrupt. Absolute deadlines keep
	// growing run over run, but only the distance affects future
	// evolution, so the snapshot stores (and Equal compares) the
	// relative form. Zero when interrupts are disabled.
	interruptPhase float64
}

// copyWords grows dst to len(src) reusing capacity, then copies.
func copyWords(dst, src []uint64) []uint64 {
	if cap(dst) < len(src) {
		dst = make([]uint64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// Snapshot captures the pipeline's simulated state into dst, reusing
// its buffers when large enough; pass nil to allocate a fresh State.
func (p *Pipeline) Snapshot(dst *State) *State {
	if dst == nil {
		dst = &State{}
	}
	dst.l1i = copyWords(dst.l1i, p.l1i.ents)
	dst.l1d = copyWords(dst.l1d, p.l1d.ents)
	dst.l2 = copyWords(dst.l2, p.l2.ents)
	dst.itlb = copyWords(dst.itlb, p.itlb.c.ents)
	dst.dtlb = copyWords(dst.dtlb, p.dtlb.c.ents)
	dst.btbEnts = copyWords(dst.btbEnts, p.bp.ents)
	if cap(dst.btbPattern) < len(p.bp.pattern) {
		dst.btbPattern = make([]uint8, len(p.bp.pattern))
	}
	dst.btbPattern = dst.btbPattern[:len(p.bp.pattern)]
	copy(dst.btbPattern, p.bp.pattern)
	dst.lastIPage = p.lastIPage
	dst.haveIPage = p.haveIPage
	dst.refsSinceL2DMiss = p.refsSinceL2DMiss
	dst.inFlight = p.inFlight
	if p.cfg.InterruptCycles > 0 {
		dst.interruptPhase = p.nextInterrupt - p.grossCycles
	} else {
		dst.interruptPhase = 0
	}
	return dst
}

// checkGeometry verifies the snapshot's structure sizes match the
// pipeline's configuration, without mutating anything.
func (p *Pipeline) checkGeometry(s *State) error {
	if len(s.l1i) != len(p.l1i.ents) || len(s.l1d) != len(p.l1d.ents) ||
		len(s.l2) != len(p.l2.ents) ||
		len(s.itlb) != len(p.itlb.c.ents) || len(s.dtlb) != len(p.dtlb.c.ents) ||
		len(s.btbEnts) != len(p.bp.ents) || len(s.btbPattern) != len(p.bp.pattern) {
		return fmt.Errorf("xeon: snapshot geometry does not match pipeline configuration")
	}
	return nil
}

// Restore overwrites the pipeline's simulated state with the
// snapshot. The measurement accumulators are left alone (callers
// running the warm-cache protocol ResetStats immediately after).
// Gross time restarts at zero with the snapshot's interrupt phase as
// the next deadline, which evolves identically to the snapshotted
// pipeline's absolute clock. Restoring into a pipeline whose
// configuration has different structure geometry is an error, checked
// before anything is copied — a failed Restore leaves the pipeline
// untouched.
func (p *Pipeline) Restore(s *State) error {
	if err := p.checkGeometry(s); err != nil {
		return err
	}
	copy(p.l1i.ents, s.l1i)
	copy(p.l1d.ents, s.l1d)
	copy(p.l2.ents, s.l2)
	copy(p.itlb.c.ents, s.itlb)
	copy(p.dtlb.c.ents, s.dtlb)
	copy(p.bp.ents, s.btbEnts)
	copy(p.bp.pattern, s.btbPattern)
	p.lastIPage = s.lastIPage
	p.haveIPage = s.haveIPage
	p.refsSinceL2DMiss = s.refsSinceL2DMiss
	p.inFlight = s.inFlight
	p.grossCycles = 0
	if p.cfg.InterruptCycles > 0 {
		p.nextInterrupt = s.interruptPhase
	} else {
		p.nextInterrupt = p.cfg.InterruptCycles
	}
	return nil
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two snapshots describe the same simulated
// state: identical structure contents and identical forward dynamics
// (fetch-page memo, overlap window, interrupt phase). When the state
// after warm-up pass i equals the state after pass i-1, every further
// pass of the same stream is a fixed point — the harness uses this to
// stop warm-up early.
func (s *State) Equal(o *State) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.lastIPage != o.lastIPage || s.haveIPage != o.haveIPage ||
		s.refsSinceL2DMiss != o.refsSinceL2DMiss || s.inFlight != o.inFlight ||
		s.interruptPhase != o.interruptPhase {
		return false
	}
	if !wordsEqual(s.l1i, o.l1i) || !wordsEqual(s.l1d, o.l1d) || !wordsEqual(s.l2, o.l2) ||
		!wordsEqual(s.itlb, o.itlb) || !wordsEqual(s.dtlb, o.dtlb) ||
		!wordsEqual(s.btbEnts, o.btbEnts) {
		return false
	}
	if len(s.btbPattern) != len(o.btbPattern) {
		return false
	}
	for i, v := range s.btbPattern {
		if v != o.btbPattern[i] {
			return false
		}
	}
	return true
}

// stateWireVersion tags the MarshalBinary layout.
const stateWireVersion = 1

// stateMaxWords bounds each serialized section so a corrupt length
// prefix cannot drive a huge allocation: 1<<24 uint64 words is a
// 128 MiB cache, far beyond any valid configuration.
const stateMaxWords = 1 << 24

// MarshalBinary serializes the snapshot: a version byte, seven
// varint-free fixed u32 section lengths, the scalar block, then the
// raw little-endian section payloads. The layout is deterministic, so
// identical states marshal to identical bytes.
func (s *State) MarshalBinary() ([]byte, error) {
	sections := [][]uint64{s.l1i, s.l1d, s.l2, s.itlb, s.dtlb, s.btbEnts}
	n := 1 + 7*4 + 8 + 1 + 8 + 8 + 8 + len(s.btbPattern)
	for _, sec := range sections {
		n += 8 * len(sec)
	}
	out := make([]byte, 0, n)
	out = append(out, stateWireVersion)
	for _, sec := range sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(sec)))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.btbPattern)))
	out = binary.LittleEndian.AppendUint64(out, s.lastIPage)
	out = append(out, byte(b2u(s.haveIPage)))
	out = binary.LittleEndian.AppendUint64(out, uint64(int64(s.refsSinceL2DMiss)))
	out = binary.LittleEndian.AppendUint64(out, uint64(int64(s.inFlight)))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.interruptPhase))
	for _, sec := range sections {
		for _, w := range sec {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	}
	out = append(out, s.btbPattern...)
	return out, nil
}

// UnmarshalBinary parses a MarshalBinary payload, validating every
// length before allocating. Corrupt or truncated input returns an
// error; it never panics.
func (s *State) UnmarshalBinary(data []byte) error {
	const header = 1 + 7*4 + 8 + 1 + 8 + 8 + 8
	if len(data) < header {
		return fmt.Errorf("xeon: snapshot truncated: %d bytes", len(data))
	}
	if data[0] != stateWireVersion {
		return fmt.Errorf("xeon: snapshot version %d unsupported", data[0])
	}
	var lens [7]int
	off := 1
	total := 0
	for i := range lens {
		lens[i] = int(binary.LittleEndian.Uint32(data[off:]))
		if lens[i] > stateMaxWords {
			return fmt.Errorf("xeon: snapshot section %d length %d exceeds limit", i, lens[i])
		}
		total += lens[i]
		off += 4
	}
	s.lastIPage = binary.LittleEndian.Uint64(data[off:])
	off += 8
	switch data[off] {
	case 0:
		s.haveIPage = false
	case 1:
		s.haveIPage = true
	default:
		return fmt.Errorf("xeon: snapshot haveIPage byte %d invalid", data[off])
	}
	off++
	s.refsSinceL2DMiss = int(int64(binary.LittleEndian.Uint64(data[off:])))
	off += 8
	s.inFlight = int(int64(binary.LittleEndian.Uint64(data[off:])))
	off += 8
	s.interruptPhase = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	want := off + 8*(total-lens[6]) + lens[6]
	if len(data) != want {
		return fmt.Errorf("xeon: snapshot length %d, want %d", len(data), want)
	}
	secs := [6]*[]uint64{&s.l1i, &s.l1d, &s.l2, &s.itlb, &s.dtlb, &s.btbEnts}
	for i, dst := range secs {
		sec := make([]uint64, lens[i])
		for j := range sec {
			sec[j] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		*dst = sec
	}
	s.btbPattern = make([]uint8, lens[6])
	copy(s.btbPattern, data[off:])
	return nil
}

// MultiState is a snapshot of every pipeline in a MultiPipeline, in
// gang order.
type MultiState struct {
	states []*State
}

// K returns the number of per-pipeline states.
func (s *MultiState) K() int { return len(s.states) }

// At returns the i-th pipeline's state (shared, not copied), so the
// harness can file gang snapshots into the same per-config memo the
// solo path uses.
func (s *MultiState) At(i int) *State { return s.states[i] }

// Snapshot captures every pipeline's state into dst, reusing its
// per-pipeline States when the gang width matches.
func (m *MultiPipeline) Snapshot(dst *MultiState) *MultiState {
	if dst == nil || len(dst.states) != len(m.pipes) {
		dst = &MultiState{states: make([]*State, len(m.pipes))}
	}
	for i, p := range m.pipes {
		dst.states[i] = p.Snapshot(dst.states[i])
	}
	return dst
}

// Restore restores every pipeline from the matching per-pipeline
// state. The gang widths must agree. Like RestoreStates, the whole
// gang is geometry-checked before any pipeline is touched.
func (m *MultiPipeline) Restore(s *MultiState) error {
	if len(s.states) != len(m.pipes) {
		return fmt.Errorf("xeon: snapshot gang width %d, pipeline gang width %d", len(s.states), len(m.pipes))
	}
	return m.RestoreStates(s.states)
}

// RestoreStates restores every pipeline from an explicit per-pipeline
// state slice — the gang path's way to reuse solo-keyed snapshots.
// All-or-nothing: every state's geometry is checked against its
// pipeline before any pipeline is mutated, so a failure never leaves
// the gang half-restored.
func (m *MultiPipeline) RestoreStates(states []*State) error {
	if len(states) != len(m.pipes) {
		return fmt.Errorf("xeon: %d states for gang width %d", len(states), len(m.pipes))
	}
	for i, p := range m.pipes {
		if err := p.checkGeometry(states[i]); err != nil {
			return err
		}
	}
	for i, p := range m.pipes {
		if err := p.Restore(states[i]); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports per-pipeline state equality across the whole gang.
func (s *MultiState) Equal(o *MultiState) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.states) != len(o.states) {
		return false
	}
	for i, st := range s.states {
		if !st.Equal(o.states[i]) {
			return false
		}
	}
	return true
}
