package xeon

import (
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/trace"
)

// quietConfig returns the default platform with OS interrupts off, so
// unit tests see only the traffic they generate.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	return cfg
}

func TestDefaultConfigMatchesTable41(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.L1ISizeKB != 16 || cfg.L1DSizeKB != 16 {
		t.Error("Table 4.1: split 16KB/16KB L1")
	}
	if cfg.L2SizeKB != 512 {
		t.Error("Table 4.1: 512KB L2")
	}
	if cfg.LineSize != 32 {
		t.Error("Table 4.1: 32-byte lines")
	}
	if cfg.CacheAssoc != 4 {
		t.Error("Table 4.1: 4-way associativity")
	}
	if cfg.L1MissPenalty != 4 {
		t.Error("Table 4.1: 4-cycle L1 miss penalty with L2 hit")
	}
	if cfg.MemoryLatency < 60 || cfg.MemoryLatency > 70 {
		t.Error("Section 5.2.1: 60-70 cycle memory latency")
	}
	if cfg.MispredictPenalty != 17 {
		t.Error("Table 4.2: 17-cycle misprediction penalty")
	}
	if cfg.ITLBPenalty != 32 {
		t.Error("Table 4.2: 32-cycle ITLB miss penalty")
	}
	if cfg.BTBEntries != 512 {
		t.Error("Pentium II: 512-entry BTB")
	}
	if cfg.ClockMHz != 400 {
		t.Error("Section 4.1: 400 MHz clock")
	}
	if cfg.MissesOutstanding != 4 {
		t.Error("Table 4.1: 4 outstanding misses")
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.PageSize = 3000 },
		func(c *Config) { c.L1ISizeKB = 0 },
		func(c *Config) { c.CacheAssoc = 0 },
		func(c *Config) { c.ITLBEntries = 1 },
		func(c *Config) { c.BTBEntries = 1 },
		func(c *Config) { c.HistoryBits = 0 },
		func(c *Config) { c.HistoryBits = 30 },
		func(c *Config) { c.RetireWidth = 0 },
		func(c *Config) { c.OverlapFraction = 2 },
		func(c *Config) { c.MemoryLatency = -1 },
		func(c *Config) { c.L1ISizeKB = 3; c.CacheAssoc = 7 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should have failed validation", i)
		}
	}
}

func TestComputationAccounting(t *testing.T) {
	p := New(quietConfig())
	p.FetchBlock(trace.CodeBase, 64, 16, 30)
	b := p.Breakdown()
	if b.Counts.InstructionsRetired != 16 || b.Counts.UopsRetired != 30 {
		t.Errorf("retired counts wrong: %+v", b.Counts)
	}
	wantTC := 30.0 / 3
	if b.Cycles[core.TC] != wantTC {
		t.Errorf("TC = %v, want %v", b.Cycles[core.TC], wantTC)
	}
}

func TestInstructionStallCharging(t *testing.T) {
	p := New(quietConfig())
	// Cold fetch of 2 lines: both miss L1I and L2.
	p.FetchBlock(trace.CodeBase, 64, 16, 30)
	b := p.Breakdown()
	if b.Counts.L1IMisses != 2 || b.Counts.L2InstMisses != 2 {
		t.Errorf("cold fetch misses: %+v", b.Counts)
	}
	if b.Cycles[core.TL2I] != 2*p.cfg.MemoryLatency {
		t.Errorf("TL2I = %v, want %v", b.Cycles[core.TL2I], 2*p.cfg.MemoryLatency)
	}
	// Refetch: all hits, no new stalls.
	before := b.Cycles[core.TL1I] + b.Cycles[core.TL2I]
	p.FetchBlock(trace.CodeBase, 64, 16, 30)
	b2 := p.Breakdown()
	if got := b2.Cycles[core.TL1I] + b2.Cycles[core.TL2I]; got != before {
		t.Errorf("warm refetch charged stalls: %v -> %v", before, got)
	}
	// Evict from L1I only (fill conflicting lines), keep in L2: next
	// fetch pays TL1I at 4 cycles.
	cfg := p.cfg
	waySpan := uint64(cfg.L1ISizeKB*1024) / uint64(cfg.CacheAssoc)
	for i := 1; i <= cfg.CacheAssoc; i++ {
		p.FetchBlock(trace.CodeBase+uint64(i)*waySpan, 32, 8, 10)
	}
	p.ResetStats()
	p.FetchBlock(trace.CodeBase, 32, 8, 10)
	b3 := p.Breakdown()
	if b3.Counts.L1IMisses != 1 || b3.Counts.L2InstMisses != 0 {
		t.Fatalf("expected L1I miss with L2 hit: %+v", b3.Counts)
	}
	if b3.Cycles[core.TL1I] != cfg.L1MissPenalty {
		t.Errorf("TL1I = %v, want %v", b3.Cycles[core.TL1I], cfg.L1MissPenalty)
	}
}

func TestDataStallCharging(t *testing.T) {
	p := New(quietConfig())
	p.Load(trace.HeapBase, 8)
	b := p.Breakdown()
	if b.Counts.L1DMisses != 1 || b.Counts.L2DataMisses != 1 {
		t.Fatalf("cold load should miss both levels: %+v", b.Counts)
	}
	if b.Cycles[core.TL2D] != p.cfg.MemoryLatency {
		t.Errorf("TL2D = %v, want %v", b.Cycles[core.TL2D], p.cfg.MemoryLatency)
	}
	if b.Counts.DTLBMisses != 1 || b.Cycles[core.TDTLB] != p.cfg.DTLBPenalty {
		t.Errorf("DTLB accounting wrong: %+v", b)
	}
	// Warm re-load: pure hit.
	p.ResetStats()
	p.Load(trace.HeapBase, 8)
	b2 := p.Breakdown()
	if b2.Counts.L1DMisses != 0 || b2.TM() != 0 {
		t.Errorf("warm load should be free: %+v", b2)
	}
}

func TestLoadSpanningTwoLines(t *testing.T) {
	p := New(quietConfig())
	// 8-byte load at line boundary minus 4 touches two lines.
	p.Load(trace.HeapBase+28, 8)
	b := p.Breakdown()
	if b.Counts.L1DReferences != 2 {
		t.Errorf("spanning load references = %d, want 2", b.Counts.L1DReferences)
	}
}

func TestStoreMakesLinesDirty(t *testing.T) {
	p := New(quietConfig())
	p.Store(trace.HeapBase, 8)
	// Evict it from L1D by filling the set.
	waySpan := uint64(p.cfg.L1DSizeKB*1024) / uint64(p.cfg.CacheAssoc)
	for i := 1; i <= p.cfg.CacheAssoc; i++ {
		p.Load(trace.HeapBase+uint64(i)*waySpan, 8)
	}
	if p.l1d.wbacks != 1 {
		t.Errorf("dirty line eviction should write back: %d", p.l1d.wbacks)
	}
}

func TestBranchAccounting(t *testing.T) {
	p := New(quietConfig())
	// Forward taken branch: static mispredict on first execution.
	p.Branch(trace.CodeBase+0x100, trace.CodeBase+0x200, true)
	b := p.Breakdown()
	if b.Counts.BranchesRetired != 1 || b.Counts.BTBMisses != 1 || b.Counts.BranchMispredictions != 1 {
		t.Fatalf("branch counts wrong: %+v", b.Counts)
	}
	if b.Cycles[core.TB] != p.cfg.MispredictPenalty {
		t.Errorf("TB = %v, want %v", b.Cycles[core.TB], p.cfg.MispredictPenalty)
	}
	// Same branch again: BTB hit, predicted taken soon.
	for i := 0; i < 10; i++ {
		p.Branch(trace.CodeBase+0x100, trace.CodeBase+0x200, true)
	}
	b2 := p.Breakdown()
	if b2.Counts.BranchMispredictions > 2 {
		t.Errorf("always-taken branch kept mispredicting: %+v", b2.Counts)
	}
}

func TestWrongPathPollution(t *testing.T) {
	cfg := quietConfig()
	cfg.WrongPathLines = 2
	p := New(cfg)
	// Fill a target line via misprediction pollution; it should be
	// resident in L1I afterwards without L1I references being counted.
	target := trace.CodeBase + 0x4000
	p.Branch(trace.CodeBase+0x100, target, true) // forward taken -> mispredict
	b := p.Breakdown()
	if b.Counts.L1IReferences != 0 {
		t.Errorf("pollution counted as references: %d", b.Counts.L1IReferences)
	}
	if !p.l1i.contains(target) {
		t.Error("wrong-path line should be resident in L1I")
	}
}

func TestResourceStallsAndRecords(t *testing.T) {
	p := New(quietConfig())
	p.ResourceStall(10, 5, 2)
	p.RecordProcessed()
	b := p.Breakdown()
	if b.Cycles[core.TDEP] != 10 || b.Cycles[core.TFU] != 5 || b.Cycles[core.TILD] != 2 {
		t.Errorf("resource stalls wrong: %+v", b.Cycles)
	}
	if b.Counts.Records != 1 {
		t.Errorf("records = %d, want 1", b.Counts.Records)
	}
	if b.TR() != 17 {
		t.Errorf("TR = %v, want 17", b.TR())
	}
}

func TestDataBurstCountsRepeatsAsHits(t *testing.T) {
	p := New(quietConfig())
	p.DataBurst(trace.PrivateBase, 256, 50, 10)
	b := p.Breakdown()
	if b.Counts.L1DReferences != 60 {
		t.Errorf("burst references = %d, want 60", b.Counts.L1DReferences)
	}
	// 256 bytes = 8 lines (+1 if unaligned): misses bounded by lines.
	if b.Counts.L1DMisses > 9 {
		t.Errorf("burst misses = %d, want <= 9", b.Counts.L1DMisses)
	}
	// Second burst over the same region: all hits.
	p.ResetStats()
	p.DataBurst(trace.PrivateBase, 256, 50, 10)
	b2 := p.Breakdown()
	if b2.Counts.L1DMisses != 0 {
		t.Errorf("warm burst should not miss: %+v", b2.Counts)
	}
}

func TestOverlapAccumulates(t *testing.T) {
	cfg := quietConfig()
	cfg.OverlapWindow = 8
	cfg.OverlapFraction = 0.25
	p := New(cfg)
	// Back-to-back L2 misses: second overlaps with first.
	p.Load(trace.HeapBase, 8)
	p.Load(trace.HeapBase+64, 8)
	b := p.Breakdown()
	if b.Counts.L2DataMisses != 2 {
		t.Fatalf("want 2 L2 misses, got %+v", b.Counts)
	}
	wantOvl := 0.25 * cfg.MemoryLatency
	if b.Cycles[core.TOVL] != wantOvl {
		t.Errorf("TOVL = %v, want %v", b.Cycles[core.TOVL], wantOvl)
	}
	// TL2D stays the upper bound.
	if b.Cycles[core.TL2D] != 2*cfg.MemoryLatency {
		t.Errorf("TL2D = %v, want %v", b.Cycles[core.TL2D], 2*cfg.MemoryLatency)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("breakdown invalid: %v", err)
	}
}

func TestIsolatedMissesDoNotOverlap(t *testing.T) {
	cfg := quietConfig()
	cfg.OverlapWindow = 2
	p := New(cfg)
	p.Load(trace.HeapBase, 8)
	// Many intervening hits push the next miss outside the window.
	for i := 0; i < 10; i++ {
		p.Load(trace.HeapBase, 8)
	}
	p.Load(trace.HeapBase+4096, 8)
	b := p.Breakdown()
	if b.Cycles[core.TOVL] != 0 {
		t.Errorf("distant misses should not overlap: TOVL=%v", b.Cycles[core.TOVL])
	}
}

func TestOSInterruptPollutesL1I(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 1000 // fire quickly
	p := New(cfg)
	// Warm a code line.
	p.FetchBlock(trace.CodeBase, 32, 8, 10)
	// Generate enough gross cycles to cross the deadline.
	for i := 0; i < 100; i++ {
		p.FetchBlock(trace.CodeBase+uint64(32*(i%4)), 32, 200, 600)
	}
	if p.Interrupts() == 0 {
		t.Fatal("interrupt never fired")
	}
	b := p.Breakdown()
	if b.Counts.KernelInstructions == 0 {
		t.Error("kernel instructions not counted")
	}
	// 12KB of kernel code through a 16KB L1I displaces most DBMS lines.
	if p.l1i.contains(trace.CodeBase + 96) {
		// The most recently fetched user lines may survive; the warmed
		// but not recently touched line should be gone. This is a weak
		// property but catches a no-op interrupt.
		t.Log("user line survived interrupt (acceptable if recently touched)")
	}
}

func TestResetStatsKeepsWarmState(t *testing.T) {
	p := New(quietConfig())
	p.FetchBlock(trace.CodeBase, 128, 32, 60)
	p.Load(trace.HeapBase, 8)
	p.ResetStats()
	b := p.Breakdown()
	if b.GrossTotal() != 0 || b.Counts.InstructionsRetired != 0 {
		t.Error("ResetStats should zero the breakdown")
	}
	// Warm state retained: refetch hits.
	p.FetchBlock(trace.CodeBase, 128, 32, 60)
	b2 := p.Breakdown()
	if b2.Counts.L1IMisses != 0 {
		t.Errorf("warm state lost: %+v", b2.Counts)
	}
	p.FlushAll()
	p.ResetStats()
	p.FetchBlock(trace.CodeBase, 128, 32, 60)
	b3 := p.Breakdown()
	if b3.Counts.L1IMisses == 0 {
		t.Error("FlushAll should force cold misses")
	}
}

func TestBreakdownValidatesAfterMixedWork(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 2000; i++ {
		a := trace.CodeBase + uint64(i%64)*32
		p.FetchBlock(a, 96, 24, 50)
		p.Load(trace.HeapBase+uint64(i)*100, 8)
		p.Store(trace.HeapBase+uint64(i)*100+8, 8)
		p.Branch(a+16, a, i%3 == 0)
		p.DataBurst(trace.PrivateBase, 512, 20, 5)
		p.ResourceStall(2, 1, 0.2)
		p.RecordProcessed()
	}
	b := p.Breakdown()
	if err := b.Validate(); err != nil {
		t.Fatalf("breakdown invalid after mixed work: %v\n%s", err, b.Report())
	}
	if b.Counts.Records != 2000 {
		t.Errorf("records = %d", b.Counts.Records)
	}
	if b.Total() <= 0 {
		t.Error("total time should be positive")
	}
	if p.Seconds(4e8) != 1.0 {
		t.Errorf("Seconds(4e8) = %v, want 1.0 at 400MHz", p.Seconds(4e8))
	}
	r := p.Rates()
	if r.L1DMissRate < 0 || r.L1DMissRate > 1 || r.MispredictRate < 0 || r.MispredictRate > 1 {
		t.Errorf("rates out of range: %+v", r)
	}
}

func TestKernelModeExcludedFromUserCounters(t *testing.T) {
	cfg := quietConfig()
	p := New(cfg)
	p.inKernel = true
	p.FetchBlock(kernelBase, 64, 16, 30)
	p.Branch(kernelBase+8, kernelBase, true)
	p.ResourceStall(5, 5, 5)
	p.RecordProcessed()
	p.inKernel = false
	b := p.Breakdown()
	if b.Counts.InstructionsRetired != 0 || b.Counts.BranchesRetired != 0 ||
		b.Counts.Records != 0 || b.TR() != 0 {
		t.Errorf("kernel work leaked into user counters: %+v", b.Counts)
	}
	if b.Counts.KernelInstructions != 16 {
		t.Errorf("kernel instructions = %d, want 16", b.Counts.KernelInstructions)
	}
}
