// Package xeon simulates the processor and memory system of the
// paper's experimental platform — a 400 MHz Pentium II Xeon with split
// 16KB/16KB four-way L1 caches, a unified 512KB four-way L2, 32-byte
// lines at both levels, a 512-entry BTB backed by a two-level adaptive
// predictor with static backward-taken fallback, and separate
// instruction/data TLBs — and implements the execution-time accounting
// of Table 4.2: event counts from the simulated structures multiplied
// by the paper's penalties, with directly modelled stall time where
// the paper's counters measured stall time directly.
//
// The simulator consumes the trace.Processor event stream produced by
// the query engines in internal/engine and yields a core.Breakdown.
package xeon

import "fmt"

// Config describes the simulated platform. DefaultConfig matches
// Table 4.1 and Section 4 of the paper; the ablation benchmarks vary
// individual fields.
type Config struct {
	// ClockMHz is the core clock, used only to convert cycles to
	// seconds in reports. The paper's machine runs at 400 MHz.
	ClockMHz int

	// L1ISizeKB, L1DSizeKB and L2SizeKB are the cache capacities.
	L1ISizeKB int
	L1DSizeKB int
	L2SizeKB  int
	// CacheAssoc is the associativity of all three caches (4-way).
	CacheAssoc int
	// LineSize is the cache line size in bytes at both levels (32).
	LineSize int

	// L1MissPenalty is the stall charged for an L1 miss that hits in
	// L2 (Table 4.1: 4 cycles).
	L1MissPenalty float64
	// MemoryLatency is the main-memory access latency charged for an
	// L2 miss (Section 5.2.1: 60–70 cycles observed; we use the
	// midpoint).
	MemoryLatency float64

	// ITLBEntries and DTLBEntries size the TLBs (Pentium II: 32
	// instruction / 64 data entries). TLBAssoc is their associativity.
	ITLBEntries int
	DTLBEntries int
	TLBAssoc    int
	// ITLBPenalty is charged per ITLB miss (Table 4.2: 32 cycles).
	ITLBPenalty float64
	// DTLBPenalty is charged per DTLB miss. The paper could not
	// measure TDTLB; we simulate it and report it outside TM.
	DTLBPenalty float64
	// PageSize is the virtual memory page size.
	PageSize int

	// BTBEntries is the branch target buffer capacity (Pentium II:
	// 512 entries, 4-way). BTBAssoc is its associativity.
	BTBEntries int
	BTBAssoc   int
	// HistoryBits is the per-entry branch history length of the
	// two-level adaptive predictor (Yeh & Patt).
	HistoryBits int
	// MispredictPenalty is charged per mispredicted retired branch
	// (Table 4.2: 17 cycles).
	MispredictPenalty float64
	// WrongPathLines is how many instruction lines the front end
	// fetches down the wrong path before a misprediction resolves;
	// they pollute the L1 I-cache (Section 3.2's note that prefetching
	// "can increase the branch misprediction penalty").
	WrongPathLines int

	// RetireWidth is the μop retire bandwidth per cycle; TC is
	// estimated as μops retired divided by this width (Table 4.2:
	// "estimated minimum based on μops retired").
	RetireWidth float64

	// OverlapWindow and OverlapFraction model the non-blocking caches:
	// an L2 data miss arriving within OverlapWindow data references of
	// the previous one overlaps OverlapFraction of its latency with
	// that predecessor (up to MissesOutstanding in flight). The paper
	// measured the workload as latency-bound with little overlap.
	OverlapWindow     int
	OverlapFraction   float64
	MissesOutstanding int

	// InterruptCycles is the period of the simulated OS timer
	// interrupt in CPU cycles (NT's 10ms tick at 400MHz = 4M cycles).
	// Zero disables interrupts.
	InterruptCycles float64
	// InterruptCodeBytes is the kernel code footprint fetched per
	// interrupt; it displaces DBMS code from the L1 I-cache
	// (Section 5.2.2's second hypothesis).
	InterruptCodeBytes int
	// InterruptInstrs is the kernel instruction count retired per
	// interrupt, counted in the :SUP (kernel mode) counters.
	InterruptInstrs int
}

// DefaultConfig returns the platform of Table 4.1 / Section 4.
func DefaultConfig() Config {
	return Config{
		ClockMHz:           400,
		L1ISizeKB:          16,
		L1DSizeKB:          16,
		L2SizeKB:           512,
		CacheAssoc:         4,
		LineSize:           32,
		L1MissPenalty:      4,
		MemoryLatency:      65,
		ITLBEntries:        32,
		DTLBEntries:        64,
		TLBAssoc:           4,
		ITLBPenalty:        32,
		DTLBPenalty:        30,
		PageSize:           4096,
		BTBEntries:         512,
		BTBAssoc:           4,
		HistoryBits:        4,
		MispredictPenalty:  17,
		WrongPathLines:     2,
		RetireWidth:        3,
		OverlapWindow:      6,
		OverlapFraction:    0.25,
		MissesOutstanding:  4,
		InterruptCycles:    4_000_000,
		InterruptCodeBytes: 12 * 1024,
		InterruptInstrs:    3000,
	}
}

// Validate reports the first configuration error found.
func (c Config) Validate() error {
	switch {
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("xeon: line size %d must be a positive power of two", c.LineSize)
	case c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("xeon: page size %d must be a positive power of two", c.PageSize)
	case c.L1ISizeKB <= 0 || c.L1DSizeKB <= 0 || c.L2SizeKB <= 0:
		return fmt.Errorf("xeon: cache sizes must be positive")
	case c.CacheAssoc <= 0 || c.TLBAssoc <= 0 || c.BTBAssoc <= 0:
		return fmt.Errorf("xeon: associativities must be positive")
	case c.CacheAssoc&(c.CacheAssoc-1) != 0 || c.TLBAssoc&(c.TLBAssoc-1) != 0:
		// The packed-way probes index sets with a shift, so cache and
		// TLB associativities must be powers of two.
		return fmt.Errorf("xeon: cache/TLB associativities must be powers of two")
	case c.ITLBEntries < c.TLBAssoc || c.DTLBEntries < c.TLBAssoc:
		return fmt.Errorf("xeon: TLBs must hold at least one set")
	case c.BTBEntries < c.BTBAssoc:
		return fmt.Errorf("xeon: BTB must hold at least one set")
	case c.HistoryBits <= 0 || c.HistoryBits > 16:
		return fmt.Errorf("xeon: history bits %d out of range (1..16)", c.HistoryBits)
	case c.RetireWidth <= 0:
		return fmt.Errorf("xeon: retire width must be positive")
	case c.OverlapFraction < 0 || c.OverlapFraction > 1:
		return fmt.Errorf("xeon: overlap fraction %v out of [0,1]", c.OverlapFraction)
	case c.L1MissPenalty < 0 || c.MemoryLatency < 0 || c.ITLBPenalty < 0 ||
		c.DTLBPenalty < 0 || c.MispredictPenalty < 0:
		return fmt.Errorf("xeon: penalties must be non-negative")
	}
	if (c.L1ISizeKB*1024/c.LineSize)%c.CacheAssoc != 0 ||
		(c.L1DSizeKB*1024/c.LineSize)%c.CacheAssoc != 0 ||
		(c.L2SizeKB*1024/c.LineSize)%c.CacheAssoc != 0 {
		return fmt.Errorf("xeon: cache capacity must divide into whole sets")
	}
	return nil
}
