package xeon

import (
	"math/rand"
	"testing"
)

// Property test: the flattened set-associative cache is cross-checked
// against a deliberately naive reference model over randomized access
// streams. The reference keeps, per set, a plain recency-ordered slice
// of {line, dirty} — textbook true LRU with none of the MRU fast
// paths, struct packing or in-place shifting the real implementation
// uses — and the two must agree on every observable after every
// operation: hit/miss outcomes, victim identity, and the running
// refs/misses/evictions/writebacks counters.

// refEntry is one resident line in the reference model.
type refEntry struct {
	line  uint64
	dirty bool
}

// refCache is the naive map-based reference model.
type refCache struct {
	ways      int
	setMask   uint64
	lineShift uint
	sets      map[uint64][]refEntry // set index -> MRU-first entries

	refs      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

func newRefCache(sizeBytes, assoc, lineSize int) *refCache {
	lines := sizeBytes / lineSize
	sets := lines / assoc
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &refCache{
		ways:      assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		sets:      make(map[uint64][]refEntry),
	}
}

func (r *refCache) access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	r.refs++
	line := addr >> r.lineShift
	set := line & r.setMask
	entries := r.sets[set]
	for i, e := range entries {
		if e.line == line {
			// Hit: promote to MRU, fold in the dirty bit.
			e.dirty = e.dirty || write
			entries = append(entries[:i], entries[i+1:]...)
			r.sets[set] = append([]refEntry{e}, entries...)
			return true, 0, false
		}
	}
	r.misses++
	if len(entries) == r.ways {
		v := entries[len(entries)-1]
		entries = entries[:len(entries)-1]
		r.evictions++
		if v.dirty {
			r.wbacks++
			victim = v.line << r.lineShift
			victimDirty = true
		}
	}
	r.sets[set] = append([]refEntry{{line: line, dirty: write}}, entries...)
	return false, victim, victimDirty
}

func (r *refCache) touch(addr uint64) {
	line := addr >> r.lineShift
	set := line & r.setMask
	for _, e := range r.sets[set] {
		if e.line == line {
			return
		}
	}
	entries := r.sets[set]
	if len(entries) == r.ways {
		entries = entries[:len(entries)-1]
		r.evictions++
	}
	r.sets[set] = append([]refEntry{{line: line}}, entries...)
}

// checkAgainstReference drives both models with the same operation
// stream and fails on the first divergence.
func checkAgainstReference(t *testing.T, seed int64, sizeBytes, assoc, lineSize, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := newCache("probe", sizeBytes, assoc, lineSize)
	ref := newRefCache(sizeBytes, assoc, lineSize)

	// A working set a few times the cache capacity: plenty of hits,
	// plenty of evictions, line-granular addresses plus random offsets.
	span := uint64(sizeBytes) * 4
	for i := 0; i < ops; i++ {
		addr := rng.Uint64() % span
		write := rng.Intn(3) == 0
		switch rng.Intn(10) {
		case 9:
			c.touch(addr)
			ref.touch(addr)
		case 8:
			// The folded probe-and-fill the pipeline drains through: it
			// reports only the hit, but every counter must advance
			// exactly as a full access would.
			hit := c.lookup(addr, write)
			rhit, _, _ := ref.access(addr, write)
			if hit != rhit {
				t.Fatalf("op %d (addr %#x write %v): lookup hit=%v, reference hit=%v",
					i, addr, write, hit, rhit)
			}
		default:
			hit, victim, vd := c.access(addr, write)
			rhit, rvictim, rvd := ref.access(addr, write)
			if hit != rhit || victim != rvictim || vd != rvd {
				t.Fatalf("op %d (addr %#x write %v): got (hit=%v victim=%#x dirty=%v), reference (hit=%v victim=%#x dirty=%v)",
					i, addr, write, hit, victim, vd, rhit, rvictim, rvd)
			}
		}
		if c.refs != ref.refs || c.misses != ref.misses ||
			c.evictions != ref.evictions || c.wbacks != ref.wbacks {
			t.Fatalf("op %d: counters diverged: got refs=%d misses=%d evictions=%d wbacks=%d, reference refs=%d misses=%d evictions=%d wbacks=%d",
				i, c.refs, c.misses, c.evictions, c.wbacks,
				ref.refs, ref.misses, ref.evictions, ref.wbacks)
		}
	}

	// Final-state invariants, set by set.
	for set := 0; set < c.sets; set++ {
		refEntries := ref.sets[uint64(set)]
		// True LRU: the real cache's valid prefix must list exactly the
		// reference's entries in the same recency order, dirty bits
		// included.
		n := 0
		for w := 0; w < c.ways; w++ {
			line, valid, dirty := c.entryAt(set, w)
			if !valid {
				// Validity is a prefix property: no valid entry may
				// follow an invalid way.
				for w2 := w; w2 < c.ways; w2++ {
					if _, v2, _ := c.entryAt(set, w2); v2 {
						t.Fatalf("set %d: valid entry at way %d after invalid way %d", set, w2, w)
					}
				}
				break
			}
			if w >= len(refEntries) {
				t.Fatalf("set %d: more resident ways than the reference (%d)", set, len(refEntries))
			}
			if line != refEntries[w].line || dirty != refEntries[w].dirty {
				t.Fatalf("set %d way %d: got line=%#x dirty=%v, reference line=%#x dirty=%v",
					set, w, line, dirty, refEntries[w].line, refEntries[w].dirty)
			}
			n++
		}
		if n != len(refEntries) {
			t.Fatalf("set %d: %d resident ways, reference has %d", set, n, len(refEntries))
		}
		// No duplicate lines within a set.
		seen := map[uint64]bool{}
		for w := 0; w < c.ways; w++ {
			if line, valid, _ := c.entryAt(set, w); valid {
				if seen[line] {
					t.Fatalf("set %d: line %#x resident twice", set, line)
				}
				seen[line] = true
			}
		}
	}
}

// TestCacheMatchesNaiveLRUModel sweeps geometries (including the three
// real cache shapes and the two TLB shapes) and seeds.
func TestCacheMatchesNaiveLRUModel(t *testing.T) {
	cases := []struct {
		name                      string
		sizeBytes, assoc, lineSum int
	}{
		{"L1-shape", 16 * 1024, 4, 32},
		{"L2-shape", 512 * 1024, 4, 32},
		{"ITLB-shape", 32 * 4096, 4, 4096},
		{"DTLB-shape", 64 * 4096, 4, 4096},
		{"direct-mapped", 4 * 1024, 1, 32},
		{"two-way", 4 * 1024, 2, 64},
		{"fully-deep", 2 * 1024, 8, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				checkAgainstReference(t, seed, tc.sizeBytes, tc.assoc, tc.lineSum, 20000)
			}
		})
	}
}

// TestCacheHitMRUAgreesWithAccess pins the fast path the pipeline
// probes first: whenever hitMRU claims a hit, a naive scan must find
// the line at the MRU way, and the counters must advance exactly as a
// full access would have.
func TestCacheHitMRUAgreesWithAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := newCache("probe", 4*1024, 4, 32)
	ref := newRefCache(4*1024, 4, 32)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64() % (16 * 1024)
		write := rng.Intn(4) == 0
		if c.hitMRU(addr, write) {
			// The reference must agree this is a front-way hit.
			set := (addr >> 5) & ref.setMask
			entries := ref.sets[set]
			if len(entries) == 0 || entries[0].line != addr>>5 {
				t.Fatalf("op %d: hitMRU hit but reference MRU is elsewhere", i)
			}
			ref.access(addr, write) // keep models in lockstep
			continue
		}
		c.access(addr, write)
		ref.access(addr, write)
		if c.refs != ref.refs || c.misses != ref.misses {
			t.Fatalf("op %d: counters diverged after slow path", i)
		}
	}
	if c.refs != ref.refs || c.misses != ref.misses || c.wbacks != ref.wbacks {
		t.Fatalf("final counters diverged: got %d/%d/%d, reference %d/%d/%d",
			c.refs, c.misses, c.wbacks, ref.refs, ref.misses, ref.wbacks)
	}
}
