package xeon

import (
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/trace"
)

func TestInterruptFiresOnSchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 10_000
	p := New(cfg)
	// Generate ~100k gross cycles of fetch work.
	for i := 0; i < 1000; i++ {
		p.FetchBlock(trace.CodeBase+uint64(i%8)*32, 32, 100, 300)
	}
	b := p.Breakdown()
	want := b.GrossTotal() / cfg.InterruptCycles
	got := float64(p.Interrupts())
	if got < want*0.5 || got > want*1.5 {
		t.Errorf("interrupts = %v, expected ~%v for %v gross cycles", got, want, b.GrossTotal())
	}
	if b.Counts.KernelInstructions != p.Interrupts()*uint64(cfg.InterruptInstrs) {
		t.Errorf("kernel instructions = %d for %d interrupts", b.Counts.KernelInstructions, p.Interrupts())
	}
}

func TestInterruptDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	p := New(cfg)
	for i := 0; i < 1000; i++ {
		p.FetchBlock(trace.CodeBase, 32, 100, 300)
	}
	if p.Interrupts() != 0 {
		t.Errorf("interrupts fired while disabled: %d", p.Interrupts())
	}
}

func TestOverlapCappedByOutstandingMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	cfg.OverlapWindow = 100
	cfg.MissesOutstanding = 2
	p := New(cfg)
	// Six back-to-back misses: only one extra miss may overlap per
	// burst of two outstanding.
	for i := 0; i < 6; i++ {
		p.Load(trace.HeapBase+uint64(i)*64, 8)
	}
	b := p.Breakdown()
	maxOverlap := 3 * cfg.OverlapFraction * cfg.MemoryLatency
	if b.Cycles[core.TOVL] > maxOverlap+1e-9 {
		t.Errorf("TOVL = %v exceeds outstanding-miss cap %v", b.Cycles[core.TOVL], maxOverlap)
	}
	if b.Cycles[core.TOVL] == 0 {
		t.Error("back-to-back misses should overlap some latency")
	}
}

func TestTotalNeverNegative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OverlapFraction = 1.0 // extreme overlap
	p := New(cfg)
	for i := 0; i < 500; i++ {
		p.Load(trace.HeapBase+uint64(i)*32, 8)
	}
	b := p.Breakdown()
	if b.Total() <= 0 {
		t.Errorf("total = %v with extreme overlap", b.Total())
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDTLBReportedOutsideTM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	p := New(cfg)
	// Touch many distinct pages to generate DTLB misses.
	for i := 0; i < 256; i++ {
		p.Load(trace.HeapBase+uint64(i)*4096, 8)
	}
	b := p.Breakdown()
	if b.Counts.DTLBMisses == 0 || b.Cycles[core.TDTLB] == 0 {
		t.Fatal("expected DTLB misses")
	}
	// TM must not include TDTLB (the paper could not measure it).
	tm := b.TM()
	var sum float64
	for _, c := range core.MemoryComponents() {
		sum += b.Cycles[c]
	}
	if tm != sum {
		t.Errorf("TM %v includes more than its five components %v", tm, sum)
	}
}

func TestWritebackTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	p := New(cfg)
	// Dirty many lines, then stream over a large range to force
	// evictions and writebacks at both levels.
	for i := 0; i < 2048; i++ {
		p.Store(trace.HeapBase+uint64(i)*32, 8)
	}
	for i := 0; i < 1<<16; i++ {
		p.Load(trace.HeapBase+1<<26+uint64(i)*32, 8)
	}
	r := p.Rates()
	if r.L1DWritebacks == 0 {
		t.Error("expected L1D writebacks")
	}
	if r.L2Writebacks == 0 {
		t.Error("expected L2 writebacks")
	}
}

func TestTakenBranchFraction(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	for i := 0; i < 100; i++ {
		p.Branch(trace.CodeBase+8, trace.CodeBase, true)
	}
	for i := 0; i < 100; i++ {
		p.Branch(trace.CodeBase+64, trace.CodeBase+128, false)
	}
	r := p.Rates()
	if r.TakenBranchFrac < 0.49 || r.TakenBranchFrac > 0.51 {
		t.Errorf("taken fraction = %v, want 0.5", r.TakenBranchFrac)
	}
}

func TestStoreSpanningLinesDirtiesBoth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	p := New(cfg)
	p.Store(trace.HeapBase+30, 8) // spans two lines
	b := p.Breakdown()
	if b.Counts.L1DReferences != 2 {
		t.Errorf("spanning store refs = %d, want 2", b.Counts.L1DReferences)
	}
	if !p.dirtyIn(trace.HeapBase) || !p.dirtyIn(trace.HeapBase+32) {
		t.Error("both spanned lines should be dirty")
	}
}

// dirtyIn reports whether the L1D line holding addr is resident and
// dirty, for white-box checks.
func (p *Pipeline) dirtyIn(addr uint64) bool {
	line := p.l1d.lineAddr(addr)
	set := int(line & p.l1d.setMask)
	for w := 0; w < p.l1d.ways; w++ {
		l, valid, dirty := p.l1d.entryAt(set, w)
		if valid && l == line {
			return dirty
		}
	}
	return false
}

func TestL2UnifiedSharedBetweenCodeAndData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0
	p := New(cfg)
	// Fill a specific L2 set with data lines, then show a code fetch
	// mapping to the same set evicts one: unified L2.
	l2SetSpan := uint64(cfg.L2SizeKB*1024) / uint64(cfg.CacheAssoc)
	base := trace.HeapBase
	for i := 0; i <= cfg.CacheAssoc; i++ {
		p.Load(base+uint64(i)*l2SetSpan, 8)
	}
	// The set now overflows: first line evicted from L2.
	p.ResetStats()
	p.Load(base, 8)
	b := p.Breakdown()
	if b.Counts.L2DataMisses != 1 {
		t.Errorf("expected the evicted line to miss L2 again: %+v", b.Counts)
	}
}

func TestSeconds(t *testing.T) {
	p := New(DefaultConfig())
	if got := p.Seconds(400e6); got != 1 {
		t.Errorf("400M cycles at 400MHz = %v s, want 1", got)
	}
}
