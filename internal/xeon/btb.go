package xeon

import "math/bits"

// btb models the Pentium II branch prediction unit: a set-associative
// Branch Target Buffer whose entries carry per-branch history
// registers feeding pattern tables of two-bit saturating counters (a
// two-level adaptive predictor in the style of Yeh & Patt, which the
// paper cites as the P6 scheme). A BTB hit activates the dynamic
// predictor; a BTB miss falls back to static prediction — backward
// branches taken, forward branches not taken — exactly as Section 5.3
// describes.
//
// The predictor is the hottest structure of the batched event drain,
// and the simulated outcomes and BTB hits are close to coin flips by
// design (the paper's ~50% miss rate), so the layout and control flow
// are tuned for the host, not for abstraction:
//
//   - Each way is two interleaved uint64 words — the tag and a packed
//     metadata word (valid | pattern slot | history) — so a 4-way set
//     is one 64-byte host line and every lane is register-friendly.
//   - The MRU way keeps a dedicated early path: loop branches and hot
//     sites re-hit way 0, where training happens in place with no
//     reorder traffic.
//   - The remaining ways are matched with mask arithmetic instead of a
//     compare-and-break loop, collapsing three effectively random host
//     branches into one hit-vs-miss decision; the recency reorder on a
//     rest-way hit is an unconditional select writeback.
//   - Branches are kept where they gate real work (MRU hit, rest hit
//     vs miss, allocation): they are speculation points that let the
//     host run ahead. Replacing them wholesale with conditional moves
//     was measured slower — select chains turn control dependencies
//     into serial data dependencies on every event.
//
// Pattern tables are stored out of line: each entry carries a slot
// number into the pattern array, and recency moves shuffle only the
// per-set words while the tables stay put. Eviction recycles the
// victim's slot for the incoming branch (resetting its counters to the
// power-up state), which is observationally identical to the tables
// moving with the entries.
type btb struct {
	sets    int
	ways    int
	setMask uint64

	histBits uint
	histMask uint64

	// ents[(set*ways+way)*2] is the way's tag and ents[...*2+1] its
	// packed metadata: valid(bit 63) | slot(bits 16..62) |
	// history(bits 0..15), recency-ordered per set. The history is
	// stored pre-masked, so the pattern index needs no extra masking.
	ents []uint64
	// pattern[slot<<histBits | history] is a 2-bit counter.
	pattern []uint8
	// fresh is a pattern table's worth of weakly-taken counters,
	// copied over a recycled slot on allocation so eviction never
	// loops over bytes on the hot path.
	fresh []uint8

	refs       uint64
	missesBTB  uint64 // lookups that missed the BTB
	mispredict uint64 // wrong final predictions (dynamic or static)
	taken      uint64
}

const (
	btbValid     uint64 = 1 << 63
	btbSlotShift        = 16
	// btbSlotMask extracts the slot field after the >>16 shift (the
	// valid bit lands on bit 47 and is masked off).
	btbSlotMask uint64 = 1<<47 - 1
	// btbHistField covers the packed history bits.
	btbHistField uint64 = 0xFFFF
)

// newBTB builds a predictor with the given entry count, associativity
// and history length.
func newBTB(entries, assoc, histBits int) *btb {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("xeon: BTB set count must be a positive power of two")
	}
	if histBits < 1 || histBits > 16 {
		panic("xeon: BTB history length must be between 1 and 16 bits")
	}
	n := sets * assoc
	b := &btb{
		sets:     sets,
		ways:     assoc,
		setMask:  uint64(sets - 1),
		histBits: uint(histBits),
		histMask: uint64(1)<<histBits - 1,
		ents:     make([]uint64, 2*n),
		pattern:  make([]uint8, n<<uint(histBits)),
		fresh:    make([]uint8, 1<<uint(histBits)),
	}
	for i := 0; i < n; i++ {
		b.ents[2*i+1] = uint64(i) << btbSlotShift
	}
	// Initialise the two-bit counters to weakly taken, the usual
	// power-up state.
	for i := range b.pattern {
		b.pattern[i] = 2
	}
	for i := range b.fresh {
		b.fresh[i] = 2
	}
	return b
}

// ctrNext[ctr<<1|outcome] is the two-bit saturating counter's next
// state: decrement on not-taken, increment on taken, clamped at the
// ends. A table walk instead of compare-and-branch keeps the host's
// own branch predictor out of the loop.
var ctrNext = [8]uint8{0, 1, 0, 2, 1, 3, 2, 3}

// b2u returns 1 for true, 0 for false (compiled branch-free).
func b2u(b bool) uint64 {
	var u uint64
	if b {
		u = 1
	}
	return u
}

// sel returns a when c is 1 and b when c is 0, branch-free. c must be
// 0 or 1.
func sel(c, a, b uint64) uint64 { return b ^ ((a ^ b) & -c) }

// btbKey folds a branch PC into its BTB tag: 16-byte granules, with
// higher bits folded in so strided branch PCs spread across the sets.
func btbKey(pc uint64) uint64 { return (pc >> 4) ^ (pc >> 13) }

// predict processes one retired branch: it makes the prediction the
// hardware would have made for (pc,target), compares it with the
// architectural outcome, and trains the structures. It returns whether
// the BTB hit and whether the prediction was correct.
func (b *btb) predict(pc, target uint64, taken bool) (btbHit, correct bool) {
	if b.ways != 4 {
		return b.predictAny(pc, target, taken)
	}
	t := b2u(taken)
	b.refs++
	b.taken += t
	key := btbKey(pc)
	base := int(key&b.setMask) * 8
	set := b.ents[base : base+8 : base+8]

	// Match all four ways with mask arithmetic over the one-line set:
	// the only control decision on the probe is hit-vs-miss. Branches
	// at distinct sites interleave enough that an MRU-first precheck
	// is just one more effectively random host branch (loop branches
	// never reach here — the batch drain retires whole same-site runs
	// through branchRun).
	t0, m0 := set[0], set[1]
	t1, m1 := set[2], set[3]
	t2, m2 := set[4], set[5]
	t3, m3 := set[6], set[7]
	mask := b2u(t0 == key)&(m0>>63) |
		(b2u(t1 == key)&(m1>>63))<<1 |
		(b2u(t2 == key)&(m2>>63))<<2 |
		(b2u(t3 == key)&(m3>>63))<<3

	if mask == 0 {
		b.missesBTB++
		// Static fallback: backward taken, forward not taken.
		wrong := b2u(target <= pc) ^ t
		b.mispredict += wrong
		if taken {
			// The P6 BTB allocates entries for taken branches only,
			// evicting the set's LRU way and recycling its pattern
			// slot; the branch was taken, so history starts at 1.
			vslot := m3 >> btbSlotShift & btbSlotMask
			set[0], set[1] = key, btbValid|vslot<<btbSlotShift|1
			set[2], set[3] = t0, m0
			set[4], set[5] = t1, m1
			set[6], set[7] = t2, m2
			// Reset the recycled slot's counters to the power-up state
			// with one copy instead of a byte loop.
			copy(b.pattern[vslot<<b.histBits:(vslot+1)<<b.histBits], b.fresh)
		}
		return false, wrong == 0
	}

	// Hit: train the resident entry, then move it to the front. The
	// reorder is an unconditional select writeback of the permuted set
	// — pure store traffic into the line the probe just loaded, where
	// a data-dependent shift loop would be another effectively random
	// host branch. On an MRU hit every word but the front pair writes
	// back unchanged.
	way := uint64(bits.TrailingZeros64(mask))
	em := set[2*way+1]
	pi := (em>>btbSlotShift&btbSlotMask)<<b.histBits | em&b.histMask
	ctr := b.pattern[pi]
	// The dynamic prediction is the counter's high bit: wrong exactly
	// when that bit differs from the outcome.
	wrong := uint64(ctr>>1) ^ t
	b.pattern[pi] = ctrNext[uint64(ctr)<<1|t]
	b.mispredict += wrong
	c1 := b2u(way >= 1)
	c2 := b2u(way >= 2)
	c3 := b2u(way >= 3)
	set[0] = key
	set[1] = em&^btbHistField | (em<<1|t)&b.histMask
	set[2], set[3] = sel(c1, t0, t1), sel(c1, m0, m1)
	set[4], set[5] = sel(c2, t1, t2), sel(c2, m1, m2)
	set[6], set[7] = sel(c3, t2, t3), sel(c3, m2, m3)
	return true, wrong == 0
}

// predictAny is the generic-associativity body: the same semantics as
// the 4-way fast path, written as plain loops.
func (b *btb) predictAny(pc, target uint64, taken bool) (btbHit, correct bool) {
	t := b2u(taken)
	b.refs++
	b.taken += t
	key := btbKey(pc)
	base := int(key&b.setMask) * b.ways * 2

	way := -1
	for w := 0; w < b.ways; w++ {
		if b.ents[base+2*w+1]>>63 != 0 && b.ents[base+2*w] == key {
			way = w
			break
		}
	}

	var wrong uint64
	if way >= 0 {
		btbHit = true
		em := b.ents[base+2*way+1]
		pi := (em>>btbSlotShift&btbSlotMask)<<b.histBits | em&b.histMask
		ctr := b.pattern[pi]
		wrong = uint64(ctr>>1) ^ t
		b.pattern[pi] = ctrNext[uint64(ctr)<<1|t]
		trained := em&^btbHistField | (em<<1|t)&b.histMask
		// Move to front (LRU within the set); pattern tables stay put,
		// addressed through each entry's slot.
		for j := base + 2*way; j > base; j -= 2 {
			b.ents[j] = b.ents[j-2]
			b.ents[j+1] = b.ents[j-1]
		}
		b.ents[base] = key
		b.ents[base+1] = trained
	} else {
		b.missesBTB++
		// Static fallback: backward taken, forward not taken.
		wrong = b2u(target <= pc) ^ t
		if taken {
			last := base + 2*(b.ways-1)
			vslot := b.ents[last+1] >> btbSlotShift & btbSlotMask
			for j := last; j > base; j -= 2 {
				b.ents[j] = b.ents[j-2]
				b.ents[j+1] = b.ents[j-1]
			}
			b.ents[base] = key
			b.ents[base+1] = btbValid | vslot<<btbSlotShift | 1
			copy(b.pattern[vslot<<b.histBits:(vslot+1)<<b.histBits], b.fresh)
		}
	}
	b.mispredict += wrong
	return btbHit, wrong == 0
}

// flush invalidates the whole predictor: tags, valid bits and
// histories clear, slots keep their pattern-table assignments, and
// every counter returns to the power-up state.
func (b *btb) flush() {
	for i := 0; i < len(b.ents); i += 2 {
		b.ents[i] = 0
		b.ents[i+1] &^= btbValid | btbHistField
	}
	for i := range b.pattern {
		b.pattern[i] = 2
	}
}

// resetStats zeroes the counters, keeping the learned state.
func (b *btb) resetStats() {
	b.refs, b.missesBTB, b.mispredict, b.taken = 0, 0, 0, 0
}

// missRate returns BTB misses / branches.
func (b *btb) missRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.missesBTB) / float64(b.refs)
}

// mispredictRate returns mispredictions / branches.
func (b *btb) mispredictRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.mispredict) / float64(b.refs)
}
