package xeon

// btb models the Pentium II branch prediction unit: a set-associative
// Branch Target Buffer whose entries carry per-branch history
// registers feeding pattern tables of two-bit saturating counters (a
// two-level adaptive predictor in the style of Yeh & Patt, which the
// paper cites as the P6 scheme). A BTB hit activates the dynamic
// predictor; a BTB miss falls back to static prediction — backward
// branches taken, forward branches not taken — exactly as Section 5.3
// describes.
//
// Pattern tables are stored out of line: each entry carries a slot
// number into the pattern array, and recency moves shuffle only the
// small entry structs while the tables stay put. Eviction recycles the
// victim's slot for the incoming branch (resetting its counters to the
// power-up state), which is observationally identical to the tables
// moving with the entries but keeps the per-branch bookkeeping — the
// hottest path of the batched event drain — free of copying and
// allocation.
type btb struct {
	sets    int
	ways    int
	setMask uint64

	histBits uint
	histMask uint16

	// ents[set*ways+way] holds the way's state, recency-ordered per
	// set; ents[i].slot indexes that entry's pattern table.
	ents []btbEnt
	// pattern[slot<<histBits | history] is a 2-bit counter.
	pattern []uint8
	// fresh is a pattern table's worth of weakly-taken counters,
	// copied over a recycled slot on allocation so eviction never
	// loops over bytes on the hot path.
	fresh []uint8

	refs       uint64
	missesBTB  uint64 // lookups that missed the BTB
	mispredict uint64 // wrong final predictions (dynamic or static)
	taken      uint64
}

// btbEnt is one BTB way: the branch tag, its history register, and the
// fixed pattern-table slot its counters live in.
type btbEnt struct {
	tag   uint64
	hist  uint16
	slot  uint16
	valid bool
}

// newBTB builds a predictor with the given entry count, associativity
// and history length.
func newBTB(entries, assoc, histBits int) *btb {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("xeon: BTB set count must be a positive power of two")
	}
	n := sets * assoc
	b := &btb{
		sets:     sets,
		ways:     assoc,
		setMask:  uint64(sets - 1),
		histBits: uint(histBits),
		histMask: uint16(1<<histBits - 1),
		ents:     make([]btbEnt, n),
		pattern:  make([]uint8, n<<uint(histBits)),
		fresh:    make([]uint8, 1<<uint(histBits)),
	}
	for i := range b.ents {
		b.ents[i].slot = uint16(i)
	}
	// Initialise the two-bit counters to weakly taken, the usual
	// power-up state.
	for i := range b.pattern {
		b.pattern[i] = 2
	}
	for i := range b.fresh {
		b.fresh[i] = 2
	}
	return b
}

// ctrNext[ctr<<1|outcome] is the two-bit saturating counter's next
// state: decrement on not-taken, increment on taken, clamped at the
// ends. A table walk instead of compare-and-branch keeps the host's
// own branch predictor out of the loop — the simulated outcomes are
// close to random by design (the paper's ~50% BTB miss rate), which
// makes every data-dependent host branch here a steady stream of
// real mispredictions.
var ctrNext = [8]uint8{0, 1, 0, 2, 1, 3, 2, 3}

// b2u returns 1 for true, 0 for false (compiled branch-free).
func b2u(b bool) uint64 {
	var u uint64
	if b {
		u = 1
	}
	return u
}

// predict processes one retired branch: it makes the prediction the
// hardware would have made for (pc,target), compares it with the
// architectural outcome, and trains the structures. It returns whether
// the BTB hit and whether the prediction was correct.
func (b *btb) predict(pc, target uint64, taken bool) (btbHit, correct bool) {
	t := b2u(taken)
	b.refs++
	b.taken += t
	// Index by 16-byte PC granule, folding in higher bits so strided
	// branch PCs spread across the sets.
	key := (pc >> 4) ^ (pc >> 13)
	base := int(key&b.setMask) * b.ways
	ents := b.ents

	// MRU fast path: loop branches and hot sites re-execute the same
	// PC back to back and hit way 0, where prediction, training and
	// history shift happen in place, branch-free (the outcome folds in
	// as a bit, the counter steps through ctrNext). The stored history
	// is always pre-masked, so the counter index needs no masking.
	if e := &ents[base]; e.valid && e.tag == key {
		pi := uint64(e.slot)<<b.histBits | uint64(e.hist)
		ctr := b.pattern[pi]
		// predictTaken is the counter's high bit; the prediction is
		// wrong exactly when that bit differs from the outcome.
		wrong := uint64(ctr>>1) ^ t
		b.mispredict += wrong
		b.pattern[pi] = ctrNext[uint64(ctr)<<1|t]
		e.hist = (e.hist<<1 | uint16(t)) & b.histMask
		return true, wrong == 0
	}

	way := -1
	for w := 1; w < b.ways; w++ {
		if e := ents[base+w]; e.valid && e.tag == key {
			way = w
			break
		}
	}

	var wrong uint64
	if way >= 0 {
		btbHit = true
		// Train the resident entry: update the pattern counter for the
		// history that produced the prediction, then shift the history.
		e := ents[base+way]
		pi := uint64(e.slot)<<b.histBits | uint64(e.hist)
		ctr := b.pattern[pi]
		wrong = uint64(ctr>>1) ^ t
		b.pattern[pi] = ctrNext[uint64(ctr)<<1|t]
		e.hist = (e.hist<<1 | uint16(t)) & b.histMask
		// Move to front (LRU within the set): shift the struct entries;
		// pattern tables stay put, addressed through each entry's slot.
		copy(ents[base+1:base+way+1], ents[base:base+way])
		ents[base] = e
	} else {
		b.missesBTB++
		// Static fallback: backward taken, forward not taken.
		wrong = b2u(target <= pc) ^ t
		if taken {
			// The P6 BTB allocates entries for taken branches only,
			// evicting the set's LRU way and recycling its pattern slot.
			// The branch was taken (this arm), so history starts at 1.
			e := btbEnt{tag: key, valid: true, slot: ents[base+b.ways-1].slot, hist: 1}
			copy(ents[base+1:base+b.ways], ents[base:base+b.ways-1])
			ents[base] = e
			// Reset the recycled slot's counters to the power-up state
			// with one copy instead of a byte loop.
			copy(b.pattern[uint64(e.slot)<<b.histBits:(uint64(e.slot)+1)<<b.histBits], b.fresh)
		}
	}
	b.mispredict += wrong
	return btbHit, wrong == 0
}

// flush invalidates the whole predictor.
func (b *btb) flush() {
	for i := range b.ents {
		b.ents[i].valid = false
		b.ents[i].tag = 0
		b.ents[i].hist = 0
	}
	for i := range b.pattern {
		b.pattern[i] = 2
	}
}

// resetStats zeroes the counters, keeping the learned state.
func (b *btb) resetStats() {
	b.refs, b.missesBTB, b.mispredict, b.taken = 0, 0, 0, 0
}

// missRate returns BTB misses / branches.
func (b *btb) missRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.missesBTB) / float64(b.refs)
}

// mispredictRate returns mispredictions / branches.
func (b *btb) mispredictRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.mispredict) / float64(b.refs)
}
