package xeon

// btb models the Pentium II branch prediction unit: a set-associative
// Branch Target Buffer whose entries carry per-branch history
// registers feeding pattern tables of two-bit saturating counters (a
// two-level adaptive predictor in the style of Yeh & Patt, which the
// paper cites as the P6 scheme). A BTB hit activates the dynamic
// predictor; a BTB miss falls back to static prediction — backward
// branches taken, forward branches not taken — exactly as Section 5.3
// describes.
//
// Pattern tables are stored out of line: each entry carries a slot
// number into the pattern array, and recency moves shuffle only the
// small entry structs while the tables stay put. Eviction recycles the
// victim's slot for the incoming branch (resetting its counters to the
// power-up state), which is observationally identical to the tables
// moving with the entries but keeps the per-branch bookkeeping — the
// hottest path of the batched event drain — free of copying and
// allocation.
type btb struct {
	sets    int
	ways    int
	setMask uint64

	histBits uint
	histMask uint16

	// ents[set*ways+way] holds the way's state, recency-ordered per
	// set; ents[i].slot indexes that entry's pattern table.
	ents []btbEnt
	// pattern[slot<<histBits | history] is a 2-bit counter.
	pattern []uint8

	refs       uint64
	missesBTB  uint64 // lookups that missed the BTB
	mispredict uint64 // wrong final predictions (dynamic or static)
	taken      uint64
}

// btbEnt is one BTB way: the branch tag, its history register, and the
// fixed pattern-table slot its counters live in.
type btbEnt struct {
	tag   uint64
	hist  uint16
	slot  uint16
	valid bool
}

// newBTB builds a predictor with the given entry count, associativity
// and history length.
func newBTB(entries, assoc, histBits int) *btb {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("xeon: BTB set count must be a positive power of two")
	}
	n := sets * assoc
	b := &btb{
		sets:     sets,
		ways:     assoc,
		setMask:  uint64(sets - 1),
		histBits: uint(histBits),
		histMask: uint16(1<<histBits - 1),
		ents:     make([]btbEnt, n),
		pattern:  make([]uint8, n<<uint(histBits)),
	}
	for i := range b.ents {
		b.ents[i].slot = uint16(i)
	}
	// Initialise the two-bit counters to weakly taken, the usual
	// power-up state.
	for i := range b.pattern {
		b.pattern[i] = 2
	}
	return b
}

// predict processes one retired branch: it makes the prediction the
// hardware would have made for (pc,target), compares it with the
// architectural outcome, and trains the structures. It returns whether
// the BTB hit and whether the prediction was correct.
func (b *btb) predict(pc, target uint64, taken bool) (btbHit, correct bool) {
	b.refs++
	if taken {
		b.taken++
	}
	// Index by 16-byte PC granule, folding in higher bits so strided
	// branch PCs spread across the sets.
	key := (pc >> 4) ^ (pc >> 13)
	base := int(key&b.setMask) * b.ways
	ents := b.ents

	// MRU fast path: loop branches and hot sites re-execute the same
	// PC back to back and hit way 0, where prediction and training
	// happen in place with no recency shuffle.
	if e := &ents[base]; e.valid && e.tag == key {
		btbHit = true
		pi := uint64(e.slot)<<b.histBits | uint64(e.hist&b.histMask)
		predictTaken := b.pattern[pi] >= 2
		correct = predictTaken == taken
		if !correct {
			b.mispredict++
		}
		if taken {
			if b.pattern[pi] < 3 {
				b.pattern[pi]++
			}
		} else if b.pattern[pi] > 0 {
			b.pattern[pi]--
		}
		e.hist = (e.hist << 1) & b.histMask
		if taken {
			e.hist |= 1
		}
		return btbHit, correct
	}

	way := -1
	for w := 1; w < b.ways; w++ {
		if e := ents[base+w]; e.valid && e.tag == key {
			way = w
			break
		}
	}

	var predictTaken bool
	if way >= 0 {
		btbHit = true
		e := &ents[base+way]
		ctr := b.pattern[uint64(e.slot)<<b.histBits|uint64(e.hist&b.histMask)]
		predictTaken = ctr >= 2
	} else {
		b.missesBTB++
		// Static fallback: backward taken, forward not taken.
		predictTaken = target <= pc
	}

	correct = predictTaken == taken
	if !correct {
		b.mispredict++
	}

	if way >= 0 {
		// Train the resident entry: update the pattern counter for the
		// history that produced the prediction, then shift the history.
		e := ents[base+way]
		pi := uint64(e.slot)<<b.histBits | uint64(e.hist&b.histMask)
		if taken {
			if b.pattern[pi] < 3 {
				b.pattern[pi]++
			}
		} else if b.pattern[pi] > 0 {
			b.pattern[pi]--
		}
		e.hist = (e.hist << 1) & b.histMask
		if taken {
			e.hist |= 1
		}
		// Move to front (LRU within the set): shift the struct entries;
		// pattern tables stay put, addressed through each entry's slot.
		copy(ents[base+1:base+way+1], ents[base:base+way])
		ents[base] = e
	} else if taken {
		// The P6 BTB allocates entries for taken branches only,
		// evicting the set's LRU way and recycling its pattern slot.
		// The branch was taken (this arm), so history starts at 1.
		e := btbEnt{tag: key, valid: true, slot: ents[base+b.ways-1].slot, hist: 1}
		copy(ents[base+1:base+b.ways], ents[base:base+b.ways-1])
		ents[base] = e
		fresh := b.pattern[uint64(e.slot)<<b.histBits : (uint64(e.slot)+1)<<b.histBits]
		for i := range fresh {
			fresh[i] = 2
		}
	}
	return btbHit, correct
}

// flush invalidates the whole predictor.
func (b *btb) flush() {
	for i := range b.ents {
		b.ents[i].valid = false
		b.ents[i].tag = 0
		b.ents[i].hist = 0
	}
	for i := range b.pattern {
		b.pattern[i] = 2
	}
}

// resetStats zeroes the counters, keeping the learned state.
func (b *btb) resetStats() {
	b.refs, b.missesBTB, b.mispredict, b.taken = 0, 0, 0, 0
}

// missRate returns BTB misses / branches.
func (b *btb) missRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.missesBTB) / float64(b.refs)
}

// mispredictRate returns mispredictions / branches.
func (b *btb) mispredictRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.mispredict) / float64(b.refs)
}
