package xeon

// btb models the Pentium II branch prediction unit: a set-associative
// Branch Target Buffer whose entries carry per-branch history
// registers feeding pattern tables of two-bit saturating counters (a
// two-level adaptive predictor in the style of Yeh & Patt, which the
// paper cites as the P6 scheme). A BTB hit activates the dynamic
// predictor; a BTB miss falls back to static prediction — backward
// branches taken, forward branches not taken — exactly as Section 5.3
// describes.
type btb struct {
	sets    int
	ways    int
	setMask uint64

	histBits uint
	histMask uint16

	// Entry state, flattened as [set*ways+way].
	tags    []uint64
	valid   []bool
	history []uint16
	// pattern[(set*ways+way)<<histBits | history] is a 2-bit counter.
	pattern []uint8

	refs       uint64
	missesBTB  uint64 // lookups that missed the BTB
	mispredict uint64 // wrong final predictions (dynamic or static)
	taken      uint64
}

// newBTB builds a predictor with the given entry count, associativity
// and history length.
func newBTB(entries, assoc, histBits int) *btb {
	sets := entries / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("xeon: BTB set count must be a positive power of two")
	}
	n := sets * assoc
	b := &btb{
		sets:     sets,
		ways:     assoc,
		setMask:  uint64(sets - 1),
		histBits: uint(histBits),
		histMask: uint16(1<<histBits - 1),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		history:  make([]uint16, n),
		pattern:  make([]uint8, n<<uint(histBits)),
	}
	// Initialise the two-bit counters to weakly taken, the usual
	// power-up state.
	for i := range b.pattern {
		b.pattern[i] = 2
	}
	return b
}

// predict processes one retired branch: it makes the prediction the
// hardware would have made for (pc,target), compares it with the
// architectural outcome, and trains the structures. It returns whether
// the BTB hit and whether the prediction was correct.
func (b *btb) predict(pc, target uint64, taken bool) (btbHit, correct bool) {
	b.refs++
	if taken {
		b.taken++
	}
	// Index by 16-byte PC granule, folding in higher bits so strided
	// branch PCs spread across the sets.
	key := (pc >> 4) ^ (pc >> 13)
	set := int(key & b.setMask)
	base := set * b.ways

	way := -1
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == key {
			way = w
			break
		}
	}

	var predictTaken bool
	if way >= 0 {
		btbHit = true
		i := base + way
		ctr := b.pattern[uint64(i)<<b.histBits|uint64(b.history[i]&b.histMask)]
		predictTaken = ctr >= 2
	} else {
		b.missesBTB++
		// Static fallback: backward taken, forward not taken.
		predictTaken = target <= pc
	}

	correct = predictTaken == taken
	if !correct {
		b.mispredict++
	}

	if way >= 0 {
		// Train the resident entry: update the pattern counter for the
		// history that produced the prediction, then shift the history.
		i := base + way
		pi := uint64(i)<<b.histBits | uint64(b.history[i]&b.histMask)
		if taken {
			if b.pattern[pi] < 3 {
				b.pattern[pi]++
			}
		} else if b.pattern[pi] > 0 {
			b.pattern[pi]--
		}
		b.history[i] = (b.history[i] << 1) & b.histMask
		if taken {
			b.history[i] |= 1
		}
		// Move to front (LRU within the set).
		b.moveToFront(base, way)
	} else if taken {
		// The P6 BTB allocates entries for taken branches only.
		b.insert(base, key, taken)
	}
	return btbHit, correct
}

// moveToFront promotes way w of the set at base to MRU position,
// carrying all per-entry state.
func (b *btb) moveToFront(base, w int) {
	if w == 0 {
		return
	}
	tag, val, hist := b.tags[base+w], b.valid[base+w], b.history[base+w]
	// Pattern tables are addressed by entry slot, so slot contents must
	// move with the entry. Save the moving entry's table.
	saved := make([]uint8, 1<<b.histBits)
	copy(saved, b.pattern[uint64(base+w)<<b.histBits:uint64(base+w+1)<<b.histBits])
	for i := w; i > 0; i-- {
		b.tags[base+i] = b.tags[base+i-1]
		b.valid[base+i] = b.valid[base+i-1]
		b.history[base+i] = b.history[base+i-1]
		copy(b.pattern[uint64(base+i)<<b.histBits:uint64(base+i+1)<<b.histBits],
			b.pattern[uint64(base+i-1)<<b.histBits:uint64(base+i)<<b.histBits])
	}
	b.tags[base], b.valid[base], b.history[base] = tag, val, hist
	copy(b.pattern[uint64(base)<<b.histBits:uint64(base+1)<<b.histBits], saved)
}

// insert allocates a new entry at MRU, evicting the set's LRU way.
func (b *btb) insert(base int, key uint64, taken bool) {
	w := b.ways - 1
	for i := w; i > 0; i-- {
		b.tags[base+i] = b.tags[base+i-1]
		b.valid[base+i] = b.valid[base+i-1]
		b.history[base+i] = b.history[base+i-1]
		copy(b.pattern[uint64(base+i)<<b.histBits:uint64(base+i+1)<<b.histBits],
			b.pattern[uint64(base+i-1)<<b.histBits:uint64(base+i)<<b.histBits])
	}
	b.tags[base] = key
	b.valid[base] = true
	b.history[base] = 0
	if taken {
		b.history[base] = 1
	}
	fresh := b.pattern[uint64(base)<<b.histBits : uint64(base+1)<<b.histBits]
	for i := range fresh {
		fresh[i] = 2
	}
}

// flush invalidates the whole predictor.
func (b *btb) flush() {
	for i := range b.valid {
		b.valid[i] = false
		b.tags[i] = 0
		b.history[i] = 0
	}
	for i := range b.pattern {
		b.pattern[i] = 2
	}
}

// resetStats zeroes the counters, keeping the learned state.
func (b *btb) resetStats() {
	b.refs, b.missesBTB, b.mispredict, b.taken = 0, 0, 0, 0
}

// missRate returns BTB misses / branches.
func (b *btb) missRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.missesBTB) / float64(b.refs)
}

// mispredictRate returns mispredictions / branches.
func (b *btb) mispredictRate() float64 {
	if b.refs == 0 {
		return 0
	}
	return float64(b.mispredict) / float64(b.refs)
}
