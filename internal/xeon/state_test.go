package xeon

import (
	"fmt"
	"testing"
)

// TestSnapshotRestoreRoundTrip pins the snapshot contract: a fresh
// pipeline restored from a warm snapshot, measured over the same
// stream, produces the exact breakdown the warm original produces.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	warm := synthBatch(1 << 17)
	measured := synthBatch(1 << 16)

	orig := New(DefaultConfig())
	orig.ProcessBatch(warm)
	snap := orig.Snapshot(nil)
	orig.ResetStats()
	orig.ProcessBatch(measured)

	restored := New(DefaultConfig())
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	restored.ResetStats()
	restored.ProcessBatch(measured)

	assertPipesEqual(t, "restored", restored, orig)
}

// TestSnapshotEqual pins the fixed-point detector: equal states
// compare equal, and draining anything breaks equality.
func TestSnapshotEqual(t *testing.T) {
	p := New(DefaultConfig())
	p.ProcessBatch(synthBatch(1 << 12))
	a := p.Snapshot(nil)
	b := p.Snapshot(nil)
	if !a.Equal(b) {
		t.Fatal("two snapshots of the same state compare unequal")
	}
	p.ProcessBatch(synthBatch(64))
	c := p.Snapshot(nil)
	if a.Equal(c) {
		t.Fatal("snapshot unchanged after draining more events")
	}
	// Reusing a State as the Snapshot destination must fully overwrite it.
	d := p.Snapshot(a)
	if !d.Equal(c) {
		t.Fatal("snapshot into reused buffer differs from fresh snapshot")
	}
}

// TestSnapshotFixedPoint drains a short stream repeatedly and checks
// that once two successive post-drain states are equal, the next
// drain's state is equal too — the property the harness's early-stop
// relies on.
func TestSnapshotFixedPoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterruptCycles = 0 // short synthetic stream: keep phase out of the way
	events := synthBatch(1 << 14)
	p := New(cfg)
	var prev, cur *State
	reached := -1
	for i := 0; i < 12; i++ {
		p.ProcessBatch(events)
		cur = p.Snapshot(cur)
		if prev != nil && cur.Equal(prev) {
			reached = i
			break
		}
		prev, cur = cur, prev
	}
	if reached < 0 {
		t.Skip("stream did not reach a fixed point in 12 passes")
	}
	p.ProcessBatch(events)
	next := p.Snapshot(nil)
	if !next.Equal(cur) {
		t.Fatalf("state moved after fixed point at pass %d", reached)
	}
}

// TestStateMarshalRoundTrip pins the binary codec: marshal/unmarshal
// reproduces an Equal state that restores into a working pipeline.
func TestStateMarshalRoundTrip(t *testing.T) {
	orig := New(DefaultConfig())
	orig.ProcessBatch(synthBatch(1 << 15))
	snap := orig.Snapshot(nil)
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var back State
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !snap.Equal(&back) {
		t.Fatal("state differs after marshal round trip")
	}
	measured := synthBatch(1 << 14)
	orig.ResetStats()
	orig.ProcessBatch(measured)
	restored := New(DefaultConfig())
	if err := restored.Restore(&back); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	restored.ResetStats()
	restored.ProcessBatch(measured)
	assertPipesEqual(t, "unmarshaled", restored, orig)
}

// TestStateUnmarshalCorrupt feeds truncated and bit-flipped payloads
// through UnmarshalBinary: every one must error, none may panic.
func TestStateUnmarshalCorrupt(t *testing.T) {
	p := New(DefaultConfig())
	p.ProcessBatch(synthBatch(1 << 10))
	data, err := p.Snapshot(nil).MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	for _, cut := range []int{0, 1, 10, 40, len(data) / 2, len(data) - 1} {
		var s State
		if err := s.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes: no error", cut)
		}
	}
	// Offsets land in validated fields: version, two section lengths,
	// and the haveIPage flag (lastIPage and the like are arbitrary
	// data, so flips there are indistinguishable from a real state).
	for _, off := range []int{0, 2, 6, 37} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xFF
		var s State
		if err := s.UnmarshalBinary(bad); err == nil {
			t.Errorf("bit flip at %d: no error", off)
		}
	}
	extra := append(append([]byte(nil), data...), 0)
	var s State
	if err := s.UnmarshalBinary(extra); err == nil {
		t.Error("trailing byte: no error")
	}
}

// TestRestoreGeometryMismatch: a snapshot from one configuration must
// refuse to restore into a pipeline with different structure sizes.
func TestRestoreGeometryMismatch(t *testing.T) {
	small := DefaultConfig()
	big := DefaultConfig()
	big.L2SizeKB = 2048
	snap := New(small).Snapshot(nil)
	if err := New(big).Restore(snap); err == nil {
		t.Fatal("restore into mismatched geometry succeeded")
	}
}

// TestMultiSnapshotRestore pins the gang variant: restoring a
// MultiPipeline from a MultiState (and from the per-pipe states via
// RestoreStates) matches the solo warm protocol per configuration.
func TestMultiSnapshotRestore(t *testing.T) {
	cfgs := multiTestConfigs()
	warm := synthBatch(1 << 16)
	measured := synthBatch(1 << 15)

	orig := NewMulti(cfgs)
	orig.ProcessBatch(warm)
	snap := orig.Snapshot(nil)
	if !snap.Equal(orig.Snapshot(nil)) {
		t.Fatal("repeated gang snapshots compare unequal")
	}
	orig.ResetStats()
	orig.ProcessBatch(measured)

	restored := NewMulti(cfgs)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	restored.ResetStats()
	restored.ProcessBatch(measured)
	for i := range cfgs {
		assertPipesEqual(t, fmt.Sprintf("config %d", i), restored.Pipe(i), orig.Pipe(i))
	}

	states := make([]*State, snap.K())
	for i := range states {
		states[i] = snap.At(i)
	}
	again := NewMulti(cfgs)
	if err := again.RestoreStates(states); err != nil {
		t.Fatalf("RestoreStates: %v", err)
	}
	again.ResetStats()
	again.ProcessBatch(measured)
	for i := range cfgs {
		assertPipesEqual(t, fmt.Sprintf("states config %d", i), again.Pipe(i), orig.Pipe(i))
	}
}
