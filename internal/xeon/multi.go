package xeon

import "wheretime/internal/trace"

// MultiPipeline is the multi-config gang drain: it holds K platform
// configurations' complete simulation state — caches, TLBs, branch
// predictor, stall accounting — and feeds every event to all K of
// them, so one pass over a recorded trace (or one live engine
// execution) produces K cells' counter sets. The trace is read from
// memory once instead of K times and, on the live path, the engine
// emits once instead of K times; each configuration's counters are
// bit-identical to draining a solo Pipeline, which the gang
// equivalence suite pins per counter.
//
// ProcessBatch splits each incoming batch into host-cache-resident
// blocks and runs every configuration over a block before advancing,
// so the event words stay hot across the K per-config inner loops
// while each loop keeps the solo drain's flattened, branch-lean shape
// (packed-way probes, mask-matched BTB sets, same-site branch runs).
// Event order per configuration is exactly batch order: blocks
// partition the batch, and every configuration finishes block i
// before any sees block i+1.
//
// Like Pipeline, a MultiPipeline is single-goroutine state: the
// concurrent grid builds one per gang work unit inside a worker.
type MultiPipeline struct {
	pipes []*Pipeline
}

var _ trace.Processor = (*MultiPipeline)(nil)
var _ trace.BatchProcessor = (*MultiPipeline)(nil)

// gangBlockEvents is the sub-batch size of the gang drain: 1024
// events x 32 bytes = 32 KiB, sized to stay resident in the host L1D
// while all K configurations consume the block.
const gangBlockEvents = 1024

// Compile-time guard: a decoded block from the compressed drain must
// fit inside one gang block, so the fused decode path above never
// re-splits (negative array length if the relation breaks).
var _ [gangBlockEvents - trace.DecodeBlockEvents]struct{}

// NewMulti builds one pipeline per configuration. It panics on an
// empty slice or an invalid configuration, like New.
func NewMulti(cfgs []Config) *MultiPipeline {
	if len(cfgs) == 0 {
		panic("xeon: NewMulti needs at least one configuration")
	}
	m := &MultiPipeline{pipes: make([]*Pipeline, len(cfgs))}
	for i, cfg := range cfgs {
		m.pipes[i] = New(cfg)
	}
	return m
}

// K returns the number of ganged configurations.
func (m *MultiPipeline) K() int { return len(m.pipes) }

// Pipe returns the i-th configuration's pipeline, for counter
// extraction (Breakdown, Rates) after a drain.
func (m *MultiPipeline) Pipe(i int) *Pipeline { return m.pipes[i] }

// ResetStats starts the measured run on every configuration: counters
// and accumulated stall time reset, cache/TLB/predictor contents kept
// (the warm-cache protocol of Section 4.3).
func (m *MultiPipeline) ResetStats() {
	for _, p := range m.pipes {
		p.ResetStats()
	}
}

// ProcessBatch implements trace.BatchProcessor: block-wise over the
// batch, all configurations per block. A single-config gang degrades
// to the solo drain with no block splitting, and a batch already at
// or under the block size — the compressed drain hands over decoded
// blocks of trace.DecodeBlockEvents, half a gang block — skips the
// split loop entirely.
func (m *MultiPipeline) ProcessBatch(events []trace.Event) {
	if len(m.pipes) == 1 {
		m.pipes[0].ProcessBatch(events)
		return
	}
	if len(events) <= gangBlockEvents {
		for _, p := range m.pipes {
			p.ProcessBatch(events)
		}
		return
	}
	for start := 0; start < len(events); start += gangBlockEvents {
		end := start + gangBlockEvents
		if end > len(events) {
			end = len(events)
		}
		block := events[start:end]
		for _, p := range m.pipes {
			p.ProcessBatch(block)
		}
	}
}

// The per-event Processor methods fan each call out in configuration
// order, so an unbatched emitter sees the same per-config sequence
// the batched path produces.

// FetchBlock implements trace.Processor.
func (m *MultiPipeline) FetchBlock(addr uint64, size, instrs, uops uint32) {
	for _, p := range m.pipes {
		p.FetchBlock(addr, size, instrs, uops)
	}
}

// Load implements trace.Processor.
func (m *MultiPipeline) Load(addr uint64, size uint32) {
	for _, p := range m.pipes {
		p.Load(addr, size)
	}
}

// Store implements trace.Processor.
func (m *MultiPipeline) Store(addr uint64, size uint32) {
	for _, p := range m.pipes {
		p.Store(addr, size)
	}
}

// Branch implements trace.Processor.
func (m *MultiPipeline) Branch(pc, target uint64, taken bool) {
	for _, p := range m.pipes {
		p.Branch(pc, target, taken)
	}
}

// DataBurst implements trace.Processor.
func (m *MultiPipeline) DataBurst(base uint64, bytes, loads, stores uint32) {
	for _, p := range m.pipes {
		p.DataBurst(base, bytes, loads, stores)
	}
}

// ResourceStall implements trace.Processor.
func (m *MultiPipeline) ResourceStall(dep, fu, ild float64) {
	for _, p := range m.pipes {
		p.ResourceStall(dep, fu, ild)
	}
}

// RecordProcessed implements trace.Processor.
func (m *MultiPipeline) RecordProcessed() {
	for _, p := range m.pipes {
		p.RecordProcessed()
	}
}
