package xeon

import "fmt"

// cacheEnt is one cache way: a line address plus its valid and dirty
// state, kept together so a move-to-front shifts one small struct
// instead of three parallel slices.
type cacheEnt struct {
	line  uint64
	valid bool
	dirty bool
}

// cache is a set-associative, write-back cache with true-LRU
// replacement inside each set. It operates on line addresses
// (byte address >> lineShift); the caller owns stall accounting.
//
// Ways within a set are kept in recency order: index 0 is the most
// recently used. This is the simulator's hottest structure — the
// batched pipeline drains thousands of events per call straight
// through access — so the lookup is flattened: a hit on the MRU way
// (the common case for straight-line fetch and stride-1 data streams)
// touches exactly one entry and shifts nothing, and the move-to-front
// on other hits is a single in-place copy of struct entries.
type cache struct {
	name      string
	sets      int
	ways      int
	setMask   uint64
	lineShift uint

	// ents[set*ways+way] holds the way's state, recency-ordered per set.
	ents []cacheEnt

	refs      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

// newCache builds a cache of sizeBytes capacity with the given
// associativity and line size. Panics on invalid geometry; Config
// validation happens before construction.
func newCache(name string, sizeBytes, assoc, lineSize int) *cache {
	lines := sizeBytes / lineSize
	sets := lines / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("xeon: cache %s: %d sets is not a positive power of two", name, sets))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &cache{
		name:      name,
		sets:      sets,
		ways:      assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		ents:      make([]cacheEnt, lines),
	}
}

// lineAddr converts a byte address to a line address.
func (c *cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// hitMRU is the inlinable precheck of the flattened lookup: if the
// line containing addr sits in its set's MRU way, count the reference,
// fold in the dirty bit and report the hit without the full access
// machinery. The caller falls back to access (which recounts nothing —
// hitMRU only counted when it returned true) on a miss of the front
// way. The batched drain probes every structure through this first.
func (c *cache) hitMRU(addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ents[int(line&c.setMask)*c.ways]
	if e.valid && e.line == line {
		c.refs++
		e.dirty = e.dirty || write
		return true
	}
	return false
}

// access looks up the line containing addr, counts the reference, and
// returns whether it hit. On a miss the line is filled (allocating on
// both reads and writes), evicting the set's LRU way; evicted returns
// the victim line's byte address and whether it was dirty, so the
// caller can model the write-back. write marks the line dirty.
func (c *cache) access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.refs++
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.ways
	ents := c.ents

	// MRU fast path: consecutive references to the same line (field
	// walks within a record, straight-line fetch) hit way 0 and need no
	// recency shuffle at all.
	if e := &ents[base]; e.valid && e.line == line {
		e.dirty = e.dirty || write
		return true, 0, false
	}
	for w := 1; w < c.ways; w++ {
		if e := ents[base+w]; e.valid && e.line == line {
			// Move to front (most recently used).
			copy(ents[base+1:base+w+1], ents[base:base+w])
			e.dirty = e.dirty || write
			ents[base] = e
			return true, 0, false
		}
	}

	c.misses++
	// Victim is the last (LRU) way.
	if v := ents[base+c.ways-1]; v.valid {
		c.evictions++
		if v.dirty {
			c.wbacks++
			victim = v.line << c.lineShift
			victimDirty = true
		}
	}
	copy(ents[base+1:base+c.ways], ents[base:base+c.ways-1])
	ents[base] = cacheEnt{line: line, valid: true, dirty: write}
	return false, victim, victimDirty
}

// touch inserts the line containing addr without counting a reference
// or a miss: speculative wrong-path fetches and kernel pollution use
// it to displace useful lines without perturbing the event counters
// the formulae rely on.
func (c *cache) touch(addr uint64) {
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.ways
	ents := c.ents
	for w := 0; w < c.ways; w++ {
		if e := ents[base+w]; e.valid && e.line == line {
			return // already resident; leave recency alone
		}
	}
	if ents[base+c.ways-1].valid {
		c.evictions++
	}
	copy(ents[base+1:base+c.ways], ents[base:base+c.ways-1])
	ents[base] = cacheEnt{line: line, valid: true}
}

// contains reports whether the line holding addr is resident, without
// touching statistics or recency.
func (c *cache) contains(addr uint64) bool {
	line := c.lineAddr(addr)
	base := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if e := c.ents[base+w]; e.valid && e.line == line {
			return true
		}
	}
	return false
}

// flush invalidates the entire cache (used between measured runs).
func (c *cache) flush() {
	for i := range c.ents {
		c.ents[i] = cacheEnt{}
	}
}

// resetStats zeroes the counters without disturbing cache contents,
// the warm-cache protocol of Section 4.3.
func (c *cache) resetStats() {
	c.refs, c.misses, c.evictions, c.wbacks = 0, 0, 0, 0
}

// missRate returns misses/references, zero when idle.
func (c *cache) missRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.refs)
}
