package xeon

import "fmt"

// cache is a set-associative, write-back cache with true-LRU
// replacement inside each set. It operates on line addresses
// (byte address >> lineShift); the caller owns stall accounting.
//
// Ways within a set are kept in recency order: index 0 is the most
// recently used. Four-way sets make the move-to-front shift cheap.
type cache struct {
	name      string
	sets      int
	ways      int
	setMask   uint64
	lineShift uint

	// tags[set*ways+way] holds the line address; valid and dirty are
	// parallel bit-per-entry slices packed as bytes for simplicity.
	tags  []uint64
	valid []bool
	dirty []bool

	refs      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

// newCache builds a cache of sizeBytes capacity with the given
// associativity and line size. Panics on invalid geometry; Config
// validation happens before construction.
func newCache(name string, sizeBytes, assoc, lineSize int) *cache {
	lines := sizeBytes / lineSize
	sets := lines / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("xeon: cache %s: %d sets is not a positive power of two", name, sets))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &cache{
		name:      name,
		sets:      sets,
		ways:      assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		dirty:     make([]bool, lines),
	}
}

// lineAddr converts a byte address to a line address.
func (c *cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// access looks up the line containing addr, counts the reference, and
// returns whether it hit. On a miss the line is filled (allocating on
// both reads and writes), evicting the set's LRU way; evicted returns
// the victim line's byte address and whether it was dirty, so the
// caller can model the write-back. write marks the line dirty.
func (c *cache) access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.refs++
	line := c.lineAddr(addr)
	set := int(line & c.setMask)
	base := set * c.ways

	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			// Move to front (most recently used).
			d := c.dirty[i] || write
			c.shiftToFront(base, w)
			c.tags[base], c.valid[base], c.dirty[base] = line, true, d
			return true, 0, false
		}
	}

	c.misses++
	// Victim is the last (LRU) way.
	last := base + c.ways - 1
	if c.valid[last] {
		c.evictions++
		if c.dirty[last] {
			c.wbacks++
			victim = c.tags[last] << c.lineShift
			victimDirty = true
		}
	}
	c.shiftToFront(base, c.ways-1)
	c.tags[base], c.valid[base], c.dirty[base] = line, true, write
	return false, victim, victimDirty
}

// shiftToFront moves ways [0,w) of the set starting at base one slot
// toward the back, opening slot 0. The entry at way w is overwritten.
func (c *cache) shiftToFront(base, w int) {
	copy(c.tags[base+1:base+w+1], c.tags[base:base+w])
	copy(c.valid[base+1:base+w+1], c.valid[base:base+w])
	copy(c.dirty[base+1:base+w+1], c.dirty[base:base+w])
}

// touch inserts the line containing addr without counting a reference
// or a miss: speculative wrong-path fetches and kernel pollution use
// it to displace useful lines without perturbing the event counters
// the formulae rely on.
func (c *cache) touch(addr uint64) {
	line := c.lineAddr(addr)
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return // already resident; leave recency alone
		}
	}
	last := base + c.ways - 1
	if c.valid[last] {
		c.evictions++
	}
	c.shiftToFront(base, c.ways-1)
	c.tags[base], c.valid[base], c.dirty[base] = line, true, false
}

// contains reports whether the line holding addr is resident, without
// touching statistics or recency.
func (c *cache) contains(addr uint64) bool {
	line := c.lineAddr(addr)
	base := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// flush invalidates the entire cache (used between measured runs).
func (c *cache) flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.tags[i] = 0
	}
}

// resetStats zeroes the counters without disturbing cache contents,
// the warm-cache protocol of Section 4.3.
func (c *cache) resetStats() {
	c.refs, c.misses, c.evictions, c.wbacks = 0, 0, 0, 0
}

// missRate returns misses/references, zero when idle.
func (c *cache) missRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.refs)
}
