package xeon

import (
	"fmt"
	"math/bits"
)

// Each cache way is packed into one 64-bit word: the line address in
// the high bits, the dirty and valid flags in the low two. A 4-way set
// is then 32 bytes — a single host cache line — so the hottest loop of
// the simulator (the batched event drain probing these sets hundreds
// of millions of times per grid) touches one line per set instead of
// three, and a tag compare is one mask-and-compare on a register.
const (
	entValid     uint64 = 1 << 0
	entDirty     uint64 = 1 << 1
	entLineShift        = 2
)

// cache is a set-associative, write-back cache with true-LRU
// replacement inside each set. It operates on line addresses
// (byte address >> lineShift); the caller owns stall accounting.
//
// Ways within a set are kept in recency order: index 0 is the most
// recently used. This is the simulator's hottest structure — the
// batched pipeline drains thousands of events per call straight
// through lookup — so the path is flattened: a hit on the MRU way
// (the common case for straight-line fetch and stride-1 data streams)
// costs exactly one bounds-checked probe of a packed word, and the
// move-to-front on other hits shifts whole words in place.
type cache struct {
	name      string
	sets      int
	ways      int
	setMask   uint64
	lineShift uint
	// wayShift is log2(ways) — associativities are required to be
	// powers of two — so the hottest address computation, set index
	// to entry index, is a shift rather than a multiply on the
	// probe load's critical path.
	wayShift uint

	// ents[set*ways+way] holds the way's packed state (line<<2 |
	// dirty<<1 | valid), recency-ordered per set.
	ents []uint64

	refs      uint64
	misses    uint64
	evictions uint64
	wbacks    uint64
}

// newCache builds a cache of sizeBytes capacity with the given
// associativity and line size. Panics on invalid geometry; Config
// validation happens before construction.
func newCache(name string, sizeBytes, assoc, lineSize int) *cache {
	lines := sizeBytes / lineSize
	sets := lines / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("xeon: cache %s: %d sets is not a positive power of two", name, sets))
	}
	if assoc&(assoc-1) != 0 {
		panic(fmt.Sprintf("xeon: cache %s: associativity %d is not a power of two", name, assoc))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	wayShift := uint(0)
	for 1<<wayShift != assoc {
		wayShift++
	}
	return &cache{
		name:      name,
		sets:      sets,
		ways:      assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		wayShift:  wayShift,
		ents:      make([]uint64, lines),
	}
}

// lineAddr converts a byte address to a line address.
func (c *cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// entryAt unpacks the way's state (tests and diagnostics; the hot path
// works on the packed words directly).
func (c *cache) entryAt(set, way int) (line uint64, valid, dirty bool) {
	e := c.ents[set*c.ways+way]
	return e >> entLineShift, e&entValid != 0, e&entDirty != 0
}

// lookup counts the reference and walks the line containing addr
// through its set, filling on a miss: the folded form of the old
// hitMRU-then-access pair, so the common hit costs one bounds-checked
// probe of a packed way. The pipeline's drain writes the fold out by
// hand — hitMRU (inlined) || lookupRest — because the composed method
// exceeds the inliner's budget; this form exists for the TLBs' probe
// wrapper and the property suite. Callers that need the victim's
// identity for write-back modelling use access instead.
func (c *cache) lookup(addr uint64, write bool) bool {
	return c.hitMRU(addr, write) || c.lookupRest(addr, write)
}

// lookupRest finishes a lookup whose inlined hitMRU precheck missed:
// it counts the reference (hitMRU counts only on a hit), scans the
// remaining ways (move-to-front on a hit) and fills on a miss,
// evicting the set's LRU way into the eviction/write-back counters.
// Unlike access it never re-probes the MRU way the caller already
// checked.
//
// The 4-way body (every configuration the experiments run) matches
// the remaining ways with mask arithmetic over the one-line set — the
// per-way compares on simulated-random residency were a steady source
// of host mispredictions as a compare-and-break loop — leaving a
// single hit-vs-miss branch; the reorder is a select writeback and
// the victim bookkeeping folds in branch-free.
func (c *cache) lookupRest(addr uint64, write bool) bool {
	c.refs++
	line := addr >> c.lineShift
	base := int(line&c.setMask) << c.wayShift
	tag := line<<entLineShift | entValid
	if c.ways == 4 {
		ents := c.ents[base : base+4 : base+4]
		e0, e1, e2, e3 := ents[0], ents[1], ents[2], ents[3]
		m := b2u(e1&^entDirty == tag)<<1 |
			b2u(e2&^entDirty == tag)<<2 |
			b2u(e3&^entDirty == tag)<<3
		if m != 0 {
			w := uint64(bits.TrailingZeros64(m))
			e := ents[w] | entDirty&-b2u(write)
			c2 := b2u(w >= 2)
			c3 := b2u(w >= 3)
			ents[0] = e
			ents[1] = e0
			ents[2] = sel(c2, e1, e2)
			ents[3] = sel(c3, e2, e3)
			return true
		}
		c.misses++
		// Victim is the last (LRU) way.
		valid := e3 & entValid
		c.evictions += valid
		c.wbacks += e3 >> 1 & valid
		ents[0] = tag | entDirty&-b2u(write)
		ents[1], ents[2], ents[3] = e0, e1, e2
		return false
	}

	ents := c.ents
	for w := 1; w < c.ways; w++ {
		if e := ents[base+w]; e&^entDirty == tag {
			// Move to front (most recently used).
			for j := base + w; j > base; j-- {
				ents[j] = ents[j-1]
			}
			if write {
				e |= entDirty
			}
			ents[base] = e
			return true
		}
	}

	c.misses++
	// Victim is the last (LRU) way.
	if v := ents[base+c.ways-1]; v&entValid != 0 {
		c.evictions++
		if v&entDirty != 0 {
			c.wbacks++
		}
	}
	for j := base + c.ways - 1; j > base; j-- {
		ents[j] = ents[j-1]
	}
	if write {
		ents[base] = tag | entDirty
	} else {
		ents[base] = tag
	}
	return false
}

// hitMRU is the inlinable precheck of the flattened lookup: if the
// line containing addr sits in its set's MRU way, count the reference,
// fold in the dirty bit and report the hit without the full access
// machinery. The caller falls back to access (which recounts nothing —
// hitMRU only counted when it returned true) on a miss of the front
// way. Retained for the property suite that pins MRU behaviour; the
// pipeline's drain goes through lookup, which folds this probe in.
func (c *cache) hitMRU(addr uint64, write bool) bool {
	line := addr >> c.lineShift
	e := &c.ents[int(line&c.setMask)<<c.wayShift]
	if *e&^entDirty == line<<entLineShift|entValid {
		c.refs++
		if write {
			*e |= entDirty
		}
		return true
	}
	return false
}

// access looks up the line containing addr, counts the reference, and
// returns whether it hit. On a miss the line is filled (allocating on
// both reads and writes), evicting the set's LRU way; evicted returns
// the victim line's byte address and whether it was dirty, so the
// caller can model the write-back. write marks the line dirty.
func (c *cache) access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.refs++
	line := addr >> c.lineShift
	base := int(line&c.setMask) << c.wayShift
	ents := c.ents
	tag := line<<entLineShift | entValid

	// MRU fast path: consecutive references to the same line (field
	// walks within a record, straight-line fetch) hit way 0 and need no
	// recency shuffle at all.
	if e := &ents[base]; *e&^entDirty == tag {
		if write {
			*e |= entDirty
		}
		return true, 0, false
	}
	for w := 1; w < c.ways; w++ {
		if e := ents[base+w]; e&^entDirty == tag {
			// Move to front (most recently used).
			for j := base + w; j > base; j-- {
				ents[j] = ents[j-1]
			}
			if write {
				e |= entDirty
			}
			ents[base] = e
			return true, 0, false
		}
	}

	c.misses++
	// Victim is the last (LRU) way.
	if v := ents[base+c.ways-1]; v&entValid != 0 {
		c.evictions++
		if v&entDirty != 0 {
			c.wbacks++
			victim = v >> entLineShift << c.lineShift
			victimDirty = true
		}
	}
	for j := base + c.ways - 1; j > base; j-- {
		ents[j] = ents[j-1]
	}
	if write {
		tag |= entDirty
	}
	ents[base] = tag
	return false, victim, victimDirty
}

// touch inserts the line containing addr without counting a reference
// or a miss: speculative wrong-path fetches and kernel pollution use
// it to displace useful lines without perturbing the event counters
// the formulae rely on.
func (c *cache) touch(addr uint64) {
	line := addr >> c.lineShift
	base := int(line&c.setMask) << c.wayShift
	tag := line<<entLineShift | entValid
	if c.ways == 4 {
		ents := c.ents[base : base+4 : base+4]
		e0, e1, e2, e3 := ents[0], ents[1], ents[2], ents[3]
		if e0&^entDirty == tag || e1&^entDirty == tag ||
			e2&^entDirty == tag || e3&^entDirty == tag {
			return // already resident; leave recency alone
		}
		c.evictions += e3 & entValid
		ents[0] = tag
		ents[1], ents[2], ents[3] = e0, e1, e2
		return
	}
	ents := c.ents
	for w := 0; w < c.ways; w++ {
		if e := ents[base+w]; e&^entDirty == tag {
			return // already resident; leave recency alone
		}
	}
	if ents[base+c.ways-1]&entValid != 0 {
		c.evictions++
	}
	for j := base + c.ways - 1; j > base; j-- {
		ents[j] = ents[j-1]
	}
	ents[base] = tag
}

// contains reports whether the line holding addr is resident, without
// touching statistics or recency.
func (c *cache) contains(addr uint64) bool {
	line := c.lineAddr(addr)
	base := int(line&c.setMask) << c.wayShift
	tag := line<<entLineShift | entValid
	for w := 0; w < c.ways; w++ {
		if e := c.ents[base+w]; e&^entDirty == tag {
			return true
		}
	}
	return false
}

// flush invalidates the entire cache (used between measured runs).
func (c *cache) flush() {
	for i := range c.ents {
		c.ents[i] = 0
	}
}

// resetStats zeroes the counters without disturbing cache contents,
// the warm-cache protocol of Section 4.3.
func (c *cache) resetStats() {
	c.refs, c.misses, c.evictions, c.wbacks = 0, 0, 0, 0
}

// missRate returns misses/references, zero when idle.
func (c *cache) missRate() float64 {
	if c.refs == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.refs)
}
