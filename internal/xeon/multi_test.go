package xeon

import (
	"fmt"
	"testing"

	"wheretime/internal/trace"
)

// multiTestConfigs are the platforms the gang equivalence suite runs:
// the default, a 2MB L2, a big BTB with long history, halved L1s, and
// a narrow-TLB variant.
func multiTestConfigs() []Config {
	base := DefaultConfig()
	bigL2 := base
	bigL2.L2SizeKB = 2048
	bigBTB := base
	bigBTB.BTBEntries = 8192
	bigBTB.HistoryBits = 6
	smallL1 := base
	smallL1.L1ISizeKB = 8
	smallL1.L1DSizeKB = 8
	tightTLB := base
	tightTLB.ITLBEntries = 8
	tightTLB.DTLBEntries = 16
	return []Config{base, bigL2, bigBTB, smallL1, tightTLB}
}

// record captures an event slice into a Recording (no forwarding).
func record(events []trace.Event) *trace.Recording {
	rec := trace.NewRecorder(nil, 0)
	rec.ProcessBatch(events)
	return rec.Recording()
}

// assertPipesEqual compares a gang member against its solo reference
// on every counter, stall component and hardware rate.
func assertPipesEqual(t *testing.T, label string, got, want *Pipeline) {
	t.Helper()
	gb, wb := got.Breakdown(), want.Breakdown()
	if gb.Counts != wb.Counts {
		t.Errorf("%s: counts differ:\n got %+v\nwant %+v", label, gb.Counts, wb.Counts)
	}
	if gb.Cycles != wb.Cycles {
		t.Errorf("%s: stall cycles differ:\n got %v\nwant %v", label, gb.Cycles, wb.Cycles)
	}
	if got.Rates() != want.Rates() {
		t.Errorf("%s: hardware rates differ", label)
	}
	if got.Interrupts() != want.Interrupts() {
		t.Errorf("%s: interrupt counts differ: %d vs %d", label, got.Interrupts(), want.Interrupts())
	}
}

// TestMultiPipelineMatchesSoloDrains drains one recording through a
// MultiPipeline and through K independent Pipelines under the full
// warm-up protocol (drain, reset, drain) and asserts every counter of
// every configuration is identical.
func TestMultiPipelineMatchesSoloDrains(t *testing.T) {
	cfgs := multiTestConfigs()
	rec := record(synthBatch(1 << 18))

	multi := NewMulti(cfgs)
	rec.Drain(multi)
	multi.ResetStats()
	rec.Drain(multi)

	for i, cfg := range cfgs {
		solo := New(cfg)
		rec.Drain(solo)
		solo.ResetStats()
		rec.Drain(solo)
		assertPipesEqual(t, fmt.Sprintf("config %d", i), multi.Pipe(i), solo)
	}
}

// TestDrainMultiMatchesDrain pins the trace-level multi-sink drain:
// Recording.DrainMulti over K pipelines leaves each exactly as its
// own Recording.Drain would.
func TestDrainMultiMatchesDrain(t *testing.T) {
	cfgs := multiTestConfigs()
	rec := record(synthBatch(1 << 17))

	ganged := make([]*Pipeline, len(cfgs))
	sinks := make([]trace.BatchProcessor, len(cfgs))
	for i, cfg := range cfgs {
		ganged[i] = New(cfg)
		sinks[i] = ganged[i]
	}
	rec.DrainMulti(sinks...)

	for i, cfg := range cfgs {
		solo := New(cfg)
		rec.Drain(solo)
		assertPipesEqual(t, fmt.Sprintf("config %d", i), ganged[i], solo)
	}
}

// TestFanoutMatchesSoloBatches pins the BatchProcessor fan-in: a
// trace.Fanout over K pipelines is equivalent to feeding each the
// same batches directly.
func TestFanoutMatchesSoloBatches(t *testing.T) {
	cfgs := multiTestConfigs()[:3]
	events := synthBatch(1 << 16)

	ganged := make([]*Pipeline, len(cfgs))
	fan := make(trace.Fanout, len(cfgs))
	for i, cfg := range cfgs {
		ganged[i] = New(cfg)
		fan[i] = ganged[i]
	}
	for start := 0; start < len(events); start += 4096 {
		fan.ProcessBatch(events[start : start+4096])
	}

	for i, cfg := range cfgs {
		solo := New(cfg)
		for start := 0; start < len(events); start += 4096 {
			solo.ProcessBatch(events[start : start+4096])
		}
		assertPipesEqual(t, fmt.Sprintf("config %d", i), ganged[i], solo)
	}
}

// decodeFuzzEvents turns fuzz bytes into a deterministic event stream
// shaped like the engine's: fetches, single- and multi-line loads and
// stores, bursts, stalls, record marks, and branches — including
// same-site branch runs, the shape the drain's run detection fuses.
func decodeFuzzEvents(data []byte) []trace.Event {
	var evs []trace.Event
	pc := trace.CodeBase
	for i := 0; i+4 <= len(data) && len(evs) < 1<<15; i += 4 {
		op, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		addr := trace.HeapBase + uint64(a)<<10 + uint64(b)*8
		code := trace.CodeBase + uint64(a)<<8 + uint64(b)*16
		switch op % 8 {
		case 0:
			evs = append(evs, trace.Event{Kind: trace.EvFetchBlock, Addr: code,
				Size: uint32(b) + 1, A: uint32(c)/4 + 1, B: uint32(c) + 1})
		case 1:
			evs = append(evs, trace.Event{Kind: trace.EvLoad, Addr: addr, Size: uint32(c%64) + 1})
		case 2:
			evs = append(evs, trace.Event{Kind: trace.EvStore, Addr: addr, Size: uint32(c%64) + 1})
		case 3:
			// A run of branches at one site: taken pattern from c's bits.
			pc = code
			for j := 0; j < int(b%6)+1; j++ {
				evs = append(evs, trace.Event{Kind: trace.EvBranch, Addr: pc,
					Aux: pc + uint64(int64(int8(a))), Taken: c>>(j%8)&1 == 1})
			}
		case 4:
			evs = append(evs, trace.Event{Kind: trace.EvBranch, Addr: code,
				Aux: code + 64, Taken: c&1 == 1})
		case 5:
			evs = append(evs, trace.Event{Kind: trace.EvDataBurst, Addr: trace.PrivateBase + uint64(a)*64,
				Size: uint32(b)*4 + 1, A: uint32(c % 16), B: uint32(c % 5)})
		case 6:
			evs = append(evs, trace.ResourceStallEvent(float64(a)/4, float64(b)/8, float64(c)/16))
		case 7:
			evs = append(evs, trace.Event{Kind: trace.EvRecordProcessed})
		}
	}
	return evs
}

// FuzzMultiDrain feeds random event streams through the gang drain at
// a random K in 1..8 and cross-checks every configuration against the
// single-pipeline reference path: trace.Replay, one Processor call
// per event. This pins the batched drain's fusions (branch runs,
// single-line fast paths) and the gang's block interleaving against
// the reference semantics in one property.
func FuzzMultiDrain(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte("gang-drain-seed-with-branch-runs-and-bursts"))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	all := multiTestConfigs()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		k := int(data[0])%8 + 1
		cfgs := make([]Config, k)
		for i := 0; i < k; i++ {
			cfgs[i] = all[(int(data[1])+i)%len(all)]
		}
		events := decodeFuzzEvents(data[2:])
		if len(events) == 0 {
			return
		}
		rec := record(events)

		multi := NewMulti(cfgs)
		rec.Drain(multi)
		multi.ResetStats()
		rec.Drain(multi)

		for i, cfg := range cfgs {
			ref := New(cfg)
			// Reference: the one-call-per-event path, twice, with the
			// same counter reset between passes.
			rec.Replay(trace.Unbatched{Processor: ref})
			ref.ResetStats()
			rec.Replay(trace.Unbatched{Processor: ref})
			gb, wb := multi.Pipe(i).Breakdown(), ref.Breakdown()
			if gb.Counts != wb.Counts {
				t.Fatalf("config %d (k=%d): counts diverged from reference:\n got %+v\nwant %+v",
					i, k, gb.Counts, wb.Counts)
			}
			if gb.Cycles != wb.Cycles {
				t.Fatalf("config %d (k=%d): cycles diverged from reference:\n got %v\nwant %v",
					i, k, gb.Cycles, wb.Cycles)
			}
		}
	})
}
