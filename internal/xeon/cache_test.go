package xeon

import (
	"testing"
	"testing/quick"
)

// tiny cache: 4 sets x 2 ways x 32B lines = 256 bytes.
func tinyCache() *cache { return newCache("t", 256, 2, 32) }

func TestCacheGeometry(t *testing.T) {
	c := newCache("L1I", 16*1024, 4, 32)
	if c.sets != 128 || c.ways != 4 {
		t.Errorf("16KB 4-way 32B: sets=%d ways=%d, want 128/4", c.sets, c.ways)
	}
	c2 := newCache("L2", 512*1024, 4, 32)
	if c2.sets != 4096 {
		t.Errorf("512KB 4-way 32B: sets=%d, want 4096", c2.sets)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets should panic")
		}
	}()
	newCache("bad", 96, 1, 32)
}

func TestCacheHitMiss(t *testing.T) {
	c := tinyCache()
	if hit, _, _ := c.access(0x1000, false); hit {
		t.Error("cold access should miss")
	}
	if hit, _, _ := c.access(0x1000, false); !hit {
		t.Error("second access should hit")
	}
	if hit, _, _ := c.access(0x101F, false); !hit {
		t.Error("same line should hit")
	}
	if hit, _, _ := c.access(0x1020, false); hit {
		t.Error("next line should miss")
	}
	if c.refs != 4 || c.misses != 2 {
		t.Errorf("refs=%d misses=%d, want 4/2", c.refs, c.misses)
	}
	if got := c.missRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := tinyCache() // 4 sets, 2 ways; same set every 4 lines (128 bytes)
	a0 := uint64(0x0000)
	a1 := a0 + 128 // same set
	a2 := a0 + 256 // same set
	c.access(a0, false)
	c.access(a1, false)
	// Touch a0 so a1 becomes LRU.
	c.access(a0, false)
	c.access(a2, false) // evicts a1
	if !c.contains(a0) {
		t.Error("a0 should survive (MRU)")
	}
	if c.contains(a1) {
		t.Error("a1 should have been evicted (LRU)")
	}
	if !c.contains(a2) {
		t.Error("a2 should be resident")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := tinyCache()
	a0 := uint64(0x0000)
	a1 := a0 + 128
	a2 := a0 + 256
	c.access(a0, true) // dirty
	c.access(a1, false)
	_, victim, dirty := c.access(a2, false) // evicts a0 (LRU)
	if !dirty || victim != a0 {
		t.Errorf("expected dirty eviction of %#x, got victim=%#x dirty=%v", a0, victim, dirty)
	}
	if c.wbacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.wbacks)
	}
	// Re-reading a0 must not report dirty (it was written back).
	c.access(a1, false)
	_, _, dirty2 := c.access(a0, false)
	if dirty2 {
		// victim of this fill is a2 or a1, both clean
		t.Error("unexpected dirty victim")
	}
}

func TestCacheDirtyBitFollowsLine(t *testing.T) {
	c := tinyCache()
	a0 := uint64(0)
	a1 := a0 + 128
	c.access(a0, true)
	c.access(a1, false) // a0 now LRU but dirty
	c.access(a0, false) // hit, move to front, stays dirty
	a2 := a0 + 256
	_, victim, dirty := c.access(a2, false) // evicts a1 (clean)
	if dirty {
		t.Errorf("clean line reported dirty (victim %#x)", victim)
	}
	a3 := a0 + 384
	_, victim, dirty = c.access(a3, false) // evicts a0 (dirty)
	if !dirty || victim != a0 {
		t.Errorf("dirty bit lost in move-to-front: victim=%#x dirty=%v", victim, dirty)
	}
}

func TestCacheTouchInsertsWithoutStats(t *testing.T) {
	c := tinyCache()
	c.touch(0x2000)
	if c.refs != 0 || c.misses != 0 {
		t.Errorf("touch should not count: refs=%d misses=%d", c.refs, c.misses)
	}
	if hit, _, _ := c.access(0x2000, false); !hit {
		t.Error("touched line should be resident")
	}
	// touch of a resident line leaves recency alone and never evicts.
	c.touch(0x2000)
	if !c.contains(0x2000) {
		t.Error("double touch lost the line")
	}
}

func TestCacheFlushAndResetStats(t *testing.T) {
	c := tinyCache()
	c.access(0x40, true)
	c.resetStats()
	if c.refs != 0 || c.misses != 0 {
		t.Error("resetStats should zero counters")
	}
	if !c.contains(0x40) {
		t.Error("resetStats should keep contents")
	}
	c.flush()
	if c.contains(0x40) {
		t.Error("flush should drop contents")
	}
}

func TestCacheCapacityThrash(t *testing.T) {
	// Cyclic walk over 2x capacity with true LRU -> 100% miss rate
	// after warm-up.
	c := tinyCache() // 8 lines
	lines := 16
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			c.access(uint64(i*32), false)
		}
	}
	if got := c.missRate(); got != 1.0 {
		t.Errorf("cyclic thrash miss rate = %v, want 1.0", got)
	}
}

func TestCacheFitsWorkingSet(t *testing.T) {
	c := tinyCache() // 8 lines
	for pass := 0; pass < 8; pass++ {
		for i := 0; i < 8; i++ {
			c.access(uint64(i*32), false)
		}
	}
	// 8 cold misses, everything else hits.
	if c.misses != 8 {
		t.Errorf("misses = %d, want 8 (cold only)", c.misses)
	}
}

// Property: access is deterministic — the same address sequence yields
// the same hit/miss sequence; and a repeat access to the same address
// always hits.
func TestCacheProperties(t *testing.T) {
	f := func(addrs []uint16) bool {
		c1, c2 := tinyCache(), tinyCache()
		for _, a16 := range addrs {
			a := uint64(a16)
			h1, _, _ := c1.access(a, false)
			h2, _, _ := c2.access(a, false)
			if h1 != h2 {
				return false
			}
			// Immediate re-access must hit.
			if h, _, _ := c1.access(a, false); !h {
				return false
			}
			c2.access(a, false)
		}
		return c1.refs == c2.refs && c1.misses == c2.misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLB(t *testing.T) {
	tb := newTLB("DTLB", 64, 4, 4096)
	if tb.access(0x1000) {
		t.Error("cold TLB access should miss")
	}
	if !tb.access(0x1FFF) {
		t.Error("same page should hit")
	}
	if tb.access(0x2000) {
		t.Error("next page should miss")
	}
	if tb.misses() != 2 || tb.refs() != 3 {
		t.Errorf("misses=%d refs=%d, want 2/3", tb.misses(), tb.refs())
	}
	if tb.pageOf(0x2FFF) != 2 {
		t.Errorf("pageOf(0x2FFF) = %d, want 2", tb.pageOf(0x2FFF))
	}
	tb.resetStats()
	if tb.missRate() != 0 {
		t.Error("resetStats should zero rate")
	}
	tb.flush()
	if tb.access(0x1000) {
		t.Error("flushed TLB should miss")
	}
}

func TestTLBCapacity(t *testing.T) {
	tb := newTLB("ITLB", 32, 4, 4096)
	// Walk 64 pages cyclically: thrash.
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 64; p++ {
			tb.access(uint64(p) * 4096)
		}
	}
	if tb.missRate() < 0.9 {
		t.Errorf("64-page cyclic walk over 32-entry TLB should thrash, rate=%v", tb.missRate())
	}
	tb2 := newTLB("ITLB", 32, 4, 4096)
	for pass := 0; pass < 10; pass++ {
		for p := 0; p < 16; p++ {
			tb2.access(uint64(p) * 4096)
		}
	}
	if tb2.misses() != 16 {
		t.Errorf("16-page set should only cold-miss: %d", tb2.misses())
	}
}
