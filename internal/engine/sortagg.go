package engine

import (
	"fmt"
	"sort"

	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// The sort-based aggregation (plan hint sql.HintSortAgg) executes a
// single-table aggregate the way a sort-group engine would: qualifying
// records are formatted into fixed-size (key, value) entries and
// written sequentially into working-set-sized runs; full runs are
// sorted in place; the runs then merge in multi-way passes — the
// characteristic sequential-with-strided-merge access pattern, reading
// round-robin across the merge fan-in while writing one sequential
// output — and the final pass feeds the aggregate. The result is
// identical to the sequential scan's: ordering never changes an
// avg/sum/count/min/max.

// Simulated sort geometry.
const (
	// sortEntryBytes is one run entry: sort key, carried aggregate
	// value, padding to a power-of-two stride.
	sortEntryBytes = 16
	// sortRunCap is the entries per generated run, sized so a run is a
	// 64KB working set (L2-resident while it is sorted).
	sortRunCap = 64 * 1024 / sortEntryBytes
	// sortMergeFanIn is the merge width of one pass.
	sortMergeFanIn = 8
	// sortRegionStride separates the two ping-pong merge regions: runs
	// of one pass are read from one region while the merged output is
	// written sequentially into the other.
	sortRegionStride = 1 << 30
)

// sortEntry is one (sort key, aggregate value) pair in a run.
type sortEntry struct {
	key int32
	val int32
	// seq breaks key ties with input order, keeping the sort total and
	// the emitted comparison outcomes deterministic.
	seq uint32
}

// sortRun is one run: its entries and its base entry offset within its
// ping-pong region (runs of a pass are laid out back to back).
type sortRun struct {
	ents []sortEntry
	base uint64
}

// addr returns the simulated address of entry i of the run in region
// side (0 or 1).
func (r *sortRun) addr(side, i uint64) uint64 {
	return workspaceBase + side*sortRegionStride + (r.base+i)*sortEntryBytes
}

// log2int returns ceil(log2(n)) for n >= 1, at least 1.
func log2int(n int) int {
	k := 1
	for v := n - 1; v > 1; v >>= 1 {
		k++
	}
	return k
}

// closeRun sorts a filled run in place, emitting the in-memory sort's
// hardware behaviour: log2(n) invocation-equivalents of rkSortRun
// instruction work (one per quicksort level — the bulk of the
// per-comparison cost was already charged at insertion, which
// rkSortRun's per-entry invocation models), and one read-compare-write
// pass of address traffic over the run. Deeper levels' repeated
// traffic is deliberately elided: the run is sized to fit the L2, so
// re-touches past the first pass hit by construction.
func (e *Engine) closeRun(buf *trace.Buffer, r *sortRun) {
	n := len(r.ents)
	if n <= 1 {
		return
	}
	srt := e.rt[rkSortRun]
	cmpPC := srt.Addr + uint64(srt.CodeBytes) - 8
	srt.InvokeFracBuf(buf, uint32(log2int(n)), 1)
	for i := 0; i < n; i++ {
		a := r.addr(0, uint64(i))
		buf.Load(a, sortEntryBytes)
		// The comparison branch retires with a data-dependent outcome:
		// whether this entry is already in order relative to its
		// neighbour.
		taken := i > 0 && r.ents[i-1].key > r.ents[i].key
		buf.Branch(cmpPC, cmpPC+48, taken)
		buf.Store(a, sortEntryBytes)
	}
	sort.Slice(r.ents, func(a, b int) bool {
		if r.ents[a].key != r.ents[b].key {
			return r.ents[a].key < r.ents[b].key
		}
		return r.ents[a].seq < r.ents[b].seq
	})
}

// mergeRuns merges up to sortMergeFanIn source runs from region side
// into one output run based at outBase in the other region, emitting
// the strided merge pattern: each output entry costs one rkSortMerge
// invocation, one load from the winning source run (reads stride
// across the fan-in's run buffers in key order), one data-dependent
// winner-change branch, and one sequential output store.
func (e *Engine) mergeRuns(buf *trace.Buffer, runs []*sortRun, side, outBase uint64) *sortRun {
	mrt := e.rt[rkSortMerge]
	winPC := mrt.Addr + uint64(mrt.CodeBytes) - 8
	cursors := make([]int, len(runs))
	out := &sortRun{base: outBase}
	last := -1
	for {
		win := -1
		for i, r := range runs {
			if cursors[i] >= len(r.ents) {
				continue
			}
			if win < 0 {
				win = i
				continue
			}
			a, b := r.ents[cursors[i]], runs[win].ents[cursors[win]]
			if a.key < b.key || (a.key == b.key && a.seq < b.seq) {
				win = i
			}
		}
		if win < 0 {
			return out
		}
		mrt.InvokeBuf(buf)
		buf.Load(runs[win].addr(side, uint64(cursors[win])), sortEntryBytes)
		buf.Branch(winPC, winPC+48, win != last)
		buf.Store(out.addr(1-side, uint64(len(out.ents))), sortEntryBytes)
		out.ents = append(out.ents, runs[win].ents[cursors[win]])
		last = win
		cursors[win]++
	}
}

// runSortAgg executes a single-table aggregate plan by external sort.
func (e *Engine) runSortAgg(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	if p.IsJoin() {
		return Result{}, fmt.Errorf("engine: %s hint on a join plan", p.Hint)
	}
	acc := p.Outer
	t := acc.Table
	agg := newAggState(p.Agg)
	aggCol := p.AggCol
	readsAggCol := !p.CountAll && p.AggTable == t

	srt := e.rt[rkSortRun]

	// --- Run generation ----------------------------------------------
	// The scan emission is the shared protocol (scanEmit — identical to
	// the sequential scan's); qualifying records additionally format a
	// sort entry and append it to the current run, a sequential write
	// into region 0.
	var runs []*sortRun
	run := &sortRun{ents: make([]sortEntry, 0, sortRunCap)}
	var seq uint32
	e.scanEmit(buf, acc, []int{acc.FilterCol}, func(pg *storage.Page, slot uint16, matched bool) {
		if matched {
			srt.InvokeBuf(buf)
			ent := sortEntry{seq: seq}
			if acc.HasFilter {
				ent.key = pg.Field(slot, acc.FilterCol)
			}
			if readsAggCol {
				buf.Load(pg.FieldAddr(slot, aggCol), storage.FieldSize)
				ent.val = pg.Field(slot, aggCol)
			}
			seq++
			buf.Store(run.addr(0, uint64(len(run.ents))), sortEntryBytes)
			run.ents = append(run.ents, ent)
			if len(run.ents) == sortRunCap {
				e.closeRun(buf, run)
				runs = append(runs, run)
				run = &sortRun{ents: make([]sortEntry, 0, sortRunCap), base: uint64(seq)}
			}
		}
		buf.RecordProcessed()
	})
	if len(run.ents) > 0 {
		e.closeRun(buf, run)
		runs = append(runs, run)
	}

	// --- Merge passes ------------------------------------------------
	side := uint64(0)
	for len(runs) > 1 {
		var next []*sortRun
		var outBase uint64
		for g := 0; g < len(runs); g += sortMergeFanIn {
			end := g + sortMergeFanIn
			if end > len(runs) {
				end = len(runs)
			}
			merged := e.mergeRuns(buf, runs[g:end], side, outBase)
			outBase += uint64(len(merged.ents))
			next = append(next, merged)
		}
		runs = next
		side = 1 - side
	}

	// --- Aggregation over the sorted run -----------------------------
	art := e.rt[rkAggAccum]
	if len(runs) == 1 {
		final := runs[0]
		for i, ent := range final.ents {
			art.InvokeBuf(buf)
			buf.Load(final.addr(side, uint64(i)), sortEntryBytes)
			if readsAggCol {
				agg.add(ent.val)
			} else {
				agg.addCount()
			}
		}
	}
	return agg.result(), nil
}
