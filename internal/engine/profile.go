// Package engine implements the query execution engine whose hardware
// behaviour the paper measures, in four build variants standing in for
// the four anonymous commercial DBMSs (System A, B, C, D).
//
// The engines execute queries for real — they scan actual pages,
// evaluate actual predicates, descend actual B+-trees and build actual
// hash tables — and emit the corresponding hardware-event stream into
// a trace.Processor. The four variants differ along the axes that
// differentiate real engines:
//
//   - Code-path length and footprint per record (System A's compact
//     interpreter retires the fewest instructions per record, Fig 5.3).
//   - Instruction placement (compact vs. scattered layouts with
//     conflicting cache alignment).
//   - Data placement (System B's PAX-style cache-conscious pages give
//     it the paper's 2% L2 data miss rate on sequential scans).
//   - Branch-mix regularity and μop-level parallelism (System A's
//     dense dependency chains give it the highest resource stalls).
//   - Planner behaviour (System A does not use the secondary index for
//     the indexed range selection, as in the paper).
package engine

import (
	"fmt"

	"wheretime/internal/storage"
)

// System identifies one of the four DBMS variants.
type System int

// The four systems of the paper.
const (
	SystemA System = iota
	SystemB
	SystemC
	SystemD
	numSystems
)

// Systems returns all four systems in paper order.
func Systems() []System { return []System{SystemA, SystemB, SystemC, SystemD} }

// String names the system as the paper does.
func (s System) String() string {
	switch s {
	case SystemA:
		return "A"
	case SystemB:
		return "B"
	case SystemC:
		return "C"
	case SystemD:
		return "D"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Profile is the build configuration of one system variant.
type Profile struct {
	// System and Name identify the variant.
	System System
	Name   string

	// DataLayout is the page layout of relations this system creates.
	DataLayout storage.Layout

	// CodeScale multiplies the per-invocation instruction counts of
	// every routine: the length of the per-record code path.
	CodeScale float64
	// FootprintScale multiplies the routines' static body sizes: the
	// breadth of data-dependent paths the binary carries. Bodies much
	// larger than the L1 I-cache make consecutive invocations fetch
	// mostly-disjoint code, the sustained L1 I-miss behaviour of
	// Section 5.2.2.
	FootprintScale float64
	// CodeAlign aligns each routine's start address; a multiple of the
	// L1 I-cache way size (4KB) makes routine prefixes contend for the
	// same cache sets, the behaviour of large unoptimised binaries.
	CodeAlign uint32
	// CodeGap pads between routines with cold code.
	CodeGap uint32

	// IrrFrac is the fraction of branch executions that are
	// data-dependent and effectively unpredictable.
	IrrFrac float64

	// DepPerKuop, FUPerKuop and ILDPerKuop set the resource-stall
	// profile (cycles per thousand μops). System A's tight interpreter
	// loop has long dependency chains and the highest DepPerKuop.
	DepPerKuop float64
	FUPerKuop  float64
	ILDPerKuop float64

	// PrivateScale multiplies the routines' private working sets; the
	// total (relative to the 16KB L1 D-cache) sets the ~2% L1D miss
	// rate the paper observes.
	PrivateScale float64

	// SharedKB sizes the engine's larger shared working set (buffer
	// descriptors, lock tables, catalog caches): L2-resident but far
	// beyond the L1 D-cache. SharedWindowBytes of it are walked per
	// record — L1D misses that hit L2, which set the L2 data miss
	// rate. System B's larger metadata traffic is what gives it the
	// paper's ~2% L2 data miss rate on sequential scans.
	SharedKB          int
	SharedWindowBytes int

	// UseIndex is whether the planner uses an available secondary
	// index for range selections. System A did not (Section 5.1).
	UseIndex bool

	// UopsPerInstr is the average μop expansion of the variant's
	// instruction mix (1–3 on the Pentium II).
	UopsPerInstr float64
	// BytesPerInstr is the average x86 instruction length of the
	// variant's code.
	BytesPerInstr float64
}

// DefaultProfile returns the build configuration for a system. The
// numbers are calibrated so the simulated breakdowns land in the bands
// the paper reports; see DESIGN.md §3 for the per-claim targets.
func DefaultProfile(s System) Profile {
	switch s {
	case SystemA:
		return Profile{
			System:            SystemA,
			Name:              "System A",
			DataLayout:        storage.NSM,
			CodeScale:         0.45,
			FootprintScale:    0.30,
			CodeAlign:         0,
			CodeGap:           64,
			IrrFrac:           0.012,
			DepPerKuop:        185,
			FUPerKuop:         60,
			ILDPerKuop:        14,
			PrivateScale:      0.8,
			SharedKB:          48,
			SharedWindowBytes: 32,
			UseIndex:          false,
			UopsPerInstr:      1.8,
			BytesPerInstr:     3.6,
		}
	case SystemB:
		return Profile{
			System:            SystemB,
			Name:              "System B",
			DataLayout:        storage.PAX,
			CodeScale:         0.85,
			FootprintScale:    0.80,
			CodeAlign:         4096,
			CodeGap:           512,
			IrrFrac:           0.027,
			DepPerKuop:        90,
			FUPerKuop:         38,
			ILDPerKuop:        10,
			PrivateScale:      1.0,
			SharedKB:          160,
			SharedWindowBytes: 128,
			UseIndex:          true,
			UopsPerInstr:      1.7,
			BytesPerInstr:     4.0,
		}
	case SystemC:
		return Profile{
			System:            SystemC,
			Name:              "System C",
			DataLayout:        storage.NSM,
			CodeScale:         1.05,
			FootprintScale:    1.30,
			CodeAlign:         4096,
			CodeGap:           1024,
			IrrFrac:           0.040,
			DepPerKuop:        105,
			FUPerKuop:         42,
			ILDPerKuop:        12,
			PrivateScale:      1.25,
			SharedKB:          96,
			SharedWindowBytes: 64,
			UseIndex:          true,
			UopsPerInstr:      1.7,
			BytesPerInstr:     4.2,
		}
	case SystemD:
		return Profile{
			System:            SystemD,
			Name:              "System D",
			DataLayout:        storage.NSM,
			CodeScale:         1.25,
			FootprintScale:    1.70,
			CodeAlign:         4096,
			CodeGap:           2048,
			IrrFrac:           0.040,
			DepPerKuop:        95,
			FUPerKuop:         48,
			ILDPerKuop:        12,
			PrivateScale:      1.1,
			SharedKB:          96,
			SharedWindowBytes: 64,
			UseIndex:          true,
			UopsPerInstr:      1.7,
			BytesPerInstr:     4.3,
		}
	default:
		panic(fmt.Sprintf("engine: unknown system %d", int(s)))
	}
}
