package engine

import (
	"fmt"

	"wheretime/internal/index"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// runBTreeRange (plan hint sql.HintIndexOnly) answers a range
// aggregate from the B+-tree alone: one root-to-leaf descent to the
// start of the range, then a walk along the leaf chain — the pure
// index access pattern, a handful of random node jumps followed by
// strictly sequential leaf reads, with no heap page fetched at any
// point. Only aggregates the leaves can answer qualify: COUNT(*), or
// an aggregate over the indexed column itself. One RecordProcessed
// fires per selected entry, the same per-selected-record denominator
// as the indexed range selection.
func (e *Engine) runBTreeRange(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	if p.IsJoin() {
		return Result{}, fmt.Errorf("engine: %s hint on a join plan", p.Hint)
	}
	acc := p.Outer
	t := acc.Table
	if !acc.HasFilter {
		return Result{}, fmt.Errorf("engine: %s scan needs a range predicate", p.Hint)
	}
	tree := t.Indexes[acc.FilterCol]
	if tree == nil {
		return Result{}, fmt.Errorf("engine: plan wants an index on %s column %d but none exists",
			t.Name, acc.FilterCol)
	}
	indexOnly := p.CountAll || (p.AggTable == t && p.AggCol == acc.FilterCol)
	if !indexOnly {
		return Result{}, fmt.Errorf("engine: %s scan cannot compute an aggregate over a non-indexed column", p.Hint)
	}
	agg := newAggState(p.Agg)

	leaf := e.rt[rkIdxLeafNext]
	accum := e.rt[rkAggAccum]

	tree.RangeTrace(acc.Lo, acc.Hi,
		e.descentEmit(buf),
		func(key int32, rid storage.RID, pos index.LeafPos) bool {
			leaf.InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*idxLeafEntryBytes, idxLeafEntryBytes)
			accum.InvokeBuf(buf)
			if p.CountAll {
				agg.addCount()
			} else {
				agg.add(key)
			}
			buf.RecordProcessed()
			return true
		})
	return agg.result(), nil
}
