package engine

import (
	"fmt"

	"wheretime/internal/index"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// runSeqScan executes query (1) of the paper without an index: a full
// scan of the outer table with an optional range predicate and an
// aggregate. One RecordProcessed fires per scanned record — the
// paper's SRS per-record denominator is |R|.
func (e *Engine) runSeqScan(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	acc := p.Outer
	t := acc.Table
	agg := newAggState(p.Agg)
	aggCol := p.AggCol
	readsAggCol := !p.CountAll && p.AggTable == t

	e.scanEmit(buf, acc, []int{acc.FilterCol}, func(pg *storage.Page, slot uint16, matched bool) {
		if matched {
			e.rt[rkAggAccum].InvokeBuf(buf)
			if readsAggCol {
				buf.Load(pg.FieldAddr(slot, aggCol), storage.FieldSize)
				agg.add(pg.Field(slot, aggCol))
			} else {
				agg.addCount()
			}
		}
		buf.RecordProcessed()
	})
	return agg.result(), nil
}

// idxLeafEntryBytes is one leaf entry: 4-byte key + 8-byte RID.
const idxLeafEntryBytes = 12

// descentEmit returns the per-level visitor of a B+-tree descent: one
// rkIdxDescend invocation per node, with the binary search touching
// log2(keys) positions spread through the node page. Both index
// operators (RID-fetching selection and index-only range scan) share
// this one definition of the descent cost.
func (e *Engine) descentEmit(buf *trace.Buffer) func(index.DescentStep) {
	return func(step index.DescentStep) {
		e.rt[rkIdxDescend].InvokeBuf(buf)
		span := uint64(storage.PageSize)
		for i := 0; i < step.KeysInspected; i++ {
			span >>= 1
			buf.Load(step.Addr+span, storage.FieldSize)
		}
	}
}

// runIndexScan executes query (1) through the non-clustered B+-tree:
// one descent to the start of the range, then a leaf-chain walk, with
// each qualifying entry materialised through a RID fetch into the
// heap. One RecordProcessed fires per selected record — the paper's
// IRS per-record denominator.
func (e *Engine) runIndexScan(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	acc := p.Outer
	t := acc.Table
	tree := t.Indexes[acc.FilterCol]
	if tree == nil {
		return Result{}, fmt.Errorf("engine: plan wants an index on %s column %d but none exists",
			t.Name, acc.FilterCol)
	}
	agg := newAggState(p.Agg)
	aggCol := p.AggCol
	readsAggCol := !p.CountAll && p.AggTable == t

	pool := e.cat.Pool()

	tree.RangeTrace(acc.Lo, acc.Hi,
		e.descentEmit(buf),
		func(key int32, rid storage.RID, pos index.LeafPos) bool {
			e.rt[rkIdxLeafNext].InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*idxLeafEntryBytes, idxLeafEntryBytes)

			// Materialise the record: buffer-pool lookup, page fix,
			// slot dereference — a random page access for a
			// non-clustered index.
			e.rt[rkRidFetch].InvokeBuf(buf)
			pg := pool.Get(rid.Page)
			buf.Load(pg.HeaderAddr(), 16)
			pg.TouchRecord(buf, rid.Slot, acc.FilterCol, aggCol)
			e.deformat(buf, pg, 2)
			e.rt[rkAggAccum].InvokeBuf(buf)
			if readsAggCol {
				agg.add(pg.Field(rid.Slot, aggCol))
			} else {
				agg.addCount()
			}
			buf.RecordProcessed()
			return true
		})
	return agg.result(), nil
}
