package engine

import (
	"fmt"

	"wheretime/internal/index"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// runSeqScan executes query (1) of the paper without an index: a full
// scan of the outer table with an optional range predicate and an
// aggregate. One RecordProcessed fires per scanned record — the
// paper's SRS per-record denominator is |R|.
func (e *Engine) runSeqScan(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	acc := p.Outer
	t := acc.Table
	agg := newAggState(p.Agg)
	aggCol := p.AggCol
	readsAggCol := !p.CountAll && p.AggTable == t

	// The data-dependent predicate branch lives at a fixed site near
	// the end of the qualification routine.
	qual := e.rt[rkQualEval]
	qualPC := qual.Addr + uint64(qual.CodeBytes) - 8

	pool := e.cat.Pool()
	for _, pid := range t.Heap.PageIDs() {
		pg := pool.Get(pid)
		e.rt[rkPageNext].InvokeBuf(buf)
		buf.Load(pg.HeaderAddr(), 16)
		n := pg.NumRecords()
		for s := 0; s < n; s++ {
			slot := uint16(s)
			e.rt[rkScanNext].InvokeBuf(buf)
			// Materialise the record (row stores copy the whole
			// record; PAX touches the needed columns).
			pg.TouchRecord(buf, slot, acc.FilterCol)
			e.deformat(buf, pg, 2)
			matched := true
			if acc.HasFilter {
				qual.InvokeBuf(buf)
				v := pg.Field(slot, acc.FilterCol)
				matched = v >= acc.Lo && v < acc.Hi
				// Taken means "record rejected, skip the aggregate".
				buf.Branch(qualPC, qualPC+96, !matched)
			}
			if matched {
				e.rt[rkAggAccum].InvokeBuf(buf)
				if readsAggCol {
					buf.Load(pg.FieldAddr(slot, aggCol), storage.FieldSize)
					agg.add(pg.Field(slot, aggCol))
				} else {
					agg.addCount()
				}
			}
			buf.RecordProcessed()
		}
	}
	return agg.result(), nil
}

// runIndexScan executes query (1) through the non-clustered B+-tree:
// one descent to the start of the range, then a leaf-chain walk, with
// each qualifying entry materialised through a RID fetch into the
// heap. One RecordProcessed fires per selected record — the paper's
// IRS per-record denominator.
func (e *Engine) runIndexScan(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	acc := p.Outer
	t := acc.Table
	tree := t.Indexes[acc.FilterCol]
	if tree == nil {
		return Result{}, fmt.Errorf("engine: plan wants an index on %s column %d but none exists",
			t.Name, acc.FilterCol)
	}
	agg := newAggState(p.Agg)
	aggCol := p.AggCol
	readsAggCol := !p.CountAll && p.AggTable == t

	const entryBytes = 12 // 4-byte key + 8-byte RID in the leaf
	pool := e.cat.Pool()

	tree.RangeTrace(acc.Lo, acc.Hi,
		func(step index.DescentStep) {
			// One node visit per level: the binary search touches
			// log2(keys) positions spread through the node page.
			e.rt[rkIdxDescend].InvokeBuf(buf)
			span := uint64(storage.PageSize)
			for i := 0; i < step.KeysInspected; i++ {
				span >>= 1
				buf.Load(step.Addr+span, storage.FieldSize)
			}
		},
		func(key int32, rid storage.RID, pos index.LeafPos) bool {
			e.rt[rkIdxLeafNext].InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*entryBytes, entryBytes)

			// Materialise the record: buffer-pool lookup, page fix,
			// slot dereference — a random page access for a
			// non-clustered index.
			e.rt[rkRidFetch].InvokeBuf(buf)
			pg := pool.Get(rid.Page)
			buf.Load(pg.HeaderAddr(), 16)
			pg.TouchRecord(buf, rid.Slot, acc.FilterCol, aggCol)
			e.deformat(buf, pg, 2)
			e.rt[rkAggAccum].InvokeBuf(buf)
			if readsAggCol {
				agg.add(pg.Field(rid.Slot, aggCol))
			} else {
				agg.addCount()
			}
			buf.RecordProcessed()
			return true
		})
	return agg.result(), nil
}
