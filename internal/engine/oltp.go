package engine

import (
	"fmt"

	"wheretime/internal/catalog"
	"wheretime/internal/index"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// OLTP primitives: the building blocks the TPC-C-style workload
// composes into transactions. Each primitive does real storage work
// and narrates the corresponding engine code paths — transaction
// bracketing, lock manager calls, log writes, index point lookups and
// in-place field updates.

// Txn is an open transaction handle. The engine model is single-
// threaded (the paper runs a single command stream), so a Txn is just
// the bracketing state for trace emission. The transaction emits into
// the engine's event buffer; Commit drains it, so the processor has
// seen every event of the transaction once Commit returns.
type Txn struct {
	e     *Engine
	buf   *trace.Buffer
	owned bool
	locks int
	open  bool
}

// Begin opens a transaction.
func (e *Engine) Begin(proc trace.Processor) *Txn {
	buf, owned := e.emitter(proc)
	if owned {
		e.openTxns++
	}
	e.rt[rkTxnBegin].InvokeBuf(buf)
	return &Txn{e: e, buf: buf, owned: owned, open: true}
}

// Commit closes the transaction: one log force plus commit processing,
// then the event buffer is flushed to the processor.
func (t *Txn) Commit() {
	if !t.open {
		panic("engine: commit of a closed transaction")
	}
	t.open = false
	t.e.rt[rkLogWrite].InvokeBuf(t.buf)
	t.e.rt[rkTxnCommit].InvokeBuf(t.buf)
	if t.owned {
		t.e.openTxns--
		t.buf.Flush()
	}
}

// Abort abandons the transaction without commit processing: the
// events already emitted stay in the stream (the storage work they
// narrate happened), the buffer drains, and the engine's reusable
// buffer is released for other processors. Aborting a transaction
// that is already closed is a no-op, so `defer txn.Abort()` composes
// with an explicit Commit on the success path.
func (t *Txn) Abort() {
	if !t.open {
		return
	}
	t.open = false
	if t.owned {
		t.e.openTxns--
		t.buf.Flush()
	}
}

// lock charges one lock-manager call; locks are charged per record
// touched, the dominant locking cost in OLTP paths.
func (t *Txn) lock() {
	t.locks++
	t.e.rt[rkLockAcquire].InvokeBuf(t.buf)
}

// Locks returns how many locks the transaction acquired.
func (t *Txn) Locks() int { return t.locks }

// PointLookup finds the records with the given key through the index
// on the given column, reads readCol of each, and returns the values.
// It errors if the table has no such index.
func (t *Txn) PointLookup(tab *catalog.Table, keyCol int, key int32, readCol int) ([]int32, error) {
	if !t.open {
		panic("engine: lookup on a closed transaction")
	}
	tree := tab.Indexes[keyCol]
	if tree == nil {
		return nil, fmt.Errorf("engine: table %s has no index on column %d", tab.Name, keyCol)
	}
	e, buf := t.e, t.buf
	pool := e.cat.Pool()
	var out []int32
	tree.RangeTrace(key, key+1,
		func(step index.DescentStep) {
			e.rt[rkIdxDescend].InvokeBuf(buf)
			span := uint64(storage.PageSize)
			for i := 0; i < step.KeysInspected; i++ {
				span >>= 1
				buf.Load(step.Addr+span, storage.FieldSize)
			}
		},
		func(k int32, rid storage.RID, pos index.LeafPos) bool {
			e.rt[rkIdxLeafNext].InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*12, 12)
			e.rt[rkRidFetch].InvokeBuf(buf)
			t.lock()
			pg := pool.Get(rid.Page)
			buf.Load(pg.HeaderAddr(), 16)
			buf.Load(pg.FieldAddr(rid.Slot, readCol), storage.FieldSize)
			out = append(out, pg.Field(rid.Slot, readCol))
			return true
		})
	return out, nil
}

// UpdateField updates one field of one record in place, with lock,
// log and buffer traffic.
func (t *Txn) UpdateField(tab *catalog.Table, rid storage.RID, col int, value int32) {
	if !t.open {
		panic("engine: update on a closed transaction")
	}
	e, buf := t.e, t.buf
	pg := e.cat.Pool().Get(rid.Page)
	t.lock()
	e.rt[rkRidFetch].InvokeBuf(buf)
	buf.Load(pg.HeaderAddr(), 16)
	e.rt[rkUpdateField].InvokeBuf(buf)
	buf.Load(pg.FieldAddr(rid.Slot, col), storage.FieldSize)
	pg.SetField(rid.Slot, col, value)
	buf.Store(pg.FieldAddr(rid.Slot, col), storage.FieldSize)
	e.rt[rkLogWrite].InvokeBuf(buf)
}

// InsertRecord appends a record to the table with lock and log
// traffic, returning its RID.
func (t *Txn) InsertRecord(tab *catalog.Table, values []int32) storage.RID {
	if !t.open {
		panic("engine: insert on a closed transaction")
	}
	e, buf := t.e, t.buf
	t.lock()
	rid := tab.Heap.Append(values)
	pg := e.cat.Pool().Get(rid.Page)
	e.rt[rkUpdateField].InvokeBuf(buf)
	buf.Store(pg.RecordAddr(rid.Slot), uint32(min(int(pg.RecordSize()), 64)))
	e.rt[rkLogWrite].InvokeBuf(buf)
	// Maintain any indexes.
	for col, tree := range tab.Indexes {
		e.rt[rkIdxDescend].InvokeBuf(buf)
		tree.Insert(pg.Field(rid.Slot, col), rid)
	}
	return rid
}

// FetchByRID reads one field of a known record under lock (the
// pattern of TPC-C order-status reads).
func (t *Txn) FetchByRID(tab *catalog.Table, rid storage.RID, col int) int32 {
	if !t.open {
		panic("engine: fetch on a closed transaction")
	}
	e, buf := t.e, t.buf
	t.lock()
	e.rt[rkRidFetch].InvokeBuf(buf)
	pg := e.cat.Pool().Get(rid.Page)
	buf.Load(pg.HeaderAddr(), 16)
	buf.Load(pg.FieldAddr(rid.Slot, col), storage.FieldSize)
	return pg.Field(rid.Slot, col)
}
