package engine_test

import (
	"math"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

// testDB builds a small deterministic database with indexes.
func testDB(t *testing.T, layout storage.Layout) *workload.Database {
	t.Helper()
	d := workload.Dims{RRecords: 3000, SRecords: 100, RecordSize: 100, Seed: 42}
	db, err := workload.Build(d, layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	return db
}

// referenceAvg computes avg(a3) over R where lo < a2 < hi directly
// from storage.
func referenceAvg(db *workload.Database, lo, hi int32) (float64, uint64) {
	var sum int64
	var n uint64
	db.R.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			a2 := pg.Field(uint16(s), 1)
			if a2 > lo && a2 < hi {
				sum += int64(pg.Field(uint16(s), 2))
				n++
			}
		}
		return true
	})
	if n == 0 {
		return math.NaN(), 0
	}
	return float64(sum) / float64(n), n
}

func TestSeqScanCorrectness(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	q := db.Dims.QuerySRS(0.10)
	res, err := e.Query(q, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := db.Dims.SelectivityBounds(0.10)
	want, rows := referenceAvg(db, lo, hi)
	if res.Rows != rows {
		t.Errorf("rows = %d, want %d", res.Rows, rows)
	}
	if math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("avg = %v, want %v", res.Value, want)
	}
	if rows == 0 {
		t.Fatal("test should select some rows")
	}
}

func TestSeqScanPAXCorrectness(t *testing.T) {
	db := testDB(t, storage.PAX)
	e := engine.New(engine.SystemB, db.Catalog)
	// System B plans with index; force a sequential plan to isolate
	// the scan path.
	plan, err := sql.Prepare(db.Catalog, db.Dims.QuerySRS(0.25), sql.PlanOptions{UseIndex: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(plan, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := db.Dims.SelectivityBounds(0.25)
	want, rows := referenceAvg(db, lo, hi)
	if res.Rows != rows || math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("PAX scan: got (%v,%d), want (%v,%d)", res.Value, res.Rows, want, rows)
	}
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	db := testDB(t, storage.NSM)
	eNoIdx := engine.New(engine.SystemA, db.Catalog) // A does not use the index
	eIdx := engine.New(engine.SystemD, db.Catalog)
	q := db.Dims.QuerySRS(0.05)

	planA, err := eNoIdx.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if planA.Outer.UseIndex {
		t.Fatal("System A must not use the index (Section 5.1)")
	}
	planD, err := eIdx.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !planD.Outer.UseIndex {
		t.Fatal("System D should use the index")
	}

	ra, err := eNoIdx.Run(planA, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := eIdx.Run(planD, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Rows != rd.Rows || math.Abs(ra.Value-rd.Value) > 1e-9 {
		t.Errorf("index scan disagrees with seq scan: (%v,%d) vs (%v,%d)",
			rd.Value, rd.Rows, ra.Value, ra.Rows)
	}
}

func TestJoinCorrectness(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	res, err := e.Query(db.Dims.QuerySJ(), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	// Every R record's a2 is in [1, SRecords], S.a1 is the PK 1..S:
	// every R row matches exactly once, so the join result is avg(a3)
	// over all of R.
	want, rows := referenceAvg(db, 0, int32(db.Dims.SRecords)+1)
	if res.Rows != rows {
		t.Errorf("join rows = %d, want %d (= |R|)", res.Rows, rows)
	}
	if math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("join avg = %v, want %v", res.Value, want)
	}
}

func TestAggregateFunctions(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemB, db.Catalog)
	for _, tc := range []struct {
		agg string
	}{{"count(*)"}, {"count(a3)"}, {"sum(a3)"}, {"min(a3)"}, {"max(a3)"}, {"avg(a3)"}} {
		q := "select " + tc.agg + " from r where a2 < 40 and a2 > 0"
		res, err := e.Query(q, trace.Discard{})
		if err != nil {
			t.Fatalf("%s: %v", tc.agg, err)
		}
		if res.Rows == 0 {
			t.Errorf("%s returned no rows", tc.agg)
		}
	}
	// Cross-check min <= avg <= max and sum = avg*count.
	get := func(q string) engine.Result {
		res, err := e.Query(q, trace.Discard{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	where := " from r where a2 < 40 and a2 > 0"
	mn := get("select min(a3)" + where).Value
	mx := get("select max(a3)" + where).Value
	av := get("select avg(a3)" + where)
	sm := get("select sum(a3)" + where).Value
	if mn > av.Value || av.Value > mx {
		t.Errorf("min %v / avg %v / max %v out of order", mn, av.Value, mx)
	}
	if math.Abs(sm-av.Value*float64(av.Rows)) > 1e-6*math.Abs(sm) {
		t.Errorf("sum %v != avg*count %v", sm, av.Value*float64(av.Rows))
	}
}

func TestEmptyRangeYieldsNaNAvg(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	res, err := e.Query("select avg(a3) from r where a2 < 1 and a2 > 0", trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 || !math.IsNaN(res.Value) {
		t.Errorf("empty range: got (%v,%d)", res.Value, res.Rows)
	}
}

func TestInstructionsPerRecordOrdering(t *testing.T) {
	db := testDB(t, storage.NSM)
	q := db.Dims.QuerySRS(0.10)
	var perRecord [4]float64
	for _, s := range engine.Systems() {
		e := engine.New(s, db.Catalog)
		var c trace.Counting
		plan, err := sql.Prepare(db.Catalog, q, sql.PlanOptions{UseIndex: false})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(plan, &c); err != nil {
			t.Fatal(err)
		}
		if c.Records != uint64(db.Dims.RRecords) {
			t.Fatalf("system %s processed %d records, want %d", s, c.Records, db.Dims.RRecords)
		}
		perRecord[s] = float64(c.Instructions) / float64(c.Records)
	}
	// Figure 5.3: System A retires the fewest instructions per record
	// on the sequential selection; D the most in our builds.
	if !(perRecord[engine.SystemA] < perRecord[engine.SystemB] &&
		perRecord[engine.SystemB] < perRecord[engine.SystemC] &&
		perRecord[engine.SystemC] < perRecord[engine.SystemD]) {
		t.Errorf("per-record instruction ordering violated: %v", perRecord)
	}
	// Sanity band: hundreds to a few thousand (Figure 5.3's axis).
	for s, v := range perRecord {
		if v < 300 || v > 16000 {
			t.Errorf("system %d: %v instructions/record outside Figure 5.3 range", s, v)
		}
	}
}

func TestBranchFractionNear20Percent(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var c trace.Counting
	if _, err := e.Query(db.Dims.QuerySRS(0.10), &c); err != nil {
		t.Fatal(err)
	}
	frac := float64(c.Branches) / float64(c.Instructions)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("branch fraction = %v, want ~0.20 (Section 5.3)", frac)
	}
}

func TestIndexScanRecordDenominatorIsSelected(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	var c trace.Counting
	res, err := e.Query(db.Dims.QuerySRS(0.10), &c)
	if err != nil {
		t.Fatal(err)
	}
	// IRS: RecordProcessed fires once per selected record (Fig 5.3's
	// IRS denominator).
	if c.Records != res.Rows {
		t.Errorf("IRS records = %d, want %d selected", c.Records, res.Rows)
	}
}

func TestCodeFootprintOrdering(t *testing.T) {
	db := testDB(t, storage.NSM)
	a := engine.New(engine.SystemA, db.Catalog)
	d := engine.New(engine.SystemD, db.Catalog)
	if a.CodeFootprint() >= d.CodeFootprint() {
		t.Errorf("System A footprint %d should be below System D %d",
			a.CodeFootprint(), d.CodeFootprint())
	}
}

func TestDeterministicReplay(t *testing.T) {
	db := testDB(t, storage.NSM)
	run := func() trace.Counting {
		e := engine.New(engine.SystemB, db.Catalog)
		var c trace.Counting
		if _, err := e.Query(db.Dims.QuerySRS(0.10), &c); err != nil {
			t.Fatal(err)
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestOLTPPrimitives(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var c trace.Counting
	txn := e.Begin(&c)

	// Point lookup through the S.a1 index.
	vals, err := txn.PointLookup(db.S, 0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("point lookup found %d rows, want 1 (primary key)", len(vals))
	}

	// Update a field and read it back.
	rids := db.S.Indexes[0].Search(5)
	if len(rids) != 1 {
		t.Fatal("search failed")
	}
	txn.UpdateField(db.S, rids[0], 2, 777)
	if got := txn.FetchByRID(db.S, rids[0], 2); got != 777 {
		t.Errorf("updated field = %d, want 777", got)
	}

	// Insert maintains indexes.
	before := db.S.Indexes[0].Len()
	rid := txn.InsertRecord(db.S, []int32{9999, 1, 2})
	if db.S.Indexes[0].Len() != before+1 {
		t.Error("insert did not maintain the index")
	}
	if got := txn.FetchByRID(db.S, rid, 0); got != 9999 {
		t.Errorf("inserted record a1 = %d", got)
	}
	if txn.Locks() == 0 {
		t.Error("transaction acquired no locks")
	}
	txn.Commit()
	if c.Instructions == 0 || c.Stores == 0 {
		t.Error("transaction emitted no trace")
	}
}

func TestCommitTwicePanics(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	txn := e.Begin(trace.Discard{})
	txn.Commit()
	defer func() {
		if recover() == nil {
			t.Error("double commit should panic")
		}
	}()
	txn.Commit()
}

func TestPointLookupWithoutIndexFails(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	txn := e.Begin(trace.Discard{})
	defer txn.Commit()
	if _, err := txn.PointLookup(db.R, 2, 5, 0); err == nil {
		t.Error("lookup on unindexed column should fail")
	}
}

func TestSystemStrings(t *testing.T) {
	want := map[engine.System]string{engine.SystemA: "A", engine.SystemB: "B", engine.SystemC: "C", engine.SystemD: "D"}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("System %d string = %q", s, s.String())
		}
		p := engine.DefaultProfile(s)
		if p.System != s || p.Name == "" {
			t.Errorf("profile for %s malformed: %+v", n, p)
		}
	}
	if engine.SystemB.String() != "B" {
		t.Error("B")
	}
}

func TestOnlySystemAAvoidsIndex(t *testing.T) {
	for _, s := range engine.Systems() {
		p := engine.DefaultProfile(s)
		if (s == engine.SystemA) == p.UseIndex {
			t.Errorf("system %s UseIndex = %v", s, p.UseIndex)
		}
	}
}

func TestOnlySystemBUsesPAX(t *testing.T) {
	for _, s := range engine.Systems() {
		p := engine.DefaultProfile(s)
		if (s == engine.SystemB) != (p.DataLayout == storage.PAX) {
			t.Errorf("system %s layout = %v", s, p.DataLayout)
		}
	}
}

// TestProcessorSwitchDuringTxnIsolates: the engine's reusable event
// buffer belongs to an open transaction; an emitter arriving with a
// different processor must get its own buffer rather than silently
// redirecting the rest of the transaction's events.
func TestProcessorSwitchDuringTxnIsolates(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var a, b trace.Counting
	txn := e.Begin(&a)
	inner := e.Begin(&b)
	inner.Commit()
	bAfterInner := b
	txn.Commit()
	if bAfterInner.Instructions == 0 {
		t.Fatal("inner transaction produced no events for its own processor")
	}
	if b != bAfterInner {
		t.Error("outer transaction's events leaked into the inner processor")
	}
	if a.Instructions == 0 {
		t.Fatal("outer transaction produced no events for its processor")
	}
}

// TestAbortReleasesEngineBuffer: a dropped transaction must not wedge
// the engine — Abort drains its events and releases the shared
// buffer, and aborting twice (or after Commit) is a no-op.
func TestAbortReleasesEngineBuffer(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var a, b trace.Counting
	txn := e.Begin(&a)
	txn.Abort()
	txn.Abort()
	if a.Instructions == 0 {
		t.Fatal("aborted transaction's events were not drained")
	}
	// The engine buffer is free again: a different processor binds it.
	next := e.Begin(&b)
	next.Commit()
	if b.Instructions == 0 {
		t.Fatal("post-abort transaction produced no events")
	}
}

// TestSameProcessorDuringTxnAllowed: re-entering the engine with the
// same processor while a transaction is open shares the buffer and
// keeps event order.
func TestSameProcessorDuringTxnAllowed(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var c trace.Counting
	txn := e.Begin(&c)
	inner := e.Begin(&c)
	inner.Commit()
	txn.Commit()
	if c.Instructions == 0 {
		t.Fatal("expected events to drain after commits")
	}
}
