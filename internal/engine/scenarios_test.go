package engine_test

import (
	"math"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

// The scenario operators must be drop-in access-path replacements:
// identical results to the default operators over the same SQL, new
// access patterns in the emitted stream, and the same
// pure-function-of-the-plan determinism the record/replay engine
// depends on.

// prepareHinted plans a query with an explicit operator hint.
func prepareHinted(t *testing.T, db *workload.Database, query string, hint sql.Hint, useIndex bool) *sql.Plan {
	t.Helper()
	plan, err := sql.Prepare(db.Catalog, query, sql.PlanOptions{UseIndex: useIndex})
	if err != nil {
		t.Fatal(err)
	}
	plan.Hint = hint
	return plan
}

func TestGraceJoinMatchesHashJoin(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	q := db.Dims.QuerySJ()

	base, err := e.Query(q, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	e.ResetState()
	grace, err := e.Run(prepareHinted(t, db, db.Dims.QueryGHJ(), sql.HintGraceJoin, true), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if grace.Rows != base.Rows {
		t.Errorf("grace join rows = %d, in-memory join rows = %d", grace.Rows, base.Rows)
	}
	if math.Abs(grace.Value-base.Value) > 1e-9 {
		t.Errorf("grace join avg = %v, in-memory join avg = %v", grace.Value, base.Value)
	}
	if base.Rows == 0 {
		t.Fatal("join should produce matches")
	}
}

func TestSortAggMatchesSeqScan(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	for _, sel := range []float64{0.02, 0.10, 0.50} {
		q := db.Dims.QuerySAG(sel)
		plan, err := sql.Prepare(db.Catalog, q, sql.PlanOptions{UseIndex: false})
		if err != nil {
			t.Fatal(err)
		}
		e.ResetState()
		base, err := e.Run(plan, trace.Discard{})
		if err != nil {
			t.Fatal(err)
		}
		e.ResetState()
		sorted, err := e.Run(prepareHinted(t, db, q, sql.HintSortAgg, false), trace.Discard{})
		if err != nil {
			t.Fatal(err)
		}
		if sorted.Rows != base.Rows || math.Abs(sorted.Value-base.Value) > 1e-9 {
			t.Errorf("sel %.2f: sort-agg (%v, %d rows) != seq scan (%v, %d rows)",
				sel, sorted.Value, sorted.Rows, base.Value, base.Rows)
		}
	}
}

func TestBTreeRangeCount(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	lo, hi := db.Dims.SelectivityBounds(0.10)
	_, want := referenceAvg(db, lo, hi)
	res, err := e.Run(prepareHinted(t, db, db.Dims.QueryBRS(0.10), sql.HintIndexOnly, true), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != want || uint64(res.Value) != want {
		t.Errorf("index-only count = (%v, %d rows), reference count = %d", res.Value, res.Rows, want)
	}
	if want == 0 {
		t.Fatal("range should select some entries")
	}
}

// heapWatcher records whether any data access landed inside the
// buffer-pool's data pages, [lo, hi). Index nodes live in their own
// region far above the data pages, so this isolates heap record
// fetches.
type heapWatcher struct {
	trace.Counting
	lo, hi      uint64
	heapTouches int
}

func (w *heapWatcher) Load(addr uint64, size uint32) {
	if addr >= w.lo && addr < w.hi {
		w.heapTouches++
	}
	w.Counting.Load(addr, size)
}

func (w *heapWatcher) Store(addr uint64, size uint32) {
	if addr >= w.lo && addr < w.hi {
		w.heapTouches++
	}
	w.Counting.Store(addr, size)
}

// TestBTreeRangeTouchesNoHeap pins the scenario's defining property:
// the index-only scan answers entirely from B-tree nodes — not one
// load or store lands in a heap data page.
func TestBTreeRangeTouchesNoHeap(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	w := heapWatcher{
		lo: trace.HeapBase,
		hi: trace.HeapBase + uint64(db.Catalog.Pool().NumPages())*storage.PageSize,
	}
	res, err := e.Run(prepareHinted(t, db, db.Dims.QueryBRS(0.20), sql.HintIndexOnly, true), trace.Unbatched{Processor: &w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("scan selected nothing")
	}
	if w.heapTouches != 0 {
		t.Errorf("index-only scan touched the heap %d times", w.heapTouches)
	}
	if w.Loads == 0 {
		t.Error("scan emitted no loads at all")
	}
}

// TestScenarioStreamsDeterministic pins the record/replay contract for
// the new operators: from reset engine state, two executions of the
// same hinted plan emit streams with identical event tallies.
func TestScenarioStreamsDeterministic(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	cases := []struct {
		name string
		plan *sql.Plan
	}{
		{"grace", prepareHinted(t, db, db.Dims.QueryGHJ(), sql.HintGraceJoin, true)},
		{"sortagg", prepareHinted(t, db, db.Dims.QuerySAG(0.10), sql.HintSortAgg, false)},
		{"btree", prepareHinted(t, db, db.Dims.QueryBRS(0.10), sql.HintIndexOnly, true)},
		{"joinsort", prepareHinted(t, db, db.Dims.QueryJSA(), sql.HintJoinSortAgg, false)},
		{"idxjoin", prepareHinted(t, db, db.Dims.QueryIXJ(0.10), sql.HintIndexProbeJoin, true)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a, b trace.Counting
			e.ResetState()
			if _, err := e.Run(tc.plan, &a); err != nil {
				t.Fatal(err)
			}
			e.ResetState()
			if _, err := e.Run(tc.plan, &b); err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("two reset runs emitted different streams:\n first %+v\nsecond %+v", a, b)
			}
			if a.Loads == 0 || a.Branches == 0 || a.Records == 0 {
				t.Errorf("stream looks empty: %+v", a)
			}
		})
	}
}

// TestHintValidation pins the dispatch errors: a hint on the wrong
// plan shape must fail loudly, not silently fall back.
func TestHintValidation(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	if _, err := e.Run(prepareHinted(t, db, db.Dims.QuerySRS(0.10), sql.HintGraceJoin, false), trace.Discard{}); err == nil {
		t.Error("grace hint on a single-table plan should fail")
	}
	if _, err := e.Run(prepareHinted(t, db, db.Dims.QuerySJ(), sql.HintSortAgg, false), trace.Discard{}); err == nil {
		t.Error("sort-agg hint on a join plan should fail")
	}
	if _, err := e.Run(prepareHinted(t, db, db.Dims.QuerySRS(0.10), sql.HintIndexOnly, false), trace.Discard{}); err == nil {
		t.Error("index-only hint on a non-indexed aggregate (avg over a3) should fail")
	}
	if _, err := e.Run(prepareHinted(t, db, db.Dims.QuerySRS(0.10), sql.HintJoinSortAgg, false), trace.Discard{}); err == nil {
		t.Error("join-sort-agg hint on a single-table plan should fail")
	}
	if _, err := e.Run(prepareHinted(t, db, db.Dims.QuerySJ(), sql.HintIndexProbeJoin, true), trace.Discard{}); err == nil {
		t.Error("index-probe hint on an unfiltered join (no index bounds) should fail")
	}
}

// TestJoinSortAggMatchesHashJoin pins the new composed pipeline: the
// Agg(Sort(HashJoin)) tree must produce exactly the in-memory join's
// aggregate — sorting the matches cannot change the answer.
func TestJoinSortAggMatchesHashJoin(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	base, err := e.Query(db.Dims.QuerySJ(), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	e.ResetState()
	jsa, err := e.Run(prepareHinted(t, db, db.Dims.QueryJSA(), sql.HintJoinSortAgg, false), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if jsa.Rows != base.Rows || math.Abs(jsa.Value-base.Value) > 1e-9 {
		t.Errorf("join-sort-agg (%v, %d rows) != hash join (%v, %d rows)",
			jsa.Value, jsa.Rows, base.Value, base.Rows)
	}
	if base.Rows == 0 {
		t.Fatal("join should produce matches")
	}
}

// TestIndexProbeJoinMatchesHeapJoin checks the index-probe join
// against the same filtered-join SQL through the default heap-scan
// build/probe plan.
func TestIndexProbeJoinMatchesHeapJoin(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	q := db.Dims.QueryIXJ(0.20)
	base, err := e.Query(q, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	e.ResetState()
	ixj, err := e.Run(prepareHinted(t, db, q, sql.HintIndexProbeJoin, true), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if ixj.Rows != base.Rows || math.Abs(ixj.Value-base.Value) > 1e-9 {
		t.Errorf("index-probe join (%v, %d rows) != heap-scan join (%v, %d rows)",
			ixj.Value, ixj.Rows, base.Value, base.Rows)
	}
	if base.Rows == 0 {
		t.Fatal("filtered join should produce matches")
	}
}
