package engine

import (
	"fmt"
	"math"

	"wheretime/internal/trace"
)

// RoutineKind names the engine code paths that execute per query, per
// page, per record, or per transaction step. Each kind becomes one
// trace.Routine placed in the engine's text segment.
type RoutineKind int

// Engine routines. Names describe the work the code path does.
const (
	// rkQueryStart runs once per query: parse, optimise, open cursors.
	rkQueryStart RoutineKind = iota
	// rkPageNext runs per page: buffer-pool fix, header checks, slot
	// directory setup.
	rkPageNext
	// rkScanNext runs per scanned record: slot arithmetic, visibility,
	// tuple pointer setup.
	rkScanNext
	// rkQualEval runs per scanned record with a predicate: expression
	// evaluation over the qualification attribute.
	rkQualEval
	// rkAggAccum runs per qualifying record: aggregate accumulation.
	rkAggAccum
	// rkIdxDescend runs per B+-tree level on a descent: node binary
	// search and child selection.
	rkIdxDescend
	// rkIdxLeafNext runs per index entry scanned in a leaf.
	rkIdxLeafNext
	// rkRidFetch runs per RID materialisation: buffer-pool hash
	// lookup, page fix, slot dereference.
	rkRidFetch
	// rkHashBuild runs per inner (build-side) record of a hash join.
	rkHashBuild
	// rkHashProbe runs per outer (probe-side) record.
	rkHashProbe
	// rkJoinMatch runs per join match: tuple concatenation and
	// projection.
	rkJoinMatch
	// rkTxnBegin and rkTxnCommit bracket an OLTP transaction.
	rkTxnBegin
	rkTxnCommit
	// rkLockAcquire runs per lock taken in OLTP transactions.
	rkLockAcquire
	// rkLogWrite runs per logged update.
	rkLogWrite
	// rkUpdateField runs per field update.
	rkUpdateField
	// rkFieldIter runs per materialised record, scaled by the number
	// of record fields: the tuple-deformatting loop that walks the
	// record's attribute descriptors (the "<rest of fields>" cost that
	// makes execution time grow with record size, Section 5.2.2).
	rkFieldIter
	// rkColdPath models error-handling and utility code interleaved
	// with the hot path in unoptimised layouts. Never invoked; it only
	// occupies address space between hot routines.
	rkColdPath

	// The scenario operators below are appended after rkColdPath so
	// their routines place after every original one: adding them moved
	// no existing routine's address, keeping the original experiments'
	// event streams byte-identical.

	// rkPartition runs per record hash-partitioned in a Grace join's
	// partition phase: hash, output-buffer append, spill bookkeeping.
	rkPartition
	// rkSortRun runs per qualifying record during sort run generation:
	// entry formatting and insertion into the in-memory run.
	rkSortRun
	// rkSortMerge runs per record merged: loser-tree comparison and
	// winner advance of the multi-way merge.
	rkSortMerge

	numRoutineKinds
)

// String names the routine kind.
func (k RoutineKind) String() string {
	names := [...]string{
		"query_start", "page_next", "scan_next", "qual_eval", "agg_accum",
		"idx_descend", "idx_leaf_next", "rid_fetch", "hash_build",
		"hash_probe", "join_match", "txn_begin", "txn_commit",
		"lock_acquire", "log_write", "update_field", "field_iter", "cold_path",
		"partition", "sort_run", "sort_merge",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("RoutineKind(%d)", int(k))
}

// routineBase gives, for the baseline (scale 1) build, each routine's
// per-invocation instruction count, its static body size (the hot
// region its many data-dependent paths occupy — this, not the dynamic
// count, is what pressures the I-cache), and its private working set.
// Instruction counts are sized so the per-record totals land in
// Figure 5.3's ranges.
type routineBase struct {
	instrs    uint32
	bodyBytes uint32
	privBytes uint32
	perQuery  bool // scale-invariant startup code
	// ilpMult scales the profile's resource-stall rates for this
	// routine; transaction-path code (locking, logging) has denser
	// dependency chains (Section 5.5: TPC-C resource stalls are
	// significantly higher).
	ilpMult float64
	// irrMult scales the profile's irregular-branch fraction for this
	// routine; aggregation code branches on data values (null checks,
	// overflow paths), which is what makes TB climb with selectivity
	// in Figure 5.4 (right).
	irrMult float64
}

var routineBases = [numRoutineKinds]routineBase{
	rkQueryStart:  {instrs: 24000, bodyBytes: 96 * 1024, privBytes: 4096, perQuery: true},
	rkPageNext:    {instrs: 2300, bodyBytes: 20 * 1024, privBytes: 1536},
	rkScanNext:    {instrs: 700, bodyBytes: 18 * 1024, privBytes: 2048},
	rkQualEval:    {instrs: 850, bodyBytes: 13 * 1024, privBytes: 1024},
	rkAggAccum:    {instrs: 950, bodyBytes: 13 * 1024, privBytes: 1024, irrMult: 6},
	rkIdxDescend:  {instrs: 700, bodyBytes: 8 * 1024, privBytes: 1536},
	rkIdxLeafNext: {instrs: 1100, bodyBytes: 9 * 1024, privBytes: 1536},
	rkRidFetch:    {instrs: 2100, bodyBytes: 16 * 1024, privBytes: 2560},
	rkHashBuild:   {instrs: 1400, bodyBytes: 14 * 1024, privBytes: 2048},
	rkHashProbe:   {instrs: 1800, bodyBytes: 18 * 1024, privBytes: 2048},
	rkJoinMatch:   {instrs: 1200, bodyBytes: 12 * 1024, privBytes: 1024, irrMult: 2},
	rkTxnBegin:    {instrs: 3600, bodyBytes: 28 * 1024, privBytes: 2048, ilpMult: 2.6},
	rkTxnCommit:   {instrs: 4200, bodyBytes: 32 * 1024, privBytes: 2048, ilpMult: 2.6},
	rkLockAcquire: {instrs: 900, bodyBytes: 10 * 1024, privBytes: 1024, ilpMult: 3.2},
	rkLogWrite:    {instrs: 1900, bodyBytes: 18 * 1024, privBytes: 2048, ilpMult: 2.9},
	rkUpdateField: {instrs: 1100, bodyBytes: 12 * 1024, privBytes: 1024, ilpMult: 2.2},
	rkFieldIter:   {instrs: 1400, bodyBytes: 16 * 1024, privBytes: 1024},
	rkColdPath:    {instrs: 6000, bodyBytes: 24 * 1024, privBytes: 0},
	// Scenario operators. Partitioning is a short hash-and-copy path;
	// run generation is comparable to hash build; the merge inner loop
	// branches on key comparisons (data values), like aggregation.
	rkPartition: {instrs: 1000, bodyBytes: 12 * 1024, privBytes: 2048},
	rkSortRun:   {instrs: 1300, bodyBytes: 14 * 1024, privBytes: 2048},
	rkSortMerge: {instrs: 1500, bodyBytes: 14 * 1024, privBytes: 1536, irrMult: 4},
}

// buildRoutines lays out one routine per kind according to the
// profile.
func buildRoutines(p Profile) (*trace.Layout, [numRoutineKinds]*trace.Routine) {
	l := trace.NewLayout()
	l.Gap = p.CodeGap
	l.Align = p.CodeAlign

	var rts [numRoutineKinds]*trace.Routine
	for k := RoutineKind(0); k < numRoutineKinds; k++ {
		base := routineBases[k]
		scale := p.CodeScale
		if base.perQuery {
			// Startup code is a fixed cost independent of the
			// per-record path-length differences.
			scale = 1
		}
		instrs := uint32(math.Round(float64(base.instrs) * scale))
		if instrs == 0 {
			instrs = 1
		}
		exec := uint32(math.Round(float64(instrs) * p.BytesPerInstr))
		body := uint32(math.Round(float64(base.bodyBytes) * p.FootprintScale))
		if body < exec {
			body = exec
		}
		r := &trace.Routine{
			Name:      fmt.Sprintf("%s/%s", p.Name, k),
			CodeBytes: body,
			ExecBytes: exec,
			Instrs:    instrs,
			Uops:      uint32(math.Round(float64(instrs) * p.UopsPerInstr)),
			Branches:  branchMixFor(instrs, p.IrrFrac*irrMult(base)),
			LoopIters: 4,
			ILP: trace.ILP{
				DepPerKuop: p.DepPerKuop * ilpMult(base),
				FUPerKuop:  p.FUPerKuop * ilpMult(base),
				ILDPerKuop: p.ILDPerKuop * ilpMult(base),
			},
			PrivateBytes:  uint32(math.Round(float64(base.privBytes) * p.PrivateScale)),
			SharedBytes:   sharedBytesFor(k, p),
			SharedWindow:  sharedWindowFor(k, p),
			PrivateLoads:  uint16(min32(instrs/8, 60000)),
			PrivateStores: uint16(min32(instrs/48, 20000)),
		}
		l.Place(r)
		rts[k] = r
	}
	return l, rts
}

// branchMixFor sizes a routine's branch mix so that branch executions
// are ~20% of retired instructions (Section 5.3), with the requested
// fraction of irregular executions, 40% of the rest loop-branch
// executions (4 iterations per site) and the remainder regular
// pattern branches.
func branchMixFor(instrs uint32, irrFrac float64) trace.BranchMix {
	if irrFrac > 0.5 {
		irrFrac = 0.5
	}
	exec := float64(instrs) / 5
	irr := exec * irrFrac
	loopExec := (exec - irr) * 0.4
	reg := exec - irr - loopExec
	mix := trace.BranchMix{
		Loop:      uint16(math.Round(loopExec / 4)),
		Regular:   uint16(math.Round(reg)),
		Irregular: uint16(math.Round(irr)),
	}
	if mix.Total() == 0 && instrs >= 8 {
		mix.Regular = 1
	}
	return mix
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// sharedRoutine reports whether a routine kind walks the engine's
// shared working set (the per-record entry points of each access
// path).
func sharedRoutine(k RoutineKind) bool {
	switch k {
	case rkScanNext, rkRidFetch, rkHashProbe, rkUpdateField:
		return true
	}
	return false
}

func sharedBytesFor(k RoutineKind, p Profile) uint32 {
	if !sharedRoutine(k) || p.SharedKB <= 0 {
		return 0
	}
	return uint32(p.SharedKB) * 1024
}

func sharedWindowFor(k RoutineKind, p Profile) uint32 {
	if !sharedRoutine(k) || p.SharedWindowBytes <= 0 {
		return 0
	}
	return uint32(p.SharedWindowBytes)
}

func ilpMult(b routineBase) float64 {
	if b.ilpMult == 0 {
		return 1
	}
	return b.ilpMult
}

func irrMult(b routineBase) float64 {
	if b.irrMult == 0 {
		return 1
	}
	if b.irrMult*1 > 10 {
		return 10
	}
	return b.irrMult
}
