package engine_test

import (
	"math"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

func TestJoinWithBuildSideFilter(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	// Restrict the build side: only S.a1 < 50 builds, so only R rows
	// with a2 < 50 match.
	res, err := e.Query("select avg(r.a3) from r, s where r.a2 = s.a1 and s.a1 < 50", trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	want, rows := referenceAvg(db, 0, 50)
	if res.Rows != rows || math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("filtered join: got (%v,%d), want (%v,%d)", res.Value, res.Rows, want, rows)
	}
}

func TestJoinWithProbeSideFilter(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	res, err := e.Query("select count(*) from r, s where r.a2 = s.a1 and r.a2 < 30", trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	_, rows := referenceAvg(db, 0, 30)
	if res.Rows != rows || res.Value != float64(rows) {
		t.Errorf("probe-filtered join count = (%v,%d), want %d", res.Value, res.Rows, rows)
	}
}

func TestJoinAggregateOverInnerTable(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemB, db.Catalog)
	// avg over the build side's column: every R row contributes its
	// matched S row's a3.
	res, err := e.Query("select avg(s.a3) from r, s where r.a2 = s.a1", trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != db.R.NumRecords() {
		t.Errorf("rows = %d, want |R| = %d", res.Rows, db.R.NumRecords())
	}
	// Reference: map S.a1 -> a3, average over R's a2 references.
	sByKey := map[int32]int32{}
	db.S.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			sByKey[pg.Field(uint16(s), 0)] = pg.Field(uint16(s), 2)
		}
		return true
	})
	var sum, n int64
	db.R.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			sum += int64(sByKey[pg.Field(uint16(s), 1)])
			n++
		}
		return true
	})
	want := float64(sum) / float64(n)
	if math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("avg(s.a3) = %v, want %v", res.Value, want)
	}
}

func TestPAXJoinCorrectness(t *testing.T) {
	db := testDB(t, storage.PAX)
	e := engine.New(engine.SystemB, db.Catalog)
	res, err := e.Query(db.Dims.QuerySJ(), trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	want, rows := referenceAvg(db, 0, int32(db.Dims.SRecords)+1)
	if res.Rows != rows || math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("PAX join: got (%v,%d), want (%v,%d)", res.Value, res.Rows, want, rows)
	}
}

func TestIndexScanCountStar(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemD, db.Catalog)
	res, err := e.Query("select count(*) from r where a2 < 20 and a2 > 0", trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	_, rows := referenceAvg(db, 0, 20)
	if res.Rows != rows || res.Value != float64(rows) {
		t.Errorf("indexed count(*) = (%v,%d), want %d", res.Value, res.Rows, rows)
	}
}

func TestDeformatScalesWithRecordWidth(t *testing.T) {
	// NSM engines walk every field of the record: a 200-byte record
	// retires more instructions per record than a 20-byte one.
	count := func(recSize int) float64 {
		d := workload.Dims{RRecords: 1000, SRecords: 33, RecordSize: recSize, Seed: 42}
		db, err := workload.Build(d, storage.NSM)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.SystemD, db.Catalog)
		plan, err := sql.Prepare(db.Catalog, d.QuerySRS(0.10), sql.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var c trace.Counting
		if _, err := e.Run(plan, &c); err != nil {
			t.Fatal(err)
		}
		return float64(c.Instructions) / float64(c.Records)
	}
	narrow := count(20)
	wide := count(200)
	if wide <= narrow*1.5 {
		t.Errorf("deformat cost flat: %v (20B) vs %v (200B)", narrow, wide)
	}
}

func TestPAXDeformatInsensitiveToWidth(t *testing.T) {
	// PAX engines deformat only the touched columns, so record width
	// barely moves their per-record instruction count.
	count := func(recSize int) float64 {
		d := workload.Dims{RRecords: 1000, SRecords: 33, RecordSize: recSize, Seed: 42}
		db, err := workload.Build(d, storage.PAX)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.SystemB, db.Catalog)
		plan, err := sql.Prepare(db.Catalog, d.QuerySRS(0.10), sql.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var c trace.Counting
		if _, err := e.Run(plan, &c); err != nil {
			t.Fatal(err)
		}
		return float64(c.Instructions) / float64(c.Records)
	}
	narrow := count(20)
	wide := count(200)
	if wide > narrow*1.1 {
		t.Errorf("PAX deformat should be width-insensitive: %v (20B) vs %v (200B)", narrow, wide)
	}
}

func TestSRSRecordDenominatorIsWholeTable(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	plan, err := sql.Prepare(db.Catalog, db.Dims.QuerySRS(0.01), sql.PlanOptions{UseIndex: false})
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counting
	if _, err := e.Run(plan, &c); err != nil {
		t.Fatal(err)
	}
	if c.Records != db.R.NumRecords() {
		t.Errorf("SRS records = %d, want |R| = %d", c.Records, db.R.NumRecords())
	}
}

func TestSJRecordDenominatorIsProbeTable(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemC, db.Catalog)
	var c trace.Counting
	if _, err := e.Query(db.Dims.QuerySJ(), &c); err != nil {
		t.Fatal(err)
	}
	if c.Records != db.R.NumRecords() {
		t.Errorf("SJ records = %d, want |R| = %d", c.Records, db.R.NumRecords())
	}
}

func TestRunNilPlanFails(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemA, db.Catalog)
	if _, err := e.Run(nil, trace.Discard{}); err == nil {
		t.Error("nil plan should error")
	}
}

func TestQueryBadSQLFails(t *testing.T) {
	db := testDB(t, storage.NSM)
	e := engine.New(engine.SystemA, db.Catalog)
	if _, err := e.Query("select * from r", trace.Discard{}); err == nil {
		t.Error("unsupported SQL should error")
	}
}

func TestIndexPlanWithoutIndexErrors(t *testing.T) {
	// Build a database without indexes, then force an index plan.
	d := workload.Dims{RRecords: 500, SRecords: 16, RecordSize: 100, Seed: 1}
	db, err := workload.Build(d, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.SystemD, db.Catalog)
	plan, err := sql.Prepare(db.Catalog, d.QuerySRS(0.10), sql.PlanOptions{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	// The planner falls back to a scan when no index exists, so this
	// must run fine and agree with the reference.
	res, err := e.Run(plan, trace.Discard{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.SelectivityBounds(0.10)
	want, rows := referenceAvg(db, lo, hi)
	if res.Rows != rows || math.Abs(res.Value-want) > 1e-9 {
		t.Errorf("fallback scan: got (%v,%d), want (%v,%d)", res.Value, res.Rows, want, rows)
	}
}

func TestEnginesShareCatalogSafely(t *testing.T) {
	// All four engines over one catalog: same results, independent
	// trace state.
	db := testDB(t, storage.NSM)
	var first engine.Result
	for i, s := range engine.Systems() {
		e := engine.New(s, db.Catalog)
		plan, err := sql.Prepare(db.Catalog, db.Dims.QuerySRS(0.10), sql.PlanOptions{UseIndex: false})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(plan, trace.Discard{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if res != first {
			t.Errorf("system %s result %+v != %+v", s, res, first)
		}
	}
}
