package engine_test

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

// The stream-equivalence pin: every scenario's emitted event stream,
// hashed field-by-field in order, against committed digests captured
// from the pre-plan-tree bespoke routines. The operator-DAG refactor
// must reproduce each stream byte-identically — these digests are the
// proof, one level below the harness golden matrix (which only sees
// aggregated counters).

var updateDigests = flag.Bool("update-digests", false, "rewrite testdata/stream_digests.txt from the current engine")

// streamHasher hashes every event field in stream order. It receives
// whole flushed batches, so the digest covers the exact event
// sequence the simulator would see.
type streamHasher struct {
	trace.Discard
	sum [32]byte
	h   []byte
}

func (s *streamHasher) ProcessBatch(events []trace.Event) {
	var w [27]byte
	for i := range events {
		ev := &events[i]
		w[0] = byte(ev.Kind)
		if ev.Taken {
			w[1] = 1
		} else {
			w[1] = 0
		}
		binary.LittleEndian.PutUint32(w[2:], ev.Size)
		binary.LittleEndian.PutUint64(w[6:], ev.Addr)
		binary.LittleEndian.PutUint64(w[14:], ev.Aux)
		binary.LittleEndian.PutUint32(w[19:], ev.A)
		binary.LittleEndian.PutUint32(w[23:], ev.B)
		s.h = append(s.h, w[:]...)
		if len(s.h) >= 1<<16 {
			s.fold()
		}
	}
}

func (s *streamHasher) fold() {
	mix := sha256.New()
	mix.Write(s.sum[:])
	mix.Write(s.h)
	mix.Sum(s.sum[:0])
	s.h = s.h[:0]
}

func (s *streamHasher) digest() string {
	s.fold()
	return hex.EncodeToString(s.sum[:])
}

// pinCase mirrors harness planFor: the same SQL, hint and planner
// options each QueryKind resolves to, so the digests cover exactly
// the streams the experiment grid emits.
type pinCase struct {
	name     string
	needsIdx bool
	plan     func(t *testing.T, db *workload.Database) *sql.Plan
}

func pinCases() []pinCase {
	return []pinCase{
		{"srs", false, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QuerySRS(0.10), sql.HintNone, false)
		}},
		{"irs", true, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QueryIRS(0.10), sql.HintNone, true)
		}},
		{"sj", false, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QuerySJ(), sql.HintNone, false)
		}},
		{"ghj", false, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QueryGHJ(), sql.HintGraceJoin, false)
		}},
		{"sag", false, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QuerySAG(0.10), sql.HintSortAgg, false)
		}},
		{"brs", true, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QueryBRS(0.10), sql.HintIndexOnly, true)
		}},
		{"jsa", false, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QueryJSA(), sql.HintJoinSortAgg, false)
		}},
		{"ixj", true, func(t *testing.T, db *workload.Database) *sql.Plan {
			return prepareHinted(t, db, db.Dims.QueryIXJ(0.10), sql.HintIndexProbeJoin, true)
		}},
	}
}

func digestPath() string { return filepath.Join("testdata", "stream_digests.txt") }

func loadDigests(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(digestPath())
	if err != nil {
		t.Fatalf("missing stream digest fixture (run with -update-digests first): %v", err)
	}
	defer f.Close()
	m := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			m[fields[0]] = fields[1]
		}
	}
	return m
}

// TestStreamDigestsPinned executes every (system, scenario) cell the
// harness microbenchmark grid runs and compares the emitted stream's
// digest against the committed fixture. Any reordering, insertion or
// removal of a single event in any scenario fails here with the exact
// cell named.
func TestStreamDigestsPinned(t *testing.T) {
	got := map[string]string{}
	for _, s := range engine.Systems() {
		prof := engine.DefaultProfile(s)
		db := testDB(t, prof.DataLayout)
		e := engine.New(s, db.Catalog)
		for _, c := range pinCases() {
			if c.needsIdx && !prof.UseIndex {
				continue
			}
			key := fmt.Sprintf("%s/%s", s, c.name)
			h := &streamHasher{}
			e.ResetState()
			if _, err := e.Run(c.plan(t, db), h); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			got[key] = h.digest()
		}
	}

	if *updateDigests {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, got[k])
		}
		if err := os.WriteFile(digestPath(), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	want := loadDigests(t)
	if len(want) != len(got) {
		t.Errorf("fixture has %d digests, run produced %d", len(want), len(got))
	}
	for k, g := range got {
		if w, ok := want[k]; !ok {
			t.Errorf("%s: no pinned digest (run with -update-digests if this cell is new)", k)
		} else if g != w {
			t.Errorf("%s: stream digest %s != pinned %s — the emitted event stream changed", k, g[:16], w[:16])
		}
	}
}
