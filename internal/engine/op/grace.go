package op

import "wheretime/internal/storage"

// The Grace/hybrid hash join executes an equijoin in two phases with
// partition-sized working sets, the structure analysed in the robust
// dynamic hybrid hash join literature:
//
//   - Partition: both inputs stream once and hash-partition on the
//     join key into per-partition output buffers — sequential writes
//     within a partition, the partition chosen by (different bits of)
//     the same hash the in-partition table later uses.
//   - Join: partition pairs are processed one at a time. The build
//     partition is read sequentially into an in-memory chained hash
//     table whose bucket array is reused across partitions (the hot,
//     cache-resident working set hybrid joins are built for), then the
//     probe partition streams through it with one random bucket access
//     plus a chain walk per probe record — the hash-bucket
//     random-access pattern, confined to a partition-sized region.
//
// Results are identical to HashJoin's: partitioning only routes
// tuples, it never drops or duplicates a match.

// Simulated partition geometry.
const (
	// gracePartTargetBytes sizes build partitions: enough partitions
	// are chosen that a build partition's entries fit this working set.
	gracePartTargetBytes = 64 * 1024
	// gracePartEntryBytes is one partitioned tuple: join key, RID,
	// carried aggregate column, padding.
	gracePartEntryBytes = 16
	// gracePartStride separates partition output buffers in the
	// simulated address space (each partition writes its own region).
	gracePartStride = 1 << 22
	// graceMaxParts bounds the partition fan-out.
	graceMaxParts = 64
)

// graceEntry is one partitioned tuple held for the join phase. seq is
// the entry's position in its partition buffer; its simulated address
// derives from it.
type graceEntry struct {
	key int32
	val int32
	seq uint32
}

// gracePartitions returns the partition count for a build side of n
// records: the smallest power of two giving partitions under the
// working-set target, at least 2 (so the partition pattern is always
// exercised) and at most graceMaxParts.
func gracePartitions(n uint64) uint64 {
	parts := uint64(2)
	for parts < graceMaxParts && n*gracePartEntryBytes/parts > gracePartTargetBytes {
		parts <<= 1
	}
	return parts
}

// gracePart selects an entry's partition: high hash bits, disjoint
// from the low bits the in-partition bucket index uses.
func gracePart(key int32, partMask uint64) uint64 {
	return uint64(hash32(key)>>16) & partMask
}

// partEntryAddr returns the simulated address of entry seq of
// partition p in the region at base. Offsets wrap at the partition
// stride: a partition that outgrows its output buffer recycles it (the
// spill-and-reuse behaviour of a real partitioner), so overflow can
// never alias a neighbouring partition's region. At the harness's
// scales every partition fits its stride and the wrap never engages.
func partEntryAddr(base, p uint64, seq uint32) uint64 {
	return base + p*gracePartStride + uint64(seq)*gracePartEntryBytes%gracePartStride
}

// GraceJoin is the Grace/hybrid-partition equijoin. Each input row
// costs one Partition invocation and a sequential partition-buffer
// store; the join phase then re-reads the partition buffers, so a
// carried aggregate value travels in the partition entry (the input
// scan reads the field without owing a load — the join-phase
// partition-buffer read is where the bytes move). Matches push rows
// whose ValAddr points into the partition buffer or entry arena,
// never the heap.
type GraceJoin struct {
	Build, Probe Operator
	// BuildRows and ProbeRows are the input cardinalities, fixing the
	// partition fan-out before either input runs.
	BuildRows, ProbeRows uint64
	Side                 AggSide
}

// Run implements Operator.
func (o *GraceJoin) Run(x *Exec, push func(Row)) error {
	buf := x.Buf

	parts := gracePartitions(o.BuildRows)
	// Grow the fan-out (up to the cap) until both sides' partitions are
	// expected to fit their stride regions; past the cap, partEntryAddr
	// wraps within the partition rather than aliasing a neighbour.
	for parts < graceMaxParts && (o.BuildRows*gracePartEntryBytes/parts > gracePartStride ||
		o.ProbeRows*gracePartEntryBytes/parts > gracePartStride) {
		parts <<= 1
	}
	partMask := parts - 1

	// Region layout in the per-query workspace: build partitions, then
	// probe partitions, then the reusable in-memory table region.
	buildBase := Base
	probeBase := buildBase + (partMask+1)*gracePartStride
	tableBase := probeBase + (partMask+1)*gracePartStride

	// --- Partition phase --------------------------------------------
	partition := func(in Operator, base uint64) ([][]graceEntry, error) {
		ps := make([][]graceEntry, partMask+1)
		err := in.Run(x, func(r Row) {
			p := gracePart(r.Key, partMask)
			x.Rt.Partition.InvokeBuf(buf)
			seq := uint32(len(ps[p]))
			buf.Store(partEntryAddr(base, p, seq), gracePartEntryBytes)
			ps[p] = append(ps[p], graceEntry{key: r.Key, val: r.Val, seq: seq})
		})
		return ps, err
	}
	buildParts, err := partition(o.Build, buildBase)
	if err != nil {
		return err
	}
	probeParts, err := partition(o.Probe, probeBase)
	if err != nil {
		return err
	}

	// --- Join phase: one partition pair at a time --------------------
	probeRt := x.Rt.HashProbe
	matchPC := probeRt.Addr + uint64(probeRt.CodeBytes) - 8

	for pi := uint64(0); pi <= partMask; pi++ {
		bp, pp := buildParts[pi], probeParts[pi]
		if len(pp) == 0 && len(bp) == 0 {
			continue
		}
		// Build the in-memory table over this partition. The bucket
		// array and entry arena live at tableBase for every partition:
		// the reused, cache-resident working set of a hybrid join.
		nBuckets := nextPow2(uint64(len(bp)) + 1)
		bucketMask := nBuckets - 1
		entriesBase := tableBase + nBuckets*hashBucketBytes
		table := make(map[int32][]graceEntry, len(bp))
		for i, ent := range bp {
			// Sequential read of the build partition buffer...
			buf.Load(partEntryAddr(buildBase, pi, ent.seq), gracePartEntryBytes)
			x.Rt.HashBuild.InvokeBuf(buf)
			// ...random bucket-head update and entry write.
			b := uint64(hash32(ent.key)) & bucketMask
			buf.Store(tableBase+b*hashBucketBytes, hashBucketBytes)
			buf.Store(entriesBase+uint64(i)*hashEntryBytes, hashEntryBytes)
			ent.seq = uint32(i) // entry index in the in-memory arena
			table[ent.key] = append(table[ent.key], ent)
		}
		// Stream the probe partition through it.
		for _, ent := range pp {
			buf.Load(partEntryAddr(probeBase, pi, ent.seq), gracePartEntryBytes)
			probeRt.InvokeBuf(buf)
			b := uint64(hash32(ent.key)) & bucketMask
			buf.Load(tableBase+b*hashBucketBytes, hashBucketBytes)
			chain := table[ent.key]
			for _, bent := range chain {
				buf.Load(entriesBase+uint64(bent.seq)*hashEntryBytes, hashEntryBytes)
				buf.Branch(matchPC, matchPC+64, true)
				x.Rt.JoinMatch.InvokeBuf(buf)
				out := Row{Key: ent.key}
				switch o.Side {
				case AggProbe:
					// The aggregate column travelled with the probe
					// tuple; the consumer reads it back from the
					// partition buffer.
					out.Val = ent.val
					out.ValAddr = partEntryAddr(probeBase, pi, ent.seq) + 8
					out.ValSize = storage.FieldSize
					out.HasVal = true
				case AggBuild:
					out.Val = bent.val
					out.ValAddr = entriesBase + uint64(bent.seq)*hashEntryBytes + 8
					out.ValSize = storage.FieldSize
					out.HasVal = true
				}
				push(out)
			}
			if len(chain) == 0 {
				buf.Branch(matchPC, matchPC+64, false)
			}
		}
	}
	return nil
}
