package op

import "wheretime/internal/storage"

// AggSide names which join input carries the aggregate column, fixing
// which side's field the match resolves Row.Val (and its owed load)
// from.
type AggSide int

const (
	// AggNone: the aggregate is COUNT(*) (or over neither input);
	// matches push valueless rows.
	AggNone AggSide = iota
	// AggProbe: the aggregate column lives on the probe input.
	AggProbe
	// AggBuild: the aggregate column lives on the build input.
	AggBuild
)

// hashEntry is one build-side tuple in the join hash table.
type hashEntry struct {
	key int32
	rid storage.RID
	// idx is the entry's allocation index: its simulated address is
	// entriesBase + idx*hashEntryBytes.
	idx uint32
}

// Simulated hash-table geometry: a bucket-head array followed by an
// entry arena, the classic chained table. Entry size covers key, RID,
// chain pointer and padding.
const (
	hashBucketBytes = 8
	hashEntryBytes  = 24
)

// HashJoin is the in-memory chained-hash equijoin: the build input is
// drained into a bucket array + entry arena at Base (one HashBuild
// invocation, bucket-head store and entry store per build row), then
// the probe input streams through it (HashProbe invocation and bucket
// load per probe row; per chain entry an entry load, a data-dependent
// key-compare branch, a JoinMatch invocation and the build record's
// touch). Each match pushes a row whose Val resolves from Side's
// field — the consumer owes its load via ValAddr.
//
// Build rows must carry Key and Pg/Slot; probe rows Key and (when
// Side is AggProbe) Pg/Slot for the aggregate field.
type HashJoin struct {
	Build, Probe Operator
	// BuildCol is the build-side join column, re-touched to verify
	// each match against the build record.
	BuildCol int
	// BuildRows sizes the bucket array: the build relation's
	// cardinality (the table is sized before the build input runs).
	BuildRows uint64
	Side      AggSide
	// AggCol is the aggregate column on Side's table.
	AggCol int
}

// Run implements Operator.
func (o *HashJoin) Run(x *Exec, push func(Row)) error {
	buf := x.Buf

	// --- Build phase -------------------------------------------------
	nBuckets := nextPow2(o.BuildRows + 1)
	bucketMask := nBuckets - 1
	entriesBase := Base + nBuckets*hashBucketBytes

	table := make(map[int32][]hashEntry, o.BuildRows)
	var entryIdx uint32

	if err := o.Build.Run(x, func(r Row) {
		x.Rt.HashBuild.InvokeBuf(buf)
		// Bucket-head update and entry write.
		b := uint64(hash32(r.Key)) & bucketMask
		buf.Store(Base+b*hashBucketBytes, hashBucketBytes)
		buf.Store(entriesBase+uint64(entryIdx)*hashEntryBytes, hashEntryBytes)
		table[r.Key] = append(table[r.Key],
			hashEntry{key: r.Key, rid: storage.RID{Page: r.Pg.ID(), Slot: r.Slot}, idx: entryIdx})
		entryIdx++
	}); err != nil {
		return err
	}

	// --- Probe phase -------------------------------------------------
	probeRt := x.Rt.HashProbe
	matchPC := probeRt.Addr + uint64(probeRt.CodeBytes) - 8
	return o.Probe.Run(x, func(r Row) {
		probeRt.InvokeBuf(buf)
		b := uint64(hash32(r.Key)) & bucketMask
		buf.Load(Base+b*hashBucketBytes, hashBucketBytes)
		chain := table[r.Key]
		// Walk the chain entries; the key-compare branch outcome
		// depends on data, so it retires as an architectural
		// branch per entry.
		for _, ent := range chain {
			buf.Load(entriesBase+uint64(ent.idx)*hashEntryBytes, hashEntryBytes)
			buf.Branch(matchPC, matchPC+64, true)
			x.Rt.JoinMatch.InvokeBuf(buf)
			// Verify against the build-side record (random access
			// into the build heap).
			bpg := x.Pool.Get(ent.rid.Page)
			bpg.TouchRecord(buf, ent.rid.Slot, o.BuildCol)
			out := Row{Key: r.Key, Pg: r.Pg, Slot: r.Slot}
			switch o.Side {
			case AggProbe:
				out.Val = r.Pg.Field(r.Slot, o.AggCol)
				out.ValAddr = r.Pg.FieldAddr(r.Slot, o.AggCol)
				out.ValSize = storage.FieldSize
				out.HasVal = true
			case AggBuild:
				out.Val = bpg.Field(ent.rid.Slot, o.AggCol)
				out.ValAddr = bpg.FieldAddr(ent.rid.Slot, o.AggCol)
				out.ValSize = storage.FieldSize
				out.HasVal = true
			}
			push(out)
		}
		if len(chain) == 0 {
			buf.Branch(matchPC, matchPC+64, false)
		}
	})
}
