package op

import (
	"math"

	"wheretime/internal/sql"
)

// aggState accumulates one aggregate.
type aggState struct {
	fn    sql.AggFunc
	count uint64
	sum   int64
	min   int32
	max   int32
}

func (a *aggState) reset(fn sql.AggFunc) {
	*a = aggState{fn: fn, min: math.MaxInt32, max: math.MinInt32}
}

func (a *aggState) add(v int32) {
	a.count++
	a.sum += int64(v)
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

func (a *aggState) addCount() { a.count++ }

// result returns the aggregate value (NaN for avg/min/max over no
// rows) and the number of contributing rows.
func (a *aggState) result() (float64, uint64) {
	var v float64
	switch a.fn {
	case sql.AggCount:
		v = float64(a.count)
	case sql.AggSum:
		v = float64(a.sum)
	case sql.AggAvg:
		if a.count == 0 {
			v = math.NaN()
		} else {
			v = float64(a.sum) / float64(a.count)
		}
	case sql.AggMin:
		if a.count == 0 {
			v = math.NaN()
		} else {
			v = float64(a.min)
		}
	case sql.AggMax:
		if a.count == 0 {
			v = math.NaN()
		} else {
			v = float64(a.max)
		}
	}
	return v, a.count
}

// Agg is the terminal streaming aggregate. Per input row it emits the
// AggAccum invocation when InvokeAccum is set (scans and sorts feed a
// distinct accumulation call; join matches charge their accumulation
// inside JoinMatch, so join-fed aggregates clear it), then the owed
// value load (ValAddr contract), then accumulates Val — or just
// counts when the row carries no value.
type Agg struct {
	Input Operator
	Fn    sql.AggFunc
	// InvokeAccum emits one AggAccum invocation per row.
	InvokeAccum bool

	st aggState
}

// Run implements Operator. push may be nil: Agg is terminal.
func (o *Agg) Run(x *Exec, _ func(Row)) error {
	o.st.reset(o.Fn)
	return o.Input.Run(x, func(r Row) {
		if o.InvokeAccum {
			x.Rt.AggAccum.InvokeBuf(x.Buf)
		}
		if r.ValAddr != 0 {
			x.Buf.Load(r.ValAddr, r.ValSize)
		}
		if r.HasVal {
			o.st.add(r.Val)
		} else {
			o.st.addCount()
		}
	})
}

// Result implements Sink.
func (o *Agg) Result() (float64, uint64) { return o.st.result() }

// HashAgg is the hash-grouped terminal aggregate: rows group by Key
// through a chained hash table at Base (the same bucket-array + entry
// arena geometry the joins use), costing one AggAccum invocation, the
// owed value load, a random bucket-head load and a group-entry store
// per row. It reports the global aggregate over all rows — grouping
// changes the access pattern, never the total — plus the group count.
type HashAgg struct {
	Input Operator
	Fn    sql.AggFunc
	// GroupHint sizes the bucket array: the expected distinct-key
	// count (the table is sized before the input runs).
	GroupHint uint64

	st     aggState
	groups int
}

// Run implements Operator. push may be nil: HashAgg is terminal.
func (o *HashAgg) Run(x *Exec, _ func(Row)) error {
	o.st.reset(o.Fn)
	o.groups = 0
	buf := x.Buf
	nBuckets := nextPow2(o.GroupHint + 1)
	bucketMask := nBuckets - 1
	entriesBase := Base + nBuckets*hashBucketBytes
	idx := make(map[int32]uint32, o.GroupHint)
	return o.Input.Run(x, func(r Row) {
		x.Rt.AggAccum.InvokeBuf(buf)
		if r.ValAddr != 0 {
			buf.Load(r.ValAddr, r.ValSize)
		}
		b := uint64(hash32(r.Key)) & bucketMask
		buf.Load(Base+b*hashBucketBytes, hashBucketBytes)
		gi, ok := idx[r.Key]
		if !ok {
			gi = uint32(len(idx))
			idx[r.Key] = gi
			o.groups++
		}
		buf.Store(entriesBase+uint64(gi)*hashEntryBytes, hashEntryBytes)
		if r.HasVal {
			o.st.add(r.Val)
		} else {
			o.st.addCount()
		}
	})
}

// Result implements Sink.
func (o *HashAgg) Result() (float64, uint64) { return o.st.result() }

// Groups returns the distinct-key count of the last Run.
func (o *HashAgg) Groups() int { return o.groups }
