// Package op implements the engine's composable streaming operators:
// heap and index scans, filters, in-memory and Grace-partition hash
// joins, external sort, and sort- or hash-based aggregation. Operators
// assemble into trees (any plan shape, not just the canned
// scenarios) and emit their hardware narration through the same
// trace.Buffer protocol the monolithic access paths used, preserving
// the event-order invariant of docs/ARCHITECTURE.md: an operator tree
// emits a deterministic event sequence that is a pure function of the
// plan and the data, never of buffering, batching or replay.
//
// # Execution model
//
// Execution is push-based: Run drives an operator's own work and
// delivers each output row to the parent's push callback, so the
// nesting of callbacks is exactly the nesting of the emitted event
// stream — a row's downstream costs (sort insertion, aggregate
// accumulation) appear at the point the row is produced, which is
// what keeps the composed streams byte-identical to the hand-fused
// routines they replaced.
//
// # Emission contracts
//
// Producers and consumers split a row's event costs along a strict
// seam:
//
//   - A producer emits everything needed to *surface* the row: page
//     fixes, record touches, deformatting, predicate branches, index
//     descents, join-match chains.
//   - Row.ValAddr publishes where the row's carried value lives in
//     the simulated address space. The consumer that uses the value
//     emits exactly one Load(ValAddr, ValSize) at its use point;
//     ValAddr zero means no load is owed (e.g. an index scan already
//     materialised the field via TouchRecord).
//   - Row.HasVal false means the row carries no aggregate input and
//     terminal operators count it instead of accumulating it.
//   - A scan with Count set fires RecordProcessed once per *scanned*
//     record, after the row's entire downstream work — that is the
//     paper's per-record denominator, and it is why Count belongs to
//     the driving scan, never to an interior operator.
package op

import (
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// Base is where per-query scratch structures (hash tables, partition
// buffers, sort runs) live in the simulated address space.
const Base uint64 = 0x6000_0000

// baselineFields is the field count of the paper's default 100-byte
// record; the field-iteration routine's per-invocation cost is
// calibrated to it.
const baselineFields = 25

// Row is one tuple flowing between operators. Key carries the join,
// sort or group key; Val the aggregate input (valid when HasVal);
// ValAddr/ValSize where a consumer must load it from (zero: no load
// owed). Pg and Slot identify the backing record for operators that
// re-touch it (join match verification).
type Row struct {
	Key     int32
	Val     int32
	ValAddr uint64
	ValSize uint32
	HasVal  bool
	Pg      *storage.Page
	Slot    uint16
}

// Routines is the set of named trace routines operators invoke. The
// engine builds it from its per-system routine table; op never
// allocates routines, so composing operators can never move an
// existing routine's address.
type Routines struct {
	PageNext    *trace.Routine
	ScanNext    *trace.Routine
	QualEval    *trace.Routine
	AggAccum    *trace.Routine
	IdxDescend  *trace.Routine
	IdxLeafNext *trace.Routine
	RidFetch    *trace.Routine
	HashBuild   *trace.Routine
	HashProbe   *trace.Routine
	JoinMatch   *trace.Routine
	FieldIter   *trace.Routine
	Partition   *trace.Routine
	SortRun     *trace.Routine
	SortMerge   *trace.Routine
}

// Exec is the per-run execution context: the event buffer the tree
// emits into, the buffer pool pages come from, and the routine set.
type Exec struct {
	Buf  *trace.Buffer
	Pool *storage.BufferPool
	Rt   *Routines
}

// Operator is one node of a streaming plan tree. Run executes the
// operator — driving its children recursively — and delivers each
// output row to push in stream order. Terminal operators (Agg,
// HashAgg) accept a nil push.
type Operator interface {
	Run(x *Exec, push func(Row)) error
}

// Sink is a terminal operator holding an aggregate result.
type Sink interface {
	Operator
	Result() (value float64, rows uint64)
}

// hash32 is a Fibonacci-style integer hash.
func hash32(v int32) uint32 {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}
