package op

import (
	"fmt"

	"wheretime/internal/index"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
)

// idxLeafEntryBytes is one leaf entry: 4-byte key + 8-byte RID.
const idxLeafEntryBytes = 12

// descentEmit returns the per-level visitor of a B+-tree descent: one
// IdxDescend invocation per node, with the binary search touching
// log2(keys) positions spread through the node page. Both index
// operators share this one definition of the descent cost.
func descentEmit(x *Exec) func(index.DescentStep) {
	return func(step index.DescentStep) {
		x.Rt.IdxDescend.InvokeBuf(x.Buf)
		span := uint64(storage.PageSize)
		for i := 0; i < step.KeysInspected; i++ {
			span >>= 1
			x.Buf.Load(step.Addr+span, storage.FieldSize)
		}
	}
}

// IndexScan selects a key range through a non-clustered B+-tree: one
// descent to the start of the range, then a leaf-chain walk, with
// each qualifying entry materialised through a RID fetch into the
// heap (IdxLeafNext + leaf-entry load, RidFetch + page fix,
// TouchRecord over Cols, deformat). Rows carry the index key as Key
// and, when ValCol is set, the heap field as Val — with ValAddr zero,
// because TouchRecord already materialised the record; no further
// load is owed.
type IndexScan struct {
	Acc *sql.TableAccess
	// Cols is the TouchRecord column order at the RID fetch.
	Cols []int
	// ValCol fills Row.Val from the fetched record; -1 carries none.
	ValCol int
	// Count fires RecordProcessed per selected entry.
	Count bool
}

// Run implements Operator.
func (o *IndexScan) Run(x *Exec, push func(Row)) error {
	acc := o.Acc
	tree := acc.Table.Indexes[acc.FilterCol]
	if tree == nil {
		return fmt.Errorf("op: plan wants an index on %s column %d but none exists",
			acc.Table.Name, acc.FilterCol)
	}
	buf := x.Buf
	tree.RangeTrace(acc.Lo, acc.Hi,
		descentEmit(x),
		func(key int32, rid storage.RID, pos index.LeafPos) bool {
			x.Rt.IdxLeafNext.InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*idxLeafEntryBytes, idxLeafEntryBytes)

			// Materialise the record: buffer-pool lookup, page fix,
			// slot dereference — a random page access for a
			// non-clustered index.
			x.Rt.RidFetch.InvokeBuf(buf)
			pg := x.Pool.Get(rid.Page)
			buf.Load(pg.HeaderAddr(), 16)
			pg.TouchRecord(buf, rid.Slot, o.Cols...)
			deformat(x, pg, 2)
			r := Row{Key: key, Pg: pg, Slot: rid.Slot}
			if o.ValCol >= 0 {
				r.Val = pg.Field(rid.Slot, o.ValCol)
				r.HasVal = true
			}
			push(r)
			if o.Count {
				buf.RecordProcessed()
			}
			return true
		})
	return nil
}

// IndexOnlyScan answers a key range from the B+-tree alone: one
// descent, then a walk along the leaf chain — a handful of random
// node jumps followed by strictly sequential leaf reads, with no heap
// page fetched at any point. Rows carry the index key as both Key and
// Val (HasVal false under CountOnly), with ValAddr zero: the leaf
// entry load already covered the key bytes.
type IndexOnlyScan struct {
	Acc *sql.TableAccess
	// CountOnly marks a COUNT(*): rows are counted, not accumulated.
	CountOnly bool
	// Count fires RecordProcessed per selected entry.
	Count bool
}

// Run implements Operator.
func (o *IndexOnlyScan) Run(x *Exec, push func(Row)) error {
	acc := o.Acc
	tree := acc.Table.Indexes[acc.FilterCol]
	if tree == nil {
		return fmt.Errorf("op: plan wants an index on %s column %d but none exists",
			acc.Table.Name, acc.FilterCol)
	}
	buf := x.Buf
	leaf := x.Rt.IdxLeafNext
	tree.RangeTrace(acc.Lo, acc.Hi,
		descentEmit(x),
		func(key int32, rid storage.RID, pos index.LeafPos) bool {
			leaf.InvokeBuf(buf)
			buf.Load(pos.Addr+32+uint64(pos.Index)*idxLeafEntryBytes, idxLeafEntryBytes)
			push(Row{Key: key, Val: key, HasVal: !o.CountOnly})
			if o.Count {
				buf.RecordProcessed()
			}
			return true
		})
	return nil
}
