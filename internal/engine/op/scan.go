package op

import (
	"wheretime/internal/sql"
	"wheretime/internal/storage"
)

// deformat emits the tuple-deformatting work of materialising a
// record: row stores walk every attribute descriptor of the record,
// so the cost scales with record width; PAX engines deformat only the
// columns the query touches.
func deformat(x *Exec, pg *storage.Page, cols int) {
	n := pg.Fields()
	if pg.Layout() == storage.PAX {
		n = cols
	}
	x.Rt.FieldIter.InvokeFracBuf(x.Buf, uint32(n), baselineFields)
}

// HeapScan walks a table's heap emitting the shared scan protocol
// every scanning plan rides: per page, the buffer-pool fix (PageNext)
// and header load; per record, the slot advance (ScanNext), the
// record materialisation (TouchRecord over Cols, in order — order
// matters for PAX emission), deformatting, and — when the access
// carries a filter — the predicate evaluation (QualEval) with its
// data-dependent retired branch. Qualifying records are pushed with
// Key from KeyCol and a carried value from ValCol (whose load the
// consumer owes, per the ValAddr contract).
type HeapScan struct {
	Acc *sql.TableAccess
	// Cols is the TouchRecord column order.
	Cols []int
	// KeyCol fills Row.Key; -1 leaves it zero.
	KeyCol int
	// ValCol fills Row.Val/ValAddr/ValSize; -1 carries no value.
	ValCol int
	// Count fires RecordProcessed per scanned record, after the
	// pushed row's downstream work.
	Count bool
}

// Run implements Operator.
func (o *HeapScan) Run(x *Exec, push func(Row)) error {
	buf := x.Buf
	acc := o.Acc
	qual := x.Rt.QualEval
	qualPC := qual.Addr + uint64(qual.CodeBytes) - 8
	for _, pid := range acc.Table.Heap.PageIDs() {
		pg := x.Pool.Get(pid)
		x.Rt.PageNext.InvokeBuf(buf)
		buf.Load(pg.HeaderAddr(), 16)
		n := pg.NumRecords()
		for s := 0; s < n; s++ {
			slot := uint16(s)
			x.Rt.ScanNext.InvokeBuf(buf)
			pg.TouchRecord(buf, slot, o.Cols...)
			deformat(x, pg, 2)
			matched := true
			if acc.HasFilter {
				qual.InvokeBuf(buf)
				v := pg.Field(slot, acc.FilterCol)
				matched = v >= acc.Lo && v < acc.Hi
				// Taken means "record rejected, skip the per-record work".
				buf.Branch(qualPC, qualPC+96, !matched)
			}
			if matched {
				r := Row{Pg: pg, Slot: slot}
				if o.KeyCol >= 0 {
					r.Key = pg.Field(slot, o.KeyCol)
				}
				if o.ValCol >= 0 {
					r.Val = pg.Field(slot, o.ValCol)
					r.ValAddr = pg.FieldAddr(slot, o.ValCol)
					r.ValSize = storage.FieldSize
					r.HasVal = true
				}
				push(r)
			}
			if o.Count {
				buf.RecordProcessed()
			}
		}
	}
	return nil
}

// Filter applies a half-open range predicate [Lo, Hi) over Row.Key to
// an interior stream, emitting the same per-row QualEval invocation
// and data-dependent branch a scan-level filter emits. Scans fold
// their base-table predicate into the scan itself (the access path
// evaluates it during the slot walk); Filter exists for predicates on
// *derived* streams — post-join residuals, having-style cuts — that
// no base access path can absorb.
type Filter struct {
	Input  Operator
	Lo, Hi int32
}

// Run implements Operator.
func (o *Filter) Run(x *Exec, push func(Row)) error {
	qual := x.Rt.QualEval
	qualPC := qual.Addr + uint64(qual.CodeBytes) - 8
	return o.Input.Run(x, func(r Row) {
		qual.InvokeBuf(x.Buf)
		matched := r.Key >= o.Lo && r.Key < o.Hi
		x.Buf.Branch(qualPC, qualPC+96, !matched)
		if matched {
			push(r)
		}
	})
}
