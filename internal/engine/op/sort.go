package op

import "sort"

// Sort is the external-sort operator: input rows are formatted into
// fixed-size (key, value) entries and written sequentially into
// working-set-sized runs; full runs are sorted in place; the runs
// then merge in multi-way passes — the characteristic
// sequential-with-strided-merge access pattern, reading round-robin
// across the merge fan-in while writing one sequential output — and
// the final sorted run streams to the parent. Ordering never changes
// an avg/sum/count/min/max, so an aggregate over Sort equals one over
// its input.

// Simulated sort geometry.
const (
	// sortEntryBytes is one run entry: sort key, carried aggregate
	// value, padding to a power-of-two stride.
	sortEntryBytes = 16
	// sortRunCap is the entries per generated run, sized so a run is a
	// 64KB working set (L2-resident while it is sorted).
	sortRunCap = 64 * 1024 / sortEntryBytes
	// sortMergeFanIn is the merge width of one pass.
	sortMergeFanIn = 8
	// sortRegionStride separates the two ping-pong merge regions: runs
	// of one pass are read from one region while the merged output is
	// written sequentially into the other.
	sortRegionStride = 1 << 30
)

// sortEntry is one (sort key, aggregate value) pair in a run.
type sortEntry struct {
	key int32
	val int32
	// seq breaks key ties with input order, keeping the sort total and
	// the emitted comparison outcomes deterministic.
	seq uint32
}

// sortRun is one run: its entries and its base entry offset within its
// ping-pong region (runs of a pass are laid out back to back).
type sortRun struct {
	ents []sortEntry
	base uint64
}

// addr returns the simulated address of entry i of the run in region
// side (0 or 1).
func (r *sortRun) addr(side, i uint64) uint64 {
	return Base + side*sortRegionStride + (r.base+i)*sortEntryBytes
}

// log2int returns ceil(log2(n)) for n >= 1, at least 1.
func log2int(n int) int {
	k := 1
	for v := n - 1; v > 1; v >>= 1 {
		k++
	}
	return k
}

// closeRun sorts a filled run in place, emitting the in-memory sort's
// hardware behaviour: log2(n) invocation-equivalents of SortRun
// instruction work (one per quicksort level — the bulk of the
// per-comparison cost was already charged at insertion, which
// SortRun's per-entry invocation models), and one read-compare-write
// pass of address traffic over the run. Deeper levels' repeated
// traffic is deliberately elided: the run is sized to fit the L2, so
// re-touches past the first pass hit by construction.
func closeRun(x *Exec, r *sortRun) {
	n := len(r.ents)
	if n <= 1 {
		return
	}
	buf := x.Buf
	srt := x.Rt.SortRun
	cmpPC := srt.Addr + uint64(srt.CodeBytes) - 8
	srt.InvokeFracBuf(buf, uint32(log2int(n)), 1)
	for i := 0; i < n; i++ {
		a := r.addr(0, uint64(i))
		buf.Load(a, sortEntryBytes)
		// The comparison branch retires with a data-dependent outcome:
		// whether this entry is already in order relative to its
		// neighbour.
		taken := i > 0 && r.ents[i-1].key > r.ents[i].key
		buf.Branch(cmpPC, cmpPC+48, taken)
		buf.Store(a, sortEntryBytes)
	}
	sort.Slice(r.ents, func(a, b int) bool {
		if r.ents[a].key != r.ents[b].key {
			return r.ents[a].key < r.ents[b].key
		}
		return r.ents[a].seq < r.ents[b].seq
	})
}

// mergeRuns merges up to sortMergeFanIn source runs from region side
// into one output run based at outBase in the other region, emitting
// the strided merge pattern: each output entry costs one SortMerge
// invocation, one load from the winning source run (reads stride
// across the fan-in's run buffers in key order), one data-dependent
// winner-change branch, and one sequential output store.
func mergeRuns(x *Exec, runs []*sortRun, side, outBase uint64) *sortRun {
	buf := x.Buf
	mrt := x.Rt.SortMerge
	winPC := mrt.Addr + uint64(mrt.CodeBytes) - 8
	cursors := make([]int, len(runs))
	out := &sortRun{base: outBase}
	last := -1
	for {
		win := -1
		for i, r := range runs {
			if cursors[i] >= len(r.ents) {
				continue
			}
			if win < 0 {
				win = i
				continue
			}
			a, b := r.ents[cursors[i]], runs[win].ents[cursors[win]]
			if a.key < b.key || (a.key == b.key && a.seq < b.seq) {
				win = i
			}
		}
		if win < 0 {
			return out
		}
		mrt.InvokeBuf(buf)
		buf.Load(runs[win].addr(side, uint64(cursors[win])), sortEntryBytes)
		buf.Branch(winPC, winPC+48, win != last)
		buf.Store(out.addr(1-side, uint64(len(out.ents))), sortEntryBytes)
		out.ents = append(out.ents, runs[win].ents[cursors[win]])
		last = win
		cursors[win]++
	}
}

// Sort consumes its input into sorted runs and streams the fully
// merged result to the parent. Per input row: one SortRun invocation,
// the owed value load (ValAddr contract), and a sequential run-buffer
// store. Final rows carry ValAddr pointing at their entry in the
// merged run — the consumer's load reads the sorted run, exactly as a
// sort-group engine's aggregation pass would.
type Sort struct {
	Input Operator
	// CarryVal marks whether input rows carry aggregate values; final
	// rows then push them back out with HasVal set.
	CarryVal bool
}

// Run implements Operator.
func (o *Sort) Run(x *Exec, push func(Row)) error {
	buf := x.Buf
	srt := x.Rt.SortRun

	// --- Run generation ----------------------------------------------
	var runs []*sortRun
	run := &sortRun{ents: make([]sortEntry, 0, sortRunCap)}
	var seq uint32
	if err := o.Input.Run(x, func(r Row) {
		srt.InvokeBuf(buf)
		ent := sortEntry{seq: seq, key: r.Key}
		if r.ValAddr != 0 {
			buf.Load(r.ValAddr, r.ValSize)
		}
		if r.HasVal {
			ent.val = r.Val
		}
		seq++
		buf.Store(run.addr(0, uint64(len(run.ents))), sortEntryBytes)
		run.ents = append(run.ents, ent)
		if len(run.ents) == sortRunCap {
			closeRun(x, run)
			runs = append(runs, run)
			run = &sortRun{ents: make([]sortEntry, 0, sortRunCap), base: uint64(seq)}
		}
	}); err != nil {
		return err
	}
	if len(run.ents) > 0 {
		closeRun(x, run)
		runs = append(runs, run)
	}

	// --- Merge passes ------------------------------------------------
	side := uint64(0)
	for len(runs) > 1 {
		var next []*sortRun
		var outBase uint64
		for g := 0; g < len(runs); g += sortMergeFanIn {
			end := g + sortMergeFanIn
			if end > len(runs) {
				end = len(runs)
			}
			merged := mergeRuns(x, runs[g:end], side, outBase)
			outBase += uint64(len(merged.ents))
			next = append(next, merged)
		}
		runs = next
		side = 1 - side
	}

	// --- Stream the sorted run ---------------------------------------
	if len(runs) == 1 {
		final := runs[0]
		for i, ent := range final.ents {
			push(Row{
				Key:     ent.key,
				Val:     ent.val,
				ValAddr: final.addr(side, uint64(i)),
				ValSize: sortEntryBytes,
				HasVal:  o.CarryVal,
			})
		}
	}
	return nil
}
