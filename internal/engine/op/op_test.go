package op

import (
	"math"
	"testing"

	"wheretime/internal/sql"
	"wheretime/internal/trace"
)

// The operator tests exercise the composable pieces without an engine
// or a catalog: a stub source pushes synthetic rows and the operators
// above it must aggregate correctly and emit deterministic streams.

// testRoutines places one minimal routine per Routines field.
func testRoutines() *Routines {
	l := trace.NewLayout()
	mk := func(name string) *trace.Routine {
		return l.Place(&trace.Routine{Name: name, CodeBytes: 256, ExecBytes: 64, Instrs: 16, Uops: 24})
	}
	return &Routines{
		PageNext: mk("page"), ScanNext: mk("scan"), QualEval: mk("qual"),
		AggAccum: mk("agg"), IdxDescend: mk("descend"), IdxLeafNext: mk("leaf"),
		RidFetch: mk("rid"), HashBuild: mk("build"), HashProbe: mk("probe"),
		JoinMatch: mk("match"), FieldIter: mk("field"), Partition: mk("part"),
		SortRun: mk("sortrun"), SortMerge: mk("sortmerge"),
	}
}

// rowSource pushes a fixed row slice.
type rowSource struct{ rows []Row }

func (s *rowSource) Run(_ *Exec, push func(Row)) error {
	for _, r := range s.rows {
		push(r)
	}
	return nil
}

func newExec(c *trace.Counting) *Exec {
	return &Exec{Buf: trace.NewBuffer(c, 0), Rt: testRoutines()}
}

func keyedRows(keys []int32) []Row {
	rows := make([]Row, len(keys))
	for i, k := range keys {
		rows[i] = Row{Key: k, Val: k * 10, HasVal: true}
	}
	return rows
}

func TestFilterBounds(t *testing.T) {
	var c trace.Counting
	x := newExec(&c)
	f := &Filter{Input: &rowSource{rows: keyedRows([]int32{1, 5, 9, 10, 3})}, Lo: 3, Hi: 10}
	var got []int32
	if err := f.Run(x, func(r Row) { got = append(got, r.Key) }); err != nil {
		t.Fatal(err)
	}
	x.Buf.Flush()
	want := []int32{5, 9, 3}
	if len(got) != len(want) {
		t.Fatalf("filter passed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("filter passed %v, want %v", got, want)
		}
	}
	// One qual invocation and one predicate branch per input row.
	if c.Branches < 5 {
		t.Errorf("filter emitted %d branches for 5 rows", c.Branches)
	}
}

func TestAggFunctions(t *testing.T) {
	rows := keyedRows([]int32{4, 1, 3}) // vals 40, 10, 30
	cases := []struct {
		fn   sql.AggFunc
		want float64
	}{
		{sql.AggSum, 80}, {sql.AggAvg, 80.0 / 3}, {sql.AggMin, 10},
		{sql.AggMax, 40}, {sql.AggCount, 3},
	}
	for _, tc := range cases {
		var c trace.Counting
		a := &Agg{Input: &rowSource{rows: rows}, Fn: tc.fn, InvokeAccum: true}
		if err := a.Run(newExec(&c), nil); err != nil {
			t.Fatal(err)
		}
		v, n := a.Result()
		if n != 3 || math.Abs(v-tc.want) > 1e-12 {
			t.Errorf("fn %v: got (%v, %d), want (%v, 3)", tc.fn, v, n, tc.want)
		}
	}
	// Empty input: avg/min/max are NaN, count of rows is zero.
	for _, fn := range []sql.AggFunc{sql.AggAvg, sql.AggMin, sql.AggMax} {
		var c trace.Counting
		a := &Agg{Input: &rowSource{}, Fn: fn}
		if err := a.Run(newExec(&c), nil); err != nil {
			t.Fatal(err)
		}
		if v, n := a.Result(); n != 0 || !math.IsNaN(v) {
			t.Errorf("empty fn %v: got (%v, %d), want (NaN, 0)", fn, v, n)
		}
	}
}

func TestSortPreservesAggregate(t *testing.T) {
	// Enough rows to close several runs and force a merge pass.
	n := sortRunCap*2 + 17
	keys := make([]int32, n)
	var wantSum int64
	for i := range keys {
		keys[i] = int32((i * 2654435761) % 10007)
		wantSum += int64(keys[i] * 10)
	}
	var c trace.Counting
	x := newExec(&c)
	s := &Sort{Input: &rowSource{rows: keyedRows(keys)}, CarryVal: true}
	var sum int64
	last := int32(math.MinInt32)
	rows := 0
	if err := s.Run(x, func(r Row) {
		if r.Key < last {
			t.Fatalf("output not sorted: %d after %d", r.Key, last)
		}
		last = r.Key
		sum += int64(r.Val)
		rows++
	}); err != nil {
		t.Fatal(err)
	}
	x.Buf.Flush()
	if rows != n || sum != wantSum {
		t.Fatalf("sorted stream carried (%d rows, sum %d), want (%d, %d)", rows, sum, n, wantSum)
	}
	if c.Stores == 0 || c.Loads == 0 {
		t.Error("sort emitted no run-buffer traffic")
	}
}

func TestHashAggGroups(t *testing.T) {
	var c trace.Counting
	h := &HashAgg{Input: &rowSource{rows: keyedRows([]int32{7, 7, 2, 9, 2, 7})},
		Fn: sql.AggCount, GroupHint: 8}
	if err := h.Run(newExec(&c), nil); err != nil {
		t.Fatal(err)
	}
	if v, n := h.Result(); n != 6 || v != 6 {
		t.Errorf("hash agg counted (%v, %d), want (6, 6)", v, n)
	}
	if h.Groups() != 3 {
		t.Errorf("hash agg saw %d groups, want 3", h.Groups())
	}
}

// TestOperatorStreamsDeterministic pins the emission contract at the
// operator level: the same tree over the same rows, run from freshly
// placed routines, emits identical event tallies.
func TestOperatorStreamsDeterministic(t *testing.T) {
	run := func() trace.Counting {
		var c trace.Counting
		x := newExec(&c)
		a := &Agg{
			Input: &Sort{
				Input:    &Filter{Input: &rowSource{rows: keyedRows([]int32{9, 2, 5, 8, 2, 7, 1})}, Lo: 2, Hi: 9},
				CarryVal: true,
			},
			Fn: sql.AggAvg, InvokeAccum: true,
		}
		if err := a.Run(x, nil); err != nil {
			t.Fatal(err)
		}
		x.Buf.Flush()
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two runs emitted different streams:\n first %+v\nsecond %+v", a, b)
	}
	if a.Loads == 0 || a.Branches == 0 {
		t.Errorf("stream looks empty: %+v", a)
	}
}

func TestHelpers(t *testing.T) {
	for _, tc := range []struct{ in, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	} {
		if got := nextPow2(tc.in); got != tc.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {4096, 12},
	} {
		if got := log2int(tc.n); got != tc.want {
			t.Errorf("log2int(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	seen := map[uint32]bool{}
	for v := int32(0); v < 1000; v++ {
		seen[hash32(v)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("hash32 collided on small ints: %d distinct of 1000", len(seen))
	}
}
