package engine

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
)

// pinnedStreamDigests is the committed per-scenario stream digest
// file the streampin suite enforces: any change to what the engine
// emits for a given cell must update it (op-smoke fails otherwise).
// That makes its content a cheap, honest version token for "the
// mapping from cell spec to event stream", which the on-disk trace
// store folds into every key so a store populated by one engine
// version is never consulted by another.
//
//go:embed testdata/stream_digests.txt
var pinnedStreamDigests []byte

// StreamSchema returns the hex digest of the pinned stream-digest
// file: the emission-schema version token for persistent caches.
func StreamSchema() string {
	sum := sha256.Sum256(pinnedStreamDigests)
	return hex.EncodeToString(sum[:])
}
