package engine

import (
	"fmt"

	"wheretime/internal/engine/op"
	"wheretime/internal/sql"
)

// The plan-tree compiler: sql.Plan.Tree() fixes the physical shape
// (which operators, composed how), and compile lowers each node into
// its streaming operator with the emission details the shape alone
// does not carry — which columns each scan touches, which side of a
// join the aggregate reads, whether the terminal aggregate charges a
// distinct accumulation invocation. Adding an access-path combination
// is now a new tree shape plus (at most) a lowering case — never a
// new hand-fused engine routine.

// compile lowers a physical plan tree into the operator tree,
// returning the terminal sink.
func (e *Engine) compile(n *sql.Node, p *sql.Plan) (op.Sink, error) {
	switch n.Kind {
	case sql.NodeAgg:
		child, err := e.lower(n.Left, p)
		if err != nil {
			return nil, err
		}
		// Scans and sorts feed a distinct per-row accumulation call;
		// join matches charge accumulation inside the match routine.
		invoke := n.Left.Kind != sql.NodeHashJoin && n.Left.Kind != sql.NodeGraceJoin
		return &op.Agg{Input: child, Fn: p.Agg, InvokeAccum: invoke}, nil
	case sql.NodeHashAgg:
		child, err := e.lower(n.Left, p)
		if err != nil {
			return nil, err
		}
		return &op.HashAgg{Input: child, Fn: p.Agg,
			GroupHint: p.Outer.Table.Heap.NumRecords()}, nil
	default:
		return nil, fmt.Errorf("engine: plan tree root %s is not an aggregate", n.Kind)
	}
}

// lower compiles one interior node. Scan configuration is
// consumer-driven: the same NodeHeapScan lowers differently under an
// aggregate (SRS: filter column touched, aggregate column carried)
// than as a join input (join column + filter column touched, join key
// carried) — the lowering context, not the node, owns those details.
func (e *Engine) lower(n *sql.Node, p *sql.Plan) (op.Operator, error) {
	switch n.Kind {
	case sql.NodeHeapScan:
		// Scan feeding an aggregate or sort directly.
		acc := n.Acc
		readsAgg := !p.CountAll && p.AggTable == acc.Table
		hs := &op.HeapScan{Acc: acc, Cols: []int{acc.FilterCol}, KeyCol: -1, ValCol: -1, Count: true}
		if acc.HasFilter {
			hs.KeyCol = acc.FilterCol
		}
		if readsAgg {
			hs.ValCol = p.AggCol
		}
		return hs, nil

	case sql.NodeIndexScan:
		acc := n.Acc
		readsAgg := !p.CountAll && p.AggTable == acc.Table
		is := &op.IndexScan{Acc: acc, Cols: []int{acc.FilterCol, p.AggCol}, ValCol: -1, Count: true}
		if readsAgg {
			is.ValCol = p.AggCol
		}
		return is, nil

	case sql.NodeIndexOnlyScan:
		return &op.IndexOnlyScan{Acc: n.Acc, CountOnly: p.CountAll, Count: true}, nil

	case sql.NodeFilter:
		child, err := e.lower(n.Left, p)
		if err != nil {
			return nil, err
		}
		return &op.Filter{Input: child, Lo: n.Lo, Hi: n.Hi}, nil

	case sql.NodeSort:
		child, err := e.lower(n.Left, p)
		if err != nil {
			return nil, err
		}
		return &op.Sort{Input: child, CarryVal: !p.CountAll}, nil

	case sql.NodeHashJoin:
		return e.lowerHashJoin(n, p)

	case sql.NodeGraceJoin:
		return e.lowerGraceJoin(n, p)

	default:
		return nil, fmt.Errorf("engine: cannot lower plan node %s", n.Kind)
	}
}

// aggSide resolves which join input carries the aggregate column.
func aggSide(p *sql.Plan, probe, build *sql.TableAccess) op.AggSide {
	switch {
	case !p.CountAll && p.AggTable == probe.Table:
		return op.AggProbe
	case !p.CountAll && p.AggTable == build.Table:
		return op.AggBuild
	default:
		return op.AggNone
	}
}

func (e *Engine) lowerHashJoin(n *sql.Node, p *sql.Plan) (op.Operator, error) {
	if n.Right.Kind != sql.NodeHeapScan {
		return nil, fmt.Errorf("engine: hash-join build input must be a heap scan, got %s", n.Right.Kind)
	}
	buildAcc := n.Right.Acc
	build := &op.HeapScan{Acc: buildAcc, Cols: []int{n.RightCol, buildAcc.FilterCol},
		KeyCol: n.RightCol, ValCol: -1, Count: false}

	var probe op.Operator
	var probeAcc *sql.TableAccess
	switch n.Left.Kind {
	case sql.NodeHeapScan:
		probeAcc = n.Left.Acc
		probe = &op.HeapScan{Acc: probeAcc, Cols: []int{n.LeftCol, probeAcc.FilterCol},
			KeyCol: n.LeftCol, ValCol: -1, Count: true}
	case sql.NodeIndexScan:
		probeAcc = n.Left.Acc
		if n.LeftCol != probeAcc.FilterCol {
			return nil, fmt.Errorf("engine: index-probe join needs the probe index on the join column (index on %d, join on %d)",
				probeAcc.FilterCol, n.LeftCol)
		}
		probe = &op.IndexScan{Acc: probeAcc, Cols: []int{probeAcc.FilterCol, p.AggCol},
			ValCol: -1, Count: true}
	default:
		return nil, fmt.Errorf("engine: hash-join probe input must be a scan, got %s", n.Left.Kind)
	}

	return &op.HashJoin{
		Build:     build,
		Probe:     probe,
		BuildCol:  n.RightCol,
		BuildRows: buildAcc.Table.Heap.NumRecords(),
		Side:      aggSide(p, probeAcc, buildAcc),
		AggCol:    p.AggCol,
	}, nil
}

func (e *Engine) lowerGraceJoin(n *sql.Node, p *sql.Plan) (op.Operator, error) {
	if n.Left.Kind != sql.NodeHeapScan || n.Right.Kind != sql.NodeHeapScan {
		return nil, fmt.Errorf("engine: grace-join inputs must be heap scans, got %s/%s",
			n.Left.Kind, n.Right.Kind)
	}
	probeAcc, buildAcc := n.Left.Acc, n.Right.Acc
	side := aggSide(p, probeAcc, buildAcc)

	// A carried aggregate column travels in the partition entries, so
	// the carrying side's scan touches and reads it (without owing a
	// load — the join phase's partition-buffer reads move the bytes).
	buildCols := []int{n.RightCol, buildAcc.FilterCol}
	buildVal := -1
	if side == op.AggBuild {
		buildCols = append(buildCols, p.AggCol)
		buildVal = p.AggCol
	}
	probeCols := []int{n.LeftCol, probeAcc.FilterCol}
	probeVal := -1
	if side == op.AggProbe {
		probeCols = append(probeCols, p.AggCol)
		probeVal = p.AggCol
	}

	return &op.GraceJoin{
		Build: &op.HeapScan{Acc: buildAcc, Cols: buildCols, KeyCol: n.RightCol,
			ValCol: buildVal, Count: false},
		Probe: &op.HeapScan{Acc: probeAcc, Cols: probeCols, KeyCol: n.LeftCol,
			ValCol: probeVal, Count: true},
		BuildRows: buildAcc.Table.Heap.NumRecords(),
		ProbeRows: probeAcc.Table.Heap.NumRecords(),
		Side:      side,
	}, nil
}
