package engine

import (
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// Record materialisation itself — the data accesses of copying a
// record or its columns into the tuple buffer — is emitted by
// storage.Page.TouchRecord, which owns the layout-dependent address
// generation; the engine emits only the code-path costs here.

// baselineFields is the field count of the paper's default 100-byte
// record; rkFieldIter's per-invocation cost is calibrated to it.
const baselineFields = 25

// deformat emits the tuple-deformatting work of materialising a
// record: row stores walk every attribute descriptor of the record,
// so the cost scales with record width; PAX engines deformat only the
// columns the query touches.
func (e *Engine) deformat(buf *trace.Buffer, pg *storage.Page, cols int) {
	n := pg.Fields()
	if pg.Layout() == storage.PAX {
		n = cols
	}
	e.rt[rkFieldIter].InvokeFracBuf(buf, uint32(n), baselineFields)
}
