package engine

import (
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// touchRecord emits the data accesses of materialising a record into
// the engine's tuple buffer.
//
// Row-store pages (NSM) behave like real slotted pages: the engine
// reads the record's slot entry from the directory at the page's end,
// then copies the whole record — so wide records touch several cache
// lines even when the query needs two fields, the effect behind the
// record-size sensitivity of Section 5.2.1.
//
// PAX pages touch only the requested columns' minipage positions: the
// cache-conscious placement that keeps System B's L2 data miss rate
// near 2% on sequential scans.
func touchRecord(proc trace.Processor, pg *storage.Page, slot uint16, cols ...int) {
	if pg.Layout() == storage.NSM {
		// Slot directory entry (2 bytes per slot, growing from the
		// page's end).
		slotAddr := pg.HeaderAddr() + storage.PageSize - 2*uint64(slot+1)
		proc.Load(slotAddr, 2)
		proc.Load(pg.RecordAddr(slot), uint32(pg.RecordSize()))
		return
	}
	for _, c := range cols {
		proc.Load(pg.FieldAddr(slot, c), storage.FieldSize)
	}
}

// baselineFields is the field count of the paper's default 100-byte
// record; rkFieldIter's per-invocation cost is calibrated to it.
const baselineFields = 25

// deformat emits the tuple-deformatting work of materialising a
// record: row stores walk every attribute descriptor of the record,
// so the cost scales with record width; PAX engines deformat only the
// columns the query touches.
func (e *Engine) deformat(proc trace.Processor, pg *storage.Page, cols int) {
	n := pg.Fields()
	if pg.Layout() == storage.PAX {
		n = cols
	}
	e.rt[rkFieldIter].InvokeFrac(proc, uint32(n), baselineFields)
}
