package engine

import (
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// Record materialisation itself — the data accesses of copying a
// record or its columns into the tuple buffer — is emitted by
// storage.Page.TouchRecord, which owns the layout-dependent address
// generation; the engine emits only the code-path costs here.

// baselineFields is the field count of the paper's default 100-byte
// record; rkFieldIter's per-invocation cost is calibrated to it.
const baselineFields = 25

// deformat emits the tuple-deformatting work of materialising a
// record: row stores walk every attribute descriptor of the record,
// so the cost scales with record width; PAX engines deformat only the
// columns the query touches.
func (e *Engine) deformat(buf *trace.Buffer, pg *storage.Page, cols int) {
	n := pg.Fields()
	if pg.Layout() == storage.PAX {
		n = cols
	}
	e.rt[rkFieldIter].InvokeFracBuf(buf, uint32(n), baselineFields)
}

// scanEmit walks a table's heap emitting the shared scan protocol
// every scanning operator rides: per page, the buffer-pool fix
// (rkPageNext) and header load; per record, the slot advance
// (rkScanNext), the record materialisation (TouchRecord over cols, in
// the caller's column order — order matters for PAX emission),
// deformatting, and — when the access carries a filter — the
// predicate evaluation (rkQualEval) with its data-dependent retired
// branch. fn then receives the record with its qualification outcome
// and emits the operator-specific work. Every scan operator (seq
// scan, both hash-join inputs, both Grace partition phases, sort-agg
// run generation) funnels through here, so the scan emission protocol
// has exactly one definition.
func (e *Engine) scanEmit(buf *trace.Buffer, acc *sql.TableAccess, cols []int,
	fn func(pg *storage.Page, slot uint16, matched bool)) {

	qual := e.rt[rkQualEval]
	qualPC := qual.Addr + uint64(qual.CodeBytes) - 8
	pool := e.cat.Pool()
	for _, pid := range acc.Table.Heap.PageIDs() {
		pg := pool.Get(pid)
		e.rt[rkPageNext].InvokeBuf(buf)
		buf.Load(pg.HeaderAddr(), 16)
		n := pg.NumRecords()
		for s := 0; s < n; s++ {
			slot := uint16(s)
			e.rt[rkScanNext].InvokeBuf(buf)
			pg.TouchRecord(buf, slot, cols...)
			e.deformat(buf, pg, 2)
			matched := true
			if acc.HasFilter {
				qual.InvokeBuf(buf)
				v := pg.Field(slot, acc.FilterCol)
				matched = v >= acc.Lo && v < acc.Hi
				// Taken means "record rejected, skip the per-record work".
				buf.Branch(qualPC, qualPC+96, !matched)
			}
			fn(pg, slot, matched)
		}
	}
}
