package engine

import (
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// hashEntry is one build-side tuple in the join hash table.
type hashEntry struct {
	key int32
	rid storage.RID
	// idx is the entry's allocation index: its simulated address is
	// entriesBase + idx*hashEntryBytes.
	idx uint32
}

// Simulated hash-table geometry: a bucket-head array followed by an
// entry arena, the classic chained table. Entry size covers key, RID,
// chain pointer and padding.
const (
	hashBucketBytes = 8
	hashEntryBytes  = 24
)

// runHashJoin executes query (2): a hash equijoin with the second FROM
// table as the build side (the paper's S, 30x smaller than R) and the
// first as the probe side. One RecordProcessed fires per probe-side
// record — the paper's SJ per-record denominator is |R|.
func (e *Engine) runHashJoin(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	build, probe := p.Inner, p.Outer
	buildCol, probeCol := p.InnerCol, p.OuterCol

	agg := newAggState(p.Agg)
	readsOuter := !p.CountAll && p.AggTable == probe.Table
	readsInner := !p.CountAll && p.AggTable == build.Table
	aggCol := p.AggCol

	pool := e.cat.Pool()

	// --- Build phase -------------------------------------------------
	nBuild := build.Table.Heap.NumRecords()
	nBuckets := nextPow2(nBuild + 1)
	bucketMask := nBuckets - 1
	entriesBase := workspaceBase + nBuckets*hashBucketBytes

	table := make(map[int32][]hashEntry, nBuild)
	var entryIdx uint32

	e.scanEmit(buf, build, []int{buildCol, build.FilterCol}, func(pg *storage.Page, slot uint16, matched bool) {
		if !matched {
			return
		}
		key := pg.Field(slot, buildCol)
		e.rt[rkHashBuild].InvokeBuf(buf)
		// Bucket-head update and entry write.
		b := uint64(hash32(key)) & bucketMask
		buf.Store(workspaceBase+b*hashBucketBytes, hashBucketBytes)
		buf.Store(entriesBase+uint64(entryIdx)*hashEntryBytes, hashEntryBytes)
		table[key] = append(table[key], hashEntry{key: key, rid: storage.RID{Page: pg.ID(), Slot: slot}, idx: entryIdx})
		entryIdx++
	})

	// --- Probe phase -------------------------------------------------
	probeRt := e.rt[rkHashProbe]
	matchPC := probeRt.Addr + uint64(probeRt.CodeBytes) - 8
	e.scanEmit(buf, probe, []int{probeCol, probe.FilterCol}, func(pg *storage.Page, slot uint16, matched bool) {
		if !matched {
			buf.RecordProcessed()
			return
		}
		key := pg.Field(slot, probeCol)
		probeRt.InvokeBuf(buf)
		b := uint64(hash32(key)) & bucketMask
		buf.Load(workspaceBase+b*hashBucketBytes, hashBucketBytes)
		chain := table[key]
		// Walk the chain entries; the key-compare branch outcome
		// depends on data, so it retires as an architectural
		// branch per entry.
		for _, ent := range chain {
			buf.Load(entriesBase+uint64(ent.idx)*hashEntryBytes, hashEntryBytes)
			buf.Branch(matchPC, matchPC+64, true)
			e.rt[rkJoinMatch].InvokeBuf(buf)
			// Verify against the build-side record (random access
			// into the build heap) and aggregate.
			bpg := pool.Get(ent.rid.Page)
			bpg.TouchRecord(buf, ent.rid.Slot, buildCol)
			switch {
			case readsOuter:
				buf.Load(pg.FieldAddr(slot, aggCol), storage.FieldSize)
				agg.add(pg.Field(slot, aggCol))
			case readsInner:
				buf.Load(bpg.FieldAddr(ent.rid.Slot, aggCol), storage.FieldSize)
				agg.add(bpg.Field(ent.rid.Slot, aggCol))
			default:
				agg.addCount()
			}
		}
		if len(chain) == 0 {
			buf.Branch(matchPC, matchPC+64, false)
		}
		buf.RecordProcessed()
	})
	return agg.result(), nil
}

// hash32 is a Fibonacci-style integer hash.
func hash32(v int32) uint32 {
	x := uint32(v)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}
