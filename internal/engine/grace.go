package engine

import (
	"fmt"

	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// The Grace/hybrid hash join (plan hint sql.HintGraceJoin) executes an
// equijoin in two phases with partition-sized working sets, the
// structure analysed in the robust dynamic hybrid hash join
// literature:
//
//   - Partition: both inputs are scanned once and hash-partitioned on
//     the join key into per-partition output buffers — sequential
//     writes within a partition, the partition chosen by (different
//     bits of) the same hash the in-partition table later uses.
//   - Join: partition pairs are processed one at a time. The build
//     partition is read sequentially into an in-memory chained hash
//     table whose bucket array is reused across partitions (the hot,
//     cache-resident working set hybrid joins are built for), then the
//     probe partition streams through it with one random bucket access
//     plus a chain walk per probe record — the hash-bucket
//     random-access pattern, confined to a partition-sized region.
//
// Results are identical to the single-table in-memory join
// (runHashJoin): partitioning only routes tuples, it never drops or
// duplicates a match.

// Simulated partition geometry.
const (
	// gracePartTargetBytes sizes build partitions: enough partitions
	// are chosen that a build partition's entries fit this working set.
	gracePartTargetBytes = 64 * 1024
	// gracePartEntryBytes is one partitioned tuple: join key, RID,
	// carried aggregate column, padding.
	gracePartEntryBytes = 16
	// gracePartStride separates partition output buffers in the
	// simulated address space (each partition writes its own region).
	gracePartStride = 1 << 22
	// graceMaxParts bounds the partition fan-out.
	graceMaxParts = 64
)

// graceEntry is one partitioned tuple held for the join phase. seq is
// the entry's position in its partition buffer; its simulated address
// derives from it.
type graceEntry struct {
	key int32
	val int32
	rid storage.RID
	seq uint32
}

// gracePartitions returns the partition count for a build side of n
// records: the smallest power of two giving partitions under the
// working-set target, at least 2 (so the partition pattern is always
// exercised) and at most graceMaxParts.
func gracePartitions(n uint64) uint64 {
	parts := uint64(2)
	for parts < graceMaxParts && n*gracePartEntryBytes/parts > gracePartTargetBytes {
		parts <<= 1
	}
	return parts
}

// gracePart selects an entry's partition: high hash bits, disjoint
// from the low bits the in-partition bucket index uses.
func gracePart(key int32, partMask uint64) uint64 {
	return uint64(hash32(key)>>16) & partMask
}

// partEntryAddr returns the simulated address of entry seq of
// partition p in the region at base. Offsets wrap at the partition
// stride: a partition that outgrows its output buffer recycles it (the
// spill-and-reuse behaviour of a real partitioner), so overflow can
// never alias a neighbouring partition's region. At the harness's
// scales every partition fits its stride and the wrap never engages.
func partEntryAddr(base, p uint64, seq uint32) uint64 {
	return base + p*gracePartStride + uint64(seq)*gracePartEntryBytes%gracePartStride
}

// partitionInput scans one side of the join and hash-partitions it:
// the shared scan emission (page fix, record touch, deformat, optional
// filter), then one rkPartition invocation and a sequential
// partition-buffer write per surviving record. countRecords fires
// RecordProcessed per scanned record — set on the probe side, whose
// cardinality is the paper-style per-record denominator.
func (e *Engine) partitionInput(buf *trace.Buffer, acc *sql.TableAccess, keyCol int,
	aggCol int, carryAgg bool, base uint64, partMask uint64, countRecords bool) [][]graceEntry {

	parts := make([][]graceEntry, partMask+1)
	cols := []int{keyCol, acc.FilterCol}
	if carryAgg {
		cols = append(cols, aggCol)
	}
	e.scanEmit(buf, acc, cols, func(pg *storage.Page, slot uint16, matched bool) {
		if !matched {
			if countRecords {
				buf.RecordProcessed()
			}
			return
		}
		key := pg.Field(slot, keyCol)
		var val int32
		if carryAgg {
			val = pg.Field(slot, aggCol)
		}
		p := gracePart(key, partMask)
		e.rt[rkPartition].InvokeBuf(buf)
		seq := uint32(len(parts[p]))
		buf.Store(partEntryAddr(base, p, seq), gracePartEntryBytes)
		parts[p] = append(parts[p], graceEntry{
			key: key, val: val, rid: storage.RID{Page: pg.ID(), Slot: slot}, seq: seq})
		if countRecords {
			buf.RecordProcessed()
		}
	})
	return parts
}

// runGraceJoin executes an equijoin plan as a Grace/hybrid hash join.
// The aggregate result is identical to runHashJoin's; only the access
// structure differs.
func (e *Engine) runGraceJoin(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	if !p.IsJoin() {
		return Result{}, fmt.Errorf("engine: %s hint on a single-table plan", p.Hint)
	}
	build, probe := p.Inner, p.Outer
	buildCol, probeCol := p.InnerCol, p.OuterCol

	agg := newAggState(p.Agg)
	readsOuter := !p.CountAll && p.AggTable == probe.Table
	readsInner := !p.CountAll && p.AggTable == build.Table
	aggCol := p.AggCol

	nBuild := build.Table.Heap.NumRecords()
	nProbe := probe.Table.Heap.NumRecords()
	parts := gracePartitions(nBuild)
	// Grow the fan-out (up to the cap) until both sides' partitions are
	// expected to fit their stride regions; past the cap, partEntryAddr
	// wraps within the partition rather than aliasing a neighbour.
	for parts < graceMaxParts && (nBuild*gracePartEntryBytes/parts > gracePartStride ||
		nProbe*gracePartEntryBytes/parts > gracePartStride) {
		parts <<= 1
	}
	partMask := parts - 1

	// Region layout in the per-query workspace: build partitions, then
	// probe partitions, then the reusable in-memory table region.
	buildBase := workspaceBase
	probeBase := buildBase + (partMask+1)*gracePartStride
	tableBase := probeBase + (partMask+1)*gracePartStride

	// --- Partition phase --------------------------------------------
	buildParts := e.partitionInput(buf, build, buildCol, aggCol, readsInner,
		buildBase, partMask, false)
	probeParts := e.partitionInput(buf, probe, probeCol, aggCol, readsOuter,
		probeBase, partMask, true)

	// --- Join phase: one partition pair at a time --------------------
	probeRt := e.rt[rkHashProbe]
	matchPC := probeRt.Addr + uint64(probeRt.CodeBytes) - 8

	for pi := uint64(0); pi <= partMask; pi++ {
		bp, pp := buildParts[pi], probeParts[pi]
		if len(pp) == 0 && len(bp) == 0 {
			continue
		}
		// Build the in-memory table over this partition. The bucket
		// array and entry arena live at tableBase for every partition:
		// the reused, cache-resident working set of a hybrid join.
		nBuckets := nextPow2(uint64(len(bp)) + 1)
		bucketMask := nBuckets - 1
		entriesBase := tableBase + nBuckets*hashBucketBytes
		table := make(map[int32][]graceEntry, len(bp))
		for i, ent := range bp {
			// Sequential read of the build partition buffer...
			buf.Load(partEntryAddr(buildBase, pi, ent.seq), gracePartEntryBytes)
			e.rt[rkHashBuild].InvokeBuf(buf)
			// ...random bucket-head update and entry write.
			b := uint64(hash32(ent.key)) & bucketMask
			buf.Store(tableBase+b*hashBucketBytes, hashBucketBytes)
			buf.Store(entriesBase+uint64(i)*hashEntryBytes, hashEntryBytes)
			ent.seq = uint32(i) // entry index in the in-memory arena
			table[ent.key] = append(table[ent.key], ent)
		}
		// Stream the probe partition through it.
		for _, ent := range pp {
			buf.Load(partEntryAddr(probeBase, pi, ent.seq), gracePartEntryBytes)
			probeRt.InvokeBuf(buf)
			b := uint64(hash32(ent.key)) & bucketMask
			buf.Load(tableBase+b*hashBucketBytes, hashBucketBytes)
			chain := table[ent.key]
			for _, bent := range chain {
				buf.Load(entriesBase+uint64(bent.seq)*hashEntryBytes, hashEntryBytes)
				buf.Branch(matchPC, matchPC+64, true)
				e.rt[rkJoinMatch].InvokeBuf(buf)
				switch {
				case readsOuter:
					// The aggregate column travelled with the probe
					// tuple; read it back from the partition buffer.
					buf.Load(partEntryAddr(probeBase, pi, ent.seq)+8, storage.FieldSize)
					agg.add(ent.val)
				case readsInner:
					buf.Load(entriesBase+uint64(bent.seq)*hashEntryBytes+8, storage.FieldSize)
					agg.add(bent.val)
				default:
					agg.addCount()
				}
			}
			if len(chain) == 0 {
				buf.Branch(matchPC, matchPC+64, false)
			}
		}
	}
	return agg.result(), nil
}
