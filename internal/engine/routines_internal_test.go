package engine

import "testing"

func TestRoutineKindStrings(t *testing.T) {
	for k := RoutineKind(0); k < numRoutineKinds; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if rkScanNext.String() != "scan_next" {
		t.Errorf("scan_next name = %q", rkScanNext.String())
	}
	if RoutineKind(99).String() != "RoutineKind(99)" {
		t.Errorf("unknown kind name = %q", RoutineKind(99).String())
	}
}

func TestBranchMixSizing(t *testing.T) {
	mix := branchMixFor(1500, 0.2)
	exec := mix.Executions(4)
	// Branch executions should be ~20% of instructions.
	frac := float64(exec) / 1500
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("branch executions fraction = %v, want ~0.20", frac)
	}
	irrFrac := float64(mix.Irregular) / float64(exec)
	if irrFrac < 0.15 || irrFrac > 0.25 {
		t.Errorf("irregular fraction = %v, want ~0.20", irrFrac)
	}
	tiny := branchMixFor(10, 0)
	if tiny.Total() == 0 {
		t.Error("tiny routine should still have a branch site")
	}
}

func TestBuildRoutinesPlacesEverything(t *testing.T) {
	for _, s := range Systems() {
		p := DefaultProfile(s)
		layout, rts := buildRoutines(p)
		if layout.CodeFootprint() == 0 {
			t.Fatalf("system %s: empty layout", s)
		}
		for k := RoutineKind(0); k < numRoutineKinds; k++ {
			r := rts[k]
			if r == nil || r.Addr == 0 {
				t.Fatalf("system %s: routine %s not placed", s, k)
			}
			if r.Uops < r.Instrs {
				t.Errorf("system %s: routine %s uops %d < instrs %d", s, k, r.Uops, r.Instrs)
			}
		}
		// Startup code is CodeScale-invariant.
		if rts[rkQueryStart].Instrs != routineBases[rkQueryStart].instrs {
			t.Errorf("system %s: query_start scaled: %d", s, rts[rkQueryStart].Instrs)
		}
	}
}
