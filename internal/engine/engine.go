package engine

import (
	"fmt"
	"math"

	"wheretime/internal/catalog"
	"wheretime/internal/sql"
	"wheretime/internal/trace"
)

// workspaceBase is where per-query scratch structures (hash tables,
// sort runs) live in the simulated address space.
const workspaceBase uint64 = 0x6000_0000

// Engine executes plans for one system variant over one catalog,
// narrating its hardware behaviour to a trace.Processor.
//
// An Engine is single-threaded: its routines carry dynamic state
// (invocation counters, branch-pattern phase, PRNGs) that Run mutates
// and ResetState rewinds. Concurrent experiments each build their own
// Engine over their own catalog; the only package-level tables
// (routineBases, profiles) are read-only.
type Engine struct {
	prof   Profile
	cat    *catalog.Catalog
	layout *trace.Layout
	rt     [numRoutineKinds]*trace.Routine

	// buf is the engine's reusable event buffer: query and transaction
	// runs fill it with direct method calls and the processor drains it
	// in batches, the hot-path shape the batched trace pipeline exists
	// for. It is empty between runs (Run and Commit flush it).
	buf *trace.Buffer
	// openTxns counts transactions currently holding buf. While one is
	// open the buffer is never re-bound — that would silently redirect
	// the rest of the transaction's events — so emitters that need a
	// different (or unprovably-same) processor get their own buffer
	// until the transaction commits or aborts.
	openTxns int

	// execs counts plan executions (Run calls), the observable the
	// gang-drain tests use to prove a multi-config unit executed the
	// workload once for the whole gang rather than once per config.
	execs uint64
}

// New builds an engine for the given system over the catalog.
func New(s System, cat *catalog.Catalog) *Engine {
	return NewWithProfile(DefaultProfile(s), cat)
}

// NewWithProfile builds an engine with an explicit profile (used by
// the ablation benchmarks to vary one axis at a time).
func NewWithProfile(p Profile, cat *catalog.Catalog) *Engine {
	e := &Engine{prof: p, cat: cat}
	e.layout, e.rt = buildRoutines(p)
	return e
}

// Profile returns the engine's build profile.
func (e *Engine) Profile() Profile { return e.prof }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// CodeFootprint returns the engine text-segment size in bytes.
func (e *Engine) CodeFootprint() uint64 { return e.layout.CodeFootprint() }

// ResetState clears all routine dynamic state (used between measured
// runs when determinism matters).
func (e *Engine) ResetState() { e.layout.ResetAll() }

// Executions returns how many plans this engine has run.
func (e *Engine) Executions() uint64 { return e.execs }

// PlanOptions returns the planner options this system uses.
func (e *Engine) PlanOptions() sql.PlanOptions {
	return sql.PlanOptions{UseIndex: e.prof.UseIndex}
}

// Prepare parses and plans a query with this system's planner
// behaviour.
func (e *Engine) Prepare(query string) (*sql.Plan, error) {
	return sql.Prepare(e.cat, query, e.PlanOptions())
}

// Result is a query result: the aggregate value and the rows that
// contributed to it.
type Result struct {
	// Value is the aggregate result (NaN for avg/min/max over no rows).
	Value float64
	// Rows is the number of qualifying rows (join matches for joins).
	Rows uint64
}

// aggState accumulates one aggregate.
type aggState struct {
	fn    sql.AggFunc
	count uint64
	sum   int64
	min   int32
	max   int32
}

func newAggState(fn sql.AggFunc) *aggState {
	return &aggState{fn: fn, min: math.MaxInt32, max: math.MinInt32}
}

func (a *aggState) add(v int32) {
	a.count++
	a.sum += int64(v)
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

func (a *aggState) addCount() { a.count++ }

func (a *aggState) result() Result {
	r := Result{Rows: a.count}
	switch a.fn {
	case sql.AggCount:
		r.Value = float64(a.count)
	case sql.AggSum:
		r.Value = float64(a.sum)
	case sql.AggAvg:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.sum) / float64(a.count)
		}
	case sql.AggMin:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.min)
		}
	case sql.AggMax:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.max)
		}
	}
	return r
}

// emitter returns the event buffer a run should fill: the caller's
// own buffer when proc already is one, otherwise the engine's
// reusable buffer re-bound to proc. The boolean reports whether the
// engine owns the buffer and must flush it when the run completes.
func (e *Engine) emitter(proc trace.Processor) (*trace.Buffer, bool) {
	if b, ok := proc.(*trace.Buffer); ok {
		return b, false
	}
	if e.buf == nil {
		e.buf = trace.NewBuffer(proc, 0)
		return e.buf, true
	}
	if !e.buf.BoundTo(proc) {
		if e.openTxns > 0 {
			// The reusable buffer belongs to an open transaction (or to
			// a sink — e.g. a Tee — we cannot prove is the same one).
			// Drain what it holds so program order is preserved, and
			// give this emitter a private buffer; the transaction keeps
			// the engine buffer until Commit or Abort.
			e.buf.Flush()
			return trace.NewBuffer(proc, 0), true
		}
		e.buf.Bind(proc)
	}
	return e.buf, true
}

// Run executes a plan, emitting the event stream into proc.
//
// The engine fills its event buffer with direct calls and proc drains
// it in batches — in one trace.BatchProcessor call when proc supports
// it, else replayed one event at a time (the reference path; wrap a
// batch-capable processor in trace.Unbatched to force it). Both paths
// see the identical event sequence, so results never depend on which
// one ran.
func (e *Engine) Run(p *sql.Plan, proc trace.Processor) (Result, error) {
	if p == nil {
		return Result{}, fmt.Errorf("engine: nil plan")
	}
	e.execs++
	buf, owned := e.emitter(proc)
	res, err := e.dispatch(p, buf)
	if owned {
		buf.Flush()
	}
	return res, err
}

// dispatch routes a plan to its access path, emitting into buf. A
// plan hint pins the operator; without one the default paths apply.
func (e *Engine) dispatch(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	e.rt[rkQueryStart].InvokeBuf(buf)
	switch p.Hint {
	case sql.HintGraceJoin:
		return e.runGraceJoin(p, buf)
	case sql.HintSortAgg:
		return e.runSortAgg(p, buf)
	case sql.HintIndexOnly:
		return e.runBTreeRange(p, buf)
	}
	switch {
	case p.IsJoin():
		return e.runHashJoin(p, buf)
	case p.Outer.UseIndex:
		return e.runIndexScan(p, buf)
	default:
		return e.runSeqScan(p, buf)
	}
}

// Query prepares and runs a SQL string in one step.
func (e *Engine) Query(query string, proc trace.Processor) (Result, error) {
	plan, err := e.Prepare(query)
	if err != nil {
		return Result{}, err
	}
	return e.Run(plan, proc)
}
