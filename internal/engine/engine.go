package engine

import (
	"fmt"

	"wheretime/internal/catalog"
	"wheretime/internal/engine/op"
	"wheretime/internal/sql"
	"wheretime/internal/trace"
)

// Engine executes plans for one system variant over one catalog,
// narrating its hardware behaviour to a trace.Processor.
//
// An Engine is single-threaded: its routines carry dynamic state
// (invocation counters, branch-pattern phase, PRNGs) that Run mutates
// and ResetState rewinds. Concurrent experiments each build their own
// Engine over their own catalog; the only package-level tables
// (routineBases, profiles) are read-only.
type Engine struct {
	prof   Profile
	cat    *catalog.Catalog
	layout *trace.Layout
	rt     [numRoutineKinds]*trace.Routine
	// ops exposes the routines to the streaming operators by name.
	ops op.Routines

	// buf is the engine's reusable event buffer: query and transaction
	// runs fill it with direct method calls and the processor drains it
	// in batches, the hot-path shape the batched trace pipeline exists
	// for. It is empty between runs (Run and Commit flush it).
	buf *trace.Buffer
	// openTxns counts transactions currently holding buf. While one is
	// open the buffer is never re-bound — that would silently redirect
	// the rest of the transaction's events — so emitters that need a
	// different (or unprovably-same) processor get their own buffer
	// until the transaction commits or aborts.
	openTxns int

	// execs counts plan executions (Run calls), the observable the
	// gang-drain tests use to prove a multi-config unit executed the
	// workload once for the whole gang rather than once per config.
	execs uint64
}

// New builds an engine for the given system over the catalog.
func New(s System, cat *catalog.Catalog) *Engine {
	return NewWithProfile(DefaultProfile(s), cat)
}

// NewWithProfile builds an engine with an explicit profile (used by
// the ablation benchmarks to vary one axis at a time).
func NewWithProfile(p Profile, cat *catalog.Catalog) *Engine {
	e := &Engine{prof: p, cat: cat}
	e.layout, e.rt = buildRoutines(p)
	e.ops = op.Routines{
		PageNext:    e.rt[rkPageNext],
		ScanNext:    e.rt[rkScanNext],
		QualEval:    e.rt[rkQualEval],
		AggAccum:    e.rt[rkAggAccum],
		IdxDescend:  e.rt[rkIdxDescend],
		IdxLeafNext: e.rt[rkIdxLeafNext],
		RidFetch:    e.rt[rkRidFetch],
		HashBuild:   e.rt[rkHashBuild],
		HashProbe:   e.rt[rkHashProbe],
		JoinMatch:   e.rt[rkJoinMatch],
		FieldIter:   e.rt[rkFieldIter],
		Partition:   e.rt[rkPartition],
		SortRun:     e.rt[rkSortRun],
		SortMerge:   e.rt[rkSortMerge],
	}
	return e
}

// Profile returns the engine's build profile.
func (e *Engine) Profile() Profile { return e.prof }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// CodeFootprint returns the engine text-segment size in bytes.
func (e *Engine) CodeFootprint() uint64 { return e.layout.CodeFootprint() }

// ResetState clears all routine dynamic state (used between measured
// runs when determinism matters).
func (e *Engine) ResetState() { e.layout.ResetAll() }

// Executions returns how many plans this engine has run.
func (e *Engine) Executions() uint64 { return e.execs }

// PlanOptions returns the planner options this system uses.
func (e *Engine) PlanOptions() sql.PlanOptions {
	return sql.PlanOptions{UseIndex: e.prof.UseIndex}
}

// Prepare parses and plans a query with this system's planner
// behaviour.
func (e *Engine) Prepare(query string) (*sql.Plan, error) {
	return sql.Prepare(e.cat, query, e.PlanOptions())
}

// Result is a query result: the aggregate value and the rows that
// contributed to it.
type Result struct {
	// Value is the aggregate result (NaN for avg/min/max over no rows).
	Value float64
	// Rows is the number of qualifying rows (join matches for joins).
	Rows uint64
}

// emitter returns the event buffer a run should fill: the caller's
// own buffer when proc already is one, otherwise the engine's
// reusable buffer re-bound to proc. The boolean reports whether the
// engine owns the buffer and must flush it when the run completes.
func (e *Engine) emitter(proc trace.Processor) (*trace.Buffer, bool) {
	if b, ok := proc.(*trace.Buffer); ok {
		return b, false
	}
	if e.buf == nil {
		e.buf = trace.NewBuffer(proc, 0)
		return e.buf, true
	}
	if !e.buf.BoundTo(proc) {
		if e.openTxns > 0 {
			// The reusable buffer belongs to an open transaction (or to
			// a sink — e.g. a Tee — we cannot prove is the same one).
			// Drain what it holds so program order is preserved, and
			// give this emitter a private buffer; the transaction keeps
			// the engine buffer until Commit or Abort.
			e.buf.Flush()
			return trace.NewBuffer(proc, 0), true
		}
		e.buf.Bind(proc)
	}
	return e.buf, true
}

// Run executes a plan, emitting the event stream into proc.
//
// The engine fills its event buffer with direct calls and proc drains
// it in batches — in one trace.BatchProcessor call when proc supports
// it, else replayed one event at a time (the reference path; wrap a
// batch-capable processor in trace.Unbatched to force it). Both paths
// see the identical event sequence, so results never depend on which
// one ran.
func (e *Engine) Run(p *sql.Plan, proc trace.Processor) (Result, error) {
	if p == nil {
		return Result{}, fmt.Errorf("engine: nil plan")
	}
	e.execs++
	buf, owned := e.emitter(proc)
	res, err := e.dispatch(p, buf)
	if owned {
		buf.Flush()
	}
	return res, err
}

// dispatch lowers the plan's physical tree (the hint is a tree
// constructor — see sql.Plan.Tree) into a streaming-operator tree and
// drives it, emitting into buf.
func (e *Engine) dispatch(p *sql.Plan, buf *trace.Buffer) (Result, error) {
	e.rt[rkQueryStart].InvokeBuf(buf)
	n, err := p.Tree()
	if err != nil {
		return Result{}, err
	}
	sink, err := e.compile(n, p)
	if err != nil {
		return Result{}, err
	}
	x := &op.Exec{Buf: buf, Pool: e.cat.Pool(), Rt: &e.ops}
	if err := sink.Run(x, nil); err != nil {
		return Result{}, err
	}
	v, rows := sink.Result()
	return Result{Value: v, Rows: rows}, nil
}

// Query prepares and runs a SQL string in one step.
func (e *Engine) Query(query string, proc trace.Processor) (Result, error) {
	plan, err := e.Prepare(query)
	if err != nil {
		return Result{}, err
	}
	return e.Run(plan, proc)
}
