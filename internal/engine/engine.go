package engine

import (
	"fmt"
	"math"

	"wheretime/internal/catalog"
	"wheretime/internal/sql"
	"wheretime/internal/trace"
)

// workspaceBase is where per-query scratch structures (hash tables,
// sort runs) live in the simulated address space.
const workspaceBase uint64 = 0x6000_0000

// Engine executes plans for one system variant over one catalog,
// narrating its hardware behaviour to a trace.Processor.
//
// An Engine is single-threaded: its routines carry dynamic state
// (invocation counters, branch-pattern phase, PRNGs) that Run mutates
// and ResetState rewinds. Concurrent experiments each build their own
// Engine over their own catalog; the only package-level tables
// (routineBases, profiles) are read-only.
type Engine struct {
	prof   Profile
	cat    *catalog.Catalog
	layout *trace.Layout
	rt     [numRoutineKinds]*trace.Routine
}

// New builds an engine for the given system over the catalog.
func New(s System, cat *catalog.Catalog) *Engine {
	return NewWithProfile(DefaultProfile(s), cat)
}

// NewWithProfile builds an engine with an explicit profile (used by
// the ablation benchmarks to vary one axis at a time).
func NewWithProfile(p Profile, cat *catalog.Catalog) *Engine {
	e := &Engine{prof: p, cat: cat}
	e.layout, e.rt = buildRoutines(p)
	return e
}

// Profile returns the engine's build profile.
func (e *Engine) Profile() Profile { return e.prof }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// CodeFootprint returns the engine text-segment size in bytes.
func (e *Engine) CodeFootprint() uint64 { return e.layout.CodeFootprint() }

// ResetState clears all routine dynamic state (used between measured
// runs when determinism matters).
func (e *Engine) ResetState() { e.layout.ResetAll() }

// PlanOptions returns the planner options this system uses.
func (e *Engine) PlanOptions() sql.PlanOptions {
	return sql.PlanOptions{UseIndex: e.prof.UseIndex}
}

// Prepare parses and plans a query with this system's planner
// behaviour.
func (e *Engine) Prepare(query string) (*sql.Plan, error) {
	return sql.Prepare(e.cat, query, e.PlanOptions())
}

// Result is a query result: the aggregate value and the rows that
// contributed to it.
type Result struct {
	// Value is the aggregate result (NaN for avg/min/max over no rows).
	Value float64
	// Rows is the number of qualifying rows (join matches for joins).
	Rows uint64
}

// aggState accumulates one aggregate.
type aggState struct {
	fn    sql.AggFunc
	count uint64
	sum   int64
	min   int32
	max   int32
}

func newAggState(fn sql.AggFunc) *aggState {
	return &aggState{fn: fn, min: math.MaxInt32, max: math.MinInt32}
}

func (a *aggState) add(v int32) {
	a.count++
	a.sum += int64(v)
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

func (a *aggState) addCount() { a.count++ }

func (a *aggState) result() Result {
	r := Result{Rows: a.count}
	switch a.fn {
	case sql.AggCount:
		r.Value = float64(a.count)
	case sql.AggSum:
		r.Value = float64(a.sum)
	case sql.AggAvg:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.sum) / float64(a.count)
		}
	case sql.AggMin:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.min)
		}
	case sql.AggMax:
		if a.count == 0 {
			r.Value = math.NaN()
		} else {
			r.Value = float64(a.max)
		}
	}
	return r
}

// Run executes a plan, emitting the event stream into proc.
func (e *Engine) Run(p *sql.Plan, proc trace.Processor) (Result, error) {
	if p == nil {
		return Result{}, fmt.Errorf("engine: nil plan")
	}
	e.rt[rkQueryStart].Invoke(proc)
	switch {
	case p.IsJoin():
		return e.runHashJoin(p, proc)
	case p.Outer.UseIndex:
		return e.runIndexScan(p, proc)
	default:
		return e.runSeqScan(p, proc)
	}
}

// Query prepares and runs a SQL string in one step.
func (e *Engine) Query(query string, proc trace.Processor) (Result, error) {
	plan, err := e.Prepare(query)
	if err != nil {
		return Result{}, err
	}
	return e.Run(plan, proc)
}
