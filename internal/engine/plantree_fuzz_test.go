package engine_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
)

// FuzzPlanTreeEquivalence drives random small plan trees through the
// compiler and checks the record/replay contract the harness depends
// on: for any compilable tree, the batched capture path and the
// event-at-a-time trace.Replay path must tally the identical stream,
// and re-draining a recording must reproduce it again. A tree that
// fails to plan or compile is fine (the fuzzer explores invalid hint
// shapes too); a tree that runs once and then errors is not.

// fuzzDB lazily builds one small shared database per layout. The fuzz
// worker processes share nothing, so a plain once-guarded global is
// enough.
var fuzzDB struct {
	sync.Once
	nsm, pax *workload.Database
	err      error
}

func fuzzDatabases() (*workload.Database, *workload.Database, error) {
	fuzzDB.Do(func() {
		dims := workload.Dims{RRecords: 600, SRecords: 20, RecordSize: 40, Seed: 7}
		for _, l := range []storage.Layout{storage.NSM, storage.PAX} {
			db, err := workload.Build(dims, l)
			if err == nil {
				err = db.BuildIndexes()
			}
			if err != nil {
				fuzzDB.err = err
				return
			}
			if l == storage.NSM {
				fuzzDB.nsm = db
			} else {
				fuzzDB.pax = db
			}
		}
	})
	return fuzzDB.nsm, fuzzDB.pax, fuzzDB.err
}

// replaySink adapts a plain Processor to the BatchProcessor a
// Recording drain requires, forcing the reference event-at-a-time
// path.
type replaySink struct{ trace.Processor }

func (r replaySink) ProcessBatch(events []trace.Event) { trace.Replay(r.Processor, events) }

// fuzzShape maps the first input byte to a (query, hint, index) shape.
func fuzzShape(shape, selByte byte, dims workload.Dims) (query string, hint sql.Hint, useIndex bool) {
	sel := 0.02 + float64(selByte%32)*0.03 // 2% .. 95%
	switch shape % 8 {
	case 0:
		return dims.QuerySRS(sel), sql.HintNone, false
	case 1:
		return dims.QueryIRS(sel), sql.HintNone, true
	case 2:
		return dims.QueryBRS(sel), sql.HintIndexOnly, true
	case 3:
		return dims.QuerySJ(), sql.HintNone, false
	case 4:
		return dims.QueryGHJ(), sql.HintGraceJoin, false
	case 5:
		return dims.QuerySAG(sel), sql.HintSortAgg, false
	case 6:
		return dims.QueryJSA(), sql.HintJoinSortAgg, false
	default:
		return dims.QueryIXJ(sel), sql.HintIndexProbeJoin, true
	}
}

func sameResult(a, b engine.Result) bool {
	if a.Rows != b.Rows {
		return false
	}
	if math.IsNaN(a.Value) || math.IsNaN(b.Value) {
		return math.IsNaN(a.Value) && math.IsNaN(b.Value)
	}
	return a.Value == b.Value
}

func FuzzPlanTreeEquivalence(f *testing.F) {
	for shape := byte(0); shape < 8; shape++ {
		f.Add(shape, byte(3), byte(0))
		f.Add(shape, byte(17), byte(1))
	}
	f.Fuzz(func(t *testing.T, shape, selByte, sysByte byte) {
		nsm, pax, err := fuzzDatabases()
		if err != nil {
			t.Fatal(err)
		}
		sys := engine.System(sysByte % 4)
		db := nsm
		if engine.DefaultProfile(sys).DataLayout == storage.PAX {
			db = pax
		}
		query, hint, useIndex := fuzzShape(shape, selByte, workload.Dims{
			RRecords: 600, SRecords: 20, RecordSize: 40, Seed: 7})
		if useIndex && !engine.DefaultProfile(sys).UseIndex {
			return // grid validity rule: no index on this system
		}

		e := engine.New(sys, db.Catalog)
		plan, err := sql.Prepare(db.Catalog, query, sql.PlanOptions{UseIndex: useIndex})
		if err != nil {
			return // unplannable shape: acceptable
		}
		plan.Hint = hint

		// Reference: event-at-a-time through trace.Replay (Counting has
		// no ProcessBatch, so Buffer falls back to replaying each flush).
		var ref trace.Counting
		e.ResetState()
		refRes, err := e.Run(plan, &ref)
		if err != nil {
			return // tree rejected by the compiler: acceptable
		}

		// Batched capture: a Recorder forwards to the sink and records.
		var live trace.Counting
		rec := trace.NewRecorder(&live, 0)
		e.ResetState()
		liveRes, err := e.Run(plan, rec)
		if err != nil {
			t.Fatalf("plan ran once then failed under recording: %v", err)
		}
		if live != ref {
			t.Errorf("batched capture tallied %+v, replay reference %+v", live, ref)
		}
		if !sameResult(liveRes, refRes) {
			t.Errorf("recorded run result %+v != reference %+v", liveRes, refRes)
		}

		// Re-drain the recording through the event-at-a-time adapter:
		// the captured stream must replay to the same tallies.
		recording := rec.Recording()
		if recording == nil {
			t.Fatal("capture overflowed on a tiny database")
		}
		var drained trace.Counting
		recording.Drain(replaySink{&drained})
		if drained != ref {
			t.Errorf("drained recording tallied %+v, reference %+v", drained, ref)
		}

		// Determinism across repeated runs of the same plan.
		var again trace.Counting
		e.ResetState()
		if _, err := e.Run(plan, &again); err != nil {
			t.Fatalf("plan ran once then failed on re-run: %v", err)
		}
		if again != ref {
			t.Errorf("re-run tallied %+v, first run %+v", again, ref)
		}
		_ = fmt.Sprintf("%v", plan) // exercise Plan.String on fuzzed trees
	})
}
