package emon

import (
	"math"
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/xeon"
)

// Table-driven tests pinning every Table 4.2 formula to hand-computed
// values. Each case is worked out by hand from the paper's model at
// the default platform penalties (retire width 3, L1 miss 4 cycles,
// memory latency 65, ITLB miss 32, mispredict 17), so a regression in
// either the formulae or the default configuration fails loudly here.

func defaultFormulae() Formulae { return Formulae{Config: xeon.DefaultConfig()} }

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestFormulaeHandComputedComponents(t *testing.T) {
	f := defaultFormulae()
	cases := []struct {
		name string
		ev   map[Event]uint64
		comp func(Formulae, map[Event]uint64) float64
		want float64
	}{
		// TC: 3000 μops / retire width 3 = 1000 cycles.
		{"TC", map[Event]uint64{UopsRetired: 3000}, Formulae.TC, 1000},
		// TC rounds nothing: 100 μops / 3 = 33.333...
		{"TC fractional", map[Event]uint64{UopsRetired: 100}, Formulae.TC, 100.0 / 3},
		// TL1D: (250 L1D misses - 50 that also missed L2) × 4 = 800.
		{"TL1D", map[Event]uint64{DCULinesIn: 250, L2LinesInData: 50}, Formulae.TL1D, 800},
		// TL1D when every L1D miss hits L2: 120 × 4 = 480.
		{"TL1D all-L2-hit", map[Event]uint64{DCULinesIn: 120}, Formulae.TL1D, 480},
		// TL2D: 50 L2 data misses × 65-cycle memory latency = 3250.
		{"TL2D", map[Event]uint64{L2LinesInData: 50}, Formulae.TL2D, 3250},
		// TL2I: 7 L2 instruction misses × 65 = 455.
		{"TL2I", map[Event]uint64{L2LinesInInst: 7}, Formulae.TL2I, 455},
		// TITLB: 9 ITLB misses × 32 = 288.
		{"TITLB", map[Event]uint64{ITLBMiss: 9}, Formulae.TITLB, 288},
		// TB: 40 retired mispredictions × 17 = 680.
		{"TB", map[Event]uint64{BrMissPredRetired: 40}, Formulae.TB, 680},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			almost(t, tc.name, tc.comp(f, tc.ev), tc.want)
		})
	}
}

func TestFormulaeHandComputedRates(t *testing.T) {
	f := defaultFormulae()
	// One synthetic profile, all rates checked against hand arithmetic:
	//   10000 instructions, 2100 branches, 210 mispredicted, 1050 BTB
	//   misses, 5000 data refs, 100 L1D misses, 40 L2 data refs, 16 L2
	//   data misses, 1500 kernel instructions, 250 records.
	ev := map[Event]uint64{
		InstRetired:       10000,
		BrInstRetired:     2100,
		BrMissPredRetired: 210,
		BTBMisses:         1050,
		DataMemRefs:       5000,
		DCULinesIn:        100,
		L2LD:              40,
		L2LinesInData:     16,
		InstRetiredSup:    1500,
		RecordsProcessed:  250,
	}
	almost(t, "BranchMispredictionRate", f.BranchMispredictionRate(ev), 0.10) // 210/2100
	almost(t, "BTBMissRate", f.BTBMissRate(ev), 0.50)                         // 1050/2100
	almost(t, "L1DMissRate", f.L1DMissRate(ev), 0.02)                         // 100/5000
	almost(t, "L2DataMissRate", f.L2DataMissRate(ev), 0.40)                   // 16/40
	almost(t, "BranchFraction", f.BranchFraction(ev), 0.21)                   // 2100/10000
	almost(t, "UserModeFraction", f.UserModeFraction(ev), 10000.0/11500)
	almost(t, "InstructionsPerRecord", f.InstructionsPerRecord(ev), 40) // 10000/250
}

// TestPartialCPIHandComputed: the count-derived CPI over a fully
// specified profile.
//
//	TC    = 24000/3          = 8000
//	TL1D  = (300-60)×4       =  960
//	TL2D  = 60×65            = 3900
//	TL2I  = 10×65            =  650
//	TITLB = 5×32             =  160
//	TB    = 120×17           = 2040
//	total = 15710 over 12000 instructions -> CPI 1.309166...
func TestPartialCPIHandComputed(t *testing.T) {
	f := defaultFormulae()
	ev := map[Event]uint64{
		InstRetired:       12000,
		UopsRetired:       24000,
		DCULinesIn:        300,
		L2LinesInData:     60,
		L2LinesInInst:     10,
		ITLBMiss:          5,
		BrMissPredRetired: 120,
	}
	almost(t, "PartialCPI", f.PartialCPI(ev), 15710.0/12000)
	// And with no instructions, the guard returns zero.
	almost(t, "PartialCPI empty", f.PartialCPI(map[Event]uint64{}), 0)
}

// TestBreakdownStallDecomposition: Formulae.Breakdown must place each
// hand-computed component in its core slot and leave the
// stall-time-measured components (TL1I, TDEP, TFU, TILD, TOVL) zero.
func TestBreakdownStallDecomposition(t *testing.T) {
	f := defaultFormulae()
	ev := map[Event]uint64{
		InstRetired:       12000,
		UopsRetired:       24000,
		BrInstRetired:     2400,
		BrMissPredRetired: 120,
		DataMemRefs:       6000,
		DCULinesIn:        300,
		L2LD:              280,
		L2LinesInData:     60,
		L2LinesInInst:     10,
		ITLBMiss:          5,
		RecordsProcessed:  100,
	}
	b := f.Breakdown(ev)
	want := map[core.Component]float64{
		core.TC:    8000,
		core.TL1D:  960,
		core.TL2D:  3900,
		core.TL2I:  650,
		core.TITLB: 160,
		core.TB:    2040,
	}
	for comp, v := range want {
		almost(t, comp.String(), b.Cycles[comp], v)
	}
	for _, comp := range []core.Component{core.TL1I, core.TDEP, core.TFU, core.TILD, core.TOVL} {
		if b.Cycles[comp] != 0 {
			t.Errorf("count-derived breakdown must leave %s zero, got %v", comp, b.Cycles[comp])
		}
	}
	if b.Counts.InstructionsRetired != 12000 || b.Counts.Records != 100 {
		t.Errorf("breakdown counts not carried over: %+v", b.Counts)
	}
}
