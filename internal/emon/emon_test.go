package emon_test

import (
	"math"
	"testing"

	"wheretime/internal/core"
	"wheretime/internal/emon"
	"wheretime/internal/engine"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// testUnit returns a repeatable unit of work: one SRS query on a small
// database, matching the paper's "unit of execution" protocol.
func testUnit(t *testing.T) (func(trace.Processor), xeon.Config) {
	t.Helper()
	d := workload.Dims{RRecords: 2000, SRecords: 66, RecordSize: 100, Seed: 11}
	db, err := workload.Build(d, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.SystemC, db.Catalog)
	plan, err := e.Prepare(d.QuerySRS(0.10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := xeon.DefaultConfig()
	return func(p trace.Processor) {
		e.ResetState()
		if _, err := e.Run(plan, p); err != nil {
			panic(err)
		}
	}, cfg
}

func TestEventNames(t *testing.T) {
	for _, e := range emon.AllEvents() {
		if e.String() == "" {
			t.Errorf("event %d unnamed", e)
		}
	}
	if emon.InstRetired.String() != "INST_RETIRED" {
		t.Errorf("INST_RETIRED name = %q", emon.InstRetired.String())
	}
	if emon.InstRetiredSup.String() != "INST_RETIRED:SUP" {
		t.Errorf("SUP name = %q", emon.InstRetiredSup.String())
	}
}

func TestTwoCountersPerRun(t *testing.T) {
	unit, cfg := testUnit(t)
	s := emon.NewSession(cfg, unit)
	ev := s.Measure([]emon.Event{emon.InstRetired, emon.UopsRetired, emon.BrInstRetired})
	// 3 events, 2 counters -> 2 runs.
	if s.Runs != 2 {
		t.Errorf("3 events took %d runs, want 2", s.Runs)
	}
	if ev[emon.InstRetired] == 0 || ev[emon.UopsRetired] < ev[emon.InstRetired] {
		t.Errorf("implausible counts: %v", ev)
	}
}

func TestMultiplexingMatchesSingleRun(t *testing.T) {
	// The paper's protocol assumes the unit of work is repeatable
	// enough that pairwise-measured events compose into one coherent
	// profile. Our simulator is deterministic, so multiplexed
	// measurement must agree exactly with a single full measurement.
	unit, cfg := testUnit(t)
	s := emon.NewSession(cfg, unit)
	multiplexed := s.MeasureAll()

	pipe := xeon.New(cfg)
	unit(pipe)
	pipe.ResetStats()
	unit(pipe)
	direct := pipe.Breakdown().Counts

	f := emon.Formulae{Config: cfg}
	fromEvents := f.Breakdown(multiplexed)
	if fromEvents.Counts.InstructionsRetired != direct.InstructionsRetired {
		t.Errorf("instructions: multiplexed %d vs direct %d",
			fromEvents.Counts.InstructionsRetired, direct.InstructionsRetired)
	}
	if fromEvents.Counts.L1IMisses != direct.L1IMisses {
		t.Errorf("L1I misses: multiplexed %d vs direct %d",
			fromEvents.Counts.L1IMisses, direct.L1IMisses)
	}
	if fromEvents.Counts.BranchMispredictions != direct.BranchMispredictions {
		t.Errorf("mispredictions: multiplexed %d vs direct %d",
			fromEvents.Counts.BranchMispredictions, direct.BranchMispredictions)
	}
	if err := emon.Validate(multiplexed); err != nil {
		t.Errorf("event map invalid: %v", err)
	}
}

func TestFormulaeMatchPipelineAccounting(t *testing.T) {
	// The count-derived components of Table 4.2 must reproduce the
	// simulator's own charging exactly: both implement the same
	// formulae.
	unit, cfg := testUnit(t)
	pipe := xeon.New(cfg)
	unit(pipe)
	pipe.ResetStats()
	unit(pipe)
	direct := pipe.Breakdown()

	s := emon.NewSession(cfg, unit)
	ev := s.MeasureAll()
	f := emon.Formulae{Config: cfg}

	checks := []struct {
		name    string
		formula float64
		direct  float64
	}{
		{"TC", f.TC(ev), direct.Cycles[core.TC]},
		{"TL1D", f.TL1D(ev), direct.Cycles[core.TL1D]},
		{"TL2D", f.TL2D(ev), direct.Cycles[core.TL2D]},
		{"TL2I", f.TL2I(ev), direct.Cycles[core.TL2I]},
		{"TITLB", f.TITLB(ev), direct.Cycles[core.TITLB]},
		{"TB", f.TB(ev), direct.Cycles[core.TB]},
	}
	for _, c := range checks {
		if math.Abs(c.formula-c.direct) > 1e-6*(1+math.Abs(c.direct)) {
			t.Errorf("%s: formula %v vs direct %v", c.name, c.formula, c.direct)
		}
	}
}

func TestDerivedRates(t *testing.T) {
	unit, cfg := testUnit(t)
	s := emon.NewSession(cfg, unit)
	ev := s.MeasureAll()
	f := emon.Formulae{Config: cfg}

	if r := f.BranchFraction(ev); r < 0.1 || r > 0.3 {
		t.Errorf("branch fraction %v out of plausible range", r)
	}
	if r := f.L1DMissRate(ev); r <= 0 || r > 0.05 {
		t.Errorf("L1D miss rate %v outside the paper's band", r)
	}
	if r := f.BranchMispredictionRate(ev); r <= 0 || r > 0.25 {
		t.Errorf("misprediction rate %v implausible", r)
	}
	if r := f.UserModeFraction(ev); r < 0.85 {
		t.Errorf("user-mode fraction %v; paper reports >85%%", r)
	}
	if f.InstructionsPerRecord(ev) < 300 {
		t.Errorf("instructions/record too low: %v", f.InstructionsPerRecord(ev))
	}
	if f.PartialCPI(ev) <= 0 {
		t.Error("partial CPI should be positive")
	}
}

func TestValidateCatchesCorruptEvents(t *testing.T) {
	ev := map[emon.Event]uint64{
		emon.DataMemRefs: 10, emon.DCULinesIn: 20,
	}
	if err := emon.Validate(ev); err == nil {
		t.Error("misses > refs should fail validation")
	}
	cases := []map[emon.Event]uint64{
		{emon.IFUFetch: 1, emon.IFUFetchMiss: 2},
		{emon.BrInstRetired: 1, emon.BrMissPredRetired: 2},
		{emon.L2LD: 1, emon.L2LinesInData: 2},
		{emon.InstRetired: 1, emon.BrInstRetired: 2},
	}
	for i, c := range cases {
		if err := emon.Validate(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestZeroRatesSafe(t *testing.T) {
	f := emon.Formulae{Config: xeon.DefaultConfig()}
	empty := map[emon.Event]uint64{}
	if f.BranchMispredictionRate(empty) != 0 || f.L1DMissRate(empty) != 0 ||
		f.PartialCPI(empty) != 0 || f.UserModeFraction(empty) != 0 {
		t.Error("empty event map should yield zero rates")
	}
}
