package emon

import (
	"fmt"

	"wheretime/internal/core"
	"wheretime/internal/xeon"
)

// Formulae implements the Table 4.2 transformations from raw event
// counts to stall-time components ("using a set of formulae, these
// numbers were transformed into meaningful performance metrics",
// Section 4.3). Components the paper measured as actual stall time
// (TL1I, TFU, TDEP, TILD) cannot be reconstructed from counts alone;
// Breakdown fills the count-derived components and leaves those zero
// for the caller to merge from stall-time measurements.
type Formulae struct {
	// Config supplies the penalties: 4-cycle L1 miss, measured memory
	// latency, 32-cycle ITLB miss, 17-cycle misprediction.
	Config xeon.Config
}

// TC estimates computation time from retired μops (Table 4.2:
// "estimated minimum based on μops retired").
func (f Formulae) TC(ev map[Event]uint64) float64 {
	return float64(ev[UopsRetired]) / f.Config.RetireWidth
}

// TL1D is L1 D-cache misses that hit L2, times the 4-cycle penalty.
func (f Formulae) TL1D(ev map[Event]uint64) float64 {
	misses := ev[DCULinesIn] - ev[L2LinesInData]
	return float64(misses) * f.Config.L1MissPenalty
}

// TL2D is L2 data misses times the measured memory latency.
func (f Formulae) TL2D(ev map[Event]uint64) float64 {
	return float64(ev[L2LinesInData]) * f.Config.MemoryLatency
}

// TL2I is L2 instruction misses times the memory latency.
func (f Formulae) TL2I(ev map[Event]uint64) float64 {
	return float64(ev[L2LinesInInst]) * f.Config.MemoryLatency
}

// TITLB is ITLB misses times 32 cycles.
func (f Formulae) TITLB(ev map[Event]uint64) float64 {
	return float64(ev[ITLBMiss]) * f.Config.ITLBPenalty
}

// TB is retired mispredictions times the 17-cycle penalty.
func (f Formulae) TB(ev map[Event]uint64) float64 {
	return float64(ev[BrMissPredRetired]) * f.Config.MispredictPenalty
}

// CPI needs the breakdown total; this variant uses the count-derived
// components only and therefore underestimates, exactly as the paper's
// count-only view would.
func (f Formulae) PartialCPI(ev map[Event]uint64) float64 {
	if ev[InstRetired] == 0 {
		return 0
	}
	total := f.TC(ev) + f.TL1D(ev) + f.TL2D(ev) + f.TL2I(ev) + f.TITLB(ev) + f.TB(ev)
	return total / float64(ev[InstRetired])
}

// Rates derived from counts, as reported through Section 5.
func (f Formulae) BranchMispredictionRate(ev map[Event]uint64) float64 {
	return ratio(ev[BrMissPredRetired], ev[BrInstRetired])
}

// BTBMissRate is BTB misses over retired branches (§5.3: ~50%).
func (f Formulae) BTBMissRate(ev map[Event]uint64) float64 {
	return ratio(ev[BTBMisses], ev[BrInstRetired])
}

// L1DMissRate is L1 D-cache misses over references (§5.2: ~2%).
func (f Formulae) L1DMissRate(ev map[Event]uint64) float64 {
	return ratio(ev[DCULinesIn], ev[DataMemRefs])
}

// L2DataMissRate is L2 data misses over L2 data references (§5.2.1:
// 40-90%, System B ~2%).
func (f Formulae) L2DataMissRate(ev map[Event]uint64) float64 {
	return ratio(ev[L2LinesInData], ev[L2LD])
}

// BranchFraction is branches over instructions (§5.3: ~20%).
func (f Formulae) BranchFraction(ev map[Event]uint64) float64 {
	return ratio(ev[BrInstRetired], ev[InstRetired])
}

// UserModeFraction is the share of instructions retired in user mode;
// the paper reports >85% for almost all experiments.
func (f Formulae) UserModeFraction(ev map[Event]uint64) float64 {
	user := ev[InstRetired]
	total := user + ev[InstRetiredSup]
	return ratio(user, total)
}

// InstructionsPerRecord is Figure 5.3's metric.
func (f Formulae) InstructionsPerRecord(ev map[Event]uint64) float64 {
	return ratio(ev[InstRetired], ev[RecordsProcessed])
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Breakdown assembles the count-derived components of a core.Breakdown
// from measured events. Stall-time-measured components (TL1I, TDEP,
// TFU, TILD, TOVL) stay zero; Merge them from a direct measurement.
func (f Formulae) Breakdown(ev map[Event]uint64) *core.Breakdown {
	b := &core.Breakdown{}
	b.Cycles[core.TC] = f.TC(ev)
	b.Cycles[core.TL1D] = f.TL1D(ev)
	b.Cycles[core.TL2D] = f.TL2D(ev)
	b.Cycles[core.TL2I] = f.TL2I(ev)
	b.Cycles[core.TITLB] = f.TITLB(ev)
	b.Cycles[core.TB] = f.TB(ev)
	b.Counts = core.Counts{
		InstructionsRetired:  ev[InstRetired],
		UopsRetired:          ev[UopsRetired],
		BranchesRetired:      ev[BrInstRetired],
		BranchMispredictions: ev[BrMissPredRetired],
		BTBMisses:            ev[BTBMisses],
		L1DReferences:        ev[DataMemRefs],
		L1DMisses:            ev[DCULinesIn],
		L1IReferences:        ev[IFUFetch],
		L1IMisses:            ev[IFUFetchMiss],
		L2DataReferences:     ev[L2LD],
		L2DataMisses:         ev[L2LinesInData],
		L2InstReferences:     ev[L2IFetch],
		L2InstMisses:         ev[L2LinesInInst],
		ITLBMisses:           ev[ITLBMiss],
		KernelInstructions:   ev[InstRetiredSup],
		Records:              ev[RecordsProcessed],
	}
	return b
}

// Validate cross-checks an event map for internal consistency. Pairs
// are only compared when both events were measured, since a partial
// emon invocation legitimately collects a subset.
func Validate(ev map[Event]uint64) error {
	check := func(num, den Event) error {
		n, okN := ev[num]
		d, okD := ev[den]
		if okN && okD && n > d {
			return fmt.Errorf("emon: %s %d exceeds %s %d", num, n, den, d)
		}
		return nil
	}
	for _, pair := range [][2]Event{
		{DCULinesIn, DataMemRefs},
		{IFUFetchMiss, IFUFetch},
		{BrMissPredRetired, BrInstRetired},
		{L2LinesInData, L2LD},
		{BrInstRetired, InstRetired},
	} {
		if err := check(pair[0], pair[1]); err != nil {
			return err
		}
	}
	return nil
}
