package emon_test

import (
	"errors"
	"testing"

	"wheretime/internal/emon"
	"wheretime/internal/engine"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// newTestUnit builds an isolated unit of work — its own database,
// engine and plan — the factory shape MeasureParallel hands each
// worker.
func newTestUnit() (func(trace.Processor), error) {
	d := workload.Dims{RRecords: 2000, SRecords: 66, RecordSize: 100, Seed: 11}
	db, err := workload.Build(d, storage.NSM)
	if err != nil {
		return nil, err
	}
	e := engine.New(engine.SystemC, db.Catalog)
	plan, err := e.Prepare(d.QuerySRS(0.10))
	if err != nil {
		return nil, err
	}
	return func(p trace.Processor) {
		e.ResetState()
		if _, err := e.Run(plan, p); err != nil {
			panic(err)
		}
	}, nil
}

// TestMeasureParallelMatchesSession pins the parallel profile to the
// serial protocol: the counts MeasureParallel assembles — at any
// worker count, including 1 — must equal Session.Measure's exactly,
// and the run accounting (one measured run per counter pair) must
// agree. cmd/emon's default path routes through MeasureParallel, so
// this equivalence is what keeps default CLI output on the paper's
// methodology.
func TestMeasureParallelMatchesSession(t *testing.T) {
	cfg := xeon.DefaultConfig()
	events := emon.AllEvents()
	workerCounts := []int{1, 4}
	if testing.Short() {
		// Two pairs and one fan-out keep the equivalence pinned at a
		// fraction of the full profile's cost on the per-push path.
		events = events[:4]
		workerCounts = []int{2}
	}

	unit, err := newTestUnit()
	if err != nil {
		t.Fatal(err)
	}
	session := emon.NewSession(cfg, unit)
	want := session.Measure(events)

	for _, workers := range workerCounts {
		got, runs, err := emon.MeasureParallel(cfg, 1, events, workers, newTestUnit)
		if err != nil {
			t.Fatal(err)
		}
		if runs != session.Runs {
			t.Errorf("workers=%d: %d runs, serial session took %d", workers, runs, session.Runs)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events measured, want %d", workers, len(got), len(want))
		}
		for e, v := range want {
			if got[e] != v {
				t.Errorf("workers=%d: %s = %d, serial session measured %d", workers, e, got[e], v)
			}
		}
	}
}

// TestMeasureParallelPropagatesUnitError verifies a failing unit
// factory surfaces as an error, not a panic or partial profile.
func TestMeasureParallelPropagatesUnitError(t *testing.T) {
	failing := func() (func(trace.Processor), error) {
		return nil, errors.New("factory failed")
	}
	_, _, err := emon.MeasureParallel(xeon.DefaultConfig(), 1, emon.AllEvents(), 2, failing)
	if err == nil {
		t.Error("factory error should propagate")
	}
}
