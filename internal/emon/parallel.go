package emon

import (
	"wheretime/internal/fanout"
	"wheretime/internal/trace"
	"wheretime/internal/xeon"
)

// MeasureParallel assembles the same per-pair profile as
// Session.Measure, but fans the counter pairs out across workers.
// Each worker builds its own unit of work via newUnit — its own
// engine, data and pipeline — so no simulator state is shared between
// concurrent pairs; because every pair re-runs the unit from a reset
// state, the assembled counts are identical to a serial session's
// (TestMeasureParallelMatchesSession). It returns the counts and how
// many measured runs were performed (one per pair, as the Pentium
// II's two counters force).
func MeasureParallel(cfg xeon.Config, warmup int, events []Event, parallel int,
	newUnit func() (func(trace.Processor), error)) (map[Event]uint64, int, error) {

	var pairs [][]Event
	for i := 0; i < len(events); i += 2 {
		end := i + 2
		if end > len(events) {
			end = len(events)
		}
		pairs = append(pairs, events[i:end])
	}

	type outcome struct {
		counts map[Event]uint64
		err    error
	}
	outcomes := make([]outcome, len(pairs))
	fanout.Run(len(pairs), parallel, func() func(int) bool {
		// The unit is built lazily so a worker that never receives a
		// pair never pays for data generation.
		var unit func(trace.Processor)
		return func(i int) bool {
			if unit == nil {
				u, err := newUnit()
				if err != nil {
					outcomes[i] = outcome{err: err}
					return false
				}
				unit = u
			}
			pipe := xeon.New(cfg)
			buf := trace.NewBuffer(pipe, 0)
			for n := 0; n < warmup; n++ {
				unit(buf)
				buf.Flush()
			}
			pipe.ResetStats()
			unit(buf)
			buf.Flush()
			counts := pipe.Breakdown().Counts
			got := make(map[Event]uint64, 2)
			for _, e := range pairs[i] {
				got[e] = e.read(counts)
			}
			outcomes[i] = outcome{counts: got}
			return true
		}
	})

	out := make(map[Event]uint64, len(events))
	for _, o := range outcomes {
		if o.err != nil {
			return nil, 0, o.err
		}
		for e, v := range o.counts {
			out[e] = v
		}
	}
	return out, len(pairs), nil
}
