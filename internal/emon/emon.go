// Package emon reproduces the measurement methodology of Section 4.3:
// Intel's emon tool drives the Pentium II's two hardware counters, so
// each run of the query unit can measure at most two event types, and
// the full 74-event profile is assembled by re-running the same unit
// once per counter pair. The workload is deterministic, which is the
// property the paper's protocol relies on (it repeats runs until the
// standard deviation is below 5%; ours is exactly zero).
//
// The package exposes the event catalogue the Table 4.2 formulae need,
// a two-counters-per-run Session, and the formulae that transform raw
// event counts into the execution-time breakdown.
package emon

import (
	"fmt"

	"wheretime/internal/core"
	"wheretime/internal/trace"
	"wheretime/internal/xeon"
)

// Event is a Pentium II performance-monitoring event, named after the
// processor's event mnemonics.
type Event int

// The events the breakdown formulae consume.
const (
	// InstRetired counts retired x86 instructions (INST_RETIRED).
	InstRetired Event = iota
	// UopsRetired counts retired micro-operations (UOPS_RETIRED).
	UopsRetired
	// BrInstRetired counts retired branches (BR_INST_RETIRED).
	BrInstRetired
	// BrMissPredRetired counts retired mispredicted branches
	// (BR_MISS_PRED_RETIRED).
	BrMissPredRetired
	// BTBMisses counts branch executions that missed the BTB
	// (BTB_MISSES).
	BTBMisses
	// DataMemRefs counts L1 D-cache references (DATA_MEM_REFS).
	DataMemRefs
	// DCULinesIn counts lines brought into the L1 D-cache, its miss
	// count (DCU_LINES_IN).
	DCULinesIn
	// IFUFetch counts instruction fetch requests (IFU_IFETCH).
	IFUFetch
	// IFUFetchMiss counts L1 I-cache misses (IFU_IFETCH_MISS).
	IFUFetchMiss
	// L2IFetch counts instruction fetches that reached L2 (L2_IFETCH).
	L2IFetch
	// L2LD counts data loads that reached L2 (L2_LD).
	L2LD
	// L2LinesInData counts L2 data misses (L2_LINES_IN, data portion).
	L2LinesInData
	// L2LinesInInst counts L2 instruction misses.
	L2LinesInInst
	// ITLBMiss counts instruction TLB misses (ITLB_MISS).
	ITLBMiss
	// InstRetiredSup counts kernel-mode retired instructions
	// (INST_RETIRED:SUP).
	InstRetiredSup
	// RecordsProcessed is the software-level record count the paper's
	// per-record metrics divide by (not a hardware counter; emon read
	// it from the DBMS run).
	RecordsProcessed

	numEvents
)

// String returns the Pentium II mnemonic.
func (e Event) String() string {
	names := [...]string{
		"INST_RETIRED", "UOPS_RETIRED", "BR_INST_RETIRED",
		"BR_MISS_PRED_RETIRED", "BTB_MISSES", "DATA_MEM_REFS",
		"DCU_LINES_IN", "IFU_IFETCH", "IFU_IFETCH_MISS", "L2_IFETCH",
		"L2_LD", "L2_LINES_IN_DATA", "L2_LINES_IN_INST", "ITLB_MISS",
		"INST_RETIRED:SUP", "RECORDS",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// AllEvents lists every supported event.
func AllEvents() []Event {
	out := make([]Event, numEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// read extracts an event's value from the simulator's counters.
func (e Event) read(c core.Counts) uint64 {
	switch e {
	case InstRetired:
		return c.InstructionsRetired
	case UopsRetired:
		return c.UopsRetired
	case BrInstRetired:
		return c.BranchesRetired
	case BrMissPredRetired:
		return c.BranchMispredictions
	case BTBMisses:
		return c.BTBMisses
	case DataMemRefs:
		return c.L1DReferences
	case DCULinesIn:
		return c.L1DMisses
	case IFUFetch:
		return c.L1IReferences
	case IFUFetchMiss:
		return c.L1IMisses
	case L2IFetch:
		return c.L2InstReferences
	case L2LD:
		return c.L2DataReferences
	case L2LinesInData:
		return c.L2DataMisses
	case L2LinesInInst:
		return c.L2InstMisses
	case ITLBMiss:
		return c.ITLBMisses
	case InstRetiredSup:
		return c.KernelInstructions
	case RecordsProcessed:
		return c.Records
	default:
		panic(fmt.Sprintf("emon: unknown event %d", int(e)))
	}
}

// Session measures events over a repeatable unit of work, two per run,
// as the Pentium II's counter pair forces. The unit receives a fresh
// warmed pipeline each run.
type Session struct {
	cfg xeon.Config
	// Warmup runs precede each measured run (Section 4.3 warms caches
	// with multiple runs of the query).
	Warmup int
	// Runs counts how many measured runs the session performed.
	Runs int
	unit func(trace.Processor)
}

// NewSession builds a session around a unit of work.
func NewSession(cfg xeon.Config, unit func(trace.Processor)) *Session {
	return &Session{cfg: cfg, Warmup: 1, unit: unit}
}

// Measure collects the given events, two per run. Odd event counts
// waste the second counter on the last run, as emon did. Each run
// feeds the unit's event stream through a batch buffer, drained before
// counters are reset or read, so the counts are those of the batched
// pipeline.
func (s *Session) Measure(events []Event) map[Event]uint64 {
	out := make(map[Event]uint64, len(events))
	for i := 0; i < len(events); i += 2 {
		pipe := xeon.New(s.cfg)
		buf := trace.NewBuffer(pipe, 0)
		for w := 0; w < s.Warmup; w++ {
			s.unit(buf)
			buf.Flush()
		}
		pipe.ResetStats()
		s.unit(buf)
		buf.Flush()
		s.Runs++
		counts := pipe.Breakdown().Counts
		out[events[i]] = events[i].read(counts)
		if i+1 < len(events) {
			out[events[i+1]] = events[i+1].read(counts)
		}
	}
	return out
}

// MeasureAll collects every supported event.
func (s *Session) MeasureAll() map[Event]uint64 {
	return s.Measure(AllEvents())
}
