package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"wheretime/internal/trace"
)

// storeEvents builds a small canonical stream: the shapes the engine
// emits (fetches, strided loads, branch runs, a burst, a stall).
func storeEvents(n int) []trace.Event {
	evs := make([]trace.Event, 0, n)
	for i := 0; len(evs) < n; i++ {
		code := trace.CodeBase + uint64(i%64)*96
		data := trace.HeapBase + uint64(i)*72
		evs = append(evs,
			trace.Event{Kind: trace.EvFetchBlock, Addr: code, Size: 28, A: 7, B: 11},
			trace.Event{Kind: trace.EvLoad, Addr: data, Size: 8},
			trace.Event{Kind: trace.EvBranch, Addr: code + 32, Aux: code, Taken: i%3 == 0},
		)
		if i%7 == 0 {
			evs = append(evs,
				trace.Event{Kind: trace.EvDataBurst, Addr: trace.PrivateBase, Size: 256, A: 6, B: 2},
				trace.Event{Kind: trace.EvRecordProcessed})
		}
	}
	return evs[:n]
}

func captureRecording(n int) *trace.Recording {
	rec := trace.NewRecorder(nil, 0)
	rec.ProcessBatch(storeEvents(n))
	return rec.Recording()
}

// TestStoreTraceRoundTrip pins the content-addressed trace path: put,
// get, stream equality, dedupe on re-put, miss on absent digest, and
// no leaked buffers once everything is released.
func TestStoreTraceRoundTrip(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := captureRecording(trace.RecordChunkEvents + 500)
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	if d2, err := s.PutTrace(rec); err != nil || d2 != digest {
		t.Fatalf("re-put: digest %s err %v, want %s", d2, err, digest)
	}
	got, err := s.GetTrace(digest)
	if err != nil {
		t.Fatalf("GetTrace: %v", err)
	}
	if got == nil || !got.Equal(rec) {
		t.Fatal("loaded trace differs from stored recording")
	}
	missing, err := s.GetTrace(KeyHash("no such trace"))
	if err != nil || missing != nil {
		t.Fatalf("absent digest: rec=%v err=%v, want nil,nil", missing, err)
	}
	st := s.Stats()
	if st.TraceHits != 1 || st.TraceMisses != 1 || st.TracesWritten != 1 {
		t.Fatalf("stats %+v", st)
	}
	got.Release()
	rec.Release()
	if c1, e1, b1 := trace.LiveBuffers(); c1 != c0 || e1 != e0 || b1 != b0 {
		t.Fatalf("buffers leaked: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c1, e0, e1, b0, b1)
	}
}

// TestStoreEntriesPersist pins the index: entries survive Flush +
// reopen, first write wins, and hit/miss stats count.
func TestStoreEntriesPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.PutEntry("tally|a", []byte("blob-a"))
	s.PutEntry("tally|a", []byte("loser"))
	s.PutEntry("snap|b", []byte{1, 2, 3})
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if b, ok := s2.GetEntry("tally|a"); !ok || string(b) != "blob-a" {
		t.Fatalf("tally|a = %q, %v", b, ok)
	}
	if _, ok := s2.GetEntry("absent"); ok {
		t.Fatal("absent key reported present")
	}
	st := s2.Stats()
	if st.EntryHits != 1 || st.EntryMisses != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Concurrent-process merge: a second handle's flush must not drop
	// keys a third handle flushed in between.
	s3, _ := Open(dir)
	s3.PutEntry("tally|c", []byte("c"))
	if err := s3.Flush(); err != nil {
		t.Fatalf("s3 Flush: %v", err)
	}
	s2.PutEntry("tally|d", []byte("d"))
	if err := s2.Flush(); err != nil {
		t.Fatalf("s2 Flush: %v", err)
	}
	s4, _ := Open(dir)
	for _, k := range []string{"tally|a", "snap|b", "tally|c", "tally|d"} {
		if _, ok := s4.GetEntry(k); !ok {
			t.Errorf("key %s lost after merged flushes", k)
		}
	}
}

// TestStoreCorruptIndex: garbage in index.json must fail Open with an
// error, not be silently treated as an empty cache.
func TestStoreCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt index")
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"),
		[]byte(`{"version":99,"entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a wrong-version index")
	}
}

// TestStoreCorruptTrace: flipped payload bytes and bad headers must
// error (the digest check catches them) and leak nothing.
func TestStoreCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	rec := captureRecording(2000)
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	rec.Release()

	path := filepath.Join(dir, "tr-"+digest+".trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c0, e0, b0 := trace.LiveBuffers()
	for _, off := range []int{0, 10, 41, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x80
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.GetTrace(digest); err == nil {
			t.Errorf("flip at %d: GetTrace accepted corrupt file", off)
		}
	}
	if err := os.WriteFile(path, data[:30], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTrace(digest); err == nil {
		t.Error("GetTrace accepted a truncated file")
	}
	if _, err := s.GetTrace("zz"); err == nil {
		t.Error("GetTrace accepted a malformed digest")
	}
	if c1, e1, b1 := trace.LiveBuffers(); c1 != c0 || e1 != e0 || b1 != b0 {
		t.Fatalf("buffers leaked: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c1, e0, e1, b0, b1)
	}
}

// FuzzStoreLoad drives arbitrary bytes through every load path — a
// correctly framed trace file with a fuzzed payload, a raw fuzzed
// file body, and a fuzzed index.json. Every outcome must be a clean
// error or a usable recording; nothing may panic and every borrowed
// buffer must be back on the free lists afterwards.
func FuzzStoreLoad(f *testing.F) {
	small := captureRecording(100)
	f.Add(small.MarshalWire(nil))
	small.Release()
	big := captureRecording(trace.RecordChunkEvents + 37)
	f.Add(big.MarshalWire(nil))
	big.Release()
	f.Add([]byte{})
	f.Add([]byte(traceMagic))
	f.Add([]byte(`{"version":1,"entries":{"k":"AAEC"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c0, e0, b0 := trace.LiveBuffers()
		dir := t.TempDir()

		// Path 1: data as the payload of a well-framed trace file, so
		// the digest check passes and the wire parser sees it.
		sum := sha256.Sum256(data)
		digest := hex.EncodeToString(sum[:])
		framed := append(append([]byte(traceMagic), sum[:]...), data...)
		if err := os.WriteFile(filepath.Join(dir, "tr-"+digest+".trace"), framed, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on empty index: %v", err)
		}
		if rec, err := s.GetTrace(digest); err == nil && rec != nil {
			rec.Drain(&discard{})
			rec.Release()
		}

		// Path 2: data as the whole file body under a different name.
		bodySum := sha256.Sum256(append(data, 'x'))
		bodyDigest := hex.EncodeToString(bodySum[:])
		if err := os.WriteFile(filepath.Join(dir, "tr-"+bodyDigest+".trace"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if rec, err := s.GetTrace(bodyDigest); err == nil && rec != nil {
			rec.Release()
		}

		// Path 3: data as index.json.
		if err := os.WriteFile(filepath.Join(dir, "index.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if s2, err := Open(dir); err == nil {
			s2.GetEntry("k")
		}

		if c1, e1, b1 := trace.LiveBuffers(); c1 != c0 || e1 != e0 || b1 != b0 {
			t.Fatalf("buffers leaked: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c1, e0, e1, b0, b1)
		}
	})
}

// discard is a counting batch sink for draining fuzz-loaded
// recordings: proving an accepted payload is actually drainable.
type discard struct{ trace.Counting }

func (d *discard) ProcessBatch(events []trace.Event) { trace.Replay(&d.Counting, events) }
