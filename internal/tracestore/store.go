// Package tracestore is the persistent half of the record-once/
// replay-many discipline: a content-addressed on-disk store of
// compressed recordings plus a small key→blob index for memoized cell
// tallies and post-warm-up pipeline snapshots. It is what lets a grid
// run begin hot — a process restart (or a CI run restoring a cached
// directory) replays and memoizes from disk instead of re-executing
// every cell from zero.
//
// Layout under the store directory:
//
//	tr-<hex sha256>.trace  one recording: magic, embedded digest, then
//	                       the trace wire payload (framed columnar
//	                       chunks, see trace.MarshalWire). The file
//	                       name is the payload digest, so identical
//	                       streams dedupe and corruption is detected
//	                       by re-hashing on load.
//	index.json             the entry index: opaque caller blobs keyed
//	                       by caller strings (the harness keys carry
//	                       the emission key, config hash, warm-up
//	                       count and stream-schema token).
//
// The store never interprets entry blobs; the harness serializes its
// own tallies and snapshots. Loaded recordings draw their chunk
// buffers from the shared trace free lists, so a warm start streams
// into the same arenas capture uses. Every load path validates before
// trusting: corrupt or truncated files return errors (never panic)
// and leak nothing, which FuzzStoreLoad pins.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"wheretime/internal/trace"
)

// traceMagic heads every trace file; indexVersion tags index.json.
const (
	traceMagic   = "WTSTOR1\n"
	indexVersion = 1
)

// Stats counts store traffic for the warm-start log line.
type Stats struct {
	EntryHits     int
	EntryMisses   int
	TraceHits     int
	TraceMisses   int
	TracesWritten int
	EntriesAdded  int
}

// Store is an open store directory. It is safe for concurrent use by
// the grid's workers: one Store instance is shared per Measure run,
// entries accumulate in memory, and Flush merges them into index.json
// at teardown.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string][]byte // loaded index plus this process's additions
	added   map[string][]byte // additions only, merged on Flush
	stats   Stats
}

// indexFile is the JSON shape of index.json.
type indexFile struct {
	Version int               `json:"version"`
	Entries map[string][]byte `json:"entries"`
}

// Open opens (creating if needed) a store directory and loads its
// index. A corrupt index is an error — a cache that cannot be trusted
// must not be silently treated as empty, the caller decides.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:     dir,
		entries: make(map[string][]byte),
		added:   make(map[string][]byte),
	}
	idx, err := readIndex(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	if idx != nil {
		s.entries = idx
	}
	return s, nil
}

// readIndex loads and validates one index file; a missing file is
// (nil, nil).
func readIndex(path string) (map[string][]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("tracestore: corrupt index %s: %w", path, err)
	}
	if idx.Version != indexVersion {
		return nil, fmt.Errorf("tracestore: index %s has version %d, want %d", path, idx.Version, indexVersion)
	}
	if idx.Entries == nil {
		idx.Entries = make(map[string][]byte)
	}
	return idx.Entries, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a copy of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// GetEntry returns the blob stored under key, if any.
func (s *Store) GetEntry(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.entries[key]
	if ok {
		s.stats.EntryHits++
	} else {
		s.stats.EntryMisses++
	}
	return b, ok
}

// PutEntry stages a blob under key; Flush persists it. The first
// write of a key in a process wins (cells are deterministic, so a
// second write of the same key is the same tally).
func (s *Store) PutEntry(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	b := append([]byte(nil), blob...)
	s.entries[key] = b
	s.added[key] = b
	s.stats.EntriesAdded++
}

// Flush merges this process's added entries into index.json (reading
// the file again first, so concurrent processes lose no keys) and
// writes it atomically. Safe to call more than once.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.added) == 0 {
		return nil
	}
	path := filepath.Join(s.dir, "index.json")
	merged, err := readIndex(path)
	if err != nil {
		// The on-disk index went corrupt after Open: rebuild from what
		// this process knows rather than failing the teardown.
		merged = nil
	}
	if merged == nil {
		merged = make(map[string][]byte)
	}
	for k, v := range s.added {
		merged[k] = v
	}
	data, err := json.MarshalIndent(indexFile{Version: indexVersion, Entries: merged}, "", " ")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "index-*.tmp")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracestore: writing index: %w", firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracestore: %w", err)
	}
	for k, v := range s.added {
		s.entries[k] = v
	}
	s.added = make(map[string][]byte)
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// tracePath maps a payload digest to its file.
func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, "tr-"+digest+".trace")
}

// PutTrace writes the recording's wire form as a content-addressed
// trace file and returns its digest. A file that already exists is
// left alone — same digest, same bytes.
func (s *Store) PutTrace(r *trace.Recording) (string, error) {
	payload := r.MarshalWire(nil)
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	path := s.tracePath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	tmp, err := os.CreateTemp(s.dir, "tr-*.tmp")
	if err != nil {
		return "", fmt.Errorf("tracestore: %w", err)
	}
	_, werr := tmp.Write([]byte(traceMagic))
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("tracestore: writing trace: %w", firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("tracestore: %w", err)
	}
	s.mu.Lock()
	s.stats.TracesWritten++
	s.mu.Unlock()
	return digest, nil
}

// GetTrace loads the recording stored under digest. The payload is
// re-hashed and checked against both the requested digest and the
// embedded one before any parsing, so a corrupt, truncated or
// mis-named file errors out cleanly. A missing file returns
// (nil, nil) — absence is a cache miss, not a failure.
func (s *Store) GetTrace(digest string) (*trace.Recording, error) {
	if len(digest) != 2*sha256.Size || !isHex(digest) {
		return nil, fmt.Errorf("tracestore: malformed trace digest %q", digest)
	}
	data, err := os.ReadFile(s.tracePath(digest))
	if os.IsNotExist(err) {
		s.countTrace(false)
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	header := len(traceMagic) + sha256.Size
	if len(data) < header || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("tracestore: trace %s: bad header", digest)
	}
	payload := data[header:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, fmt.Errorf("tracestore: trace %s: payload digest mismatch", digest)
	}
	embedded := data[len(traceMagic):header]
	for i, b := range sum {
		if embedded[i] != b {
			return nil, fmt.Errorf("tracestore: trace %s: embedded digest mismatch", digest)
		}
	}
	rec, err := trace.UnmarshalWire(payload)
	if err != nil {
		return nil, fmt.Errorf("tracestore: trace %s: %w", digest, err)
	}
	s.countTrace(true)
	return rec, nil
}

func (s *Store) countTrace(hit bool) {
	s.mu.Lock()
	if hit {
		s.stats.TraceHits++
	} else {
		s.stats.TraceMisses++
	}
	s.mu.Unlock()
}

func isHex(s string) bool {
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// KeyHash condenses arbitrary key material into the fixed-width hex
// string the index and file names use.
func KeyHash(material string) string {
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}
