// Package tracestore is the persistent half of the record-once/
// replay-many discipline: a content-addressed on-disk store of
// compressed recordings plus a small key→blob index for memoized cell
// tallies and post-warm-up pipeline snapshots. It is what lets a grid
// run begin hot — a process restart (or a CI run restoring a cached
// directory) replays and memoizes from disk instead of re-executing
// every cell from zero.
//
// Layout under the store directory:
//
//	tr-<hex sha256>.trace  one recording: magic, embedded digest, then
//	                       the trace wire payload (framed columnar
//	                       chunks, see trace.MarshalWire). The file
//	                       name is the payload digest, so identical
//	                       streams dedupe and corruption is detected
//	                       by re-hashing on load.
//	index.json             the entry index: opaque caller blobs keyed
//	                       by caller strings (the harness keys carry
//	                       the emission key, config hash, warm-up
//	                       count and stream-schema token).
//
// The store never interprets entry blobs; the harness serializes its
// own tallies and snapshots. Loaded recordings draw their chunk
// buffers from the shared trace free lists, so a warm start streams
// into the same arenas capture uses. Every load path validates before
// trusting: corrupt or truncated files return errors (never panic)
// and leak nothing, which FuzzStoreLoad pins.
//
// Because the store is a cache, it degrades instead of dying:
//
//   - Transient I/O errors are retried a bounded number of times with
//     exponential backoff before being reported.
//   - A trace file that fails validation is quarantined — renamed to
//     <name>.corrupt — so the next lookup is a clean miss and the
//     recompute path rewrites a good copy under the same digest. The
//     load that hit the corruption still returns its error; callers
//     already treat load errors as misses.
//   - A write that still fails after retries flips the store
//     read-only: later writes return ErrReadOnly immediately rather
//     than hammering an unwritable directory, while reads (and the
//     in-memory entry map) keep serving.
//
// All degraded-mode transitions are counted in Stats and, in tests,
// driven deterministically through an injected faults.Injector.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"wheretime/internal/faults"
	"wheretime/internal/trace"
)

// traceMagic heads every trace file; indexVersion tags index.json.
const (
	traceMagic   = "WTSTOR1\n"
	indexVersion = 1
)

// Bounded retry for file I/O: a failed operation is attempted at most
// retryAttempts times in total, sleeping retryBaseDelay<<(attempt-1)
// between tries.
const (
	retryAttempts  = 3
	retryBaseDelay = 2 * time.Millisecond
)

// ErrReadOnly is returned by write paths after a previous write
// exhausted its retries: the directory is treated as unwritable and
// the store keeps serving reads and in-memory entries only.
var ErrReadOnly = errors.New("tracestore: store is read-only after a failed write")

// ErrCorruptIndex marks an index.json that exists but cannot be
// trusted — unparseable JSON or an unknown version. OpenRecovering
// quarantines such an index; plain Open reports it.
var ErrCorruptIndex = errors.New("tracestore: corrupt index")

// Stats counts store traffic for the warm-start log line, plus the
// degraded-mode transitions operators watch: bounded retries taken,
// files quarantined, writes abandoned, and whether the store has
// fallen back to read-only.
type Stats struct {
	EntryHits     int
	EntryMisses   int
	TraceHits     int
	TraceMisses   int
	TracesWritten int
	EntriesAdded  int

	Retries       int
	Quarantined   int
	WriteFailures int
	ReadOnly      bool
}

// Store is an open store directory. It is safe for concurrent use by
// the grid's workers: one Store instance is shared per Measure run,
// entries accumulate in memory, and Flush merges them into index.json
// at teardown.
type Store struct {
	dir string
	inj *faults.Injector // nil outside fault-injection tests

	mu      sync.Mutex
	entries map[string][]byte // loaded index plus this process's additions
	added   map[string][]byte // additions only, merged on Flush
	stats   Stats

	// Degraded-mode counters are atomics, not under mu: the write
	// helper bumps them while Flush already holds mu.
	retries       atomic.Int64
	quarantined   atomic.Int64
	writeFailures atomic.Int64
	readOnly      atomic.Bool
}

// indexFile is the JSON shape of index.json.
type indexFile struct {
	Version int               `json:"version"`
	Entries map[string][]byte `json:"entries"`
}

// Open opens (creating if needed) a store directory and loads its
// index. A corrupt index is an error — a cache that cannot be trusted
// must not be silently treated as empty, the caller decides.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:     dir,
		entries: make(map[string][]byte),
		added:   make(map[string][]byte),
	}
	idx, err := s.readIndexFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	if idx != nil {
		s.entries = idx
	}
	return s, nil
}

// OpenRecovering is Open for long-lived services: a corrupt index is
// quarantined (renamed to index.json.corrupt) and the store reopened
// empty, so a damaged cache costs recomputation, not availability.
// Errors other than index corruption — an uncreatable directory, an
// unreadable file — are still returned.
func OpenRecovering(dir string) (*Store, error) {
	s, err := Open(dir)
	if err == nil || !errors.Is(err, ErrCorruptIndex) {
		return s, err
	}
	path := filepath.Join(dir, "index.json")
	if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
		return nil, err
	}
	s, rerr := Open(dir)
	if rerr != nil {
		return nil, rerr
	}
	s.quarantined.Add(1)
	return s, nil
}

// SetFaults installs a fault injector on the store's file operations.
// Test-only; install before the store is shared across goroutines.
func (s *Store) SetFaults(inj *faults.Injector) { s.inj = inj }

// retryIO runs f up to retryAttempts times, backing off between
// tries. A missing file is never retried — absence is a stable
// answer, not a transient fault.
func (s *Store) retryIO(f func() error) error {
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBaseDelay << (attempt - 1))
			s.retries.Add(1)
		}
		if err = f(); err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return err
}

// readFile is os.ReadFile behind the retry loop and the fault
// injector's read hooks.
func (s *Store) readFile(path string) ([]byte, error) {
	var data []byte
	err := s.retryIO(func() error {
		if err := s.inj.Apply(faults.OpRead, path); err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s.inj.Transform(faults.OpRead, path, data), nil
}

// writeFileAtomic writes chunks to path via a temp file and rename,
// behind the retry loop and the injector's write hooks. Exhausting
// the retries counts a write failure and flips the store read-only.
func (s *Store) writeFileAtomic(pattern, path string, chunks ...[]byte) error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	err := s.retryIO(func() error {
		if err := s.inj.Apply(faults.OpWrite, path); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.dir, pattern)
		if err != nil {
			return err
		}
		var werr error
		for _, c := range chunks {
			if werr == nil {
				_, werr = tmp.Write(c)
			}
		}
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			return firstErr(werr, cerr)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	})
	if err != nil {
		s.writeFailures.Add(1)
		s.readOnly.Store(true)
		return fmt.Errorf("tracestore: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// quarantine renames a file that failed validation to <path>.corrupt,
// so the next lookup misses cleanly and the recompute path can write
// a fresh copy under the original name. Best-effort: on a rename
// failure the file stays, and the caller's error already tells the
// operator the store is unhealthy.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err == nil {
		s.quarantined.Add(1)
	}
}

// readIndexFile loads and validates one index file; a missing file is
// (nil, nil).
func (s *Store) readIndexFile(path string) (map[string][]byte, error) {
	data, err := s.readFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("%w %s: %v", ErrCorruptIndex, path, err)
	}
	if idx.Version != indexVersion {
		return nil, fmt.Errorf("%w %s: version %d, want %d", ErrCorruptIndex, path, idx.Version, indexVersion)
	}
	if idx.Entries == nil {
		idx.Entries = make(map[string][]byte)
	}
	return idx.Entries, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store has fallen back to read-only
// after a failed write.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// Stats returns a copy of the traffic and degraded-mode counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Retries = int(s.retries.Load())
	st.Quarantined = int(s.quarantined.Load())
	st.WriteFailures = int(s.writeFailures.Load())
	st.ReadOnly = s.readOnly.Load()
	return st
}

// GetEntry returns the blob stored under key, if any.
func (s *Store) GetEntry(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.entries[key]
	if ok {
		s.stats.EntryHits++
	} else {
		s.stats.EntryMisses++
	}
	return b, ok
}

// PutEntry stages a blob under key; Flush persists it. The first
// write of a key in a process wins (cells are deterministic, so a
// second write of the same key is the same tally).
func (s *Store) PutEntry(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	b := append([]byte(nil), blob...)
	s.entries[key] = b
	s.added[key] = b
	s.stats.EntriesAdded++
}

// Flush merges this process's added entries into index.json (reading
// the file again first, so concurrent processes lose no keys) and
// writes it atomically. Safe to call more than once. A read-only
// store returns ErrReadOnly and keeps the additions staged in memory.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.added) == 0 {
		return nil
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	path := filepath.Join(s.dir, "index.json")
	merged, err := s.readIndexFile(path)
	if err != nil {
		// The on-disk index went corrupt after Open: rebuild from what
		// this process knows rather than failing the teardown.
		merged = nil
	}
	if merged == nil {
		merged = make(map[string][]byte)
	}
	for k, v := range s.added {
		merged[k] = v
	}
	data, err := json.MarshalIndent(indexFile{Version: indexVersion, Entries: merged}, "", " ")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := s.writeFileAtomic("index-*.tmp", path, append(data, '\n')); err != nil {
		return err
	}
	for k, v := range s.added {
		s.entries[k] = v
	}
	s.added = make(map[string][]byte)
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// tracePath maps a payload digest to its file.
func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, "tr-"+digest+".trace")
}

// PutTrace writes the recording's wire form as a content-addressed
// trace file and returns its digest. A file that already exists is
// left alone — same digest, same bytes. A read-only store returns
// ErrReadOnly.
func (s *Store) PutTrace(r *trace.Recording) (string, error) {
	if s.readOnly.Load() {
		return "", ErrReadOnly
	}
	payload := r.MarshalWire(nil)
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	path := s.tracePath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	if err := s.writeFileAtomic("tr-*.tmp", path, []byte(traceMagic), sum[:], payload); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.stats.TracesWritten++
	s.mu.Unlock()
	return digest, nil
}

// GetTrace loads the recording stored under digest. The payload is
// re-hashed and checked against both the requested digest and the
// embedded one before any parsing, so a corrupt, truncated or
// mis-named file errors out cleanly. A missing file returns
// (nil, nil) — absence is a cache miss, not a failure. A file that
// fails validation is quarantined (renamed to *.corrupt) so the next
// lookup misses and recomputes; the error is still returned.
func (s *Store) GetTrace(digest string) (*trace.Recording, error) {
	if len(digest) != 2*sha256.Size || !isHex(digest) {
		return nil, fmt.Errorf("tracestore: malformed trace digest %q", digest)
	}
	path := s.tracePath(digest)
	data, err := s.readFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.countTrace(false)
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	header := len(traceMagic) + sha256.Size
	if len(data) < header || string(data[:len(traceMagic)]) != traceMagic {
		s.quarantine(path)
		return nil, fmt.Errorf("tracestore: trace %s: bad header", digest)
	}
	payload := data[header:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != digest {
		s.quarantine(path)
		return nil, fmt.Errorf("tracestore: trace %s: payload digest mismatch", digest)
	}
	embedded := data[len(traceMagic):header]
	for i, b := range sum {
		if embedded[i] != b {
			s.quarantine(path)
			return nil, fmt.Errorf("tracestore: trace %s: embedded digest mismatch", digest)
		}
	}
	rec, err := trace.UnmarshalWire(payload)
	if err != nil {
		s.quarantine(path)
		return nil, fmt.Errorf("tracestore: trace %s: %w", digest, err)
	}
	s.countTrace(true)
	return rec, nil
}

func (s *Store) countTrace(hit bool) {
	s.mu.Lock()
	if hit {
		s.stats.TraceHits++
	} else {
		s.stats.TraceMisses++
	}
	s.mu.Unlock()
}

func isHex(s string) bool {
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// KeyHash condenses arbitrary key material into the fixed-width hex
// string the index and file names use.
func KeyHash(material string) string {
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}
