package tracestore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"wheretime/internal/faults"
	"wheretime/internal/trace"
)

var errDisk = errors.New("injected disk error")

// TestRetryTransientRead: a read that fails twice and then succeeds
// is absorbed by the bounded retry loop — the caller sees a clean hit
// and the stats record the retries taken.
func TestRetryTransientRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := captureRecording(200)
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	inj := faults.New()
	inj.FailN(faults.OpRead, retryAttempts-1, errDisk)
	s.SetFaults(inj)
	got, err := s.GetTrace(digest)
	if err != nil || got == nil {
		t.Fatalf("GetTrace after transient faults: %v (rec=%v)", err, got != nil)
	}
	got.Release()
	rec.Release()
	if st := s.Stats(); st.Retries < retryAttempts-1 {
		t.Errorf("Stats.Retries = %d, want >= %d", st.Retries, retryAttempts-1)
	}
	if s.ReadOnly() {
		t.Error("store went read-only on a read fault")
	}
}

// TestRetryTransientWrite: same shape on the write path — a flush that
// fails twice still lands, and the store stays writable.
func TestRetryTransientWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	inj := faults.New()
	inj.FailN(faults.OpWrite, retryAttempts-1, errDisk)
	s.SetFaults(inj)
	s.PutEntry("k", []byte("v"))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush with transient faults: %v", err)
	}
	if s.ReadOnly() {
		t.Error("store went read-only after a recovered write")
	}
	// The flush really landed: a fresh store sees the entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if b, ok := s2.GetEntry("k"); !ok || string(b) != "v" {
		t.Errorf("entry after retried flush = %q, %v", b, ok)
	}
}

// TestQuarantineCorruptTrace pins the quarantine cycle: a trace whose
// bytes rot on disk errors once, gets renamed aside, misses cleanly on
// the next lookup, and a recompute rewrites a good copy under the same
// digest. No trace buffers leak across the whole cycle.
func TestQuarantineCorruptTrace(t *testing.T) {
	c0, e0, b0 := trace.LiveBuffers()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := captureRecording(300)
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	path := s.tracePath(digest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace file: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt trace file: %v", err)
	}

	if _, err := s.GetTrace(digest); err == nil {
		t.Fatal("GetTrace returned nil error for a corrupt file")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}

	// Quarantine turned the corruption into a miss ...
	if got, err := s.GetTrace(digest); err != nil || got != nil {
		t.Fatalf("GetTrace after quarantine = %v, %v; want miss", got, err)
	}
	// ... and the recompute path can rewrite the same digest.
	d2, err := s.PutTrace(rec)
	if err != nil || d2 != digest {
		t.Fatalf("re-put after quarantine: %s, %v; want %s", d2, err, digest)
	}
	got, err := s.GetTrace(digest)
	if err != nil || got == nil {
		t.Fatalf("GetTrace after rewrite: %v", err)
	}
	got.Release()
	rec.Release()
	if c, e, b := trace.LiveBuffers(); c != c0 || e != e0 || b != b0 {
		t.Errorf("leaked buffers: chunks %d->%d encBufs %d->%d blocks %d->%d", c0, c, e0, e, b0, b)
	}
}

// TestInjectedCorruptionQuarantines drives the same path through the
// injector's data hook instead of rewriting the file by hand.
func TestInjectedCorruptionQuarantines(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := captureRecording(150)
	defer rec.Release()
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}
	inj := faults.New()
	inj.CorruptN(faults.OpRead, 1, func(b []byte) []byte {
		if len(b) > 0 {
			b[len(b)-1] ^= 0xff
		}
		return b
	})
	s.SetFaults(inj)
	if _, err := s.GetTrace(digest); err == nil {
		t.Fatal("GetTrace returned nil error for injected corruption")
	}
	if inj.Fired(faults.OpRead) != 1 {
		t.Errorf("corruption rule fired %d times, want 1", inj.Fired(faults.OpRead))
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestReadOnlyFallback: a write that exhausts its retries flips the
// store read-only — later writes fail fast with ErrReadOnly, reads and
// the in-memory entries keep serving, and the stats say what happened.
func TestReadOnlyFallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := captureRecording(100)
	defer rec.Release()
	digest, err := s.PutTrace(rec)
	if err != nil {
		t.Fatalf("PutTrace: %v", err)
	}

	inj := faults.New()
	inj.FailN(faults.OpWrite, -1, errDisk) // the directory is gone for good
	s.SetFaults(inj)
	s.PutEntry("k", []byte("v"))
	if err := s.Flush(); !errors.Is(err, errDisk) {
		t.Fatalf("Flush = %v, want the injected disk error", err)
	}
	if !s.ReadOnly() {
		t.Fatal("store not read-only after exhausted write retries")
	}
	if err := s.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("second Flush = %v, want ErrReadOnly", err)
	}
	if _, err := s.PutTrace(rec); !errors.Is(err, ErrReadOnly) {
		t.Errorf("PutTrace on read-only store = %v, want ErrReadOnly", err)
	}

	// Reads keep serving.
	if b, ok := s.GetEntry("k"); !ok || string(b) != "v" {
		t.Errorf("in-memory entry lost in read-only mode: %q, %v", b, ok)
	}
	got, err := s.GetTrace(digest)
	if err != nil || got == nil {
		t.Fatalf("GetTrace in read-only mode: %v", err)
	}
	got.Release()

	st := s.Stats()
	if st.WriteFailures < 1 || !st.ReadOnly {
		t.Errorf("Stats = %+v, want WriteFailures>=1 and ReadOnly", st)
	}
}

// TestOpenRecovering: plain Open refuses a corrupt index; the
// recovering variant quarantines it and serves an empty store.
func TestOpenRecovering(t *testing.T) {
	dir := t.TempDir()
	idx := filepath.Join(dir, "index.json")
	if err := os.WriteFile(idx, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("write corrupt index: %v", err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("Open = %v, want ErrCorruptIndex", err)
	}
	s, err := OpenRecovering(dir)
	if err != nil {
		t.Fatalf("OpenRecovering: %v", err)
	}
	if _, err := os.Stat(idx + ".corrupt"); err != nil {
		t.Errorf("quarantined index missing: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	// The store is usable: a flush writes a fresh index.
	s.PutEntry("k", []byte("v"))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if _, err := Open(dir); err != nil {
		t.Errorf("reopen after recovery: %v", err)
	}

	// On a healthy directory OpenRecovering is just Open.
	s2, err := OpenRecovering(dir)
	if err != nil {
		t.Fatalf("OpenRecovering on healthy dir: %v", err)
	}
	if b, ok := s2.GetEntry("k"); !ok || string(b) != "v" {
		t.Errorf("healthy OpenRecovering lost entry: %q, %v", b, ok)
	}
	if st := s2.Stats(); st.Quarantined != 0 {
		t.Errorf("healthy OpenRecovering counted %d quarantines", st.Quarantined)
	}
}
