package storage

import "fmt"

// BufferPool owns every page of the memory-resident database and
// assigns page identifiers (and with them, simulated heap addresses).
// The paper configures each DBMS with a pool large enough that no I/O
// occurs; likewise the pool here never evicts. It still counts
// fix/unfix traffic so the engines can charge buffer-manager work per
// page access.
//
// The fix counter makes Get a write, so a pool (and the databases
// built over it) must not be shared between goroutines; the
// concurrent harness builds one pool per worker environment.
type BufferPool struct {
	pages []*Page
	fixes uint64
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool {
	return &BufferPool{}
}

// Allocate creates a new page and returns it.
func (bp *BufferPool) Allocate(layout Layout, recSize int) *Page {
	id := PageID(len(bp.pages))
	pg := NewPage(id, layout, recSize)
	bp.pages = append(bp.pages, pg)
	return pg
}

// Get returns the page with the given id, counting one fix.
func (bp *BufferPool) Get(id PageID) *Page {
	if int(id) >= len(bp.pages) {
		panic(fmt.Sprintf("storage: page %d not in pool (have %d)", id, len(bp.pages)))
	}
	bp.fixes++
	return bp.pages[id]
}

// NumPages returns the number of pages in the pool.
func (bp *BufferPool) NumPages() int { return len(bp.pages) }

// Fixes returns how many page fixes have been counted.
func (bp *BufferPool) Fixes() uint64 { return bp.fixes }

// Bytes returns the total size of the pool in bytes.
func (bp *BufferPool) Bytes() uint64 { return uint64(len(bp.pages)) * PageSize }

// CreateHeap creates an empty heap file backed by this pool.
func (bp *BufferPool) CreateHeap(name string, layout Layout, recSize int) *HeapFile {
	if recSize < MinRecordSize || recSize%FieldSize != 0 {
		panic(fmt.Sprintf("storage: heap %s: bad record size %d", name, recSize))
	}
	return &HeapFile{name: name, pool: bp, layout: layout, recSize: recSize}
}
