package storage

import (
	"testing"
	"testing/quick"

	"wheretime/internal/trace"
)

func TestPageGeometry(t *testing.T) {
	p := NewPage(0, NSM, 100)
	if got := p.Capacity(); got != (PageSize-pageHeaderBytes)/100 {
		t.Errorf("capacity = %d", got)
	}
	if p.Fields() != 25 {
		t.Errorf("fields = %d, want 25", p.Fields())
	}
	if p.RecordSize() != 100 {
		t.Errorf("record size = %d", p.RecordSize())
	}
}

func TestNewPageRejectsBadSizes(t *testing.T) {
	for _, sz := range []int{0, 8, 10, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("record size %d should panic", sz)
				}
			}()
			NewPage(0, NSM, sz)
		}()
	}
}

func TestInsertAndRead(t *testing.T) {
	for _, layout := range []Layout{NSM, PAX} {
		p := NewPage(3, layout, 100)
		s1, ok := p.Insert([]int32{1, 20, 300})
		if !ok || s1 != 0 {
			t.Fatalf("%v: first insert slot=%d ok=%v", layout, s1, ok)
		}
		s2, _ := p.Insert([]int32{2, 40, 600, 7})
		if p.Field(s1, 0) != 1 || p.Field(s1, 1) != 20 || p.Field(s1, 2) != 300 {
			t.Errorf("%v: record 1 fields wrong", layout)
		}
		if p.Field(s2, 3) != 7 || p.Field(s2, 4) != 0 {
			t.Errorf("%v: record 2 trailing fields wrong", layout)
		}
		p.SetField(s2, 1, 99)
		if p.Field(s2, 1) != 99 {
			t.Errorf("%v: SetField did not stick", layout)
		}
		if p.NumRecords() != 2 {
			t.Errorf("%v: NumRecords = %d", layout, p.NumRecords())
		}
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := NewPage(0, NSM, 100)
	n := 0
	for {
		if _, ok := p.Insert([]int32{int32(n)}); !ok {
			break
		}
		n++
	}
	if n != p.Capacity() {
		t.Errorf("inserted %d, capacity %d", n, p.Capacity())
	}
	if !p.Full() {
		t.Error("page should be full")
	}
}

func TestInsertTooManyFieldsFails(t *testing.T) {
	p := NewPage(0, NSM, 12)
	if _, ok := p.Insert([]int32{1, 2, 3, 4}); ok {
		t.Error("4 fields into a 3-field record should fail")
	}
}

func TestNSMAddresses(t *testing.T) {
	p := NewPage(2, NSM, 100)
	p.Insert([]int32{1, 2, 3})
	p.Insert([]int32{4, 5, 6})
	base := PageID(2).Addr()
	if p.HeaderAddr() != base {
		t.Errorf("header at %#x, want %#x", p.HeaderAddr(), base)
	}
	// NSM: record s at header + s*recSize, field f at +f*4.
	if got, want := p.FieldAddr(1, 1), base+uint64(pageHeaderBytes+100+4); got != want {
		t.Errorf("FieldAddr(1,1) = %#x, want %#x", got, want)
	}
	// Consecutive records' a2 fields are recSize apart: different
	// cache lines for 100-byte records.
	d := p.FieldAddr(1, 1) - p.FieldAddr(0, 1)
	if d != 100 {
		t.Errorf("NSM a2 stride = %d, want 100", d)
	}
}

func TestPAXAddresses(t *testing.T) {
	p := NewPage(1, PAX, 100)
	for i := 0; i < 10; i++ {
		p.Insert([]int32{int32(i), int32(i * 10), int32(i * 100)})
	}
	// PAX: consecutive records' a2 values are adjacent (4 bytes apart):
	// eight per 32-byte line.
	d := p.FieldAddr(1, 1) - p.FieldAddr(0, 1)
	if d != FieldSize {
		t.Errorf("PAX a2 stride = %d, want %d", d, FieldSize)
	}
	// Values still read back correctly.
	if p.Field(7, 1) != 70 || p.Field(7, 2) != 700 {
		t.Error("PAX values wrong")
	}
	// Different fields live in different minipages.
	if p.FieldAddr(0, 2)-p.FieldAddr(0, 1) != uint64(p.Capacity()*FieldSize) {
		t.Error("PAX minipages misplaced")
	}
}

func TestPageAddressSpace(t *testing.T) {
	if PageID(0).Addr() != trace.HeapBase {
		t.Error("page 0 should start the heap segment")
	}
	if PageID(5).Addr()-PageID(4).Addr() != PageSize {
		t.Error("pages should be PageSize apart")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := NewPage(0, NSM, 12)
	p.Insert([]int32{1, 2, 3})
	cases := []func(){
		func() { p.Field(1, 0) },
		func() { p.Field(0, 3) },
		func() { p.SetField(5, 0, 1) },
		func() { p.FieldAddr(0, 99) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHeapFileAppendScan(t *testing.T) {
	bp := NewBufferPool()
	h := bp.CreateHeap("R", NSM, 100)
	const n = 500
	for i := 0; i < n; i++ {
		rid := h.Append([]int32{int32(i), int32(i % 7), int32(i * 3)})
		if got := h.Get(rid).Field(rid.Slot, 0); got != int32(i) {
			t.Fatalf("record %d readback = %d", i, got)
		}
	}
	if h.NumRecords() != n {
		t.Errorf("NumRecords = %d, want %d", h.NumRecords(), n)
	}
	wantPages := (n + 80) / 81 // capacity (8192-32)/100 = 81
	if h.NumPages() != wantPages {
		t.Errorf("NumPages = %d, want %d", h.NumPages(), wantPages)
	}
	seen := 0
	h.Scan(func(pg *Page) bool {
		seen += pg.NumRecords()
		return true
	})
	if seen != n {
		t.Errorf("scan saw %d records, want %d", seen, n)
	}
	// Early termination.
	pages := 0
	h.Scan(func(pg *Page) bool {
		pages++
		return false
	})
	if pages != 1 {
		t.Errorf("early-terminated scan visited %d pages", pages)
	}
}

func TestBufferPoolAccounting(t *testing.T) {
	bp := NewBufferPool()
	h := bp.CreateHeap("R", NSM, 100)
	rid := h.Append([]int32{1, 2, 3})
	before := bp.Fixes()
	bp.Get(rid.Page)
	if bp.Fixes() != before+1 {
		t.Error("Get should count a fix")
	}
	if bp.Bytes() != uint64(bp.NumPages())*PageSize {
		t.Error("Bytes inconsistent")
	}
}

func TestBufferPoolGetOutOfRangePanics(t *testing.T) {
	bp := NewBufferPool()
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown page should panic")
		}
	}()
	bp.Get(42)
}

func TestCreateHeapRejectsBadRecordSize(t *testing.T) {
	bp := NewBufferPool()
	defer func() {
		if recover() == nil {
			t.Error("bad record size should panic")
		}
	}()
	bp.CreateHeap("bad", NSM, 7)
}

// Property: for both layouts, any sequence of inserted records reads
// back unchanged, and every field address is unique and within the
// page.
func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(recs [][3]int32, usePAX bool) bool {
		layout := NSM
		if usePAX {
			layout = PAX
		}
		p := NewPage(7, layout, 24)
		if len(recs) > p.Capacity() {
			recs = recs[:p.Capacity()]
		}
		for _, r := range recs {
			if _, ok := p.Insert(r[:]); !ok {
				return false
			}
		}
		addrs := map[uint64]bool{}
		for s, r := range recs {
			for f := 0; f < 3; f++ {
				if p.Field(uint16(s), f) != r[f] {
					return false
				}
				a := p.FieldAddr(uint16(s), f)
				if a < p.HeaderAddr() || a >= p.HeaderAddr()+PageSize || addrs[a] {
					return false
				}
				addrs[a] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutString(t *testing.T) {
	if NSM.String() != "NSM" || PAX.String() != "PAX" {
		t.Error("layout names wrong")
	}
}
