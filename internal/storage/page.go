// Package storage implements the memory-resident storage manager the
// queries run over: fixed-size pages holding fixed-length records,
// heap files, and a buffer pool sized to hold the whole database
// (Section 4.2: "the buffer pool size was large enough to fit the
// datasets for all the queries").
//
// Every page has both real contents (records whose field values the
// engines actually read and aggregate) and a simulated address in the
// heap segment, so an access to a field yields the exact byte address
// the cache simulator should see.
//
// Two page layouts are provided:
//
//   - NSM (N-ary storage model): records stored contiguously, the
//     slotted row layout of conventional engines. Reading one field of
//     every record touches one cache line per record once records are
//     wider than a line.
//   - PAX (partition attributes across): each page groups the values
//     of one field together in a minipage. Reading one field of every
//     record touches one line per eight records (32-byte lines, 4-byte
//     values) — the cache-conscious placement that gives the paper's
//     System B its 2% L2 data miss rate.
package storage

import (
	"encoding/binary"
	"fmt"

	"wheretime/internal/trace"
)

// PageSize is the size of a database page in bytes.
const PageSize = 8192

// pageHeaderBytes is the space reserved at the start of each page for
// the page header (LSN, slot count, free-space pointers).
const pageHeaderBytes = 32

// FieldSize is the width of every record field in bytes. The paper's
// table R is a row of integers: a1, a2, a3 and <rest of fields>.
const FieldSize = 4

// MinRecordSize is the smallest legal record: the three named fields.
const MinRecordSize = 3 * FieldSize

// Layout selects how records are arranged within a page.
type Layout int

const (
	// NSM stores whole records contiguously (row store).
	NSM Layout = iota
	// PAX partitions each field into its own minipage within the page.
	PAX
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case NSM:
		return "NSM"
	case PAX:
		return "PAX"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// PageID identifies a page within the buffer pool's address space.
type PageID uint32

// Addr returns the simulated base address of the page.
func (id PageID) Addr() uint64 { return trace.HeapBase + uint64(id)*PageSize }

// RID identifies a record by page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Page is one fixed-size database page.
type Page struct {
	id      PageID
	layout  Layout
	recSize int // bytes per record
	fields  int // fields per record
	cap     int // record capacity
	n       int // records present
	buf     []byte
}

// NewPage allocates an empty page for records of recSize bytes
// (a multiple of FieldSize, at least MinRecordSize).
func NewPage(id PageID, layout Layout, recSize int) *Page {
	if recSize < MinRecordSize || recSize%FieldSize != 0 {
		panic(fmt.Sprintf("storage: record size %d must be a multiple of %d and at least %d",
			recSize, FieldSize, MinRecordSize))
	}
	return &Page{
		id:      id,
		layout:  layout,
		recSize: recSize,
		fields:  recSize / FieldSize,
		cap:     (PageSize - pageHeaderBytes) / recSize,
		buf:     make([]byte, PageSize),
	}
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Layout returns the page's record layout.
func (p *Page) Layout() Layout { return p.layout }

// Capacity returns how many records the page can hold.
func (p *Page) Capacity() int { return p.cap }

// NumRecords returns how many records the page holds.
func (p *Page) NumRecords() int { return p.n }

// RecordSize returns the record size in bytes.
func (p *Page) RecordSize() int { return p.recSize }

// Fields returns the number of fields per record.
func (p *Page) Fields() int { return p.fields }

// Full reports whether the page has no free slot.
func (p *Page) Full() bool { return p.n >= p.cap }

// fieldOffset returns the byte offset within the page of field f of
// the record in slot s.
func (p *Page) fieldOffset(s, f int) int {
	if p.layout == PAX {
		// Minipage f holds cap values of field f.
		return pageHeaderBytes + (f*p.cap+s)*FieldSize
	}
	return pageHeaderBytes + s*p.recSize + f*FieldSize
}

// Insert appends a record (one int32 per field; missing trailing
// fields are zero-filled) and returns its slot. It reports false when
// the page is full or the record has too many fields.
func (p *Page) Insert(values []int32) (slot uint16, ok bool) {
	if p.Full() || len(values) > p.fields {
		return 0, false
	}
	s := p.n
	p.n++
	for f, v := range values {
		off := p.fieldOffset(s, f)
		binary.LittleEndian.PutUint32(p.buf[off:], uint32(v))
	}
	return uint16(s), true
}

// Field returns the value of field f of the record in slot s.
func (p *Page) Field(s uint16, f int) int32 {
	p.check(s, f)
	off := p.fieldOffset(int(s), f)
	return int32(binary.LittleEndian.Uint32(p.buf[off:]))
}

// SetField overwrites field f of the record in slot s (used by the
// update transactions of the TPC-C workload).
func (p *Page) SetField(s uint16, f int, v int32) {
	p.check(s, f)
	off := p.fieldOffset(int(s), f)
	binary.LittleEndian.PutUint32(p.buf[off:], uint32(v))
}

// FieldAddr returns the simulated byte address of field f of the
// record in slot s — what the processor's load unit sees.
func (p *Page) FieldAddr(s uint16, f int) uint64 {
	p.check(s, f)
	return p.id.Addr() + uint64(p.fieldOffset(int(s), f))
}

// RecordAddr returns the simulated address of the start of the record
// in slot s. Under PAX a record has no contiguous image; the address
// of its first field is returned.
func (p *Page) RecordAddr(s uint16) uint64 { return p.FieldAddr(s, 0) }

// HeaderAddr returns the simulated address of the page header.
func (p *Page) HeaderAddr() uint64 { return p.id.Addr() }

// TouchRecord appends the data accesses of materialising the record in
// slot s into an event buffer — the storage half of record
// materialisation, generating the exact byte addresses the load unit
// sees.
//
// NSM pages behave like real slotted pages: the engine reads the
// record's slot entry from the directory at the page's end, then
// copies the whole record — so wide records touch several cache lines
// even when the query needs two fields, the effect behind the
// record-size sensitivity of Section 5.2.1.
//
// PAX pages touch only the requested columns' minipage positions: the
// cache-conscious placement that keeps System B's L2 data miss rate
// near 2% on sequential scans.
func (p *Page) TouchRecord(buf *trace.Buffer, s uint16, cols ...int) {
	if p.layout == NSM {
		// Slot directory entry (2 bytes per slot, growing from the
		// page's end).
		slotAddr := p.id.Addr() + PageSize - 2*uint64(s+1)
		buf.Load(slotAddr, 2)
		buf.Load(p.RecordAddr(s), uint32(p.recSize))
		return
	}
	for _, c := range cols {
		buf.Load(p.FieldAddr(s, c), FieldSize)
	}
}

func (p *Page) check(s uint16, f int) {
	if int(s) >= p.n || f >= p.fields {
		panic(fmt.Sprintf("storage: page %d: slot %d field %d out of range (%d records, %d fields)",
			p.id, s, f, p.n, p.fields))
	}
}
