package storage

import "fmt"

// HeapFile is an unordered collection of pages holding one relation.
// Pages are allocated from the owning buffer pool as records arrive.
type HeapFile struct {
	name    string
	pool    *BufferPool
	layout  Layout
	recSize int
	pages   []PageID
	n       uint64
}

// Name returns the relation name.
func (h *HeapFile) Name() string { return h.name }

// Layout returns the file's page layout.
func (h *HeapFile) Layout() Layout { return h.layout }

// RecordSize returns the record size in bytes.
func (h *HeapFile) RecordSize() int { return h.recSize }

// NumRecords returns the number of records in the file.
func (h *HeapFile) NumRecords() uint64 { return h.n }

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// PageIDs returns the file's pages in allocation (scan) order. The
// returned slice is owned by the heap file; callers must not modify it.
func (h *HeapFile) PageIDs() []PageID { return h.pages }

// Append inserts a record at the end of the file and returns its RID.
func (h *HeapFile) Append(values []int32) RID {
	var pg *Page
	if len(h.pages) > 0 {
		pg = h.pool.Get(h.pages[len(h.pages)-1])
	}
	if pg == nil || pg.Full() {
		pg = h.pool.Allocate(h.layout, h.recSize)
		h.pages = append(h.pages, pg.ID())
	}
	slot, ok := pg.Insert(values)
	if !ok {
		panic(fmt.Sprintf("storage: heap %s: insert into fresh page failed", h.name))
	}
	h.n++
	return RID{Page: pg.ID(), Slot: slot}
}

// Get returns the page holding the given RID's record.
func (h *HeapFile) Get(rid RID) *Page { return h.pool.Get(rid.Page) }

// Scan calls fn for every page of the file in order, stopping early if
// fn returns false.
func (h *HeapFile) Scan(fn func(*Page) bool) {
	for _, id := range h.pages {
		if !fn(h.pool.Get(id)) {
			return
		}
	}
}
