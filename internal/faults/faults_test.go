package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Apply(OpRead, "x"); err != nil {
		t.Errorf("nil Apply = %v", err)
	}
	data := []byte{1, 2, 3}
	if got := in.Transform(OpWrite, "x", data); &got[0] != &data[0] {
		t.Error("nil Transform did not pass the slice through")
	}
	if in.Fired(OpWorker) != 0 {
		t.Error("nil Fired != 0")
	}
}

func TestFailNConsumesShots(t *testing.T) {
	errBoom := errors.New("boom")
	in := New()
	in.FailN(OpRead, 2, errBoom)
	for i := 0; i < 2; i++ {
		if err := in.Apply(OpRead, "f"); !errors.Is(err, errBoom) {
			t.Fatalf("shot %d: %v, want boom", i, err)
		}
	}
	if err := in.Apply(OpRead, "f"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
	if got := in.Fired(OpRead); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
	// Other ops are untouched.
	if err := in.Apply(OpWrite, "f"); err != nil {
		t.Errorf("unarmed op fired: %v", err)
	}
}

func TestUnlimitedRule(t *testing.T) {
	errBoom := errors.New("boom")
	in := New()
	in.FailN(OpWrite, -1, errBoom)
	for i := 0; i < 10; i++ {
		if err := in.Apply(OpWrite, "f"); !errors.Is(err, errBoom) {
			t.Fatalf("shot %d of an unlimited rule did not fire", i)
		}
	}
}

func TestSlowN(t *testing.T) {
	in := New()
	in.SlowN(OpWorker, 1, 30*time.Millisecond)
	start := time.Now()
	if err := in.Apply(OpWorker, "w"); err != nil {
		t.Fatalf("latency-only rule returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Apply returned after %v, want >= 30ms of injected latency", d)
	}
}

func TestPanicN(t *testing.T) {
	in := New()
	in.PanicN(OpWorker, 1, "worker died")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic did not fire")
			}
		}()
		in.Apply(OpWorker, "w")
	}()
	if err := in.Apply(OpWorker, "w"); err != nil {
		t.Errorf("panic rule fired twice: %v", err)
	}
}

func TestBlockN(t *testing.T) {
	in := New()
	entered, release := in.BlockN(OpWorker, 2)

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- in.Apply(OpWorker, "w") }()
	}
	// Both shots reach the gate and neither Apply returns yet.
	<-entered
	<-entered
	select {
	case err := <-done:
		t.Fatalf("Apply returned %v before release", err)
	default:
	}
	release()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("gated Apply = %v, want nil", err)
		}
	}
	// Exhausted: a third Apply neither signals nor blocks.
	if err := in.Apply(OpWorker, "w"); err != nil {
		t.Errorf("exhausted gate rule fired: %v", err)
	}
	select {
	case <-entered:
		t.Error("exhausted gate signaled entered")
	default:
	}
	release() // idempotent

	// A release before any Apply makes the gate a no-op.
	in2 := New()
	_, release2 := in2.BlockN(OpWorker, 1)
	release2()
	if err := in2.Apply(OpWorker, "w"); err != nil {
		t.Errorf("pre-released gate returned %v", err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("BlockN(-1) did not panic")
			}
		}()
		New().BlockN(OpWorker, -1)
	}()
}

func TestCorruptNCopies(t *testing.T) {
	in := New()
	in.CorruptN(OpRead, 1, func(b []byte) []byte {
		b[0] ^= 0xff
		return b
	})
	orig := []byte{1, 2, 3}
	got := in.Transform(OpRead, "f", orig)
	if orig[0] != 1 {
		t.Error("Transform mutated the caller's slice")
	}
	if got[0] != 1^0xff {
		t.Errorf("corruption not applied: %v", got)
	}
	// Consumed: the next payload passes through untouched.
	if got := in.Transform(OpRead, "f", orig); &got[0] != &orig[0] {
		t.Error("exhausted corruption rule still copied")
	}
	// Corruption rules do not satisfy the control hook.
	in2 := New()
	in2.CorruptN(OpRead, 1, func(b []byte) []byte { return b })
	if err := in2.Apply(OpRead, "f"); err != nil {
		t.Errorf("Apply consumed a corruption rule: %v", err)
	}
	if in2.Fired(OpRead) != 0 {
		t.Error("Apply burned a corruption shot")
	}
}
