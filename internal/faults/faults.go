// Package faults provides deterministic fault injection for the
// robustness suite: an Injector holds consumable rules — errors,
// latency, payload corruption, panics — that instrumented code
// (the tracestore's file operations, the wheretimed worker pool)
// consults at well-defined hook points. Production paths pass a nil
// Injector, which every method treats as "inject nothing", so the
// hooks cost one nil check when faults are off.
//
// Rules are armed per operation with a shot count: FailN(OpRead, 2,
// err) makes the next two reads fail and the third succeed — exactly
// the shape a bounded-retry loop needs to be provoked and then
// satisfied. A count of -1 arms the rule permanently (an unwritable
// disk, not a transient hiccup).
package faults

import (
	"sync"
	"time"
)

// Op names an instrumented operation class.
type Op string

// The operation classes the repository instruments.
const (
	// OpRead covers the trace store's file reads (trace payloads and
	// the entry index).
	OpRead Op = "read"
	// OpWrite covers the trace store's atomic file writes (temp file,
	// write, rename) for traces and the index.
	OpWrite Op = "write"
	// OpWorker covers the wheretimed server's per-flight worker, hooked
	// just before the simulation starts.
	OpWorker Op = "worker"
)

// rule is one armed fault. A rule may combine latency with an error
// or a panic: the delay applies first, then the failure.
type rule struct {
	remaining int // shots left; -1 = unlimited
	delay     time.Duration
	err       error
	panicMsg  string
	corrupt   func([]byte) []byte
	entered   chan struct{} // gate rules: one token per Apply that reached the gate
	gate      chan struct{} // gate rules: Apply blocks here until release closes it
}

// Injector is a set of armed fault rules, safe for concurrent use.
// The zero value is not usable; call New. A nil *Injector is a valid
// no-op injector.
type Injector struct {
	mu    sync.Mutex
	rules map[Op][]*rule
	fired map[Op]int
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{rules: make(map[Op][]*rule), fired: make(map[Op]int)}
}

func (in *Injector) arm(op Op, r *rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[op] = append(in.rules[op], r)
}

// FailN arms op to return err for the next n hook consultations
// (n = -1: every consultation).
func (in *Injector) FailN(op Op, n int, err error) {
	in.arm(op, &rule{remaining: n, err: err})
}

// SlowN arms op to sleep d before proceeding, n times.
func (in *Injector) SlowN(op Op, n int, d time.Duration) {
	in.arm(op, &rule{remaining: n, delay: d})
}

// PanicN arms op to panic with msg, n times — the hook for proving
// panic containment in worker pools.
func (in *Injector) PanicN(op Op, n int, msg string) {
	in.arm(op, &rule{remaining: n, panicMsg: msg})
}

// CorruptN arms op's data path to pass payloads through f, n times.
// f receives its own copy and may mutate it freely.
func (in *Injector) CorruptN(op Op, n int, f func([]byte) []byte) {
	in.arm(op, &rule{remaining: n, corrupt: f})
}

// BlockN arms op to block at the hook, n times, until release is
// called. Each blocked Apply first sends one token on entered, so a
// test can wait for the instrumented path to reach the hook — and
// then act on a perfectly known state — without sleeping; n bounds
// the buffer. release (idempotent) unblocks every current and future
// shot of the rule. This is the deterministic replacement for SlowN
// in tests that need to hold a worker open: SlowN guesses a duration,
// BlockN hands the test explicit before/after control.
func (in *Injector) BlockN(op Op, n int) (entered <-chan struct{}, release func()) {
	if n < 0 {
		panic("faults: BlockN needs a finite shot count to size the entered channel")
	}
	e := make(chan struct{}, n)
	g := make(chan struct{})
	in.arm(op, &rule{remaining: n, entered: e, gate: g})
	var once sync.Once
	return e, func() { once.Do(func() { close(g) }) }
}

// take pops the first live rule for op matching want, consuming one
// shot. Nil when nothing is armed.
func (in *Injector) take(op Op, want func(*rule) bool) *rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules[op] {
		if r.remaining == 0 || !want(r) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		in.fired[op]++
		return r
	}
	return nil
}

// Apply is the control hook instrumented code calls before performing
// op on target: it burns one armed failure rule, sleeping out its
// latency, panicking if the rule says to, and returning the rule's
// error (nil when only latency was armed, or nothing was). Nil-safe.
func (in *Injector) Apply(op Op, target string) error {
	r := in.take(op, func(r *rule) bool { return r.corrupt == nil })
	if r == nil {
		return nil
	}
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if r.gate != nil {
		r.entered <- struct{}{}
		<-r.gate
	}
	if r.panicMsg != "" {
		panic("faults: injected panic: " + r.panicMsg)
	}
	return r.err
}

// Transform is the data hook: instrumented code passes a payload it
// just read (or is about to write) and gets back either the same
// slice or a corrupted copy, burning one armed corruption rule.
// Nil-safe.
func (in *Injector) Transform(op Op, target string, data []byte) []byte {
	r := in.take(op, func(r *rule) bool { return r.corrupt != nil })
	if r == nil {
		return data
	}
	return r.corrupt(append([]byte(nil), data...))
}

// Fired reports how many rules op has consumed — how often injected
// faults actually hit the instrumented path.
func (in *Injector) Fired(op Op) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[op]
}
