package workload

import (
	"fmt"
	"math/rand"

	"wheretime/internal/catalog"
	"wheretime/internal/engine"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

// TPCCDims sizes the OLTP database: one warehouse, ten districts,
// TPC-C-proportioned customers, items and stock, scaled down so a run
// completes in simulation time. Record widths follow the spirit of the
// spec (customers and stock are wide, order lines narrow), which is
// what drives the L2-dominated behaviour of Section 5.5.
type TPCCDims struct {
	Warehouses        int
	DistrictsPerWH    int
	CustomersPerDist  int
	Items             int
	StockPerWH        int
	CustomerRecBytes  int
	StockRecBytes     int
	ItemRecBytes      int
	OrderLineRecBytes int
	Seed              int64
}

// DefaultTPCCDims returns the 1-warehouse configuration of Section 5.5
// at simulation scale.
func DefaultTPCCDims() TPCCDims {
	return TPCCDims{
		Warehouses:        1,
		DistrictsPerWH:    10,
		CustomersPerDist:  1200,
		Items:             8000,
		StockPerWH:        8000,
		CustomerRecBytes:  200,
		StockRecBytes:     192,
		ItemRecBytes:      80,
		OrderLineRecBytes: 56,
		Seed:              1992,
	}
}

// Column ordinals for the TPC-C tables.
const (
	// customer: c_id, c_d_id, c_w_id, c_balance, c_ytd, ...
	custID = iota
	custDID
	custWID
	custBalance
	custYTD
)

const (
	stockItemID = iota
	stockWID
	stockQty
	stockYTD
)

const (
	itemID = iota
	itemPrice
	itemIMID
)

const (
	distID = iota
	distWID
	distNextOID
	distYTD
)

const (
	olOID = iota
	olDID
	olItemID
	olQty
	olAmount
)

// TPCC is a generated OLTP database plus the bookkeeping the driver
// needs (next order ids, RID directories for direct access).
type TPCC struct {
	Dims     TPCCDims
	Catalog  *catalog.Catalog
	Customer *catalog.Table
	Stock    *catalog.Table
	Item     *catalog.Table
	District *catalog.Table
	Orders   *catalog.Table
	History  *catalog.Table

	districtRIDs []storage.RID
	rng          *rand.Rand
}

// BuildTPCC generates the OLTP database with point-lookup indexes on
// the access-path columns.
func BuildTPCC(d TPCCDims) (*TPCC, error) {
	cat := catalog.New(storage.NewBufferPool())
	db := &TPCC{Dims: d, Catalog: cat, rng: rand.New(rand.NewSource(d.Seed))}

	var err error
	mk := func(name string, cols []string, recBytes int) *catalog.Table {
		if err != nil {
			return nil
		}
		var t *catalog.Table
		t, err = cat.Create(name, cols, storage.NSM, recBytes)
		return t
	}
	db.Customer = mk("customer", []string{"c_id", "c_d_id", "c_w_id", "c_balance", "c_ytd"}, d.CustomerRecBytes)
	db.Stock = mk("stock", []string{"s_i_id", "s_w_id", "s_qty", "s_ytd"}, d.StockRecBytes)
	db.Item = mk("item", []string{"i_id", "i_price", "i_im_id"}, d.ItemRecBytes)
	db.District = mk("district", []string{"d_id", "d_w_id", "d_next_o_id", "d_ytd"}, 64)
	db.Orders = mk("orders", []string{"o_id", "o_d_id", "o_c_id"}, 32)
	db.History = mk("history", []string{"h_c_id", "h_d_id", "h_amount"}, 48)
	if err != nil {
		return nil, err
	}

	rng := db.rng
	for w := 0; w < d.Warehouses; w++ {
		for dd := 0; dd < d.DistrictsPerWH; dd++ {
			rid := db.District.Heap.Append([]int32{int32(dd + 1), int32(w + 1), 1, 0})
			db.districtRIDs = append(db.districtRIDs, rid)
			for c := 0; c < d.CustomersPerDist; c++ {
				id := int32(dd*d.CustomersPerDist + c + 1)
				db.Customer.Heap.Append([]int32{id, int32(dd + 1), int32(w + 1), int32(rng.Intn(5000)), 0})
			}
		}
		for s := 0; s < d.StockPerWH; s++ {
			db.Stock.Heap.Append([]int32{int32(s + 1), int32(w + 1), int32(10 + rng.Intn(90)), 0})
		}
	}
	for i := 0; i < d.Items; i++ {
		db.Item.Heap.Append([]int32{int32(i + 1), int32(1 + rng.Intn(100)), int32(rng.Intn(1000))})
	}

	for _, spec := range []struct{ table, col string }{
		{"customer", "c_id"},
		{"stock", "s_i_id"},
		{"item", "i_id"},
	} {
		if _, err := cat.BuildIndex(spec.table, spec.col); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// TPCCStats reports what a transaction run did.
type TPCCStats struct {
	NewOrders     int
	Payments      int
	OrderStatuses int
	Aborts        int
	LinesInserted int
}

// Total returns the number of transactions executed.
func (s TPCCStats) Total() int { return s.NewOrders + s.Payments + s.OrderStatuses }

// Session-working-set geometry for the simulated 10 concurrent
// clients. Each client owns a session region (sort buffers, cursor
// state, private catalog caches); each transaction walks a window of
// its client's region. With ten clients round-robin, a client's pages
// return long after the L2 evicted them — the cache-capacity
// contention that makes multi-user OLTP L2-bound (Section 5.5). This
// stands in for the context-switching of ten server threads, which a
// single-stream simulation cannot express directly.
const (
	tpccClients       = 10
	sessionRegionBase = uint64(0x7800_0000)
	sessionRegionSize = 256 * 1024
	sessionWindow     = 64 * 1024
)

// session models one client's session working set.
type session struct {
	base uint64
	pos  uint32
}

func (s *session) touch(proc *trace.Buffer) {
	w := uint32(sessionWindow)
	lines := w / trace.LineSize
	if s.pos+w <= sessionRegionSize {
		proc.DataBurst(s.base+uint64(s.pos), w, lines*3/4, lines/4)
	} else {
		first := uint32(sessionRegionSize) - s.pos
		fl := first / trace.LineSize
		proc.DataBurst(s.base+uint64(s.pos), first, fl*3/4, fl/4)
		rest := w - first
		rl := rest / trace.LineSize
		proc.DataBurst(s.base, rest, rl*3/4, rl/4)
	}
	s.pos = (s.pos + w) % sessionRegionSize
}

// RunTPCC executes a 10-client transaction mix (Section 5.5 runs a
// 10-user, 1-warehouse TPC-C) of the given length against an engine.
// The mix is ~45% NewOrder, ~43% Payment, ~12% OrderStatus. Each
// transaction counts as one "record" in the breakdown denominators.
func RunTPCC(db *TPCC, e *engine.Engine, proc trace.Processor, txns int) (TPCCStats, error) {
	var stats TPCCStats
	rng := rand.New(rand.NewSource(db.Dims.Seed + 7))
	sessions := make([]session, tpccClients)
	for i := range sessions {
		sessions[i] = session{base: sessionRegionBase + uint64(i)*(4<<20)}
	}
	// The whole mix emits through one event buffer: session touches and
	// transaction events interleave in program order and drain to proc
	// in batches (the engine recognises the buffer and fills it
	// directly). Flushed before returning, so the caller's processor is
	// fully up to date between warm-up and measured runs.
	buf, ok := proc.(*trace.Buffer)
	if !ok {
		buf = trace.NewBuffer(proc, 0)
		defer buf.Flush()
	}
	for i := 0; i < txns; i++ {
		// Round-robin among the clients: the active client's session
		// state comes back through the memory hierarchy.
		sessions[i%tpccClients].touch(buf)
		roll := rng.Intn(100)
		var err error
		switch {
		case roll < 45:
			err = db.newOrder(e, buf, rng, &stats)
			stats.NewOrders++
		case roll < 88:
			err = db.payment(e, buf, rng)
			stats.Payments++
		default:
			err = db.orderStatus(e, buf, rng)
			stats.OrderStatuses++
		}
		if err != nil {
			return stats, fmt.Errorf("workload: txn %d: %w", i, err)
		}
		buf.RecordProcessed()
	}
	return stats, nil
}

// newOrder models the TPC-C NewOrder transaction: read + bump the
// district's next order id, read the customer, insert an order, and
// for 5-15 items: item lookup, stock lookup, stock update, order-line
// insert.
func (db *TPCC) newOrder(e *engine.Engine, proc *trace.Buffer, rng *rand.Rand, stats *TPCCStats) error {
	d := db.Dims
	txn := e.Begin(proc)
	defer txn.Commit()

	distRID := db.districtRIDs[rng.Intn(len(db.districtRIDs))]
	nextOID := txn.FetchByRID(db.District, distRID, distNextOID)
	txn.UpdateField(db.District, distRID, distNextOID, nextOID+1)

	custKey := int32(rng.Intn(d.DistrictsPerWH*d.CustomersPerDist)) + 1
	if _, err := txn.PointLookup(db.Customer, custID, custKey, custBalance); err != nil {
		return err
	}

	txn.InsertRecord(db.Orders, []int32{nextOID, int32(distRID.Slot + 1), custKey})

	items := 5 + rng.Intn(11)
	for l := 0; l < items; l++ {
		itemKey := int32(rng.Intn(d.Items)) + 1
		prices, err := txn.PointLookup(db.Item, itemID, itemKey, itemPrice)
		if err != nil {
			return err
		}
		stockKey := itemKey
		if stockKey > int32(d.StockPerWH) {
			stockKey = stockKey%int32(d.StockPerWH) + 1
		}
		if _, err := txn.PointLookup(db.Stock, stockItemID, stockKey, stockQty); err != nil {
			return err
		}
		rids := db.Stock.Indexes[stockItemID].Search(stockKey)
		if len(rids) > 0 {
			pg := db.Catalog.Pool().Get(rids[0].Page)
			qty := pg.Field(rids[0].Slot, stockQty)
			newQty := qty - int32(1+rng.Intn(5))
			if newQty < 10 {
				newQty += 91
			}
			txn.UpdateField(db.Stock, rids[0], stockQty, newQty)
		}
		amount := int32(1 + rng.Intn(5))
		if len(prices) > 0 {
			amount *= prices[0]
		}
		txn.InsertRecord(db.Orders, []int32{nextOID, int32(l), itemKey})
		stats.LinesInserted++
		_ = amount
	}
	return nil
}

// payment models the TPC-C Payment transaction: update district YTD,
// update customer balance, insert a history record.
func (db *TPCC) payment(e *engine.Engine, proc *trace.Buffer, rng *rand.Rand) error {
	d := db.Dims
	txn := e.Begin(proc)
	defer txn.Commit()

	distRID := db.districtRIDs[rng.Intn(len(db.districtRIDs))]
	amount := int32(1 + rng.Intn(5000))
	ytd := txn.FetchByRID(db.District, distRID, distYTD)
	txn.UpdateField(db.District, distRID, distYTD, ytd+amount)

	custKey := int32(rng.Intn(d.DistrictsPerWH*d.CustomersPerDist)) + 1
	rids := db.Customer.Indexes[custID].Search(custKey)
	if len(rids) == 0 {
		return fmt.Errorf("customer %d not found", custKey)
	}
	bal := txn.FetchByRID(db.Customer, rids[0], custBalance)
	txn.UpdateField(db.Customer, rids[0], custBalance, bal-amount)

	txn.InsertRecord(db.History, []int32{custKey, int32(distRID.Slot + 1), amount})
	return nil
}

// orderStatus models the TPC-C OrderStatus transaction: customer
// lookup plus a read of recent orders.
func (db *TPCC) orderStatus(e *engine.Engine, proc *trace.Buffer, rng *rand.Rand) error {
	d := db.Dims
	txn := e.Begin(proc)
	defer txn.Commit()

	custKey := int32(rng.Intn(d.DistrictsPerWH*d.CustomersPerDist)) + 1
	if _, err := txn.PointLookup(db.Customer, custID, custKey, custBalance); err != nil {
		return err
	}
	// Read a handful of order records if any exist.
	n := db.Orders.Heap.NumRecords()
	if n == 0 {
		return nil
	}
	for i := 0; i < 5; i++ {
		pick := uint64(rng.Intn(int(n)))
		pids := db.Orders.Heap.PageIDs()
		pg := db.Catalog.Pool().Get(pids[int(pick)%len(pids)])
		if pg.NumRecords() == 0 {
			continue
		}
		slot := uint16(int(pick) % pg.NumRecords())
		txn.FetchByRID(db.Orders, storage.RID{Page: pg.ID(), Slot: slot}, olOID)
	}
	return nil
}
