// Package workload builds the paper's datasets and query set: the
// microbenchmark relations R and S of Section 3.3, the TPC-D-flavoured
// selection suite and the TPC-C-flavoured transaction mix of
// Section 5.5.
package workload

import (
	"fmt"
	"math/rand"

	"wheretime/internal/catalog"
	"wheretime/internal/storage"
)

// Dims are the dataset dimensions. The paper's values (PaperDims) are
// 1.2M 100-byte records in R with a2 uniform on [1, 40000], and 40,000
// records in S whose primary key a1 joins with 30 records of R each.
type Dims struct {
	// RRecords and SRecords are the table cardinalities.
	RRecords int
	SRecords int
	// RecordSize is the record width in bytes (Section 5.2.1 varies it
	// from 20 to 200).
	RecordSize int
	// Seed makes data generation deterministic.
	Seed int64
}

// PaperDims returns the dimensions of Section 3.3.
func PaperDims() Dims {
	return Dims{RRecords: 1_200_000, SRecords: 40_000, RecordSize: 100, Seed: 1999}
}

// Scaled shrinks the dataset by factor f, preserving the R:S ratio
// (and with it the join fanout of 30) and the record size. Cache
// steady state is reached within a few hundred records, so per-record
// behaviour converges quickly in f.
func (d Dims) Scaled(f float64) Dims {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("workload: scale %v out of (0,1]", f))
	}
	s := d
	s.SRecords = int(float64(d.SRecords) * f)
	if s.SRecords < 8 {
		s.SRecords = 8
	}
	ratio := d.RRecords / d.SRecords
	s.RRecords = s.SRecords * ratio
	return s
}

// A2Max returns the largest a2 value: a2 is uniform on [1, SRecords]
// so that every R record matches exactly one S primary key.
func (d Dims) A2Max() int32 { return int32(d.SRecords) }

// Fanout returns how many R records join with each S record.
func (d Dims) Fanout() int { return d.RRecords / d.SRecords }

// Database is a generated microbenchmark database.
type Database struct {
	Catalog *catalog.Catalog
	R       *catalog.Table
	S       *catalog.Table
	Dims    Dims
}

// Build generates R and S with the given page layout. The a2 index of
// the indexed range selection is NOT built here; call BuildIndexes (or
// catalog.BuildIndex) so experiments can measure with and without it.
func Build(d Dims, layout storage.Layout) (*Database, error) {
	if d.RecordSize < storage.MinRecordSize {
		return nil, fmt.Errorf("workload: record size %d below minimum %d", d.RecordSize, storage.MinRecordSize)
	}
	cat := catalog.New(storage.NewBufferPool())
	r, err := cat.Create("r", []string{"a1", "a2", "a3"}, layout, d.RecordSize)
	if err != nil {
		return nil, err
	}
	s, err := cat.Create("s", []string{"a1", "a2", "a3"}, layout, d.RecordSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(d.Seed))
	// R: a1 serial, a2 uniform on [1, A2Max], a3 uniform 32-bit-ish.
	for i := 0; i < d.RRecords; i++ {
		a2 := int32(rng.Intn(int(d.A2Max()))) + 1
		a3 := int32(rng.Intn(1_000_000))
		r.Heap.Append([]int32{int32(i + 1), a2, a3})
	}
	// S: a1 primary key 1..SRecords in shuffled physical order (heap
	// order need not match key order), a2/a3 random.
	perm := rng.Perm(d.SRecords)
	for _, k := range perm {
		s.Heap.Append([]int32{int32(k + 1), int32(rng.Intn(int(d.A2Max()))) + 1, int32(rng.Intn(1_000_000))})
	}
	return &Database{Catalog: cat, R: r, S: s, Dims: d}, nil
}

// BuildIndexes creates the non-clustered index on R.a2 (query 2 of
// Section 3.3) and the S.a1 primary-key index used by join variants.
func (db *Database) BuildIndexes() error {
	if _, err := db.Catalog.BuildIndex("r", "a2"); err != nil {
		return err
	}
	_, err := db.Catalog.BuildIndex("s", "a1")
	return err
}

// SelectivityBounds returns Lo and Hi such that the paper's predicate
// "a2 > Lo and a2 < Hi" selects ~sel of R. sel must be in [0, 1].
func (d Dims) SelectivityBounds(sel float64) (lo, hi int32) {
	if sel < 0 || sel > 1 {
		panic(fmt.Sprintf("workload: selectivity %v out of [0,1]", sel))
	}
	span := int32(float64(d.A2Max()) * sel)
	// a2 > 0 and a2 < span+1 selects keys 1..span.
	return 0, span + 1
}

// QuerySRS returns the sequential range selection (query 1) at the
// given selectivity.
func (d Dims) QuerySRS(sel float64) string {
	lo, hi := d.SelectivityBounds(sel)
	return fmt.Sprintf("select avg(a3) from r where a2 < %d and a2 > %d", hi, lo)
}

// QueryIRS returns the same SQL as QuerySRS; it becomes the indexed
// range selection when run on an engine whose planner uses the index
// (query 2 is query 1 resubmitted after building the index).
func (d Dims) QueryIRS(sel float64) string { return d.QuerySRS(sel) }

// QuerySJ returns the sequential join (query 2 of Section 3.3).
func (d Dims) QuerySJ() string {
	return "select avg(r.a3) from r, s where r.a2 = s.a1"
}

// QueryGHJ returns the SQL of the Grace/hybrid hash join scenario: the
// same equijoin as QuerySJ, executed with the partitioned operator
// (plan hint sql.HintGraceJoin) instead of the one-pass in-memory
// join. The results must be identical; only the access pattern moves.
func (d Dims) QueryGHJ() string { return d.QuerySJ() }

// QuerySAG returns the SQL of the sort-based aggregation scenario: the
// same range aggregate as QuerySRS, executed by external sort (run
// generation plus merge passes, plan hint sql.HintSortAgg) instead of
// a direct scan-and-accumulate.
func (d Dims) QuerySAG(sel float64) string { return d.QuerySRS(sel) }

// QueryJSA returns the SQL of the join-sort-aggregate pipeline
// scenario: the same equijoin as QuerySJ, executed with its matches
// routed through an external sort before aggregation (plan hint
// sql.HintJoinSortAgg). Ordering never changes an avg, so the result
// must equal QuerySJ's; only the access pattern gains the sort's
// run-generation and merge phases.
func (d Dims) QueryJSA() string { return d.QuerySJ() }

// QueryIXJ returns the SQL of the index-probe join scenario: the
// equijoin restricted by a range predicate on the join column, so the
// probe side can be driven from the a2 index (plan hint
// sql.HintIndexProbeJoin) instead of a full heap scan.
func (d Dims) QueryIXJ(sel float64) string {
	lo, hi := d.SelectivityBounds(sel)
	return fmt.Sprintf("select avg(r.a3) from r, s where r.a2 = s.a1 and r.a2 < %d and r.a2 > %d", hi, lo)
}

// QueryBRS returns the SQL of the B-tree range scan scenario: a range
// COUNT(*) the engine answers from the a2 index alone (plan hint
// sql.HintIndexOnly) — descent plus leaf-chain walk, no heap fetches.
func (d Dims) QueryBRS(sel float64) string {
	lo, hi := d.SelectivityBounds(sel)
	return fmt.Sprintf("select count(*) from r where a2 < %d and a2 > %d", hi, lo)
}
