package workload

import "fmt"

// TPCDQueries returns the decision-support query suite of Section 5.5:
// seventeen selection queries (the paper runs "the 17 TPC-D selection
// queries" against a 100MB database). Ours are seventeen aggregate
// selections and joins over R and S spanning the selectivity and
// aggregate space, so the suite exercises the same mix of sequential
// scans, index-friendly ranges and joins that makes the paper's TPC-D
// breakdown resemble the microbenchmark's.
func (d Dims) TPCDQueries() []string {
	q := make([]string, 0, 17)
	sel := func(agg string, selectivity float64, offFrac float64) string {
		span := int32(float64(d.A2Max()) * selectivity)
		lo := int32(float64(d.A2Max()) * offFrac)
		hi := lo + span + 1
		if hi > d.A2Max()+1 {
			hi = d.A2Max() + 1
			lo = hi - span - 1
		}
		return fmt.Sprintf("select %s from r where a2 < %d and a2 > %d", agg, hi, lo)
	}
	// Q1-Q6: avg at increasing selectivities across the key space.
	q = append(q,
		sel("avg(a3)", 0.01, 0.00),
		sel("avg(a3)", 0.05, 0.10),
		sel("avg(a3)", 0.10, 0.25),
		sel("avg(a3)", 0.20, 0.40),
		sel("avg(a3)", 0.50, 0.25),
		sel("avg(a1)", 0.10, 0.60),
	)
	// Q7-Q11: other aggregates.
	q = append(q,
		sel("sum(a3)", 0.10, 0.05),
		sel("count(*)", 0.15, 0.30),
		sel("min(a3)", 0.08, 0.50),
		sel("max(a3)", 0.08, 0.70),
		sel("sum(a1)", 0.25, 0.10),
	)
	// Q12-Q14: full-table aggregates.
	q = append(q,
		"select avg(a3) from r",
		"select count(*) from r",
		"select sum(a2) from r",
	)
	// Q15-Q17: joins, one unrestricted and two with a restriction on
	// either side.
	hi := d.A2Max()/4 + 1
	q = append(q,
		"select avg(r.a3) from r, s where r.a2 = s.a1",
		fmt.Sprintf("select avg(r.a3) from r, s where r.a2 = s.a1 and r.a2 < %d", hi),
		fmt.Sprintf("select count(*) from r, s where r.a2 = s.a1 and s.a1 < %d", hi/2),
	)
	return q
}
