package workload

import (
	"strings"
	"testing"

	"wheretime/internal/engine"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
)

func TestPaperDims(t *testing.T) {
	d := PaperDims()
	if d.RRecords != 1_200_000 || d.SRecords != 40_000 || d.RecordSize != 100 {
		t.Errorf("paper dims wrong: %+v", d)
	}
	if d.A2Max() != 40_000 {
		t.Errorf("a2 max = %d", d.A2Max())
	}
	if d.Fanout() != 30 {
		t.Errorf("fanout = %d, want 30 (Section 3.3)", d.Fanout())
	}
}

func TestScaledPreservesRatio(t *testing.T) {
	d := PaperDims().Scaled(0.01)
	if d.Fanout() != 30 {
		t.Errorf("scaled fanout = %d", d.Fanout())
	}
	if d.RRecords != 12000 || d.SRecords != 400 {
		t.Errorf("scaled dims: %+v", d)
	}
	tiny := PaperDims().Scaled(0.00001)
	if tiny.SRecords < 8 {
		t.Errorf("scaled S too small: %d", tiny.SRecords)
	}
}

func TestScaledRejectsBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", f)
				}
			}()
			PaperDims().Scaled(f)
		}()
	}
}

func TestBuildPopulatesTables(t *testing.T) {
	d := Dims{RRecords: 900, SRecords: 30, RecordSize: 100, Seed: 5}
	db, err := Build(d, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	if db.R.NumRecords() != 900 || db.S.NumRecords() != 30 {
		t.Errorf("cardinalities: R=%d S=%d", db.R.NumRecords(), db.S.NumRecords())
	}
	// a2 within [1, A2Max]; S.a1 is a permutation of 1..30.
	seen := map[int32]bool{}
	db.S.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			a1 := pg.Field(uint16(s), 0)
			if a1 < 1 || a1 > 30 || seen[a1] {
				t.Fatalf("S.a1 %d invalid or duplicate", a1)
			}
			seen[a1] = true
		}
		return true
	})
	db.R.Heap.Scan(func(pg *storage.Page) bool {
		for s := 0; s < pg.NumRecords(); s++ {
			a2 := pg.Field(uint16(s), 1)
			if a2 < 1 || a2 > d.A2Max() {
				t.Fatalf("R.a2 %d out of range", a2)
			}
		}
		return true
	})
	if err := db.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	if db.R.Index("a2") == nil || db.S.Index("a1") == nil {
		t.Error("indexes not registered")
	}
	if db.R.Index("a2").Len() != 900 {
		t.Errorf("index entries = %d", db.R.Index("a2").Len())
	}
}

func TestBuildRejectsTinyRecords(t *testing.T) {
	if _, err := Build(Dims{RRecords: 1, SRecords: 1, RecordSize: 8}, storage.NSM); err == nil {
		t.Error("record size 8 should fail")
	}
}

func TestSelectivityBounds(t *testing.T) {
	d := PaperDims()
	lo, hi := d.SelectivityBounds(0.10)
	if lo != 0 || hi != 4001 {
		t.Errorf("10%% bounds = (%d,%d), want (0,4001)", lo, hi)
	}
	// Selected keys are 1..4000 of 40000: exactly 10%.
	if n := hi - lo - 1; float64(n)/float64(d.A2Max()) != 0.10 {
		t.Errorf("actual selectivity %v", float64(n)/float64(d.A2Max()))
	}
	lo, hi = d.SelectivityBounds(0)
	if hi-lo-1 != 0 {
		t.Error("0% should select nothing")
	}
	lo, hi = d.SelectivityBounds(1)
	if int32(d.A2Max()) != hi-lo-1 {
		t.Error("100% should select everything")
	}
}

func TestQueryBuilders(t *testing.T) {
	d := PaperDims()
	srs := d.QuerySRS(0.10)
	if srs != "select avg(a3) from r where a2 < 4001 and a2 > 0" {
		t.Errorf("SRS query = %q", srs)
	}
	if d.QueryIRS(0.10) != srs {
		t.Error("IRS must be the same SQL resubmitted (Section 3.3)")
	}
	if !strings.Contains(d.QuerySJ(), "r.a2 = s.a1") {
		t.Errorf("SJ query = %q", d.QuerySJ())
	}
}

func TestTPCDQueriesParseAndRun(t *testing.T) {
	d := Dims{RRecords: 600, SRecords: 20, RecordSize: 100, Seed: 9}
	db, err := Build(d, storage.NSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	qs := d.TPCDQueries()
	if len(qs) != 17 {
		t.Fatalf("TPC-D suite has %d queries, want 17 (Section 5.5)", len(qs))
	}
	e := engine.New(engine.SystemB, db.Catalog)
	for i, q := range qs {
		if _, err := e.Query(q, trace.Discard{}); err != nil {
			t.Errorf("Q%d (%s): %v", i+1, q, err)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	d := Dims{RRecords: 300, SRecords: 10, RecordSize: 100, Seed: 77}
	db1, _ := Build(d, storage.NSM)
	db2, _ := Build(d, storage.NSM)
	sum := func(db *Database) int64 {
		var s int64
		db.R.Heap.Scan(func(pg *storage.Page) bool {
			for i := 0; i < pg.NumRecords(); i++ {
				s += int64(pg.Field(uint16(i), 1))*31 + int64(pg.Field(uint16(i), 2))
			}
			return true
		})
		return s
	}
	if sum(db1) != sum(db2) {
		t.Error("same seed produced different data")
	}
}

func TestTPCCBuildAndRun(t *testing.T) {
	dims := DefaultTPCCDims()
	dims.CustomersPerDist = 50
	dims.Items = 200
	dims.StockPerWH = 200
	db, err := BuildTPCC(dims)
	if err != nil {
		t.Fatal(err)
	}
	if db.Customer.NumRecords() != uint64(50*10) {
		t.Errorf("customers = %d", db.Customer.NumRecords())
	}
	if db.District.NumRecords() != 10 {
		t.Errorf("districts = %d", db.District.NumRecords())
	}
	e := engine.New(engine.SystemC, db.Catalog)
	var c trace.Counting
	stats, err := RunTPCC(db, e, &c, 60)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() != 60 {
		t.Errorf("transactions = %d", stats.Total())
	}
	if stats.NewOrders == 0 || stats.Payments == 0 || stats.OrderStatuses == 0 {
		t.Errorf("mix degenerate: %+v", stats)
	}
	if c.Records != 60 {
		t.Errorf("record marks = %d, want one per txn", c.Records)
	}
	if c.Instructions == 0 || c.Stores == 0 || c.Branches == 0 {
		t.Error("transactions emitted no hardware activity")
	}
	// New orders inserted rows.
	if db.Orders.NumRecords() == 0 || db.History.NumRecords() == 0 {
		t.Error("inserts did not happen")
	}
	// Stock YTD/quantity updates happened in place.
	if stats.LinesInserted == 0 {
		t.Error("no order lines")
	}
}

func TestTPCCDeterminism(t *testing.T) {
	run := func() trace.Counting {
		dims := DefaultTPCCDims()
		dims.CustomersPerDist = 40
		dims.Items = 100
		dims.StockPerWH = 100
		db, err := BuildTPCC(dims)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.SystemD, db.Catalog)
		var c trace.Counting
		if _, err := RunTPCC(db, e, &c, 40); err != nil {
			t.Fatal(err)
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Errorf("TPC-C runs diverged:\n%+v\n%+v", a, b)
	}
}
