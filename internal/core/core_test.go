package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleBreakdown() *Breakdown {
	b := &Breakdown{}
	b.Cycles[TC] = 500
	b.Cycles[TL1D] = 10
	b.Cycles[TL1I] = 200
	b.Cycles[TL2D] = 250
	b.Cycles[TL2I] = 5
	b.Cycles[TITLB] = 5
	b.Cycles[TB] = 120
	b.Cycles[TFU] = 40
	b.Cycles[TDEP] = 80
	b.Cycles[TILD] = 10
	b.Cycles[TOVL] = 60
	b.Counts = Counts{
		InstructionsRetired:  800,
		UopsRetired:          1500,
		BranchesRetired:      160,
		BranchMispredictions: 8,
		BTBMisses:            80,
		L1DReferences:        400,
		L1DMisses:            8,
		L1IReferences:        300,
		L1IMisses:            50,
		L2DataReferences:     8,
		L2DataMisses:         4,
		L2InstReferences:     50,
		L2InstMisses:         1,
		ITLBMisses:           1,
		DTLBMisses:           2,
		Records:              10,
	}
	return b
}

func TestComponentStrings(t *testing.T) {
	want := map[Component]string{
		TC: "TC", TL1D: "TL1D", TL1I: "TL1I", TL2D: "TL2D", TL2I: "TL2I",
		TDTLB: "TDTLB", TITLB: "TITLB", TB: "TB", TFU: "TFU", TDEP: "TDEP",
		TILD: "TILD", TOVL: "TOVL",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Component(%d).String() = %q, want %q", int(c), c.String(), s)
		}
		if c.Description() == "unknown component" {
			t.Errorf("%s has no description", s)
		}
	}
	if got := Component(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown component string = %q", got)
	}
}

func TestGroupOf(t *testing.T) {
	cases := []struct {
		c  Component
		g  Group
		ok bool
	}{
		{TC, GroupComputation, true},
		{TL1D, GroupMemory, true},
		{TL1I, GroupMemory, true},
		{TL2D, GroupMemory, true},
		{TL2I, GroupMemory, true},
		{TITLB, GroupMemory, true},
		{TB, GroupBranch, true},
		{TFU, GroupResource, true},
		{TDEP, GroupResource, true},
		{TILD, GroupResource, true},
		{TDTLB, 0, false}, // unmeasured in the paper, outside TM
		{TOVL, 0, false},
	}
	for _, tc := range cases {
		g, ok := GroupOf(tc.c)
		if ok != tc.ok || (ok && g != tc.g) {
			t.Errorf("GroupOf(%s) = %v,%v want %v,%v", tc.c, g, ok, tc.g, tc.ok)
		}
	}
}

func TestTotalEquation(t *testing.T) {
	b := sampleBreakdown()
	tm := 10.0 + 200 + 250 + 5 + 5
	tr := 40.0 + 80 + 10
	wantGross := 500 + tm + 120 + tr
	if got := b.GrossTotal(); math.Abs(got-wantGross) > 1e-9 {
		t.Errorf("GrossTotal = %v, want %v", got, wantGross)
	}
	if got := b.Total(); math.Abs(got-(wantGross-60)) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, wantGross-60)
	}
	if got := b.TM(); math.Abs(got-tm) > 1e-9 {
		t.Errorf("TM = %v, want %v", got, tm)
	}
	if got := b.TR(); math.Abs(got-tr) > 1e-9 {
		t.Errorf("TR = %v, want %v", got, tr)
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	b := sampleBreakdown()
	var sum float64
	for g := Group(0); g < numGroups; g++ {
		sum += b.GroupPercent(g)
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("group percentages sum to %v, want 100", sum)
	}
	var msum float64
	for _, c := range MemoryComponents() {
		msum += b.MemoryPercent(c)
	}
	if math.Abs(msum-100) > 1e-9 {
		t.Errorf("memory percentages sum to %v, want 100", msum)
	}
}

func TestZeroBreakdownSafe(t *testing.T) {
	b := &Breakdown{}
	if b.CPI() != 0 || b.GroupPercent(GroupMemory) != 0 || b.MemoryPercent(TL1I) != 0 ||
		b.InstructionsPerRecord() != 0 || b.CyclesPerRecord() != 0 ||
		b.BranchMispredictionRate() != 0 || b.BTBMissRate() != 0 ||
		b.L1DMissRate() != 0 || b.L2DataMissRate() != 0 || b.BranchFraction() != 0 {
		t.Error("zero breakdown should yield zero derived metrics, not NaN")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("zero breakdown should validate: %v", err)
	}
}

func TestDerivedMetrics(t *testing.T) {
	b := sampleBreakdown()
	if got, want := b.CPI(), b.GrossTotal()/800; math.Abs(got-want) > 1e-12 {
		t.Errorf("CPI = %v, want %v", got, want)
	}
	if got, want := b.InstructionsPerRecord(), 80.0; got != want {
		t.Errorf("InstructionsPerRecord = %v, want %v", got, want)
	}
	if got, want := b.BranchMispredictionRate(), 8.0/160; got != want {
		t.Errorf("BranchMispredictionRate = %v, want %v", got, want)
	}
	if got, want := b.BTBMissRate(), 0.5; got != want {
		t.Errorf("BTBMissRate = %v, want %v", got, want)
	}
	if got, want := b.L1DMissRate(), 8.0/400; got != want {
		t.Errorf("L1DMissRate = %v, want %v", got, want)
	}
	if got, want := b.L2DataMissRate(), 0.5; got != want {
		t.Errorf("L2DataMissRate = %v, want %v", got, want)
	}
	if got, want := b.BranchFraction(), 0.2; got != want {
		t.Errorf("BranchFraction = %v, want %v", got, want)
	}
	cpiSum := 0.0
	for g := Group(0); g < numGroups; g++ {
		cpiSum += b.CPIOf(g)
	}
	if math.Abs(cpiSum-b.CPI()) > 1e-12 {
		t.Errorf("CPI segments sum to %v, want %v", cpiSum, b.CPI())
	}
}

func TestAddAndAverage(t *testing.T) {
	a := sampleBreakdown()
	b := sampleBreakdown()
	sum := &Breakdown{}
	sum.Add(a)
	sum.Add(b)
	if got, want := sum.Cycles[TL1I], 400.0; got != want {
		t.Errorf("Add: TL1I = %v, want %v", got, want)
	}
	if got, want := sum.Counts.Records, uint64(20); got != want {
		t.Errorf("Add: Records = %v, want %v", got, want)
	}
	avg := Average([]*Breakdown{a, b})
	if got, want := avg.Cycles[TL1I], 200.0; got != want {
		t.Errorf("Average: TL1I = %v, want %v", got, want)
	}
}

func TestAveragePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Average of empty slice should panic")
		}
	}()
	Average(nil)
}

func TestStdDevPercent(t *testing.T) {
	a := sampleBreakdown()
	b := sampleBreakdown()
	if got := StdDevPercent([]*Breakdown{a, b}); got != 0 {
		t.Errorf("identical runs should have 0%% stddev, got %v", got)
	}
	c := sampleBreakdown()
	c.Scale(2)
	if got := StdDevPercent([]*Breakdown{a, c}); got <= 0 {
		t.Errorf("different runs should have positive stddev, got %v", got)
	}
	if got := StdDevPercent([]*Breakdown{a}); got != 0 {
		t.Errorf("single run stddev = %v, want 0", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Breakdown)
	}{
		{"negative component", func(b *Breakdown) { b.Cycles[TL1I] = -1 }},
		{"NaN component", func(b *Breakdown) { b.Cycles[TC] = math.NaN() }},
		{"overlap exceeds data stalls", func(b *Breakdown) { b.Cycles[TOVL] = 1e9 }},
		{"L1D misses exceed refs", func(b *Breakdown) { b.Counts.L1DMisses = b.Counts.L1DReferences + 1 }},
		{"L1I misses exceed refs", func(b *Breakdown) { b.Counts.L1IMisses = b.Counts.L1IReferences + 1 }},
		{"L2D misses exceed refs", func(b *Breakdown) { b.Counts.L2DataMisses = b.Counts.L2DataReferences + 1 }},
		{"L2I misses exceed refs", func(b *Breakdown) { b.Counts.L2InstMisses = b.Counts.L2InstReferences + 1 }},
		{"mispredictions exceed branches", func(b *Breakdown) { b.Counts.BranchMispredictions = b.Counts.BranchesRetired + 1 }},
		{"BTB misses exceed branches", func(b *Breakdown) { b.Counts.BTBMisses = b.Counts.BranchesRetired + 1 }},
		{"branches exceed instructions", func(b *Breakdown) { b.Counts.BranchesRetired = b.Counts.InstructionsRetired + 1 }},
		{"uops below instructions", func(b *Breakdown) { b.Counts.UopsRetired = b.Counts.InstructionsRetired - 1 }},
	}
	for _, tc := range cases {
		b := sampleBreakdown()
		tc.mutate(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
	if err := sampleBreakdown().Validate(); err != nil {
		t.Errorf("sample should validate: %v", err)
	}
}

func TestReportMentionsAllGroups(t *testing.T) {
	b := sampleBreakdown()
	r := b.Report()
	for _, want := range []string{"Computation", "Memory stalls", "Branch mispredictions", "Resource stalls", "CPI"} {
		if !strings.Contains(r, want) {
			t.Errorf("Report missing %q:\n%s", want, r)
		}
	}
	if s := b.String(); !strings.Contains(s, "TQ=") {
		t.Errorf("String missing TQ: %q", s)
	}
}

func TestTopComponents(t *testing.T) {
	b := sampleBreakdown()
	top := b.TopComponents(3)
	if len(top) != 3 {
		t.Fatalf("TopComponents(3) returned %d", len(top))
	}
	if top[0] != TL2D || top[1] != TL1I || top[2] != TB {
		t.Errorf("TopComponents order = %v, want [TL2D TL1I TB]", top)
	}
	all := b.TopComponents(100)
	for i := 1; i < len(all); i++ {
		if b.Cycles[all[i-1]] < b.Cycles[all[i]] {
			t.Errorf("TopComponents not sorted at %d", i)
		}
	}
}

// Property: Add is commutative and Total is linear under Add.
func TestAddProperties(t *testing.T) {
	f := func(xs, ys [12]uint16) bool {
		a, b := &Breakdown{}, &Breakdown{}
		for i := 0; i < 12; i++ {
			a.Cycles[i] = float64(xs[i])
			b.Cycles[i] = float64(ys[i])
		}
		// Keep overlap legal so Validate-style semantics hold.
		a.Cycles[TOVL] = 0
		b.Cycles[TOVL] = 0
		s1 := &Breakdown{}
		s1.Add(a)
		s1.Add(b)
		s2 := &Breakdown{}
		s2.Add(b)
		s2.Add(a)
		if math.Abs(s1.GrossTotal()-s2.GrossTotal()) > 1e-6 {
			return false
		}
		return math.Abs(s1.GrossTotal()-(a.GrossTotal()+b.GrossTotal())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: group percentages always sum to 100 for non-degenerate
// breakdowns, and each lies in [0,100].
func TestPercentProperties(t *testing.T) {
	f := func(xs [12]uint16) bool {
		b := &Breakdown{}
		nonzero := false
		for i := 0; i < 12; i++ {
			b.Cycles[i] = float64(xs[i])
			if gg, ok := GroupOf(Component(i)); ok && gg >= 0 && xs[i] > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		var sum float64
		for g := Group(0); g < numGroups; g++ {
			p := b.GroupPercent(g)
			if p < 0 || p > 100+1e-9 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
