// Package core implements the analytic framework of Ailamaki et al.
// (VLDB 1999) for decomposing query execution time on a modern
// out-of-order processor:
//
//	TQ = TC + TM + TB + TR - TOVL
//
// where TC is useful computation, TM the memory-hierarchy stall time,
// TB the branch-misprediction penalty, TR the resource-related stall
// time, and TOVL the portion of the stalls the processor managed to
// overlap with useful work. TM and TR decompose further per Table 3.1
// of the paper.
//
// The package is pure accounting: it defines the component taxonomy,
// the arithmetic that combines raw component measurements into a
// breakdown, and the derived metrics (percent-of-execution, CPI,
// per-record costs) the paper reports. The actual component values are
// produced by the simulator in internal/xeon and the counter formulae
// in internal/emon.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Component identifies one stall-time (or computation) component from
// Table 3.1 of the paper.
type Component int

// Components of the execution-time breakdown, in Table 3.1 order.
const (
	// TC is the useful computation time.
	TC Component = iota
	// TL1D is the stall time due to L1 D-cache misses that hit in L2.
	TL1D
	// TL1I is the stall time due to L1 I-cache misses that hit in L2.
	TL1I
	// TL2D is the stall time due to L2 data misses (main-memory fetches).
	TL2D
	// TL2I is the stall time due to L2 instruction misses.
	TL2I
	// TDTLB is the stall time due to data TLB misses. The paper could
	// not measure it (no event code); we simulate it but report it
	// outside TM so totals remain comparable with the paper.
	TDTLB
	// TITLB is the stall time due to instruction TLB misses.
	TITLB
	// TB is the branch misprediction penalty.
	TB
	// TFU is the stall time due to functional-unit contention.
	TFU
	// TDEP is the stall time due to dependencies among instructions.
	TDEP
	// TILD is the stall time in the instruction-length decoder, the
	// platform-specific (TMISC) slot of Table 3.1 instantiated for the
	// Pentium II per Table 4.2.
	TILD
	// TOVL is the overlapped stall time, subtracted when reconstructing
	// wall-clock execution time.
	TOVL

	numComponents
)

// String returns the paper's name for the component (e.g. "TL1I").
func (c Component) String() string {
	switch c {
	case TC:
		return "TC"
	case TL1D:
		return "TL1D"
	case TL1I:
		return "TL1I"
	case TL2D:
		return "TL2D"
	case TL2I:
		return "TL2I"
	case TDTLB:
		return "TDTLB"
	case TITLB:
		return "TITLB"
	case TB:
		return "TB"
	case TFU:
		return "TFU"
	case TDEP:
		return "TDEP"
	case TILD:
		return "TILD"
	case TOVL:
		return "TOVL"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Description returns the Table 3.1 description of the component.
func (c Component) Description() string {
	switch c {
	case TC:
		return "computation time"
	case TL1D:
		return "stall time due to L1 D-cache misses (with hit in L2)"
	case TL1I:
		return "stall time due to L1 I-cache misses (with hit in L2)"
	case TL2D:
		return "stall time due to L2 data misses"
	case TL2I:
		return "stall time due to L2 instruction misses"
	case TDTLB:
		return "stall time due to DTLB misses"
	case TITLB:
		return "stall time due to ITLB misses"
	case TB:
		return "branch misprediction penalty"
	case TFU:
		return "stall time due to functional unit unavailability"
	case TDEP:
		return "stall time due to dependencies among instructions"
	case TILD:
		return "stall time due to instruction-length decoding"
	case TOVL:
		return "overlapped stall time"
	default:
		return "unknown component"
	}
}

// Group identifies one of the four top-level terms of the execution
// time equation.
type Group int

// Top-level groups of the breakdown, Figure 5.1's four bars.
const (
	// GroupComputation is TC.
	GroupComputation Group = iota
	// GroupMemory is TM = TL1D + TL1I + TL2D + TL2I + TITLB.
	GroupMemory
	// GroupBranch is TB.
	GroupBranch
	// GroupResource is TR = TFU + TDEP + TILD.
	GroupResource

	numGroups
)

// String returns a human-readable group name.
func (g Group) String() string {
	switch g {
	case GroupComputation:
		return "Computation"
	case GroupMemory:
		return "Memory stalls"
	case GroupBranch:
		return "Branch mispredictions"
	case GroupResource:
		return "Resource stalls"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// GroupOf returns the top-level group a component contributes to, and
// false for components outside the four groups (TOVL, and TDTLB which
// the paper excludes from TM because it could not be measured).
func GroupOf(c Component) (Group, bool) {
	switch c {
	case TC:
		return GroupComputation, true
	case TL1D, TL1I, TL2D, TL2I, TITLB:
		return GroupMemory, true
	case TB:
		return GroupBranch, true
	case TFU, TDEP, TILD:
		return GroupResource, true
	default:
		return 0, false
	}
}

// MemoryComponents lists the components of TM in Figure 5.2 order
// (bottom of the stacked bar to top).
func MemoryComponents() []Component {
	return []Component{TL1D, TL1I, TL2D, TL2I, TITLB}
}

// ResourceComponents lists the components of TR.
func ResourceComponents() []Component {
	return []Component{TFU, TDEP, TILD}
}

// Components lists every component in Table 3.1 order.
func Components() []Component {
	cs := make([]Component, numComponents)
	for i := range cs {
		cs[i] = Component(i)
	}
	return cs
}

// Breakdown is a complete execution-time decomposition for one unit of
// work (one query, one transaction mix, ...). All times are in CPU
// cycles. Counts carries the raw event counts the cycle figures derive
// from so that rates (miss rates, misprediction rates, CPI) can be
// reported alongside.
type Breakdown struct {
	// Cycles holds the cycle cost attributed to each component.
	Cycles [numComponents]float64
	// Counts holds the raw event counts underlying the breakdown.
	Counts Counts
}

// Counts carries raw simulated hardware event counts for one unit of
// work, the analogue of the paper's emon event measurements.
type Counts struct {
	// InstructionsRetired counts retired x86 instructions.
	InstructionsRetired uint64
	// UopsRetired counts retired micro-operations (1–3 per instruction).
	UopsRetired uint64
	// BranchesRetired counts retired branch instructions.
	BranchesRetired uint64
	// BranchMispredictions counts retired mispredicted branches.
	BranchMispredictions uint64
	// BTBMisses counts branch executions that missed the BTB and fell
	// back to static prediction.
	BTBMisses uint64
	// L1DReferences counts L1 D-cache accesses (loads + stores).
	L1DReferences uint64
	// L1DMisses counts L1 D-cache misses.
	L1DMisses uint64
	// L1IReferences counts L1 I-cache line fetches.
	L1IReferences uint64
	// L1IMisses counts L1 I-cache misses.
	L1IMisses uint64
	// L2DataReferences counts L2 accesses on behalf of data.
	L2DataReferences uint64
	// L2DataMisses counts L2 data misses (to main memory).
	L2DataMisses uint64
	// L2InstReferences counts L2 accesses on behalf of instructions.
	L2InstReferences uint64
	// L2InstMisses counts L2 instruction misses.
	L2InstMisses uint64
	// ITLBMisses counts instruction TLB misses.
	ITLBMisses uint64
	// DTLBMisses counts data TLB misses.
	DTLBMisses uint64
	// KernelInstructions counts instructions retired in kernel mode
	// (OS interrupt handling), the paper's :SUP counter mode.
	KernelInstructions uint64
	// Records counts the logical records processed, the denominator of
	// the paper's per-record metrics (Figure 5.3).
	Records uint64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.InstructionsRetired += other.InstructionsRetired
	c.UopsRetired += other.UopsRetired
	c.BranchesRetired += other.BranchesRetired
	c.BranchMispredictions += other.BranchMispredictions
	c.BTBMisses += other.BTBMisses
	c.L1DReferences += other.L1DReferences
	c.L1DMisses += other.L1DMisses
	c.L1IReferences += other.L1IReferences
	c.L1IMisses += other.L1IMisses
	c.L2DataReferences += other.L2DataReferences
	c.L2DataMisses += other.L2DataMisses
	c.L2InstReferences += other.L2InstReferences
	c.L2InstMisses += other.L2InstMisses
	c.ITLBMisses += other.ITLBMisses
	c.DTLBMisses += other.DTLBMisses
	c.KernelInstructions += other.KernelInstructions
	c.Records += other.Records
}

// Add accumulates other into b, component-wise.
func (b *Breakdown) Add(other *Breakdown) {
	for i := range b.Cycles {
		b.Cycles[i] += other.Cycles[i]
	}
	b.Counts.Add(other.Counts)
}

// Scale multiplies every cycle figure by f. Counts are left untouched
// (they are integer event totals); use it only for averaging cycle
// costs across repeated runs.
func (b *Breakdown) Scale(f float64) {
	for i := range b.Cycles {
		b.Cycles[i] *= f
	}
}

// Group returns the cycles attributed to one of the four top-level
// groups.
func (b *Breakdown) Group(g Group) float64 {
	var sum float64
	for c := Component(0); c < numComponents; c++ {
		if gg, ok := GroupOf(c); ok && gg == g {
			sum += b.Cycles[c]
		}
	}
	return sum
}

// TM returns the memory-hierarchy stall time (Figure 5.2's total).
func (b *Breakdown) TM() float64 { return b.Group(GroupMemory) }

// TR returns the resource stall time.
func (b *Breakdown) TR() float64 { return b.Group(GroupResource) }

// Total returns TQ = TC + TM + TB + TR - TOVL, the reconstructed
// wall-clock execution time in cycles.
func (b *Breakdown) Total() float64 {
	return b.Group(GroupComputation) + b.Group(GroupMemory) +
		b.Group(GroupBranch) + b.Group(GroupResource) - b.Cycles[TOVL]
}

// GrossTotal returns the breakdown total before subtracting overlap,
// the denominator used for the paper's percentage figures (each bar in
// Figure 5.1 sums to 100%).
func (b *Breakdown) GrossTotal() float64 {
	return b.Group(GroupComputation) + b.Group(GroupMemory) +
		b.Group(GroupBranch) + b.Group(GroupResource)
}

// GroupPercent returns group g's share of the gross total, in percent.
func (b *Breakdown) GroupPercent(g Group) float64 {
	t := b.GrossTotal()
	if t == 0 {
		return 0
	}
	return 100 * b.Group(g) / t
}

// ComponentPercent returns component c's share of the gross total.
func (b *Breakdown) ComponentPercent(c Component) float64 {
	t := b.GrossTotal()
	if t == 0 {
		return 0
	}
	return 100 * b.Cycles[c] / t
}

// MemoryPercent returns component c's share of TM, the quantity plotted
// in Figure 5.2. It is meaningful for the five TM components.
func (b *Breakdown) MemoryPercent(c Component) float64 {
	tm := b.TM()
	if tm == 0 {
		return 0
	}
	return 100 * b.Cycles[c] / tm
}

// CPI returns clocks per retired instruction, Figure 5.6's metric,
// computed over the gross total.
func (b *Breakdown) CPI() float64 {
	if b.Counts.InstructionsRetired == 0 {
		return 0
	}
	return b.GrossTotal() / float64(b.Counts.InstructionsRetired)
}

// CPIOf returns the portion of CPI attributable to group g (the
// stacked segments of Figure 5.6).
func (b *Breakdown) CPIOf(g Group) float64 {
	if b.Counts.InstructionsRetired == 0 {
		return 0
	}
	return b.Group(g) / float64(b.Counts.InstructionsRetired)
}

// InstructionsPerRecord returns retired instructions divided by logical
// records processed, Figure 5.3's metric.
func (b *Breakdown) InstructionsPerRecord() float64 {
	if b.Counts.Records == 0 {
		return 0
	}
	return float64(b.Counts.InstructionsRetired) / float64(b.Counts.Records)
}

// CyclesPerRecord returns gross execution cycles per logical record.
func (b *Breakdown) CyclesPerRecord() float64 {
	if b.Counts.Records == 0 {
		return 0
	}
	return b.GrossTotal() / float64(b.Counts.Records)
}

// BranchMispredictionRate returns mispredictions / retired branches,
// Figure 5.4 (left)'s metric.
func (b *Breakdown) BranchMispredictionRate() float64 {
	if b.Counts.BranchesRetired == 0 {
		return 0
	}
	return float64(b.Counts.BranchMispredictions) / float64(b.Counts.BranchesRetired)
}

// BTBMissRate returns BTB misses / retired branches (§5.3 reports ~50%).
func (b *Breakdown) BTBMissRate() float64 {
	if b.Counts.BranchesRetired == 0 {
		return 0
	}
	return float64(b.Counts.BTBMisses) / float64(b.Counts.BranchesRetired)
}

// L1DMissRate returns L1 D-cache misses / references (§5.2 reports ~2%,
// never above 4%).
func (b *Breakdown) L1DMissRate() float64 {
	if b.Counts.L1DReferences == 0 {
		return 0
	}
	return float64(b.Counts.L1DMisses) / float64(b.Counts.L1DReferences)
}

// L2DataMissRate returns L2 data misses / L2 data references (§5.2.1
// reports 40–90%, except System B at ~2%).
func (b *Breakdown) L2DataMissRate() float64 {
	if b.Counts.L2DataReferences == 0 {
		return 0
	}
	return float64(b.Counts.L2DataMisses) / float64(b.Counts.L2DataReferences)
}

// BranchFraction returns retired branches / retired instructions (§5.3
// reports ~20%).
func (b *Breakdown) BranchFraction() float64 {
	if b.Counts.InstructionsRetired == 0 {
		return 0
	}
	return float64(b.Counts.BranchesRetired) / float64(b.Counts.InstructionsRetired)
}

// Validate checks the structural invariants of a breakdown: no negative
// component, overlap not exceeding the overlappable stall time, and
// counts consistent with cycle figures (misses cannot exceed
// references, mispredictions cannot exceed branches). It returns a
// descriptive error for the first violation found.
func (b *Breakdown) Validate() error {
	for c := Component(0); c < numComponents; c++ {
		v := b.Cycles[c]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: component %s is not finite: %v", c, v)
		}
		if v < 0 {
			return fmt.Errorf("core: component %s is negative: %v", c, v)
		}
	}
	overlappable := b.Cycles[TL1D] + b.Cycles[TL2D] + b.Cycles[TDTLB]
	if b.Cycles[TOVL] > overlappable+1e-9 {
		return fmt.Errorf("core: overlap %v exceeds overlappable data stalls %v",
			b.Cycles[TOVL], overlappable)
	}
	ct := b.Counts
	switch {
	case ct.L1DMisses > ct.L1DReferences:
		return fmt.Errorf("core: L1D misses %d exceed references %d", ct.L1DMisses, ct.L1DReferences)
	case ct.L1IMisses > ct.L1IReferences:
		return fmt.Errorf("core: L1I misses %d exceed references %d", ct.L1IMisses, ct.L1IReferences)
	case ct.L2DataMisses > ct.L2DataReferences:
		return fmt.Errorf("core: L2 data misses %d exceed references %d", ct.L2DataMisses, ct.L2DataReferences)
	case ct.L2InstMisses > ct.L2InstReferences:
		return fmt.Errorf("core: L2 inst misses %d exceed references %d", ct.L2InstMisses, ct.L2InstReferences)
	case ct.BranchMispredictions > ct.BranchesRetired:
		return fmt.Errorf("core: mispredictions %d exceed branches %d", ct.BranchMispredictions, ct.BranchesRetired)
	case ct.BTBMisses > ct.BranchesRetired:
		return fmt.Errorf("core: BTB misses %d exceed branches %d", ct.BTBMisses, ct.BranchesRetired)
	case ct.BranchesRetired > ct.InstructionsRetired:
		return fmt.Errorf("core: branches %d exceed instructions %d", ct.BranchesRetired, ct.InstructionsRetired)
	case ct.UopsRetired < ct.InstructionsRetired:
		return fmt.Errorf("core: uops %d below instructions %d (each instruction is at least one uop)",
			ct.UopsRetired, ct.InstructionsRetired)
	}
	return nil
}

// String renders the breakdown as a compact single-line summary.
func (b *Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TQ=%.0f cycles (", b.Total())
	for g := Group(0); g < numGroups; g++ {
		if g > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %.1f%%", g, b.GroupPercent(g))
	}
	sb.WriteString(")")
	return sb.String()
}

// Report renders a multi-line human-readable breakdown, with the four
// groups and each non-zero component underneath.
func (b *Breakdown) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Execution time: %.0f cycles (gross %.0f, overlap %.0f)\n",
		b.Total(), b.GrossTotal(), b.Cycles[TOVL])
	fmt.Fprintf(&sb, "CPI: %.2f  instructions: %d  records: %d\n",
		b.CPI(), b.Counts.InstructionsRetired, b.Counts.Records)
	for g := Group(0); g < numGroups; g++ {
		fmt.Fprintf(&sb, "%-22s %10.0f cycles  %5.1f%%\n", g, b.Group(g), b.GroupPercent(g))
		for _, c := range Components() {
			if gg, ok := GroupOf(c); !ok || gg != g || c == TC || c == TB {
				continue
			}
			if b.Cycles[c] == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-20s %10.0f cycles  %5.1f%%\n", c, b.Cycles[c], b.ComponentPercent(c))
		}
	}
	if b.Cycles[TDTLB] > 0 {
		fmt.Fprintf(&sb, "%-22s %10.0f cycles (simulated; excluded from TM as in the paper)\n",
			"TDTLB", b.Cycles[TDTLB])
	}
	return sb.String()
}

// Average returns the component-wise mean of the given breakdowns.
// Counts are summed, matching how the paper averages repeated runs of
// the same query unit. It panics on an empty slice.
func Average(bs []*Breakdown) *Breakdown {
	if len(bs) == 0 {
		panic("core: Average of no breakdowns")
	}
	out := &Breakdown{}
	for _, b := range bs {
		out.Add(b)
	}
	out.Scale(1 / float64(len(bs)))
	return out
}

// StdDevPercent returns the relative standard deviation (stddev/mean,
// in percent) of the gross totals of the given breakdowns. The paper
// repeats runs until this falls below 5%.
func StdDevPercent(bs []*Breakdown) float64 {
	if len(bs) < 2 {
		return 0
	}
	var mean float64
	for _, b := range bs {
		mean += b.GrossTotal()
	}
	mean /= float64(len(bs))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, b := range bs {
		d := b.GrossTotal() - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(bs)-1))
	return 100 * sd / mean
}

// TopComponents returns the n largest stall components (excluding TC
// and TOVL) in decreasing cycle order, for diagnostics.
func (b *Breakdown) TopComponents(n int) []Component {
	cs := make([]Component, 0, numComponents)
	for c := Component(0); c < numComponents; c++ {
		if c == TC || c == TOVL {
			continue
		}
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return b.Cycles[cs[i]] > b.Cycles[cs[j]] })
	if n > len(cs) {
		n = len(cs)
	}
	return cs[:n]
}
