// Record size study: reproduce Section 5.2.1-5.2.2 — wider records
// lose spatial locality in the L2 cache, execution time per record
// grows several-fold from 20 to 200 bytes, and System B's
// cache-conscious PAX pages are largely immune.
//
//	go run ./examples/recordsize
package main

import (
	"fmt"
	"log"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/harness"
)

func main() {
	fmt.Println("10% sequential range selection, record size 20..200 bytes")
	for _, sys := range []engine.System{engine.SystemD, engine.SystemB} {
		fmt.Printf("\nSystem %s (%s pages):\n", sys, engine.DefaultProfile(sys).DataLayout)
		fmt.Printf("%-8s %-16s %-14s %-10s\n", "bytes", "TL2D cycles/rec", "cycles/rec", "vs 20B")
		var base float64
		for _, size := range []int{20, 48, 100, 152, 200} {
			opts := harness.DefaultOptions()
			opts.RecordSize = size
			env, err := harness.NewEnv(opts)
			if err != nil {
				log.Fatal(err)
			}
			cell, err := env.Run(sys, harness.SRS)
			if err != nil {
				log.Fatal(err)
			}
			b := cell.Breakdown
			recs := float64(b.Counts.Records)
			per := b.GrossTotal() / recs
			if size == 20 {
				base = per
			}
			fmt.Printf("%-8d %-16.1f %-14.0f %.2fx\n",
				size, b.Cycles[core.TL2D]/recs, per, per/base)
		}
	}
}
