// Selectivity sweep: reproduce Figure 5.4 (right) — branch
// misprediction stalls and L1 I-cache stalls both climb as the
// sequential range selection selects more records (System D).
//
//	go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"wheretime/internal/core"
	"wheretime/internal/engine"
	"wheretime/internal/harness"
)

func main() {
	opts := harness.DefaultOptions()
	env, err := harness.NewEnv(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("System D, sequential range selection (Figure 5.4 right):")
	fmt.Printf("%-12s %-22s %-18s %-12s\n", "selectivity", "branch mispred stalls", "L1 I-cache stalls", "mispred rate")
	for _, sel := range []float64{0, 0.01, 0.05, 0.10, 0.50, 1.00} {
		env.Opts.Selectivity = sel
		cell, err := env.Run(engine.SystemD, harness.SRS)
		if err != nil {
			log.Fatal(err)
		}
		b := cell.Breakdown
		fmt.Printf("%-12s %-22s %-18s %-12s\n",
			fmt.Sprintf("%.0f%%", sel*100),
			fmt.Sprintf("%.1f%%", b.GroupPercent(core.GroupBranch)),
			fmt.Sprintf("%.1f%%", b.ComponentPercent(core.TL1I)),
			fmt.Sprintf("%.1f%%", 100*b.BranchMispredictionRate()))
	}
	fmt.Println("\nThe misprediction *rate* stays roughly flat (Section 5.3) while")
	fmt.Println("the stall contributions track the growing aggregate-path work.")
}
