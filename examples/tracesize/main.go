// Trace size study: record each scenario's event stream once through
// the columnar codec and report the raw-arena vs compressed-arena
// footprint — the ratios docs/PERF.md quotes and the size trade
// behind the raised replay ceiling (see BenchmarkCompressedReplay for
// the time side).
//
//	go run ./examples/tracesize
//
// With -corpus it additionally writes the first events of the
// recorded TPC-C stream in the fuzz wire format (32 LE bytes per
// event: kind, taken, Size, Addr, Aux, A, B) to seed
// internal/trace's FuzzCodecRoundTrip:
//
//	go run ./examples/tracesize -corpus internal/trace/testdata/tpcc-stream-seed.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

// corpusEvents bounds the seed file: enough to exercise real TPC-C
// redundancy without bloating the repo (32 B/event on the wire).
const corpusEvents = 6000

func main() {
	corpus := flag.String("corpus", "", "write a fuzz seed corpus of the TPC-C stream to this file")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = the paper's 1.2M-row R)")
	txns := flag.Int("txns", 300, "TPC-C transactions to record")
	flag.Parse()

	dims := workload.PaperDims().Scaled(*scale)
	nsm, err := workload.Build(dims, storage.NSM)
	if err != nil {
		log.Fatal(err)
	}
	if err := nsm.BuildIndexes(); err != nil {
		log.Fatal(err)
	}
	e := engine.New(engine.SystemD, nsm.Catalog)

	fmt.Printf("%-8s %10s %10s %10s %7s\n", "stream", "events", "raw", "encoded", "ratio")
	report := func(name string, rec *trace.Recorder) *trace.Recording {
		r := rec.Recording()
		if r == nil {
			log.Fatalf("%s: recording overflowed", name)
		}
		fmt.Printf("%-8s %10d %9.2fM %9.2fM %6.1fx\n", name, r.Len(),
			float64(r.RawBytes())/(1<<20), float64(r.Bytes())/(1<<20),
			float64(r.RawBytes())/float64(r.Bytes()))
		return r
	}

	record := func(name, query string) {
		pipe := xeon.New(xeon.DefaultConfig())
		rec := trace.NewRecorder(pipe, 0)
		plan, err := sql.Prepare(nsm.Catalog, query, e.PlanOptions())
		if err != nil {
			log.Fatal(err)
		}
		e.ResetState()
		if _, err := e.Run(plan, rec); err != nil {
			log.Fatal(err)
		}
		report(name, rec).Release()
	}
	record("SRS", dims.QuerySRS(0.10))
	record("IRS", dims.QueryIRS(0.10))
	record("SJ", dims.QuerySJ())

	// TPC-D: one pass over the 17-query suite, like the harness cell.
	{
		pipe := xeon.New(xeon.DefaultConfig())
		rec := trace.NewRecorder(pipe, 0)
		e.ResetState()
		for _, q := range dims.TPCDQueries() {
			if _, err := e.Query(q, rec); err != nil {
				log.Fatal(err)
			}
		}
		report("TPC-D", rec).Release()
	}

	// TPC-C: the measured mix, emitted through a flush buffer the way
	// the harness runs it.
	tpcc, err := workload.BuildTPCC(workload.DefaultTPCCDims())
	if err != nil {
		log.Fatal(err)
	}
	te := engine.New(engine.SystemD, tpcc.Catalog)
	pipe := xeon.New(xeon.DefaultConfig())
	rec := trace.NewRecorder(pipe, 0)
	var sink trace.Processor = rec
	var wire *wireSink
	if *corpus != "" {
		wire = &wireSink{next: rec, max: corpusEvents}
		sink = wire
	}
	buf := trace.NewBuffer(sink, 0)
	if _, err := workload.RunTPCC(tpcc, te, buf, *txns); err != nil {
		log.Fatal(err)
	}
	buf.Flush()
	report("TPC-C", rec).Release()

	if wire != nil {
		if err := os.WriteFile(*corpus, wire.out, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d-event seed corpus (%d bytes) to %s\n",
			len(wire.out)/32, len(wire.out), *corpus)
	}
}

// wireSink tees the event stream into the fuzz wire format (32 LE
// bytes per event, fields unused by the kind left zero — the same
// canonical shape FuzzCodecRoundTrip decodes) while forwarding to the
// recorder unchanged.
type wireSink struct {
	next trace.Processor
	out  []byte
	max  int
}

func (w *wireSink) emit(kind byte, taken bool, size uint32, addr, aux uint64, a, b uint32) {
	if len(w.out)/32 >= w.max {
		return
	}
	var rec [32]byte
	rec[0] = kind
	if taken {
		rec[1] = 1
	}
	binary.LittleEndian.PutUint32(rec[2:6], size)
	binary.LittleEndian.PutUint64(rec[6:14], addr)
	binary.LittleEndian.PutUint64(rec[14:22], aux)
	binary.LittleEndian.PutUint32(rec[22:26], a)
	binary.LittleEndian.PutUint32(rec[26:30], b)
	w.out = append(w.out, rec[:]...)
}

func (w *wireSink) FetchBlock(addr uint64, size, instrs, uops uint32) {
	w.emit(byte(trace.EvFetchBlock), false, size, addr, 0, instrs, uops)
	w.next.FetchBlock(addr, size, instrs, uops)
}
func (w *wireSink) Load(addr uint64, size uint32) {
	w.emit(byte(trace.EvLoad), false, size, addr, 0, 0, 0)
	w.next.Load(addr, size)
}
func (w *wireSink) Store(addr uint64, size uint32) {
	w.emit(byte(trace.EvStore), false, size, addr, 0, 0, 0)
	w.next.Store(addr, size)
}
func (w *wireSink) Branch(pc, target uint64, taken bool) {
	w.emit(byte(trace.EvBranch), taken, 0, pc, target, 0, 0)
	w.next.Branch(pc, target, taken)
}
func (w *wireSink) DataBurst(base uint64, bytes, loads, stores uint32) {
	w.emit(byte(trace.EvDataBurst), false, bytes, base, 0, loads, stores)
	w.next.DataBurst(base, bytes, loads, stores)
}
func (w *wireSink) ResourceStall(dep, fu, ild float64) {
	ev := trace.ResourceStallEvent(dep, fu, ild)
	w.emit(byte(trace.EvResourceStall), false, 0, ev.Addr, ev.Aux, ev.A, ev.B)
	w.next.ResourceStall(dep, fu, ild)
}
func (w *wireSink) RecordProcessed() {
	w.emit(byte(trace.EvRecordProcessed), false, 0, 0, 0, 0, 0)
	w.next.RecordProcessed()
}
