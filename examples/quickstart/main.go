// Quickstart: build the paper's database at a small scale, run the 10%
// sequential range selection on one engine, and print where the time
// went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wheretime/internal/engine"
	"wheretime/internal/sql"
	"wheretime/internal/storage"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

func main() {
	// 1. Generate R and S (Section 3.3) at 1/100 of the paper's size.
	dims := workload.PaperDims().Scaled(0.01)
	db, err := workload.Build(dims, storage.NSM)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.BuildIndexes(); err != nil {
		log.Fatal(err)
	}

	// 2. Build a query engine (System D's build profile) and the
	// simulated Pentium II Xeon (Table 4.1).
	eng := engine.New(engine.SystemD, db.Catalog)
	pipe := xeon.New(xeon.DefaultConfig())

	// 3. Run the sequential range selection at 10% selectivity, once
	// to warm the caches (Section 4.3) and once measured.
	query := dims.QuerySRS(0.10)
	// Force a sequential plan: System D's planner would otherwise use
	// the index we just built (that variant is the paper's IRS).
	plan, err := sql.Prepare(db.Catalog, query, sql.PlanOptions{UseIndex: false})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(plan, pipe); err != nil {
		log.Fatal(err)
	}
	pipe.ResetStats()
	res, err := eng.Run(plan, pipe)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Where does time go?
	b := pipe.Breakdown()
	fmt.Printf("query: %s\n", query)
	fmt.Printf("result: avg(a3) = %.2f over %d qualifying rows\n\n", res.Value, res.Rows)
	fmt.Print(b.Report())
	fmt.Printf("\nwall-clock at %dMHz: %.2f ms\n",
		pipe.Config().ClockMHz, 1000*pipe.Seconds(b.Total()))
}
