// Scenarios: run the five scenario operators — Grace/hybrid hash
// join, sort-based aggregation, B-tree range scan, join-sort-
// aggregate pipeline, index-probe join — through the full experiment
// harness and print their paper-style breakdown tables, then
// cross-check each operator's aggregate against its reference access
// path.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	"wheretime/internal/engine"
	"wheretime/internal/harness"
)

func main() {
	opts := harness.DefaultOptions()
	opts.Scale = 0.01

	// The scenario experiments go through the same grid as every paper
	// figure: cells dedupe, gang, record/replay and parallelise.
	var exps []harness.Experiment
	for _, name := range []string{"ghj", "sortagg", "btree", "joinsort", "idxjoin"} {
		e, err := harness.Find(name)
		if err != nil {
			log.Fatal(err)
		}
		exps = append(exps, e)
	}
	rendered, err := harness.RunExperiments(opts, exps, harness.DefaultParallelism())
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range exps {
		fmt.Printf("== %s — %s ==\n\n", e.Name, e.Paper)
		for _, t := range rendered[i] {
			fmt.Println(t.Render())
		}
	}

	// The operators are access-path swaps, not new queries: each must
	// reproduce its reference operator's result exactly.
	env, err := harness.NewEnv(opts)
	if err != nil {
		log.Fatal(err)
	}
	check := func(newKind, refKind harness.QueryKind) {
		n, err := env.Run(engine.SystemD, newKind)
		if err != nil {
			log.Fatal(err)
		}
		r, err := env.Run(engine.SystemD, refKind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d rows, value %.3f) vs %s (%d rows, value %.3f)\n",
			newKind, n.Result.Rows, n.Result.Value, refKind, r.Result.Rows, r.Result.Value)
	}
	check(harness.GHJ, harness.SJ)
	check(harness.SAG, harness.SRS)
	check(harness.BRS, harness.IRS)
	check(harness.JSA, harness.SJ)
	check(harness.IXJ, harness.SJ)
}
