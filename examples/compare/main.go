// Compare: run all three microbenchmark queries on all four system
// builds and print the paper's Figure 5.1/5.2/5.3 views side by side —
// the full "where does time go" comparison.
//
//	go run ./examples/compare [scale]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"wheretime/internal/harness"
)

func main() {
	opts := harness.DefaultOptions()
	if len(os.Args) > 1 {
		s, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad scale %q: %v", os.Args[1], err)
		}
		opts.Scale = s
	}
	env, err := harness.NewEnv(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, run := range []func(*harness.Env) ([]harness.Table, error){
		harness.Fig51, harness.Fig52, harness.Fig53, harness.Fig54a, harness.Fig55,
	} {
		tables, err := run(env)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
}
