// Command emon mimics the Intel emon invocation of Section 4.3: it
// measures a chosen pair of hardware events over the query unit,
// re-running the unit once per counter pair, and prints the raw
// counts — the layer beneath the wheretime experiment harness.
//
//	emon -events INST_RETIRED,UOPS_RETIRED -system C -query srs
//	emon -all -system B -query sj
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wheretime/internal/emon"
	"wheretime/internal/engine"
	"wheretime/internal/harness"
	"wheretime/internal/sql"
	"wheretime/internal/trace"
	"wheretime/internal/workload"
	"wheretime/internal/xeon"
)

func main() {
	var (
		eventsFlag = flag.String("events", "INST_RETIRED,UOPS_RETIRED", "comma-separated event list")
		all        = flag.Bool("all", false, "measure every supported event")
		sysFlag    = flag.String("system", "C", "system variant: A, B, C or D")
		queryFlag  = flag.String("query", "srs", "query: srs, irs, sj, ghj, sag, brs, jsa or ixj")
		scale      = flag.Float64("scale", 0.01, "dataset scale")
		sel        = flag.Float64("selectivity", 0.10, "range selectivity")
		parallel   = flag.Int("parallel", harness.DefaultParallelism(), "workers measuring counter pairs (1 = serial)")
	)
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "emon: -parallel must be >= 1 (got %d)\n", *parallel)
		os.Exit(2)
	}

	var sys engine.System
	switch strings.ToUpper(*sysFlag) {
	case "A":
		sys = engine.SystemA
	case "B":
		sys = engine.SystemB
	case "C":
		sys = engine.SystemC
	case "D":
		sys = engine.SystemD
	default:
		fmt.Fprintf(os.Stderr, "emon: unknown system %q\n", *sysFlag)
		os.Exit(2)
	}

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.Selectivity = *sel
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dims := opts.Dims()

	var query string
	useIndex := false
	hint := sql.HintNone
	switch strings.ToLower(*queryFlag) {
	case "srs":
		query = dims.QuerySRS(*sel)
	case "irs":
		query = dims.QueryIRS(*sel)
		useIndex = true
	case "sj":
		query = dims.QuerySJ()
	case "ghj":
		query = dims.QueryGHJ()
		hint = sql.HintGraceJoin
	case "sag":
		query = dims.QuerySAG(*sel)
		hint = sql.HintSortAgg
	case "brs":
		query = dims.QueryBRS(*sel)
		useIndex = true
		hint = sql.HintIndexOnly
	case "jsa":
		query = dims.QueryJSA()
		hint = sql.HintJoinSortAgg
	case "ixj":
		query = dims.QueryIXJ(*sel)
		useIndex = true
		hint = sql.HintIndexProbeJoin
	default:
		fmt.Fprintf(os.Stderr, "emon: unknown query %q\n", *queryFlag)
		os.Exit(2)
	}
	// The index-based kinds follow the grid's validity rule: a system
	// whose profile does not use the index cannot run them.
	if useIndex && !engine.DefaultProfile(sys).UseIndex {
		fmt.Fprintf(os.Stderr, "emon: system %s does not use the index (Section 5.1)\n", sys)
		os.Exit(2)
	}

	// newUnit builds one isolated simulator stack — its own database,
	// engine and plan — so each parallel worker re-runs the query unit
	// without sharing state with any other worker. Only the layout the
	// chosen system scans is built (emon measures one system, unlike
	// the harness environments that serve all four).
	newUnit := func() (func(trace.Processor), error) {
		db, err := workload.Build(dims, engine.DefaultProfile(sys).DataLayout)
		if err != nil {
			return nil, err
		}
		if err := db.BuildIndexes(); err != nil {
			return nil, err
		}
		eng := engine.New(sys, db.Catalog)
		plan, err := sql.Prepare(db.Catalog, query, sql.PlanOptions{UseIndex: useIndex})
		if err != nil {
			return nil, err
		}
		plan.Hint = hint
		return func(p trace.Processor) {
			eng.ResetState()
			if _, err := eng.Run(plan, p); err != nil {
				panic(err)
			}
		}, nil
	}

	var events []emon.Event
	if *all {
		events = emon.AllEvents()
	} else {
		byName := map[string]emon.Event{}
		for _, e := range emon.AllEvents() {
			byName[e.String()] = e
		}
		for _, name := range strings.Split(*eventsFlag, ",") {
			e, ok := byName[strings.TrimSpace(strings.ToUpper(name))]
			if !ok {
				fmt.Fprintf(os.Stderr, "emon: unknown event %q; use -all to list them\n", name)
				os.Exit(2)
			}
			events = append(events, e)
		}
	}

	// MeasureParallel with one worker is the serial session: the
	// counts are pinned to Session.Measure's by
	// TestMeasureParallelMatchesSession.
	counts, runs, err := emon.MeasureParallel(xeon.DefaultConfig(), 1, events, *parallel, newUnit)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := emon.Validate(counts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("emon -C (%s) | system %s, %s: %s\n",
		strings.ToUpper(*eventsFlag), sys, strings.ToUpper(*queryFlag), query)
	fmt.Printf("unit re-executed %d times (two counters per run)\n\n", runs)
	sorted := make([]emon.Event, 0, len(counts))
	for e := range counts {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, e := range sorted {
		fmt.Printf("%-22s %12d\n", e, counts[e])
	}

	f := emon.Formulae{Config: xeon.DefaultConfig()}
	fmt.Printf("\nderived: branch fraction %.1f%%, mispredict %.1f%%, L1D miss %.2f%%, L2 data miss %.1f%%\n",
		100*f.BranchFraction(counts), 100*f.BranchMispredictionRate(counts),
		100*f.L1DMissRate(counts), 100*f.L2DataMissRate(counts))
}
