// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON record, so benchmark runs can be
// committed and compared across PRs (BENCH_PR3.json and successors).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' . | go run ./cmd/benchjson > BENCH.json
//	go run ./cmd/benchjson -compare BENCH_PR7.json BENCH.json
//
// -compare reads two records and fails (exit 1) if the fresh run's
// grid time regressed more than -threshold (default 10%) against the
// committed record — the nightly CI regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole run.
type Record struct {
	Date       string   `json:"date"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// gateBenchmarks are the series the -compare gate checks: the grid
// regenerating every figure is the product's wall-clock, serial and
// replay-off (the two stable single-iteration series the record has
// carried since PR3 — the parallel and gang variants ride the same
// drain, and the micro series are too noisy at -benchtime=1x to gate
// on); the warm-start pair (cold store populate vs warm store load)
// and the compressed-vs-raw replay pair, the two optimization records
// whose regressions would silently erase their subsystems' wins.
var gateBenchmarks = []string{
	"BenchmarkGridSerial",
	"BenchmarkGridSerialNoReplay",
	"BenchmarkGridWarmStart/cold",
	"BenchmarkGridWarmStart/warm",
	"BenchmarkCompressedReplay/compressed",
	"BenchmarkCompressedReplay/raw",
}

func main() {
	compare := flag.Bool("compare", false, "compare two BENCH json records (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional grid-time regression for -compare")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two record files (old new)")
			os.Exit(2)
		}
		if err := compareRecords(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	convert()
}

// readRecord loads one committed or freshly written record.
func readRecord(path string) (Record, error) {
	var rec Record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func (r Record) find(name string) (Result, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Result{}, false
}

// compareRecords fails if any gate benchmark present in both records
// regressed past the threshold. A gate series missing from either
// record is an error too — a silently vanished benchmark must not
// read as a pass.
func compareRecords(oldPath, newPath string, threshold float64) error {
	oldRec, err := readRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := readRecord(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range gateBenchmarks {
		oldB, okOld := oldRec.find(name)
		newB, okNew := newRec.find(name)
		if !okOld || !okNew {
			return fmt.Errorf("gate benchmark %s missing from %s", name, map[bool]string{false: oldPath, true: newPath}[okOld])
		}
		if oldB.NsPerOp <= 0 {
			return fmt.Errorf("gate benchmark %s has no timing in %s", name, oldPath)
		}
		change := newB.NsPerOp/oldB.NsPerOp - 1
		status := "ok"
		if change > threshold {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Printf("%-28s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, oldB.NsPerOp, newB.NsPerOp, change*100, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("grid time regressed >%0.f%% vs %s: %s",
			threshold*100, oldPath, strings.Join(failures, ", "))
	}
	return nil
}

// convert is the original mode: bench text on stdin, JSON on stdout.
func convert() {
	rec := Record{Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go version") || strings.HasPrefix(line, "goos:") ||
			strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rec.Benchmarks = append(rec.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
