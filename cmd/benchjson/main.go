// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON record, so benchmark runs can be
// committed and compared across PRs (BENCH_PR3.json and successors).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole run.
type Record struct {
	Date       string   `json:"date"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	rec := Record{Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go version") || strings.HasPrefix(line, "goos:") ||
			strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "pkg:"):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[fields[i+1]] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rec.Benchmarks = append(rec.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
