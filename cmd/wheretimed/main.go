// Command wheretimed serves the experiment grid over HTTP: one
// measured cell per POST, identical in-flight requests coalesced into
// a single simulation, results memoized through the persistent
// trace/tally store, and a clean drain on SIGTERM.
//
// Usage:
//
//	wheretimed -addr 127.0.0.1:8080 -store .wtstore
//	curl -d '{"kind":"micro","system":"B","query":"SRS"}' localhost:8080/v1/cells
//	curl localhost:8080/healthz
//
// The base options (-scale, -selectivity, -recsize, -warmup) fix the
// dataset and measurement protocol for every request; a request's
// cell spec selects the system, query, workload parameters and
// platform overrides, and may bound its own simulation time with
// "timeoutMs". Requests that are platform-only variants of one
// workload and arrive within -gangwindow of each other run as a
// single gang work unit (-gangwindow 0 turns this off; -gangmax caps
// the batch). See internal/server for the API and docs/OPERATIONS.md
// for running the service.
//
// The store is opened in recovering mode: a corrupt index.json is
// quarantined (renamed to index.json.corrupt) and the daemon starts
// with an empty cache instead of refusing to boot. Corrupt trace
// files quarantine on first read, and an unwritable store directory
// flips the store read-only — the service keeps answering from
// simulation either way; /healthz says what degraded.
//
// SIGINT or SIGTERM begins the drain: /readyz flips to 503, new cell
// requests are refused, in-flight measurements run to completion, the
// store is flushed, and the process exits 0. The address is printed
// to stderr as "wheretimed: listening on ADDR" once the listener is
// up (so -addr :0 is scriptable).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wheretime/internal/harness"
	"wheretime/internal/server"
	"wheretime/internal/tracestore"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port; the chosen address is printed to stderr)")
		storeDir    = flag.String("store", "", "persistent trace/tally store directory; opened in recovering mode (a corrupt index is quarantined, not fatal)")
		scale       = flag.Float64("scale", 0.01, "dataset scale relative to the paper's 1.2M-row R")
		selectivity = flag.Float64("selectivity", 0.10, "default range selection selectivity")
		recsize     = flag.Int("recsize", 100, "default record size in bytes")
		warmup      = flag.Int("warmup", 1, "unmeasured cache-warming runs per cell")
		timeout     = flag.Duration("timeout", server.DefaultTimeout, "per-request simulation deadline and ceiling")
		concurrent  = flag.Int("concurrent", server.DefaultMaxConcurrent, "maximum simultaneous simulations")
		gangWindow  = flag.Duration("gangwindow", server.DefaultGangWindow, "gang-batching accumulation window; compatible requests arriving within this window run as one gang work unit (0 disables batching)")
		gangMax     = flag.Int("gangmax", server.DefaultGangMax, "maximum requests per gang batch; a full window closes early")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.Selectivity = *selectivity
	opts.RecordSize = *recsize
	opts.Warmup = *warmup
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var store *tracestore.Store
	if *storeDir != "" {
		s, err := tracestore.OpenRecovering(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		store = s
		if n := s.Stats().Quarantined; n > 0 {
			fmt.Fprintf(os.Stderr, "wheretimed: quarantined corrupt index in %s, starting cold\n", s.Dir())
		}
	}

	srv, err := server.New(server.Config{
		Opts:          opts,
		Store:         store,
		Timeout:       *timeout,
		MaxConcurrent: *concurrent,
		GangWindow:    *gangWindow,
		GangMax:       *gangMax,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "wheretimed: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "wheretimed: draining")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "wheretimed: shutdown: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		if errors.Is(err, tracestore.ErrReadOnly) {
			fmt.Fprintln(os.Stderr, "wheretimed: store is read-only; staged entries were not flushed")
		} else {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if store != nil {
		st := store.Stats()
		ro := ""
		if st.ReadOnly {
			ro = " READ-ONLY"
		}
		fmt.Fprintf(os.Stderr, "store: entry hits=%d misses=%d, trace hits=%d written=%d, entries added=%d, retries=%d quarantined=%d%s (dir %s)\n",
			st.EntryHits, st.EntryMisses, st.TraceHits, st.TracesWritten, st.EntriesAdded, st.Retries, st.Quarantined, ro, store.Dir())
	}
	fmt.Fprintln(os.Stderr, "wheretimed: drained")
}
