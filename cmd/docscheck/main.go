// Command docscheck verifies the repository's documentation contract,
// the checks behind `make docs-check`:
//
//   - every relative markdown link in docs/*.md and README.md resolves
//     to an existing file, and every #fragment (same-file or into
//     another markdown file) matches a heading there;
//   - every package under internal/ carries a proper package comment
//     ("Package <name> ..." on the package clause of a non-test file).
//
// It prints one line per violation and exits nonzero if any exist, so
// broken cross-references and undocumented packages fail CI instead of
// rotting silently.
//
//	docscheck [-root .]
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// fenceRe matches fenced code blocks, which may contain [x](y)-shaped
// text that is not a link.
var fenceRe = regexp.MustCompile("(?s)```.*?```")

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var problems []string
	complain := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkLinks(*root, complain)
	checkPackageComments(*root, complain)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: docs links and package comments OK")
}

// docFiles returns the markdown files under the documentation
// contract: docs/*.md plus the top-level README.
func docFiles(root string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	readme := filepath.Join(root, "README.md")
	if _, err := os.Stat(readme); err == nil {
		files = append(files, readme)
	}
	sort.Strings(files)
	return files, nil
}

// anchorsOf returns the github-style heading slugs of a markdown
// document.
func anchorsOf(md string) map[string]bool {
	anchors := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(md, -1) {
		anchors[slugify(m[1])] = true
	}
	return anchors
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase,
// spaces to dashes, markup and punctuation dropped.
func slugify(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var sb strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteRune('-')
		}
	}
	return sb.String()
}

// checkLinks verifies every relative link in the doc files.
func checkLinks(root string, complain func(string, ...any)) {
	files, err := docFiles(root)
	if err != nil {
		complain("docscheck: %v", err)
		return
	}
	if len(files) == 0 {
		complain("docscheck: no documentation files found under %s", root)
		return
	}
	// Anchor sets are memoised per target file.
	anchorCache := make(map[string]map[string]bool)
	anchors := func(path string) (map[string]bool, error) {
		if a, ok := anchorCache[path]; ok {
			return a, nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := anchorsOf(string(b))
		anchorCache[path] = a
		return a, nil
	}

	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			complain("docscheck: %v", err)
			continue
		}
		body := fenceRe.ReplaceAllString(string(b), "")
		rel, _ := filepath.Rel(root, f)
		for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not this tool's contract
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				// Same-file fragment.
				a, err := anchors(f)
				if err != nil {
					complain("docscheck: %v", err)
					continue
				}
				if !a[frag] {
					complain("%s: broken anchor #%s", rel, frag)
				}
				continue
			}
			dest := filepath.Join(filepath.Dir(f), path)
			info, err := os.Stat(dest)
			if err != nil {
				complain("%s: broken link %s", rel, target)
				continue
			}
			if frag != "" && !info.IsDir() && strings.HasSuffix(path, ".md") {
				a, err := anchors(dest)
				if err != nil {
					complain("docscheck: %v", err)
					continue
				}
				if !a[frag] {
					complain("%s: link %s: no heading for #%s in %s", rel, target, frag, path)
				}
			}
		}
	}
}

// checkPackageComments verifies every internal/ package documents
// itself, walking the whole tree so nested packages are held to the
// same contract as direct children.
func checkPackageComments(root string, complain func(string, ...any)) {
	var dirs []string
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err == nil && d.IsDir() && d.Name() != "testdata" {
			dirs = append(dirs, path)
		}
		return err
	})
	if err != nil {
		complain("docscheck: %v", err)
		return
	}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			complain("docscheck: %s: %v", dir, err)
			continue
		}
		rel, _ := filepath.Rel(root, dir)
		for name, pkg := range pkgs {
			documented := false
			for _, file := range pkg.Files {
				if file.Doc != nil && strings.HasPrefix(file.Doc.Text(), "Package "+name) {
					documented = true
					break
				}
			}
			if !documented {
				complain(`%s: package %s has no "Package %s ..." comment`, rel, name, name)
			}
		}
	}
}
