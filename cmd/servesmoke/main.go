// Command servesmoke is the end-to-end exercise of wheretimed that
// the CI check job runs (make serve-smoke): it builds the daemon,
// starts it against a temp store, and walks the robustness contract
// over real HTTP and real signals —
//
//  1. concurrent identical POSTs coalesce into fewer simulations and
//     byte-identical responses;
//  2. corrupting a stored trace quarantines the file and the cell
//     recomputes correctly (byte-identical to a fresh-store server);
//  3. a concurrent burst of K platform variants of one workload forms
//     a single gang — one simulation for the whole burst — and every
//     response is byte-identical to a -gangwindow=0 control server's;
//  4. SIGTERM under load drains: the in-flight request completes, the
//     store flushes, and the process exits 0.
//
// The in-process fault-injection suite (internal/server) proves the
// same properties with deterministic faults; this command proves them
// for the real binary, listener, and signal handler.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

// proc is one running wheretimed with its captured stderr.
type proc struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr bytes.Buffer
	waited chan struct{}
}

// stderrText snapshots the process's stderr so far.
func (p *proc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// start launches bin with the given store directory (plus any extra
// flags) and waits for the "listening on" line to learn the picked
// port.
func start(bin, storeDir string, extra ...string) (*proc, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store", storeDir,
		"-scale", "0.002",
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, waited: make(chan struct{})}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(&p.stderr, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "wheretimed: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		close(p.waited)
	}()

	select {
	case addr := <-addrCh:
		p.addr = addr
		return p, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("server did not announce its address; stderr:\n%s", p.stderrText())
	}
}

// stop SIGTERMs the server and returns its exit code once the drain
// finishes.
func (p *proc) stop() (int, error) {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, err
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		<-p.waited // stderr fully drained
		return p.cmd.ProcessState.ExitCode(), nil
	case <-time.After(3 * time.Minute):
		p.cmd.Process.Kill()
		return -1, fmt.Errorf("server did not exit after SIGTERM; stderr:\n%s", p.stderrText())
	}
}

// post sends one cell spec and returns status and body.
func post(addr, body string) (int, []byte, error) {
	resp, err := http.Post("http://"+addr+"/v1/cells", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// healthz is the slice of /healthz this smoke asserts on.
type healthz struct {
	Status      string `json:"status"`
	Simulations int64  `json:"simulations"`
	Coalesced   int64  `json:"coalesced"`
	Batch       *struct {
		BatchedRequests int64   `json:"batchedRequests"`
		GangsFormed     int64   `json:"gangsFormed"`
		MeanK           float64 `json:"meanK"`
		CapCloses       int64   `json:"capCloses"`
	} `json:"batch"`
	Store *struct {
		Quarantined  int `json:"quarantined"`
		EntriesAdded int `json:"entriesAdded"`
	} `json:"store"`
}

func getHealth(addr string) (healthz, error) {
	var h healthz
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "wheretimed")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/wheretimed").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}

	storeDir := filepath.Join(tmp, "store")
	p, err := start(bin, storeDir)
	if err != nil {
		return err
	}
	defer p.cmd.Process.Kill()

	// 1. Coalescing: concurrent identical POSTs, one simulation's worth
	// of work, byte-identical bodies.
	const cell = `{"kind":"micro","system":"B","query":"SRS"}`
	const n = 8
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, b, err := post(p.addr, cell)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, b)
			}
			bodies[i], errs[i] = b, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("concurrent POST %d: %w", i, err)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			return fmt.Errorf("POST %d body differs from POST 0", i)
		}
	}
	h, err := getHealth(p.addr)
	if err != nil {
		return err
	}
	if h.Simulations+h.Coalesced != n || h.Coalesced < 1 {
		return fmt.Errorf("coalescing: simulations=%d coalesced=%d, want sum %d with coalesced >= 1",
			h.Simulations, h.Coalesced, n)
	}
	fmt.Printf("servesmoke: coalesced %d/%d requests into %d simulation(s)\n", h.Coalesced, n, h.Simulations)

	// 2. Corruption: rot every stored trace byte-wise, then measure a
	// platform variant that warm-starts from them. The server must
	// quarantine and recompute.
	traces, err := filepath.Glob(filepath.Join(storeDir, "tr-*.trace"))
	if err != nil || len(traces) == 0 {
		return fmt.Errorf("no trace files in the store (%v)", err)
	}
	for _, path := range traces {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	const variant = `{"kind":"micro","system":"B","query":"SRS","l2kb":1024}`
	status, got, err := post(p.addr, variant)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("variant POST after corruption: status %d err %v: %s", status, err, got)
	}
	h, err = getHealth(p.addr)
	if err != nil {
		return err
	}
	if h.Store == nil || h.Store.Quarantined < 1 {
		return fmt.Errorf("corrupt trace was not quarantined: %+v", h.Store)
	}
	if m, _ := filepath.Glob(filepath.Join(storeDir, "tr-*.trace.corrupt")); len(m) == 0 {
		return fmt.Errorf("no .corrupt file on disk after quarantine")
	}
	fmt.Printf("servesmoke: corrupt trace quarantined (%d), cell recomputed\n", h.Store.Quarantined)

	// The recompute is correct: a second server over a fresh store
	// must answer byte-identical bytes for the same cell.
	fresh, err := start(bin, filepath.Join(tmp, "store2"))
	if err != nil {
		return err
	}
	defer fresh.cmd.Process.Kill()
	status, want, err := post(fresh.addr, variant)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("fresh-store POST: status %d err %v", status, err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("recompute after corruption differs from fresh compute:\n%s\nvs\n%s", got, want)
	}
	if code, err := fresh.stop(); err != nil || code != 0 {
		return fmt.Errorf("fresh server exit: code %d err %v", code, err)
	}

	// 3. Gang batching: a concurrent burst of K platform variants of
	// one workload lands in a single accumulation window (the cap
	// closes it as soon as all K arrive), runs as ONE gang simulation,
	// and answers byte-for-byte what a batching-off control server
	// answers. Fresh servers and stores keep the leg independent of
	// the cells earlier legs memoized.
	variants := []string{
		cell,
		variant,
		`{"kind":"micro","system":"B","query":"SRS","l2kb":2048}`,
	}
	k := len(variants)
	batched, err := start(bin, filepath.Join(tmp, "store-batch"),
		"-gangwindow", "5s", "-gangmax", fmt.Sprint(k))
	if err != nil {
		return err
	}
	defer batched.cmd.Process.Kill()
	burst := make([][]byte, k)
	burstErrs := make([]error, k)
	var bwg sync.WaitGroup
	for i, v := range variants {
		bwg.Add(1)
		go func(i int, v string) {
			defer bwg.Done()
			status, b, err := post(batched.addr, v)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, b)
			}
			burst[i], burstErrs[i] = b, err
		}(i, v)
	}
	bwg.Wait()
	for i, err := range burstErrs {
		if err != nil {
			return fmt.Errorf("burst POST %d: %w", i, err)
		}
	}
	h, err = getHealth(batched.addr)
	if err != nil {
		return err
	}
	if h.Batch == nil {
		return fmt.Errorf("no batch section in /healthz with batching on")
	}
	if h.Simulations != 1 || h.Batch.GangsFormed != 1 || h.Batch.MeanK != float64(k) || h.Batch.CapCloses != 1 {
		return fmt.Errorf("burst of %d variants: simulations=%d gangs=%d meanK=%g capCloses=%d, want one cap-closed gang of %d",
			k, h.Simulations, h.Batch.GangsFormed, h.Batch.MeanK, h.Batch.CapCloses, k)
	}
	control, err := start(bin, filepath.Join(tmp, "store-control"), "-gangwindow", "0")
	if err != nil {
		return err
	}
	defer control.cmd.Process.Kill()
	for i, v := range variants {
		status, wantBody, err := post(control.addr, v)
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("control POST %d: status %d err %v", i, status, err)
		}
		if !bytes.Equal(burst[i], wantBody) {
			return fmt.Errorf("variant %d: batched response differs from -gangwindow=0 control:\n%s\nvs\n%s",
				i, burst[i], wantBody)
		}
	}
	hc, err := getHealth(control.addr)
	if err != nil {
		return err
	}
	if hc.Simulations != int64(k) || hc.Batch != nil {
		return fmt.Errorf("control: simulations=%d batch=%v, want %d unbatched simulations", hc.Simulations, hc.Batch, k)
	}
	if code, err := batched.stop(); err != nil || code != 0 {
		return fmt.Errorf("batched server exit: code %d err %v", code, err)
	}
	if code, err := control.stop(); err != nil || code != 0 {
		return fmt.Errorf("control server exit: code %d err %v", code, err)
	}
	fmt.Printf("servesmoke: burst of %d variants ran as 1 gang, byte-identical to the unbatched control\n", k)

	// 4. SIGTERM under load: fire a not-yet-memoized cell, signal while
	// it is in flight, and require the response to complete, the exit
	// code to be 0, and the store to have flushed.
	type result struct {
		status int
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		status, b, err := post(p.addr, `{"kind":"micro","system":"D","query":"SJ"}`)
		if err == nil && status != http.StatusOK {
			err = fmt.Errorf("status %d: %s", status, b)
		}
		inFlight <- result{status, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the flight open
	code, err := p.stop()
	if err != nil {
		return err
	}
	r := <-inFlight
	if r.err != nil {
		return fmt.Errorf("in-flight request during drain: %w", r.err)
	}
	if code != 0 {
		return fmt.Errorf("exit code %d after SIGTERM; stderr:\n%s", code, p.stderrText())
	}
	if _, err := os.Stat(filepath.Join(storeDir, "index.json")); err != nil {
		return fmt.Errorf("store not flushed on drain: %v", err)
	}
	if !strings.Contains(p.stderrText(), "wheretimed: drained") {
		return fmt.Errorf("no drain confirmation in stderr:\n%s", p.stderrText())
	}
	fmt.Println("servesmoke: SIGTERM drained cleanly, store flushed, exit 0")
	return nil
}
