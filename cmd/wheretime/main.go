// Command wheretime regenerates the figures and tables of "DBMSs on a
// Modern Processor: Where Does Time Go?" (Ailamaki, DeWitt, Hill,
// Wood; VLDB 1999) on the simulated platform.
//
// Usage:
//
//	wheretime -list
//	wheretime -experiment fig5.1 [-scale 0.02] [-selectivity 0.10] [-recsize 100]
//	wheretime -experiment all [-parallel 8]
//	wheretime -experiment ghj,sortagg,btree,joinsort,idxjoin   # the scenario operators
//	wheretime -experiment fig5.1 -l2kb 512,2048
//	wheretime -experiment all -store .wtstore   # persist traces/tallies; rerun starts warm
//
// Scale 1.0 is the paper's 1.2M-record R; per-record behaviour
// converges within a few thousand records, so the default small scale
// reproduces the shapes in seconds.
//
// The experiment grid decomposes into independent (system, query,
// parameter, platform) cells; -parallel fans them out across that many
// workers, each on its own isolated simulator stack. The output is
// byte-identical at every worker count; -parallel=1 runs today's
// serial path.
//
// -l2kb and -btb take comma-separated lists. With more than one
// resulting platform the requested experiments run on every
// combination in a single grid, and cells that differ only in
// platform gang into one multi-config drain: the workload executes
// once per cell and every platform's counters come from that single
// pass (disable with -gang=false to drain each platform separately —
// the output must not change).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"wheretime/internal/harness"
	"wheretime/internal/tracestore"
	"wheretime/internal/xeon"
)

// parseIntList parses a comma-separated list of non-negative
// integers. Zero keeps its historical meaning — "use the default
// platform value" — so scripts written against the old int flags
// still work; deflt substitutes it.
func parseIntList(flagName, s string, deflt int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("wheretime: -%s wants non-negative integers, got %q", flagName, part)
		}
		if v == 0 {
			v = deflt
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		exp         = flag.String("experiment", "claims", `experiment to run: a name, a comma-separated list (e.g. "ghj,sortagg,btree"), or "all"`)
		scale       = flag.Float64("scale", 0.01, "dataset scale relative to the paper's 1.2M-row R")
		selectivity = flag.Float64("selectivity", 0.10, "range selection selectivity")
		recsize     = flag.Int("recsize", 100, "record size in bytes")
		l2kb        = flag.String("l2kb", "", "override L2 cache size in KB; a comma-separated list sweeps platforms in one ganged grid (0 or empty = Table 4.1's 512)")
		btb         = flag.String("btb", "", "override BTB entries; a comma-separated list sweeps platforms (0 or empty = Pentium II's 512)")
		gang        = flag.Bool("gang", true, "gang cells that differ only in platform config into one multi-config drain (off: drain each platform separately, for debugging; output is identical)")
		parallel    = flag.Int("parallel", harness.DefaultParallelism(), "worker count for the experiment grid (1 = serial)")
		maxrec      = flag.Int("maxrecorded", 0, "recording cap in events for the record-once/replay-many engine (0 = default, negative disables replay)")
		compress    = flag.Bool("compress", true, "keep recorded traces in the columnar compressed arena (off: raw []Event chunks, ~8x the memory; output is identical)")
		cachemb     = flag.Int("cachemb", 0, "per-worker trace-cache budget in MiB of retained (compressed) arena (0 = default, negative disables cross-cell retention)")
		snapshot    = flag.Bool("snapshot", true, "memoize post-warm-up pipeline states and restore them on cell revisits; warm-up drains stop early at a state fixed point (off: drain every warm-up run, for debugging; output is identical)")
		storeDir    = flag.String("store", "", "persistent trace/tally store directory: captures, tallies and snapshots persist across runs, so a warm directory starts the grid from disk (requires recording)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Paper)
		}
		return
	}

	// Flags that only steer the recording arena contradict a run with
	// recording disabled: reject the combination instead of silently
	// ignoring half of it.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *maxrec < 0 {
		if set["compress"] && !*compress {
			fmt.Fprintln(os.Stderr, "wheretime: -compress=false contradicts -maxrecorded < 0: recording is disabled, no trace arena exists")
			os.Exit(2)
		}
		if set["cachemb"] && *cachemb > 0 {
			fmt.Fprintln(os.Stderr, "wheretime: -cachemb > 0 contradicts -maxrecorded < 0: recording is disabled, nothing can be cached")
			os.Exit(2)
		}
		if *storeDir != "" {
			fmt.Fprintln(os.Stderr, "wheretime: -store contradicts -maxrecorded < 0: recording is disabled, nothing can persist")
			os.Exit(2)
		}
	}

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.Selectivity = *selectivity
	opts.RecordSize = *recsize
	opts.MaxRecordedEvents = *maxrec
	opts.UncompressedArena = !*compress
	// A negative budget means "retain nothing"; scaling it by MiB would
	// just produce a different negative number, so map it to -1 exactly.
	if *cachemb < 0 {
		opts.TraceCacheBytes = -1
	} else {
		opts.TraceCacheBytes = *cachemb << 20
	}
	opts.Gang = *gang
	opts.Snapshot = *snapshot
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Open the store here rather than via Options.StoreDir so the stats
	// line can be printed after the run (and on both exit paths). The
	// line goes to stderr: stdout must stay byte-identical between cold
	// and warm runs, which the store-smoke CI step diffs.
	var store *tracestore.Store
	if *storeDir != "" {
		s, err := tracestore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		store = s
		opts.Store = store
	}
	finishStore := func() {
		if store == nil {
			return
		}
		if err := store.Flush(); err != nil {
			// A read-only store is a degraded cache, not a failed run:
			// warn and keep the exit status the measurement earned.
			if !errors.Is(err, tracestore.ErrReadOnly) {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wheretime: store is read-only; staged entries were not flushed")
		}
		st := store.Stats()
		ro := ""
		if st.ReadOnly {
			ro = " READ-ONLY"
		}
		fmt.Fprintf(os.Stderr, "store: entry hits=%d misses=%d, trace hits=%d written=%d, entries added=%d, retries=%d quarantined=%d%s (dir %s)\n",
			st.EntryHits, st.EntryMisses, st.TraceHits, st.TracesWritten, st.EntriesAdded, st.Retries, st.Quarantined, ro, store.Dir())
	}

	l2s, err := parseIntList("l2kb", *l2kb, opts.Config.L2SizeKB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	btbs, err := parseIntList("btb", *btb, opts.Config.BTBEntries)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(l2s) == 0 {
		l2s = []int{opts.Config.L2SizeKB}
	}
	if len(btbs) == 0 {
		btbs = []int{opts.Config.BTBEntries}
	}
	var configs []xeon.Config
	for _, l2 := range l2s {
		for _, b := range btbs {
			cfg := opts.Config
			cfg.L2SizeKB = l2
			cfg.BTBEntries = b
			if err := cfg.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			configs = append(configs, cfg)
		}
	}
	opts.Config = configs[0]
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "wheretime: -parallel must be >= 1 (got %d)\n", *parallel)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Experiments()
	} else {
		// A comma-separated list runs several experiments over one
		// deduplicated grid (cells shared between them measure once).
		for _, name := range strings.Split(*exp, ",") {
			e, err := harness.Find(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// SIGINT/SIGTERM cancel the grid at the next between-cells barrier:
	// the run stops cleanly, the store flushes the cells that finished
	// (they warm the next run), and the process exits 130.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	dims := opts.Dims()
	printPlatform(configs[0])
	fmt.Printf("Dataset: R=%d records x %dB, S=%d, selectivity %.0f%% (scale %.3g), %d workers\n\n",
		dims.RRecords, dims.RecordSize, dims.SRecords, *selectivity*100, *scale, *parallel)

	if len(configs) == 1 {
		rendered, err := harness.RunExperimentsContext(ctx, opts, exps, *parallel)
		if err != nil {
			exitRunErr(err, finishStore)
		}
		for i, e := range exps {
			fmt.Printf("== %s — %s ==\n\n", e.Name, e.Paper)
			for _, t := range rendered[i] {
				fmt.Println(t.Render())
			}
		}
		finishStore()
		return
	}

	// Platform sweep: one grid over every (experiment, platform) cell.
	// Cells that differ only in platform share an emission key, so the
	// gang scheduler measures each workload once for all platforms.
	optsFor := func(cfg xeon.Config) harness.Options {
		o := opts
		o.Config = cfg
		return o
	}
	var specs []harness.CellSpec
	for _, cfg := range configs {
		for _, e := range exps {
			specs = append(specs, e.Cells(optsFor(cfg))...)
		}
	}
	res, err := harness.MeasureContext(ctx, opts, specs, *parallel)
	if err != nil {
		exitRunErr(err, finishStore)
	}
	for _, e := range exps {
		fmt.Printf("== %s — %s ==\n\n", e.Name, e.Paper)
		for _, cfg := range configs {
			printPlatform(cfg)
			fmt.Println()
			tables, err := e.Render(optsFor(cfg), res)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, t := range tables {
				fmt.Println(t.Render())
			}
		}
	}
	finishStore()
}

// exitRunErr reports a failed or interrupted run and exits. An
// interrupted run (SIGINT/SIGTERM hit a *harness.PartialError) still
// flushes the store — the cells measured before the signal warm the
// next run — and exits 130, the conventional fatal-signal status.
func exitRunErr(err error, finishStore func()) {
	var pe *harness.PartialError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "wheretime: interrupted: %v\n", err)
		finishStore()
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func printPlatform(cfg xeon.Config) {
	fmt.Printf("Platform: %dMHz, L1 %d/%dKB, L2 %dKB, %dB lines, BTB %d entries, memory latency %.0f cycles\n",
		cfg.ClockMHz, cfg.L1ISizeKB, cfg.L1DSizeKB, cfg.L2SizeKB, cfg.LineSize, cfg.BTBEntries, cfg.MemoryLatency)
}
