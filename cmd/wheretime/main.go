// Command wheretime regenerates the figures and tables of "DBMSs on a
// Modern Processor: Where Does Time Go?" (Ailamaki, DeWitt, Hill,
// Wood; VLDB 1999) on the simulated platform.
//
// Usage:
//
//	wheretime -list
//	wheretime -experiment fig5.1 [-scale 0.02] [-selectivity 0.10] [-recsize 100]
//	wheretime -experiment all
//
// Scale 1.0 is the paper's 1.2M-record R; per-record behaviour
// converges within a few thousand records, so the default small scale
// reproduces the shapes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"wheretime/internal/harness"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		exp         = flag.String("experiment", "claims", `experiment to run (or "all")`)
		scale       = flag.Float64("scale", 0.01, "dataset scale relative to the paper's 1.2M-row R")
		selectivity = flag.Float64("selectivity", 0.10, "range selection selectivity")
		recsize     = flag.Int("recsize", 100, "record size in bytes")
		l2kb        = flag.Int("l2kb", 0, "override L2 cache size in KB (0 = Table 4.1's 512)")
		btb         = flag.Int("btb", 0, "override BTB entries (0 = Pentium II's 512)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Paper)
		}
		return
	}

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.Selectivity = *selectivity
	opts.RecordSize = *recsize
	if *l2kb > 0 {
		opts.Config.L2SizeKB = *l2kb
	}
	if *btb > 0 {
		opts.Config.BTBEntries = *btb
	}
	if err := opts.Config.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	env, err := harness.NewEnv(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := opts.Config
	fmt.Printf("Platform: %dMHz, L1 %d/%dKB, L2 %dKB, %dB lines, BTB %d entries, memory latency %.0f cycles\n",
		cfg.ClockMHz, cfg.L1ISizeKB, cfg.L1DSizeKB, cfg.L2SizeKB, cfg.LineSize, cfg.BTBEntries, cfg.MemoryLatency)
	fmt.Printf("Dataset: R=%d records x %dB, S=%d, selectivity %.0f%% (scale %.3g)\n\n",
		env.Dims.RRecords, env.Dims.RecordSize, env.Dims.SRecords, *selectivity*100, *scale)

	for _, e := range exps {
		fmt.Printf("== %s — %s ==\n\n", e.Name, e.Paper)
		tables, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
}
