// Command wheretime regenerates the figures and tables of "DBMSs on a
// Modern Processor: Where Does Time Go?" (Ailamaki, DeWitt, Hill,
// Wood; VLDB 1999) on the simulated platform.
//
// Usage:
//
//	wheretime -list
//	wheretime -experiment fig5.1 [-scale 0.02] [-selectivity 0.10] [-recsize 100]
//	wheretime -experiment all [-parallel 8]
//
// Scale 1.0 is the paper's 1.2M-record R; per-record behaviour
// converges within a few thousand records, so the default small scale
// reproduces the shapes in seconds.
//
// The experiment grid decomposes into independent (system, query,
// parameter) cells; -parallel fans them out across that many workers,
// each on its own isolated simulator stack. The output is
// byte-identical at every worker count; -parallel=1 runs today's
// serial path.
package main

import (
	"flag"
	"fmt"
	"os"

	"wheretime/internal/harness"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments")
		exp         = flag.String("experiment", "claims", `experiment to run (or "all")`)
		scale       = flag.Float64("scale", 0.01, "dataset scale relative to the paper's 1.2M-row R")
		selectivity = flag.Float64("selectivity", 0.10, "range selection selectivity")
		recsize     = flag.Int("recsize", 100, "record size in bytes")
		l2kb        = flag.Int("l2kb", 0, "override L2 cache size in KB (0 = Table 4.1's 512)")
		btb         = flag.Int("btb", 0, "override BTB entries (0 = Pentium II's 512)")
		parallel    = flag.Int("parallel", harness.DefaultParallelism(), "worker count for the experiment grid (1 = serial)")
		maxrec      = flag.Int("maxrecorded", 0, "recording cap in events for the record-once/replay-many engine (0 = default, negative disables replay)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Paper)
		}
		return
	}

	opts := harness.DefaultOptions()
	opts.Scale = *scale
	opts.Selectivity = *selectivity
	opts.RecordSize = *recsize
	opts.MaxRecordedEvents = *maxrec
	if *l2kb > 0 {
		opts.Config.L2SizeKB = *l2kb
	}
	if *btb > 0 {
		opts.Config.BTBEntries = *btb
	}
	if err := opts.Config.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "wheretime: -parallel must be >= 1 (got %d)\n", *parallel)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	cfg := opts.Config
	dims := opts.Dims()
	fmt.Printf("Platform: %dMHz, L1 %d/%dKB, L2 %dKB, %dB lines, BTB %d entries, memory latency %.0f cycles\n",
		cfg.ClockMHz, cfg.L1ISizeKB, cfg.L1DSizeKB, cfg.L2SizeKB, cfg.LineSize, cfg.BTBEntries, cfg.MemoryLatency)
	fmt.Printf("Dataset: R=%d records x %dB, S=%d, selectivity %.0f%% (scale %.3g), %d workers\n\n",
		dims.RRecords, dims.RecordSize, dims.SRecords, *selectivity*100, *scale, *parallel)

	rendered, err := harness.RunExperiments(opts, exps, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, e := range exps {
		fmt.Printf("== %s — %s ==\n\n", e.Name, e.Paper)
		for _, t := range rendered[i] {
			fmt.Println(t.Render())
		}
	}
}
