module wheretime

go 1.24
